package regcube

import (
	"bytes"
	"math"
	"testing"
)

// Facade coverage for the extension surfaces: alternative cubing engines,
// persistence, result navigation, unit frames, and MLR inference.

func facadeDataset(t *testing.T) *Dataset {
	t.Helper()
	spec, err := ParseDatasetSpec("D2L2C3T300")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(DatasetConfig{Spec: spec, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFacadeAlternativeEngines(t *testing.T) {
	ds := facadeDataset(t)
	thr := GlobalThreshold(ds.CalibrateThreshold(0.05))
	mo, err := MOCubing(ds.Schema, ds.Inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	buc, err := BUCCubing(ds.Schema, ds.Inputs, thr, BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrayCubing(ds.Schema, ds.Inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(buc.Exceptions) != len(mo.Exceptions) || len(arr.Exceptions) != len(mo.Exceptions) {
		t.Fatalf("engines disagree: mo=%d buc=%d arr=%d",
			len(mo.Exceptions), len(buc.Exceptions), len(arr.Exceptions))
	}
	full, err := FullCubing(ds.Schema, ds.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if full.CellCount() < int64(len(mo.Exceptions)) {
		t.Fatal("full cube must contain at least the exceptions")
	}
	// Iceberg pruning reduces work.
	pruned, err := BUCCubing(ds.Schema, ds.Inputs, thr, BUCOptions{MinSupport: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.CellsComputed >= buc.Stats.CellsComputed {
		t.Fatal("min-support pruning must reduce computed cells")
	}
}

func TestFacadePersistence(t *testing.T) {
	ds := facadeDataset(t)
	res, err := MOCubing(ds.Schema, ds.Inputs, GlobalThreshold(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Exceptions) != len(res.Exceptions) {
		t.Fatal("result round trip lost cells")
	}

	var csvBuf bytes.Buffer
	if err := WriteDatasetCSV(&csvBuf, ds); err != nil {
		t.Fatal(err)
	}
	inputs, err := ReadDatasetCSV(&csvBuf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != len(ds.Inputs) {
		t.Fatal("dataset round trip lost tuples")
	}
}

func TestFacadeStreamCheckpoint(t *testing.T) {
	h, _ := NewFanoutHierarchy("A", 2, 2)
	schema, err := NewSchema(Dimension{Name: "A", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *StreamEngine {
		e, err := NewStreamEngine(StreamConfig{
			Schema: schema, TicksPerUnit: 3, Threshold: GlobalThreshold(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk()
	for tk := int64(0); tk < 4; tk++ {
		if _, err := a.Ingest([]int32{0}, tk, float64(tk)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, a.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.Unit() != a.Unit() || b.ActiveCells() != a.ActiveCells() {
		t.Fatal("restored engine state differs")
	}
}

func TestFacadeResultView(t *testing.T) {
	ds := facadeDataset(t)
	res, err := MOCubing(ds.Schema, ds.Inputs, GlobalThreshold(ds.CalibrateThreshold(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	v := NewResultView(res)
	top := v.TopExceptions(5)
	if len(top) == 0 {
		t.Fatal("no top exceptions")
	}
	obs := v.TopObservations(1)
	if len(obs) != 1 {
		t.Fatal("no observations")
	}
	_ = v.Supporters(obs[0].Key)
	summary := v.Summary()
	if len(summary) != NewLattice(ds.Schema).Size() {
		t.Fatal("summary must cover the lattice")
	}
}

func TestFacadeUnitFrame(t *testing.T) {
	uf, err := NewUnitFrame([]FrameLevel{
		{Name: "q", Multiple: 1, Slots: 4},
		{Name: "h", Multiple: 4, Slots: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		isb := ISB{Tb: int64(u * 15), Te: int64(u*15 + 14), Base: 1, Slope: 0.1}
		if err := uf.Push(isb); err != nil {
			t.Fatal(err)
		}
	}
	if uf.Completed(1) != 2 {
		t.Fatalf("hours completed = %d", uf.Completed(1))
	}
	got, err := uf.Query(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Slope-0.1) > 1e-9 {
		t.Fatalf("hour slope = %g", got.Slope)
	}
}

func TestFacadeMLRInference(t *testing.T) {
	m := NewMLR(TimeBasis())
	for i := 0; i < 20; i++ {
		if err := m.Observe([]float64{float64(i)}, 1+0.5*float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	model, inf, err := m.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Coef[1]-0.5) > 1e-9 {
		t.Fatal("slope wrong")
	}
	var _ *MLRInference = inf
	lo, hi := inf.ConfidenceInterval(model, 1, 1.96)
	// A perfect fit has ~zero-width CI around the estimate itself.
	if lo > model.Coef[1] || hi < model.Coef[1] || hi-lo > 1e-6 {
		t.Fatalf("CI [%g,%g] must be tight around %g", lo, hi, model.Coef[1])
	}
}
