// Stocks analyzes a ticker board with the paper's "last" folding (§6.2:
// "such as sum, avg, min, max, or last (e.g., stock closing value)") and a
// logarithmic tilt frame: minute quotes fold into daily closes, sector
// trends aggregate without raw data, and a doubling-coverage frame keeps a
// long trend horizon in a handful of slots.
//
//	go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	regcube "repro"
)

const (
	minutesPerDay = 390 // one trading session
	days          = 64
)

type ticker struct {
	symbol string
	sector string
	drift  float64 // per-minute price drift
	vol    float64
}

func main() {
	tickers := []ticker{
		{"APX", "tech", +0.0040, 0.8},
		{"BYT", "tech", +0.0025, 0.7},
		{"CRU", "energy", -0.0030, 0.5},
		{"DRL", "energy", -0.0012, 0.6},
		{"EAT", "retail", +0.0006, 0.4},
		{"FRM", "retail", -0.0004, 0.4},
	}
	rng := rand.New(rand.NewSource(42))

	// Per-ticker daily closing series built by FoldLast over minute bars.
	closes := make(map[string]*regcube.Series)
	for _, tk := range tickers {
		price := 100 + rng.Float64()*50
		minutes := make([]float64, minutesPerDay*days)
		for i := range minutes {
			price += tk.drift + rng.NormFloat64()*tk.vol
			if price < 1 {
				price = 1
			}
			minutes[i] = price
		}
		series, err := regcube.NewSeries(0, minutes)
		if err != nil {
			log.Fatal(err)
		}
		daily, err := regcube.Fold(series, minutesPerDay, regcube.FoldLast)
		if err != nil {
			log.Fatal(err)
		}
		closes[tk.symbol] = daily
	}

	// Fit each ticker's daily closes; rank by trend.
	type fit struct {
		symbol string
		isb    regcube.ISB
	}
	var fits []fit
	for sym, daily := range closes {
		isb, err := regcube.Fit(daily)
		if err != nil {
			log.Fatal(err)
		}
		fits = append(fits, fit{sym, isb})
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].isb.Slope > fits[j].isb.Slope })
	fmt.Printf("%d-day trends from daily closes (FoldLast over %d-minute sessions):\n", days, minutesPerDay)
	for _, f := range fits {
		fmt.Printf("  %-4s %+7.3f $/day   (last close %7.2f)\n", f.symbol, f.isb.Slope, f.isb.At(f.isb.Te))
	}

	// Sector trends via standard-dimension aggregation of the fitted
	// measures — a "sector index" whose slope is the sum of its members'
	// (Theorem 3.2), computed without re-touching any price series.
	bySector := map[string][]regcube.ISB{}
	for _, tk := range tickers {
		isb, err := regcube.Fit(closes[tk.symbol])
		if err != nil {
			log.Fatal(err)
		}
		bySector[tk.sector] = append(bySector[tk.sector], isb)
	}
	fmt.Println("\nsector composite trends (Theorem 3.2, no raw data):")
	sectors := make([]string, 0, len(bySector))
	for s := range bySector {
		sectors = append(sectors, s)
	}
	sort.Strings(sectors)
	for _, s := range sectors {
		agg, err := regcube.AggregateStandard(bySector[s]...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %+7.3f $/day composite\n", s, agg.Slope)
	}

	// A logarithmic tilt frame over APX daily closes: recent days at full
	// resolution, older history at doubling granularity.
	frame, err := regcube.NewFrame(regcube.LogarithmicFrameLevels(5, 1, 4), 0)
	if err != nil {
		log.Fatal(err)
	}
	apx := closes["APX"]
	for i, v := range apx.Values {
		if err := frame.Add(int64(i), v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nlogarithmic tilt frame over APX (%d days in %d slots, capacity %d):\n",
		days, frame.SlotsInUse(), frame.SlotCapacity())
	for lvl := 0; lvl < frame.Levels(); lvl++ {
		span := frame.Span(lvl)
		if isb, err := frame.Query(lvl, 1); err == nil {
			fmt.Printf("  last %2d-day window: slope %+7.3f $/day\n", span, isb.Slope)
		}
	}
}
