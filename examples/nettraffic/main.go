// Nettraffic monitors network flow volumes with the popular-path
// algorithm: an ISP-style cube over (protocol × region) with per-cuboid
// exception thresholds and an explicit popular drilling path, batch-style
// (the analyst re-cubes the last 5-minute window on demand).
//
//	go run ./examples/nettraffic
//
// A volumetric anomaly (one /16 flooding on UDP) is injected; the
// popular-path run finds it while computing a fraction of the cells
// m/o-cubing would.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	regcube "repro"
)

func main() {
	// Protocol hierarchy: class → protocol.
	proto := regcube.NewNamedHierarchy("proto")
	if err := proto.AddLevel([]string{"transport", "web"}, nil); err != nil {
		log.Fatal(err)
	}
	if err := proto.AddLevel([]string{"tcp", "udp", "http", "https"}, []int32{0, 0, 1, 1}); err != nil {
		log.Fatal(err)
	}
	// Region hierarchy: pop → /8 prefix → /16 prefix.
	region := regcube.NewNamedHierarchy("region")
	if err := region.AddLevel([]string{"us-east", "eu-west"}, nil); err != nil {
		log.Fatal(err)
	}
	slash8 := []string{"10/8", "11/8", "20/8", "21/8"}
	if err := region.AddLevel(slash8, []int32{0, 0, 1, 1}); err != nil {
		log.Fatal(err)
	}
	var slash16 []string
	var parents []int32
	for p := range slash8 {
		for i := 0; i < 4; i++ {
			slash16 = append(slash16, fmt.Sprintf("%s.%d/16", slash8[p][:2], i))
			parents = append(parents, int32(p))
		}
	}
	if err := region.AddLevel(slash16, parents); err != nil {
		log.Fatal(err)
	}

	schema, err := regcube.NewSchema(
		regcube.Dimension{Name: "proto", Hierarchy: proto, MLevel: 2, OLevel: 1},
		regcube.Dimension{Name: "region", Hierarchy: region, MLevel: 3, OLevel: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema: %s — %d cuboids between the critical layers\n",
		schema.Describe(), schema.CuboidCount())

	// Build the last window's m-layer: per (protocol, /16) flow-rate
	// series over 30 ticks (10-second buckets of a 5-minute window).
	rng := rand.New(rand.NewSource(99))
	var inputs []regcube.Input
	const ticks = 30
	for p := int32(0); p < 4; p++ {
		for r16 := int32(0); r16 < 16; r16++ {
			vals := make([]float64, ticks)
			for i := range vals {
				vals[i] = 100 + 10*float64(p) + rng.NormFloat64()*4
				if p == 1 && r16 == 6 { // udp flood ramping in 11.2/16
					vals[i] += 15 * float64(i)
				}
			}
			s, err := regcube.NewSeries(0, vals)
			if err != nil {
				log.Fatal(err)
			}
			isb, err := regcube.Fit(s)
			if err != nil {
				log.Fatal(err)
			}
			inputs = append(inputs, regcube.Input{Members: []int32{p, r16}, Measure: isb})
		}
	}

	// Per-cuboid thresholds: the coarse o-layer tolerates more aggregate
	// drift than fine cuboids (Framework 4.1 allows one per cuboid).
	lattice := regcube.NewLattice(schema)
	overrides := make(map[regcube.Cuboid]float64)
	for _, c := range lattice.Cuboids() {
		depth := c.Level(0) + c.Level(1)
		overrides[c] = 2.0 + 1.5*float64(5-depth) // deeper → tighter
	}
	thr := regcube.PerCuboidThreshold{Default: 4, Overrides: overrides}

	// The ops team's habitual drill order: protocol first, then region.
	path, err := lattice.PathFromSteps([]int{0, 1, 1})
	if err != nil {
		log.Fatal(err)
	}

	pp, err := regcube.PopularPath(schema, inputs, thr, path)
	if err != nil {
		log.Fatal(err)
	}
	mo, err := regcube.MOCubing(schema, inputs, thr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npopular-path computed %d cells; m/o-cubing computed %d (%.0f%% saved)\n",
		pp.Stats.CellsComputed, mo.Stats.CellsComputed,
		100*(1-float64(pp.Stats.CellsComputed)/float64(mo.Stats.CellsComputed)))

	cells := make([]regcube.Cell, 0, len(pp.Exceptions))
	for k, isb := range pp.Exceptions {
		cells = append(cells, regcube.Cell{Key: k, ISB: isb})
	}
	sort.Slice(cells, func(i, j int) bool {
		return abs(cells[i].ISB.Slope) > abs(cells[j].ISB.Slope)
	})
	fmt.Printf("\nexception drill-down (%d cells):\n", len(cells))
	for _, c := range cells {
		fmt.Printf("  %-28s %-22s slope=%+8.2f flows/s per bucket\n",
			c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
	}
	fmt.Println("\nthe steepest m-layer cell should be (udp, 11.2/16) — the injected flood.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
