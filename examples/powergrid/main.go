// Powergrid reproduces the paper's Example 1: a power supply station
// collecting per-minute usage streams at (user-group × street-block)
// granularity, analyzed online with quarter-hour units.
//
//	go run ./examples/powergrid
//
// The m-layer is (user-group, street-block, quarter); the o-layer is
// (*, city, hour)-style — here (user-category, district). A demand surge is
// injected in one street block; the engine raises an o-layer alert and the
// drill-down names the exceptional blocks ("exception supporters"), while a
// tilt time frame keeps multi-granularity history for one feeder.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	regcube "repro"
)

func main() {
	// Location hierarchy: 2 districts, 6 street blocks.
	loc := regcube.NewNamedHierarchy("location")
	if err := loc.AddLevel([]string{"north-district", "south-district"}, nil); err != nil {
		log.Fatal(err)
	}
	blocks := []string{"elm-block", "oak-block", "pine-block", "main-block", "lake-block", "hill-block"}
	if err := loc.AddLevel(blocks, []int32{0, 0, 0, 1, 1, 1}); err != nil {
		log.Fatal(err)
	}
	// User hierarchy: 2 categories, 4 groups.
	user := regcube.NewNamedHierarchy("user")
	if err := user.AddLevel([]string{"residential", "industrial"}, nil); err != nil {
		log.Fatal(err)
	}
	if err := user.AddLevel([]string{"homes", "apartments", "plants", "offices"}, []int32{0, 0, 1, 1}); err != nil {
		log.Fatal(err)
	}

	schema, err := regcube.NewSchema(
		regcube.Dimension{Name: "user", Hierarchy: user, MLevel: 2, OLevel: 1},
		regcube.Dimension{Name: "location", Hierarchy: loc, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	const minutesPerQuarter = 15
	eng, err := regcube.NewStreamEngine(regcube.StreamConfig{
		Schema:       schema,
		TicksPerUnit: minutesPerQuarter,
		Threshold:    regcube.GlobalThreshold(0.8), // kW per minute of trend
		Algorithm:    regcube.AlgorithmMOCubing,
		Delta:        &regcube.DeltaDetector{MinSlopeChange: 1.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A tilt frame tracks one feeder (homes × elm-block) across
	// quarter/hour granularities (scaled-down calendar frame).
	frame, err := regcube.NewFrame([]regcube.FrameLevel{
		{Name: "quarter", Multiple: minutesPerQuarter, Slots: 4},
		{Name: "hour", Multiple: 4, Slots: 24},
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	baseLoad := func(group, block int32) float64 { return 20 + 5*float64(group) + 3*float64(block) }

	// Stream 8 quarters (2 hours) of minute data; a surge hits pine-block
	// offices from minute 60 on (quarter 4+), ramping hard within each
	// quarter.
	const quarters = 8
	var alerts []regcube.Alert
	for minute := int64(0); minute < quarters*minutesPerQuarter; minute++ {
		for g := int32(0); g < 4; g++ {
			for blk := int32(0); blk < 6; blk++ {
				load := baseLoad(g, blk) + rng.NormFloat64()*0.5 +
					2*math.Sin(2*math.Pi*float64(minute)/60) // mild hourly cycle
				if minute >= 60 && blk == 2 && g == 3 {
					load += 3 * float64(minute%minutesPerQuarter) // surge: +3 kW per minute
				}
				closed, err := eng.Ingest([]int32{g, blk}, minute, load)
				if err != nil {
					log.Fatal(err)
				}
				for _, ur := range closed {
					alerts = append(alerts, ur.Alerts...)
				}
				if g == 0 && blk == 0 {
					if err := frame.Add(minute, load); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	if ur, err := eng.Flush(); err != nil {
		log.Fatal(err)
	} else {
		alerts = append(alerts, ur.Alerts...)
	}

	fmt.Printf("processed %d quarters; %d alerts raised\n\n", eng.UnitsDone(), len(alerts))
	for _, al := range alerts {
		fmt.Printf("[quarter %d] %s at %s  slope=%+.2f kW/min\n",
			al.Unit, al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
		for _, c := range al.Drill {
			fmt.Printf("    supporter: %-28s %s slope=%+.2f\n",
				c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
		}
	}

	// Multi-granularity trend queries from the tilt frame (Example 3):
	// the last hour at quarter precision vs. the last 2 hours at hour
	// precision — all from 4-number slots, no raw minutes retained.
	fmt.Printf("\ntilt frame for homes×elm-block: %d/%d slots in use\n",
		frame.SlotsInUse(), frame.SlotCapacity())
	if isb, err := frame.Query(0, 4); err == nil {
		fmt.Printf("  last hour  (4 quarters): slope %+.3f kW/min over %v\n", isb.Slope, isb.Interval())
	}
	if isb, err := frame.Query(1, 2); err == nil {
		fmt.Printf("  last 2 hrs (2 hours):    slope %+.3f kW/min over %v\n", isb.Slope, isb.Interval())
	}

	// The o-layer trend over the last 4 quarters for the surging district.
	oCell := regcube.CellKey{Cuboid: schema.OLayer()}
	oCell.Members[0] = 1 // industrial
	oCell.Members[1] = 0 // north-district (pine-block's parent)
	if isb, err := eng.TrendQuery(oCell, 4); err == nil {
		fmt.Printf("\nindustrial × north-district, last 4 quarters: slope %+.3f kW/min\n", isb.Slope)
	}
}
