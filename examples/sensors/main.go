// Sensors exercises the paper's §6.2 extensions: multiple linear
// regression over spatio-temporal sensor data (regressors t, x, y) with
// distributed sufficient-statistic merging, and time-dimension folding of
// daily series into monthly granularity with SQL aggregates.
//
//	go run ./examples/sensors
//
// "For environmental monitoring ... one may wish do regression not only on
// the time dimension, but also the three spatial dimensions."
package main

import (
	"fmt"
	"log"
	"math/rand"

	regcube "repro"
)

func main() {
	// --- Part 1: spatio-temporal multiple regression. -------------------
	// Ground truth: temperature = 12 + 0.02·t − 0.5·x + 0.8·y + noise.
	// Three sensor stations each observe their own (irregular!) ticks; the
	// regional model is recovered by merging sufficient statistics only —
	// no raw readings leave the stations.
	truth := func(t, x, y float64) float64 { return 12 + 0.02*t - 0.5*x + 0.8*y }
	rng := rand.New(rand.NewSource(11))

	stations := []struct {
		name string
		x, y float64
	}{
		{"ridge", 0.0, 4.0},
		{"valley", 3.0, 0.5},
		{"lake", 1.5, 2.0},
	}
	var parts []*regcube.MLR
	for si, st := range stations {
		m := regcube.NewMLR(regcube.LinearBasis(3))       // features: 1, t, x, y
		localTrend := regcube.NewMLR(regcube.TimeBasis()) // a station alone cannot identify d/dx, d/dy
		tick := float64(si)                               // stations start at staggered times
		for i := 0; i < 400; i++ {
			tick += 1 + rng.Float64()*3 // irregular sampling
			val := truth(tick, st.x, st.y) + rng.NormFloat64()*0.3
			if err := m.Observe([]float64{tick, st.x, st.y}, val); err != nil {
				log.Fatal(err)
			}
			if err := localTrend.Observe([]float64{tick}, val); err != nil {
				log.Fatal(err)
			}
		}
		local, err := localTrend.Fit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("station %-7s local time-only fit: level %.3f, d/dt %.4f (n=%d)\n",
			st.name, local.Coef[0], local.Coef[1], local.N)
		parts = append(parts, m)
	}

	merged, err := regcube.MergeMLRTime(parts...)
	if err != nil {
		log.Fatal(err)
	}
	model, err := merged.Fit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregional model from merged statistics (n=%d, R²=%.4f):\n", model.N, model.R2)
	names := []string{"intercept", "d/dt", "d/dx", "d/dy"}
	wants := []float64{12, 0.02, -0.5, 0.8}
	for i, c := range model.Coef {
		fmt.Printf("  %-9s %+8.4f   (truth %+8.4f)\n", names[i], c, wants[i])
	}
	fmt.Printf("forecast at t=2000, station lake: %.2f°C\n\n", model.Predict([]float64{2000, 1.5, 2.0}))

	// --- Part 2: folding the time dimension (§6.2). ---------------------
	// A year of daily mean temperatures folds into 12 monthly values with
	// avg (and into monthly peaks with max) — "starting with ... daily
	// level for the 12 months of a year, we may want to combine them into
	// one, for the whole year, at the monthly level."
	const days, perMonth = 360, 30
	daily := make([]float64, days)
	for d := range daily {
		daily[d] = 10 + 0.01*float64(d) + rng.NormFloat64()*1.5 // warming trend
	}
	series, err := regcube.NewSeries(0, daily)
	if err != nil {
		log.Fatal(err)
	}
	monthlyAvg, err := regcube.Fold(series, perMonth, regcube.FoldAvg)
	if err != nil {
		log.Fatal(err)
	}
	monthlyMax, _ := regcube.Fold(series, perMonth, regcube.FoldMax)
	avgFit, _ := regcube.Fit(monthlyAvg)
	maxFit, _ := regcube.Fit(monthlyMax)
	fmt.Printf("daily→monthly folding over %d days:\n", days)
	fmt.Printf("  avg-folded trend: %+0.4f °C/month (daily trend 0.01 ⇒ ≈0.30 expected)\n", avgFit.Slope)
	fmt.Printf("  max-folded trend: %+0.4f °C/month\n", maxFit.Slope)

	// The closed-form FoldISB agrees with folding raw data, without ever
	// materializing the monthly series.
	dailyFit, _ := regcube.Fit(series)
	closed, err := regcube.FoldISB(dailyFit, perMonth, regcube.FoldAvg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FoldISB(closed form) trend: %+0.4f °C/month — no raw data touched\n", closed.Slope)
}
