// Serving: run the sharded online analyzer and the HTTP query API in one
// process, then play analyst against it through the Go client SDK.
//
//	go run ./examples/serving
//
// A 4-shard engine ingests a synthetic power-grid-style stream while the
// query server answers from per-unit snapshots — the same lock-free path
// `streamd -listen` uses. The example queries its own server over
// loopback mid-ingest with the typed client (repro/client) and prints
// what an analyst dashboard would show, ending with one POST /v1/query
// batch that fetches a whole dashboard refresh in a single
// unit-consistent round trip.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	regcube "repro"
	"repro/client"
)

func main() {
	// Two dimensions (region, appliance-class), fanout 3, two levels:
	// 9×9 m-cells rolling up to a 3×3 o-layer — 9 shard partitions.
	hr, err := regcube.NewFanoutHierarchy("region", 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	ha, err := regcube.NewFanoutHierarchy("appliance", 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := regcube.NewSchema(
		regcube.Dimension{Name: "region", Hierarchy: hr, MLevel: 2, OLevel: 1},
		regcube.Dimension{Name: "appliance", Hierarchy: ha, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := regcube.NewShardedStreamEngine(regcube.StreamConfig{
		Schema:       schema,
		TicksPerUnit: 15, // a quarter of an hour of minute readings
		Threshold:    regcube.GlobalThreshold(0.4),
		// Tilted history: each unit is a "quarter"; 2 quarters make a
		// "half" and 2 halves an "hour", so trends reach back at three
		// granularities while per-cell state stays at 10 slots.
		TiltLevels: []regcube.FrameLevel{
			{Name: "quarter", Multiple: 1, Slots: 4},
			{Name: "half", Multiple: 2, Slots: 4},
			{Name: "hour", Multiple: 2, Slots: 2},
		},
		// The serving layer reads immutable per-unit snapshots.
		PublishSnapshots: true,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The query API over the engine, on a loopback listener, and the
	// typed SDK client over that.
	ts := httptest.NewServer(regcube.NewQueryServer(eng, schema))
	defer ts.Close()
	fmt.Printf("query API listening on %s\n", ts.URL)
	c, err := client.New(client.WithEndpoints(ts.URL))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Stream four units of readings: usage in region 2 trends up steeply,
	// everything else stays flat.
	for tick := int64(0); tick < 61; tick++ {
		for r := int32(0); r < 9; r++ {
			for a := int32(0); a < 9; a++ {
				usage := 5.0
				if r >= 6 { // children of o-level region 2
					usage += float64(tick) * float64(a+1) * 0.1
				}
				if _, err := eng.Ingest([]int32{r, a}, tick, usage); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// The dashboard's poll loop, condensed to typed calls.
	health, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving unit %d (%d units done)\n", health.Unit, health.UnitsDone)

	ex, err := c.Exceptions(ctx, client.ExceptionsRequest{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d exception cells; steepest 3:\n", ex.Count)
	for _, cell := range ex.Cells {
		fmt.Printf("  %-34s slope %+0.2f\n", cell.Name, cell.ISB.Slope)
	}

	// Drill into the hot o-cell's supporters and pull its 4-unit trend.
	hot := client.OCell(2, 0)
	sup, err := c.Supporters(ctx, client.SupportersRequest{CellRef: hot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("o-cell (region 2, appliance 0) has %d exception supporters\n", sup.Count)

	trend, err := c.Trend(ctx, client.TrendRequest{CellRef: hot, K: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-unit trend of (region 2, appliance 0): slope %+0.3f per tick\n", trend.Cell.ISB.Slope)

	// The same cell at a coarser tilt granularity: the last "hour" (4
	// units) is answered from one promoted slot, not four.
	hour, err := c.Trend(ctx, client.TrendRequest{CellRef: hot, K: 1, Level: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-%s trend of (region 2, appliance 0): slope %+0.3f per tick\n", hour.Level, hour.Cell.ISB.Slope)

	// And the frame itself: per-level slot occupancy of the tilted
	// register (Figure 4's "now" edge on the right).
	frame, err := c.Frame(ctx, client.FrameRequest{CellRef: hot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tilted frame of (region 2, appliance 0): %d slots in use\n", frame.SlotsInUse)
	for _, lv := range frame.Levels {
		fmt.Printf("  %-8s %2d slots × %d ticks\n", lv.Name, len(lv.Slots), lv.UnitTicks)
	}

	// A whole dashboard refresh in one POST /v1/query round trip: every
	// result answers from the same snapshot, so the summary, alert list,
	// and ranked exceptions can never mix units.
	reply, err := c.Batch(ctx,
		client.SummaryRequest{},
		client.AlertsRequest{},
		client.ExceptionsRequest{K: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range reply.Results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
	}
	sum := reply.Results[0].Response.(*client.SummaryResponse)
	alerts := reply.Results[1].Response.(*client.AlertsResponse)
	top := reply.Results[2].Response.(*client.CellsResponse)
	fmt.Printf("batch @ unit %d: %d o-cells, %d alerts, steepest exception %s\n",
		reply.Unit, sum.OCells, len(alerts.Alerts), top.Cells[0].Name)
}
