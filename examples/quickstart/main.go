// Quickstart: a 60-second tour of the regcube public API.
//
//	go run ./examples/quickstart
//
// It walks the paper's pipeline end to end: fit a time series into the
// 4-number ISB measure, aggregate measures without raw data (Theorems
// 3.2/3.3), then compute an exception-based regression cube between the
// m-layer and o-layer with both algorithms.
package main

import (
	"fmt"
	"log"

	regcube "repro"
)

func main() {
	// --- 1. Compress a time series into an ISB regression measure. -----
	// The series from the paper's Example 2.
	z, err := regcube.NewSeries(0, []float64{0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56})
	if err != nil {
		log.Fatal(err)
	}
	isb, err := regcube.Fit(z)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 2 fit: %v  (slope %.5f per tick)\n", isb, isb.Slope)

	// --- 2. Aggregate measures without touching raw data. --------------
	// Standard dimension: two sensors' series summed pointwise.
	a, _ := regcube.NewSeries(0, []float64{1, 2, 3, 4, 5})
	b, _ := regcube.NewSeries(0, []float64{2, 2, 2, 2, 2})
	ia, _ := regcube.Fit(a)
	ib, _ := regcube.Fit(b)
	sum, _ := regcube.AggregateStandard(ia, ib)
	fmt.Printf("standard agg:  %v + %v = %v\n", ia, ib, sum)

	// Time dimension: two adjacent quarters into one half hour.
	q1, _ := regcube.NewSeries(0, []float64{10, 11, 12})
	q2, _ := regcube.NewSeries(3, []float64{13, 15, 17})
	iq1, _ := regcube.Fit(q1)
	iq2, _ := regcube.Fit(q2)
	half, _ := regcube.AggregateTime(iq1, iq2)
	fmt.Printf("time agg:      %v ⧺ %v = %v\n", iq1, iq2, half)

	// --- 3. Build a regression cube and find exceptions. ---------------
	// Synthetic D2L2C4 workload with 2000 m-layer tuples.
	spec, _ := regcube.ParseDatasetSpec("D2L2C4T2K")
	ds, err := regcube.GenerateDataset(regcube.DatasetConfig{Spec: spec, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	thr := ds.CalibrateThreshold(0.01) // 1% of cells exceptional
	res, err := regcube.MOCubing(ds.Schema, ds.Inputs, regcube.GlobalThreshold(thr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nm/o-cubing over %s: %d o-layer cells, %d exception cells (threshold %.2f)\n",
		spec, len(res.OLayer), len(res.Exceptions), thr)

	// The popular-path algorithm retains a subset of the same exceptions.
	lattice := regcube.NewLattice(ds.Schema)
	pp, err := regcube.PopularPath(ds.Schema, ds.Inputs, regcube.GlobalThreshold(thr), lattice.DefaultPath())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popular-path:            %d o-layer cells, %d exception cells\n",
		len(pp.OLayer), len(pp.Exceptions))
	fmt.Printf("\nstats: m/o computed %d cells, popular-path %d (of %d cuboids)\n",
		res.Stats.CellsComputed, pp.Stats.CellsComputed, ds.Schema.CuboidCount())
}
