// Deltawatch demonstrates the paper's second exception semantics (§4.3):
// "the regression line may refer to ... the current cell (such as the
// current quarter) vs. the previous one". Two adjacent observation windows
// of an e-commerce order stream are compared cell-by-cell at every cuboid;
// cells whose *trend changed* — not merely cells with steep trends — are
// surfaced and drilled.
//
//	go run ./examples/deltawatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	regcube "repro"
)

func main() {
	// Product hierarchy: 3 categories × 4 SKUs each.
	product := regcube.NewNamedHierarchy("product")
	if err := product.AddLevel([]string{"electronics", "grocery", "apparel"}, nil); err != nil {
		log.Fatal(err)
	}
	var skus []string
	var parents []int32
	for c := 0; c < 3; c++ {
		for i := 0; i < 4; i++ {
			skus = append(skus, fmt.Sprintf("sku-%c%d", 'A'+c, i))
			parents = append(parents, int32(c))
		}
	}
	if err := product.AddLevel(skus, parents); err != nil {
		log.Fatal(err)
	}
	// Channel hierarchy: 2 channels × 2 storefronts.
	channel := regcube.NewNamedHierarchy("channel")
	if err := channel.AddLevel([]string{"web", "mobile"}, nil); err != nil {
		log.Fatal(err)
	}
	if err := channel.AddLevel([]string{"web-us", "web-eu", "app-ios", "app-android"}, []int32{0, 0, 1, 1}); err != nil {
		log.Fatal(err)
	}
	schema, err := regcube.NewSchema(
		regcube.Dimension{Name: "product", Hierarchy: product, MLevel: 2, OLevel: 1},
		regcube.Dimension{Name: "channel", Hierarchy: channel, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Build the two windows' m-layers: order rates per (sku, storefront)
	// over two adjacent hours (ticks of 1 minute, 60 per window).
	rng := rand.New(rand.NewSource(8))
	window := func(tb int64, changedSKU, changedStore int32, newSlope float64) []regcube.Input {
		var inputs []regcube.Input
		for sku := int32(0); sku < 12; sku++ {
			for store := int32(0); store < 4; store++ {
				slope := 0.05 // business as usual: mild growth everywhere
				if sku == changedSKU && store == changedStore {
					slope = newSlope
				}
				vals := make([]float64, 60)
				for i := range vals {
					vals[i] = 50 + slope*float64(i) + rng.NormFloat64()*0.5
				}
				s, err := regcube.NewSeries(tb, vals)
				if err != nil {
					log.Fatal(err)
				}
				isb, err := regcube.Fit(s)
				if err != nil {
					log.Fatal(err)
				}
				inputs = append(inputs, regcube.Input{Members: []int32{sku, store}, Measure: isb})
			}
		}
		return inputs
	}
	// Previous hour: sku-B2 on app-ios was ALREADY trending at +2/min.
	prev := window(0, 6, 2, 2.0)
	// Current hour: the same cell collapses to −1.5/min — a trend reversal
	// that plain slope-threshold watching at +2 would have tolerated.
	cur := window(60, 6, 2, -1.5)

	res, err := regcube.DeltaCubing(schema, cur, prev, regcube.DeltaDetector{MinSlopeChange: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windows: [0,59] vs [60,119] minutes; %d cells changed by ≥1 order/min of trend\n\n",
		len(res.Exceptions))

	cells := make([]regcube.DeltaCell, 0, len(res.Exceptions))
	for _, dc := range res.Exceptions {
		cells = append(cells, dc)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].SlopeChange() > cells[j].SlopeChange() })
	for _, dc := range cells {
		fmt.Printf("  %-26s %-22s trend %+5.2f → %+5.2f (Δ %.2f)\n",
			dc.Key.Describe(schema), dc.Key.Cuboid.Describe(schema),
			dc.Prev.Slope, dc.Cur.Slope, dc.SlopeChange())
	}
	fmt.Println("\nthe reversal surfaces at every level from (mobile, grocery) down to the SKU –")
	fmt.Println("steady-state slope watching would have missed it entirely.")
}
