package regcube

import (
	"bytes"
	"testing"
)

// The facade surface for the sharded analyzer: construct, ingest, flush,
// checkpoint through the versioned envelope, and restore — with results
// identical to the single-engine facade path.
func TestShardedFacadeRoundTrip(t *testing.T) {
	h, err := NewFanoutHierarchy("region", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(Dimension{Name: "region", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Schema: schema, TicksPerUnit: 4, Threshold: GlobalThreshold(0.5)}

	single, err := NewStreamEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedStreamEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	var wantAlerts, gotAlerts []Alert
	for tick := int64(0); tick < 8; tick++ {
		for m := int32(0); m < 16; m++ {
			v := float64(tick) * float64(m%5)
			ws, err := single.Ingest([]int32{m}, tick, v)
			if err != nil {
				t.Fatal(err)
			}
			gs, err := sharded.Ingest([]int32{m}, tick, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, ur := range ws {
				wantAlerts = append(wantAlerts, ur.Alerts...)
			}
			for _, ur := range gs {
				gotAlerts = append(gotAlerts, ur.Alerts...)
			}
		}
	}
	wf, err := single.Flush()
	if err != nil {
		t.Fatal(err)
	}
	gf, err := sharded.Flush()
	if err != nil {
		t.Fatal(err)
	}
	wantAlerts = append(wantAlerts, wf.Alerts...)
	gotAlerts = append(gotAlerts, gf.Alerts...)
	SortStreamAlerts(wantAlerts)
	SortStreamAlerts(gotAlerts)
	if len(wantAlerts) == 0 {
		t.Fatal("expected alerts from rising slopes")
	}
	if len(wantAlerts) != len(gotAlerts) {
		t.Fatalf("alerts: %d vs %d", len(gotAlerts), len(wantAlerts))
	}
	for i := range wantAlerts {
		if wantAlerts[i].Cell != gotAlerts[i].Cell || wantAlerts[i].ISB != gotAlerts[i].ISB {
			t.Fatalf("alert %d differs: %+v vs %+v", i, gotAlerts[i], wantAlerts[i])
		}
	}

	// Versioned checkpoint envelope round-trips through the facade.
	scp, err := sharded.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteShardedCheckpoint(&buf, scp); err != nil {
		t.Fatal(err)
	}
	// The same file serves a sharded engine (any count) or a single engine.
	raw := buf.Bytes()
	back, err := ReadShardedCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewShardedStreamEngine(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Restore(back); err != nil {
		t.Fatal(err)
	}
	if restored.Unit() != sharded.Unit() {
		t.Fatalf("restored unit %d, want %d", restored.Unit(), sharded.Unit())
	}
	cp, err := ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewStreamEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if plain.Unit() != single.Unit() {
		t.Fatalf("merged-restore unit %d, want %d", plain.Unit(), single.Unit())
	}
}
