package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecodeFrame drives the wire decoder stack — frame walk plus
// columnar batch decode — with arbitrary bytes. Every input must yield a
// clean decode, io.EOF, or a typed ErrTorn/ErrCorrupt; never a panic and
// never an undeclared error. This is the surface a hostile or damaged
// producer stream exercises on streamd's stdin.
func FuzzWireDecodeFrame(f *testing.F) {
	// Seeds: a healthy frame around a real batch, torn tails at several
	// offsets, zero fill, a bit flip, an oversized length prefix, a
	// zero-length frame, and two frames back to back.
	valid := EncodeFrame(nil, AppendBatch(nil, sampleBatch(2, 3)))
	f.Add(valid)
	f.Add(valid[:3])
	f.Add(valid[:FrameHeaderLen])
	f.Add(valid[:len(valid)-2])
	f.Add(make([]byte, 64))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add(append(append([]byte(nil), valid...), valid...))
	// A frame whose payload is valid framing but corrupt batch bytes.
	f.Add(EncodeFrame(nil, []byte{Version, 200, 12, 1, 2, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		var b Batch
		rest := data
		for {
			payload, n, err := DecodeFrame(rest)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("DecodeFrame: undeclared error %v", err)
				}
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(rest))
			}
			count, err := DecodeBatch(payload, 0, &b)
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeBatch: undeclared error %v", err)
			}
			if err == nil {
				// A batch that decodes must re-encode to bytes that decode
				// to the same count — the codec is its own inverse on the
				// valid subset.
				re := AppendBatch(nil, &b)
				var b2 Batch
				n2, err := DecodeBatch(re, len(b.Cols), &b2)
				if err != nil || n2 != count {
					t.Fatalf("re-encode decoded %d, %v; want %d", n2, err, count)
				}
			}
			rest = rest[n:]
		}

		// The stream reader must fail with the same typed errors on the
		// raw input treated as a full stream (header + frames).
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader: undeclared error %v", err)
			}
			return
		}
		for {
			if _, err := r.Next(&b); err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Reader.Next: undeclared error %v", err)
				}
				return
			}
		}
	})
}
