package wire

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
)

// Writer encodes records into columnar batches and ships each batch as
// one frame. The stream header goes out at construction, a frame goes out
// whenever the pending batch reaches BatchRecords or Flush is called, and
// empty batches are never written. Not safe for concurrent use.
type Writer struct {
	w io.Writer
	// BatchRecords is the auto-flush threshold (DefaultBatchRecords when
	// left zero at construction).
	BatchRecords int
	dims         int
	batch        Batch
	buf          []byte // frame scratch, reused
}

// NewWriter writes the stream header for dims dimensions and returns a
// Writer for it.
func NewWriter(w io.Writer, dims int) (*Writer, error) {
	if dims < 1 || dims > MaxDims {
		return nil, fmt.Errorf("%w: %d dimensions outside [1,%d]", ErrCorrupt, dims, MaxDims)
	}
	bw := &Writer{w: w, BatchRecords: DefaultBatchRecords, dims: dims}
	bw.batch.Reset(dims)
	if _, err := w.Write(EncodeHeader(bw.buf[:0], dims)); err != nil {
		return nil, err
	}
	return bw, nil
}

// Append buffers one record, flushing a full batch as a frame. members
// must have exactly dims entries.
func (bw *Writer) Append(tick int64, members []int32, value float64) error {
	if len(members) != bw.dims {
		return fmt.Errorf("%w: record has %d members, stream has %d dimensions", ErrCorrupt, len(members), bw.dims)
	}
	bw.batch.Append(tick, members, value)
	if bw.batch.Len() >= bw.BatchRecords || bw.batch.Len() >= MaxBatchRecords {
		return bw.Flush()
	}
	return nil
}

// Flush frames and writes the pending batch, if any.
func (bw *Writer) Flush() error {
	if bw.batch.Len() == 0 {
		return nil
	}
	payload := AppendBatch(bw.buf[:0], &bw.batch)
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: batch encodes to %d bytes, frame cap %d", ErrCorrupt, len(payload), MaxFramePayload)
	}
	// One buffer backs both: the complete frame (header plus payload
	// copy) is appended after the payload scratch and written in one call.
	frame := EncodeFrame(payload[len(payload):], payload)
	bw.buf = payload
	if _, err := bw.w.Write(frame); err != nil {
		return err
	}
	bw.batch.Reset(bw.dims)
	return nil
}

// Reader decodes a binary record stream: the header at construction, then
// one columnar batch per Next call, into caller-reused Batch storage. Not
// safe for concurrent use.
type Reader struct {
	br   *bufio.Reader
	dims int
	buf  []byte // frame payload scratch, reused
}

// NewReader consumes and validates the stream header. r is wrapped in a
// bufio.Reader unless it already is one.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside the header", ErrTorn)
		}
		return nil, err
	}
	dims, err := DecodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	return &Reader{br: br, dims: dims}, nil
}

// Dims returns the dimension count the stream header promised.
func (r *Reader) Dims() int { return r.dims }

// Next reads one frame and decodes its batch into b, returning the record
// count. A clean end of stream is io.EOF; a stream that dies mid-frame is
// ErrTorn; invalid bytes are ErrCorrupt.
func (r *Reader) Next(b *Batch) (int, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: stream ended inside a frame header", ErrTorn)
		}
		return 0, err
	}
	length := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if length == 0 || length > MaxFramePayload {
		return 0, fmt.Errorf("%w: frame length %d outside (0,%d]", ErrCorrupt, length, MaxFramePayload)
	}
	if cap(r.buf) < FrameHeaderLen+length {
		r.buf = make([]byte, FrameHeaderLen+length)
	}
	frame := r.buf[:FrameHeaderLen+length]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r.br, frame[FrameHeaderLen:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, fmt.Errorf("%w: stream ended inside a %d-byte frame", ErrTorn, length)
		}
		return 0, err
	}
	payload, _, err := DecodeFrame(frame)
	if err != nil {
		return 0, err
	}
	return DecodeBatch(payload, r.dims, b)
}

// Format labels the two ingest encodings for observability.
type Format int

const (
	// FormatText is the line-oriented tick,dims...,value encoding.
	FormatText Format = iota
	// FormatBinary is this package's framed columnar encoding.
	FormatBinary
	numFormats
)

// String returns the metric label value.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// Formats lists the label values in rendering order.
var Formats = [numFormats]Format{FormatText, FormatBinary}

// IngestStats counts the ingest edge per format: records decoded, frames
// (batches) handed to the engine, and decode failures. streamd's reader
// goroutine writes, the /metrics endpoint reads; all fields are atomic so
// neither side takes a lock.
type IngestStats struct {
	records      [numFormats]atomic.Int64
	frames       [numFormats]atomic.Int64
	decodeErrors [numFormats]atomic.Int64
}

// AddRecords counts n decoded records.
func (s *IngestStats) AddRecords(f Format, n int) { s.records[f].Add(int64(n)) }

// AddFrame counts one decoded frame (for text, one batch cut from the
// line stream).
func (s *IngestStats) AddFrame(f Format) { s.frames[f].Add(1) }

// AddDecodeError counts one decode failure.
func (s *IngestStats) AddDecodeError(f Format) { s.decodeErrors[f].Add(1) }

// Records returns the decoded-record count for a format.
func (s *IngestStats) Records(f Format) int64 { return s.records[f].Load() }

// Frames returns the decoded-frame count for a format.
func (s *IngestStats) Frames(f Format) int64 { return s.frames[f].Load() }

// DecodeErrors returns the decode-failure count for a format.
func (s *IngestStats) DecodeErrors(f Format) int64 { return s.decodeErrors[f].Load() }
