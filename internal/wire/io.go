package wire

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
)

// Writer encodes records into columnar batches and ships each batch as
// one frame. The stream header goes out at construction, a frame goes out
// whenever the pending batch reaches BatchRecords or Flush is called, and
// empty batches are never written. Not safe for concurrent use.
type Writer struct {
	w io.Writer
	// BatchRecords is the auto-flush threshold (DefaultBatchRecords when
	// left zero at construction).
	BatchRecords int
	dims         int
	batch        Batch
	buf          []byte // frame scratch, reused
}

// NewWriter writes the stream header for dims dimensions and returns a
// Writer for it.
func NewWriter(w io.Writer, dims int) (*Writer, error) {
	if dims < 1 || dims > MaxDims {
		return nil, fmt.Errorf("%w: %d dimensions outside [1,%d]", ErrCorrupt, dims, MaxDims)
	}
	bw := &Writer{w: w, BatchRecords: DefaultBatchRecords, dims: dims}
	bw.batch.Reset(dims)
	if _, err := w.Write(EncodeHeader(bw.buf[:0], dims)); err != nil {
		return nil, err
	}
	return bw, nil
}

// Append buffers one record, flushing a full batch as a frame. members
// must have exactly dims entries.
func (bw *Writer) Append(tick int64, members []int32, value float64) error {
	if len(members) != bw.dims {
		return fmt.Errorf("%w: record has %d members, stream has %d dimensions", ErrCorrupt, len(members), bw.dims)
	}
	bw.batch.Append(tick, members, value)
	if bw.batch.Len() >= bw.BatchRecords || bw.batch.Len() >= MaxBatchRecords {
		return bw.Flush()
	}
	return nil
}

// Flush frames and writes the pending batch, if any.
func (bw *Writer) Flush() error {
	if bw.batch.Len() == 0 {
		return nil
	}
	payload := AppendBatch(bw.buf[:0], &bw.batch)
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: batch encodes to %d bytes, frame cap %d", ErrCorrupt, len(payload), MaxFramePayload)
	}
	// One buffer backs both: the complete frame (header plus payload
	// copy) is appended after the payload scratch and written in one call.
	frame := EncodeFrame(payload[len(payload):], payload)
	bw.buf = payload
	if _, err := bw.w.Write(frame); err != nil {
		return err
	}
	bw.batch.Reset(bw.dims)
	return nil
}

// WriteControl flushes the pending batch, then frames and writes one
// control payload. The flush keeps the stream's record/control order equal
// to the caller's Append/WriteControl order — a barrier must never pass
// records buffered before it.
func (bw *Writer) WriteControl(c Control) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	payload := AppendControl(bw.buf[:0], c)
	frame := EncodeFrame(payload[len(payload):], payload)
	bw.buf = payload
	_, err := bw.w.Write(frame)
	return err
}

// Reader decodes a binary record stream: the header at construction, then
// one columnar batch per Next call, into caller-reused Batch storage. Not
// safe for concurrent use.
type Reader struct {
	br   *bufio.Reader
	dims int
	buf  []byte // frame payload scratch, reused
}

// NewReader consumes and validates the stream header. r is wrapped in a
// bufio.Reader unless it already is one.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside the header", ErrTorn)
		}
		return nil, err
	}
	dims, err := DecodeHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	return &Reader{br: br, dims: dims}, nil
}

// Dims returns the dimension count the stream header promised.
func (r *Reader) Dims() int { return r.dims }

// readFrame reads and checksums one complete frame, returning its payload
// (valid until the next call). A clean end of stream is io.EOF; a stream
// that dies mid-frame is ErrTorn; invalid bytes are ErrCorrupt. Because it
// reads through io.ReadFull, reassembly is correct over any byte-stream
// framing — a TCP peer delivering one byte at a time decodes identically
// to a file read whole.
func (r *Reader) readFrame() ([]byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside a frame header", ErrTorn)
		}
		return nil, err
	}
	length := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if length == 0 || length > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame length %d outside (0,%d]", ErrCorrupt, length, MaxFramePayload)
	}
	if cap(r.buf) < FrameHeaderLen+length {
		r.buf = make([]byte, FrameHeaderLen+length)
	}
	frame := r.buf[:FrameHeaderLen+length]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r.br, frame[FrameHeaderLen:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside a %d-byte frame", ErrTorn, length)
		}
		return nil, err
	}
	payload, _, err := DecodeFrame(frame)
	return payload, err
}

// Next reads one frame and decodes its batch into b, returning the record
// count. A clean end of stream is io.EOF; a stream that dies mid-frame is
// ErrTorn; invalid bytes are ErrCorrupt. A control frame is ErrCorrupt
// here — consumers that speak the control protocol use NextAny.
func (r *Reader) Next(b *Batch) (int, error) {
	payload, err := r.readFrame()
	if err != nil {
		return 0, err
	}
	return DecodeBatch(payload, r.dims, b)
}

// NextAny reads one frame and decodes it as either a record batch (into b,
// ctrl false) or a control frame (into c, ctrl true, n zero). Clean EOF,
// torn tails, and corruption report exactly as Next.
func (r *Reader) NextAny(b *Batch) (n int, c Control, ctrl bool, err error) {
	payload, err := r.readFrame()
	if err != nil {
		return 0, Control{}, false, err
	}
	if IsControl(payload) {
		c, err = DecodeControl(payload)
		return 0, c, true, err
	}
	n, err = DecodeBatch(payload, r.dims, b)
	return n, Control{}, false, err
}

// Format labels the two ingest encodings for observability.
type Format int

const (
	// FormatText is the line-oriented tick,dims...,value encoding.
	FormatText Format = iota
	// FormatBinary is this package's framed columnar encoding.
	FormatBinary
	numFormats
)

// String returns the metric label value.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// Formats lists the label values in rendering order.
var Formats = [numFormats]Format{FormatText, FormatBinary}

// Source labels where an ingest byte stream arrived from, so a cluster
// node's metrics distinguish piped ingest from router traffic.
type Source int

const (
	// SourceStdin is the process's standard input (piped or redirected).
	SourceStdin Source = iota
	// SourceTCP is a routed connection accepted on -ingest-listen.
	SourceTCP
	numSources
)

// String returns the metric label value.
func (s Source) String() string {
	if s == SourceTCP {
		return "tcp"
	}
	return "stdin"
}

// Sources lists the label values in rendering order.
var Sources = [numSources]Source{SourceStdin, SourceTCP}

// IngestStats counts the ingest edge per (format, source) pair: records
// decoded, frames (batches) handed to the engine, and decode failures.
// streamd's reader goroutine writes, the /metrics endpoint reads; all
// fields are atomic so neither side takes a lock.
type IngestStats struct {
	records      [numFormats][numSources]atomic.Int64
	frames       [numFormats][numSources]atomic.Int64
	decodeErrors [numFormats][numSources]atomic.Int64
}

// AddRecords counts n decoded records.
func (s *IngestStats) AddRecords(f Format, src Source, n int) { s.records[f][src].Add(int64(n)) }

// AddFrame counts one decoded frame (for text, one batch cut from the
// line stream).
func (s *IngestStats) AddFrame(f Format, src Source) { s.frames[f][src].Add(1) }

// AddDecodeError counts one decode failure.
func (s *IngestStats) AddDecodeError(f Format, src Source) { s.decodeErrors[f][src].Add(1) }

// Records returns the decoded-record count for a format and source.
func (s *IngestStats) Records(f Format, src Source) int64 { return s.records[f][src].Load() }

// Frames returns the decoded-frame count for a format and source.
func (s *IngestStats) Frames(f Format, src Source) int64 { return s.frames[f][src].Load() }

// DecodeErrors returns the decode-failure count for a format and source.
func (s *IngestStats) DecodeErrors(f Format, src Source) int64 { return s.decodeErrors[f][src].Load() }
