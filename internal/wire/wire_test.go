package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func sampleBatch(dims, n int) *Batch {
	var b Batch
	b.Reset(dims)
	members := make([]int32, dims)
	for i := 0; i < n; i++ {
		for d := range members {
			members[d] = int32((i*7 + d*3) % 16)
		}
		b.Append(int64(100+i/3), members, float64(i)*1.25-3)
	}
	return &b
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello, frame")
	frame := EncodeFrame(nil, payload)
	if len(frame) != FrameHeaderLen+len(payload) {
		t.Fatalf("frame is %d bytes, want %d", len(frame), FrameHeaderLen+len(payload))
	}
	got, n, err := DecodeFrame(frame)
	if err != nil || n != len(frame) || !bytes.Equal(got, payload) {
		t.Fatalf("DecodeFrame = %q, %d, %v", got, n, err)
	}
}

func TestDecodeFrameEdges(t *testing.T) {
	valid := EncodeFrame(nil, []byte{1, 2, 3, 4})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	huge := EncodeFrame(nil, []byte{1})
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	for _, tc := range []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", valid[:5], ErrTorn},
		{"truncated payload", valid[:len(valid)-1], ErrTorn},
		{"zero fill", make([]byte, 32), ErrCorrupt},
		{"zero length", append([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 9), ErrCorrupt},
		{"oversized length", huge, ErrCorrupt},
		{"bad crc", flipped, ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame(%x) error %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, dims := range []int{1, 2, 7, MaxDims} {
		hdr := EncodeHeader(nil, dims)
		if len(hdr) != HeaderLen {
			t.Fatalf("header is %d bytes, want %d", len(hdr), HeaderLen)
		}
		got, err := DecodeHeader(hdr)
		if err != nil || got != dims {
			t.Fatalf("DecodeHeader = %d, %v, want %d", got, err, dims)
		}
	}
}

func TestDecodeHeaderEdges(t *testing.T) {
	valid := EncodeHeader(nil, 3)
	mutate := func(i int, v byte) []byte {
		h := append([]byte(nil), valid...)
		h[i] = v
		return h
	}
	for _, tc := range []struct {
		name string
		in   []byte
		want error
	}{
		{"short", valid[:HeaderLen-1], ErrTorn},
		{"bad magic", mutate(0, 'X'), ErrCorrupt},
		{"text lookalike", []byte("12,3,4,5.5,extra pad"), ErrCorrupt},
		{"bad version", mutate(8, 9), ErrCorrupt},
		{"zero dims", mutate(9, 0), ErrCorrupt},
		{"too many dims", mutate(9, MaxDims+1), ErrCorrupt},
		{"dirty reserved", mutate(12, 1), ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeHeader(tc.in); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeHeader error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var b Batch
	b.Reset(3)
	// Negative ticks, out-of-order deltas, extreme members, and odd float
	// bit patterns must all survive exactly.
	b.Append(-40, []int32{0, -1, math.MaxInt32}, math.Inf(1))
	b.Append(1<<40, []int32{5, math.MinInt32, 2}, math.Copysign(0, -1))
	b.Append(7, []int32{1, 2, 3}, math.NaN())
	payload := AppendBatch(nil, &b)

	var got Batch
	n, err := DecodeBatch(payload, 3, &got)
	if err != nil || n != 3 {
		t.Fatalf("DecodeBatch = %d, %v", n, err)
	}
	for i := range b.Ticks {
		if got.Ticks[i] != b.Ticks[i] {
			t.Fatalf("tick %d = %d, want %d", i, got.Ticks[i], b.Ticks[i])
		}
		if math.Float64bits(got.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("value %d bits %x, want %x", i, math.Float64bits(got.Values[i]), math.Float64bits(b.Values[i]))
		}
		for d := range b.Cols {
			if got.Cols[d][i] != b.Cols[d][i] {
				t.Fatalf("dim %d record %d = %d, want %d", d, i, got.Cols[d][i], b.Cols[d][i])
			}
		}
	}
}

func TestDecodeBatchEdges(t *testing.T) {
	valid := AppendBatch(nil, sampleBatch(2, 5))
	mutate := func(i int, v byte) []byte {
		p := append([]byte(nil), valid...)
		p[i] = v
		return p
	}
	overflow := func() []byte {
		var b Batch
		b.Reset(1)
		b.Append(math.MaxInt64, []int32{0}, 1)
		b.Append(math.MaxInt64, []int32{0}, 1)
		p := AppendBatch(nil, &b)
		// Rewrite the second tick delta (varint 0 right after the first
		// 10-byte delta) to a large positive step that wraps int64.
		return append(p[:13], append([]byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, p[14:]...)...)
	}()
	for _, tc := range []struct {
		name     string
		in       []byte
		wantDims int
	}{
		{"tiny payload", valid[:2], 2},
		{"bad version", mutate(0, 2), 2},
		{"zero dims", mutate(1, 0), 2},
		{"dims over cap", mutate(1, MaxDims+1), 2},
		{"dims mismatch", valid, 3},
		{"inflated count", mutate(2, 0xff), 2},
		{"truncated ticks", valid[:4], 2},
		{"truncated values", valid[:len(valid)-3], 2},
		{"trailing garbage", append(append([]byte(nil), valid...), 0), 2},
		{"tick overflow", overflow, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var b Batch
			if _, err := DecodeBatch(tc.in, tc.wantDims, &b); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeBatch error %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchRecords = 4 // force several frames
	const n = 11
	for i := 0; i < n; i++ {
		if err := w.Append(int64(i/2), []int32{int32(i % 3), int32(i % 5)}, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // empty flush writes nothing
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dims() != 2 {
		t.Fatalf("Dims = %d, want 2", r.Dims())
	}
	var got, frames int
	var b Batch
	for {
		cnt, err := r.Next(&b)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		for i := 0; i < cnt; i++ {
			rec := got + i
			if b.Ticks[i] != int64(rec/2) || b.Cols[0][i] != int32(rec%3) ||
				b.Cols[1][i] != int32(rec%5) || b.Values[i] != float64(rec)*0.5 {
				t.Fatalf("record %d decoded as tick=%d cols=(%d,%d) value=%g",
					rec, b.Ticks[i], b.Cols[0][i], b.Cols[1][i], b.Values[i])
			}
		}
		got += cnt
	}
	if got != n {
		t.Fatalf("decoded %d records, want %d", got, n)
	}
	if frames != 3 { // 4+4+3
		t.Fatalf("decoded %d frames, want 3", frames)
	}
}

func TestWriterRejectsBadShape(t *testing.T) {
	if _, err := NewWriter(io.Discard, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NewWriter(0 dims) error %v", err)
	}
	if _, err := NewWriter(io.Discard, MaxDims+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NewWriter(%d dims) error %v", MaxDims+1, err)
	}
	w, err := NewWriter(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []int32{1}, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Append with 1 member error %v", err)
	}
}

// TestReaderEdges covers the stream-level failure modes a consumer sees:
// text on a binary reader, truncation inside the header, inside a frame
// header, and inside a frame body (the rotation/crash-tail shapes), plus a
// zero-filled tail after a healthy frame.
func TestReaderEdges(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(3, []int32{1, 2}, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	for _, tc := range []struct {
		name string
		in   []byte
		want error // constructing or reading the first batch
	}{
		{"text input", []byte("1,2,3,4.5\n1,2,3,4.5\n"), ErrCorrupt},
		{"torn header", stream[:HeaderLen-4], ErrTorn},
		{"torn frame header", stream[:HeaderLen+3], ErrTorn},
		{"torn frame body", stream[:len(stream)-5], ErrTorn},
		{"zero tail", append(append([]byte(nil), stream...), make([]byte, 24)...), ErrCorrupt},
		{"header only", stream[:HeaderLen], io.EOF},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(tc.in))
			if err == nil {
				var b Batch
				for {
					if _, err = r.Next(&b); err != nil {
						break
					}
				}
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("reading %s: error %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

func TestFormatLabels(t *testing.T) {
	if FormatText.String() != "text" || FormatBinary.String() != "binary" {
		t.Fatalf("format labels %q/%q", FormatText, FormatBinary)
	}
	if SourceStdin.String() != "stdin" || SourceTCP.String() != "tcp" {
		t.Fatalf("source labels %q/%q", SourceStdin, SourceTCP)
	}
	var s IngestStats
	s.AddRecords(FormatBinary, SourceStdin, 5)
	s.AddFrame(FormatBinary, SourceStdin)
	s.AddDecodeError(FormatText, SourceTCP)
	if s.Records(FormatBinary, SourceStdin) != 5 || s.Frames(FormatBinary, SourceStdin) != 1 ||
		s.DecodeErrors(FormatText, SourceTCP) != 1 {
		t.Fatalf("stats = %d records, %d frames, %d errors",
			s.Records(FormatBinary, SourceStdin), s.Frames(FormatBinary, SourceStdin),
			s.DecodeErrors(FormatText, SourceTCP))
	}
	if s.Records(FormatText, SourceStdin) != 0 || s.DecodeErrors(FormatBinary, SourceTCP) != 0 {
		t.Fatal("counters bled across formats")
	}
	if s.Records(FormatBinary, SourceTCP) != 0 || s.Frames(FormatBinary, SourceTCP) != 0 {
		t.Fatal("counters bled across sources")
	}
}

// TestMagicNeverOpensTextRecord pins the in-band negotiation contract: the
// first magic byte must stay outside the characters a text record can
// start with.
func TestMagicNeverOpensTextRecord(t *testing.T) {
	if strings.ContainsAny(Magic[:1], "-0123456789") {
		t.Fatalf("magic %q could open a text record", Magic)
	}
}
