// Package wire is the binary ingest format: length-prefixed, CRC32C-framed
// record batches laid out column-wise, shipped from producers (datagen, a
// future multi-node router) to streamd over the same byte streams that
// carry the text format. It also owns the frame/CRC machinery the
// write-ahead log uses — internal/wal frames delegate here, so the log and
// the wire ship identically framed payloads.
//
// A binary stream is:
//
//	stream header (16 bytes): magic "RGCWIRE1" | version | dims | 6 reserved
//	frame*            uint32 payload length | uint32 CRC32C(payload) | payload
//
// The magic byte sequence cannot begin a text record (those start with an
// ASCII digit or '-'), so a consumer peeks the first 8 bytes and picks the
// decoder — binary and text negotiate on the same stdin or socket with no
// out-of-band switch.
//
// Each frame carries one columnar record batch:
//
//	byte    payload version (1)
//	byte    dims
//	uvarint record count n
//	ticks   n varints, delta-coded (first absolute, then tick[i]-tick[i-1])
//	columns dims × n varints (member ids, one contiguous run per dimension)
//	values  n × 8-byte IEEE-754 little-endian bits
//
// Columns keep each dimension's members contiguous so the sharded router
// resolves o-layer ancestors one table pass per dimension, and varints plus
// tick deltas keep dense streams a fraction of their text size. Exact
// float64 bits make a binary-fed engine bitwise-identical to a text-fed
// one. Decoding is allocation-free after warm-up: payloads and columns land
// in reused buffers, and validation happens once per batch, not per record.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Typed failure classes, shared with the WAL: ErrTorn marks a byte stream
// that ends mid-frame (producer death, crash tail); ErrCorrupt marks data
// that is structurally invalid (bit rot, zero fill, version skew).
var (
	ErrTorn    = errors.New("wire: torn frame")
	ErrCorrupt = errors.New("wire: corrupt frame")
)

const (
	// Magic opens every binary stream. The first byte (0x52, 'R') can
	// never open a text record, which starts with a digit or '-'.
	Magic = "RGCWIRE1"
	// HeaderLen is the fixed stream-header size.
	HeaderLen = 16
	// Version is the stream and payload format version this package
	// speaks. Unknown versions are rejected, never guessed at.
	Version = 1

	// FrameHeaderLen is the fixed prefix before each frame's payload.
	FrameHeaderLen = 8
	// MaxFramePayload bounds a single frame's payload. Lengths beyond it
	// are corruption by definition, so a flipped length byte cannot make
	// a reader attempt a multi-gigabyte allocation.
	MaxFramePayload = 16 << 20

	// MaxDims bounds the per-batch dimension count the codec accepts;
	// streams have at most a handful of dimensions.
	MaxDims = 64
	// MaxBatchRecords bounds one batch. Together with the per-record
	// minimum encoded size it keeps a corrupt count from forcing a huge
	// column allocation.
	MaxBatchRecords = 1 << 20
	// DefaultBatchRecords is the Writer's flush threshold.
	DefaultBatchRecords = 2048
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame appends the framed payload to dst and returns the extended
// slice. A zero-length payload is never written by any producer — a tail
// of zero-filled blocks must read as corruption, not as an endless run of
// valid empty frames.
func EncodeFrame(dst []byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// DecodeFrame decodes the first frame in b. It returns the payload (a
// sub-slice of b), the total number of bytes the frame occupies, and one
// of:
//
//   - nil — a complete, checksummed frame;
//   - io.EOF — b is empty (clean end of the stream);
//   - ErrTorn — b ends mid-frame (producer died; WAL recovery truncates here);
//   - ErrCorrupt — the length or checksum is invalid (bit rot, zero fill).
//
// It never panics on arbitrary input.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, io.EOF
	}
	if len(b) < FrameHeaderLen {
		return nil, 0, fmt.Errorf("%w: %d-byte tail shorter than the frame header", ErrTorn, len(b))
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length == 0 || length > MaxFramePayload {
		return nil, 0, fmt.Errorf("%w: frame length %d outside (0,%d]", ErrCorrupt, length, MaxFramePayload)
	}
	total := FrameHeaderLen + int(length)
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: frame wants %d bytes, %d remain", ErrTorn, total, len(b))
	}
	payload = b[FrameHeaderLen:total]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: frame checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, total, nil
}

// EncodeHeader appends the 16-byte stream header to dst.
func EncodeHeader(dst []byte, dims int) []byte {
	var hdr [HeaderLen]byte
	copy(hdr[:], Magic)
	hdr[8] = Version
	hdr[9] = byte(dims)
	return append(dst, hdr[:]...)
}

// DecodeHeader validates a 16-byte stream header and returns its dimension
// count.
func DecodeHeader(b []byte) (dims int, err error) {
	if len(b) < HeaderLen {
		return 0, fmt.Errorf("%w: %d-byte stream header, want %d", ErrTorn, len(b), HeaderLen)
	}
	if string(b[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("%w: bad stream magic %q", ErrCorrupt, b[:len(Magic)])
	}
	if b[8] != Version {
		return 0, fmt.Errorf("%w: stream version %d, want %d", ErrCorrupt, b[8], Version)
	}
	dims = int(b[9])
	if dims < 1 || dims > MaxDims {
		return 0, fmt.Errorf("%w: stream header names %d dimensions, want [1,%d]", ErrCorrupt, dims, MaxDims)
	}
	for _, r := range b[10:HeaderLen] {
		if r != 0 {
			return 0, fmt.Errorf("%w: stream header reserved bytes not zero", ErrCorrupt)
		}
	}
	return dims, nil
}

// controlMarker opens a control payload. It is deliberately distinct from
// every batch payload version, so a pre-control decoder that feeds a
// control frame to DecodeBatch rejects it as ErrCorrupt (unknown version)
// instead of misreading it — version skew fails loudly, never silently.
const controlMarker = 0xC0

// ControlOp enumerates the in-band control operations a binary stream can
// carry between record batches.
type ControlOp byte

const (
	// ControlAdvance tells the consumer to close every unit before Unit —
	// the cluster router's unit-boundary barrier. The router broadcasts it
	// to all nodes after flushing their buffered records, so every node
	// closes the same units at the same stream positions a single engine
	// would, keeping per-node state mergeable bit for bit.
	ControlAdvance ControlOp = 1
)

// Control is one decoded control frame.
type Control struct {
	Op   ControlOp
	Unit int64
}

// AppendControl appends the control payload encoding of c to dst and
// returns the extended slice. The caller frames the result, exactly like a
// batch payload.
func AppendControl(dst []byte, c Control) []byte {
	dst = append(dst, controlMarker, byte(c.Op))
	return binary.AppendVarint(dst, c.Unit)
}

// IsControl reports whether a frame payload is a control payload (as
// opposed to a record batch).
func IsControl(payload []byte) bool {
	return len(payload) > 0 && payload[0] == controlMarker
}

// DecodeControl decodes one control payload. Unknown operations and
// malformed encodings are ErrCorrupt.
func DecodeControl(payload []byte) (Control, error) {
	if len(payload) < 2 || payload[0] != controlMarker {
		return Control{}, fmt.Errorf("%w: %d-byte control payload", ErrCorrupt, len(payload))
	}
	c := Control{Op: ControlOp(payload[1])}
	if c.Op != ControlAdvance {
		return Control{}, fmt.Errorf("%w: unknown control op %d", ErrCorrupt, payload[1])
	}
	unit, n := binary.Varint(payload[2:])
	if n <= 0 || n != len(payload)-2 {
		return Control{}, fmt.Errorf("%w: control unit varint", ErrCorrupt)
	}
	c.Unit = unit
	return c, nil
}

// Batch is one columnar record batch: parallel arrays of ticks, one member
// column per dimension, and measure values. Index i across all columns is
// record i. The zero value is ready after Reset.
type Batch struct {
	Ticks  []int64
	Cols   [][]int32
	Values []float64
}

// Reset empties the batch and shapes it to dims columns, keeping every
// column's capacity so steady-state reuse stops allocating.
func (b *Batch) Reset(dims int) {
	b.Ticks = b.Ticks[:0]
	b.Values = b.Values[:0]
	if cap(b.Cols) < dims {
		cols := make([][]int32, dims)
		copy(cols, b.Cols)
		b.Cols = cols
	}
	b.Cols = b.Cols[:dims]
	for d := range b.Cols {
		b.Cols[d] = b.Cols[d][:0]
	}
}

// Len returns the record count.
func (b *Batch) Len() int { return len(b.Ticks) }

// Append adds one record. members must have exactly len(b.Cols) entries
// (the dims the batch was Reset to); the slice is copied column-wise, never
// retained.
func (b *Batch) Append(tick int64, members []int32, value float64) {
	b.Ticks = append(b.Ticks, tick)
	for d := range b.Cols {
		b.Cols[d] = append(b.Cols[d], members[d])
	}
	b.Values = append(b.Values, value)
}

// AppendBatch appends the columnar payload encoding of b to dst and
// returns the extended slice. The caller frames the result (EncodeFrame);
// Writer enforces the dims and record-count caps before encoding.
func AppendBatch(dst []byte, b *Batch) []byte {
	dst = append(dst, Version, byte(len(b.Cols)))
	dst = binary.AppendUvarint(dst, uint64(b.Len()))
	prev := int64(0)
	for _, t := range b.Ticks {
		dst = binary.AppendVarint(dst, t-prev)
		prev = t
	}
	for _, col := range b.Cols {
		for _, m := range col {
			dst = binary.AppendVarint(dst, int64(m))
		}
	}
	for _, v := range b.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeBatch decodes one frame payload into b, reusing its columns, and
// returns the record count. wantDims > 0 demands that exact dimension
// count (the stream-header contract); wantDims <= 0 accepts whatever the
// payload declares within [1,MaxDims]. All validation is batch-level and
// up front: version, dims, count bounds, a minimum-size check so a corrupt
// count cannot force a huge allocation, varint shape, tick overflow, and
// exact payload length. Malformed payloads return ErrCorrupt; DecodeBatch
// never panics on arbitrary input.
func DecodeBatch(payload []byte, wantDims int, b *Batch) (int, error) {
	if len(payload) < 3 {
		return 0, fmt.Errorf("%w: %d-byte batch payload", ErrCorrupt, len(payload))
	}
	if payload[0] != Version {
		return 0, fmt.Errorf("%w: batch version %d, want %d", ErrCorrupt, payload[0], Version)
	}
	dims := int(payload[1])
	if dims < 1 || dims > MaxDims {
		return 0, fmt.Errorf("%w: batch names %d dimensions, want [1,%d]", ErrCorrupt, dims, MaxDims)
	}
	if wantDims > 0 && dims != wantDims {
		return 0, fmt.Errorf("%w: batch has %d dimensions, stream header promised %d", ErrCorrupt, dims, wantDims)
	}
	rest := payload[2:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: batch count varint", ErrCorrupt)
	}
	rest = rest[n:]
	// Every record takes at least 1 tick byte + dims member bytes + 8
	// value bytes, so an inflated count fails before any allocation.
	if count == 0 || count > MaxBatchRecords || count > uint64(len(rest))/uint64(dims+9) {
		return 0, fmt.Errorf("%w: batch claims %d records in %d bytes", ErrCorrupt, count, len(rest))
	}
	b.Reset(dims)
	nr := int(count)
	// count is bounded by the payload length above, so growing each column
	// to its exact final size up front is safe — and it keeps the decode
	// loops free of append-doubling (one allocation per column per batch,
	// none once the batch is recycled).
	if cap(b.Ticks) < nr {
		b.Ticks = make([]int64, 0, nr)
	}
	if cap(b.Values) < nr {
		b.Values = make([]float64, 0, nr)
	}
	for d := range b.Cols {
		if cap(b.Cols[d]) < nr {
			b.Cols[d] = make([]int32, 0, nr)
		}
	}
	prev := int64(0)
	for i := 0; i < nr; i++ {
		// Single-byte deltas dominate real streams (consecutive ticks);
		// decode them inline and leave the general varint off the fast path.
		var d int64
		if len(rest) > 0 && rest[0] < 0x80 {
			c := rest[0]
			d = int64(c>>1) ^ -int64(c&1)
			rest = rest[1:]
		} else {
			var n int
			d, n = binary.Varint(rest)
			if n <= 0 {
				return 0, fmt.Errorf("%w: record %d tick delta", ErrCorrupt, i)
			}
			rest = rest[n:]
		}
		tick := prev + d
		// Overflow would make tick deltas ambiguous on re-encode.
		if (d > 0 && tick < prev) || (d < 0 && tick > prev) {
			return 0, fmt.Errorf("%w: record %d tick overflows", ErrCorrupt, i)
		}
		b.Ticks = append(b.Ticks, tick)
		prev = tick
	}
	for d := 0; d < dims; d++ {
		col := b.Cols[d]
		for i := 0; i < nr; i++ {
			// Same fast path for members: dimension ids are small.
			if len(rest) > 0 && rest[0] < 0x80 {
				c := rest[0]
				col = append(col, int32(c>>1)^-int32(c&1))
				rest = rest[1:]
				continue
			}
			v, n := binary.Varint(rest)
			if n <= 0 || v < math.MinInt32 || v > math.MaxInt32 {
				return 0, fmt.Errorf("%w: record %d member of dimension %d", ErrCorrupt, i, d)
			}
			col = append(col, int32(v))
			rest = rest[n:]
		}
		b.Cols[d] = col
	}
	if len(rest) != 8*nr {
		return 0, fmt.Errorf("%w: %d value bytes after %d records, want %d", ErrCorrupt, len(rest), nr, 8*nr)
	}
	for i := 0; i < nr; i++ {
		b.Values = append(b.Values, math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:])))
	}
	return nr, nil
}
