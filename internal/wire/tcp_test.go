package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/iotest"
)

// encodeStream renders a complete binary stream — header, then `batches`
// record frames of perBatch records, each followed by an advance control
// frame — as one byte slice, so transport tests can deliver it under
// arbitrary fragmentation.
func encodeStream(t *testing.T, dims, batches, perBatch int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchRecords = perBatch
	members := make([]int32, dims)
	tick := int64(0)
	for f := 0; f < batches; f++ {
		for i := 0; i < perBatch; i++ {
			for d := range members {
				members[d] = int32((f + i*3 + d) % 7)
			}
			if err := w.Append(tick, members, float64(f)+float64(i)*0.25); err != nil {
				t.Fatal(err)
			}
			tick++
		}
		if err := w.WriteControl(Control{Op: ControlAdvance, Unit: int64(f + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// drainStream decodes a full stream with NextAny and returns the record
// count and the control frames in order.
func drainStream(t *testing.T, r io.Reader) (int, []Control) {
	t.Helper()
	wr, err := NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	var records int
	var ctrls []Control
	for {
		n, c, isCtrl, err := wr.NextAny(&b)
		if err == io.EOF {
			return records, ctrls
		}
		if err != nil {
			t.Fatal(err)
		}
		if isCtrl {
			ctrls = append(ctrls, c)
			continue
		}
		records += n
	}
}

// TestReaderOneByteReads proves frame reassembly over the most adversarial
// short-read schedule possible: every Read call delivers exactly one byte,
// as a slow TCP peer legally may. The decoded stream must be identical to
// decoding the same bytes whole.
func TestReaderOneByteReads(t *testing.T) {
	raw := encodeStream(t, 3, 5, 8)
	wantRecords, wantCtrls := drainStream(t, bytes.NewReader(raw))
	if wantRecords != 40 || len(wantCtrls) != 5 {
		t.Fatalf("whole-buffer decode saw %d records, %d controls", wantRecords, len(wantCtrls))
	}
	gotRecords, gotCtrls := drainStream(t, iotest.OneByteReader(bytes.NewReader(raw)))
	if gotRecords != wantRecords || !reflect.DeepEqual(gotCtrls, wantCtrls) {
		t.Fatalf("one-byte decode saw %d records %v, want %d %v",
			gotRecords, gotCtrls, wantRecords, wantCtrls)
	}
}

// TestReaderHalfReads exercises iotest.HalfReader — every read delivers
// half of what was asked — to cover partial frame headers and payloads at
// a different fragmentation granularity.
func TestReaderHalfReads(t *testing.T) {
	raw := encodeStream(t, 2, 4, 16)
	wantRecords, wantCtrls := drainStream(t, bytes.NewReader(raw))
	gotRecords, gotCtrls := drainStream(t, iotest.HalfReader(bytes.NewReader(raw)))
	if gotRecords != wantRecords || !reflect.DeepEqual(gotCtrls, wantCtrls) {
		t.Fatalf("half-read decode saw %d records %v, want %d %v",
			gotRecords, gotCtrls, wantRecords, wantCtrls)
	}
}

// TestReaderOverTCPChunks streams frames through a real net.Pipe in
// deliberately misaligned chunks — boundaries land mid-header, mid-CRC,
// and mid-payload — proving the reader reassembles frames from a socket
// exactly as from a file.
func TestReaderOverTCPChunks(t *testing.T) {
	raw := encodeStream(t, 2, 6, 32)
	wantRecords, wantCtrls := drainStream(t, bytes.NewReader(raw))

	client, server := net.Pipe()
	go func() {
		defer client.Close()
		// Prime chunk sizes guarantee every kind of misalignment over a
		// few frames.
		off, step := 0, 7
		for off < len(raw) {
			end := off + step
			if end > len(raw) {
				end = len(raw)
			}
			if _, err := client.Write(raw[off:end]); err != nil {
				return
			}
			off = end
			if step = step*2 + 1; step > 1024 {
				step = 3
			}
		}
	}()
	gotRecords, gotCtrls := drainStream(t, server)
	server.Close()
	if gotRecords != wantRecords || !reflect.DeepEqual(gotCtrls, wantCtrls) {
		t.Fatalf("chunked TCP decode saw %d records %v, want %d %v",
			gotRecords, gotCtrls, wantRecords, wantCtrls)
	}
}

// TestReaderTornOverTCP proves a peer dying mid-frame surfaces as ErrTorn
// (not EOF, not a hang) wherever the cut lands.
func TestReaderTornOverTCP(t *testing.T) {
	raw := encodeStream(t, 2, 2, 4)
	// Cut points: inside the stream header, inside a frame header, inside
	// a payload, and right after the frame header.
	for _, cut := range []int{HeaderLen + 3, HeaderLen + FrameHeaderLen + 2, len(raw) - 1, HeaderLen + FrameHeaderLen} {
		client, server := net.Pipe()
		go func() {
			client.Write(raw[:cut])
			client.Close()
		}()
		wr, err := NewReader(server)
		if err != nil {
			server.Close()
			if cut >= HeaderLen {
				t.Fatalf("cut %d: header rejected: %v", cut, err)
			}
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("cut %d: header error %v, want ErrTorn", cut, err)
			}
			continue
		}
		var b Batch
		for {
			_, _, _, err = wr.NextAny(&b)
			if err != nil {
				break
			}
		}
		server.Close()
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: error %v, want ErrTorn", cut, err)
		}
	}
}

// TestControlRoundTrip pins the control frame codec: encode, frame,
// decode, and the negative-unit varint edge.
func TestControlRoundTrip(t *testing.T) {
	for _, unit := range []int64{0, 1, 127, 128, 1 << 40} {
		payload := AppendControl(nil, Control{Op: ControlAdvance, Unit: unit})
		if !IsControl(payload) {
			t.Fatalf("unit %d: payload not recognized as control", unit)
		}
		c, err := DecodeControl(payload)
		if err != nil || c.Op != ControlAdvance || c.Unit != unit {
			t.Fatalf("unit %d: decoded %+v, %v", unit, c, err)
		}
	}
	batch := AppendBatch(nil, sampleBatch(2, 3))
	if IsControl(batch) {
		t.Fatal("batch payload misread as control")
	}
}

// TestControlRejectsGarbage pins the failure modes: truncation, unknown
// op, trailing bytes, and a pre-control decoder receiving a control frame.
func TestControlRejectsGarbage(t *testing.T) {
	good := AppendControl(nil, Control{Op: ControlAdvance, Unit: 9})
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"marker only", good[:1]},
		{"unknown op", []byte{good[0], 0x7e, 2}},
		{"missing unit", good[:2]},
		{"trailing bytes", append(append([]byte(nil), good...), 0)},
		{"not control", AppendBatch(nil, sampleBatch(1, 1))},
	} {
		if _, err := DecodeControl(tc.in); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error %v, want ErrCorrupt", tc.name, err)
		}
	}
	// A reader that only speaks batches must reject a control frame as
	// corrupt — version skew fails loudly.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteControl(Control{Op: ControlAdvance, Unit: 3}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	if _, err := r.Next(&b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Next on control frame: %v, want ErrCorrupt", err)
	}
}

// TestWriterControlOrdersAfterPending proves WriteControl flushes buffered
// records first: a barrier never overtakes records appended before it.
func TestWriterControlOrdersAfterPending(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, []int32{2}, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteControl(Control{Op: ControlAdvance, Unit: 1}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	n, _, isCtrl, err := r.NextAny(&b)
	if err != nil || isCtrl || n != 1 || b.Ticks[0] != 5 {
		t.Fatalf("first frame: n=%d ctrl=%v err=%v", n, isCtrl, err)
	}
	_, c, isCtrl, err := r.NextAny(&b)
	if err != nil || !isCtrl || c.Unit != 1 {
		t.Fatalf("second frame: ctrl=%v %+v err=%v", isCtrl, c, err)
	}
}
