package core

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

func deltaInputs(members [][]int32, slopes []float64, tb, te int64) []Input {
	out := make([]Input, len(members))
	for i := range members {
		out[i] = Input{
			Members: members[i],
			Measure: regression.ISB{Tb: tb, Te: te, Base: 1, Slope: slopes[i]},
		}
	}
	return out
}

func TestDeltaCubingFindsChangedCells(t *testing.T) {
	s := testSchema(t, 2, 2, 2)
	members := [][]int32{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	// Previous quarter: all slopes 1. Current: one cell jumps to 5.
	prev := deltaInputs(members, []float64{1, 1, 1, 1}, 0, 9)
	cur := deltaInputs(members, []float64{1, 5, 1, 1}, 10, 19)
	res, err := DeltaCubing(s, cur, prev, exception.Delta{MinSlopeChange: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The changed m-cell (1,1) and all its ancestors changed by 4.
	mKey := cube.NewCellKey(s.MLayer(), 1, 1)
	dc, ok := res.Exceptions[mKey]
	if !ok {
		t.Fatalf("changed m-cell missing: %v", res.Exceptions)
	}
	if dc.SlopeChange() != 4 {
		t.Fatalf("slope change = %g, want 4", dc.SlopeChange())
	}
	// Ancestor at the o-layer: (1/2, 1/2) = (0, 0) — which also contains
	// the unchanged cell (0,0), so its change is still 4.
	oKey := cube.NewCellKey(s.OLayer(), 0, 0)
	if _, ok := res.Exceptions[oKey]; !ok {
		t.Fatal("changed o-ancestor missing")
	}
	// Unchanged cells are not exceptions.
	quiet := cube.NewCellKey(s.MLayer(), 2, 2)
	if _, bad := res.Exceptions[quiet]; bad {
		t.Fatal("unchanged cell retained")
	}
	// o-layer carries both windows for every cell.
	for _, dc := range res.OLayer {
		if !dc.HavePrev {
			t.Fatal("o-layer cells should have previous windows here")
		}
		if dc.Prev.Te+1 != dc.Cur.Tb {
			t.Fatal("window intervals must be adjacent")
		}
	}
}

func TestDeltaCubingNoPreviousWindow(t *testing.T) {
	s := testSchema(t, 2, 2, 2)
	cur := deltaInputs([][]int32{{0, 0}}, []float64{100}, 0, 9)
	res, err := DeltaCubing(s, cur, nil, exception.Delta{MinSlopeChange: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exceptions) != 0 {
		t.Fatal("first window can have no change exceptions")
	}
	for _, dc := range res.OLayer {
		if dc.HavePrev {
			t.Fatal("no previous window exists")
		}
		if dc.SlopeChange() != 0 {
			t.Fatal("change without previous must be 0")
		}
	}
}

func TestDeltaCubingNewCellNotExceptional(t *testing.T) {
	s := testSchema(t, 2, 2, 2)
	prev := deltaInputs([][]int32{{0, 0}}, []float64{1}, 0, 9)
	// Current window adds a brand-new steep cell in a different o-region;
	// it has no previous base, so it must not be a change exception.
	cur := deltaInputs([][]int32{{0, 0}, {3, 3}}, []float64{1, 50}, 10, 19)
	res, err := DeltaCubing(s, cur, prev, exception.Delta{MinSlopeChange: 2})
	if err != nil {
		t.Fatal(err)
	}
	newCell := cube.NewCellKey(s.MLayer(), 3, 3)
	if _, bad := res.Exceptions[newCell]; bad {
		t.Fatal("cell without a previous window must not be exceptional")
	}
}

func TestDeltaCubingValidation(t *testing.T) {
	s := testSchema(t, 2, 2, 2)
	cur := deltaInputs([][]int32{{0, 0}}, []float64{1}, 10, 19)
	if _, err := DeltaCubing(s, nil, nil, exception.Delta{}); err == nil {
		t.Fatal("expected empty current window error")
	}
	gap := deltaInputs([][]int32{{0, 0}}, []float64{1}, 0, 8) // ends at 8, cur starts at 10
	if _, err := DeltaCubing(s, cur, gap, exception.Delta{}); err == nil {
		t.Fatal("expected adjacency error")
	}
	badPrev := []Input{{Members: []int32{0}, Measure: regression.ISB{Tb: 0, Te: 9}}}
	if _, err := DeltaCubing(s, cur, badPrev, exception.Delta{}); err == nil {
		t.Fatal("expected previous-window validation error")
	}
}

// The delta cube's per-cell regressions must equal the plain cubes of each
// window.
func TestDeltaCubingConsistentWithMOCubing(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	prevInputs := randomInputs(s, 150, 1, 31)
	curInputs := randomInputs(s, 150, 1, 32)
	// Shift current window to be adjacent after prev ([0,9] → [10,19]).
	for i := range curInputs {
		curInputs[i].Measure.Tb += 10
		curInputs[i].Measure.Te += 10
	}
	res, err := DeltaCubing(s, curInputs, prevInputs, exception.Delta{MinSlopeChange: 1})
	if err != nil {
		t.Fatal(err)
	}
	moCur, err := MOCubing(s, curInputs, exception.Global(0))
	if err != nil {
		t.Fatal(err)
	}
	moPrev, err := MOCubing(s, prevInputs, exception.Global(0))
	if err != nil {
		t.Fatal(err)
	}
	for key, dc := range res.Exceptions {
		curWant, ok := moCur.Exceptions[key] // threshold 0: every cell retained
		if !ok {
			t.Fatalf("cell %v missing from current cube", key)
		}
		if !almostEq(dc.Cur.Slope, curWant.Slope, 1e-9) {
			t.Fatalf("cur slope mismatch at %v", key)
		}
		if dc.HavePrev {
			prevWant, ok := moPrev.Exceptions[key]
			if !ok {
				t.Fatalf("cell %v missing from previous cube", key)
			}
			if !almostEq(dc.Prev.Slope, prevWant.Slope, 1e-9) {
				t.Fatalf("prev slope mismatch at %v", key)
			}
			if dc.SlopeChange() < 1 {
				t.Fatal("retained cell below change threshold")
			}
		}
	}
}
