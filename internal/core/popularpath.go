package core

import (
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/htree"
	"repro/internal/regression"
)

// excSrc tracks one retained exception cell together with the H-tree nodes
// that cover it at its covering path cuboid's depth. Drilling below the
// cell enumerates those nodes' subtrees — work proportional to the
// exception cells, exactly Algorithm 2's cost model ("the cells to be
// computed are related only to the exception cells").
type excSrc struct {
	key     cube.CellKey
	sources []*htree.Node
}

// PopularPath runs Algorithm 2 (popular-path cubing) with the given
// drilling path (use lattice.DefaultPath() when indifferent).
//
// Step 1 builds the H-tree in path order; Step 2 rolls the m-layer up to
// the o-layer along the path, storing regression points in the non-leaf
// tree nodes (surfaced as PathCells); Step 3 drills recursively from the
// o-layer: only the children cells of exception cells are computed in
// non-path cuboids, each aggregated from the closest computed path cuboid
// below it — enumerated as H-tree subtrees of the exception cell's source
// nodes rather than by scanning whole cuboids.
func PopularPath(s *cube.Schema, inputs []Input, thr exception.Thresholder, path cube.Path) (*Result, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	start := time.Now()
	tree, err := buildTree(s, htree.PathOrder(s, path), inputs)
	if err != nil {
		return nil, err
	}
	if err := tree.PropagateUp(); err != nil {
		return nil, err
	}
	build := time.Since(start)

	idx := tree.AncestorIndex() // built once with the tree
	lattice := cube.NewLattice(s)
	res := &Result{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
		PathCells:  make(map[cube.Cuboid]map[cube.CellKey]regression.ISB),
	}
	st := &res.Stats
	st.Algorithm = "popular-path"
	st.Tuples = len(inputs)
	st.TreeNodes = tree.NodeCount()
	st.TreeLeaves = tree.LeafCount()
	st.BuildTime = build

	cubeStart := time.Now()
	oLayer := s.OLayer()

	// Step 2: the path cuboids are materialized at tree depths oAttrs+i.
	oAttrs := 0
	for d := range s.Dims {
		oAttrs += s.Dims[d].OLevel
	}
	depthOf := make(map[cube.Cuboid]int, len(path.Cuboids))
	var pathCellCount int64
	for i, pc := range path.Cuboids {
		depth := oAttrs + i
		depthOf[pc] = depth
		var cells map[cube.CellKey]regression.ISB
		if depth == 0 {
			// o-layer at the apex (every dimension at ALL): one root cell.
			cells = make(map[cube.CellKey]regression.ISB, 1)
			root := tree.Root()
			if root.HasMeasure {
				cells[cube.CellKey{Cuboid: pc}] = root.Measure
			}
		} else {
			nodes := tree.NodesAtDepth(depth)
			cells = make(map[cube.CellKey]regression.ISB, len(nodes))
			for _, n := range nodes {
				cells[tree.CellKeyOf(n)] = n.Measure
			}
		}
		res.PathCells[pc] = cells
		pathCellCount += int64(len(cells))
		st.CellsComputed += int64(len(cells))
	}
	st.CuboidsComputed = len(path.Cuboids)

	for key, isb := range res.PathCells[oLayer] {
		res.OLayer[key] = isb
	}

	// Exception registry: retained exception cells per cuboid with their
	// source nodes for further drilling.
	excByCuboid := make(map[cube.Cuboid][]excSrc)
	var srcRefs int64 // retained source-pointer count, for the memory model

	treeBytes := tree.BytesEstimate()
	updatePeak := func(scratch int64) {
		peak := treeBytes + (pathCellCount+scratch+int64(len(res.Exceptions))+int64(len(res.OLayer)))*bytesPerCell + srcRefs*8
		if peak > st.PeakBytes {
			st.PeakBytes = peak
		}
	}
	updatePeak(0)

	// Step 3: lattice walk, coarsest-first. Path cuboids surface their
	// exceptions (sources = their own tree nodes); off-path cuboids are
	// computed only under exception parents, from subtree enumeration.
	for _, c := range lattice.Cuboids() {
		threshold := thr.Threshold(c)
		if depth, onPath := depthOf[c]; onPath {
			if depth == 0 {
				root := tree.Root()
				if root.HasMeasure && exception.IsException(root.Measure, threshold) {
					key := cube.CellKey{Cuboid: c}
					res.Exceptions[key] = root.Measure
					excByCuboid[c] = append(excByCuboid[c], excSrc{key: key, sources: []*htree.Node{root}})
					srcRefs++
				}
				continue
			}
			for _, n := range tree.NodesAtDepth(depth) {
				if exception.IsException(n.Measure, threshold) {
					key := tree.CellKeyOf(n)
					res.Exceptions[key] = n.Measure
					excByCuboid[c] = append(excByCuboid[c], excSrc{key: key, sources: []*htree.Node{n}})
					srcRefs++
				}
			}
			continue
		}

		// Off-path cuboid: gather exception parents.
		var parentExc []excSrc
		for _, p := range lattice.Parents(c) {
			parentExc = append(parentExc, excByCuboid[p]...)
		}
		if len(parentExc) == 0 {
			continue
		}
		st.CuboidsComputed++
		targetDepth := depthOf[path.Covering(c)]

		type aggCell struct {
			isb     regression.ISB
			sources []*htree.Node
		}
		scratch := make(map[cube.CellKey]*aggCell)
		visited := make(map[*htree.Node]bool)
		for _, e := range parentExc {
			for _, src := range e.sources {
				src.WalkAtDepth(targetDepth, func(n *htree.Node) {
					if visited[n] {
						return
					}
					visited[n] = true
					// The covering path cuboid always dominates c, so the
					// unchecked indexed roll-up is safe.
					key := idx.RollUp(tree.CellKeyOf(n), c)
					cell := scratch[key]
					if cell == nil {
						cell = &aggCell{isb: n.Measure}
						scratch[key] = cell
					} else {
						cell.isb.Base += n.Measure.Base
						cell.isb.Slope += n.Measure.Slope
					}
					cell.sources = append(cell.sources, n)
				})
			}
		}
		st.CellsComputed += int64(len(scratch))
		if n := int64(len(scratch)); n > st.PeakScratchCells {
			st.PeakScratchCells = n
		}
		updatePeak(int64(len(scratch)))
		// Canonical key order: the registry's append order feeds the visit
		// order of deeper drills, which must be reproducible.
		for _, key := range sortedCellKeys(scratch) {
			cell := scratch[key]
			if exception.IsException(cell.isb, threshold) {
				if _, dup := res.Exceptions[key]; !dup {
					res.Exceptions[key] = cell.isb
					excByCuboid[c] = append(excByCuboid[c], excSrc{key: key, sources: cell.sources})
					srcRefs += int64(len(cell.sources))
				}
			}
		}
	}

	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = pathCellCount + int64(len(res.Exceptions)) + int64(len(res.OLayer))
	st.BytesRetained = treeBytes + st.CellsRetained*bytesPerCell + srcRefs*8
	if st.BytesRetained > st.PeakBytes {
		st.PeakBytes = st.BytesRetained
	}
	return res, nil
}
