package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// bitwiseEqualResults demands exact float equality — the optimized paths
// must replay the unoptimized paths' operand order, not approximate it.
func bitwiseEqualResults(a, b *Result) error {
	if len(a.OLayer) != len(b.OLayer) {
		return fmt.Errorf("o-layer size %d vs %d", len(a.OLayer), len(b.OLayer))
	}
	for key, want := range a.OLayer {
		if got, ok := b.OLayer[key]; !ok || got != want {
			return fmt.Errorf("o-layer cell %v: %v vs %v", key, want, got)
		}
	}
	if len(a.Exceptions) != len(b.Exceptions) {
		return fmt.Errorf("exceptions size %d vs %d", len(a.Exceptions), len(b.Exceptions))
	}
	for key, want := range a.Exceptions {
		if got, ok := b.Exceptions[key]; !ok || got != want {
			return fmt.Errorf("exception cell %v: %v vs %v", key, want, got)
		}
	}
	if a.Stats.CellsComputed != b.Stats.CellsComputed ||
		a.Stats.CellsRetained != b.Stats.CellsRetained ||
		a.Stats.PeakScratchCells != b.Stats.PeakScratchCells ||
		a.Stats.CuboidsComputed != b.Stats.CuboidsComputed ||
		a.Stats.TreeNodes != b.Stats.TreeNodes ||
		a.Stats.TreeLeaves != b.Stats.TreeLeaves {
		return fmt.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	return nil
}

// randomAgreementSchema mixes fanout and explicitly-enumerated hierarchies
// so both AncestorIndex strategies are exercised.
func randomAgreementSchema(r *rand.Rand) (*cube.Schema, error) {
	nDims := 1 + r.Intn(3)
	dims := make([]cube.Dimension, nDims)
	for d := 0; d < nDims; d++ {
		levels := 1 + r.Intn(3)
		var h cube.Hierarchy
		if r.Intn(2) == 0 {
			fh, err := cube.NewFanoutHierarchy(string(rune('A'+d)), 2+r.Intn(3), levels)
			if err != nil {
				return nil, err
			}
			h = fh
		} else {
			nh := cube.NewNamedHierarchy(string(rune('A' + d)))
			card := 2 + r.Intn(3)
			names := make([]string, card)
			for i := range names {
				names[i] = fmt.Sprintf("d%d.1.%d", d, i)
			}
			if err := nh.AddLevel(names, nil); err != nil {
				return nil, err
			}
			for l := 2; l <= levels; l++ {
				next := card + r.Intn(2*card+1)
				names = make([]string, next)
				parents := make([]int32, next)
				for i := range names {
					names[i] = fmt.Sprintf("d%d.%d.%d", d, l, i)
					parents[i] = int32(r.Intn(card))
				}
				if err := nh.AddLevel(names, parents); err != nil {
					return nil, err
				}
				card = next
			}
			h = nh
		}
		dims[d] = cube.Dimension{Name: string(rune('A' + d)), Hierarchy: h, MLevel: levels, OLevel: r.Intn(levels + 1)}
	}
	return cube.NewSchema(dims...)
}

// Property: every CubingOptions combination — map scratch vs sorted-run
// aggregator, interface roll-up vs ancestor index — produces bitwise
// identical results on random schemas and datasets. This is the referee for
// the PR-2 hot-path rewrite: the optimizations must change cost only.
func TestMOCubingOptionsBitwiseAgreement(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(202))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, err := randomAgreementSchema(r)
		if err != nil {
			t.Logf("schema: %v", err)
			return false
		}
		// Duplicate m-cells on purpose: multi-leaf runs are where operand
		// order can diverge.
		nTuples := 20 + r.Intn(200)
		inputs := make([]Input, nTuples)
		for i := range inputs {
			members := make([]int32, s.NumDims())
			for d := range members {
				card := s.Dims[d].Hierarchy.Cardinality(s.Dims[d].MLevel)
				if card > 4 && r.Intn(2) == 0 {
					card = 4
				}
				members[d] = int32(r.Intn(card))
			}
			inputs[i] = Input{
				Members: members,
				Measure: regression.ISB{Tb: 0, Te: 9, Base: r.NormFloat64(), Slope: r.NormFloat64() * 2},
			}
		}
		thr := exception.Global(r.Float64() * 2)

		baseline, err := MOCubingWith(s, inputs, thr, CubingOptions{MapScratch: true, NoAncestorIndex: true})
		if err != nil {
			t.Logf("baseline: %v", err)
			return false
		}
		for _, opts := range []CubingOptions{
			{},
			{MapScratch: true},
			{NoAncestorIndex: true},
		} {
			got, err := MOCubingWith(s, inputs, thr, opts)
			if err != nil {
				t.Logf("%+v: %v", opts, err)
				return false
			}
			if err := bitwiseEqualResults(baseline, got); err != nil {
				t.Logf("%+v: %v", opts, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// flatHierarchy is a single-level hierarchy with a huge member count, used
// to overflow the sorted-run aggregator's linear cell coding.
type flatHierarchy struct {
	name string
	card int
}

func (f *flatHierarchy) Levels() int { return 1 }
func (f *flatHierarchy) Cardinality(level int) int {
	if level <= 0 {
		return 1
	}
	return f.card
}
func (f *flatHierarchy) Parent(level int, member int32) int32 { return 0 }
func (f *flatHierarchy) MemberName(level int, member int32) string {
	return fmt.Sprintf("%s.%d", f.name, member)
}

// The coded sort only covers cuboids whose cell space fits in a uint64;
// larger spaces take the key-sorting fallback, which must agree bitwise
// with the map path too.
func TestMOCubingSortFallbackBitwiseAgreement(t *testing.T) {
	// Three 2^21-member flat dimensions and one 2-level fanout dimension:
	// cuboid (1,1,1,1) spans 2^63·2 cells, overflowing the coder, while the
	// m-layer (1,1,1,2) is served by the leaf pass.
	const bigCard = 1 << 21
	fh, err := cube.NewFanoutHierarchy("D", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: &flatHierarchy{name: "A", card: bigCard}, MLevel: 1, OLevel: 0},
		cube.Dimension{Name: "B", Hierarchy: &flatHierarchy{name: "B", card: bigCard}, MLevel: 1, OLevel: 0},
		cube.Dimension{Name: "C", Hierarchy: &flatHierarchy{name: "C", card: bigCard}, MLevel: 1, OLevel: 0},
		cube.Dimension{Name: "D", Hierarchy: fh, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := cuboidCoder(s, cube.MustCuboid(1, 1, 1, 1)); ok {
		t.Fatal("expected the 2^64-cell cuboid to overflow the coder")
	}
	r := rand.New(rand.NewSource(71))
	// Few distinct members per dimension → plenty of duplicate cells, while
	// the member values span the huge domain.
	pick := func() int32 { return int32(r.Intn(8)) * (bigCard / 8) }
	inputs := make([]Input, 300)
	for i := range inputs {
		inputs[i] = Input{
			Members: []int32{pick(), pick(), pick(), int32(r.Intn(4))},
			Measure: regression.ISB{Tb: 0, Te: 9, Base: r.NormFloat64(), Slope: r.NormFloat64() * 2},
		}
	}
	thr := exception.Global(0.5)
	baseline, err := MOCubingWith(s, inputs, thr, CubingOptions{MapScratch: true, NoAncestorIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MOCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	if err := bitwiseEqualResults(baseline, got); err != nil {
		t.Fatal(err)
	}
}
