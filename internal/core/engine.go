// Package core implements the paper's primary contribution: exception-based
// regression cube computation between the two critical layers (§4.3–4.4).
//
// Two algorithms are provided, exactly the paper's pair:
//
//   - Algorithm 1, m/o H-cubing (MOCubing): aggregate every cuboid between
//     the m-layer and the o-layer, reusing one scratch header table at a
//     time, retaining only exception cells (plus all o-layer cells "for
//     observation").
//   - Algorithm 2, popular-path cubing (PopularPath): materialize only the
//     cuboids along one popular drilling path in the H-tree's non-leaf
//     nodes, then recursively drill from the o-layer into exception cells'
//     children, aggregating each off-path cuboid from the closest computed
//     path cuboid.
//
// Both consume the same m-layer input (one scan of the stream data) and
// report detailed time/space statistics for the paper's Figures 8–10.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/htree"
	"repro/internal/regression"
)

// ErrInput is returned for malformed engine input.
var ErrInput = errors.New("core: invalid input")

// Input is one m-layer tuple: the member per dimension at its m-level and
// the tuple's regression measure. All measures in a batch must share one
// time interval (the engine cubes a single tilt-frame granularity at a
// time; §4.5 drives one batch per completed unit).
type Input struct {
	Members []int32
	Measure regression.ISB
}

// Cell is a retained cell: its identity and regression measure.
type Cell struct {
	Key cube.CellKey
	ISB regression.ISB
}

// Stats reports the cost measures the paper's evaluation uses.
type Stats struct {
	Algorithm        string
	Tuples           int           // m-layer tuples consumed
	TreeNodes        int           // H-tree size
	TreeLeaves       int           // distinct m-layer cells
	CuboidsComputed  int           // cuboids whose cells were aggregated
	CellsComputed    int64         // total cells aggregated across cuboids
	CellsRetained    int64         // exception + o-layer (+ path) cells kept
	PeakScratchCells int64         // largest transient header table
	BytesRetained    int64         // estimate of resident bytes at finish
	PeakBytes        int64         // estimate of peak resident bytes
	BuildTime        time.Duration // H-tree construction (stream scan)
	CubeTime         time.Duration // aggregation + exception detection
}

// bytesPerCell estimates the footprint of one retained cell (key+ISB+map
// overhead) for the paper's memory panels.
const bytesPerCell = 96

// Result is the outcome of one cubing run.
type Result struct {
	Schema *cube.Schema
	// OLayer holds every o-layer cell ("all cells are retained for
	// observation").
	OLayer map[cube.CellKey]regression.ISB
	// Exceptions holds every retained exception cell from the o-layer
	// down to (and including) the m-layer, keyed by cell.
	Exceptions map[cube.CellKey]regression.ISB
	// PathCells holds the materialized popular-path cuboid cells
	// (popular-path algorithm only; nil for m/o-cubing).
	PathCells map[cube.Cuboid]map[cube.CellKey]regression.ISB
	Stats     Stats
}

// ExceptionsAt returns the retained exception cells of one cuboid.
func (r *Result) ExceptionsAt(c cube.Cuboid) []Cell {
	var out []Cell
	for k, isb := range r.Exceptions {
		if k.Cuboid == c {
			out = append(out, Cell{Key: k, ISB: isb})
		}
	}
	return out
}

// validate checks batch shape and interval uniformity.
func validate(s *cube.Schema, inputs []Input) error {
	if len(inputs) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInput)
	}
	tb, te := inputs[0].Measure.Tb, inputs[0].Measure.Te
	for i, in := range inputs {
		if len(in.Members) != len(s.Dims) {
			return fmt.Errorf("%w: tuple %d has %d members for %d dimensions", ErrInput, i, len(in.Members), len(s.Dims))
		}
		if in.Measure.Tb != tb || in.Measure.Te != te {
			return fmt.Errorf("%w: tuple %d interval [%d,%d] differs from [%d,%d]",
				ErrInput, i, in.Measure.Tb, in.Measure.Te, tb, te)
		}
		if !in.Measure.IsFinite() {
			return fmt.Errorf("%w: tuple %d has non-finite measure", ErrInput, i)
		}
	}
	return nil
}

// buildTree scans the batch once into an H-tree with the given attribute
// order — Step 1 of both algorithms.
func buildTree(s *cube.Schema, attrs []htree.Attribute, inputs []Input) (*htree.HTree, error) {
	tree, err := htree.New(s, attrs)
	if err != nil {
		return nil, err
	}
	for i, in := range inputs {
		if err := tree.Insert(in.Members, in.Measure); err != nil {
			return nil, fmt.Errorf("core: inserting tuple %d: %w", i, err)
		}
	}
	return tree, nil
}

// accumulate merges an ISB into a scratch header table by
// standard-dimension aggregation (bases and slopes add; Theorem 3.2).
func accumulate(scratch map[cube.CellKey]regression.ISB, key cube.CellKey, isb regression.ISB) {
	if cur, ok := scratch[key]; ok {
		cur.Base += isb.Base
		cur.Slope += isb.Slope
		scratch[key] = cur
	} else {
		scratch[key] = isb
	}
}

// sortedCellKeys returns a scratch table's keys in cube.CompareKeys order —
// the canonical iteration order wherever retention order feeds later
// aggregation, keeping float results bitwise reproducible.
func sortedCellKeys[V any](m map[cube.CellKey]V) []cube.CellKey {
	keys := make([]cube.CellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cube.CompareKeys(keys[i], keys[j]) < 0 })
	return keys
}

// MOCubing runs Algorithm 1 (m/o H-cubing). It aggregates every cuboid of
// the lattice from the H-tree's m-layer cells, one cuboid at a time in a
// reused scratch header table, and retains only exception cells in between
// the layers (all cells at the o-layer, which is also returned).
func MOCubing(s *cube.Schema, inputs []Input, thr exception.Thresholder) (*Result, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	start := time.Now()
	tree, err := buildTree(s, htree.CardinalityOrder(s), inputs)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)

	lattice := cube.NewLattice(s)
	res := &Result{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
	}
	st := &res.Stats
	st.Algorithm = "m/o-cubing"
	st.Tuples = len(inputs)
	st.TreeNodes = tree.NodeCount()
	st.TreeLeaves = tree.LeafCount()
	st.BuildTime = build

	cubeStart := time.Now()
	mLayer := s.MLayer()
	oLayer := s.OLayer()
	leaves := tree.Leaves()
	// Pre-extract leaf cells once; every cuboid pass rolls them up.
	leafCells := make([]Cell, len(leaves))
	for i, leaf := range leaves {
		leafCells[i] = Cell{Key: tree.CellKeyOf(leaf), ISB: leaf.Measure}
	}

	treeBytes := tree.BytesEstimate()
	for _, c := range lattice.Cuboids() {
		st.CuboidsComputed++
		if c.Equal(mLayer) {
			// The m-layer is the tree's leaf level: computed during the
			// build, no extra pass needed; its exceptions are still
			// detected and retained (Algorithm 1 computes all exception
			// cells in every required cuboid).
			st.CellsComputed += int64(len(leafCells))
			thrM := thr.Threshold(c)
			isO := c.Equal(oLayer) // degenerate schema with no layers in between
			for _, lc := range leafCells {
				if isO {
					res.OLayer[lc.Key] = lc.ISB
				}
				if exception.IsException(lc.ISB, thrM) {
					res.Exceptions[lc.Key] = lc.ISB
				}
			}
			continue
		}
		// One local header table, reused per cuboid (space minimized as in
		// the paper's H-cubing note).
		scratch := make(map[cube.CellKey]regression.ISB)
		for _, lc := range leafCells {
			key, err := cube.RollUpKey(s, lc.Key, c)
			if err != nil {
				return nil, err
			}
			accumulate(scratch, key, lc.ISB)
		}
		st.CellsComputed += int64(len(scratch))
		if n := int64(len(scratch)); n > st.PeakScratchCells {
			st.PeakScratchCells = n
		}
		peak := treeBytes + (int64(len(scratch))+int64(len(res.Exceptions))+int64(len(res.OLayer)))*bytesPerCell
		if peak > st.PeakBytes {
			st.PeakBytes = peak
		}
		threshold := thr.Threshold(c)
		isO := c.Equal(oLayer)
		for key, isb := range scratch {
			if isO {
				res.OLayer[key] = isb
			}
			if exception.IsException(isb, threshold) {
				res.Exceptions[key] = isb
			}
		}
	}
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = int64(len(res.OLayer) + len(res.Exceptions))
	st.BytesRetained = treeBytes + st.CellsRetained*bytesPerCell
	if st.BytesRetained > st.PeakBytes {
		st.PeakBytes = st.BytesRetained
	}
	return res, nil
}
