// Package core implements the paper's primary contribution: exception-based
// regression cube computation between the two critical layers (§4.3–4.4).
//
// Two algorithms are provided, exactly the paper's pair:
//
//   - Algorithm 1, m/o H-cubing (MOCubing): aggregate every cuboid between
//     the m-layer and the o-layer, reusing one scratch header table at a
//     time, retaining only exception cells (plus all o-layer cells "for
//     observation").
//   - Algorithm 2, popular-path cubing (PopularPath): materialize only the
//     cuboids along one popular drilling path in the H-tree's non-leaf
//     nodes, then recursively drill from the o-layer into exception cells'
//     children, aggregating each off-path cuboid from the closest computed
//     path cuboid.
//
// Both consume the same m-layer input (one scan of the stream data) and
// report detailed time/space statistics for the paper's Figures 8–10.
package core

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/htree"
	"repro/internal/regression"
)

// ErrInput is returned for malformed engine input.
var ErrInput = errors.New("core: invalid input")

// Input is one m-layer tuple: the member per dimension at its m-level and
// the tuple's regression measure. All measures in a batch must share one
// time interval (the engine cubes a single tilt-frame granularity at a
// time; §4.5 drives one batch per completed unit).
type Input struct {
	Members []int32
	Measure regression.ISB
}

// Cell is a retained cell: its identity and regression measure.
type Cell struct {
	Key cube.CellKey
	ISB regression.ISB
}

// Stats reports the cost measures the paper's evaluation uses.
type Stats struct {
	Algorithm        string
	Tuples           int           // m-layer tuples consumed
	TreeNodes        int           // H-tree size
	TreeLeaves       int           // distinct m-layer cells
	CuboidsComputed  int           // cuboids whose cells were aggregated
	CellsComputed    int64         // total cells aggregated across cuboids
	CellsRetained    int64         // exception + o-layer (+ path) cells kept
	PeakScratchCells int64         // largest transient header table
	BytesRetained    int64         // estimate of resident bytes at finish
	PeakBytes        int64         // estimate of peak resident bytes
	BuildTime        time.Duration // H-tree construction (stream scan)
	CubeTime         time.Duration // aggregation + exception detection
}

// bytesPerCell estimates the footprint of one retained cell (key+ISB+map
// overhead) for the paper's memory panels.
const bytesPerCell = 96

// Result is the outcome of one cubing run.
type Result struct {
	Schema *cube.Schema
	// OLayer holds every o-layer cell ("all cells are retained for
	// observation").
	OLayer map[cube.CellKey]regression.ISB
	// Exceptions holds every retained exception cell from the o-layer
	// down to (and including) the m-layer, keyed by cell.
	Exceptions map[cube.CellKey]regression.ISB
	// PathCells holds the materialized popular-path cuboid cells
	// (popular-path algorithm only; nil for m/o-cubing).
	PathCells map[cube.Cuboid]map[cube.CellKey]regression.ISB
	Stats     Stats
}

// ExceptionsAt returns the retained exception cells of one cuboid.
func (r *Result) ExceptionsAt(c cube.Cuboid) []Cell {
	var out []Cell
	for k, isb := range r.Exceptions {
		if k.Cuboid == c {
			out = append(out, Cell{Key: k, ISB: isb})
		}
	}
	return out
}

// sortedCells flattens a retained-cell map into canonical key order
// (cube.CompareKeys) — the stable iteration surface snapshot readers and
// serializers need, since map order changes run to run.
func sortedCells(m map[cube.CellKey]regression.ISB) []Cell {
	out := make([]Cell, 0, len(m))
	for k, isb := range m {
		out = append(out, Cell{Key: k, ISB: isb})
	}
	slices.SortFunc(out, func(a, b Cell) int { return cube.CompareKeys(a.Key, b.Key) })
	return out
}

// OCells returns every o-layer cell in canonical key order.
func (r *Result) OCells() []Cell { return sortedCells(r.OLayer) }

// ExceptionCells returns every retained exception cell in canonical key
// order.
func (r *Result) ExceptionCells() []Cell { return sortedCells(r.Exceptions) }

// validate checks batch shape and interval uniformity.
func validate(s *cube.Schema, inputs []Input) error {
	if len(inputs) == 0 {
		return fmt.Errorf("%w: empty batch", ErrInput)
	}
	tb, te := inputs[0].Measure.Tb, inputs[0].Measure.Te
	for i, in := range inputs {
		if len(in.Members) != len(s.Dims) {
			return fmt.Errorf("%w: tuple %d has %d members for %d dimensions", ErrInput, i, len(in.Members), len(s.Dims))
		}
		if in.Measure.Tb != tb || in.Measure.Te != te {
			return fmt.Errorf("%w: tuple %d interval [%d,%d] differs from [%d,%d]",
				ErrInput, i, in.Measure.Tb, in.Measure.Te, tb, te)
		}
		if !in.Measure.IsFinite() {
			return fmt.Errorf("%w: tuple %d has non-finite measure", ErrInput, i)
		}
	}
	return nil
}

// buildTree scans the batch once into an H-tree with the given attribute
// order — Step 1 of both algorithms.
func buildTree(s *cube.Schema, attrs []htree.Attribute, inputs []Input) (*htree.HTree, error) {
	tree, err := htree.New(s, attrs)
	if err != nil {
		return nil, err
	}
	for i, in := range inputs {
		if err := tree.Insert(in.Members, in.Measure); err != nil {
			return nil, fmt.Errorf("core: inserting tuple %d: %w", i, err)
		}
	}
	return tree, nil
}

// accumulate merges an ISB into a scratch header table by
// standard-dimension aggregation (bases and slopes add; Theorem 3.2).
func accumulate(scratch map[cube.CellKey]regression.ISB, key cube.CellKey, isb regression.ISB) {
	if cur, ok := scratch[key]; ok {
		cur.Base += isb.Base
		cur.Slope += isb.Slope
		scratch[key] = cur
	} else {
		scratch[key] = isb
	}
}

// sortedCellKeys returns a scratch table's keys in cube.CompareKeys order —
// the canonical iteration order wherever retention order feeds later
// aggregation, keeping float results bitwise reproducible.
func sortedCellKeys[V any](m map[cube.CellKey]V) []cube.CellKey {
	keys := make([]cube.CellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cube.CompareKeys)
	return keys
}

// CubingOptions disables the hot-path optimizations of MOCubing, keeping
// the original implementation callable for the ablation benchmarks and the
// old-vs-new bitwise agreement tests. The zero value — every optimization
// on — is what MOCubing runs.
type CubingOptions struct {
	// MapScratch restores the per-cuboid map[cube.CellKey]regression.ISB
	// header table instead of the reusable sorted-run aggregator.
	MapScratch bool
	// NoAncestorIndex resolves roll-ups with the interface-walking
	// cube.RollUpKey instead of the precomputed cube.AncestorIndex.
	NoAncestorIndex bool
}

// runEntry is one rolled-up leaf in the sorted-run aggregator: the target
// cell as a linear code and the index of the source leaf. The stable radix
// sort groups equal cells while preserving leaf order inside each group, so
// the float accumulation order is exactly the map path's.
type runEntry struct {
	code uint64
	idx  int32
}

// dimResolver is one dimension's precompiled (m-level → cuboid-level)
// resolution: exactly one of table / divide / walk, already multiplied into
// the cuboid's linear code by stride. The zero mode (everything unset)
// is the ALL level, contributing nothing to the code.
type dimResolver struct {
	stride uint64
	tab    []int32 // table mode: tab[member]
	div    int64   // divide mode when > 0: member / div (1 = identity)
	walk   bool    // fallback mode: per-leaf Ancestor walk
}

// runScratch is the reusable per-cuboid aggregation state of one MOCubing
// call: allocated once, reused for every cuboid pass ("one local header
// table at a time", without the churn).
type runScratch struct {
	entries []runEntry
	spare   []runEntry // radix ping-pong buffer
	plan    []dimResolver
	cells   []Cell // aggregated cells of the current cuboid
}

// cuboidCoder computes the linear coding of a cuboid's cells: the
// mixed-radix encoding of the member tuple by per-dimension cardinality,
// most significant dimension first — an order-embedding of
// cube.CompareKeys restricted to one cuboid. ok is false when the cuboid's
// cell space exceeds the uint64 range (the caller falls back to key
// sorting).
func cuboidCoder(s *cube.Schema, c cube.Cuboid) (strides, cards [cube.MaxDims]uint64, total uint64, ok bool) {
	const limit = uint64(1) << 62
	total = 1
	for d := len(s.Dims) - 1; d >= 0; d-- {
		strides[d] = total
		card := uint64(s.Dims[d].Hierarchy.Cardinality(c.Level(d)))
		cards[d] = card
		if card == 0 || total > limit/card {
			return strides, cards, total, false
		}
		total *= card
	}
	return strides, cards, total, true
}

// radixSortByCode stable-sorts entries by code with an LSB radix pass per
// used byte, ping-ponging between entries and spare (equal length). It
// returns (sorted, other). Stability is what carries the leaf order into
// each run. Passes whose byte is constant across all entries are skipped.
func radixSortByCode(entries, spare []runEntry, maxCode uint64) (sorted, other []runEntry) {
	if len(entries) < 2 {
		return entries, spare
	}
	var counts [256]int
	for shift := uint(0); maxCode>>shift != 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for i := range entries {
			counts[(entries[i].code>>shift)&0xff]++
		}
		if counts[(entries[0].code>>shift)&0xff] == len(entries) {
			continue // constant byte: nothing to move
		}
		sum := 0
		for i := range counts {
			n := counts[i]
			counts[i] = sum
			sum += n
		}
		for i := range entries {
			b := (entries[i].code >> shift) & 0xff
			spare[counts[b]] = entries[i]
			counts[b]++
		}
		entries, spare = spare, entries
	}
	return entries, spare
}

// MOCubing runs Algorithm 1 (m/o H-cubing). It aggregates every cuboid of
// the lattice from the H-tree's m-layer cells, one cuboid at a time in a
// reused scratch aggregator, and retains only exception cells in between
// the layers (all cells at the o-layer, which is also returned).
func MOCubing(s *cube.Schema, inputs []Input, thr exception.Thresholder) (*Result, error) {
	return MOCubingWith(s, inputs, thr, CubingOptions{})
}

// MOCubingWith is MOCubing with explicit optimization toggles — see
// CubingOptions. Every combination produces bitwise-identical results; only
// the cost differs (BenchmarkAblationAncestorIndex/ScratchReuse, and the
// agreement property tests, are the referees).
func MOCubingWith(s *cube.Schema, inputs []Input, thr exception.Thresholder, opts CubingOptions) (*Result, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	start := time.Now()
	tree, err := buildTree(s, htree.CardinalityOrder(s), inputs)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)

	idx := tree.AncestorIndex() // built once with the tree
	lattice := cube.NewLattice(s)
	res := &Result{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
	}
	st := &res.Stats
	st.Algorithm = "m/o-cubing"
	st.Tuples = len(inputs)
	st.TreeNodes = tree.NodeCount()
	st.TreeLeaves = tree.LeafCount()
	st.BuildTime = build

	cubeStart := time.Now()
	mLayer := s.MLayer()
	oLayer := s.OLayer()
	leaves := tree.Leaves()
	// Pre-extract leaf cells once; every cuboid pass rolls them up.
	leafCells := make([]Cell, len(leaves))
	for i, leaf := range leaves {
		leafCells[i] = Cell{Key: tree.CellKeyOf(leaf), ISB: leaf.Measure}
	}
	var scratch runScratch

	treeBytes := tree.BytesEstimate()
	for _, c := range lattice.Cuboids() {
		st.CuboidsComputed++
		if c.Equal(mLayer) {
			// The m-layer is the tree's leaf level: computed during the
			// build, no extra pass needed; its exceptions are still
			// detected and retained (Algorithm 1 computes all exception
			// cells in every required cuboid).
			st.CellsComputed += int64(len(leafCells))
			thrM := thr.Threshold(c)
			isO := c.Equal(oLayer) // degenerate schema with no layers in between
			for _, lc := range leafCells {
				if isO {
					res.OLayer[lc.Key] = lc.ISB
				}
				if exception.IsException(lc.ISB, thrM) {
					res.Exceptions[lc.Key] = lc.ISB
				}
			}
			continue
		}
		var distinct int64
		var retain func(yield func(cube.CellKey, regression.ISB))
		if opts.MapScratch {
			table := make(map[cube.CellKey]regression.ISB)
			for _, lc := range leafCells {
				var key cube.CellKey
				if opts.NoAncestorIndex {
					key, err = cube.RollUpKey(s, lc.Key, c)
					if err != nil {
						return nil, err
					}
				} else {
					key = idx.RollUp(lc.Key, c)
				}
				accumulate(table, key, lc.ISB)
			}
			distinct = int64(len(table))
			retain = func(yield func(cube.CellKey, regression.ISB)) {
				for key, isb := range table {
					yield(key, isb)
				}
			}
		} else {
			if err := scratch.aggregate(s, idx, leafCells, c, opts.NoAncestorIndex); err != nil {
				return nil, err
			}
			distinct = int64(len(scratch.cells))
			retain = func(yield func(cube.CellKey, regression.ISB)) {
				for i := range scratch.cells {
					yield(scratch.cells[i].Key, scratch.cells[i].ISB)
				}
			}
		}
		st.CellsComputed += distinct
		if distinct > st.PeakScratchCells {
			st.PeakScratchCells = distinct
		}
		peak := treeBytes + (distinct+int64(len(res.Exceptions))+int64(len(res.OLayer)))*bytesPerCell
		if !opts.MapScratch {
			// The run aggregator's two leaf-proportional entry buffers are
			// scratch too; keep the memory panels honest about them.
			const runEntryBytes = 16
			peak += int64(cap(scratch.entries)+cap(scratch.spare)) * runEntryBytes
		}
		if peak > st.PeakBytes {
			st.PeakBytes = peak
		}
		threshold := thr.Threshold(c)
		isO := c.Equal(oLayer)
		retain(func(key cube.CellKey, isb regression.ISB) {
			if isO {
				res.OLayer[key] = isb
			}
			if exception.IsException(isb, threshold) {
				res.Exceptions[key] = isb
			}
		})
	}
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = int64(len(res.OLayer) + len(res.Exceptions))
	st.BytesRetained = treeBytes + st.CellsRetained*bytesPerCell
	if st.BytesRetained > st.PeakBytes {
		st.PeakBytes = st.BytesRetained
	}
	return res, nil
}

// aggregate rolls every leaf up to cuboid c and sums equal cells into
// sc.cells, reusing sc's buffers. The accumulation order inside each cell
// is leaf order — identical to the map path's operand order, so results
// are bitwise equal; only the bookkeeping differs (append + stable radix
// sort instead of map assignments).
func (sc *runScratch) aggregate(s *cube.Schema, idx *cube.AncestorIndex, leafCells []Cell, c cube.Cuboid, noIndex bool) error {
	strides, cards, total, coded := cuboidCoder(s, c)
	sc.cells = sc.cells[:0]
	if !coded {
		return sc.aggregateByKey(s, leafCells, c)
	}

	nd := len(s.Dims)
	sc.entries = sc.entries[:0]
	if noIndex {
		// Ablation path: the interface-walking roll-up feeds the same coded
		// aggregation, isolating the AncestorIndex's contribution.
		for i := range leafCells {
			key, err := cube.RollUpKey(s, leafCells[i].Key, c)
			if err != nil {
				return err
			}
			code := uint64(0)
			for d := 0; d < nd; d++ {
				code += uint64(key.Members[d]) * strides[d]
			}
			sc.entries = append(sc.entries, runEntry{code: code, idx: int32(i)})
		}
	} else {
		// Compile the per-dimension resolution once per cuboid, then code
		// every leaf with plain arithmetic — no calls in the inner loop.
		sc.plan = sc.plan[:0]
		mLayer := s.MLayer()
		for d := 0; d < nd; d++ {
			from, to := mLayer.Level(d), c.Level(d)
			r := dimResolver{stride: strides[d]}
			if to > 0 {
				if div, ok := idx.DivisorFor(d, from, to); ok {
					r.div = div
				} else if tab := idx.TableFor(d, from, to); tab != nil {
					r.tab = tab
				} else {
					r.walk = true
				}
			}
			sc.plan = append(sc.plan, r)
		}
		for i := range leafCells {
			members := &leafCells[i].Key.Members
			code := uint64(0)
			for d := range sc.plan {
				p := &sc.plan[d]
				switch {
				case p.tab != nil:
					code += uint64(p.tab[members[d]]) * p.stride
				case p.div > 0:
					code += uint64(int64(members[d])/p.div) * p.stride
				case p.walk:
					code += uint64(idx.Ancestor(d, mLayer.Level(d), c.Level(d), members[d])) * p.stride
				}
			}
			sc.entries = append(sc.entries, runEntry{code: code, idx: int32(i)})
		}
	}
	if cap(sc.spare) < len(sc.entries) {
		sc.spare = make([]runEntry, len(sc.entries))
	}
	sorted, other := radixSortByCode(sc.entries, sc.spare[:len(sc.entries)], total-1)
	sc.entries, sc.spare = sorted, other

	for r := 0; r < len(sorted); {
		first := sorted[r]
		key := cube.CellKey{Cuboid: c}
		for d := 0; d < nd; d++ {
			key.Members[d] = int32(first.code / strides[d] % cards[d])
		}
		cell := Cell{Key: key, ISB: leafCells[first.idx].ISB}
		for r++; r < len(sorted) && sorted[r].code == first.code; r++ {
			isb := &leafCells[sorted[r].idx].ISB
			cell.ISB.Base += isb.Base
			cell.ISB.Slope += isb.Slope
		}
		sc.cells = append(sc.cells, cell)
	}
	return nil
}

// aggregateByKey is the uncoded fallback: cuboids whose cell space
// overflows a uint64 linear code sort rolled cells by key directly
// (stable, preserving leaf order within equal keys).
func (sc *runScratch) aggregateByKey(s *cube.Schema, leafCells []Cell, c cube.Cuboid) error {
	for i := range leafCells {
		key, err := cube.RollUpKey(s, leafCells[i].Key, c)
		if err != nil {
			return err
		}
		sc.cells = append(sc.cells, Cell{Key: key, ISB: leafCells[i].ISB})
	}
	slices.SortStableFunc(sc.cells, func(a, b Cell) int { return cube.CompareKeys(a.Key, b.Key) })
	w := 0
	for r := 1; r < len(sc.cells); r++ {
		if cube.CompareKeys(sc.cells[r].Key, sc.cells[w].Key) == 0 {
			sc.cells[w].ISB.Base += sc.cells[r].ISB.Base
			sc.cells[w].ISB.Slope += sc.cells[r].ISB.Slope
		} else {
			w++
			sc.cells[w] = sc.cells[r]
		}
	}
	if len(sc.cells) > 0 {
		sc.cells = sc.cells[:w+1]
	}
	return nil
}
