package core

import (
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// BUCOptions configures the BUC-style regression cubing of §7's suggested
// extension ("it is interesting to explore other cubing techniques, such
// as multiway array aggregation and BUC, for regression cubing").
type BUCOptions struct {
	// MinSupport prunes cells aggregated from fewer than this many
	// m-layer tuples, together with their entire refinement subtree —
	// the iceberg condition of Beyer & Ramakrishnan adapted to
	// regression cubes. Support is antimonotone, so pruning is safe;
	// the slope threshold itself is not antimonotone and never prunes.
	// Zero disables pruning.
	MinSupport int64
}

// bucCell carries one m-layer cell and its tuple support through the
// recursive partitioning.
type bucCell struct {
	key     cube.CellKey
	isb     regression.ISB
	support int64
}

// BUCCubing computes the regression cube bottom-up by recursive
// partitioning (BUC [5] adapted to multi-level dimensions): dimension by
// dimension, each level's partitions share the work done for coarser
// levels of earlier dimensions. Output matches MOCubing — all o-layer
// cells plus every exception cell — unless MinSupport prunes low-support
// subtrees.
func BUCCubing(s *cube.Schema, inputs []Input, thr exception.Thresholder, opts BUCOptions) (*Result, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	start := time.Now()

	// Merge duplicate m-layer tuples first (the H-tree's leaf merge,
	// without needing tree structure here).
	m := s.MLayer()
	merged := make(map[cube.CellKey]*bucCell, len(inputs))
	for _, in := range inputs {
		var members [cube.MaxDims]int32
		copy(members[:], in.Members)
		key := cube.CellKey{Cuboid: m, Members: members}
		if c, ok := merged[key]; ok {
			c.isb.Base += in.Measure.Base
			c.isb.Slope += in.Measure.Slope
			c.support++
		} else {
			merged[key] = &bucCell{key: key, isb: in.Measure, support: 1}
		}
	}
	cells := make([]bucCell, 0, len(merged))
	for _, c := range merged {
		cells = append(cells, *c)
	}
	build := time.Since(start)

	res := &Result{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
	}
	st := &res.Stats
	st.Algorithm = "buc-cubing"
	st.Tuples = len(inputs)
	st.TreeLeaves = len(cells)
	st.BuildTime = build

	cubeStart := time.Now()
	oLayer := s.OLayer()
	b := &bucState{
		schema:  s,
		thr:     thr,
		opts:    opts,
		res:     res,
		oLayer:  oLayer,
		mLayer:  m,
		cuboids: make(map[cube.Cuboid]bool),
	}
	// Every dimension's level is overwritten during recursion; starting
	// from the o-layer only fixes the dimension count of the cuboid.
	rootKey := cube.CellKey{Cuboid: oLayer}
	b.recurse(cells, 0, rootKey)
	st.CuboidsComputed = len(b.cuboids)
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = int64(len(res.OLayer) + len(res.Exceptions))
	st.BytesRetained = st.CellsRetained * bytesPerCell
	if st.BytesRetained > st.PeakBytes {
		st.PeakBytes = st.BytesRetained
	}
	return res, nil
}

type bucState struct {
	schema  *cube.Schema
	thr     exception.Thresholder
	opts    BUCOptions
	res     *Result
	oLayer  cube.Cuboid
	mLayer  cube.Cuboid
	cuboids map[cube.Cuboid]bool
}

// recurse processes dimension d: for each level of d (coarsest first), it
// partitions the current cell set by the member at that level and recurses
// into the next dimension for every partition. When all dimensions have
// chosen a level, the partition IS one cell of the chosen cuboid.
func (b *bucState) recurse(cells []bucCell, d int, key cube.CellKey) {
	if len(cells) == 0 {
		return
	}
	if d == len(b.schema.Dims) {
		b.emit(cells, key)
		return
	}
	dim := b.schema.Dims[d]
	for level := dim.OLevel; level <= dim.MLevel; level++ {
		// Partition by the ancestor member at (d, level).
		parts := make(map[int32][]bucCell)
		for _, c := range cells {
			member := cube.Ancestor(dim.Hierarchy, dim.MLevel, level, c.key.Members[d])
			parts[member] = append(parts[member], c)
		}
		for member, part := range parts {
			if b.opts.MinSupport > 0 {
				var sup int64
				for _, c := range part {
					sup += c.support
				}
				if sup < b.opts.MinSupport {
					continue // iceberg pruning: no refinement can recover support
				}
			}
			next := key
			next.Cuboid = next.Cuboid.WithLevel(d, level)
			next.Members[d] = member
			b.recurse(part, d+1, next)
		}
	}
}

// emit aggregates one finished partition into its cell and applies the
// retention rules (o-layer: always; otherwise: exceptions only).
func (b *bucState) emit(cells []bucCell, key cube.CellKey) {
	isb := cells[0].isb
	for _, c := range cells[1:] {
		isb.Base += c.isb.Base
		isb.Slope += c.isb.Slope
	}
	b.cuboids[key.Cuboid] = true
	b.res.Stats.CellsComputed++
	if key.Cuboid.Equal(b.oLayer) {
		b.res.OLayer[key] = isb
	}
	if exception.IsException(isb, b.thr.Threshold(key.Cuboid)) {
		b.res.Exceptions[key] = isb
	}
}
