package core

import (
	"fmt"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// DeltaCell pairs a cell's regression in the current window with the
// previous window's (§4.3: "the regression line may refer to ... the
// current cell (such as the current quarter) vs. the previous one").
type DeltaCell struct {
	Key      cube.CellKey
	Cur      regression.ISB
	Prev     regression.ISB
	HavePrev bool
}

// SlopeChange returns |cur.Slope − prev.Slope|, or 0 without a previous
// window.
func (d DeltaCell) SlopeChange() float64 {
	if !d.HavePrev {
		return 0
	}
	diff := d.Cur.Slope - d.Prev.Slope
	if diff < 0 {
		return -diff
	}
	return diff
}

// DeltaResult is the outcome of a change-based cubing run.
type DeltaResult struct {
	Schema *cube.Schema
	// OLayer holds every o-layer cell with both windows' regressions.
	OLayer map[cube.CellKey]DeltaCell
	// Exceptions holds the cells whose slope changed at least the
	// detector's threshold between the windows, at every cuboid.
	Exceptions map[cube.CellKey]DeltaCell
	Stats      Stats
}

// DeltaCubing computes the change-based exception cube between two
// adjacent time windows: every cell of every cuboid is aggregated in both
// windows (one m/o-style pass per cuboid), and cells whose slope moved at
// least det.MinSlopeChange are retained. Cells absent from the previous
// window are never exceptional (no base to compare).
//
// prev's interval must end exactly one tick before cur's begins; prev may
// be empty (first window of a stream).
func DeltaCubing(s *cube.Schema, cur, prev []Input, det exception.Delta) (*DeltaResult, error) {
	if err := validate(s, cur); err != nil {
		return nil, err
	}
	if len(prev) > 0 {
		if err := validate(s, prev); err != nil {
			return nil, fmt.Errorf("previous window: %w", err)
		}
		if prev[0].Measure.Te+1 != cur[0].Measure.Tb {
			return nil, fmt.Errorf("%w: previous window ends at %d, current begins at %d",
				ErrInput, prev[0].Measure.Te, cur[0].Measure.Tb)
		}
	}
	start := time.Now()

	m := s.MLayer()
	mergeToM := func(inputs []Input) map[cube.CellKey]regression.ISB {
		out := make(map[cube.CellKey]regression.ISB, len(inputs))
		for _, in := range inputs {
			var members [cube.MaxDims]int32
			copy(members[:], in.Members)
			accumulate(out, cube.CellKey{Cuboid: m, Members: members}, in.Measure)
		}
		return out
	}
	curM := mergeToM(cur)
	prevM := mergeToM(prev)
	build := time.Since(start)

	lattice := cube.NewLattice(s)
	res := &DeltaResult{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]DeltaCell),
		Exceptions: make(map[cube.CellKey]DeltaCell),
	}
	st := &res.Stats
	st.Algorithm = "delta-cubing"
	st.Tuples = len(cur) + len(prev)
	st.TreeLeaves = len(curM)
	st.BuildTime = build

	cubeStart := time.Now()
	oLayer := s.OLayer()
	// Precomputed ancestor tables: every m-cell rolls up per cuboid with
	// slice indexing instead of an interface walk (m-layer keys dominate
	// every lattice cuboid, so the unchecked RollUp is safe).
	idx := cube.NewAncestorIndex(s)
	// Canonical m-cell order: per-cell sums are then bitwise reproducible.
	curKeys := sortedCellKeys(curM)
	prevKeys := sortedCellKeys(prevM)
	for _, c := range lattice.Cuboids() {
		st.CuboidsComputed++
		curCells := make(map[cube.CellKey]regression.ISB, len(curKeys))
		for _, key := range curKeys {
			accumulate(curCells, idx.RollUp(key, c), curM[key])
		}
		prevCells := make(map[cube.CellKey]regression.ISB, len(prevKeys))
		for _, key := range prevKeys {
			accumulate(prevCells, idx.RollUp(key, c), prevM[key])
		}
		st.CellsComputed += int64(len(curCells))
		if n := int64(len(curCells) + len(prevCells)); n > st.PeakScratchCells {
			st.PeakScratchCells = n
		}
		isO := c.Equal(oLayer)
		for key, curISB := range curCells {
			prevISB, have := prevCells[key]
			dc := DeltaCell{Key: key, Cur: curISB, Prev: prevISB, HavePrev: have}
			if isO {
				res.OLayer[key] = dc
			}
			if det.Exceptional(curISB, prevISB, have) {
				res.Exceptions[key] = dc
			}
		}
	}
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = int64(len(res.OLayer) + len(res.Exceptions))
	st.BytesRetained = st.CellsRetained * bytesPerCell * 2 // two ISBs per cell
	st.PeakBytes = st.BytesRetained
	return res, nil
}
