package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testSchema builds a D-dims, L-levels, fanout-C schema with o-layer at
// level 1 everywhere (the benchmark convention of §5).
func testSchema(t *testing.T, dims, levels, fanout int) *cube.Schema {
	t.Helper()
	ds := make([]cube.Dimension, dims)
	for d := 0; d < dims; d++ {
		h, err := cube.NewFanoutHierarchy(string(rune('A'+d)), fanout, levels)
		if err != nil {
			t.Fatal(err)
		}
		ds[d] = cube.Dimension{Name: string(rune('A' + d)), Hierarchy: h, MLevel: levels, OLevel: 1}
	}
	s, err := cube.NewSchema(ds...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomInputs makes n m-layer tuples with slopes drawn N(0, spread).
func randomInputs(s *cube.Schema, n int, spread float64, seed int64) []Input {
	r := rand.New(rand.NewSource(seed))
	inputs := make([]Input, n)
	for i := range inputs {
		members := make([]int32, len(s.Dims))
		for d := range members {
			members[d] = int32(r.Intn(s.Dims[d].Hierarchy.Cardinality(s.Dims[d].MLevel)))
		}
		inputs[i] = Input{
			Members: members,
			Measure: regression.ISB{Tb: 0, Te: 9, Base: r.NormFloat64(), Slope: r.NormFloat64() * spread},
		}
	}
	return inputs
}

// bruteForce computes every cuboid's cells directly from the inputs — the
// ground truth both algorithms must match.
func bruteForce(t *testing.T, s *cube.Schema, inputs []Input) map[cube.CellKey]regression.ISB {
	t.Helper()
	lattice := cube.NewLattice(s)
	out := make(map[cube.CellKey]regression.ISB)
	m := s.MLayer()
	for _, in := range inputs {
		var members [cube.MaxDims]int32
		copy(members[:], in.Members)
		base := cube.CellKey{Cuboid: m, Members: members}
		for _, c := range lattice.Cuboids() {
			key, err := cube.RollUpKey(s, base, c)
			if err != nil {
				t.Fatal(err)
			}
			if cur, ok := out[key]; ok {
				cur.Base += in.Measure.Base
				cur.Slope += in.Measure.Slope
				out[key] = cur
			} else {
				out[key] = in.Measure
			}
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	if _, err := MOCubing(s, nil, exception.Global(1)); err == nil {
		t.Fatal("expected empty-batch error")
	}
	bad := []Input{{Members: []int32{1}, Measure: regression.ISB{Tb: 0, Te: 9}}}
	if _, err := MOCubing(s, bad, exception.Global(1)); err == nil {
		t.Fatal("expected member-count error")
	}
	mixed := []Input{
		{Members: []int32{1, 1}, Measure: regression.ISB{Tb: 0, Te: 9}},
		{Members: []int32{2, 2}, Measure: regression.ISB{Tb: 0, Te: 4}},
	}
	if _, err := MOCubing(s, mixed, exception.Global(1)); err == nil {
		t.Fatal("expected interval mismatch error")
	}
	nonfinite := []Input{{Members: []int32{1, 1}, Measure: regression.ISB{Tb: 0, Te: 9, Slope: math.NaN()}}}
	if _, err := MOCubing(s, nonfinite, exception.Global(1)); err == nil {
		t.Fatal("expected non-finite error")
	}
}

func TestMOCubingMatchesBruteForce(t *testing.T) {
	s := testSchema(t, 3, 2, 3)
	inputs := randomInputs(s, 200, 1, 7)
	truth := bruteForce(t, s, inputs)
	thr := exception.Global(0.8)
	res, err := MOCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	// Every o-layer cell matches truth.
	o := s.OLayer()
	for key, isb := range res.OLayer {
		want, ok := truth[key]
		if !ok || key.Cuboid != o {
			t.Fatalf("unexpected o-layer cell %v", key)
		}
		if !almostEq(isb.Base, want.Base, 1e-9) || !almostEq(isb.Slope, want.Slope, 1e-9) {
			t.Fatalf("o-layer cell %v = %v, want %v", key, isb, want)
		}
	}
	// Exceptions are exactly the truth cells over threshold.
	var wantExc int
	for key, isb := range truth {
		if exception.IsException(isb, 0.8) {
			wantExc++
			got, ok := res.Exceptions[key]
			if !ok {
				t.Fatalf("missing exception %v (slope %g)", key, isb.Slope)
			}
			if !almostEq(got.Slope, isb.Slope, 1e-9) {
				t.Fatalf("exception %v slope %g, want %g", key, got.Slope, isb.Slope)
			}
		}
	}
	if len(res.Exceptions) != wantExc {
		t.Fatalf("exceptions = %d, want %d", len(res.Exceptions), wantExc)
	}
	// Every truth cell under threshold must NOT be in exceptions.
	for key, isb := range truth {
		if !exception.IsException(isb, 0.8) {
			if _, bad := res.Exceptions[key]; bad {
				t.Fatalf("non-exception %v retained", key)
			}
		}
	}
}

func TestMOCubingStats(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	inputs := randomInputs(s, 100, 1, 8)
	res, err := MOCubing(s, inputs, exception.Global(0.5))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Algorithm != "m/o-cubing" {
		t.Fatalf("algorithm = %q", st.Algorithm)
	}
	if st.Tuples != 100 {
		t.Fatalf("tuples = %d", st.Tuples)
	}
	if st.CuboidsComputed != 4 { // 2 dims × 2 levels → 2·2 cuboids
		t.Fatalf("cuboids = %d", st.CuboidsComputed)
	}
	if st.CellsComputed <= 0 || st.TreeNodes <= 1 || st.TreeLeaves <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.BytesRetained <= 0 || st.PeakBytes < st.BytesRetained {
		t.Fatalf("bytes accounting: retained %d peak %d", st.BytesRetained, st.PeakBytes)
	}
	if st.CellsRetained != int64(len(res.OLayer)+len(res.Exceptions)) {
		t.Fatal("retained count mismatch")
	}
}

func TestPopularPathMatchesBruteForceOnPath(t *testing.T) {
	s := testSchema(t, 3, 2, 3)
	inputs := randomInputs(s, 200, 1, 9)
	truth := bruteForce(t, s, inputs)
	lattice := cube.NewLattice(s)
	path := lattice.DefaultPath()
	res, err := PopularPath(s, inputs, exception.Global(0.8), path)
	if err != nil {
		t.Fatal(err)
	}
	// Path cells must match truth exactly.
	for _, pc := range path.Cuboids {
		cells := res.PathCells[pc]
		if len(cells) == 0 {
			t.Fatalf("no cells for path cuboid %v", pc)
		}
		for key, isb := range cells {
			want, ok := truth[key]
			if !ok {
				t.Fatalf("unexpected path cell %v", key)
			}
			if !almostEq(isb.Base, want.Base, 1e-9) || !almostEq(isb.Slope, want.Slope, 1e-9) {
				t.Fatalf("path cell %v = %v, want %v", key, isb, want)
			}
		}
		// And cover all truth cells of the cuboid.
		for key := range truth {
			if key.Cuboid == pc {
				if _, ok := cells[key]; !ok {
					t.Fatalf("missing path cell %v", key)
				}
			}
		}
	}
	// o-layer identical to truth.
	for key := range truth {
		if key.Cuboid == s.OLayer() {
			if _, ok := res.OLayer[key]; !ok {
				t.Fatalf("missing o-layer cell %v", key)
			}
		}
	}
}

// Popular-path exceptions must (a) be a subset of m/o-cubing's exceptions
// with identical measures, and (b) agree on every path cuboid, and (c)
// equal the downward closure of exception cells reachable from computed
// exception parents.
func TestAlgorithmsAgree(t *testing.T) {
	for _, spread := range []float64{0.3, 1, 3} {
		s := testSchema(t, 3, 2, 3)
		inputs := randomInputs(s, 300, spread, 10)
		thr := exception.Global(1.0)
		lattice := cube.NewLattice(s)
		path := lattice.DefaultPath()

		mo, err := MOCubing(s, inputs, thr)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := PopularPath(s, inputs, thr, path)
		if err != nil {
			t.Fatal(err)
		}

		// (o-layer identical)
		if len(mo.OLayer) != len(pp.OLayer) {
			t.Fatalf("o-layer sizes differ: %d vs %d", len(mo.OLayer), len(pp.OLayer))
		}
		for key, a := range mo.OLayer {
			b, ok := pp.OLayer[key]
			if !ok {
				t.Fatalf("popular-path missing o-cell %v", key)
			}
			if !almostEq(a.Slope, b.Slope, 1e-9) || !almostEq(a.Base, b.Base, 1e-9) {
				t.Fatalf("o-cell %v differs: %v vs %v", key, a, b)
			}
		}

		// (subset with equal measures)
		for key, b := range pp.Exceptions {
			a, ok := mo.Exceptions[key]
			if !ok {
				t.Fatalf("popular-path exception %v not found by m/o-cubing", key)
			}
			if !almostEq(a.Slope, b.Slope, 1e-9) {
				t.Fatalf("exception %v slope differs: %g vs %g", key, a.Slope, b.Slope)
			}
		}

		// (closure): expected = all m/o exceptions on path cuboids, plus
		// off-path exceptions reachable via an exception parent in the
		// expected set, processed coarsest-first.
		expected := map[cube.CellKey]bool{}
		for _, c := range lattice.Cuboids() {
			for key, isb := range mo.Exceptions {
				if key.Cuboid != c {
					continue
				}
				_ = isb
				if path.OnPath(c) {
					expected[key] = true
					continue
				}
				for _, p := range lattice.Parents(c) {
					pk, err := cube.RollUpKey(s, key, p)
					if err != nil {
						t.Fatal(err)
					}
					if expected[pk] {
						expected[key] = true
						break
					}
				}
			}
		}
		if len(expected) != len(pp.Exceptions) {
			t.Fatalf("closure size %d vs popular-path %d (spread %g)", len(expected), len(pp.Exceptions), spread)
		}
		for key := range expected {
			if _, ok := pp.Exceptions[key]; !ok {
				t.Fatalf("closure cell %v missing from popular-path", key)
			}
		}
	}
}

func TestPopularPathCustomPath(t *testing.T) {
	s := testSchema(t, 2, 3, 2)
	lattice := cube.NewLattice(s)
	// Alternate path: interleave dimensions.
	path, err := lattice.PathFromSteps([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(s, 150, 1, 11)
	res, err := PopularPath(s, inputs, exception.Global(0.7), path)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := MOCubing(s, inputs, exception.Global(0.7))
	if err != nil {
		t.Fatal(err)
	}
	for key, b := range res.Exceptions {
		a, ok := mo.Exceptions[key]
		if !ok {
			t.Fatalf("exception %v not in m/o set", key)
		}
		if !almostEq(a.Slope, b.Slope, 1e-9) {
			t.Fatal("slope mismatch")
		}
	}
}

func TestDegenerateSingleCuboidSchema(t *testing.T) {
	// o-layer == m-layer: the only cuboid is both critical layers.
	h, _ := cube.NewFanoutHierarchy("A", 3, 1)
	s, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 1, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{
		{Members: []int32{0}, Measure: regression.ISB{Tb: 0, Te: 9, Base: 1, Slope: 2}},
		{Members: []int32{1}, Measure: regression.ISB{Tb: 0, Te: 9, Base: 1, Slope: 0.1}},
	}
	res, err := MOCubing(s, inputs, exception.Global(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OLayer) != 2 {
		t.Fatalf("o-layer cells = %d, want 2", len(res.OLayer))
	}
	if len(res.Exceptions) != 1 {
		t.Fatalf("exceptions = %d, want 1", len(res.Exceptions))
	}
	lattice := cube.NewLattice(s)
	pp, err := PopularPath(s, inputs, exception.Global(1), lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.OLayer) != 2 || len(pp.Exceptions) != 1 {
		t.Fatalf("popular-path degenerate: o=%d exc=%d", len(pp.OLayer), len(pp.Exceptions))
	}
}

func TestOLayerAtApex(t *testing.T) {
	// All dimensions observed at ALL: the o-layer is the apex cell.
	h, _ := cube.NewFanoutHierarchy("A", 3, 2)
	s, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 2, OLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(s, 50, 1, 12)
	mo, err := MOCubing(s, inputs, exception.Global(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(mo.OLayer) != 1 {
		t.Fatalf("apex o-layer cells = %d, want 1", len(mo.OLayer))
	}
	lattice := cube.NewLattice(s)
	pp, err := PopularPath(s, inputs, exception.Global(0.5), lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.OLayer) != 1 {
		t.Fatalf("popular-path apex o-layer = %d, want 1", len(pp.OLayer))
	}
	var a, b regression.ISB
	for _, v := range mo.OLayer {
		a = v
	}
	for _, v := range pp.OLayer {
		b = v
	}
	if !almostEq(a.Slope, b.Slope, 1e-9) || !almostEq(a.Base, b.Base, 1e-9) {
		t.Fatalf("apex cells differ: %v vs %v", a, b)
	}
}

func TestExceptionsAt(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	inputs := randomInputs(s, 100, 2, 13)
	res, err := MOCubing(s, inputs, exception.Global(0.5))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	lattice := cube.NewLattice(s)
	for _, c := range lattice.Cuboids() {
		total += len(res.ExceptionsAt(c))
	}
	if total != len(res.Exceptions) {
		t.Fatalf("per-cuboid exceptions %d != total %d", total, len(res.Exceptions))
	}
}

func TestThresholdSweepMonotonicity(t *testing.T) {
	// Higher thresholds must retain fewer (or equal) exceptions — the
	// mechanism behind the Figure 8 sweep.
	s := testSchema(t, 2, 2, 4)
	inputs := randomInputs(s, 400, 1, 14)
	var prev int = 1 << 30
	for _, thr := range []float64{0.1, 0.5, 1, 2, 5} {
		res, err := MOCubing(s, inputs, exception.Global(thr))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Exceptions) > prev {
			t.Fatalf("exceptions grew from %d to %d when threshold rose to %g", prev, len(res.Exceptions), thr)
		}
		prev = len(res.Exceptions)
	}
}

func TestPopularPathStats(t *testing.T) {
	s := testSchema(t, 2, 3, 3)
	inputs := randomInputs(s, 500, 1, 15)
	lattice := cube.NewLattice(s)
	res, err := PopularPath(s, inputs, exception.Global(0.4), lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Algorithm != "popular-path" {
		t.Fatalf("algorithm = %q", st.Algorithm)
	}
	if st.CuboidsComputed < len(lattice.DefaultPath().Cuboids) {
		t.Fatal("must compute at least the path cuboids")
	}
	if st.BytesRetained <= 0 || st.PeakBytes < st.BytesRetained {
		t.Fatal("bytes accounting broken")
	}
	// Path cells are retained: memory must exceed the tree alone.
	if st.CellsRetained <= 0 {
		t.Fatal("path cells must be retained")
	}
}

// Memory-shape check backing Figure 8(b): at a high threshold (few
// exceptions) popular-path must retain more than m/o-cubing (it stores the
// whole path), and m/o-cubing's retention must grow as the threshold
// drops.
func TestMemoryShapeVsException(t *testing.T) {
	s := testSchema(t, 3, 2, 4)
	inputs := randomInputs(s, 1000, 1, 16)
	lattice := cube.NewLattice(s)
	path := lattice.DefaultPath()

	moHigh, _ := MOCubing(s, inputs, exception.Global(100))
	ppHigh, _ := PopularPath(s, inputs, exception.Global(100), path)
	if ppHigh.Stats.CellsRetained <= moHigh.Stats.CellsRetained {
		t.Fatalf("at high threshold popular-path should retain more: %d vs %d",
			ppHigh.Stats.CellsRetained, moHigh.Stats.CellsRetained)
	}
	moLow, _ := MOCubing(s, inputs, exception.Global(0.01))
	if moLow.Stats.CellsRetained <= moHigh.Stats.CellsRetained {
		t.Fatalf("m/o retention should grow when threshold drops: %d vs %d",
			moLow.Stats.CellsRetained, moHigh.Stats.CellsRetained)
	}
}
