package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// Property: for RANDOM schema shapes (dims, levels, fanouts, o-levels),
// random workloads, and random thresholds, all four engines agree:
//
//   - m/o-cubing, BUC, and array cubing retain identical exception sets
//     with identical measures and identical o-layers;
//   - popular-path's exceptions are the drill-down closure subset;
//   - full cubing's cells are a superset consistent with all of them.
func TestAllEnginesAgreeOnRandomSchemas(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(404))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDims := 1 + r.Intn(3)
		dims := make([]cube.Dimension, nDims)
		for d := 0; d < nDims; d++ {
			levels := 1 + r.Intn(3)
			fanout := 2 + r.Intn(3)
			h, err := cube.NewFanoutHierarchy(string(rune('A'+d)), fanout, levels)
			if err != nil {
				return false
			}
			oLevel := r.Intn(levels + 1) // 0..levels
			if oLevel > levels {
				oLevel = levels
			}
			dims[d] = cube.Dimension{
				Name: string(rune('A' + d)), Hierarchy: h,
				MLevel: levels, OLevel: oLevel,
			}
		}
		s, err := cube.NewSchema(dims...)
		if err != nil {
			return false
		}
		nTuples := 20 + r.Intn(300)
		inputs := make([]Input, nTuples)
		for i := range inputs {
			members := make([]int32, nDims)
			for d := range members {
				members[d] = int32(r.Intn(s.Dims[d].Hierarchy.Cardinality(s.Dims[d].MLevel)))
			}
			inputs[i] = Input{
				Members: members,
				Measure: regression.ISB{Tb: 0, Te: 9, Base: r.NormFloat64(), Slope: r.NormFloat64() * 2},
			}
		}
		threshold := r.Float64() * 3
		thr := exception.Global(threshold)

		mo, err := MOCubing(s, inputs, thr)
		if err != nil {
			return false
		}
		buc, err := BUCCubing(s, inputs, thr, BUCOptions{})
		if err != nil {
			return false
		}
		arr, err := ArrayCubing(s, inputs, thr)
		if err != nil {
			return false
		}
		full, err := FullCubing(s, inputs)
		if err != nil {
			return false
		}
		lattice := cube.NewLattice(s)
		pp, err := PopularPath(s, inputs, thr, lattice.DefaultPath())
		if err != nil {
			return false
		}

		// Exact engines agree pairwise.
		for _, other := range []*Result{buc, arr} {
			if len(other.Exceptions) != len(mo.Exceptions) || len(other.OLayer) != len(mo.OLayer) {
				return false
			}
			for key, want := range mo.Exceptions {
				got, ok := other.Exceptions[key]
				if !ok || !almostEq(got.Slope, want.Slope, 1e-7) || !almostEq(got.Base, want.Base, 1e-7) {
					return false
				}
			}
			for key, want := range mo.OLayer {
				got, ok := other.OLayer[key]
				if !ok || !almostEq(got.Slope, want.Slope, 1e-7) {
					return false
				}
			}
		}

		// Full cubing contains every mo exception with the same measure,
		// and every full cell over threshold is an mo exception.
		var fullExc int
		for c, cells := range full.Cuboids {
			th := thr.Threshold(c)
			for key, isb := range cells {
				if exception.IsException(isb, th) {
					fullExc++
					want, ok := mo.Exceptions[key]
					if !ok || !almostEq(want.Slope, isb.Slope, 1e-7) {
						return false
					}
				}
			}
		}
		if fullExc != len(mo.Exceptions) {
			return false
		}

		// Popular-path subset + closure.
		for key, isb := range pp.Exceptions {
			want, ok := mo.Exceptions[key]
			if !ok || !almostEq(want.Slope, isb.Slope, 1e-7) {
				return false
			}
		}
		path := lattice.DefaultPath()
		expected := map[cube.CellKey]bool{}
		for _, c := range lattice.Cuboids() {
			for key := range mo.Exceptions {
				if key.Cuboid != c {
					continue
				}
				if path.OnPath(c) {
					expected[key] = true
					continue
				}
				for _, p := range lattice.Parents(c) {
					pk, err := cube.RollUpKey(s, key, p)
					if err != nil {
						return false
					}
					if expected[pk] {
						expected[key] = true
						break
					}
				}
			}
		}
		if len(expected) != len(pp.Exceptions) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
