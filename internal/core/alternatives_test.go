package core

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// The alternative cubing engines (§7 future work: BUC, multiway array,
// full materialization) must agree cell-for-cell with m/o-cubing.

func TestFullCubingMatchesBruteForce(t *testing.T) {
	s := testSchema(t, 3, 2, 3)
	inputs := randomInputs(s, 250, 1, 21)
	truth := bruteForce(t, s, inputs)
	res, err := FullCubing(s, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellCount() != int64(len(truth)) {
		t.Fatalf("cells = %d, want %d", res.CellCount(), len(truth))
	}
	for _, cells := range res.Cuboids {
		for key, isb := range cells {
			want, ok := truth[key]
			if !ok {
				t.Fatalf("unexpected cell %v", key)
			}
			if !almostEq(isb.Base, want.Base, 1e-9) || !almostEq(isb.Slope, want.Slope, 1e-9) {
				t.Fatalf("cell %v = %v, want %v", key, isb, want)
			}
		}
	}
	if res.Stats.Algorithm != "full-cubing" {
		t.Fatal("stats algorithm name")
	}
	if res.Stats.CellsRetained != res.Stats.CellsComputed {
		t.Fatal("full cubing retains everything")
	}
}

func TestBUCMatchesMOCubing(t *testing.T) {
	s := testSchema(t, 3, 2, 3)
	inputs := randomInputs(s, 300, 1, 22)
	thr := exception.Global(0.9)
	mo, err := MOCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	buc, err := BUCCubing(s, inputs, thr, BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(buc.Exceptions) != len(mo.Exceptions) {
		t.Fatalf("exceptions: buc %d vs mo %d", len(buc.Exceptions), len(mo.Exceptions))
	}
	for key, want := range mo.Exceptions {
		got, ok := buc.Exceptions[key]
		if !ok {
			t.Fatalf("buc missing exception %v", key)
		}
		if !almostEq(got.Slope, want.Slope, 1e-9) || !almostEq(got.Base, want.Base, 1e-9) {
			t.Fatalf("exception %v: buc %v vs mo %v", key, got, want)
		}
	}
	if len(buc.OLayer) != len(mo.OLayer) {
		t.Fatalf("o-layer: buc %d vs mo %d", len(buc.OLayer), len(mo.OLayer))
	}
	for key, want := range mo.OLayer {
		got, ok := buc.OLayer[key]
		if !ok || !almostEq(got.Slope, want.Slope, 1e-9) {
			t.Fatalf("o-cell %v: buc %v vs mo %v", key, got, want)
		}
	}
	// Same number of cells computed (both enumerate every cell once).
	if buc.Stats.CellsComputed != mo.Stats.CellsComputed {
		t.Fatalf("cells computed: buc %d vs mo %d", buc.Stats.CellsComputed, mo.Stats.CellsComputed)
	}
	if buc.Stats.CuboidsComputed != mo.Stats.CuboidsComputed {
		t.Fatalf("cuboids: buc %d vs mo %d", buc.Stats.CuboidsComputed, mo.Stats.CuboidsComputed)
	}
}

func TestBUCMinSupportPrunes(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	inputs := randomInputs(s, 200, 1, 23)
	noPrune, err := BUCCubing(s, inputs, exception.Global(0), BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BUCCubing(s, inputs, exception.Global(0), BUCOptions{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.CellsComputed >= noPrune.Stats.CellsComputed {
		t.Fatalf("pruning should reduce computed cells: %d vs %d",
			pruned.Stats.CellsComputed, noPrune.Stats.CellsComputed)
	}
	// Every surviving cell must genuinely have support ≥ 5: check by
	// recounting tuples per surviving o-layer cell.
	counts := make(map[cube.CellKey]int64)
	m := s.MLayer()
	for _, in := range inputs {
		var members [cube.MaxDims]int32
		copy(members[:], in.Members)
		key, err := cube.RollUpKey(s, cube.CellKey{Cuboid: m, Members: members}, s.OLayer())
		if err != nil {
			t.Fatal(err)
		}
		counts[key]++
	}
	for key := range pruned.OLayer {
		if counts[key] < 5 {
			t.Fatalf("cell %v survived with support %d", key, counts[key])
		}
	}
	// And no qualifying cell was lost at the o-layer.
	for key, n := range counts {
		if n >= 5 {
			if _, ok := pruned.OLayer[key]; !ok {
				t.Fatalf("cell %v with support %d was wrongly pruned", key, n)
			}
		}
	}
}

func TestArrayCubingMatchesMOCubing(t *testing.T) {
	s := testSchema(t, 3, 2, 3)
	inputs := randomInputs(s, 300, 1, 24)
	thr := exception.Global(0.9)
	mo, err := MOCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrayCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Exceptions) != len(mo.Exceptions) {
		t.Fatalf("exceptions: array %d vs mo %d", len(arr.Exceptions), len(mo.Exceptions))
	}
	for key, want := range mo.Exceptions {
		got, ok := arr.Exceptions[key]
		if !ok {
			t.Fatalf("array cubing missing exception %v", key)
		}
		if !almostEq(got.Slope, want.Slope, 1e-9) || !almostEq(got.Base, want.Base, 1e-9) {
			t.Fatalf("exception %v: array %v vs mo %v", key, got, want)
		}
	}
	if len(arr.OLayer) != len(mo.OLayer) {
		t.Fatalf("o-layer: array %d vs mo %d", len(arr.OLayer), len(mo.OLayer))
	}
	for key, want := range mo.OLayer {
		got, ok := arr.OLayer[key]
		if !ok || !almostEq(got.Slope, want.Slope, 1e-9) {
			t.Fatalf("o-cell %v: array %v vs mo %v", key, got, want)
		}
	}
	if arr.Stats.CellsComputed != mo.Stats.CellsComputed {
		t.Fatalf("cells computed: array %d vs mo %d", arr.Stats.CellsComputed, mo.Stats.CellsComputed)
	}
}

func TestArrayCubingRejectsHugeCubes(t *testing.T) {
	// 4 dims × fanout 100 at 2 levels → 100^8 dense cells: must refuse.
	ds := make([]cube.Dimension, 4)
	for d := range ds {
		h, _ := cube.NewFanoutHierarchy("X", 100, 2)
		ds[d] = cube.Dimension{Name: "X", Hierarchy: h, MLevel: 2, OLevel: 1}
	}
	s, err := cube.NewSchema(ds...)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{{Members: []int32{0, 0, 0, 0}, Measure: regression.ISB{Tb: 0, Te: 9}}}
	if _, err := ArrayCubing(s, inputs, exception.Global(1)); err == nil {
		t.Fatal("expected ErrTooDense")
	}
}

func TestAlternativesValidateInput(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	if _, err := FullCubing(s, nil); err == nil {
		t.Fatal("FullCubing must validate")
	}
	if _, err := BUCCubing(s, nil, exception.Global(1), BUCOptions{}); err == nil {
		t.Fatal("BUCCubing must validate")
	}
	if _, err := ArrayCubing(s, nil, exception.Global(1)); err == nil {
		t.Fatal("ArrayCubing must validate")
	}
}

func TestBUCMergesDuplicateTuples(t *testing.T) {
	s := testSchema(t, 2, 2, 3)
	isb := regression.ISB{Tb: 0, Te: 9, Base: 1, Slope: 1}
	inputs := []Input{
		{Members: []int32{0, 0}, Measure: isb},
		{Members: []int32{0, 0}, Measure: isb},
	}
	res, err := BUCCubing(s, inputs, exception.Global(0), BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TreeLeaves != 1 {
		t.Fatalf("merged leaves = %d, want 1", res.Stats.TreeLeaves)
	}
	mKey := cube.NewCellKey(s.MLayer(), 0, 0)
	got, ok := res.Exceptions[mKey]
	if !ok || !almostEq(got.Base, 2, 1e-12) || !almostEq(got.Slope, 2, 1e-12) {
		t.Fatalf("merged m-cell = %v", got)
	}
}

// Cross-check all four engines on the degenerate o==m schema.
func TestAlternativesDegenerateSchema(t *testing.T) {
	h, _ := cube.NewFanoutHierarchy("A", 4, 1)
	s, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 1, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{
		{Members: []int32{0}, Measure: regression.ISB{Tb: 0, Te: 9, Slope: 2}},
		{Members: []int32{1}, Measure: regression.ISB{Tb: 0, Te: 9, Slope: 0.1}},
	}
	thr := exception.Global(1)
	mo, err := MOCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	buc, err := BUCCubing(s, inputs, thr, BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrayCubing(s, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullCubing(s, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(buc.OLayer) != len(mo.OLayer) || len(arr.OLayer) != len(mo.OLayer) {
		t.Fatal("o-layer sizes differ on degenerate schema")
	}
	if full.CellCount() != 2 {
		t.Fatalf("full cells = %d, want 2", full.CellCount())
	}
	if len(mo.Exceptions) != 1 || len(buc.Exceptions) != 1 || len(arr.Exceptions) != 1 {
		t.Fatal("exception counts differ on degenerate schema")
	}
}
