package core

import (
	"time"

	"repro/internal/cube"
	"repro/internal/htree"
	"repro/internal/regression"
)

// FullResult is the output of the non-exception-driven baseline: every
// cell of every cuboid between the critical layers, fully materialized.
type FullResult struct {
	Schema  *cube.Schema
	Cuboids map[cube.Cuboid]map[cube.CellKey]regression.ISB
	Stats   Stats
}

// CellCount returns the total number of materialized cells.
func (r *FullResult) CellCount() int64 {
	var n int64
	for _, cells := range r.Cuboids {
		n += int64(len(cells))
	}
	return n
}

// FullCubing fully materializes the regression cube — the
// non-exception-driven computation §7 names as an open algorithm family.
// It exists as the memory baseline Framework 4.1 is designed to beat (see
// BenchmarkAblationExceptionRetention) and as ground truth for tests: its
// cells are exactly the brute-force aggregation of the inputs.
func FullCubing(s *cube.Schema, inputs []Input) (*FullResult, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	start := time.Now()
	tree, err := buildTree(s, htree.CardinalityOrder(s), inputs)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)

	lattice := cube.NewLattice(s)
	res := &FullResult{
		Schema:  s,
		Cuboids: make(map[cube.Cuboid]map[cube.CellKey]regression.ISB, lattice.Size()),
	}
	st := &res.Stats
	st.Algorithm = "full-cubing"
	st.Tuples = len(inputs)
	st.TreeNodes = tree.NodeCount()
	st.TreeLeaves = tree.LeafCount()
	st.BuildTime = build

	cubeStart := time.Now()
	leaves := tree.Leaves()
	leafCells := make([]Cell, len(leaves))
	for i, leaf := range leaves {
		leafCells[i] = Cell{Key: tree.CellKeyOf(leaf), ISB: leaf.Measure}
	}
	for _, c := range lattice.Cuboids() {
		cells := make(map[cube.CellKey]regression.ISB)
		for _, lc := range leafCells {
			key, err := cube.RollUpKey(s, lc.Key, c)
			if err != nil {
				return nil, err
			}
			accumulate(cells, key, lc.ISB)
		}
		res.Cuboids[c] = cells
		st.CuboidsComputed++
		st.CellsComputed += int64(len(cells))
	}
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = st.CellsComputed
	st.BytesRetained = tree.BytesEstimate() + st.CellsRetained*bytesPerCell
	st.PeakBytes = st.BytesRetained
	return res, nil
}
