package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
)

// ErrTooDense is returned when a schema is too large for dense arrays.
var ErrTooDense = errors.New("core: cube too large for array cubing")

// MaxArrayCells bounds the dense m-layer array (multiway cubing is meant
// for small, dense cubes — Zhao/Deshpande/Naughton's regime).
const MaxArrayCells = 1 << 24

// ArrayCubing computes the regression cube with dense multiway-array
// aggregation (the second §7 suggested technique, after [28]): every
// cuboid is a dense array of (base, slope) pairs indexed by member
// coordinates, and each cuboid is aggregated from its smallest already-
// computed finer neighbour in one linear scan — no hash maps on the hot
// path. Empty cells are skipped on output (a dense array cannot
// distinguish "absent" from "all-zero" otherwise, so cells are tracked
// with a presence bitmap).
//
// Output matches MOCubing: all o-layer cells plus every exception cell.
// It fails with ErrTooDense when the m-layer's dense size would exceed
// MaxArrayCells.
func ArrayCubing(s *cube.Schema, inputs []Input, thr exception.Thresholder) (*Result, error) {
	if err := validate(s, inputs); err != nil {
		return nil, err
	}
	lattice := cube.NewLattice(s)

	// Dense sizes per cuboid.
	size := func(c cube.Cuboid) int64 {
		n := int64(1)
		for d := 0; d < c.NumDims(); d++ {
			n *= int64(s.Dims[d].Hierarchy.Cardinality(c.Level(d)))
		}
		return n
	}
	if size(s.MLayer()) > MaxArrayCells {
		return nil, fmt.Errorf("%w: m-layer has %d dense cells (max %d)", ErrTooDense, size(s.MLayer()), MaxArrayCells)
	}

	start := time.Now()
	res := &Result{
		Schema:     s,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
	}
	st := &res.Stats
	st.Algorithm = "array-cubing"
	st.Tuples = len(inputs)

	newPlane := func(c cube.Cuboid) *plane {
		n := size(c)
		p := &plane{
			c:       c,
			card:    make([]int, c.NumDims()),
			base:    make([]float64, n),
			slope:   make([]float64, n),
			present: make([]bool, n),
		}
		for d := 0; d < c.NumDims(); d++ {
			p.card[d] = s.Dims[d].Hierarchy.Cardinality(c.Level(d))
		}
		return p
	}
	idxOf := func(p *plane, members []int32) int {
		idx := 0
		for d, m := range members {
			idx = idx*p.card[d] + int(m)
		}
		return idx
	}

	// Base plane: the m-layer, filled from the inputs.
	mPlane := newPlane(s.MLayer())
	for _, in := range inputs {
		i := idxOf(mPlane, in.Members)
		mPlane.base[i] += in.Measure.Base
		mPlane.slope[i] += in.Measure.Slope
		mPlane.present[i] = true
	}
	interval := inputs[0].Measure
	st.BuildTime = time.Since(start)
	st.TreeLeaves = countPresent(mPlane.present)

	cubeStart := time.Now()
	planes := map[cube.Cuboid]*plane{s.MLayer(): mPlane}
	var liveBytes int64 = size(s.MLayer()) * 17 // 2 float64 + 1 bool per cell
	peak := liveBytes

	// Walk finest-first (reverse lattice order): every cuboid aggregates
	// from its smallest computed finer neighbour — the multiway "minimum
	// memory spanning tree" heuristic.
	cuboids := lattice.Cuboids()
	members := make([]int32, s.NumDims())
	for i := len(cuboids) - 1; i >= 0; i-- {
		c := cuboids[i]
		st.CuboidsComputed++
		if c.Equal(s.MLayer()) {
			st.CellsComputed += int64(st.TreeLeaves)
			emitPlane(s, mPlane, c, thr, res, interval, members)
			continue
		}
		// Pick the smallest computed finer neighbour as the source.
		var src *plane
		var srcSize int64
		for _, child := range lattice.Children(c) {
			p, ok := planes[child]
			if !ok {
				continue
			}
			if n := size(child); src == nil || n < srcSize {
				src, srcSize = p, n
			}
		}
		if src == nil {
			return nil, fmt.Errorf("core: array cubing found no computed child for %v", c)
		}
		dst := newPlane(c)
		liveBytes += size(c) * 17
		if liveBytes > peak {
			peak = liveBytes
		}
		// One linear scan of the source plane.
		srcMembers := make([]int32, s.NumDims())
		for idx := 0; idx < len(src.base); idx++ {
			if !src.present[idx] {
				continue
			}
			decode(src, idx, srcMembers)
			for d := range srcMembers {
				members[d] = cube.Ancestor(s.Dims[d].Hierarchy, src.c.Level(d), c.Level(d), srcMembers[d])
			}
			di := idxOf(dst, members)
			dst.base[di] += src.base[idx]
			dst.slope[di] += src.slope[idx]
			dst.present[di] = true
		}
		planes[c] = dst
		n := int64(countPresent(dst.present))
		st.CellsComputed += n
		if n > st.PeakScratchCells {
			st.PeakScratchCells = n
		}
		emitPlane(s, dst, c, thr, res, interval, members)
		// Free planes no longer needed: a plane is dead once every one of
		// its parents has been computed.
		for child, p := range planes {
			if child.Equal(s.MLayer()) || p == dst {
				continue
			}
			dead := true
			for _, parent := range lattice.Parents(child) {
				if _, done := planes[parent]; !done && lattice.Contains(parent) {
					dead = false
					break
				}
			}
			if dead {
				liveBytes -= size(child) * 17
				delete(planes, child)
			}
		}
	}
	st.CubeTime = time.Since(cubeStart)
	st.CellsRetained = int64(len(res.OLayer) + len(res.Exceptions))
	st.BytesRetained = st.CellsRetained * bytesPerCell
	st.PeakBytes = peak + st.CellsRetained*bytesPerCell
	return res, nil
}

func countPresent(present []bool) int {
	n := 0
	for _, p := range present {
		if p {
			n++
		}
	}
	return n
}

// decode writes the member coordinates of a dense index into dst.
func decode(p *plane, idx int, dst []int32) {
	for d := len(p.card) - 1; d >= 0; d-- {
		dst[d] = int32(idx % p.card[d])
		idx /= p.card[d]
	}
}

// plane is one dense cuboid: (base, slope) arrays indexed by row-major
// member coordinates, with a presence bitmap.
type plane struct {
	c       cube.Cuboid
	card    []int
	base    []float64
	slope   []float64
	present []bool
}

// emitPlane applies the retention rules to one computed dense cuboid.
func emitPlane(s *cube.Schema, p *plane, c cube.Cuboid, thr exception.Thresholder,
	res *Result, interval regression.ISB, scratch []int32) {
	threshold := thr.Threshold(c)
	isO := c.Equal(s.OLayer())
	for idx := 0; idx < len(p.base); idx++ {
		if !p.present[idx] {
			continue
		}
		decode(p, idx, scratch)
		isb := regression.ISB{Tb: interval.Tb, Te: interval.Te, Base: p.base[idx], Slope: p.slope[idx]}
		exceptional := exception.IsException(isb, threshold)
		if !isO && !exceptional {
			continue
		}
		key := cube.CellKey{Cuboid: c}
		copy(key.Members[:], scratch)
		if isO {
			res.OLayer[key] = isb
		}
		if exceptional {
			res.Exceptions[key] = isb
		}
	}
}
