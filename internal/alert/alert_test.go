package alert

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
	"repro/internal/stream"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func testManager(t testing.TB, hold int) (*Manager, *cube.Schema) {
	t.Helper()
	schema := testSchema(t)
	m, err := New(Config{Schema: schema, Warn: 1, Crit: 2, HoldUnits: hold})
	if err != nil {
		t.Fatal(err)
	}
	return m, schema
}

// snap fabricates a unit snapshot carrying the given o-layer and drill
// slopes. Drill cells sit at the m-layer and double as exception entries,
// exactly where the engine puts drill-down supporters.
func snap(schema *cube.Schema, unit int64, ocells map[cube.CellKey]float64, drill map[cube.CellKey]float64) *stream.Snapshot {
	res := &core.Result{
		Schema:     schema,
		OLayer:     map[cube.CellKey]regression.ISB{},
		Exceptions: map[cube.CellKey]regression.ISB{},
	}
	for k, s := range ocells {
		res.OLayer[k] = regression.ISB{Slope: s}
		if exception.IsException(res.OLayer[k], 1) {
			res.Exceptions[k] = res.OLayer[k]
		}
	}
	for k, s := range drill {
		res.Exceptions[k] = regression.ISB{Slope: s}
	}
	if len(ocells) == 0 && len(drill) == 0 {
		res = nil
	}
	return &stream.Snapshot{Unit: unit, UnitsDone: unit + 1, Result: res}
}

func oKey(schema *cube.Schema, a, b int32) cube.CellKey {
	return cube.NewCellKey(schema.OLayer(), a, b)
}

func mKey(schema *cube.Schema, a, b int32) cube.CellKey {
	return cube.NewCellKey(schema.MLayer(), a, b)
}

// seqOf compresses events for table assertions.
type evRow struct {
	Unit  int64
	Topic string
	Cell  cube.CellKey
	From  Level
	To    Level
}

func rows(evs []Event) []evRow {
	out := make([]evRow, len(evs))
	for i, e := range evs {
		out[i] = evRow{e.Unit, e.Topic, e.Cell, e.From, e.To}
	}
	return out
}

func TestLifecycleEscalationAndDedup(t *testing.T) {
	m, schema := testManager(t, 2)
	o := oKey(schema, 0, 0)

	m.Observe(snap(schema, 0, map[cube.CellKey]float64{o: 0.5}, nil))  // ok
	m.Observe(snap(schema, 1, map[cube.CellKey]float64{o: 1.5}, nil))  // ok->warn
	m.Observe(snap(schema, 2, map[cube.CellKey]float64{o: 1.7}, nil))  // warn (dedup)
	m.Observe(snap(schema, 3, map[cube.CellKey]float64{o: -2.5}, nil)) // warn->crit (|slope|)
	m.Observe(snap(schema, 4, map[cube.CellKey]float64{o: 2.5}, nil))  // crit (dedup)

	want := []evRow{
		{1, TopicOLayer, o, LevelOK, LevelWarn},
		{3, TopicOLayer, o, LevelWarn, LevelCrit},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
}

func TestLifecycleFlapSuppression(t *testing.T) {
	m, schema := testManager(t, 2)
	o := oKey(schema, 0, 0)

	feed := []float64{2.5, 1.5, 2.5, 1.5, 0.5, 0.2, 0.1}
	// unit 0: ok->crit fires. unit 1: warn, hold 1. unit 2: crit again —
	// hold resets with no event (flap suppressed). unit 3: warn, hold 1.
	// unit 4: ok, hold 2 -> de-escalation fires crit->ok (the level the
	// hold expired at). units 5,6: ok, state dropped, silence.
	for u, s := range feed {
		m.Observe(snap(schema, int64(u), map[cube.CellKey]float64{o: s}, nil))
	}
	want := []evRow{
		{0, TopicOLayer, o, LevelOK, LevelCrit},
		{4, TopicOLayer, o, LevelCrit, LevelOK},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
	if n := len(m.states); n != 0 {
		t.Fatalf("%d states tracked after full recovery", n)
	}
}

func TestLifecycleVanishedCellRecovers(t *testing.T) {
	m, schema := testManager(t, 1)
	o := oKey(schema, 1, 1)

	m.Observe(snap(schema, 0, map[cube.CellKey]float64{o: 3}, nil)) // ok->crit
	m.Observe(snap(schema, 1, nil, nil))                            // empty unit: hold 1 of 1 -> crit->ok
	want := []evRow{
		{0, TopicOLayer, o, LevelOK, LevelCrit},
		{1, TopicOLayer, o, LevelCrit, LevelOK},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
}

func TestLifecycleAncestorInhibition(t *testing.T) {
	m, schema := testManager(t, 1)
	o := oKey(schema, 0, 0)   // o-cell (0,0) at level 1
	d := mKey(schema, 1, 1)   // m-cell under it (1/2=0, 1/2=0)
	far := mKey(schema, 2, 2) // m-cell under o-cell (1,1) — not inhibited

	// Unit 0: ancestor fires crit; both drill cells cross warn. The
	// descendant under the firing ancestor is inhibited; the far one is
	// not.
	m.Observe(snap(schema, 0, map[cube.CellKey]float64{o: 3},
		map[cube.CellKey]float64{d: 1.5, far: 1.5}))
	// Unit 1: ancestor recovers (hold 1); d still warm — with the
	// inhibition lifted it now escalates from its frozen OK state.
	m.Observe(snap(schema, 1, map[cube.CellKey]float64{o: 0.1},
		map[cube.CellKey]float64{d: 1.5, far: 1.5}))

	want := []evRow{
		{0, TopicOLayer, o, LevelOK, LevelCrit},
		{0, TopicDrill, far, LevelOK, LevelWarn},
		{1, TopicOLayer, o, LevelCrit, LevelOK},
		{1, TopicDrill, d, LevelOK, LevelWarn},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
}

func TestLifecycleInhibitionFreezesNoStaleRecovery(t *testing.T) {
	m, schema := testManager(t, 1)
	o := oKey(schema, 0, 0)
	d := mKey(schema, 0, 0)

	// Drill cell fires first, alone.
	m.Observe(snap(schema, 0, map[cube.CellKey]float64{o: 0.1},
		map[cube.CellKey]float64{d: 1.5}))
	// Ancestor fires; drill cell drops to ok underneath it. Frozen: no
	// recovery event while inhibited, however many units pass.
	m.Observe(snap(schema, 1, map[cube.CellKey]float64{o: 3}, nil))
	m.Observe(snap(schema, 2, map[cube.CellKey]float64{o: 3}, nil))
	// Ancestor clears; the drill cell's recovery finally emits.
	m.Observe(snap(schema, 3, map[cube.CellKey]float64{o: 0.1}, nil))
	m.Observe(snap(schema, 4, map[cube.CellKey]float64{o: 0.1}, nil))

	want := []evRow{
		{0, TopicDrill, d, LevelOK, LevelWarn},
		{1, TopicOLayer, o, LevelOK, LevelCrit},
		{3, TopicOLayer, o, LevelCrit, LevelOK},
		{3, TopicDrill, d, LevelWarn, LevelOK},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
}

func TestEventsRingCaps(t *testing.T) {
	schema := testSchema(t)
	m, err := New(Config{Schema: schema, Warn: 1, Crit: 2, HoldUnits: 1, Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := oKey(schema, 0, 0)
	for u := int64(0); u < 10; u++ {
		s := 0.0
		if u%2 == 0 {
			s = 3.0
		}
		m.Observe(snap(schema, u, map[cube.CellKey]float64{o: s}, nil))
	}
	evs := m.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not contiguous: %+v", evs)
		}
	}
	if got := m.Events(2); len(got) != 2 || got[1].Seq != evs[3].Seq {
		t.Fatalf("Events(2) = %+v", got)
	}
}

// TestDeterministicAcrossShardCounts drives real engines at 1, 4, and 7
// shards from the bus and demands bit-identical event sequences — the
// acceptance criterion that makes the alert pipeline a pure function of
// the stream.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	schema := testSchema(t)
	cfg := stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}
	run := func(shards int) []Event {
		m, err := New(Config{Schema: schema, Warn: 1, Crit: 4, HoldUnits: 2})
		if err != nil {
			t.Fatal(err)
		}
		var sub *stream.Subscription
		var ingest func([]int32, int64, float64) ([]*stream.UnitResult, error)
		var flush func() (*stream.UnitResult, error)
		if shards == 1 {
			eng, err := stream.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sub = eng.Subscribe(256)
			ingest, flush = eng.Ingest, eng.Flush
		} else {
			eng, err := stream.NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			sub = eng.Subscribe(256)
			ingest, flush = eng.Ingest, eng.Flush
		}
		defer sub.Close()
		// Slopes ramp with the tick so cells cross warn, then crit, then
		// fall back — several full lifecycles across 10 units.
		for tick := int64(0); tick < 40; tick++ {
			phase := float64(1)
			if (tick/8)%2 == 1 {
				phase = -0.2 // flat units: slopes collapse toward ok
			}
			for a := int32(0); a < 4; a++ {
				for b := int32(0); b < 4; b++ {
					v := phase * float64(tick) * float64(a+2*b+1) / 4
					if _, err := ingest([]int32{a, b}, tick, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := flush(); err != nil {
			t.Fatal(err)
		}
		for {
			select {
			case s := <-sub.C():
				m.Observe(s)
				continue
			default:
			}
			break
		}
		return m.Events(0)
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("stream produced no alert events; thresholds too high for the fixture")
	}
	for _, shards := range []int{4, 7} {
		got := run(shards)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("%d shards emitted %+v\nwant (1 shard) %+v", shards, rows(got), rows(base))
		}
	}
}

func TestLogHandlerAndTopicRouting(t *testing.T) {
	m, schema := testManager(t, 1)
	var buf strings.Builder
	m.Handle(&LogHandler{Schema: schema, W: &buf}, TopicOLayer)

	o := oKey(schema, 0, 0)
	d := mKey(schema, 0, 1)
	// The drill event must not reach the olayer-only handler. Keep the
	// o-cell quiet so the drill cell is uninhibited.
	m.Observe(snap(schema, 0, map[cube.CellKey]float64{o: 3}, nil))
	m.Observe(snap(schema, 1, map[cube.CellKey]float64{o: 0.1},
		map[cube.CellKey]float64{d: 1.5}))
	m.Close()

	out := buf.String()
	if !strings.Contains(out, "topic=olayer") || !strings.Contains(out, "ok->crit") {
		t.Fatalf("log output missing o-layer event:\n%s", out)
	}
	if strings.Contains(out, "topic=drill") {
		t.Fatalf("olayer-routed handler saw a drill event:\n%s", out)
	}
}

func TestWebhookRetriesThenDelivers(t *testing.T) {
	var calls atomic.Int64
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		buf := make([]byte, 4096)
		n, _ := r.Body.Read(buf)
		got.Store(string(buf[:n]))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	schema := testSchema(t)
	m, err := New(Config{Schema: schema, Warn: 1, Crit: 2, HoldUnits: 1, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.Handle(&WebhookHandler{Schema: schema, URL: srv.URL})
	m.Observe(snap(schema, 0, map[cube.CellKey]float64{oKey(schema, 0, 0): 3}, nil))
	m.Close() // drains the queue, retries included

	if n := calls.Load(); n != 3 {
		t.Fatalf("webhook called %d times, want 3 (two failures + success)", n)
	}
	st := m.Stats()
	if st.HandlerRetries != 2 {
		t.Fatalf("counted %d retries, want 2", st.HandlerRetries)
	}
	body, _ := got.Load().(string)
	for _, want := range []string{`"topic":"olayer"`, `"to":"crit"`, `"from":"ok"`, `"unit":0`} {
		if !strings.Contains(body, want) {
			t.Fatalf("webhook body %q missing %q", body, want)
		}
	}
	if st.Events[LevelCrit][0] != 1 {
		t.Fatalf("crit/olayer counter = %d, want 1", st.Events[LevelCrit][0])
	}
}

// TestSlowWebhookNeverBlocksObserve wedges the webhook endpoint and checks
// Observe completes instantly anyway, shedding into the drop counter.
func TestSlowWebhookNeverBlocksObserve(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	schema := testSchema(t)
	m, err := New(Config{Schema: schema, Warn: 1, Crit: 2, HoldUnits: 1, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	m.Handle(&WebhookHandler{Schema: schema, URL: srv.URL, Client: &http.Client{Timeout: time.Minute}})

	o := oKey(schema, 0, 0)
	start := time.Now()
	// Alternate crit/ok so every unit emits; far more events than the
	// queue holds.
	for u := int64(0); u < 2*handlerQueueDepth; u++ {
		s := 0.0
		if u%2 == 0 {
			s = 3.0
		}
		m.Observe(snap(schema, u, map[cube.CellKey]float64{o: s}, nil))
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("observe loop took %v against a wedged webhook", d)
	}
	if m.Stats().HandlerDrops == 0 {
		t.Fatal("wedged handler never shed an event")
	}
}

func TestRunConsumesSubscription(t *testing.T) {
	schema := testSchema(t)
	cfg := stream.Config{Schema: schema, TicksPerUnit: 4,
		Threshold: exception.Global(0.5), PublishSnapshots: true}
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Schema: schema, Warn: 1, Crit: 2, HoldUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(64)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx, sub) }()

	for tick := int64(0); tick < 12; tick++ {
		if _, err := eng.Ingest([]int32{0, 0}, tick, float64(tick)*5); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for len(m.Events(0)) == 0 {
		select {
		case <-deadline:
			t.Fatal("Run never observed the published snapshots")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	m.Close()
}
