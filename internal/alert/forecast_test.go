package alert

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
	"repro/internal/stream"
)

// fsnap fabricates a unit snapshot whose History holds exact per-unit
// fits of a linear ramp z = slope·t at 2 ticks per unit, from unit 0
// through `unit` — the shape the engine publishes for a steadily rising
// cell. A zero-length slope map drops History entirely (vanished cell).
func fsnap(schema *cube.Schema, unit int64, slopes map[cube.CellKey]float64) *stream.Snapshot {
	s := &stream.Snapshot{Unit: unit, UnitsDone: unit + 1}
	if len(slopes) > 0 {
		s.History = map[cube.CellKey][]stream.HistoryPoint{}
		for k, slope := range slopes {
			pts := make([]stream.HistoryPoint, unit+1)
			for u := int64(0); u <= unit; u++ {
				pts[u] = stream.HistoryPoint{
					Unit: u,
					ISB:  regression.ISB{Tb: 2 * u, Te: 2*u + 1, Base: 0, Slope: slope},
				}
			}
			s.History[k] = pts
		}
	}
	return s
}

func forecastManager(t testing.TB, budget int64, threshold float64, window int) (*Manager, *cube.Schema) {
	t.Helper()
	schema := testSchema(t)
	m, err := New(Config{
		Schema: schema, Warn: 1, Crit: 2, HoldUnits: 2,
		ForecastBudget: budget, ForecastThreshold: threshold, ForecastWindow: window,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, schema
}

// TestForecastLifecycle walks a cell ramping toward the threshold: at
// slope 10 toward 1000, the time-to-threshold at unit u is 99−2u ticks,
// so a 5-tick budget goes warn (≤10 ticks out) at unit 45 and crit
// (≤5 ticks) at unit 47, each exactly once.
func TestForecastLifecycle(t *testing.T) {
	m, schema := forecastManager(t, 5, 1000, 0)
	o := oKey(schema, 0, 0)
	// Stop at unit 49 (ttt = 1 tick): unit 50 would cross the threshold,
	// and a crossed forecast reads as OK — post-breach is the slope
	// topics' signal.
	for u := int64(40); u <= 49; u++ {
		m.Observe(fsnap(schema, u, map[cube.CellKey]float64{o: 10}))
	}
	want := []evRow{
		{45, TopicForecast, o, LevelOK, LevelWarn},
		{47, TopicForecast, o, LevelWarn, LevelCrit},
	}
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
	st := m.Stats()
	if st.Events[LevelWarn][2] != 1 || st.Events[LevelCrit][2] != 1 {
		t.Fatalf("forecast counters = %+v", st.Events)
	}
	if st.Events[LevelWarn][0] != 0 || st.Events[LevelCrit][0] != 0 {
		t.Fatalf("forecast events leaked into the olayer column: %+v", st.Events)
	}

	// The cell vanishes from the stream: tracked forecast state observes
	// OK, and the de-escalation fires after HoldUnits, like the slope
	// topics.
	m.Observe(fsnap(schema, 50, nil))
	m.Observe(fsnap(schema, 51, nil))
	want = append(want, evRow{51, TopicForecast, o, LevelCrit, LevelOK})
	if got := rows(m.Events(0)); !reflect.DeepEqual(got, want) {
		t.Fatalf("after vanish: events %+v, want %+v", got, want)
	}
}

// TestForecastAwayFromThresholdStaysQuiet: a falling trend never crosses
// an above-current threshold, and a flat one never crosses anything.
func TestForecastAwayFromThresholdStaysQuiet(t *testing.T) {
	m, schema := forecastManager(t, 5, 1000, 0)
	o := oKey(schema, 0, 0)
	for u := int64(0); u <= 20; u++ {
		m.Observe(fsnap(schema, u, map[cube.CellKey]float64{o: -10}))
	}
	for u := int64(21); u <= 30; u++ {
		m.Observe(fsnap(schema, u, map[cube.CellKey]float64{o: 0}))
	}
	if evs := m.Events(0); len(evs) != 0 {
		t.Fatalf("non-crossing trends emitted %+v", rows(evs))
	}
}

// TestForecastWindowLimitsModel: with a trailing window configured, only
// the recent slope drives the forecast — a cell that just stopped rising
// de-escalates once the window is all-plateau even though its full
// history still trends up.
func TestForecastWindowLimitsModel(t *testing.T) {
	m, schema := forecastManager(t, 5, 1000, 3)
	o := oKey(schema, 0, 0)
	// Ramp deep into crit territory (unit 48: ttt = 99-96 = 3 ≤ 5).
	for u := int64(40); u <= 48; u++ {
		m.Observe(fsnap(schema, u, map[cube.CellKey]float64{o: 10}))
	}
	if evs := m.Events(0); len(evs) == 0 || evs[len(evs)-1].To != LevelCrit {
		t.Fatalf("ramp never reached forecast-crit: %+v", rows(m.Events(0)))
	}
	// Plateau: per-unit slopes drop to 0. Once the 3-unit window holds
	// only plateau units the model's slope is 0 → never crosses → OK
	// (after the 2-unit hold).
	plateau := fsnap(schema, 48, map[cube.CellKey]float64{o: 10})
	for u := int64(49); u <= 54; u++ {
		pts := plateau.History[o]
		pts = append(pts[:len(pts):len(pts)], stream.HistoryPoint{
			Unit: u, ISB: regression.ISB{Tb: 2 * u, Te: 2*u + 1, Base: 970, Slope: 0},
		})
		snap := &stream.Snapshot{Unit: u, UnitsDone: u + 1, History: map[cube.CellKey][]stream.HistoryPoint{o: pts}}
		plateau = snap
		m.Observe(snap)
	}
	evs := m.Events(0)
	last := evs[len(evs)-1]
	if last.Topic != TopicForecast || last.To != LevelOK {
		t.Fatalf("plateau never de-escalated the forecast: %+v", rows(evs))
	}
}

// TestForecastAndSlopeTopicsIndependent: the same o-cell can be at
// forecast-crit and slope-warn simultaneously — the two topics keep
// separate lifecycle states and both emit.
func TestForecastAndSlopeTopicsIndependent(t *testing.T) {
	m, schema := forecastManager(t, 5, 1000, 0)
	o := oKey(schema, 0, 0)
	for u := int64(46); u <= 48; u++ {
		s := fsnap(schema, u, map[cube.CellKey]float64{o: 10})
		// The slope topics read Result; 1.5 sits in the warn band.
		s.Result = snap(schema, u, map[cube.CellKey]float64{o: 1.5}, nil).Result
		m.Observe(s)
	}
	got := rows(m.Events(0))
	want := []evRow{
		{46, TopicOLayer, o, LevelOK, LevelWarn},
		{46, TopicForecast, o, LevelOK, LevelWarn},
		{47, TopicForecast, o, LevelWarn, LevelCrit},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events %+v, want %+v", got, want)
	}
}

// TestForecastConfigValidation: a non-finite threshold is rejected when
// the forecast topic is enabled, tolerated when it is off.
func TestForecastConfigValidation(t *testing.T) {
	schema := testSchema(t)
	base := Config{Schema: schema, Warn: 1, Crit: 2}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg := base
		cfg.ForecastBudget, cfg.ForecastThreshold = 10, bad
		if _, err := New(cfg); err == nil {
			t.Fatalf("New accepted forecast threshold %g", bad)
		}
	}
	cfg := base
	cfg.ForecastThreshold = math.NaN() // budget 0: forecast off, field ignored
	if _, err := New(cfg); err != nil {
		t.Fatalf("New rejected disabled forecast config: %v", err)
	}
}

// TestForecastDeterministicAcrossShardCounts drives real engines at
// 1/4/7 shards through a ramp that crosses the forecast budget and
// asserts the full event sequence — slope and forecast topics — is
// bitwise identical, inheriting the snapshot determinism property.
func TestForecastDeterministicAcrossShardCounts(t *testing.T) {
	schema := testSchema(t)
	cfg := stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}
	run := func(shards int) []Event {
		m, err := New(Config{
			Schema: schema, Warn: 5, Crit: 40, HoldUnits: 2,
			ForecastBudget: 6, ForecastThreshold: 2000, ForecastWindow: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := stream.NewShardedEngine(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		sub := eng.Subscribe(256)
		defer sub.Close()
		for tick := int64(0); tick < 48; tick++ {
			for a := int32(0); a < 4; a++ {
				for b := int32(0); b < 4; b++ {
					v := float64(tick) * float64(a+2*b+1)
					if _, err := eng.Ingest([]int32{a, b}, tick, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		for {
			select {
			case s := <-sub.C():
				m.Observe(s)
				continue
			default:
			}
			break
		}
		return m.Events(0)
	}

	base := run(1)
	sawForecast := false
	for _, e := range base {
		if e.Topic == TopicForecast {
			sawForecast = true
			break
		}
	}
	if !sawForecast {
		t.Fatalf("fixture never fired a forecast event: %+v", rows(base))
	}
	for _, shards := range []int{4, 7} {
		if got := run(shards); !reflect.DeepEqual(got, base) {
			t.Fatalf("%d shards emitted %+v\nwant (1 shard) %+v", shards, rows(got), rows(base))
		}
	}
}
