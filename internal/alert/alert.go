// Package alert turns the engine's per-unit snapshot stream into a
// stateful alert lifecycle: it diffs consecutive unit snapshots into
// level-transition events (OK→warn→crit and back), deduplicates per cell,
// suppresses flapping de-escalations, inhibits descendants of a firing
// o-layer ancestor, and routes the surviving events through topics to
// pluggable handlers (log sink, webhook).
//
// The package is a pure bus consumer: it reads the same immutable
// *stream.Snapshot values the query layer serves, never touches engine
// internals, and its event sequence is a deterministic function of the
// snapshot sequence — the same stream yields the same events at any shard
// count, because the bus publishes an identical snapshot per closed unit
// either way.
package alert

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cube"
	"repro/internal/insight"
	"repro/internal/stream"
)

// Level is a cell's alert severity, derived from |regression slope|
// against the Warn/Crit thresholds.
type Level int

const (
	LevelOK Level = iota
	LevelWarn
	LevelCrit
)

// String renders the level as its metric/wire label.
func (l Level) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelCrit:
		return "crit"
	default:
		return "ok"
	}
}

// Topics partition events by the alerting layer: o-layer cells are the
// operational alerting surface; cells below it (exception drill-down
// supporters) are diagnostic; forecast events are predictive — a cell's
// extrapolated time-to-threshold fell inside the configured budget
// before the measured slope tripped anything.
const (
	TopicOLayer   = "olayer"
	TopicDrill    = "drill"
	TopicForecast = "forecast"
)

// Topics lists every topic in metric-rendering order.
var Topics = []string{TopicOLayer, TopicDrill, TopicForecast}

// Levels lists every level in metric-rendering order.
var Levels = []Level{LevelOK, LevelWarn, LevelCrit}

// Event is one level transition of one cell, emitted when the lifecycle
// state machine changes a cell's reported level. Seq is assigned in
// emission order and is strictly increasing for the life of the Manager.
type Event struct {
	Seq   int64
	Unit  int64
	Topic string
	Cell  cube.CellKey
	From  Level
	To    Level
	// Slope is the cell's regression slope in the unit that fired the
	// transition (0 when the cell vanished from the stream).
	Slope float64
}

// EventJSON is the frozen wire form of an Event, shared by the query API
// (GET /v1/alerts/events) and the webhook handler's POST body. It lives
// here — not in internal/query — so the webhook payload and the query
// response are one type without an alert→query import (query wraps this
// type going the other way).
type EventJSON struct {
	Seq     int64   `json:"seq"`
	Unit    int64   `json:"unit"`
	Topic   string  `json:"topic"`
	Levels  []int   `json:"levels"`
	Members []int32 `json:"members"`
	Cuboid  string  `json:"cuboid"`
	Cell    string  `json:"cell"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Slope   float64 `json:"slope"`
}

// JSON renders the event against the schema that produced it.
func (e Event) JSON(s *cube.Schema) EventJSON {
	nd := e.Cell.Cuboid.NumDims()
	levels := make([]int, nd)
	members := make([]int32, nd)
	for d := 0; d < nd; d++ {
		levels[d] = e.Cell.Cuboid.Level(d)
		members[d] = e.Cell.Members[d]
	}
	return EventJSON{
		Seq:     e.Seq,
		Unit:    e.Unit,
		Topic:   e.Topic,
		Levels:  levels,
		Members: members,
		Cuboid:  e.Cell.Cuboid.Describe(s),
		Cell:    e.Cell.Describe(s),
		From:    e.From.String(),
		To:      e.To.String(),
		Slope:   e.Slope,
	}
}

// Config parameterizes the lifecycle.
type Config struct {
	// Schema is the cube schema snapshots were computed against; the
	// ancestor index for inhibition is built from it.
	Schema *cube.Schema
	// Warn and Crit are |slope| thresholds: ≥ Crit is critical, ≥ Warn is
	// warning. Requires 0 < Warn ≤ Crit.
	Warn, Crit float64
	// HoldUnits is the flap suppressor: a de-escalation fires only after
	// the cell holds strictly below its reported level for this many
	// consecutive units (escalations always fire immediately). Values < 1
	// default to 1 — de-escalate on the first lower unit.
	HoldUnits int
	// Ring caps the recent-events buffer served by Events (default 256).
	Ring int
	// MaxRetries caps how often a failed handler delivery is retried with
	// exponential backoff (default 3; negative disables retries).
	MaxRetries int
	// ForecastBudget, when > 0, enables the predictive forecast topic: an
	// o-cell whose extrapolated time until ForecastThreshold falls to at
	// most this many ticks goes critical (within twice the budget: warn).
	// Forecast events run the same dedup/hold lifecycle as the slope
	// topics but keep their own per-cell states, so a cell can be at
	// forecast-crit and slope-OK simultaneously.
	ForecastBudget int64
	// ForecastThreshold is the measure value the forecast extrapolates
	// toward. Must be finite when ForecastBudget is set.
	ForecastThreshold float64
	// ForecastWindow caps how many trailing history units feed the
	// forecast model; 0 uses every retained unit.
	ForecastWindow int
}

// cellState is the per-cell lifecycle state. Cells at reported OK with no
// hold in progress are not tracked at all, so the map stays proportional
// to the firing set.
type cellState struct {
	reported Level
	// hold counts consecutive units the cell has spent strictly below its
	// reported level; reaching HoldUnits fires the de-escalation.
	hold int
}

// Manager consumes unit snapshots and owns the lifecycle state, the
// recent-events ring, the per-topic handler fan-out, and the counters
// behind the /metrics alert families.
type Manager struct {
	cfg    Config
	olayer cube.Cuboid
	anc    *cube.AncestorIndex

	mu     sync.Mutex
	states map[cube.CellKey]*cellState
	// fstates is the forecast topic's own lifecycle state: o-cell keys
	// collide with the slope topics' states otherwise.
	fstates map[cube.CellKey]*cellState
	ring    []Event
	seq     int64
	// events counts emitted events by [level][topic index].
	events [3][3]int64

	handlers []*runner
	wg       sync.WaitGroup
	closed   bool

	// scratch buffers reused across Observe calls.
	ocells, dcells, fcells []candidate
}

// candidate is one cell observed (or remembered) in the current unit,
// with its raw level already derived (from the slope thresholds, or from
// the forecast's time-to-threshold).
type candidate struct {
	key   cube.CellKey
	slope float64
	level Level
}

// New validates the config and builds a manager with no handlers; attach
// them with Handle before the first Observe.
func New(cfg Config) (*Manager, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("alert: nil schema")
	}
	if !(cfg.Warn > 0) || cfg.Crit < cfg.Warn {
		return nil, fmt.Errorf("alert: thresholds need 0 < warn (%g) <= crit (%g)", cfg.Warn, cfg.Crit)
	}
	if cfg.HoldUnits < 1 {
		cfg.HoldUnits = 1
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.ForecastBudget > 0 && (math.IsNaN(cfg.ForecastThreshold) || math.IsInf(cfg.ForecastThreshold, 0)) {
		return nil, fmt.Errorf("alert: forecast threshold %g is not finite", cfg.ForecastThreshold)
	}
	if cfg.ForecastWindow < 0 {
		cfg.ForecastWindow = 0
	}
	return &Manager{
		cfg:     cfg,
		olayer:  cfg.Schema.OLayer(),
		anc:     cube.NewAncestorIndex(cfg.Schema),
		states:  make(map[cube.CellKey]*cellState),
		fstates: make(map[cube.CellKey]*cellState),
	}, nil
}

// levelOf maps a slope to its alert level.
func (m *Manager) levelOf(slope float64) Level {
	a := math.Abs(slope)
	switch {
	case a >= m.cfg.Crit:
		return LevelCrit
	case a >= m.cfg.Warn:
		return LevelWarn
	default:
		return LevelOK
	}
}

// topicIndex maps a topic to its counter column.
func topicIndex(topic string) int {
	switch topic {
	case TopicDrill:
		return 1
	case TopicForecast:
		return 2
	default:
		return 0
	}
}

// Observe feeds one unit snapshot through the lifecycle. Call it with
// consecutive snapshots from one engine (Run does); it is safe against
// concurrent Events/Stats readers but must not run concurrently with
// itself.
//
// Cell processing order is fully deterministic — o-layer cells in
// cube.CompareKeys order, then drill cells likewise — so the emitted
// event sequence is a pure function of the snapshot sequence.
func (m *Manager) Observe(snap *stream.Snapshot) {
	if snap == nil {
		return
	}
	m.mu.Lock()
	// Collect this unit's candidates: every cell with data, plus every
	// tracked cell that vanished (observed at OK so it can recover).
	m.ocells, m.dcells = m.ocells[:0], m.dcells[:0]
	seen := make(map[cube.CellKey]bool)
	add := func(k cube.CellKey, slope float64, present bool) {
		if seen[k] {
			return
		}
		seen[k] = true
		c := candidate{key: k, slope: slope}
		if present {
			c.level = m.levelOf(slope)
		}
		if k.Cuboid.Equal(m.olayer) {
			m.ocells = append(m.ocells, c)
		} else {
			m.dcells = append(m.dcells, c)
		}
	}
	if snap.Result != nil {
		for k, isb := range snap.Result.OLayer {
			add(k, isb.Slope, true)
		}
		for k, isb := range snap.Result.Exceptions {
			add(k, isb.Slope, true)
		}
	}
	for k := range m.states {
		add(k, 0, false)
	}
	sort.Slice(m.ocells, func(i, j int) bool { return cube.CompareKeys(m.ocells[i].key, m.ocells[j].key) < 0 })
	sort.Slice(m.dcells, func(i, j int) bool { return cube.CompareKeys(m.dcells[i].key, m.dcells[j].key) < 0 })

	// O-layer first: each o-cell's post-transition level is what inhibits
	// its descendants in the same unit.
	firing := make(map[cube.CellKey]bool)
	var emitted []Event
	for _, c := range m.ocells {
		ev, ok := m.transition(m.states, c, TopicOLayer, snap.Unit, false)
		if ok {
			emitted = append(emitted, ev)
		}
		if st := m.states[c.key]; st != nil && st.reported >= LevelWarn {
			firing[c.key] = true
		}
	}
	for _, c := range m.dcells {
		inhibited := false
		// Inhibition: a drill cell below a firing o-layer ancestor is
		// redundant with the ancestor's own alert. The rolled-up key is
		// exact because every cell between the critical layers aggregates
		// into exactly one o-cell.
		if m.olayer.DominatedBy(c.key.Cuboid) {
			inhibited = firing[m.anc.RollUp(c.key, m.olayer)]
		}
		if ev, ok := m.transition(m.states, c, TopicDrill, snap.Unit, inhibited); ok {
			emitted = append(emitted, ev)
		}
	}
	emitted = m.observeForecast(snap, emitted)
	handlers := m.handlers
	m.mu.Unlock()

	// Fan out after dropping the lock: handler queues are their own
	// bounded buffers and never make Observe wait.
	for _, ev := range emitted {
		for _, r := range handlers {
			r.offer(ev)
		}
	}
}

// transition advances one cell's state machine and returns the emitted
// event, if any. Caller holds m.mu.
//
// Rules: escalations fire immediately; de-escalations fire only after
// HoldUnits consecutive units strictly below the reported level, to the
// level observed when the hold expires; a unit back at (or above) the
// reported level resets the hold. An inhibited cell is frozen — no event
// and no state change — so it never emits a stale recovery once the
// ancestor clears.
func (m *Manager) transition(states map[cube.CellKey]*cellState, c candidate, topic string, unit int64, inhibited bool) (Event, bool) {
	st := states[c.key]
	if st == nil {
		st = &cellState{}
	}
	raw := c.level
	var ev Event
	fired := false
	switch {
	case inhibited:
		// frozen
	case raw > st.reported:
		ev = m.emit(unit, topic, c, st.reported, raw)
		st.reported, st.hold, fired = raw, 0, true
	case raw < st.reported:
		if st.hold++; st.hold >= m.cfg.HoldUnits {
			ev = m.emit(unit, topic, c, st.reported, raw)
			st.reported, st.hold, fired = raw, 0, true
		}
	default:
		st.hold = 0
	}
	if st.reported == LevelOK && st.hold == 0 {
		delete(states, c.key)
	} else {
		states[c.key] = st
	}
	return ev, fired
}

// observeForecast runs the predictive pass of one unit: every o-cell
// with history (plus every tracked forecast state) is extrapolated, its
// time-to-threshold mapped to a level, and the result fed through the
// same transition machinery on the forecast topic's own state map.
// Caller holds m.mu. No-op unless ForecastBudget is configured.
func (m *Manager) observeForecast(snap *stream.Snapshot, emitted []Event) []Event {
	if m.cfg.ForecastBudget <= 0 {
		return emitted
	}
	m.fcells = m.fcells[:0]
	seen := make(map[cube.CellKey]bool)
	for k, pts := range snap.History {
		seen[k] = true
		level, slope := m.forecastLevel(pts)
		m.fcells = append(m.fcells, candidate{key: k, slope: slope, level: level})
	}
	for k := range m.fstates {
		if !seen[k] {
			m.fcells = append(m.fcells, candidate{key: k})
		}
	}
	sort.Slice(m.fcells, func(i, j int) bool { return cube.CompareKeys(m.fcells[i].key, m.fcells[j].key) < 0 })
	for _, c := range m.fcells {
		if ev, ok := m.transition(m.fstates, c, TopicForecast, snap.Unit, false); ok {
			emitted = append(emitted, ev)
		}
	}
	return emitted
}

// forecastLevel extrapolates one cell's history and maps its time until
// the configured threshold to an alert level: within the budget is
// critical, within twice the budget warning. Unusable history (gaps, no
// points) and never-crossing trends are OK — the slope topics own the
// post-breach signal.
func (m *Manager) forecastLevel(pts []stream.HistoryPoint) (Level, float64) {
	if w := m.cfg.ForecastWindow; w > 0 && len(pts) > w {
		pts = pts[len(pts)-w:]
	}
	f, err := insight.ForecastHistory(pts, m.cfg.ForecastBudget, &m.cfg.ForecastThreshold)
	if err != nil {
		return LevelOK, 0
	}
	if f.TicksToThreshold == nil {
		return LevelOK, f.Model.Slope
	}
	switch ttt := *f.TicksToThreshold; {
	case ttt <= float64(m.cfg.ForecastBudget):
		return LevelCrit, f.Model.Slope
	case ttt <= 2*float64(m.cfg.ForecastBudget):
		return LevelWarn, f.Model.Slope
	default:
		return LevelOK, f.Model.Slope
	}
}

// emit appends an event to the ring and counts it. Caller holds m.mu.
func (m *Manager) emit(unit int64, topic string, c candidate, from, to Level) Event {
	m.seq++
	ev := Event{Seq: m.seq, Unit: unit, Topic: topic, Cell: c.key, From: from, To: to, Slope: c.slope}
	if len(m.ring) >= m.cfg.Ring {
		n := copy(m.ring, m.ring[len(m.ring)-m.cfg.Ring+1:])
		m.ring = m.ring[:n]
	}
	m.ring = append(m.ring, ev)
	m.events[to][topicIndex(topic)]++
	return ev
}

// Run consumes the subscription until ctx is done. It is the glue between
// the snapshot bus and the lifecycle: one goroutine, one Observe per
// delivered snapshot. The subscription is left for the caller to Close.
func (m *Manager) Run(ctx context.Context, sub *stream.Subscription) {
	for {
		select {
		case <-ctx.Done():
			return
		case s := <-sub.C():
			m.Observe(s)
		}
	}
}

// Events returns up to k recent events, oldest first (k <= 0 means all
// buffered). Safe from any goroutine.
func (m *Manager) Events(k int) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.ring)
	if k > 0 && k < n {
		n = k
	}
	out := make([]Event, n)
	copy(out, m.ring[len(m.ring)-n:])
	return out
}

// Stats is a point-in-time copy of the manager's counters.
type Stats struct {
	// Events counts emitted events by [level][topic], indexed per Levels
	// and Topics.
	Events [3][3]int64
	// HandlerRetries counts failed deliveries that were retried.
	HandlerRetries int64
	// HandlerDrops counts events shed from full handler queues.
	HandlerDrops int64
}

// Stats snapshots the counters. Safe from any goroutine.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{Events: m.events}
	handlers := m.handlers
	m.mu.Unlock()
	for _, r := range handlers {
		s.HandlerRetries += r.retries.Load()
		s.HandlerDrops += r.drops.Load()
	}
	return s
}

// Close stops the handler goroutines after they drain their queues.
// Idempotent; call after the Run goroutine has stopped observing.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	handlers := m.handlers
	m.mu.Unlock()
	for _, r := range handlers {
		r.close()
	}
	m.wg.Wait()
}
