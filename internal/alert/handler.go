package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cube"
)

// handlerQueueDepth bounds each handler's event queue. A wedged handler
// loses oldest events first (counted in Stats.HandlerDrops) — exactly the
// snapshot bus's shedding discipline, one layer up — so delivery never
// backs pressure into Observe, and Observe never backs into ingest.
const handlerQueueDepth = 64

// retryBase and retryCap bound the exponential backoff between delivery
// attempts: base, 2·base, 4·base, ... capped at retryCap.
const (
	retryBase = 50 * time.Millisecond
	retryCap  = 2 * time.Second
)

// Handler delivers one event to a sink. Deliver runs on the handler's own
// goroutine, one event at a time, and may block; a returned error makes
// the manager retry with capped exponential backoff (Config.MaxRetries).
type Handler interface {
	Name() string
	Deliver(e Event) error
}

// runner is one handler's delivery loop: a bounded queue drained by a
// dedicated goroutine, with drop-oldest shedding on overflow.
type runner struct {
	h      Handler
	topics map[string]bool // nil = all topics
	q      chan Event
	mu     sync.Mutex // serializes offer's shed-and-retry with itself
	once   sync.Once
	m      *Manager

	retries atomic.Int64
	drops   atomic.Int64
}

// Handle attaches a handler, optionally restricted to the given topics
// (none = every topic), and starts its delivery goroutine. Attach all
// handlers before the first Observe.
func (m *Manager) Handle(h Handler, topics ...string) {
	r := &runner{h: h, q: make(chan Event, handlerQueueDepth), m: m}
	if len(topics) > 0 {
		r.topics = make(map[string]bool, len(topics))
		for _, t := range topics {
			r.topics[t] = true
		}
	}
	m.mu.Lock()
	m.handlers = append(m.handlers, r)
	m.mu.Unlock()
	m.wg.Add(1)
	go r.run()
}

// offer enqueues without blocking, shedding the oldest queued event when
// full. Offers are serialized by Observe (single caller) plus the mutex,
// so the shed-retry loop terminates like the bus publisher's.
func (r *runner) offer(ev Event) {
	if r.topics != nil && !r.topics[ev.Topic] {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		select {
		case r.q <- ev:
			return
		default:
			select {
			case <-r.q:
				r.drops.Add(1)
			default:
			}
		}
	}
}

// close stops the runner after the queue drains; offers after close are
// lost (the manager stops observing first).
func (r *runner) close() { r.once.Do(func() { close(r.q) }) }

// run drains the queue, retrying failed deliveries with exponential
// backoff. Retries are counted for /metrics; an event that exhausts its
// attempts is abandoned (the ring buffer still has it).
func (r *runner) run() {
	defer r.m.wg.Done()
	for ev := range r.q {
		backoff := retryBase
		for attempt := 0; ; attempt++ {
			err := r.h.Deliver(ev)
			if err == nil || attempt >= r.m.cfg.MaxRetries {
				break
			}
			r.retries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > retryCap {
				backoff = retryCap
			}
		}
	}
}

// LogHandler writes one line per event, in a stable grep-able form:
//
//	ALERTEVENT seq=3 unit=7 topic=olayer cell=(store-2, city-1) crit->warn slope=+1.250
type LogHandler struct {
	Schema *cube.Schema
	W      io.Writer
	mu     sync.Mutex
}

// Name identifies the handler in diagnostics.
func (h *LogHandler) Name() string { return "log" }

// Deliver writes the event line; it never asks for a retry.
func (h *LogHandler) Deliver(e Event) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(h.W, "ALERTEVENT seq=%d unit=%d topic=%s cell=%s %s->%s slope=%+.3f\n",
		e.Seq, e.Unit, e.Topic, e.Cell.Describe(h.Schema), e.From, e.To, e.Slope)
	return nil
}

// WebhookHandler POSTs each event as an EventJSON body to a fixed URL.
// Non-2xx responses and transport errors are delivery failures, retried
// by the runner's backoff loop.
type WebhookHandler struct {
	Schema *cube.Schema
	URL    string
	// Client defaults to a 5-second-timeout client, so one dead endpoint
	// occupies the delivery goroutine a bounded time per attempt.
	Client *http.Client
}

// Name identifies the handler in diagnostics.
func (h *WebhookHandler) Name() string { return "webhook" }

// Deliver POSTs the event and treats any non-2xx status as failure.
func (h *WebhookHandler) Deliver(e Event) error {
	body, err := json.Marshal(e.JSON(h.Schema))
	if err != nil {
		return err
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Post(h.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook %s: status %s", h.URL, resp.Status)
	}
	return nil
}
