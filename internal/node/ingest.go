package node

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/gen"
	"repro/internal/wire"
)

// textBatchRecords is how many text records accumulate into one columnar
// batch before hand-off to the ingest loop. The reader also cuts a batch
// whenever its buffer runs dry, so a paced producer's records are never
// held back waiting for a full batch.
const textBatchRecords = 512

// ingestMsg is one message from the reader goroutine to the ingest loop:
// a decoded record batch, or an advance barrier (a control frame telling
// the engine to close every unit before advance).
type ingestMsg struct {
	batch   *wire.Batch
	advance int64
	isCtrl  bool
}

// serveIngest accepts record-stream connections until the signal closes
// the listener, feeding each one through the auto-negotiated decoder. The
// engine is one logical stream, so connections are consumed sequentially;
// a connection that dies or delivers corrupt bytes is logged and dropped
// (its decoded batches stand — the router re-routes from its own stream
// position), never fatal to the node.
func serveIngest(ctx context.Context, ln net.Listener, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			fmt.Fprintf(os.Stderr, "streamd: ingest accept: %v\n", err)
			continue
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		peek, _ := br.Peek(len(wire.Magic))
		if string(peek) == wire.Magic {
			err = readBinary(ctx, br, dims, getBatch, msgs, stats, wire.SourceTCP)
		} else {
			err = readText(ctx, br, dims, getBatch, msgs, stats, wire.SourceTCP)
		}
		conn.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamd: ingest connection: %v\n", err)
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// readBinary decodes framed columnar batches (internal/wire) into the
// message channel until EOF, a decode error, or the signal. Frames decode
// straight into recycled Batch storage — no per-record allocation — and
// control frames (the router's unit barriers) pass through as advance
// messages in stream order.
func readBinary(ctx context.Context, br *bufio.Reader, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats, src wire.Source) error {
	wr, err := wire.NewReader(br)
	if err != nil {
		stats.AddDecodeError(wire.FormatBinary, src)
		return fmt.Errorf("binary stream: %w", err)
	}
	if wr.Dims() != dims {
		stats.AddDecodeError(wire.FormatBinary, src)
		return fmt.Errorf("binary stream carries %d dimensions, -spec has %d", wr.Dims(), dims)
	}
	for {
		// Stop decoding once the signal fires — the unconditional send
		// below still delivers the batch in flight, so shutdown drains a
		// bounded backlog instead of racing a fast producer.
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		b := getBatch()
		n, ctrl, isCtrl, err := wr.NextAny(b)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			stats.AddDecodeError(wire.FormatBinary, src)
			return fmt.Errorf("binary stream: %w", err)
		}
		stats.AddFrame(wire.FormatBinary, src)
		if isCtrl {
			msgs <- ingestMsg{advance: ctrl.Unit, isCtrl: true}
			continue
		}
		stats.AddRecords(wire.FormatBinary, src, n)
		msgs <- ingestMsg{batch: b}
	}
}

// readText parses text records (tick,dim0,...,dimN,value) into columnar
// batches, cutting a batch at textBatchRecords or whenever the buffer runs
// dry — a paced producer's records are delivered as they arrive, a bulk
// pipe is consumed in full batches.
func readText(ctx context.Context, br *bufio.Reader, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats, src wire.Source) error {
	rr := gen.NewRecordReader(br, dims)
	b := getBatch()
	flush := func() {
		if b.Len() > 0 {
			stats.AddFrame(wire.FormatText, src)
			stats.AddRecords(wire.FormatText, src, b.Len())
			msgs <- ingestMsg{batch: b}
			b = getBatch()
		}
	}
	var n int64
	for {
		select {
		case <-ctx.Done():
			flush()
			return nil
		default:
		}
		tick, members, value, err := rr.Next()
		if err == io.EOF {
			flush()
			return nil
		}
		if err != nil {
			// Records decoded before the bad one are still delivered, then
			// the error fails the run.
			flush()
			stats.AddDecodeError(wire.FormatText, src)
			return fmt.Errorf("record %d: %w", n+1, err)
		}
		n++
		b.Append(tick, members, value)
		if b.Len() >= textBatchRecords || rr.Buffered() == 0 {
			flush()
		}
	}
}
