package node

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/wal"
)

// syncWriter makes a bytes.Buffer safe for the runtime's two writers (the
// report path and the log handler's goroutine).
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// risingFeed returns text records over `ticks` ticks whose values rise
// steeply with the tick, so every cell's slope breaches any small
// threshold once a unit closes.
func risingFeed(ticks int) string {
	var sb strings.Builder
	for tick := 0; tick < ticks; tick++ {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				fmt.Fprintf(&sb, "%d,%d,%d,%g\n", tick, a, b, float64(tick)*float64(a+2*b+1))
			}
		}
	}
	return sb.String()
}

// TestRunShutdownDrainsAlerts drives the runtime end to end in-process:
// a rising feed with the alert lifecycle and a webhook enabled, plain EOF
// shutdown. The ordered shutdown's last step drains the alert pipeline,
// so by the time Run returns the webhook must have received every event —
// including those from the final flush — and the ALERTEVENT log lines
// must all precede the summary line.
func TestRunShutdownDrainsAlerts(t *testing.T) {
	var mu sync.Mutex
	var posted []map[string]any
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var ev map[string]any
		if err := json.Unmarshal(body, &ev); err != nil {
			t.Errorf("webhook got bad JSON: %v", err)
		}
		mu.Lock()
		posted = append(posted, ev)
		mu.Unlock()
	}))
	defer hook.Close()

	out := &syncWriter{}
	err := Run(context.Background(), Config{
		Engine: EngineConfig{
			Spec: "D2L2C4", TicksPerUnit: 4, Threshold: 0.5, Shards: 4,
		},
		AlertWarn:    0.5,
		AlertCrit:    4,
		AlertHold:    1,
		AlertWebhook: hook.URL,
	}, strings.NewReader(risingFeed(10)), out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	text := out.String()
	if !strings.Contains(text, "ALERTEVENT ") {
		t.Fatalf("no ALERTEVENT lines in output:\n%s", text)
	}
	sumIdx := strings.Index(text, "# 160 records")
	if sumIdx < 0 {
		t.Fatalf("missing summary line:\n%s", text)
	}
	if last := strings.LastIndex(text, "ALERTEVENT "); last > sumIdx {
		t.Fatalf("ALERTEVENT after the summary line — alert drain did not precede it:\n%s", text)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(posted) == 0 {
		t.Fatal("webhook received no events before Run returned")
	}
	if got := strings.Count(text, "ALERTEVENT "); len(posted) != got {
		t.Fatalf("webhook received %d events, log sink %d — handlers must see the same stream", len(posted), got)
	}
	var crits int
	for _, ev := range posted {
		if ev["to"] == "crit" {
			crits++
		}
	}
	if crits == 0 {
		t.Fatalf("rising feed produced no crit escalation; events: %v", posted)
	}
}

// TestRunAlertsForcePublication checks the runtime turns snapshot
// publication on for the alert lifecycle even without -listen: with
// alerting off and no listener, the same feed must produce no events.
func TestRunAlertsForcePublication(t *testing.T) {
	out := &syncWriter{}
	err := Run(context.Background(), Config{
		Engine: EngineConfig{Spec: "D2L2C4", TicksPerUnit: 4, Threshold: 0.5, Shards: 1},
	}, strings.NewReader(risingFeed(10)), out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ALERTEVENT ") {
		t.Fatalf("alerting disabled but events fired:\n%s", out.String())
	}
}

// TestSIGTERMZeroWALLoss is the graceful-shutdown durability harness: a
// real streamd subprocess streams paced records into a WAL, receives
// SIGTERM mid-stream, and must exit 0 with its checkpoint watermark equal
// to the durable log length — every logged record ingested, nothing to
// replay. A restart on the same state must confirm that by replaying no
// WAL suffix.
func TestSIGTERMZeroWALLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shutdown harness")
	}
	bin := filepath.Join(t.TempDir(), "streamd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/streamd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building streamd: %v", err)
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			walDir := filepath.Join(dir, "wal")
			cpPath := filepath.Join(dir, "state.json")
			args := []string{
				"-spec", "D2L2C4", "-unit", "15", "-threshold", "0.3",
				"-shards", fmt.Sprint(shards),
				"-wal-dir", walDir, "-wal-sync", "batch",
				"-checkpoint", cpPath,
			}

			cmd := exec.Command(bin, args...)
			stdin, err := cmd.StdinPipe()
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			go func() {
				defer stdin.Close()
				w := rand.New(rand.NewSource(int64(shards)))
				for tick := 0; ; tick++ {
					// Distinct cells within a tick: the engine takes one
					// reading per cell per tick, and the harness must stream
					// only records a live engine accepts.
					var drawn [3][2]int
					for i := 0; i < 3; i++ {
					draw:
						a, b := w.Intn(16), w.Intn(16)
						for j := 0; j < i; j++ {
							if drawn[j] == [2]int{a, b} {
								goto draw
							}
						}
						drawn[i] = [2]int{a, b}
						row := fmt.Sprintf("%d,%d,%d,%g\n", tick, a, b, w.NormFloat64()*5)
						if _, err := io.WriteString(stdin, row); err != nil {
							return
						}
					}
					select {
					case <-stop:
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
			}()
			time.Sleep(80 * time.Millisecond)
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			waitErr := cmd.Wait()
			close(stop)
			if waitErr != nil {
				t.Fatalf("SIGTERM must exit 0, got %v\n%s", waitErr, out.String())
			}
			if !strings.Contains(out.String(), "# signal: flushing final unit") {
				t.Fatalf("missing signal banner:\n%s", out.String())
			}

			// Zero loss: the checkpoint watermark equals the durable log
			// length exactly.
			durable, err := wal.Replay(walDir, 0, func(int64, wal.Record) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if durable == 0 {
				t.Fatal("no durable records; the harness tested nothing")
			}
			a, err := EngineConfig{Spec: "D2L2C4", TicksPerUnit: 15, Threshold: 0.3, Shards: shards}.Build()
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			f, err := os.Open(cpPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.LoadCheckpoint(f); err != nil {
				f.Close()
				t.Fatal(err)
			}
			f.Close()
			mark, err := a.WALSeq()
			if err != nil {
				t.Fatal(err)
			}
			if mark != durable {
				t.Fatalf("checkpoint watermark %d != %d durable WAL records — graceful shutdown lost ingested records", mark, durable)
			}

			// A restart on the same state must find nothing to replay.
			restart := exec.Command(bin, args...)
			restart.Stdin = nil
			var rout bytes.Buffer
			restart.Stdout = &rout
			restart.Stderr = &rout
			if err := restart.Run(); err != nil {
				t.Fatalf("restart failed: %v\n%s", err, rout.String())
			}
			if strings.Contains(rout.String(), "# wal: replayed") {
				t.Fatalf("restart replayed a WAL suffix after a graceful shutdown:\n%s", rout.String())
			}
		})
	}
}
