package node

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Config is the full node runtime configuration: the engine half
// (Engine), plus everything that feeds, persists, serves, and alerts on
// it. cmd/streamd maps its flags here one-to-one.
type Config struct {
	// Engine configures analyzer construction. Run forces
	// Engine.PublishSnapshots on when Listen or alerting needs it.
	Engine EngineConfig
	// Checkpoint is the checkpoint file path (loaded if present, saved
	// after every closed unit); empty disables persistence.
	Checkpoint string
	// Listen serves the HTTP/JSON query API on this address; empty
	// disables it.
	Listen string
	// IngestListen accepts the record stream on this TCP address instead
	// of the in-stream reader.
	IngestListen string
	// NodeID is the operator-assigned identity reported on /v1/info.
	NodeID string
	// WALDir enables the write-ahead record log in this directory.
	WALDir string
	// WALSync is the fsync policy: "batch", "interval[=dur]", or "off".
	WALSync string
	// WALSegBytes rotates WAL segments at this size (0 = default).
	WALSegBytes int64
	// AlertWarn/AlertCrit are |slope| thresholds for the alert lifecycle;
	// AlertCrit > 0 enables it (see internal/alert for the state machine).
	AlertWarn, AlertCrit float64
	// AlertHold is the de-escalation hold in units (flap suppression).
	AlertHold int
	// AlertWebhook, when set, POSTs every event to this URL with capped
	// exponential retries.
	AlertWebhook string
	// ForecastThreshold is the measure value forecasts extrapolate toward:
	// the default ?threshold= of GET /v1/forecast, and — together with
	// ForecastHorizon — the predictive alert topic's trigger. 0 disables
	// both (a forecast GET then needs an explicit ?threshold=).
	ForecastThreshold float64
	// ForecastHorizon is the default forecast horizon in ticks for
	// GET /v1/forecast, and the predictive alert budget: cells forecast to
	// reach ForecastThreshold within it go critical (within twice: warn).
	// Forecast alerting needs both ForecastThreshold and a horizon > 0.
	ForecastHorizon int64
	// ChangeScore is the default minimum divergence score of
	// GET /v1/changes.
	ChangeScore float64
}

// Run is the node runtime: build the engine, restore the checkpoint,
// replay the WAL tail, start the query server and the alert lifecycle,
// consume the record stream until it ends or ctx is canceled, then shut
// down in order — stop ingest, drain decoded batches, drain HTTP, flush
// the final unit, fsync the WAL and cut the checkpoint, and finally drain
// the alert pipeline. Reports and banners go to out; in feeds the
// analyzer unless Config.IngestListen is set.
func Run(ctx context.Context, cfg Config, in io.Reader, out io.Writer) error {
	alertsOn := cfg.AlertCrit > 0
	forecastOn := cfg.ForecastThreshold != 0 && cfg.ForecastHorizon > 0
	// The serving layer and the alert lifecycle (slope or forecast
	// topics) all consume per-unit snapshots; any one forces publication.
	cfg.Engine.PublishSnapshots = cfg.Listen != "" || alertsOn || forecastOn

	a, err := cfg.Engine.Build()
	if err != nil {
		return err
	}
	defer a.Close()
	schema := a.Schema

	if cfg.Checkpoint != "" {
		if f, err := os.Open(cfg.Checkpoint); err == nil {
			err := a.LoadCheckpoint(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			fmt.Fprintf(out, "# resumed at unit %d (%d units done)\n", a.Unit(), a.UnitsDone())
		}
	}

	report := func(urs []*stream.UnitResult) {
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
				for _, c := range al.Drill {
					fmt.Fprintf(out, "    supporter %s %s slope=%+.3f\n",
						c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
				}
			}
		}
	}

	// WAL plumbing. Every batch is appended to the log before ingest;
	// ingestedSeq counts records the engine has consumed, and is the
	// watermark checkpoints carry. saveCheckpoint fsyncs the log before
	// stamping it, so a checkpoint's watermark never points past the
	// durable log regardless of the sync policy. The counter is atomic
	// because /v1/info reports it from HTTP goroutines while the ingest
	// loop advances it.
	var wlog *wal.Log
	var ingestedSeq atomic.Int64

	saveCheckpoint := func() error {
		if wlog != nil {
			if err := wlog.Sync(); err != nil {
				return fmt.Errorf("wal sync: %w", err)
			}
			if err := a.SetWALSeq(ingestedSeq.Load()); err != nil {
				return err
			}
		}
		if cfg.Checkpoint == "" {
			return nil
		}
		tmp := cfg.Checkpoint + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := a.WriteCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, cfg.Checkpoint)
	}

	if cfg.WALDir != "" {
		policy, every, err := wal.ParseSyncPolicy(cfg.WALSync)
		if err != nil {
			return fmt.Errorf("bad -wal-sync: %w", err)
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          cfg.WALDir,
			SegmentBytes: cfg.WALSegBytes,
			Sync:         policy,
			SyncEvery:    every,
		})
		if err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		defer wlog.Close()
		mark, err := a.WALSeq()
		if err != nil {
			return err
		}
		if wlog.Seq() < mark {
			return fmt.Errorf("checkpoint WAL watermark %d exceeds the %d-record log in %s (wrong -wal-dir?)",
				mark, wlog.Seq(), cfg.WALDir)
		}
		ingestedSeq.Store(mark)
		if wlog.Seq() > mark {
			// The crash window: records durably logged after the last
			// checkpoint was cut. Re-ingesting them rebuilds the open unit
			// exactly — ingest is deterministic — and may close units whose
			// reports were lost with the crashed process.
			n, err := wal.Replay(cfg.WALDir, mark, func(seq int64, rec wal.Record) error {
				closed, ingestErr := a.Ingest(rec.Members, rec.Tick, rec.Value)
				if len(closed) > 0 {
					report(closed)
				}
				if ingestErr != nil {
					return fmt.Errorf("wal record %d: %w", seq, ingestErr)
				}
				ingestedSeq.Add(1)
				return nil
			})
			if err != nil {
				return fmt.Errorf("replaying wal: %w", err)
			}
			fmt.Fprintf(out, "# wal: replayed %d records (watermark %d -> %d)\n", n-mark, mark, n)
			if err := saveCheckpoint(); err != nil {
				return fmt.Errorf("saving checkpoint: %w", err)
			}
		}
	}

	// The alert lifecycle is the bus's first consumer: its own goroutine
	// drains a bounded subscription, so a wedged webhook sheds snapshots
	// (counted) instead of stalling ingest. It starts after WAL replay —
	// replayed units re-close, and re-alerting on them every restart
	// would duplicate the events a live run already emitted.
	var mgr *alert.Manager
	var alertSub *stream.Subscription
	var alertStop context.CancelFunc
	alertDone := make(chan struct{})
	if alertsOn || forecastOn {
		warn, crit := cfg.AlertWarn, cfg.AlertCrit
		if warn <= 0 {
			warn = crit / 2
		}
		if !alertsOn {
			// Forecast-only alerting: infinite slope thresholds pass the
			// manager's validation and keep the slope topics silent.
			warn, crit = math.Inf(1), math.Inf(1)
		}
		acfg := alert.Config{
			Schema:    schema,
			Warn:      warn,
			Crit:      crit,
			HoldUnits: cfg.AlertHold,
		}
		if forecastOn {
			acfg.ForecastBudget = cfg.ForecastHorizon
			acfg.ForecastThreshold = cfg.ForecastThreshold
		}
		mgr, err = alert.New(acfg)
		if err != nil {
			return err
		}
		mgr.Handle(&alert.LogHandler{Schema: schema, W: out})
		if cfg.AlertWebhook != "" {
			mgr.Handle(&alert.WebhookHandler{Schema: schema, URL: cfg.AlertWebhook})
		}
		alertSub = a.Subscribe(64)
		defer alertSub.Close()
		var alertCtx context.Context
		// Deliberately not the signal ctx: the lifecycle must keep
		// observing through the drain and the final flush; the ordered
		// shutdown below stops it last.
		alertCtx, alertStop = context.WithCancel(context.Background())
		defer alertStop()
		go func() {
			defer close(alertDone)
			mgr.Run(alertCtx, alertSub)
		}()
	} else {
		close(alertDone)
	}
	// drainAlerts is shutdown step 6: stop the lifecycle goroutine, apply
	// whatever the bus still buffered (synchronously now — no racing
	// consumer), then drain the handler queues. After the engine flush
	// published its final snapshot, this guarantees the webhook and the
	// log sink saw every event before the process exits.
	drainAlerts := func() {
		if mgr == nil {
			return
		}
		alertStop()
		<-alertDone
		for {
			select {
			case s := <-alertSub.C():
				mgr.Observe(s)
				continue
			default:
			}
			break
		}
		mgr.Close()
	}

	// ingestStats counts the decode edge (records, frames, decode errors
	// per format); /metrics renders it when the query API is up.
	ingestStats := &wire.IngestStats{}

	// The query API serves concurrently with the ingest loop below; its
	// only contact with the engine is the atomic snapshot load (and the
	// alert manager's own locks).
	var srv *http.Server
	srvShutdown := func() {}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		// The timeouts keep slow or stuck clients from pinning connections
		// (and Shutdown) on a daemon that runs for days: headers within 5s,
		// the whole request — including a POST /v1/query body — within 30s,
		// idle keep-alives reaped after 2 minutes, headers capped at 64 KiB
		// (the serving layer separately caps query bodies at 1 MiB).
		handler := serve.New(a, schema)
		handler.SetIngestStats(ingestStats)
		handler.SetBusDropped(a.BusDropped)
		fdef := serve.ForecastDefaults{Horizon: cfg.ForecastHorizon, ChangeScore: cfg.ChangeScore}
		if cfg.ForecastThreshold != 0 {
			th := cfg.ForecastThreshold
			fdef.Threshold = &th
		}
		handler.SetForecastDefaults(fdef)
		if mgr != nil {
			handler.SetAlerts(mgr)
		}
		// The info closure runs on query goroutines: only flag-derived
		// constants and the atomic watermark — never engine calls, which
		// are coordinator-confined.
		handler.SetInfo(func() query.InfoResponse {
			return query.InfoResponse{
				NodeID:      cfg.NodeID,
				Role:        "node",
				Shards:      cfg.Engine.Shards,
				WireVersion: wire.Version,
				APIVersion:  query.APIVersion,
				WALSeq:      ingestedSeq.Load(),
			}
		})
		srv = &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    1 << 16,
		}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "streamd: http: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "# serving http on %s\n", ln.Addr())
		srvShutdown = func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				fmt.Fprintf(os.Stderr, "streamd: http shutdown: %v\n", err)
			}
			srvShutdown = func() {}
		}
		// Normally run as step 3 of the ordered shutdown; the defer covers
		// early error returns.
		defer func() { srvShutdown() }()
	}

	// Records are decoded in their own goroutine so a signal interrupts the
	// loop even while a read from stdin is blocked; the reader goroutine
	// itself dies with the process. Decoded batches flow over a channel and
	// drained batches flow back through the free list, so steady-state
	// ingest allocates nothing per record in either direction.
	// A shallow decode-ahead keeps the reader from racing the whole stream
	// into fresh batches before any come back through the free list — two
	// full frames in flight is plenty of pipeline slack, and steady state
	// then recycles the same handful of batches instead of allocating.
	msgs := make(chan ingestMsg, 2)
	freeBatches := make(chan *wire.Batch, 16)
	readErr := make(chan error, 1)
	getBatch := func() *wire.Batch {
		b := &wire.Batch{}
		select {
		case b = <-freeBatches:
		default:
		}
		b.Reset(a.Dims)
		return b
	}
	if cfg.IngestListen != "" {
		// Routed ingest: accept the record stream over TCP instead of
		// stdin. The listener opens before the announce line, so a router
		// that waits for it can connect immediately; connections are
		// consumed one at a time (the engine is one logical stream), and a
		// connection's decode error drops that connection — the next
		// producer reconnects — instead of killing the node.
		ingestLn, err := net.Listen("tcp", cfg.IngestListen)
		if err != nil {
			return fmt.Errorf("-ingest-listen: %w", err)
		}
		fmt.Fprintf(out, "# ingest listening on %s\n", ingestLn.Addr())
		go func() {
			defer close(msgs)
			serveIngest(ctx, ingestLn, a.Dims, getBatch, msgs, ingestStats)
		}()
	} else {
		go func() {
			defer close(msgs)
			br := bufio.NewReaderSize(in, 1<<16)
			// Format negotiation: the wire magic's first byte can never open a
			// text record, so peeking the magic length decides the decoder. A
			// stream shorter than the magic falls through to the text parser.
			peek, _ := br.Peek(len(wire.Magic))
			var err error
			if string(peek) == wire.Magic {
				err = readBinary(ctx, br, a.Dims, getBatch, msgs, ingestStats, wire.SourceStdin)
			} else {
				err = readText(ctx, br, a.Dims, getBatch, msgs, ingestStats, wire.SourceStdin)
			}
			if err != nil {
				readErr <- err
			}
		}()
	}

	var records int64
	ingest := func(m ingestMsg) error {
		if m.isCtrl {
			// A router barrier: close every unit before the target, even
			// when this node received no records for some of them — the
			// cluster-wide analogue of the boundary crossing a single
			// engine sees in the record stream. Barriers are not
			// WAL-logged; the checkpoint cut after the closed units is
			// what makes their effect durable.
			closed, err := a.AdvanceTo(m.advance)
			if len(closed) > 0 {
				report(closed)
			}
			if err != nil {
				return fmt.Errorf("advance to unit %d: %w", m.advance, err)
			}
			if len(closed) > 0 {
				if err := saveCheckpoint(); err != nil {
					return fmt.Errorf("saving checkpoint: %w", err)
				}
			}
			return nil
		}
		b := m.batch
		if wlog != nil {
			// Write-ahead: the whole batch reaches the log (one frame;
			// durable per the sync policy) before the engine sees it.
			if err := wlog.AppendColumnar(b); err != nil {
				return fmt.Errorf("wal append: %w", err)
			}
		}
		closed, ingestErr := a.IngestBatch(b)
		if ingestErr == nil {
			ingestedSeq.Add(int64(b.Len()))
			records += int64(b.Len())
		}
		// Units can close even when a record is rejected (boundary
		// crossings happen first); report them before surfacing the error,
		// or their output would be lost. The checkpoint is only cut after
		// fully ingested batches, so its watermark is always exact.
		if len(closed) > 0 {
			report(closed)
			if ingestErr == nil {
				if err := saveCheckpoint(); err != nil {
					return fmt.Errorf("saving checkpoint: %w", err)
				}
			}
		}
		if ingestErr != nil {
			return fmt.Errorf("record %d: %w", records+1, ingestErr)
		}
		select {
		case freeBatches <- b:
		default:
		}
		return nil
	}

	// Ordered shutdown, steps 1-2: the loop exits when the stream ends or
	// the signal fires (stop ingest), after consuming every batch the
	// reader already decoded (drain decoded batches).
loop:
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "# signal: flushing final unit")
			// Ingest every batch the reader already decoded before
			// flushing. The timed case (instead of a non-blocking default)
			// gives the reader a grace window to deliver a batch it cut
			// just before the signal; it fires only once, when the reader
			// has stopped or is still blocked reading stdin.
		drain:
			for {
				select {
				case m, ok := <-msgs:
					if !ok {
						break drain
					}
					if err := ingest(m); err != nil {
						return err
					}
				case <-time.After(100 * time.Millisecond):
					break drain
				}
			}
			break loop
		case m, ok := <-msgs:
			if !ok {
				break loop
			}
			if err := ingest(m); err != nil {
				return err
			}
		}
	}
	// Whichever way the loop ended, a parse error the reader hit must
	// still fail the run — corrupt input never exits 0. readErr is
	// buffered, so the reader's send completes the instant it hits the
	// error; the drain's grace window above has already let it land.
	select {
	case err := <-readErr:
		return err
	default:
	}
	// Step 3: drain HTTP before the engine stops moving, so in-flight
	// queries finish against a live snapshot surface.
	srvShutdown()
	// Step 4: flush the final partial unit.
	ur, err := a.Flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	// Step 5: fsync the WAL and cut the checkpoint — after this, the
	// checkpoint watermark equals the durable log length, so a graceful
	// shutdown replays nothing on restart.
	if err := saveCheckpoint(); err != nil {
		return fmt.Errorf("saving checkpoint: %w", err)
	}
	// Step 6: the alert pipeline drains last, so the flush's snapshot
	// (and any still buffered on the bus) reaches the handlers.
	drainAlerts()
	fmt.Fprintf(out, "# %d records, %d units\n", records, a.UnitsDone())
	return nil
}
