// Package node is the streamd runtime, extracted so the daemon binary is
// flag parsing over a library: engine construction (EngineConfig.Build,
// shared with `regcube replay`), ingest-source selection (stdin text or
// binary, TCP), WAL append and replay, the HTTP query server, the alert
// lifecycle, and the ordered graceful shutdown. cmd/streamd maps flags
// onto Config and calls Run; nothing below this package imports it.
package node

import (
	"fmt"
	"io"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/wire"
)

// EngineConfig is the analyzer-construction half of the runtime config:
// everything that determines what the engine computes, none of what feeds
// it. streamd and `regcube replay` both build engines through it, so a
// replayed what-if run is constructed exactly like the live run it
// re-enacts.
type EngineConfig struct {
	// Spec is the schema spec D<dims>L<levels>C<fanout> (no T component).
	Spec string
	// TicksPerUnit is the unit width in ticks.
	TicksPerUnit int
	// Threshold is the global slope exception threshold.
	Threshold float64
	// Alg selects the cubing algorithm: "mo" (default) or "popular-path".
	Alg string
	// Tilt is the tilted-history chain spec (streamd -tilt syntax); empty
	// keeps the flat per-o-cell history.
	Tilt string
	// Shards > 1 hash-partitions the engine; 1 runs the single-threaded
	// engine.
	Shards int
	// PublishSnapshots turns on per-unit snapshot publication (required
	// by the query API and the alert lifecycle).
	PublishSnapshots bool
}

// Analyzer wraps the single or sharded engine behind one surface, with
// the checkpoint and WAL-watermark plumbing the two flavors expose
// differently. Like the engines themselves, its methods are
// coordinator-confined except Snapshot, Subscribe, and BusDropped.
type Analyzer struct {
	// Schema is the parsed cube schema.
	Schema *cube.Schema
	// Dims is the schema's dimension count.
	Dims int
	// Shards is the effective shard count (1 = single engine).
	Shards int

	single  *stream.Engine
	sharded *stream.ShardedEngine
}

// Build parses the spec and constructs the engine. Callers must Close the
// analyzer (a no-op for the single engine) when done.
func (c EngineConfig) Build() (*Analyzer, error) {
	spec, err := gen.ParseSpec(c.Spec + "T1") // reuse the D/L/C parser
	if err != nil {
		return nil, fmt.Errorf("bad -spec: %w", err)
	}
	schema, err := spec.StreamSchema()
	if err != nil {
		return nil, err
	}
	alg := stream.MOCubing
	if c.Alg == "popular-path" {
		alg = stream.PopularPath
	} else if c.Alg != "" && c.Alg != "mo" {
		return nil, fmt.Errorf("unknown -alg %q", c.Alg)
	}
	if c.Shards < 1 {
		return nil, fmt.Errorf("-shards %d: need at least 1", c.Shards)
	}
	tiltLevels, err := tilt.ParseLevels(c.Tilt)
	if err != nil {
		return nil, fmt.Errorf("bad -tilt: %w", err)
	}
	cfg := stream.Config{
		Schema:           schema,
		TicksPerUnit:     c.TicksPerUnit,
		Threshold:        exception.Global(c.Threshold),
		Algorithm:        alg,
		TiltLevels:       tiltLevels,
		PublishSnapshots: c.PublishSnapshots,
	}
	a := &Analyzer{Schema: schema, Dims: spec.Dims, Shards: c.Shards}
	if c.Shards > 1 {
		if a.sharded, err = stream.NewShardedEngine(cfg, c.Shards); err != nil {
			return nil, err
		}
	} else {
		if a.single, err = stream.NewEngine(cfg); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Ingest consumes one record (WAL replay walks the row-oriented log with
// it; live ingest uses IngestBatch).
func (a *Analyzer) Ingest(members []int32, tick int64, value float64) ([]*stream.UnitResult, error) {
	if a.sharded != nil {
		return a.sharded.Ingest(members, tick, value)
	}
	return a.single.Ingest(members, tick, value)
}

// IngestBatch consumes one columnar record batch.
func (a *Analyzer) IngestBatch(b *wire.Batch) ([]*stream.UnitResult, error) {
	if a.sharded != nil {
		return a.sharded.IngestBatch(b)
	}
	return a.single.IngestBatch(b)
}

// AdvanceTo applies a router unit-boundary barrier: close every unit
// before the target even without records for them.
func (a *Analyzer) AdvanceTo(unit int64) ([]*stream.UnitResult, error) {
	if a.sharded != nil {
		return a.sharded.AdvanceTo(unit)
	}
	return a.single.AdvanceTo(unit)
}

// Flush closes the open unit and returns its result.
func (a *Analyzer) Flush() (*stream.UnitResult, error) {
	if a.sharded != nil {
		return a.sharded.Flush()
	}
	return a.single.Flush()
}

// Unit returns the index of the open unit.
func (a *Analyzer) Unit() int64 {
	if a.sharded != nil {
		return a.sharded.Unit()
	}
	return a.single.Unit()
}

// UnitsDone returns how many units have closed.
func (a *Analyzer) UnitsDone() int64 {
	if a.sharded != nil {
		return a.sharded.UnitsDone()
	}
	return a.single.UnitsDone()
}

// Snapshot returns the latest published unit view (safe from any
// goroutine).
func (a *Analyzer) Snapshot() *stream.Snapshot {
	if a.sharded != nil {
		return a.sharded.Snapshot()
	}
	return a.single.Snapshot()
}

// Subscribe registers a consumer on the engine's snapshot bus (safe from
// any goroutine; see stream.Engine.Subscribe for delivery semantics).
func (a *Analyzer) Subscribe(buf int) *stream.Subscription {
	if a.sharded != nil {
		return a.sharded.Subscribe(buf)
	}
	return a.single.Subscribe(buf)
}

// BusDropped returns the snapshot bus's shed counter (safe from any
// goroutine).
func (a *Analyzer) BusDropped() int64 {
	if a.sharded != nil {
		return a.sharded.BusDropped()
	}
	return a.single.BusDropped()
}

// LoadCheckpoint restores engine state from a checkpoint stream; any
// persisted version loads at any shard count.
func (a *Analyzer) LoadCheckpoint(r io.Reader) error {
	if a.sharded != nil {
		scp, err := persist.ReadShardedCheckpoint(r)
		if err != nil {
			return err
		}
		return a.sharded.Restore(scp)
	}
	cp, err := persist.ReadCheckpoint(r)
	if err != nil {
		return err
	}
	return a.single.Restore(cp)
}

// WriteCheckpoint exports engine state in the flavor's native version.
func (a *Analyzer) WriteCheckpoint(w io.Writer) error {
	if a.sharded != nil {
		scp, err := a.sharded.Checkpoint()
		if err != nil {
			return err
		}
		return persist.WriteShardedCheckpoint(w, scp)
	}
	return persist.WriteCheckpoint(w, a.single.Checkpoint())
}

// SetWALSeq stamps the WAL watermark on the engine.
func (a *Analyzer) SetWALSeq(seq int64) error {
	if a.sharded != nil {
		return a.sharded.SetWALSeq(seq)
	}
	a.single.SetWALSeq(seq)
	return nil
}

// WALSeq reads the engine's WAL watermark.
func (a *Analyzer) WALSeq() (int64, error) {
	if a.sharded != nil {
		return a.sharded.WALSeq()
	}
	return a.single.WALSeq(), nil
}

// Close stops shard goroutines; a no-op for the single engine.
// Idempotent.
func (a *Analyzer) Close() {
	if a.sharded != nil {
		a.sharded.Close()
	}
}
