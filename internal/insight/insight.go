// Package insight is the read-side prediction subsystem: it evaluates the
// regression state the engine already maintains *forward* instead of
// backward. The paper's compressed ISB measure is a linear model, so a
// cell's trend can answer "what will the value be at t+h?" and "when does
// the fitted line cross a threshold?" without any new per-record state —
// everything here is a pure function of one published stream.Snapshot.
//
// Two primitives:
//
//   - Forecast — aggregate a cell's trailing finest-granularity units into
//     one model (Theorem 3.3), evaluate it at a horizon, score the fit
//     (R² against the per-unit means), and solve for the time until the
//     line crosses a configured threshold (nil/never when the slope points
//     away from it).
//
//   - ScanChanges — compare each o-cell's slope at adjacent tilt levels
//     (the recent window at the finer level vs the long horizon at the
//     coarser one) and rank cells by the normalized slope divergence
//     |a−b|/(|a|+|b|) ∈ [0,1] — the streaming change signal.
//
// Because snapshots are bitwise-identical at any shard count and across
// the cluster's snapshot merge, every result here is too: the query layer
// (internal/query) and the alert lifecycle (internal/alert) both consume
// this package and inherit that determinism for free.
package insight

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/stream"
)

// ErrArgs marks invalid forecast parameters (horizon < 1).
var ErrArgs = errors.New("insight: invalid argument")

// ErrHistory marks a history window a model cannot be fit over: empty, or
// with a gap between units.
var ErrHistory = errors.New("insight: unusable history")

// Forecast is the forward evaluation of one cell's trend model.
type Forecast struct {
	// Model is the aggregate regression over the window (Theorem 3.3).
	Model regression.ISB
	// Window counts the history units the model aggregates.
	Window int
	// R2 scores the model against the window's per-unit means: 1 when the
	// units line up perfectly, 0 when the line explains none of their
	// variation (clamped at 0; 1 by convention for a flat window the line
	// reproduces exactly).
	R2 float64
	// Now is the last tick the model covers (Model.Te); the prediction
	// evaluates Horizon ticks past it.
	Now int64
	// Horizon is the requested look-ahead in ticks.
	Horizon int64
	// Predicted is the fitted value at Now+Horizon.
	Predicted float64
	// Threshold echoes the configured threshold, when one was given.
	Threshold *float64
	// TicksToThreshold is how many ticks past Now the fitted line crosses
	// Threshold, in the direction the slope moves; nil when no threshold
	// was given, the slope is flat, or the line points away from the
	// threshold ("never").
	TicksToThreshold *float64
}

// WillBreach reports whether the threshold crossing falls inside the
// horizon.
func (f Forecast) WillBreach() bool {
	return f.TicksToThreshold != nil && *f.TicksToThreshold <= float64(f.Horizon)
}

// ForecastHistory fits the forward model over a cell's history window
// (oldest first, as stream snapshots expose it — the caller slices the
// trailing window). The units must be contiguous; horizon must be ≥ 1.
func ForecastHistory(pts []stream.HistoryPoint, horizon int64, threshold *float64) (Forecast, error) {
	if horizon < 1 {
		return Forecast{}, fmt.Errorf("%w: horizon %d is not positive", ErrArgs, horizon)
	}
	if len(pts) == 0 {
		return Forecast{}, fmt.Errorf("%w: no units", ErrHistory)
	}
	isbs := make([]regression.ISB, len(pts))
	for i, pt := range pts {
		if i > 0 && pt.Unit != pts[i-1].Unit+1 {
			return Forecast{}, fmt.Errorf("%w: gap between units %d and %d", ErrHistory, pts[i-1].Unit, pt.Unit)
		}
		isbs[i] = pt.ISB
	}
	return forecastSegments(isbs, horizon, threshold)
}

// forecastSegments is the model core over contiguous per-segment ISBs.
func forecastSegments(isbs []regression.ISB, horizon int64, threshold *float64) (Forecast, error) {
	model, err := regression.AggregateTime(isbs...)
	if err != nil {
		return Forecast{}, fmt.Errorf("%w: %v", ErrHistory, err)
	}
	f := Forecast{
		Model:     model,
		Window:    len(isbs),
		R2:        rsquared(model, isbs),
		Now:       model.Te,
		Horizon:   horizon,
		Predicted: model.At(model.Te + horizon),
		Threshold: threshold,
	}
	if threshold != nil {
		f.TicksToThreshold = TicksToThreshold(model, *threshold)
	}
	return f, nil
}

// rsquared scores the aggregate line against the per-segment means: each
// segment contributes the point (t̄ᵢ, z̄ᵢ) — both exactly recoverable
// from its ISB — and R² = 1 − Σ(z̄ᵢ−ẑ(t̄ᵢ))²/Σ(z̄ᵢ−m)². Raw residuals
// are deliberately out of reach (Theorem 3.1(b): the ISB does not carry
// them), so this is the finest confidence measure derivable from
// retained state alone. Conventions: a zero-variance window the line
// reproduces is 1, one it misses is 0, and the score is clamped at 0
// (the aggregate fit minimizes tick-level error, not segment-mean error,
// so the ratio can exceed 1 in degenerate windows).
func rsquared(model regression.ISB, isbs []regression.ISB) float64 {
	var mean float64
	for _, r := range isbs {
		mean += r.Mean()
	}
	mean /= float64(len(isbs))
	var rss, tss float64
	for _, r := range isbs {
		z := r.Mean()
		d := z - (model.Base + model.Slope*r.TBar()) // ẑ(t̄) with fractional t̄
		rss += d * d
		m := z - mean
		tss += m * m
	}
	switch {
	case tss > 0:
		if r2 := 1 - rss/tss; r2 > 0 {
			return r2
		}
		return 0
	case rss == 0:
		return 1
	default:
		return 0
	}
}

// TicksToThreshold solves the fitted line for the threshold crossing:
// the t ≥ 0 (ticks past the model's last covered tick) with
// ẑ(Te+t) = threshold. Nil means never — the slope is flat, or it moves
// the value away from the threshold (including a line already past the
// threshold and still heading away; once the level itself is breached,
// the slope-threshold alert topics own the signal).
func TicksToThreshold(model regression.ISB, threshold float64) *float64 {
	cur := model.At(model.Te)
	if cur == threshold {
		zero := 0.0
		return &zero
	}
	if model.Slope == 0 {
		return nil
	}
	t := (threshold - cur) / model.Slope
	if t < 0 || math.IsInf(t, 0) || math.IsNaN(t) {
		return nil
	}
	return &t
}

// CellChange is one cell's tilt-level slope divergence: the strongest
// disagreement between the trend at one granularity and the trend one
// level coarser.
type CellChange struct {
	Key cube.CellKey
	// Score is Divergence(RecentSlope, LongSlope) for the strongest
	// adjacent level pair.
	Score float64
	// RecentLevel/LongLevel index the winning adjacent pair (finer,
	// coarser); the names label them.
	RecentLevel, LongLevel int
	RecentName, LongName   string
	// RecentSlope/LongSlope are the aggregate slopes over every retained
	// slot at each level.
	RecentSlope, LongSlope float64
}

// Divergence is the normalized slope divergence |a−b|/(|a|+|b|) ∈ [0,1]:
// 0 when the trends agree (including both flat), 1 when they oppose or
// one is flat while the other moves.
func Divergence(a, b float64) float64 {
	denom := math.Abs(a) + math.Abs(b)
	if denom == 0 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// ScanChanges scores every framed o-cell of a snapshot and returns the
// cells whose score is at least minScore, ranked score-descending with
// canonical key order breaking ties — fully deterministic, because the
// frames themselves are deterministic at any shard count. Flat-history
// engines have no second granularity to compare, so they score no cells
// (an empty scan, not an error). k > 0 truncates the ranking.
func ScanChanges(snap *stream.Snapshot, minScore float64, k int) []CellChange {
	if snap == nil || snap.Frames == nil {
		return nil
	}
	keys := make([]cube.CellKey, 0, len(snap.Frames))
	for key := range snap.Frames {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return cube.CompareKeys(keys[i], keys[j]) < 0 })
	var out []CellChange
	for _, key := range keys {
		if c, ok := scoreFrame(key, snap.Frames[key]); ok && c.Score >= minScore {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return cube.CompareKeys(out[i].Key, out[j].Key) < 0
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// scoreFrame finds a frame's strongest adjacent-level divergence. Levels
// with no completed slot yet are skipped; a frame with fewer than two
// populated levels has nothing to compare (ok=false). Ties keep the
// finest pair — the most recent disagreement is the most actionable.
func scoreFrame(key cube.CellKey, v *stream.FrameView) (CellChange, bool) {
	c := CellChange{Key: key, Score: -1}
	for l := 0; l+1 < len(v.Levels); l++ {
		fine, coarse := v.Levels[l], v.Levels[l+1]
		if len(fine.Slots) == 0 || len(coarse.Slots) == 0 {
			continue
		}
		a, errA := levelSlope(fine)
		b, errB := levelSlope(coarse)
		if errA != nil || errB != nil {
			continue
		}
		if d := Divergence(a, b); d > c.Score {
			c.Score = d
			c.RecentLevel, c.LongLevel = l, l+1
			c.RecentName, c.LongName = fine.Name, coarse.Name
			c.RecentSlope, c.LongSlope = a, b
		}
	}
	return c, c.Score >= 0
}

// levelSlope aggregates every retained slot of one level into a single
// trend (Theorem 3.3) and returns its slope. Retained slots at one level
// are always contiguous (promotion consumes a trailing window, eviction
// trims the front), so the aggregation cannot see a gap.
func levelSlope(lv stream.FrameLevelView) (float64, error) {
	isbs := make([]regression.ISB, len(lv.Slots))
	for i, s := range lv.Slots {
		isbs[i] = s.ISB
	}
	isb, err := regression.AggregateTime(isbs...)
	if err != nil {
		return 0, err
	}
	return isb.Slope, nil
}
