package insight

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/timeseries"
)

// fitUnits fits one ISB per unit over a raw per-tick series, the way the
// engine's history records them.
func fitUnits(t *testing.T, values []float64, ticksPerUnit int) []stream.HistoryPoint {
	t.Helper()
	var pts []stream.HistoryPoint
	for u := 0; u*ticksPerUnit < len(values); u++ {
		lo := u * ticksPerUnit
		s := timeseries.MustNew(int64(lo), values[lo:lo+ticksPerUnit])
		isb, err := regression.Fit(s)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, stream.HistoryPoint{Unit: int64(u), ISB: isb})
	}
	return pts
}

// TestForecastMatchesBruteForce is the acceptance property: the window
// model, the prediction, and the time-to-threshold must match a
// brute-force replay of the raw series behind the cell's slots — a direct
// least-squares fit over the concatenated ticks (Theorem 3.3 makes the
// slot aggregation lossless) and a tick-by-tick scan for the crossing.
func TestForecastMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const units, ticksPerUnit = 12, 5
	values := make([]float64, units*ticksPerUnit)
	for i := range values {
		values[i] = 3.5*float64(i) + 40*rng.Float64() // rising trend + noise
	}
	pts := fitUnits(t, values, ticksPerUnit)

	threshold := 400.0
	f, err := ForecastHistory(pts, 10, &threshold)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force 1: fit the raw series directly.
	direct, err := regression.Fit(timeseries.MustNew(0, values))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Model.Slope-direct.Slope) > 1e-9*math.Abs(direct.Slope) {
		t.Fatalf("aggregate slope %.12g, brute-force fit %.12g", f.Model.Slope, direct.Slope)
	}
	if math.Abs(f.Model.Base-direct.Base) > 1e-9*math.Max(1, math.Abs(direct.Base)) {
		t.Fatalf("aggregate base %.12g, brute-force fit %.12g", f.Model.Base, direct.Base)
	}
	if want := direct.At(direct.Te + 10); math.Abs(f.Predicted-want) > 1e-6 {
		t.Fatalf("predicted %.12g, brute force %.12g", f.Predicted, want)
	}

	// Brute force 2: scan the fitted line tick by tick for the crossing.
	if f.TicksToThreshold == nil {
		t.Fatal("rising line below threshold: want a crossing, got never")
	}
	var crossed int64 = -1
	for dt := int64(1); dt < 10_000; dt++ {
		if direct.At(direct.Te+dt) >= threshold {
			crossed = dt
			break
		}
	}
	if crossed < 0 {
		t.Fatal("brute-force scan never crossed")
	}
	if got := int64(math.Ceil(*f.TicksToThreshold)); got != crossed {
		t.Fatalf("ceil(ticksToThreshold) = %d, brute-force scan crossed at +%d ticks", got, crossed)
	}

	// Exact solve agrees too.
	want := (threshold - direct.At(direct.Te)) / direct.Slope
	if math.Abs(*f.TicksToThreshold-want) > 1e-6 {
		t.Fatalf("ticksToThreshold %.12g, closed form %.12g", *f.TicksToThreshold, want)
	}
}

func TestTicksToThreshold(t *testing.T) {
	up := regression.ISB{Tb: 0, Te: 9, Base: 0, Slope: 2} // value 18 at te
	down := regression.ISB{Tb: 0, Te: 9, Base: 100, Slope: -3}
	flat := regression.ISB{Tb: 0, Te: 9, Base: 50, Slope: 0}
	cases := []struct {
		name      string
		model     regression.ISB
		threshold float64
		want      *float64
	}{
		{"rising toward", up, 30, ptr(6.0)},
		{"rising away (already past)", up, 10, nil},
		{"falling toward", down, 40, ptr(11.0)}, // value 73 at te, (40-73)/-3
		{"falling away", down, 200, nil},
		{"flat", flat, 60, nil},
		{"exactly at threshold", flat, 50, ptr(0.0)},
	}
	for _, tc := range cases {
		got := TicksToThreshold(tc.model, tc.threshold)
		switch {
		case (got == nil) != (tc.want == nil):
			t.Errorf("%s: got %v, want %v", tc.name, fmtPtr(got), fmtPtr(tc.want))
		case got != nil && math.Abs(*got-*tc.want) > 1e-12:
			t.Errorf("%s: got %g, want %g", tc.name, *got, *tc.want)
		}
	}
}

func ptr(v float64) *float64 { return &v }

func fmtPtr(p *float64) any {
	if p == nil {
		return "never"
	}
	return *p
}

func TestForecastR2(t *testing.T) {
	// Perfectly linear ticks: every unit mean sits on the aggregate line.
	linear := make([]float64, 40)
	for i := range linear {
		linear[i] = 2*float64(i) + 7
	}
	f, err := ForecastHistory(fitUnits(t, linear, 5), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.R2 < 1-1e-12 || f.R2 > 1 {
		t.Fatalf("linear series R2 = %g, want 1", f.R2)
	}

	// A sawtooth's unit means scatter around the flat aggregate line.
	saw := make([]float64, 40)
	for i := range saw {
		saw[i] = float64((i % 10) * 10)
	}
	f, err = ForecastHistory(fitUnits(t, saw, 5), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(f.R2 >= 0 && f.R2 < 0.9) {
		t.Fatalf("sawtooth R2 = %g, want well below 1", f.R2)
	}

	// Single-unit window: the model is the slot, R2 = 1 by convention.
	f, err = ForecastHistory(fitUnits(t, linear[:5], 5), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.R2 != 1 {
		t.Fatalf("single-unit R2 = %g, want 1", f.R2)
	}
}

func TestForecastRejects(t *testing.T) {
	pts := fitUnits(t, []float64{1, 2, 3, 4, 5, 6}, 3)
	if _, err := ForecastHistory(pts, 0, nil); !errors.Is(err, ErrArgs) {
		t.Fatalf("horizon 0: err = %v, want ErrArgs", err)
	}
	if _, err := ForecastHistory(nil, 5, nil); !errors.Is(err, ErrHistory) {
		t.Fatalf("empty history: err = %v, want ErrHistory", err)
	}
	gapped := []stream.HistoryPoint{pts[0], {Unit: pts[1].Unit + 1, ISB: pts[1].ISB}}
	if _, err := ForecastHistory(gapped, 5, nil); !errors.Is(err, ErrHistory) {
		t.Fatalf("gapped history: err = %v, want ErrHistory", err)
	}
}

func TestDivergence(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{1, 1, 0},
		{1, -1, 1},
		{1, 0, 1},
		{0, -2, 1},
		{2, 1, 1.0 / 3},
		{-2, -1, 1.0 / 3},
	}
	for _, tc := range cases {
		if got := Divergence(tc.a, tc.b); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("Divergence(%g,%g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

// testSchema is the D2 fanout-2 schema the serve tests use: 4×4 m-cells
// under 2×2 o-cells.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// tiltedSnapshot ingests a stream whose trend breaks halfway (ramp, then
// plateau) into a sharded tilted engine and returns the last snapshot.
func tiltedSnapshot(t *testing.T, shards int) *stream.Snapshot {
	t.Helper()
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           testSchema(t),
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
		TiltLevels: []tilt.Level{
			{Name: "quarter", Multiple: 1, Slots: 3},
			{Name: "hour", Multiple: 3, Slots: 4},
		},
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	const units = 13
	for tick := int64(0); tick < 4*units; tick++ {
		ramp := float64(tick)
		if tick > 2*units {
			ramp = float64(2 * units) // plateau: recent trend flattens
		}
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, ramp*float64(a+2*b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Ingest([]int32{0, 0}, 4*units, 0); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	return snap
}

// TestInsightDeterministicAcrossShards is the acceptance property at the
// subsystem level: forecasts and change scans computed from 1-, 4-, and
// 7-shard engines over the same stream are bitwise identical, because the
// merged snapshots are.
func TestInsightDeterministicAcrossShards(t *testing.T) {
	base := tiltedSnapshot(t, 1)
	threshold := 1e6
	baseScan := ScanChanges(base, 0, 0)
	if len(baseScan) == 0 {
		t.Fatal("trend-break stream scored no cells")
	}
	for _, shards := range []int{4, 7} {
		snap := tiltedSnapshot(t, shards)
		if !reflect.DeepEqual(ScanChanges(snap, 0, 0), baseScan) {
			t.Fatalf("ScanChanges differs between 1 and %d shards", shards)
		}
		for key := range base.History {
			want, errW := ForecastHistory(base.HistoryOf(key), 8, &threshold)
			got, errG := ForecastHistory(snap.HistoryOf(key), 8, &threshold)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("forecast error mismatch at %d shards: %v vs %v", shards, errW, errG)
			}
			if errW == nil && !reflect.DeepEqual(want, got) {
				t.Fatalf("forecast for %v differs between 1 and %d shards:\n%+v\n%+v",
					key, shards, want, got)
			}
		}
	}
}

// TestScanChangesSurfacesTrendBreak: the plateau stream's recent
// (fine-level) trend is flat while the long-horizon (coarse-level) trend
// still remembers the ramp — every o-cell diverges.
func TestScanChangesSurfacesTrendBreak(t *testing.T) {
	snap := tiltedSnapshot(t, 4)
	got := ScanChanges(snap, 0.5, 0)
	if len(got) != 4 {
		t.Fatalf("scored %d cells above 0.5, want all 4 o-cells", len(got))
	}
	for _, c := range got {
		if c.RecentName != "quarter" || c.LongName != "hour" {
			t.Fatalf("winning pair %s/%s, want quarter/hour", c.RecentName, c.LongName)
		}
		if math.Abs(c.RecentSlope) >= math.Abs(c.LongSlope) {
			t.Fatalf("recent slope %g should be flatter than long slope %g", c.RecentSlope, c.LongSlope)
		}
	}
	// Ranking: score descending, canonical key order on ties.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("ranking not score-descending at %d: %g > %g", i, got[i].Score, got[i-1].Score)
		}
		if got[i].Score == got[i-1].Score && cube.CompareKeys(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("tie at %d not in canonical key order", i)
		}
	}
	// Truncation and filtering.
	if top := ScanChanges(snap, 0.5, 2); len(top) != 2 || !reflect.DeepEqual(top, got[:2]) {
		t.Fatalf("k=2 truncation mismatch")
	}
	if none := ScanChanges(snap, 1.1, 0); len(none) != 0 {
		t.Fatalf("minScore above 1 still scored %d cells", len(none))
	}
}

// TestScanChangesFlat: flat-history engines have no second granularity —
// an empty scan, not an error.
func TestScanChangesFlat(t *testing.T) {
	eng, err := stream.NewEngine(stream.Config{
		Schema:           testSchema(t),
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := int64(0); tick < 12; tick++ {
		if _, err := eng.Ingest([]int32{0, 0}, tick, float64(tick)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ScanChanges(eng.Snapshot(), 0, 0); got != nil {
		t.Fatalf("flat engine scan = %v, want nil", got)
	}
}
