package regression

import (
	"fmt"

	"repro/internal/timeseries"
)

// FoldFunc identifies the SQL aggregate used to fold a block of fine ticks
// into one coarse tick (paper §6.2: "Different SQL aggregation functions
// can be used for folding, such as sum, avg, min, max, or last").
type FoldFunc int

// Folding aggregates.
const (
	FoldSum FoldFunc = iota
	FoldAvg
	FoldMin
	FoldMax
	FoldLast
)

// String returns the SQL-style name of the aggregate.
func (f FoldFunc) String() string {
	switch f {
	case FoldSum:
		return "sum"
	case FoldAvg:
		return "avg"
	case FoldMin:
		return "min"
	case FoldMax:
		return "max"
	case FoldLast:
		return "last"
	default:
		return fmt.Sprintf("FoldFunc(%d)", int(f))
	}
}

// Fold implements the third aggregation type of §6.2: folding k consecutive
// fine-granularity ticks into one coarse tick using the given aggregate.
// The series length must be an exact multiple of k. Coarse ticks are
// numbered starting at fine-tick tb/k semantics: coarse tick j covers fine
// ticks [tb + j·k, tb + (j+1)·k − 1], and the folded series starts at
// coarse tick 0.
func Fold(s *timeseries.Series, k int, f FoldFunc) (*timeseries.Series, error) {
	if s == nil || s.Len() == 0 {
		return nil, ErrEmpty
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: fold factor %d", ErrMismatch, k)
	}
	if s.Len()%k != 0 {
		return nil, fmt.Errorf("%w: series length %d not a multiple of fold factor %d",
			ErrMismatch, s.Len(), k)
	}
	m := s.Len() / k
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		block := s.Values[j*k : (j+1)*k]
		switch f {
		case FoldSum:
			var sum float64
			for _, v := range block {
				sum += v
			}
			out[j] = sum
		case FoldAvg:
			var sum float64
			for _, v := range block {
				sum += v
			}
			out[j] = sum / float64(k)
		case FoldMin:
			mn := block[0]
			for _, v := range block[1:] {
				if v < mn {
					mn = v
				}
			}
			out[j] = mn
		case FoldMax:
			mx := block[0]
			for _, v := range block[1:] {
				if v > mx {
					mx = v
				}
			}
			out[j] = mx
		case FoldLast:
			out[j] = block[k-1]
		default:
			return nil, fmt.Errorf("%w: unknown fold func %d", ErrMismatch, int(f))
		}
	}
	return timeseries.MustNew(0, out), nil
}

// FoldISB folds a fitted line directly, without materializing raw data.
// For the linear model ẑ(t) = α + β·t over [tb, tb+n·k−1] (n full blocks of
// k ticks), sum- and avg-folding of the *fitted* values are again exactly
// linear in the coarse tick j:
//
//	sum: Σ_{i=0..k−1} ẑ(tb+jk+i) = k·α + β·(k·tb + k(k−1)/2) + β·k²·j
//	avg: that divided by k.
//
// min/max/last folding of a line is the line's value at a block-fixed
// offset, so those are linear too. The coarse series starts at tick 0.
// The ISB interval length must be a multiple of k.
func FoldISB(r ISB, k int, f FoldFunc) (ISB, error) {
	if k <= 0 {
		return ISB{}, fmt.Errorf("%w: fold factor %d", ErrMismatch, k)
	}
	n := r.N()
	if n%int64(k) != 0 {
		return ISB{}, fmt.Errorf("%w: interval length %d not a multiple of fold factor %d",
			ErrMismatch, n, k)
	}
	m := n / int64(k)
	kf := float64(k)
	tbf := float64(r.Tb)
	var out ISB
	switch f {
	case FoldSum:
		base := kf*r.Base + r.Slope*(kf*tbf+kf*(kf-1)/2)
		out = ISB{Tb: 0, Te: m - 1, Base: base, Slope: r.Slope * kf * kf}
	case FoldAvg:
		base := r.Base + r.Slope*(tbf+(kf-1)/2)
		out = ISB{Tb: 0, Te: m - 1, Base: base, Slope: r.Slope * kf}
	case FoldMin:
		// Line value at the block's smallest point: offset 0 for β≥0, k−1 otherwise.
		off := 0.0
		if r.Slope < 0 {
			off = kf - 1
		}
		out = ISB{Tb: 0, Te: m - 1, Base: r.Base + r.Slope*(tbf+off), Slope: r.Slope * kf}
	case FoldMax:
		off := kf - 1
		if r.Slope < 0 {
			off = 0
		}
		out = ISB{Tb: 0, Te: m - 1, Base: r.Base + r.Slope*(tbf+off), Slope: r.Slope * kf}
	case FoldLast:
		out = ISB{Tb: 0, Te: m - 1, Base: r.Base + r.Slope*(tbf+kf-1), Slope: r.Slope * kf}
	default:
		return ISB{}, fmt.Errorf("%w: unknown fold func %d", ErrMismatch, int(f))
	}
	// The base above is the folded value at coarse tick 0 in every case;
	// a single-block fold therefore just zeroes the slope, matching Fit's
	// convention that a one-point series has slope 0.
	if m == 1 {
		out.Slope = 0
	}
	return out, nil
}
