package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func TestAccumulatorMatchesBatchFit(t *testing.T) {
	g := timeseries.NewSynth(41)
	s := g.Linear(20, 40, 1.5, 0.3, 0.5)
	acc := NewAccumulator(s.Interval.Tb)
	for i, z := range s.Values {
		if err := acc.Add(s.Interval.Tb+int64(i), z); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch := MustFit(s)
	if !almostEq(snap.Base, batch.Base, 1e-9) || !almostEq(snap.Slope, batch.Slope, 1e-9) {
		t.Fatalf("online %v vs batch %v", snap, batch)
	}
}

func TestAccumulatorTickDiscipline(t *testing.T) {
	acc := NewAccumulator(5)
	if acc.NextTick() != 5 {
		t.Fatalf("NextTick = %d", acc.NextTick())
	}
	if err := acc.Add(6, 1); err == nil {
		t.Fatal("expected out-of-order error")
	}
	if err := acc.Add(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(5, 1); err == nil {
		t.Fatal("expected duplicate-tick error")
	}
	if acc.N() != 1 || acc.Empty() {
		t.Fatalf("N = %d, Empty = %v", acc.N(), acc.Empty())
	}
}

func TestAccumulatorNonFinite(t *testing.T) {
	acc := NewAccumulator(0)
	if err := acc.Add(0, math.NaN()); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
	if err := acc.Add(0, math.Inf(-1)); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
	if !acc.Empty() {
		t.Fatal("failed adds must not change state")
	}
}

func TestAccumulatorEmptySnapshot(t *testing.T) {
	acc := NewAccumulator(0)
	if _, err := acc.Snapshot(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestAccumulatorSinglePoint(t *testing.T) {
	acc := NewAccumulator(9)
	if err := acc.Add(9, 4.25); err != nil {
		t.Fatal(err)
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Slope != 0 || snap.Base != 4.25 || snap.Tb != 9 || snap.Te != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestAccumulatorReset(t *testing.T) {
	acc := NewAccumulator(0)
	_ = acc.Add(0, 1)
	_ = acc.Add(1, 2)
	acc.Reset(100)
	if !acc.Empty() || acc.NextTick() != 100 {
		t.Fatalf("after reset: N=%d next=%d", acc.N(), acc.NextTick())
	}
	_ = acc.Add(100, 7)
	snap, _ := acc.Snapshot()
	if snap.Base != 7 {
		t.Fatalf("snapshot after reset = %v", snap)
	}
}

// Property: AdvanceTo must be bit-for-bit interchangeable with the
// one-Add-per-tick zero fill it replaces, from any state (empty, mid-run,
// after negative and negative-zero observations) and for any gap length.
func TestAccumulatorAdvanceToMatchesZeroAdds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(57))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := int64(r.Intn(200) - 100)
		bulk := NewAccumulator(tb)
		loop := NewAccumulator(tb)
		for step := 0; step < 20; step++ {
			if r.Intn(2) == 0 {
				z := r.NormFloat64() * 8
				switch r.Intn(4) {
				case 0:
					z = 0
				case 1:
					z = math.Copysign(0, -1) // negative zero input
				}
				if err := bulk.Add(bulk.NextTick(), z); err != nil {
					return false
				}
				if err := loop.Add(loop.NextTick(), z); err != nil {
					return false
				}
			} else {
				gap := int64(r.Intn(50))
				bulk.AdvanceTo(bulk.NextTick() + gap)
				for i := int64(0); i < gap; i++ {
					if err := loop.Add(loop.NextTick(), 0); err != nil {
						return false
					}
				}
			}
			if *bulk != *loop {
				return false
			}
			if bulk.N() > 0 {
				sb, err1 := bulk.Snapshot()
				sl, err2 := loop.Snapshot()
				if err1 != nil || err2 != nil || sb != sl {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// AdvanceTo to the current or an earlier tick must be a no-op.
func TestAccumulatorAdvanceToNoOp(t *testing.T) {
	acc := NewAccumulator(10)
	_ = acc.Add(10, 3)
	before := *acc
	acc.AdvanceTo(11) // == NextTick
	acc.AdvanceTo(5)  // before tb
	if *acc != before {
		t.Fatalf("AdvanceTo changed state: %+v vs %+v", *acc, before)
	}
	acc.AdvanceTo(14)
	if acc.N() != 4 || acc.NextTick() != 14 {
		t.Fatalf("after AdvanceTo(14): N=%d next=%d", acc.N(), acc.NextTick())
	}
}

// Property: incremental snapshots at every prefix equal batch fits of the
// prefix series.
func TestAccumulatorPrefixProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(51))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		tb := int64(r.Intn(100) - 50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 4
		}
		full := timeseries.MustNew(tb, vals)
		acc := NewAccumulator(tb)
		for i := 0; i < n; i++ {
			if err := acc.Add(tb+int64(i), vals[i]); err != nil {
				return false
			}
			snap, err := acc.Snapshot()
			if err != nil {
				return false
			}
			prefix, err := full.Slice(tb, tb+int64(i))
			if err != nil {
				return false
			}
			batch := MustFit(prefix)
			if !almostEq(snap.Base, batch.Base, 1e-7) || !almostEq(snap.Slope, batch.Slope, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
