// Package regression implements the compressed regression measure at the
// center of the paper (§3): least-squares linear fits of time series, their
// ISB (Interval, Slope, Base) and IntVal compact representations, and the
// two lossless aggregation theorems that let a regression cube roll cells up
// without ever touching raw stream data:
//
//   - Theorem 3.2 — aggregation on a standard dimension (series summed
//     pointwise over an identical interval): slopes and bases add.
//   - Theorem 3.3 — aggregation on the time dimension (intervals
//     concatenated): a closed-form recombination using only per-segment
//     ISBs.
//
// The package also provides Lemma 3.2 (the sum-of-variance-squares closed
// form), the IntVal equivalence of §3.2, an online accumulator for stream
// ingestion, and the §6.2 folding extension.
package regression

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// ErrMismatch is returned when aggregation preconditions are violated.
var ErrMismatch = errors.New("regression: aggregation precondition violated")

// ErrEmpty is returned when an operation receives no inputs.
var ErrEmpty = errors.New("regression: no inputs")

// ErrNonFinite is returned when input data contains NaN or ±Inf.
var ErrNonFinite = errors.New("regression: non-finite input value")

// ISB is the compressed representation of the least-squares linear fit of a
// time series over [Tb, Te] (paper §3.2):
//
//	ẑ(t) = Base + Slope·t
//
// Theorem 3.1 shows this 4-tuple is sufficient to derive the regression
// model of every aggregated cell, and that no proper subset is.
type ISB struct {
	Tb, Te int64   // time interval, inclusive
	Base   float64 // α̂, the intercept of the fit
	Slope  float64 // β̂, the slope of the fit
}

// IntVal is the equivalent endpoint representation of §3.2: the interval
// plus the fitted values at tb and te. ISB and IntVal are interconvertible.
type IntVal struct {
	Tb, Te int64
	Zb, Ze float64 // fitted values ẑ(tb), ẑ(te)
}

// SVS returns the sum of variance squares Σ(t-t̄)² for an interval with n
// ticks, using the closed form of Lemma 3.2: (n³ − n)/12. The value is
// independent of where the interval starts.
func SVS(n int64) float64 {
	nf := float64(n)
	return (nf*nf*nf - nf) / 12
}

// Fit computes the least-squares linear fit of a raw series (Lemma 3.1).
// For a single-point series the slope is defined as 0 and the base as the
// point's value (the only degenerate case of the normal equations).
func Fit(s *timeseries.Series) (ISB, error) {
	if s == nil || s.Len() == 0 {
		return ISB{}, ErrEmpty
	}
	if !s.IsFinite() {
		return ISB{}, ErrNonFinite
	}
	n := int64(s.Len())
	isb := ISB{Tb: s.Interval.Tb, Te: s.Interval.Te}
	if n == 1 {
		isb.Base = s.Values[0]
		return isb, nil
	}
	tbar := s.Interval.Mid()
	var num float64
	for i, z := range s.Values {
		t := float64(s.Interval.Tb + int64(i))
		num += (t - tbar) * z
	}
	isb.Slope = num / SVS(n)
	isb.Base = s.Mean() - isb.Slope*tbar
	return isb, nil
}

// MustFit is Fit for tests and examples; it panics on error.
func MustFit(s *timeseries.Series) ISB {
	isb, err := Fit(s)
	if err != nil {
		panic(err)
	}
	return isb
}

// N returns the number of ticks te − tb + 1.
func (r ISB) N() int64 { return r.Te - r.Tb + 1 }

// Interval returns the underlying time interval.
func (r ISB) Interval() timeseries.Interval {
	return timeseries.Interval{Tb: r.Tb, Te: r.Te}
}

// TBar returns the mean time t̄ = (tb + te)/2.
func (r ISB) TBar() float64 { return float64(r.Tb+r.Te) / 2 }

// At returns the fitted value ẑ(t) = α̂ + β̂·t.
func (r ISB) At(t int64) float64 { return r.Base + r.Slope*float64(t) }

// Mean returns z̄ = α̂ + β̂·t̄, the mean of the fitted (and of the original)
// series — a consequence of the fit passing through (t̄, z̄).
func (r ISB) Mean() float64 { return r.Base + r.Slope*r.TBar() }

// Sum returns n·z̄, the total of the original series, recoverable exactly
// from the ISB because the fit preserves the mean.
func (r ISB) Sum() float64 { return float64(r.N()) * r.Mean() }

// ToIntVal converts to the endpoint representation.
func (r ISB) ToIntVal() IntVal {
	return IntVal{Tb: r.Tb, Te: r.Te, Zb: r.At(r.Tb), Ze: r.At(r.Te)}
}

// ToISB converts the endpoint representation back to ISB. For a one-tick
// interval the slope is 0 by convention (matching Fit).
func (v IntVal) ToISB() ISB {
	if v.Te == v.Tb {
		return ISB{Tb: v.Tb, Te: v.Te, Base: v.Zb, Slope: 0}
	}
	slope := (v.Ze - v.Zb) / float64(v.Te-v.Tb)
	return ISB{Tb: v.Tb, Te: v.Te, Base: v.Zb - slope*float64(v.Tb), Slope: slope}
}

// Eval materializes the fitted line as a raw series, the "linear regression
// curve" of Figure 1(b).
func (r ISB) Eval() *timeseries.Series {
	vals := make([]float64, r.N())
	for i := range vals {
		vals[i] = r.At(r.Tb + int64(i))
	}
	return timeseries.MustNew(r.Tb, vals)
}

// IsFinite reports whether both parameters are finite.
func (r ISB) IsFinite() bool {
	return !math.IsNaN(r.Base) && !math.IsInf(r.Base, 0) &&
		!math.IsNaN(r.Slope) && !math.IsInf(r.Slope, 0)
}

// String renders the ISB like the paper's captions: ([tb,te], base, slope).
func (r ISB) String() string {
	return fmt.Sprintf("([%d,%d], %g, %g)", r.Tb, r.Te, r.Base, r.Slope)
}

// AggregateStandard implements Theorem 3.2: the ISB of a cell aggregated on
// a standard dimension from descendants c1..cK (whose series are summed
// pointwise). All inputs must cover the same interval.
func AggregateStandard(isbs ...ISB) (ISB, error) {
	if len(isbs) == 0 {
		return ISB{}, ErrEmpty
	}
	out := ISB{Tb: isbs[0].Tb, Te: isbs[0].Te}
	for i, r := range isbs {
		if r.Tb != out.Tb || r.Te != out.Te {
			return ISB{}, fmt.Errorf("%w: descendant %d has interval [%d,%d], want [%d,%d]",
				ErrMismatch, i, r.Tb, r.Te, out.Tb, out.Te)
		}
		out.Base += r.Base
		out.Slope += r.Slope
	}
	return out, nil
}

// AggregateTime implements Theorem 3.3: the ISB of a cell aggregated on the
// time dimension from descendants whose intervals form a contiguous,
// ordered partition of the result interval.
//
// With nᵢ the segment lengths, Sᵢ = nᵢ·z̄ᵢ the segment sums, and
// nₐ = Σnᵢ:
//
//	β̂ₐ = Σᵢ (nᵢ³−nᵢ)/(nₐ³−nₐ)·β̂ᵢ
//	    + 6·Σᵢ (2·Σ_{j<i} nⱼ + nᵢ − nₐ)/(nₐ³−nₐ) · (nₐSᵢ − nᵢSₐ)/nₐ
//	α̂ₐ = z̄ₐ − β̂ₐ·t̄ₐ
func AggregateTime(isbs ...ISB) (ISB, error) {
	if len(isbs) == 0 {
		return ISB{}, ErrEmpty
	}
	for i := 1; i < len(isbs); i++ {
		if isbs[i].Tb != isbs[i-1].Te+1 {
			return ISB{}, fmt.Errorf("%w: segment %d starts at %d, want %d",
				ErrMismatch, i, isbs[i].Tb, isbs[i-1].Te+1)
		}
	}
	tb := isbs[0].Tb
	te := isbs[len(isbs)-1].Te
	na := float64(te - tb + 1)

	// Segment sums Sᵢ and the grand sum Sₐ, derivable from ISBs alone.
	sums := make([]float64, len(isbs))
	var sa float64
	for i, r := range isbs {
		sums[i] = r.Sum()
		sa += sums[i]
	}

	out := ISB{Tb: tb, Te: te}
	if na == 1 {
		out.Base = sa
		return out, nil
	}

	denom := na*na*na - na
	var beta float64
	var prefix float64 // Σ_{j<i} nⱼ
	for i, r := range isbs {
		ni := float64(r.N())
		beta += (ni*ni*ni - ni) / denom * r.Slope
		beta += 6 * (2*prefix + ni - na) / denom * (na*sums[i] - ni*sa) / na
		prefix += ni
	}
	out.Slope = beta

	zbar := sa / na
	tbar := float64(tb+te) / 2
	out.Base = zbar - beta*tbar
	return out, nil
}

// ResidualStats reports goodness-of-fit measures that require the raw
// series (they are deliberately *not* part of the ISB — Theorem 3.1(b)).
type ResidualStats struct {
	RSS float64 // residual sum of squares Σ(z−ẑ)²
	TSS float64 // total sum of squares Σ(z−z̄)²
	R2  float64 // 1 − RSS/TSS (1 when TSS = 0 and RSS = 0)
}

// Residuals computes fit diagnostics of isb against the raw series s. The
// series must cover exactly the ISB interval.
func Residuals(s *timeseries.Series, isb ISB) (ResidualStats, error) {
	if s == nil || s.Len() == 0 {
		return ResidualStats{}, ErrEmpty
	}
	if s.Interval.Tb != isb.Tb || s.Interval.Te != isb.Te {
		return ResidualStats{}, fmt.Errorf("%w: series %s vs ISB [%d,%d]",
			ErrMismatch, s.Interval, isb.Tb, isb.Te)
	}
	mean := s.Mean()
	var st ResidualStats
	for i, z := range s.Values {
		t := s.Interval.Tb + int64(i)
		d := z - isb.At(t)
		st.RSS += d * d
		m := z - mean
		st.TSS += m * m
	}
	switch {
	case st.TSS > 0:
		st.R2 = 1 - st.RSS/st.TSS
	case st.RSS == 0:
		st.R2 = 1
	default:
		st.R2 = 0
	}
	return st, nil
}
