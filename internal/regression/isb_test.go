package regression

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Example 2 of the paper: z(t) over [0,9]. Expected fit computed by hand:
// z̄ = 0.686, SVS(10) = 82.5, β̂ = 1.99/82.5, α̂ = z̄ − β̂·4.5.
func TestExample2Fit(t *testing.T) {
	s := timeseries.MustNew(0, []float64{0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56})
	isb, err := Fit(s)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 1.99 / 82.5
	wantBase := 0.686 - wantSlope*4.5
	if !almostEq(isb.Slope, wantSlope, 1e-12) {
		t.Fatalf("slope = %v, want %v", isb.Slope, wantSlope)
	}
	if !almostEq(isb.Base, wantBase, 1e-12) {
		t.Fatalf("base = %v, want %v", isb.Base, wantBase)
	}
	if isb.Tb != 0 || isb.Te != 9 {
		t.Fatalf("interval = [%d,%d]", isb.Tb, isb.Te)
	}
}

// Figure 2 of the paper gives the ISBs of z1, z2, and z1+z2; by Theorem 3.2
// the parameters must add. We use the printed values as golden vectors.
func TestFigure2Aggregation(t *testing.T) {
	z1 := ISB{Tb: 0, Te: 19, Base: 0.540995, Slope: 0.0318379}
	z2 := ISB{Tb: 0, Te: 19, Base: 0.294875, Slope: 0.0493375}
	agg, err := AggregateStandard(z1, z2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(agg.Base, 0.83587, 1e-5) {
		t.Fatalf("base = %v, want 0.83587", agg.Base)
	}
	if !almostEq(agg.Slope, 0.0811754, 1e-6) {
		t.Fatalf("slope = %v, want 0.0811754", agg.Slope)
	}
}

// Figure 3 of the paper: segments [0,9] and [10,19] with printed ISBs must
// aggregate on the time dimension to the printed total ISB (Theorem 3.3).
func TestFigure3TimeAggregation(t *testing.T) {
	seg1 := ISB{Tb: 0, Te: 9, Base: 0.582995, Slope: 0.0240189}
	seg2 := ISB{Tb: 10, Te: 19, Base: 0.459046, Slope: 0.047474}
	agg, err := AggregateTime(seg1, seg2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(agg.Base, 0.509033, 1e-5) {
		t.Fatalf("base = %v, want 0.509033", agg.Base)
	}
	if !almostEq(agg.Slope, 0.0431806, 1e-6) {
		t.Fatalf("slope = %v, want 0.0431806", agg.Slope)
	}
	if agg.Tb != 0 || agg.Te != 19 {
		t.Fatalf("interval = [%d,%d]", agg.Tb, agg.Te)
	}
}

func TestSVSClosedForm(t *testing.T) {
	// Direct check of Lemma 3.2 against brute force for several n and i.
	for _, n := range []int64{1, 2, 3, 10, 31, 100} {
		for _, start := range []int64{0, 5, -7} {
			var mean float64
			for j := int64(0); j < n; j++ {
				mean += float64(start + j)
			}
			mean /= float64(n)
			var brute float64
			for j := int64(0); j < n; j++ {
				d := float64(start+j) - mean
				brute += d * d
			}
			if !almostEq(SVS(n), brute, 1e-9) && !(SVS(n) == 0 && brute == 0) {
				t.Fatalf("SVS(%d) = %g, brute(start=%d) = %g", n, SVS(n), start, brute)
			}
		}
	}
}

func TestFitDegenerateCases(t *testing.T) {
	single := timeseries.MustNew(42, []float64{3.5})
	isb, err := Fit(single)
	if err != nil {
		t.Fatal(err)
	}
	if isb.Slope != 0 || isb.Base != 3.5 {
		t.Fatalf("single-point fit = %v", isb)
	}
	if isb.N() != 1 {
		t.Fatalf("N = %d", isb.N())
	}

	if _, err := Fit(nil); err == nil {
		t.Fatal("expected ErrEmpty for nil series")
	}
	bad := timeseries.MustNew(0, []float64{1, math.NaN()})
	if _, err := Fit(bad); err == nil {
		t.Fatal("expected ErrNonFinite")
	}
}

func TestFitConstantSeries(t *testing.T) {
	s := timeseries.Constant(0, 20, 5)
	isb := MustFit(s)
	if !almostEq(isb.Slope, 0, 1e-12) && isb.Slope != 0 {
		t.Fatalf("slope of constant series = %g", isb.Slope)
	}
	if !almostEq(isb.Base, 5, 1e-12) {
		t.Fatalf("base = %g", isb.Base)
	}
}

func TestFitExactLine(t *testing.T) {
	s := timeseries.Ramp(7, 15, 2.5, -0.75)
	isb := MustFit(s)
	if !almostEq(isb.Slope, -0.75, 1e-10) || !almostEq(isb.Base, 2.5, 1e-10) {
		t.Fatalf("fit of exact line = %v", isb)
	}
	// The fitted curve must reproduce the input exactly.
	ev := isb.Eval()
	for i := range ev.Values {
		if !almostEq(ev.Values[i], s.Values[i], 1e-10) {
			t.Fatalf("Eval[%d] = %g, want %g", i, ev.Values[i], s.Values[i])
		}
	}
}

func TestMustFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFit(nil)
}

func TestISBAccessors(t *testing.T) {
	r := ISB{Tb: 0, Te: 9, Base: 1, Slope: 0.5}
	if r.TBar() != 4.5 {
		t.Fatalf("TBar = %g", r.TBar())
	}
	if !almostEq(r.Mean(), 1+0.5*4.5, 1e-12) {
		t.Fatalf("Mean = %g", r.Mean())
	}
	if !almostEq(r.Sum(), 10*(1+0.5*4.5), 1e-12) {
		t.Fatalf("Sum = %g", r.Sum())
	}
	if r.At(4) != 3 {
		t.Fatalf("At(4) = %g", r.At(4))
	}
	if r.Interval() != (timeseries.Interval{Tb: 0, Te: 9}) {
		t.Fatal("Interval mismatch")
	}
	if r.String() != "([0,9], 1, 0.5)" {
		t.Fatalf("String = %q", r.String())
	}
	if !r.IsFinite() {
		t.Fatal("finite ISB misreported")
	}
	if (ISB{Base: math.NaN()}).IsFinite() {
		t.Fatal("NaN base not caught")
	}
	if (ISB{Slope: math.Inf(1)}).IsFinite() {
		t.Fatal("Inf slope not caught")
	}
}

// The mean preservation property: Fit's line passes through (t̄, z̄), so
// ISB.Sum() recovers the raw series total exactly.
func TestSumRecoversRawTotal(t *testing.T) {
	g := timeseries.NewSynth(21)
	s := g.Linear(100, 57, 3, -0.2, 2)
	isb := MustFit(s)
	if !almostEq(isb.Sum(), s.Sum(), 1e-9) {
		t.Fatalf("ISB.Sum = %g, raw = %g", isb.Sum(), s.Sum())
	}
}

func TestIntValRoundTrip(t *testing.T) {
	r := ISB{Tb: 3, Te: 17, Base: -1.25, Slope: 0.4}
	back := r.ToIntVal().ToISB()
	if !almostEq(back.Base, r.Base, 1e-12) || !almostEq(back.Slope, r.Slope, 1e-12) ||
		back.Tb != r.Tb || back.Te != r.Te {
		t.Fatalf("round trip: %v -> %v", r, back)
	}
}

func TestIntValSinglePoint(t *testing.T) {
	v := IntVal{Tb: 5, Te: 5, Zb: 2, Ze: 2}
	r := v.ToISB()
	if r.Slope != 0 || r.Base != 2 {
		t.Fatalf("single-point IntVal -> %v", r)
	}
}

func TestAggregateStandardErrors(t *testing.T) {
	if _, err := AggregateStandard(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	a := ISB{Tb: 0, Te: 9}
	b := ISB{Tb: 0, Te: 8}
	if _, err := AggregateStandard(a, b); err == nil {
		t.Fatal("expected interval mismatch")
	}
}

func TestAggregateTimeErrors(t *testing.T) {
	if _, err := AggregateTime(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	a := ISB{Tb: 0, Te: 9}
	gap := ISB{Tb: 11, Te: 15}
	if _, err := AggregateTime(a, gap); err == nil {
		t.Fatal("expected adjacency error")
	}
}

func TestAggregateTimeSingleSegmentIdentity(t *testing.T) {
	r := ISB{Tb: 4, Te: 13, Base: 2, Slope: -0.3}
	out, err := AggregateTime(r)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out.Base, r.Base, 1e-10) || !almostEq(out.Slope, r.Slope, 1e-10) {
		t.Fatalf("identity aggregation changed ISB: %v -> %v", r, out)
	}
}

func TestAggregateTimeSinglePointSegments(t *testing.T) {
	// Three one-tick segments forming the line z(t)=t over [0,2].
	segs := []ISB{
		{Tb: 0, Te: 0, Base: 0, Slope: 0},
		{Tb: 1, Te: 1, Base: 1, Slope: 0},
		{Tb: 2, Te: 2, Base: 2, Slope: 0},
	}
	out, err := AggregateTime(segs...)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out.Slope, 1, 1e-10) || !almostEq(out.Base, 0, 1e-10) {
		t.Fatalf("aggregate of point segments = %v, want slope 1 base 0", out)
	}
}

func TestAggregateTimeSinglePointTotal(t *testing.T) {
	out, err := AggregateTime(ISB{Tb: 7, Te: 7, Base: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Base != 3 || out.Slope != 0 {
		t.Fatalf("got %v", out)
	}
}

// Theorem 3.1(b): the independence examples from the proof. Pairs of series
// that agree on a proper ISB subset must disagree on the rest.
func TestISBComponentIndependence(t *testing.T) {
	// tb: z1 over [0,2] vs z2 over [1,2], both all-zero.
	z1 := MustFit(timeseries.MustNew(0, []float64{0, 0, 0}))
	z2 := MustFit(timeseries.MustNew(1, []float64{0, 0}))
	if z1.Te != z2.Te || z1.Base != z2.Base || z1.Slope != z2.Slope {
		t.Fatal("proof setup: z1, z2 should agree on te, base, slope")
	}
	if z1.Tb == z2.Tb {
		t.Fatal("tb must distinguish them")
	}
	// base: 0,0 vs 1,1 over [0,1] share slope but not base.
	a := MustFit(timeseries.MustNew(0, []float64{0, 0}))
	b := MustFit(timeseries.MustNew(0, []float64{1, 1}))
	if a.Slope != b.Slope {
		t.Fatal("slopes should agree")
	}
	if a.Base == b.Base {
		t.Fatal("bases must differ")
	}
	// slope: 0,0 vs 0,1 over [0,1] share base but not slope.
	c := MustFit(timeseries.MustNew(0, []float64{0, 1}))
	if !almostEq(a.Base, c.Base, 1e-12) {
		t.Fatalf("bases should agree: %g vs %g", a.Base, c.Base)
	}
	if a.Slope == c.Slope {
		t.Fatal("slopes must differ")
	}
}

// Property: Theorem 3.2 — aggregating ISBs on a standard dimension equals
// fitting the pointwise-summed raw series. Random series, random K.
func TestTheorem32Property(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(31))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(80)
		k := 1 + r.Intn(6)
		tb := int64(r.Intn(200) - 100)
		series := make([]*timeseries.Series, k)
		isbs := make([]ISB, k)
		for i := 0; i < k; i++ {
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = r.NormFloat64() * 10
			}
			series[i] = timeseries.MustNew(tb, vals)
			isbs[i] = MustFit(series[i])
		}
		sum, err := timeseries.Add(series...)
		if err != nil {
			return false
		}
		direct := MustFit(sum)
		agg, err := AggregateStandard(isbs...)
		if err != nil {
			return false
		}
		return almostEq(agg.Base, direct.Base, 1e-8) && almostEq(agg.Slope, direct.Slope, 1e-8)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 3.3 — aggregating ISBs on the time dimension equals
// fitting the concatenated raw series. Random series cut at random points.
func TestTheorem33Property(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(32))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(120)
		tb := int64(r.Intn(200) - 100)
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = r.NormFloat64() * 5
		}
		full := timeseries.MustNew(tb, vals)
		direct := MustFit(full)

		// Random partition into 1..6 contiguous segments (never more than
		// the n−1 available cut positions, or the draw below cannot
		// produce enough distinct cuts).
		maxK := 6
		if n-1 < maxK-1 {
			maxK = n // n ≥ 3, so maxK ≥ 3 segments still exercised
		}
		k := 1 + r.Intn(maxK)
		cuts := map[int64]bool{}
		for len(cuts) < k-1 {
			cuts[tb+1+int64(r.Intn(n-1))] = true // segment start positions
		}
		starts := []int64{tb}
		for t0 := tb + 1; t0 < tb+int64(n); t0++ {
			if cuts[t0] {
				starts = append(starts, t0)
			}
		}
		var isbs []ISB
		for i, s0 := range starts {
			e0 := full.Interval.Te
			if i+1 < len(starts) {
				e0 = starts[i+1] - 1
			}
			seg, err := full.Slice(s0, e0)
			if err != nil {
				return false
			}
			isbs = append(isbs, MustFit(seg))
		}
		agg, err := AggregateTime(isbs...)
		if err != nil {
			return false
		}
		return almostEq(agg.Base, direct.Base, 1e-7) && almostEq(agg.Slope, direct.Slope, 1e-7) &&
			agg.Tb == direct.Tb && agg.Te == direct.Te
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the two theorems commute — aggregating K series over a split
// time interval gives the same result whether standard- or time-dimension
// aggregation is applied first.
func TestTheoremsCommuteProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(33))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nLeft := 2 + r.Intn(30)
		nRight := 2 + r.Intn(30)
		k := 2 + r.Intn(4)
		tb := int64(r.Intn(50))
		mid := tb + int64(nLeft) - 1
		te := mid + int64(nRight)

		left := make([]*timeseries.Series, k)
		right := make([]*timeseries.Series, k)
		for i := 0; i < k; i++ {
			lv := make([]float64, nLeft)
			rv := make([]float64, nRight)
			for j := range lv {
				lv[j] = r.NormFloat64()
			}
			for j := range rv {
				rv[j] = r.NormFloat64()
			}
			left[i] = timeseries.MustNew(tb, lv)
			right[i] = timeseries.MustNew(mid+1, rv)
		}

		// Path A: standard-aggregate each half, then time-aggregate.
		var leftISBs, rightISBs []ISB
		for i := 0; i < k; i++ {
			leftISBs = append(leftISBs, MustFit(left[i]))
			rightISBs = append(rightISBs, MustFit(right[i]))
		}
		stdLeft, err := AggregateStandard(leftISBs...)
		if err != nil {
			return false
		}
		stdRight, err := AggregateStandard(rightISBs...)
		if err != nil {
			return false
		}
		pathA, err := AggregateTime(stdLeft, stdRight)
		if err != nil {
			return false
		}

		// Path B: time-aggregate each series, then standard-aggregate.
		var perSeries []ISB
		for i := 0; i < k; i++ {
			ti, err := AggregateTime(MustFit(left[i]), MustFit(right[i]))
			if err != nil {
				return false
			}
			perSeries = append(perSeries, ti)
		}
		pathB, err := AggregateStandard(perSeries...)
		if err != nil {
			return false
		}
		_ = te
		return almostEq(pathA.Base, pathB.Base, 1e-7) && almostEq(pathA.Slope, pathB.Slope, 1e-7)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: ISB ↔ IntVal round trip is exact for random ISBs.
func TestIntValRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(34))}
	f := func(tbRaw int16, span uint8, base, slope float64) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(slope) || math.IsInf(slope, 0) {
			return true // skip pathological inputs
		}
		// Clamp magnitudes so float cancellation stays in tolerance.
		base = math.Mod(base, 1e6)
		slope = math.Mod(slope, 1e4)
		tb := int64(tbRaw)
		r := ISB{Tb: tb, Te: tb + int64(span), Base: base, Slope: slope}
		back := r.ToIntVal().ToISB()
		if span == 0 {
			// A one-tick interval cannot carry a slope: the round trip
			// normalizes to the single-point convention but must keep the
			// fitted value at that tick.
			return back.Slope == 0 && almostEq(back.At(tb), r.At(tb), 1e-7)
		}
		return almostEq(back.Base, r.Base, 1e-7) && almostEq(back.Slope, r.Slope, 1e-7)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestResiduals(t *testing.T) {
	// Exact line: RSS 0, R² 1.
	line := timeseries.Ramp(0, 10, 1, 2)
	isb := MustFit(line)
	st, err := Residuals(line, isb)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(st.RSS, 0, 1e-15) && st.RSS > 1e-15 {
		t.Fatalf("RSS = %g", st.RSS)
	}
	if !almostEq(st.R2, 1, 1e-9) {
		t.Fatalf("R2 = %g", st.R2)
	}

	// Constant series: TSS 0 and RSS 0 → R² defined as 1.
	c := timeseries.Constant(0, 5, 3)
	stc, err := Residuals(c, MustFit(c))
	if err != nil {
		t.Fatal(err)
	}
	if stc.R2 != 1 {
		t.Fatalf("R2 of perfect constant fit = %g", stc.R2)
	}

	// Mismatched interval errors.
	if _, err := Residuals(line, ISB{Tb: 0, Te: 4}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := Residuals(nil, isb); err == nil {
		t.Fatal("expected empty error")
	}

	// A series symmetric in time ({1,−1,−1,1}) fits slope 0, so the line
	// explains none of the variance: R² must be 0.
	wiggle := timeseries.MustNew(0, []float64{1, -1, -1, 1})
	flat := MustFit(wiggle)
	if flat.Slope != 0 {
		t.Fatalf("symmetric series slope = %g, want 0", flat.Slope)
	}
	stw, err := Residuals(wiggle, flat)
	if err != nil {
		t.Fatal(err)
	}
	if stw.R2 != 0 {
		t.Fatalf("R2 = %g, want 0", stw.R2)
	}
}

func TestResidualsDegenerateZeroFit(t *testing.T) {
	// TSS = 0 but RSS > 0 (deliberately wrong ISB): R² must be 0, not negative ∞.
	c := timeseries.Constant(0, 4, 2)
	st, err := Residuals(c, ISB{Tb: 0, Te: 3, Base: 0, Slope: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.R2 != 0 {
		t.Fatalf("R2 = %g, want 0", st.R2)
	}
}
