package regression

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timeseries"
)

func TestFoldFuncString(t *testing.T) {
	names := map[FoldFunc]string{
		FoldSum: "sum", FoldAvg: "avg", FoldMin: "min", FoldMax: "max", FoldLast: "last",
	}
	for f, want := range names {
		if f.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if FoldFunc(99).String() != "FoldFunc(99)" {
		t.Fatalf("unknown fold name = %q", FoldFunc(99).String())
	}
}

func TestFoldSumAvg(t *testing.T) {
	s := timeseries.MustNew(0, []float64{1, 2, 3, 4, 5, 6})
	sum, err := Fold(s, 3, FoldSum)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[0] != 6 || sum.Values[1] != 15 {
		t.Fatalf("sum fold = %v", sum.Values)
	}
	avg, _ := Fold(s, 3, FoldAvg)
	if avg.Values[0] != 2 || avg.Values[1] != 5 {
		t.Fatalf("avg fold = %v", avg.Values)
	}
}

func TestFoldMinMaxLast(t *testing.T) {
	s := timeseries.MustNew(0, []float64{5, 1, 3, 2, 8, 4})
	mn, _ := Fold(s, 3, FoldMin)
	if mn.Values[0] != 1 || mn.Values[1] != 2 {
		t.Fatalf("min fold = %v", mn.Values)
	}
	mx, _ := Fold(s, 3, FoldMax)
	if mx.Values[0] != 5 || mx.Values[1] != 8 {
		t.Fatalf("max fold = %v", mx.Values)
	}
	last, _ := Fold(s, 3, FoldLast)
	if last.Values[0] != 3 || last.Values[1] != 4 {
		t.Fatalf("last fold = %v", last.Values)
	}
}

func TestFoldErrors(t *testing.T) {
	s := timeseries.MustNew(0, []float64{1, 2, 3})
	if _, err := Fold(s, 2, FoldSum); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Fold(s, 0, FoldSum); err == nil {
		t.Fatal("expected factor error")
	}
	if _, err := Fold(nil, 1, FoldSum); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Fold(s, 3, FoldFunc(42)); err == nil {
		t.Fatal("expected unknown func error")
	}
}

func TestFoldISBErrors(t *testing.T) {
	r := ISB{Tb: 0, Te: 9, Base: 1, Slope: 1}
	if _, err := FoldISB(r, 3, FoldSum); err == nil {
		t.Fatal("expected length error (10 % 3 != 0)")
	}
	if _, err := FoldISB(r, 0, FoldSum); err == nil {
		t.Fatal("expected factor error")
	}
	if _, err := FoldISB(r, 5, FoldFunc(42)); err == nil {
		t.Fatal("expected unknown func error")
	}
}

// The §6.2 example: "folds the 365 daily values into 12 monthly values" —
// here 360 days into 12 months of 30 days, checking exactness on a line.
func TestFoldISBExactOnLine(t *testing.T) {
	const days, perMonth = 360, 30
	line := timeseries.Ramp(0, days, 100, 0.5)
	isb := MustFit(line)

	for _, f := range []FoldFunc{FoldSum, FoldAvg, FoldMin, FoldMax, FoldLast} {
		folded, err := Fold(line, perMonth, f)
		if err != nil {
			t.Fatal(err)
		}
		directISB := MustFit(folded)
		closed, err := FoldISB(isb, perMonth, f)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(closed.Base, directISB.Base, 1e-8) || !almostEq(closed.Slope, directISB.Slope, 1e-8) {
			t.Fatalf("%v: closed form %v vs direct %v", f, closed, directISB)
		}
		if closed.Tb != 0 || closed.Te != 11 {
			t.Fatalf("%v: folded interval [%d,%d], want [0,11]", f, closed.Tb, closed.Te)
		}
	}
}

func TestFoldISBNegativeSlopeMinMax(t *testing.T) {
	// With negative slope the min of a block is at its end, the max at its start.
	line := timeseries.Ramp(0, 12, 10, -1)
	isb := MustFit(line)
	for _, f := range []FoldFunc{FoldMin, FoldMax} {
		folded, _ := Fold(line, 4, f)
		direct := MustFit(folded)
		closed, err := FoldISB(isb, 4, f)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(closed.Base, direct.Base, 1e-9) || !almostEq(closed.Slope, direct.Slope, 1e-9) {
			t.Fatalf("%v: closed %v vs direct %v", f, closed, direct)
		}
	}
}

func TestFoldISBNonZeroStart(t *testing.T) {
	// Interval starting away from 0 exercises the tb term in the closed form.
	line := timeseries.Ramp(100, 20, -3, 0.25)
	isb := MustFit(line)
	folded, _ := Fold(line, 5, FoldSum)
	direct := MustFit(folded)
	closed, err := FoldISB(isb, 5, FoldSum)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(closed.Base, direct.Base, 1e-8) || !almostEq(closed.Slope, direct.Slope, 1e-8) {
		t.Fatalf("closed %v vs direct %v", closed, direct)
	}
}

// Property: for exact lines, fold-then-fit equals FoldISB for every
// aggregate and random parameters.
func TestFoldISBProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(61))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		blocks := 1 + r.Intn(12)
		tb := int64(r.Intn(100) - 50)
		base := r.NormFloat64() * 20
		slope := r.NormFloat64()
		line := timeseries.Ramp(tb, k*blocks, base, slope)
		isb := MustFit(line)
		for _, fn := range []FoldFunc{FoldSum, FoldAvg, FoldMin, FoldMax, FoldLast} {
			folded, err := Fold(line, k, fn)
			if err != nil {
				return false
			}
			direct := MustFit(folded)
			closed, err := FoldISB(isb, k, fn)
			if err != nil {
				return false
			}
			if !almostEq(closed.Base, direct.Base, 1e-6) || !almostEq(closed.Slope, direct.Slope, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: avg-folding commutes with standard-dimension aggregation.
func TestFoldCommutesWithStandardAgg(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(62))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		blocks := 2 + r.Intn(6)
		n := k * blocks
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		sa, sb := timeseries.MustNew(0, a), timeseries.MustNew(0, b)
		// Path 1: sum series, fold, fit.
		sum, _ := timeseries.Add(sa, sb)
		f1, err := Fold(sum, k, FoldSum)
		if err != nil {
			return false
		}
		p1 := MustFit(f1)
		// Path 2: fold each, fit each, standard-aggregate.
		fa, _ := Fold(sa, k, FoldSum)
		fb, _ := Fold(sb, k, FoldSum)
		p2, err := AggregateStandard(MustFit(fa), MustFit(fb))
		if err != nil {
			return false
		}
		return almostEq(p1.Base, p2.Base, 1e-7) && almostEq(p1.Slope, p2.Slope, 1e-7)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
