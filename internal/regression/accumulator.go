package regression

import (
	"fmt"
	"math"
)

// Accumulator computes the least-squares fit of a growing time series one
// point at a time, in O(1) space. Stream ingestion (§4.5) uses one
// accumulator per H-tree leaf and per current tilt-frame unit: minute
// readings accumulate until the unit (e.g. a quarter) completes, at which
// point Snapshot() yields the unit's ISB and the accumulator is Reset for
// the next unit.
//
// It maintains the sufficient statistics (n, Σz, Σt·z) for the fixed-start
// interval [tb, tb+n−1]; together with Lemma 3.2 these determine the fit.
type Accumulator struct {
	tb    int64
	n     int64
	sumZ  float64
	sumTZ float64
	begun bool
}

// NewAccumulator returns an accumulator for a series starting at tick tb.
func NewAccumulator(tb int64) *Accumulator {
	return &Accumulator{tb: tb}
}

// Add appends the observation z at the next tick. Ticks must arrive
// consecutively starting from tb; Add returns an error otherwise, and for
// non-finite values.
func (a *Accumulator) Add(t int64, z float64) error {
	if math.IsNaN(z) || math.IsInf(z, 0) {
		return fmt.Errorf("%w: z(%d)=%g", ErrNonFinite, t, z)
	}
	want := a.tb + a.n
	if t != want {
		return fmt.Errorf("%w: got tick %d, want %d", ErrMismatch, t, want)
	}
	a.begun = true
	a.n++
	a.sumZ += z
	a.sumTZ += float64(t) * z
	return nil
}

// AdvanceTo registers absent readings as zeros for every tick from
// NextTick up to (excluding) t, in O(1): a zero observation contributes
// +0.0 to both running sums, which leaves them bitwise unchanged (they
// start at +0.0 and can never become −0.0, since IEEE-754 addition only
// yields −0.0 from two negative-zero operands), so only the count moves.
// Equivalent to, and bit-for-bit interchangeable with, calling
// Add(NextTick(), 0) in a loop — the stream engine's gap fill without the
// O(gap) cost. A t at or before NextTick is a no-op.
func (a *Accumulator) AdvanceTo(t int64) {
	if n := t - a.tb; n > a.n {
		a.n = n
		a.begun = true
	}
}

// N returns the number of points accumulated so far.
func (a *Accumulator) N() int64 { return a.n }

// Empty reports whether no points have been added.
func (a *Accumulator) Empty() bool { return a.n == 0 }

// NextTick returns the tick the next Add must supply.
func (a *Accumulator) NextTick() int64 { return a.tb + a.n }

// Snapshot returns the ISB of the points accumulated so far. It returns
// ErrEmpty when no points have been added.
func (a *Accumulator) Snapshot() (ISB, error) {
	if a.n == 0 {
		return ISB{}, ErrEmpty
	}
	te := a.tb + a.n - 1
	isb := ISB{Tb: a.tb, Te: te}
	if a.n == 1 {
		isb.Base = a.sumZ
		return isb, nil
	}
	tbar := float64(a.tb+te) / 2
	zbar := a.sumZ / float64(a.n)
	// Σ(t−t̄)z = Σt·z − t̄·Σz.
	isb.Slope = (a.sumTZ - tbar*a.sumZ) / SVS(a.n)
	isb.Base = zbar - isb.Slope*tbar
	return isb, nil
}

// Reset prepares the accumulator for a new series starting at tick tb.
func (a *Accumulator) Reset(tb int64) {
	a.tb = tb
	a.n = 0
	a.sumZ = 0
	a.sumTZ = 0
	a.begun = false
}

// AccumulatorState is the serializable snapshot of an accumulator — the
// sufficient statistics a stream processor checkpoints for crash recovery.
type AccumulatorState struct {
	Tb    int64   `json:"tb"`
	N     int64   `json:"n"`
	SumZ  float64 `json:"sumZ"`
	SumTZ float64 `json:"sumTZ"`
}

// State exports the accumulator's sufficient statistics.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{Tb: a.tb, N: a.n, SumZ: a.sumZ, SumTZ: a.sumTZ}
}

// RestoreAccumulator rebuilds an accumulator from a checkpointed state.
func RestoreAccumulator(st AccumulatorState) (*Accumulator, error) {
	if st.N < 0 {
		return nil, fmt.Errorf("%w: negative count %d", ErrMismatch, st.N)
	}
	if math.IsNaN(st.SumZ) || math.IsInf(st.SumZ, 0) || math.IsNaN(st.SumTZ) || math.IsInf(st.SumTZ, 0) {
		return nil, fmt.Errorf("%w: non-finite sums", ErrNonFinite)
	}
	return &Accumulator{tb: st.Tb, n: st.N, sumZ: st.SumZ, sumTZ: st.SumTZ, begun: st.N > 0}, nil
}
