package persist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/stream"
)

func dataset(t *testing.T) *gen.Dataset {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Spec: gen.Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 200}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestResultRoundTrip(t *testing.T) {
	ds := dataset(t)
	res, err := core.MOCubing(ds.Schema, ds.Inputs, exception.Global(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats.Algorithm != "m/o-cubing" {
		t.Fatalf("algorithm = %q", back.Stats.Algorithm)
	}
	if len(back.OLayer) != len(res.OLayer) || len(back.Exceptions) != len(res.Exceptions) {
		t.Fatalf("sizes: o %d/%d exc %d/%d",
			len(back.OLayer), len(res.OLayer), len(back.Exceptions), len(res.Exceptions))
	}
	for key, want := range res.OLayer {
		got, ok := back.OLayer[key]
		if !ok || got != want {
			t.Fatalf("o-cell %v: %v vs %v", key, got, want)
		}
	}
	for key, want := range res.Exceptions {
		got, ok := back.Exceptions[key]
		if !ok || got != want {
			t.Fatalf("exception %v: %v vs %v", key, got, want)
		}
	}
}

func TestWriteResultNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResult(&buf, nil); err == nil {
		t.Fatal("expected nil-result error")
	}
}

func TestReadResultErrors(t *testing.T) {
	ds := dataset(t)
	if _, err := ReadResult(strings.NewReader("not json"), ds.Schema); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadResult(strings.NewReader(`{"version":99,"dims":2}`), ds.Schema); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := ReadResult(strings.NewReader(`{"version":1,"dims":5}`), ds.Schema); err == nil {
		t.Fatal("expected dims mismatch error")
	}
	bad := `{"version":1,"dims":2,"oLayer":[{"levels":[1],"members":[0,0],"isb":{}}]}`
	if _, err := ReadResult(strings.NewReader(bad), ds.Schema); err == nil {
		t.Fatal("expected malformed cell error")
	}
}

func streamEngine(t *testing.T) (*stream.Engine, *cube.Schema) {
	t.Helper()
	h, _ := cube.NewFanoutHierarchy("A", 2, 2)
	schema, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, schema
}

func TestCheckpointRoundTripResumesExactly(t *testing.T) {
	// Engine A: ingest 1.5 units, checkpoint mid-unit, keep going.
	a, schema := streamEngine(t)
	feed := func(e *stream.Engine, from, to int64) []*stream.UnitResult {
		t.Helper()
		var out []*stream.UnitResult
		for tk := from; tk < to; tk++ {
			for m := int32(0); m < 4; m++ {
				closed, err := e.Ingest([]int32{m}, tk, float64(tk)*float64(m+1))
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, closed...)
			}
		}
		return out
	}
	feed(a, 0, 6) // unit 0 closed, unit 1 half full

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, a.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	// Engine B restores and both continue with identical input.
	b, _ := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	})
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if b.Unit() != a.Unit() || b.UnitsDone() != a.UnitsDone() || b.ActiveCells() != a.ActiveCells() {
		t.Fatalf("restored state differs: unit %d/%d done %d/%d cells %d/%d",
			b.Unit(), a.Unit(), b.UnitsDone(), a.UnitsDone(), b.ActiveCells(), a.ActiveCells())
	}

	ra := feed(a, 6, 12)
	rb := feed(b, 6, 12)
	if len(ra) != len(rb) {
		t.Fatalf("unit results: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Result == nil || rb[i].Result == nil {
			t.Fatal("missing results")
		}
		if len(ra[i].Result.OLayer) != len(rb[i].Result.OLayer) {
			t.Fatal("o-layer sizes differ after restore")
		}
		for key, want := range ra[i].Result.OLayer {
			got, ok := rb[i].Result.OLayer[key]
			if !ok || got != want {
				t.Fatalf("unit %d o-cell %v: %v vs %v", ra[i].Unit, key, got, want)
			}
		}
	}
	// Trend queries agree too (history restored).
	oCell := cube.NewCellKey(schema.OLayer(), 0)
	ta, err1 := a.TrendQuery(oCell, 2)
	tb2, err2 := b.TrendQuery(oCell, 2)
	if err1 != nil || err2 != nil || ta != tb2 {
		t.Fatalf("trend queries differ: %v/%v %v/%v", ta, err1, tb2, err2)
	}
}

func TestRestoreValidatesSchema(t *testing.T) {
	a, _ := streamEngine(t)
	cp := a.Checkpoint()

	// Different fanout → different m-level cardinality → reject.
	h2, _ := cube.NewFanoutHierarchy("A", 3, 2)
	schema2, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h2, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.NewEngine(stream.Config{
		Schema: schema2, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(cp); err == nil {
		t.Fatal("expected schema-shape rejection")
	}
	if err := b.Restore(nil); err == nil {
		t.Fatal("expected nil-checkpoint rejection")
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("expected empty-checkpoint error")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version":2}`)); err == nil {
		t.Fatal("expected no-shards error")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version":2,"shards":[null]}`)); err == nil {
		t.Fatal("expected nil-shard error")
	}
	if _, err := ReadShardedCheckpoint(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("expected version error")
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, nil); err == nil {
		t.Fatal("expected nil-checkpoint write error")
	}
	if err := WriteShardedCheckpoint(&buf, nil); err == nil {
		t.Fatal("expected nil-sharded-checkpoint write error")
	}
	if err := WriteShardedCheckpoint(&buf, &stream.ShardedCheckpoint{}); err == nil {
		t.Fatal("expected empty-sharded-checkpoint write error")
	}
}

// shardedEngine builds a 3-shard analyzer over the persist test schema.
func shardedEngine(t *testing.T, schema *cube.Schema) *stream.ShardedEngine {
	t.Helper()
	e, err := stream.NewShardedEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// A v2 envelope round-trips through a sharded engine, and the same file
// loads into a single engine via ReadCheckpoint's merge path.
func TestShardedCheckpointCrossVersion(t *testing.T) {
	single, schema := streamEngine(t)
	sharded := shardedEngine(t, schema)
	for tk := int64(0); tk < 6; tk++ {
		for m := int32(0); m < 4; m++ {
			if _, err := single.Ingest([]int32{m}, tk, float64(tk)*float64(m+1)); err != nil {
				t.Fatal(err)
			}
			if _, err := sharded.Ingest([]int32{m}, tk, float64(tk)*float64(m+1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// v2 file → sharded engine (round trip) and single engine (merge).
	scp, err := sharded.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := WriteShardedCheckpoint(&v2, scp); err != nil {
		t.Fatal(err)
	}
	gotSharded, err := ReadShardedCheckpoint(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored := shardedEngine(t, schema)
	if err := restored.Restore(gotSharded); err != nil {
		t.Fatal(err)
	}
	gotSingle, err := ReadCheckpoint(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(gotSingle); err != nil {
		t.Fatal(err)
	}
	cells, err := restored.ActiveCells()
	if err != nil {
		t.Fatal(err)
	}
	if cells != plain.ActiveCells() || restored.Unit() != plain.Unit() {
		t.Fatalf("cross-version restore differs: %d/%d cells, units %d/%d",
			cells, plain.ActiveCells(), restored.Unit(), plain.Unit())
	}

	// v1 file → sharded engine (one-shard set, repartitioned on restore).
	var v1 bytes.Buffer
	if err := WriteCheckpoint(&v1, single.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	upgraded, err := ReadShardedCheckpoint(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(upgraded.Shards) != 1 {
		t.Fatalf("v1 file read as %d shards, want 1", len(upgraded.Shards))
	}
	fromV1 := shardedEngine(t, schema)
	if err := fromV1.Restore(upgraded); err != nil {
		t.Fatal(err)
	}
	cells, err = fromV1.ActiveCells()
	if err != nil {
		t.Fatal(err)
	}
	if cells != single.ActiveCells() {
		t.Fatalf("v1→sharded restore: %d cells, want %d", cells, single.ActiveCells())
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	ds := dataset(t)
	var buf bytes.Buffer
	if err := gen.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	inputs, err := gen.ReadCSV(&buf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != len(ds.Inputs) {
		t.Fatalf("tuples = %d, want %d", len(inputs), len(ds.Inputs))
	}
	for i := range inputs {
		if inputs[i].Measure != ds.Inputs[i].Measure {
			t.Fatalf("tuple %d measure %v vs %v", i, inputs[i].Measure, ds.Inputs[i].Measure)
		}
		for d := range inputs[i].Members {
			if inputs[i].Members[d] != ds.Inputs[i].Members[d] {
				t.Fatalf("tuple %d members differ", i)
			}
		}
	}
	// Loaded inputs must cube identically.
	a, err := core.MOCubing(ds.Schema, ds.Inputs, exception.Global(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.MOCubing(ds.Schema, inputs, exception.Global(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exceptions) != len(b.Exceptions) {
		t.Fatal("round-tripped dataset cubes differently")
	}
}

func TestReadCSVErrors(t *testing.T) {
	ds := dataset(t)
	cases := []string{
		"",
		"dim0,dim1,tb,te,base,slope\nx,0,0,9,1,1\n",
		"dim0,dim1,tb,te,base,slope\n99,0,0,9,1,1\n",
		"dim0,dim1,tb,te,base,slope\n0,0,x,9,1,1\n",
		"dim0,dim1,tb,te,base,slope\n0,0,0,x,1,1\n",
		"dim0,dim1,tb,te,base,slope\n0,0,9,0,1,1\n",
		"dim0,dim1,tb,te,base,slope\n0,0,0,9,x,1\n",
		"dim0,dim1,tb,te,base,slope\n0,0,0,9,1,x\n",
		"dim0,dim1,tb,te,base,slope\n0,0,0,9,1,NaN\n",
		"dim0,tb,te,base,slope\n0,0,9,1,1\n", // wrong column count
	}
	for i, c := range cases {
		if _, err := gen.ReadCSV(strings.NewReader(c), ds.Schema); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
