package persist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/stream"
	"repro/internal/tilt"
)

func tiltedStreamConfig(t *testing.T) (stream.Config, *cube.Schema) {
	t.Helper()
	h, _ := cube.NewFanoutHierarchy("A", 2, 2)
	schema, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	return stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
		TiltLevels: []tilt.Level{
			{Name: "q", Multiple: 1, Slots: 3},
			{Name: "h", Multiple: 3, Slots: 2},
		},
	}, schema
}

func feedUnits(t *testing.T, ing func([]int32, int64, float64) ([]*stream.UnitResult, error), from, to int64) {
	t.Helper()
	for tk := from; tk < to; tk++ {
		for m := int32(0); m < 4; m++ {
			if _, err := ing([]int32{m}, tk, float64(tk)*float64(m+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTiltedCheckpointWritesV3 asserts the envelope version switches to 3
// exactly when frames are present, for both writer entry points.
func TestTiltedCheckpointWritesV3(t *testing.T) {
	cfg, _ := tiltedStreamConfig(t)
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUnits(t, eng.Ingest, 0, 10)

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, eng.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 3 {
		t.Fatalf("tilted single checkpoint version %d, want 3", doc.Version)
	}

	seng, err := stream.NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()
	feedUnits(t, seng.Ingest, 0, 10)
	scp, err := seng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteShardedCheckpoint(&buf, scp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 3 {
		t.Fatalf("tilted sharded checkpoint version %d, want 3", doc.Version)
	}
}

// TestV3CrossLoads loads a v3 single file into a sharded engine, a v3
// sharded file into a single engine, and both into flat engines — the
// full compatibility matrix row for version 3.
func TestV3CrossLoads(t *testing.T) {
	cfg, schema := tiltedStreamConfig(t)
	single, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUnits(t, single.Ingest, 0, 14)
	var singleFile bytes.Buffer
	if err := WriteCheckpoint(&singleFile, single.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	sharded, err := stream.NewShardedEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	feedUnits(t, sharded.Ingest, 0, 14)
	scp, err := sharded.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var shardedFile bytes.Buffer
	if err := WriteShardedCheckpoint(&shardedFile, scp); err != nil {
		t.Fatal(err)
	}

	// v3 single → sharded engine.
	intoSharded, err := stream.NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer intoSharded.Close()
	rescp, err := ReadShardedCheckpoint(bytes.NewReader(singleFile.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := intoSharded.Restore(rescp); err != nil {
		t.Fatal(err)
	}

	// v3 sharded → single engine (shards merge, frames concatenate).
	intoSingle, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(bytes.NewReader(shardedFile.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := intoSingle.Restore(cp); err != nil {
		t.Fatal(err)
	}

	// v3 → flat engine: the derived history loads; frames are ignored.
	flat, err := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(bytes.NewReader(singleFile.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Restore(cp2); err != nil {
		t.Fatal(err)
	}
	ocell := cube.NewCellKey(cube.MustCuboid(1), 0)
	if flat.HistoryLen(ocell) == 0 {
		t.Fatal("flat engine restored no history from the v3 file")
	}
}

// TestV2LoadsIntoTiltedEngine is the forward-compat half of the
// acceptance criterion: a checkpoint written before this PR (v1/v2, no
// frames) restores into a v3-capable, tilt-configured engine.
func TestV2LoadsIntoTiltedEngine(t *testing.T) {
	cfg, schema := tiltedStreamConfig(t)
	flatSharded, err := stream.NewShardedEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer flatSharded.Close()
	feedUnits(t, flatSharded.Ingest, 0, 14)
	scp, err := flatSharded.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var v2File bytes.Buffer
	if err := WriteShardedCheckpoint(&v2File, scp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v2File.String(), `"version":2`) {
		t.Fatalf("flat sharded file is not v2: %.80s", v2File.String())
	}

	tilted, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(bytes.NewReader(v2File.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tilted.Restore(cp); err != nil {
		t.Fatal(err)
	}
	// The seeded frames answer coarse trends right away (3 closed units
	// per "hour"; 14 ticks close 3 units, so one hour exists).
	ocell := cube.NewCellKey(cube.MustCuboid(1), 0)
	if _, err := tilted.TrendQueryAt(ocell, 1, 1); err != nil {
		t.Fatalf("seeded tilt engine has no hour trend: %v", err)
	}
}

// TestV3EnvelopeValidation rejects malformed v3 documents.
func TestV3EnvelopeValidation(t *testing.T) {
	bad := []string{
		`{"version":3}`,
		`{"version":3,"checkpoint":{"unit":0},"shards":[{"unit":0}]}`,
		`{"version":3,"shards":[]}`,
		`{"version":3,"shards":[null]}`,
		`{"version":4,"checkpoint":{"unit":0}}`,
		// Mixed layouts are ambiguous at every version: silently preferring
		// the stray single checkpoint would drop the shard data.
		`{"version":1,"checkpoint":{"unit":0},"shards":[{"unit":0}]}`,
		`{"version":2,"checkpoint":{"unit":0},"shards":[{"unit":0},{"unit":0}]}`,
		`{"version":2,"checkpoint":{"unit":0}}`,
	}
	for i, doc := range bad {
		if _, err := ReadCheckpoint(strings.NewReader(doc)); err == nil {
			t.Fatalf("case %d restored silently: %s", i, doc)
		}
		if _, err := ReadShardedCheckpoint(strings.NewReader(doc)); err == nil {
			t.Fatalf("case %d (sharded reader) restored silently: %s", i, doc)
		}
	}
}
