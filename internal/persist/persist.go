// Package persist serializes regression-cube artifacts: cubing results
// (the two critical layers plus exception cells) and online-engine
// checkpoints, both as JSON. The paper's design keeps only the critical
// layers "in memory or stored on disks" — this package is the disk half.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/stream"
)

// ErrFormat is returned for malformed or incompatible serialized data.
var ErrFormat = errors.New("persist: invalid format")

// formatVersion guards against silent cross-version decoding.
const formatVersion = 1

// Checkpoint envelope versions. Version 1 wraps one single-engine
// checkpoint; version 2 wraps one checkpoint per shard of a
// stream.ShardedEngine; version 3 is either layout carrying tilted
// per-o-cell frames (stream.Checkpoint.Tilt) alongside the flat history.
// Readers accept all three: a v1 file loads into a sharded engine as a
// one-shard set (repartitioned on restore), a v2 file loads into a single
// engine by merging its disjoint shards, and a v3 file loads into flat
// engines through its derived history — stream.Engine.Restore reseeds
// frames from pre-tilt files going the other way.
const (
	checkpointVersionSingle  = 1
	checkpointVersionSharded = 2
	checkpointVersionTilted  = 3
)

// cellRec flattens one (cell, measure) pair.
type cellRec struct {
	Levels  []int          `json:"levels"`
	Members []int32        `json:"members"`
	ISB     regression.ISB `json:"isb"`
}

// resultDoc is the on-disk form of a core.Result.
type resultDoc struct {
	Version    int       `json:"version"`
	Algorithm  string    `json:"algorithm"`
	Dims       int       `json:"dims"`
	OLayer     []cellRec `json:"oLayer"`
	Exceptions []cellRec `json:"exceptions"`
}

func toRec(key cube.CellKey, isb regression.ISB) cellRec {
	rec := cellRec{ISB: isb}
	for d := 0; d < key.Cuboid.NumDims(); d++ {
		rec.Levels = append(rec.Levels, key.Cuboid.Level(d))
		rec.Members = append(rec.Members, key.Member(d))
	}
	return rec
}

func fromRec(rec cellRec) (cube.CellKey, regression.ISB, error) {
	if len(rec.Levels) == 0 || len(rec.Levels) != len(rec.Members) {
		return cube.CellKey{}, regression.ISB{}, fmt.Errorf("%w: cell with %d levels, %d members",
			ErrFormat, len(rec.Levels), len(rec.Members))
	}
	c, err := cube.NewCuboid(rec.Levels...)
	if err != nil {
		return cube.CellKey{}, regression.ISB{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return cube.NewCellKey(c, rec.Members...), rec.ISB, nil
}

// WriteResult serializes the retained layers of a cubing result.
func WriteResult(w io.Writer, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("%w: nil result", ErrFormat)
	}
	doc := resultDoc{
		Version:   formatVersion,
		Algorithm: res.Stats.Algorithm,
		Dims:      res.Schema.NumDims(),
	}
	for key, isb := range res.OLayer {
		doc.OLayer = append(doc.OLayer, toRec(key, isb))
	}
	for key, isb := range res.Exceptions {
		doc.Exceptions = append(doc.Exceptions, toRec(key, isb))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadResult deserializes a result written by WriteResult against the
// schema it was computed from. Stats and path cells are not round-tripped
// (they describe the computation, not the retained cube).
func ReadResult(r io.Reader, schema *cube.Schema) (*core.Result, error) {
	var doc resultDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrFormat, doc.Version, formatVersion)
	}
	if doc.Dims != schema.NumDims() {
		return nil, fmt.Errorf("%w: result has %d dimensions, schema %d", ErrFormat, doc.Dims, schema.NumDims())
	}
	res := &core.Result{
		Schema:     schema,
		OLayer:     make(map[cube.CellKey]regression.ISB, len(doc.OLayer)),
		Exceptions: make(map[cube.CellKey]regression.ISB, len(doc.Exceptions)),
	}
	res.Stats.Algorithm = doc.Algorithm
	for _, rec := range doc.OLayer {
		key, isb, err := fromRec(rec)
		if err != nil {
			return nil, err
		}
		res.OLayer[key] = isb
	}
	for _, rec := range doc.Exceptions {
		key, isb, err := fromRec(rec)
		if err != nil {
			return nil, err
		}
		res.Exceptions[key] = isb
	}
	return res, nil
}

// checkpointDoc wraps a stream checkpoint with versioning. Exactly one of
// Checkpoint (single-engine layout) and Shards (per-shard layout) is set.
type checkpointDoc struct {
	Version    int                  `json:"version"`
	Checkpoint *stream.Checkpoint   `json:"checkpoint,omitempty"`
	Shards     []*stream.Checkpoint `json:"shards,omitempty"`
}

func decodeCheckpointDoc(r io.Reader) (*checkpointDoc, error) {
	var doc checkpointDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	// Every version carries exactly one layout; a file with both (or
	// neither) is ambiguous, and readers must not silently pick one —
	// choosing the stray single checkpoint over a shard set would drop
	// state.
	if (doc.Checkpoint == nil) == (len(doc.Shards) == 0) {
		return nil, fmt.Errorf("%w: checkpoint needs exactly one of checkpoint/shards", ErrFormat)
	}
	switch doc.Version {
	case checkpointVersionSingle:
		if doc.Checkpoint == nil {
			return nil, fmt.Errorf("%w: version 1 without a single checkpoint", ErrFormat)
		}
	case checkpointVersionSharded:
		if err := doc.validShards(); err != nil {
			return nil, err
		}
	case checkpointVersionTilted:
		// v3 is v1- or v2-shaped with frames attached.
		if doc.Checkpoint == nil {
			if err := doc.validShards(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("%w: version %d, want %d, %d or %d", ErrFormat,
			doc.Version, checkpointVersionSingle, checkpointVersionSharded, checkpointVersionTilted)
	}
	return &doc, nil
}

func (doc *checkpointDoc) validShards() error {
	if len(doc.Shards) == 0 {
		return fmt.Errorf("%w: sharded checkpoint with no shards", ErrFormat)
	}
	for i, cp := range doc.Shards {
		if cp == nil {
			return fmt.Errorf("%w: nil shard checkpoint %d", ErrFormat, i)
		}
	}
	return nil
}

// WriteCheckpoint serializes a single-engine checkpoint: version 1, or
// version 3 when the engine carries tilted frames.
func WriteCheckpoint(w io.Writer, cp *stream.Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("%w: nil checkpoint", ErrFormat)
	}
	version := checkpointVersionSingle
	if len(cp.Tilt) > 0 {
		version = checkpointVersionTilted
	}
	return json.NewEncoder(w).Encode(checkpointDoc{Version: version, Checkpoint: cp})
}

// ReadCheckpoint deserializes a checkpoint for a single engine. Sharded
// files (v2, or v3 in the sharded layout) are accepted too: their disjoint
// shards merge into one equivalent single-engine checkpoint, so
// shard-count changes between runs — including back to 1 — never strand a
// state file.
func ReadCheckpoint(r io.Reader) (*stream.Checkpoint, error) {
	doc, err := decodeCheckpointDoc(r)
	if err != nil {
		return nil, err
	}
	if doc.Checkpoint != nil {
		return doc.Checkpoint, nil
	}
	cp, err := (&stream.ShardedCheckpoint{Shards: doc.Shards}).Merge()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return cp, nil
}

// WriteShardedCheckpoint serializes a sharded-engine checkpoint: version
// 2, or version 3 when any shard carries tilted frames.
func WriteShardedCheckpoint(w io.Writer, scp *stream.ShardedCheckpoint) error {
	if scp == nil || len(scp.Shards) == 0 {
		return fmt.Errorf("%w: empty sharded checkpoint", ErrFormat)
	}
	version := checkpointVersionSharded
	for i, cp := range scp.Shards {
		if cp == nil {
			return fmt.Errorf("%w: nil shard checkpoint %d", ErrFormat, i)
		}
		if len(cp.Tilt) > 0 {
			version = checkpointVersionTilted
		}
	}
	return json.NewEncoder(w).Encode(checkpointDoc{Version: version, Shards: scp.Shards})
}

// ReadShardedCheckpoint deserializes a checkpoint for a sharded engine.
// Single-engine files (v1, or v3 in the single layout) are accepted as a
// one-shard set; ShardedEngine.Restore repartitions either form across
// its shards.
func ReadShardedCheckpoint(r io.Reader) (*stream.ShardedCheckpoint, error) {
	doc, err := decodeCheckpointDoc(r)
	if err != nil {
		return nil, err
	}
	if doc.Checkpoint != nil {
		return &stream.ShardedCheckpoint{Shards: []*stream.Checkpoint{doc.Checkpoint}}, nil
	}
	return &stream.ShardedCheckpoint{Shards: doc.Shards}, nil
}
