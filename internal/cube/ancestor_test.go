package cube

import (
	"fmt"
	"math/rand"
	"testing"
)

// ancestorAgrees checks the index against the interface-walking Ancestor
// for every (from, to) level pair of dimension d, over at most sample
// members per from-level (all of them when the level is small).
func ancestorAgrees(t *testing.T, ix *AncestorIndex, d int, h Hierarchy, sample int, rng *rand.Rand) {
	t.Helper()
	for from := 1; from <= h.Levels(); from++ {
		card := h.Cardinality(from)
		for to := 0; to <= from; to++ {
			if card <= sample {
				for m := 0; m < card; m++ {
					want := Ancestor(h, from, to, int32(m))
					if got := ix.Ancestor(d, from, to, int32(m)); got != want {
						t.Fatalf("dim %d: Ancestor(from=%d,to=%d,m=%d) = %d, want %d", d, from, to, m, got, want)
					}
				}
				continue
			}
			for i := 0; i < sample; i++ {
				m := int32(rng.Intn(card))
				want := Ancestor(h, from, to, m)
				if got := ix.Ancestor(d, from, to, m); got != want {
					t.Fatalf("dim %d: Ancestor(from=%d,to=%d,m=%d) = %d, want %d", d, from, to, m, got, want)
				}
			}
		}
	}
}

// randomNamedHierarchy builds a valid NamedHierarchy with random shape:
// random per-level cardinalities and random (not fanout-regular) parents.
func randomNamedHierarchy(t *testing.T, rng *rand.Rand, levels int) *NamedHierarchy {
	t.Helper()
	h := NewNamedHierarchy("R")
	card := 1 + rng.Intn(4)
	names := make([]string, card)
	for i := range names {
		names[i] = fmt.Sprintf("L1.%d", i)
	}
	if err := h.AddLevel(names, nil); err != nil {
		t.Fatal(err)
	}
	for l := 2; l <= levels; l++ {
		next := card + rng.Intn(3*card+1)
		names = make([]string, next)
		parents := make([]int32, next)
		for i := range names {
			names[i] = fmt.Sprintf("L%d.%d", l, i)
			parents[i] = int32(rng.Intn(card))
		}
		if err := h.AddLevel(names, parents); err != nil {
			t.Fatal(err)
		}
		card = next
	}
	return h
}

// TestAncestorIndexAgreesFanout: the divisor fast path must agree with the
// interface walk for every (dim, from, to, member) of fuzz-generated fanout
// hierarchies, including deep ones where fanout^k saturates.
func TestAncestorIndexAgreesFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		fanout := 1 + rng.Intn(6)
		levels := 1 + rng.Intn(5)
		h, err := NewFanoutHierarchy("F", fanout, levels)
		if err != nil {
			t.Fatal(err)
		}
		m := levels
		o := rng.Intn(m + 1)
		s, err := NewSchema(Dimension{Name: "F", Hierarchy: h, MLevel: m, OLevel: o})
		if err != nil {
			t.Fatal(err)
		}
		ix := NewAncestorIndex(s)
		ancestorAgrees(t, ix, 0, h, 200, rng)
	}
	// Deep tree: 10^7 members at the m-level, saturating power table sizes.
	h, err := NewFanoutHierarchy("deep", 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(Dimension{Name: "deep", Hierarchy: h, MLevel: 7, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ancestorAgrees(t, NewAncestorIndex(s), 0, h, 100, rng)
}

// TestAncestorIndexAgreesNamed: the dense-table path must agree with the
// interface walk on irregular explicitly-enumerated hierarchies.
func TestAncestorIndexAgreesNamed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		levels := 1 + rng.Intn(5)
		h := randomNamedHierarchy(t, rng, levels)
		s, err := NewSchema(Dimension{Name: "R", Hierarchy: h, MLevel: levels, OLevel: rng.Intn(levels + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ix := NewAncestorIndex(s)
		ancestorAgrees(t, ix, 0, h, 500, rng)
	}
}

// wideHierarchy is a non-fanout hierarchy whose top level exceeds the dense
// table cap, forcing the Parent-walk fallback.
type wideHierarchy struct{ top int }

func (w *wideHierarchy) Levels() int { return 2 }
func (w *wideHierarchy) Cardinality(level int) int {
	switch level {
	case 2:
		return w.top
	case 1:
		return 7
	default:
		return 1
	}
}
func (w *wideHierarchy) Parent(level int, member int32) int32 {
	if level <= 1 {
		return 0
	}
	return member % 7
}
func (w *wideHierarchy) MemberName(level int, member int32) string {
	return fmt.Sprintf("w.%d.%d", level, member)
}

// TestAncestorIndexFallback: cardinalities past the table cap resolve by
// walking Parent and still agree with Ancestor.
func TestAncestorIndexFallback(t *testing.T) {
	h := &wideHierarchy{top: maxDenseTableMembers + 1}
	s, err := NewSchema(Dimension{Name: "W", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewAncestorIndex(s)
	if ix.dims[0].tables != nil || ix.dims[0].fanout != 0 {
		t.Fatal("oversized non-fanout hierarchy must use the fallback strategy")
	}
	ancestorAgrees(t, ix, 0, h, 300, rand.New(rand.NewSource(47)))
}

// TestAncestorIndexRollUpMatchesRollUpKey: RollUp must produce exactly
// RollUpKey's cell for random multi-dimensional keys and cuboid pairs.
func TestAncestorIndexRollUpMatchesRollUpKey(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]Dimension, nd)
		for d := range dims {
			levels := 1 + rng.Intn(4)
			var h Hierarchy
			if rng.Intn(2) == 0 {
				fh, err := NewFanoutHierarchy(fmt.Sprintf("F%d", d), 1+rng.Intn(5), levels)
				if err != nil {
					t.Fatal(err)
				}
				h = fh
			} else {
				h = randomNamedHierarchy(t, rng, levels)
			}
			dims[d] = Dimension{Name: fmt.Sprintf("D%d", d), Hierarchy: h, MLevel: levels, OLevel: rng.Intn(levels + 1)}
		}
		s, err := NewSchema(dims...)
		if err != nil {
			t.Fatal(err)
		}
		ix := NewAncestorIndex(s)
		mLayer := s.MLayer()
		for k := 0; k < 50; k++ {
			// Random m-layer cell, random coarser target cuboid.
			key := CellKey{Cuboid: mLayer}
			levels := make([]int, nd)
			for d := range dims {
				key.Members[d] = int32(rng.Intn(dims[d].Hierarchy.Cardinality(dims[d].MLevel)))
				levels[d] = rng.Intn(dims[d].MLevel + 1)
			}
			to := MustCuboid(levels...)
			want, err := RollUpKey(s, key, to)
			if err != nil {
				t.Fatal(err)
			}
			if got := ix.RollUp(key, to); got != want {
				t.Fatalf("RollUp(%v, %v) = %v, want %v", key, to, got, want)
			}
		}
	}
}
