package cube

import (
	"fmt"
	"sort"
)

// Lattice enumerates the cuboids between the o-layer and the m-layer of a
// schema (paper Figure 6) and exposes parent/child structure and popular
// drilling paths through it.
type Lattice struct {
	schema  *Schema
	cuboids []Cuboid
	index   map[Cuboid]int
}

// NewLattice materializes the cuboid lattice of a schema. The number of
// cuboids is Π(MLevel−OLevel+1), which the caller should keep sane (the
// paper's largest configuration is 2 dims × 7 levels = 49 cuboids).
func NewLattice(s *Schema) *Lattice {
	l := &Lattice{schema: s, index: make(map[Cuboid]int)}
	cur := s.OLayer()
	l.enumerate(cur, 0)
	// Sort coarsest-first (by total level sum, then lexicographic) so
	// iteration orders are deterministic and roll-up friendly.
	sort.Slice(l.cuboids, func(i, j int) bool {
		si, sj := l.levelSum(l.cuboids[i]), l.levelSum(l.cuboids[j])
		if si != sj {
			return si < sj
		}
		return l.lexLess(l.cuboids[i], l.cuboids[j])
	})
	for i, c := range l.cuboids {
		l.index[c] = i
	}
	return l
}

func (l *Lattice) enumerate(c Cuboid, dim int) {
	if dim == len(l.schema.Dims) {
		l.cuboids = append(l.cuboids, c)
		return
	}
	d := l.schema.Dims[dim]
	for lvl := d.OLevel; lvl <= d.MLevel; lvl++ {
		l.enumerate(c.WithLevel(dim, lvl), dim+1)
	}
}

func (l *Lattice) levelSum(c Cuboid) int {
	s := 0
	for d := 0; d < c.NumDims(); d++ {
		s += c.Level(d)
	}
	return s
}

func (l *Lattice) lexLess(a, b Cuboid) bool {
	for d := 0; d < a.NumDims(); d++ {
		if a.Level(d) != b.Level(d) {
			return a.Level(d) < b.Level(d)
		}
	}
	return false
}

// Schema returns the underlying schema.
func (l *Lattice) Schema() *Schema { return l.schema }

// Cuboids returns all cuboids, coarsest-first. The slice is shared; do not
// modify.
func (l *Lattice) Cuboids() []Cuboid { return l.cuboids }

// Size returns the number of cuboids in the lattice.
func (l *Lattice) Size() int { return len(l.cuboids) }

// Contains reports whether c lies between the critical layers.
func (l *Lattice) Contains(c Cuboid) bool {
	_, ok := l.index[c]
	return ok
}

// Children returns the cuboids obtained from c by drilling exactly one
// dimension down one level (toward the m-layer).
func (l *Lattice) Children(c Cuboid) []Cuboid {
	var out []Cuboid
	for d := 0; d < c.NumDims(); d++ {
		if c.Level(d) < l.schema.Dims[d].MLevel {
			out = append(out, c.WithLevel(d, c.Level(d)+1))
		}
	}
	return out
}

// Parents returns the cuboids obtained from c by rolling exactly one
// dimension up one level (toward the o-layer).
func (l *Lattice) Parents(c Cuboid) []Cuboid {
	var out []Cuboid
	for d := 0; d < c.NumDims(); d++ {
		if c.Level(d) > l.schema.Dims[d].OLevel {
			out = append(out, c.WithLevel(d, c.Level(d)-1))
		}
	}
	return out
}

// Path is a popular drilling path (paper Figure 6 dark line): a chain of
// cuboids from the o-layer to the m-layer, each drilling one dimension one
// level deeper.
type Path struct {
	Cuboids []Cuboid // from o-layer (index 0) down to m-layer (last)
}

// DefaultPath drills dimensions in schema order, taking each dimension all
// the way from its o-level to its m-level before moving on — the analogue
// of the paper's ⟨(A1,C1)→B1→B2→A2→C2⟩ staircase.
func (l *Lattice) DefaultPath() Path {
	var steps []int
	for d := range l.schema.Dims {
		for lvl := l.schema.Dims[d].OLevel; lvl < l.schema.Dims[d].MLevel; lvl++ {
			steps = append(steps, d)
		}
	}
	p, err := l.PathFromSteps(steps)
	if err != nil {
		// steps are exact by construction
		panic(fmt.Sprintf("cube: DefaultPath: %v", err))
	}
	return p
}

// PathFromSteps builds a path from a sequence of dimension indices; each
// step drills that dimension one level. The steps must drill every
// dimension from its o-level exactly to its m-level.
func (l *Lattice) PathFromSteps(steps []int) (Path, error) {
	cur := l.schema.OLayer()
	path := Path{Cuboids: []Cuboid{cur}}
	for i, d := range steps {
		if d < 0 || d >= len(l.schema.Dims) {
			return Path{}, fmt.Errorf("%w: step %d drills unknown dimension %d", ErrSchema, i, d)
		}
		next := cur.Level(d) + 1
		if next > l.schema.Dims[d].MLevel {
			return Path{}, fmt.Errorf("%w: step %d drills %s below its m-level", ErrSchema, i, l.schema.Dims[d].Name)
		}
		cur = cur.WithLevel(d, next)
		path.Cuboids = append(path.Cuboids, cur)
	}
	if !cur.Equal(l.schema.MLayer()) {
		return Path{}, fmt.Errorf("%w: path ends at %v, not the m-layer", ErrSchema, cur)
	}
	return path, nil
}

// OnPath reports whether c is one of the path's cuboids.
func (p Path) OnPath(c Cuboid) bool {
	for _, pc := range p.Cuboids {
		if pc.Equal(c) {
			return true
		}
	}
	return false
}

// Covering returns the shallowest path cuboid that is finer-or-equal to c
// on every dimension — the "computed cuboid residing at the closest lower
// level" of Algorithm 2 Step 3. Because a path is a monotone staircase,
// such a cuboid always exists (the m-layer dominates everything).
func (p Path) Covering(c Cuboid) Cuboid {
	for _, pc := range p.Cuboids {
		if c.DominatedBy(pc) {
			return pc
		}
	}
	// The last cuboid is the m-layer, which dominates all lattice members.
	return p.Cuboids[len(p.Cuboids)-1]
}

// Depth returns the index of c within the path, or -1.
func (p Path) Depth(c Cuboid) int {
	for i, pc := range p.Cuboids {
		if pc.Equal(c) {
			return i
		}
	}
	return -1
}
