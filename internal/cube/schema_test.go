package cube

import (
	"strings"
	"testing"
)

func exampleSchema(t *testing.T) *Schema {
	t.Helper()
	// Paper Example 5: dims A, B, C, each with 3 levels; m-layer
	// (A2,B2,C2), o-layer (A1,*,C1).
	ha, _ := NewFanoutHierarchy("A", 3, 3)
	hb, _ := NewFanoutHierarchy("B", 4, 3)
	hc, _ := NewFanoutHierarchy("C", 2, 3)
	s, err := NewSchema(
		Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 0},
		Dimension{Name: "C", Hierarchy: hc, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFanoutHierarchy(t *testing.T) {
	h, err := NewFanoutHierarchy("A", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.Cardinality(0) != 1 || h.Cardinality(1) != 10 || h.Cardinality(2) != 100 || h.Cardinality(3) != 1000 {
		t.Fatal("cardinalities wrong")
	}
	if h.Parent(3, 527) != 52 || h.Parent(2, 52) != 5 || h.Parent(1, 5) != 0 {
		t.Fatal("parent chain wrong")
	}
	if h.MemberName(0, 0) != "*" {
		t.Fatal("ALL member name")
	}
	if !strings.Contains(h.MemberName(2, 7), "A") {
		t.Fatal("member name should carry dimension name")
	}
}

func TestFanoutHierarchyValidation(t *testing.T) {
	if _, err := NewFanoutHierarchy("A", 0, 3); err == nil {
		t.Fatal("expected fanout error")
	}
	if _, err := NewFanoutHierarchy("A", 2, 0); err == nil {
		t.Fatal("expected levels error")
	}
}

func TestAncestor(t *testing.T) {
	h, _ := NewFanoutHierarchy("A", 10, 3)
	if got := Ancestor(h, 3, 1, 527); got != 5 {
		t.Fatalf("Ancestor = %d, want 5", got)
	}
	if got := Ancestor(h, 3, 0, 527); got != 0 {
		t.Fatalf("Ancestor to ALL = %d, want 0", got)
	}
	if got := Ancestor(h, 2, 2, 42); got != 42 {
		t.Fatalf("identity Ancestor = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic descending")
		}
	}()
	Ancestor(h, 1, 2, 0)
}

func TestNamedHierarchy(t *testing.T) {
	h := NewNamedHierarchy("loc")
	if err := h.AddLevel([]string{"east", "west"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLevel([]string{"nyc", "boston", "sf"}, []int32{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.Cardinality(1) != 2 || h.Cardinality(2) != 3 || h.Cardinality(0) != 1 {
		t.Fatal("cardinalities wrong")
	}
	if h.Parent(2, 2) != 1 || h.Parent(2, 0) != 0 || h.Parent(1, 1) != 0 {
		t.Fatal("parents wrong")
	}
	if h.MemberName(2, 1) != "boston" || h.MemberName(0, 0) != "*" {
		t.Fatal("names wrong")
	}
	m, err := h.Lookup(2, "sf")
	if err != nil || m != 2 {
		t.Fatalf("Lookup = %d, %v", m, err)
	}
	if _, err := h.Lookup(2, "denver"); err == nil {
		t.Fatal("expected lookup miss")
	}
	if _, err := h.Lookup(9, "x"); err == nil {
		t.Fatal("expected level error")
	}
}

func TestNamedHierarchyValidation(t *testing.T) {
	h := NewNamedHierarchy("x")
	if err := h.AddLevel(nil, nil); err == nil {
		t.Fatal("expected empty-level error")
	}
	if err := h.AddLevel([]string{"a"}, []int32{0}); err == nil {
		t.Fatal("first level must not declare parents")
	}
	_ = h.AddLevel([]string{"a", "b"}, nil)
	if err := h.AddLevel([]string{"c"}, []int32{5}); err == nil {
		t.Fatal("expected parent range error")
	}
	if err := h.AddLevel([]string{"c", "d"}, []int32{0}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := h.AddLevel([]string{"c", "c"}, []int32{0, 1}); err == nil {
		t.Fatal("expected duplicate member error")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	h, _ := NewFanoutHierarchy("A", 2, 3)
	if _, err := NewSchema(); err == nil {
		t.Fatal("expected no-dims error")
	}
	if _, err := NewSchema(Dimension{Name: "A", MLevel: 1}); err == nil {
		t.Fatal("expected nil-hierarchy error")
	}
	if _, err := NewSchema(Dimension{Name: "A", Hierarchy: h, MLevel: 4, OLevel: 1}); err == nil {
		t.Fatal("expected m-level range error")
	}
	if _, err := NewSchema(Dimension{Name: "A", Hierarchy: h, MLevel: 0, OLevel: 0}); err == nil {
		t.Fatal("expected m-level ≥ 1 error")
	}
	if _, err := NewSchema(Dimension{Name: "A", Hierarchy: h, MLevel: 1, OLevel: 2}); err == nil {
		t.Fatal("expected o-level ≤ m-level error")
	}
	dims := make([]Dimension, MaxDims+1)
	for i := range dims {
		dims[i] = Dimension{Name: "X", Hierarchy: h, MLevel: 1}
	}
	if _, err := NewSchema(dims...); err == nil {
		t.Fatal("expected too-many-dims error")
	}
}

func TestSchemaLayersAndCount(t *testing.T) {
	s := exampleSchema(t)
	m, o := s.MLayer(), s.OLayer()
	if m.Level(0) != 2 || m.Level(1) != 2 || m.Level(2) != 2 {
		t.Fatalf("m-layer = %v", m)
	}
	if o.Level(0) != 1 || o.Level(1) != 0 || o.Level(2) != 1 {
		t.Fatalf("o-layer = %v", o)
	}
	// Example 5: "there are in total 2·3·2 = 12 cuboids".
	if got := s.CuboidCount(); got != 12 {
		t.Fatalf("CuboidCount = %d, want 12", got)
	}
	if s.NumDims() != 3 {
		t.Fatalf("NumDims = %d", s.NumDims())
	}
	if !strings.Contains(s.Describe(), "B[o=L0,m=L2]") {
		t.Fatalf("Describe = %q", s.Describe())
	}
}

func TestCuboidBasics(t *testing.T) {
	c, err := NewCuboid(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDims() != 3 || c.Level(0) != 1 || c.Level(1) != 0 || c.Level(2) != 2 {
		t.Fatalf("cuboid = %v", c)
	}
	d := c.WithLevel(1, 2)
	if d.Level(1) != 2 || c.Level(1) != 0 {
		t.Fatal("WithLevel must not mutate receiver")
	}
	if !c.Equal(MustCuboid(1, 0, 2)) {
		t.Fatal("Equal")
	}
	if _, err := NewCuboid(); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := NewCuboid(-1); err == nil {
		t.Fatal("expected negative level error")
	}
}

func TestMustCuboidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCuboid()
}

func TestDominatedBy(t *testing.T) {
	coarse := MustCuboid(1, 0, 1)
	fine := MustCuboid(2, 2, 2)
	if !coarse.DominatedBy(fine) {
		t.Fatal("(1,0,1) should be dominated by (2,2,2)")
	}
	if fine.DominatedBy(coarse) {
		t.Fatal("(2,2,2) must not be dominated by (1,0,1)")
	}
	mixed := MustCuboid(2, 0, 1)
	other := MustCuboid(1, 2, 2)
	if mixed.DominatedBy(other) || other.DominatedBy(mixed) {
		t.Fatal("incomparable cuboids")
	}
	if coarse.DominatedBy(MustCuboid(2, 2)) {
		t.Fatal("different dimensionality never dominates")
	}
	if !coarse.DominatedBy(coarse) {
		t.Fatal("dominance is reflexive")
	}
}

func TestCuboidDescribe(t *testing.T) {
	s := exampleSchema(t)
	c := MustCuboid(1, 0, 2)
	if got := c.Describe(s); got != "(A1, *, C2)" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestCellKeyAndRollUp(t *testing.T) {
	s := exampleSchema(t)
	m := s.MLayer() // (A2,B2,C2); cardinalities 9, 16, 4
	k := NewCellKey(m, 7, 13, 3)
	if k.Member(0) != 7 || k.Member(1) != 13 || k.Member(2) != 3 {
		t.Fatal("members wrong")
	}
	o := s.OLayer() // (A1,*,C1)
	up, err := RollUpKey(s, k, o)
	if err != nil {
		t.Fatal(err)
	}
	// A: 7/3=2; B: ALL=0; C: 3/2=1.
	if up.Member(0) != 2 || up.Member(1) != 0 || up.Member(2) != 1 {
		t.Fatalf("rolled key = %v", up.Members)
	}
	if up.Cuboid != o {
		t.Fatal("rolled cuboid wrong")
	}
	// Identity roll-up.
	same, err := RollUpKey(s, k, m)
	if err != nil || same != k {
		t.Fatalf("identity roll-up = %v, %v", same, err)
	}
	// Cannot roll down.
	if _, err := RollUpKey(s, up, m); err == nil {
		t.Fatal("expected domination error")
	}
}

func TestIsDescendantCell(t *testing.T) {
	s := exampleSchema(t)
	m, o := s.MLayer(), s.OLayer()
	k := NewCellKey(m, 7, 13, 3)
	up, _ := RollUpKey(s, k, o)
	if !IsDescendantCell(s, k, up) {
		t.Fatal("k should descend from its own roll-up")
	}
	other := NewCellKey(o, 1, 0, 0)
	if IsDescendantCell(s, k, other) {
		t.Fatal("k should not descend from a different o-cell")
	}
	if IsDescendantCell(s, up, k) {
		t.Fatal("coarser cell cannot descend from finer")
	}
}

func TestCellKeyDescribe(t *testing.T) {
	s := exampleSchema(t)
	k := NewCellKey(s.OLayer(), 1, 0, 0)
	got := k.Describe(s)
	if !strings.Contains(got, "*") || !strings.Contains(got, "A.L1.1") {
		t.Fatalf("Describe = %q", got)
	}
}

func TestLatticeEnumeration(t *testing.T) {
	s := exampleSchema(t)
	l := NewLattice(s)
	if l.Size() != 12 {
		t.Fatalf("lattice size = %d, want 12 (Example 5)", l.Size())
	}
	// First cuboid must be the o-layer, last the m-layer.
	cs := l.Cuboids()
	if !cs[0].Equal(s.OLayer()) {
		t.Fatalf("first cuboid = %v", cs[0])
	}
	if !cs[len(cs)-1].Equal(s.MLayer()) {
		t.Fatalf("last cuboid = %v", cs[len(cs)-1])
	}
	// Every enumerated cuboid is within bounds and unique.
	seen := map[Cuboid]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatalf("duplicate cuboid %v", c)
		}
		seen[c] = true
		if !l.Contains(c) {
			t.Fatalf("Contains(%v) = false", c)
		}
		if !s.OLayer().DominatedBy(c) || !c.DominatedBy(s.MLayer()) {
			t.Fatalf("cuboid %v outside layer bounds", c)
		}
	}
	if l.Contains(MustCuboid(3, 3, 3)) {
		t.Fatal("Contains should reject outside cuboid")
	}
	if l.Schema() != s {
		t.Fatal("Schema accessor")
	}
}

func TestLatticeChildrenParents(t *testing.T) {
	s := exampleSchema(t)
	l := NewLattice(s)
	o := s.OLayer() // (1,0,1)
	kids := l.Children(o)
	if len(kids) != 3 {
		t.Fatalf("o-layer children = %d, want 3", len(kids))
	}
	m := s.MLayer()
	if len(l.Children(m)) != 0 {
		t.Fatal("m-layer has no children")
	}
	if len(l.Parents(o)) != 0 {
		t.Fatal("o-layer has no parents")
	}
	parents := l.Parents(m)
	if len(parents) != 3 {
		t.Fatalf("m-layer parents = %d, want 3", len(parents))
	}
	// children/parents are inverse relations.
	for _, p := range parents {
		found := false
		for _, k := range l.Children(p) {
			if k.Equal(m) {
				found = true
			}
		}
		if !found {
			t.Fatalf("m-layer missing from children of %v", p)
		}
	}
}

func TestDefaultPath(t *testing.T) {
	s := exampleSchema(t)
	l := NewLattice(s)
	p := l.DefaultPath()
	// Steps: A 1→2 (1 step), B 0→2 (2 steps), C 1→2 (1 step) = 5 cuboids.
	if len(p.Cuboids) != 5 {
		t.Fatalf("path length = %d, want 5", len(p.Cuboids))
	}
	if !p.Cuboids[0].Equal(s.OLayer()) || !p.Cuboids[len(p.Cuboids)-1].Equal(s.MLayer()) {
		t.Fatal("path endpoints wrong")
	}
	// Consecutive cuboids differ by one level in one dimension.
	for i := 1; i < len(p.Cuboids); i++ {
		diff := 0
		for d := 0; d < 3; d++ {
			diff += p.Cuboids[i].Level(d) - p.Cuboids[i-1].Level(d)
		}
		if diff != 1 {
			t.Fatalf("step %d drills %d levels", i, diff)
		}
	}
	if !p.OnPath(s.OLayer()) || p.OnPath(MustCuboid(2, 0, 1)) == p.OnPath(MustCuboid(2, 2, 1)) && false {
		t.Fatal("OnPath endpoint check")
	}
	if p.Depth(s.OLayer()) != 0 || p.Depth(s.MLayer()) != 4 {
		t.Fatal("Depth endpoints")
	}
	if p.Depth(MustCuboid(7, 7, 7)) != -1 {
		t.Fatal("Depth of non-path cuboid")
	}
}

func TestPathFromSteps(t *testing.T) {
	s := exampleSchema(t)
	l := NewLattice(s)
	// Paper-style path: drill B fully first, then A, then C.
	p, err := l.PathFromSteps([]int{1, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuboids) != 5 {
		t.Fatalf("path length = %d", len(p.Cuboids))
	}
	want := []Cuboid{
		MustCuboid(1, 0, 1),
		MustCuboid(1, 1, 1),
		MustCuboid(1, 2, 1),
		MustCuboid(2, 2, 1),
		MustCuboid(2, 2, 2),
	}
	for i, c := range want {
		if !p.Cuboids[i].Equal(c) {
			t.Fatalf("path[%d] = %v, want %v", i, p.Cuboids[i], c)
		}
	}
	// Invalid step sequences.
	if _, err := l.PathFromSteps([]int{0, 0}); err == nil {
		t.Fatal("expected over-drill error")
	}
	if _, err := l.PathFromSteps([]int{9}); err == nil {
		t.Fatal("expected unknown-dimension error")
	}
	if _, err := l.PathFromSteps([]int{1}); err == nil {
		t.Fatal("expected incomplete-path error")
	}
}

func TestPathCovering(t *testing.T) {
	s := exampleSchema(t)
	l := NewLattice(s)
	p, _ := l.PathFromSteps([]int{1, 1, 0, 2})
	// (2,0,1) is off-path; the shallowest dominating path cuboid is
	// (2,2,1) at depth 3.
	cov := p.Covering(MustCuboid(2, 0, 1))
	if !cov.Equal(MustCuboid(2, 2, 1)) {
		t.Fatalf("Covering = %v", cov)
	}
	// A path cuboid covers itself.
	if !p.Covering(MustCuboid(1, 1, 1)).Equal(MustCuboid(1, 1, 1)) {
		t.Fatal("path cuboid should cover itself")
	}
	// (1,0,2): first dominating path cuboid is the m-layer (2,2,2).
	if !p.Covering(MustCuboid(1, 0, 2)).Equal(s.MLayer()) {
		t.Fatalf("Covering = %v", p.Covering(MustCuboid(1, 0, 2)))
	}
}
