package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: roll-up is transitive and functional — lifting a cell key from
// the m-layer to any intermediate cuboid and then to any coarser cuboid
// equals lifting directly, for random fan-out hierarchies and levels.
func TestRollUpTransitivityProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(55))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDims := 1 + r.Intn(4)
		dims := make([]Dimension, nDims)
		for d := 0; d < nDims; d++ {
			levels := 1 + r.Intn(4)
			fanout := 2 + r.Intn(4)
			h, err := NewFanoutHierarchy(string(rune('A'+d)), fanout, levels)
			if err != nil {
				return false
			}
			dims[d] = Dimension{Name: string(rune('A' + d)), Hierarchy: h, MLevel: levels, OLevel: 0}
		}
		s, err := NewSchema(dims...)
		if err != nil {
			return false
		}
		m := s.MLayer()
		// Random m-layer cell.
		var members [MaxDims]int32
		for d := 0; d < nDims; d++ {
			members[d] = int32(r.Intn(s.Dims[d].Hierarchy.Cardinality(s.Dims[d].MLevel)))
		}
		base := CellKey{Cuboid: m, Members: members}
		// Random mid and coarse cuboids with mid dominating coarse.
		mid := m
		coarse := m
		for d := 0; d < nDims; d++ {
			lm := r.Intn(s.Dims[d].MLevel + 1)
			lc := r.Intn(lm + 1)
			mid = mid.WithLevel(d, lm)
			coarse = coarse.WithLevel(d, lc)
		}
		viaMid, err := RollUpKey(s, base, mid)
		if err != nil {
			return false
		}
		twoStep, err := RollUpKey(s, viaMid, coarse)
		if err != nil {
			return false
		}
		direct, err := RollUpKey(s, base, coarse)
		if err != nil {
			return false
		}
		if twoStep != direct {
			return false
		}
		// Descendant predicate consistency.
		if !IsDescendantCell(s, base, direct) {
			return false
		}
		return IsDescendantCell(s, viaMid, twoStep)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: lattice Children/Parents are inverse relations and every
// cuboid's children/parents stay within the lattice, for random schemas.
func TestLatticeStructureProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(56))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nDims := 1 + r.Intn(3)
		dims := make([]Dimension, nDims)
		for d := 0; d < nDims; d++ {
			levels := 1 + r.Intn(3)
			h, err := NewFanoutHierarchy(string(rune('A'+d)), 2, levels)
			if err != nil {
				return false
			}
			o := r.Intn(levels + 1)
			dims[d] = Dimension{Name: string(rune('A' + d)), Hierarchy: h, MLevel: levels, OLevel: o}
		}
		s, err := NewSchema(dims...)
		if err != nil {
			return false
		}
		l := NewLattice(s)
		if l.Size() != s.CuboidCount() {
			return false
		}
		for _, c := range l.Cuboids() {
			for _, child := range l.Children(c) {
				if !l.Contains(child) {
					return false
				}
				// c must be among the child's parents.
				found := false
				for _, p := range l.Parents(child) {
					if p.Equal(c) {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// The default path visits Σ(m−o) + 1 cuboids, all in the lattice,
		// each dominated by the next.
		p := l.DefaultPath()
		want := 1
		for d := 0; d < nDims; d++ {
			want += s.Dims[d].MLevel - s.Dims[d].OLevel
		}
		if len(p.Cuboids) != want {
			return false
		}
		for i, pc := range p.Cuboids {
			if !l.Contains(pc) {
				return false
			}
			if i > 0 && !p.Cuboids[i-1].DominatedBy(pc) {
				return false
			}
		}
		// Covering always dominates and sits on the path.
		for _, c := range l.Cuboids() {
			cov := p.Covering(c)
			if !p.OnPath(cov) || !c.DominatedBy(cov) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
