package cube

// This file is the cubing hot path's precomputation layer. Ancestor() walks
// a Hierarchy interface one Parent call per level — fine at the API surface,
// but the cuboid×leaf loop of m/o-cubing and the per-attribute resolution of
// H-tree inserts resolve ancestors millions of times per unit. AncestorIndex
// precomputes every (dimension, from-level, to-level) mapping so those loops
// do one integer division or one slice index per resolution, with results
// identical to Ancestor by construction (the tables are built by the same
// Parent walk, and the divisor fast path is exactly FanoutHierarchy.Parent
// iterated).

// maxDenseTableMembers caps dense table construction: a hierarchy level with
// more members than this (and no divisor fast path) falls back to walking
// Parent, trading speed for not materializing multi-hundred-MB tables.
const maxDenseTableMembers = 1 << 22

// dimIndex resolves ancestors for one dimension. Exactly one strategy is
// active:
//
//   - fanout ≥ 1: ancestor(from→to) = member / fanout^(from−to), the
//     FanoutHierarchy law (one divide, no memory);
//   - tables != nil: tables[from][to] is a dense member→ancestor slice
//     (levels 1 ≤ to < from; to == from is the identity and to == 0 is the
//     single ALL member, neither needs a table);
//   - otherwise: walk h.Parent (oversized non-fanout hierarchy).
type dimIndex struct {
	h      Hierarchy
	levels int
	fanout int64
	// pows[k] = fanout^k, saturated to avoid overflow on deep hierarchies;
	// member/pows[k] is then 0, matching the true ancestor (member counts
	// are bounded by int32, so a saturated power exceeds any member).
	pows   []int64
	tables [][][]int32
}

func newDimIndex(h Hierarchy) dimIndex {
	di := dimIndex{h: h, levels: h.Levels()}
	if fh, ok := h.(*FanoutHierarchy); ok {
		di.fanout = int64(fh.Fanout)
		di.pows = make([]int64, di.levels+1)
		di.pows[0] = 1
		const saturate = int64(1) << 40 // > max int32: division yields 0
		for k := 1; k <= di.levels; k++ {
			if di.pows[k-1] >= saturate/di.fanout {
				di.pows[k] = saturate
			} else {
				di.pows[k] = di.pows[k-1] * di.fanout
			}
		}
		return di
	}
	if h.Cardinality(di.levels) > maxDenseTableMembers {
		return di // Parent-walk fallback
	}
	// tables[from][to]: built coarse-to-fine per from-level by extending the
	// previous level's tables through one Parent call per member — the same
	// walk Ancestor does, so entries are identical by construction.
	di.tables = make([][][]int32, di.levels+1)
	for from := 2; from <= di.levels; from++ {
		card := h.Cardinality(from)
		di.tables[from] = make([][]int32, from)
		for to := from - 1; to >= 1; to-- {
			tab := make([]int32, card)
			if to == from-1 {
				for m := range tab {
					tab[m] = h.Parent(from, int32(m))
				}
			} else {
				finer := di.tables[from][to+1]
				coarser := di.tables[to+1][to] // (to+1)→to, already built
				for m := range tab {
					tab[m] = coarser[finer[m]]
				}
			}
			di.tables[from][to] = tab
		}
	}
	return di
}

// ancestor resolves the level-`to` ancestor of `member` at level `from`.
// Levels must satisfy 0 ≤ to ≤ from ≤ Levels(); member must be in range —
// callers on the hot path have validated both already.
func (di *dimIndex) ancestor(from, to int, member int32) int32 {
	if to == from {
		return member
	}
	if to == 0 {
		return 0
	}
	if di.fanout > 0 {
		return int32(int64(member) / di.pows[from-to])
	}
	if di.tables != nil {
		return di.tables[from][to][member]
	}
	return Ancestor(di.h, from, to, member)
}

// AncestorIndex precomputes ancestor resolution for every dimension of a
// schema. Build one per cubing run (construction is O(levels) per fanout
// dimension and O(levels²·members) per explicitly-enumerated dimension,
// both negligible against a cube pass) and resolve with Ancestor/RollUp in
// the inner loops.
type AncestorIndex struct {
	dims []dimIndex
}

// NewAncestorIndex builds the index for a schema.
func NewAncestorIndex(s *Schema) *AncestorIndex {
	ix := &AncestorIndex{dims: make([]dimIndex, len(s.Dims))}
	for d, dim := range s.Dims {
		ix.dims[d] = newDimIndex(dim.Hierarchy)
	}
	return ix
}

// Ancestor is the indexed equivalent of cube.Ancestor for dimension d:
// it lifts a member at level `from` to the coarser level `to`. Arguments
// must be in range (0 ≤ to ≤ from ≤ Levels, member < Cardinality(from));
// hot-path callers have validated them already.
func (ix *AncestorIndex) Ancestor(d, from, to int, member int32) int32 {
	return ix.dims[d].ancestor(from, to, member)
}

// RollUp lifts a cell key to the coarser cuboid `to` — RollUpKey without
// the domination re-validation and the per-level interface walk. The
// caller guarantees to.DominatedBy(k.Cuboid) (hoist the check out of the
// leaf loop; cubing checks once per cuboid pass).
func (ix *AncestorIndex) RollUp(k CellKey, to Cuboid) CellKey {
	out := CellKey{Cuboid: to}
	for d := 0; d < int(k.Cuboid.n); d++ {
		out.Members[d] = ix.dims[d].ancestor(int(k.Cuboid.levels[d]), int(to.levels[d]), k.Members[d])
	}
	return out
}

// DivisorFor reports whether dimension d resolves (from→to) by integer
// division, returning the divisor (the fanout fast path; 1 when to == from).
// Tight loops hoist this out and divide inline instead of calling Ancestor
// per element.
func (ix *AncestorIndex) DivisorFor(d, from, to int) (int64, bool) {
	di := &ix.dims[d]
	if to == from {
		return 1, true
	}
	if di.fanout > 0 {
		return di.pows[from-to], true
	}
	return 0, false
}

// TableFor returns the dense member→ancestor table for dimension d's
// (from→to) resolution, or nil when the dimension is not table-backed
// (fanout fast path, identity/ALL levels, or the oversized fallback).
func (ix *AncestorIndex) TableFor(d, from, to int) []int32 {
	di := &ix.dims[d]
	if di.tables == nil || to <= 0 || to >= from {
		return nil
	}
	return di.tables[from][to]
}
