package cube

import (
	"fmt"
	"strings"
)

// Cuboid identifies one group-by between the o- and m-layers: the level
// chosen per dimension (paper Figure 6 nodes, e.g. (A1, B2, C1)). It is a
// comparable value usable as a map key.
type Cuboid struct {
	n      uint8
	levels [MaxDims]uint8
}

// NewCuboid builds a cuboid from per-dimension levels.
func NewCuboid(levels ...int) (Cuboid, error) {
	if len(levels) == 0 || len(levels) > MaxDims {
		return Cuboid{}, fmt.Errorf("%w: %d dimensions", ErrSchema, len(levels))
	}
	var c Cuboid
	c.n = uint8(len(levels))
	for i, l := range levels {
		if l < 0 || l > 255 {
			return Cuboid{}, fmt.Errorf("%w: level %d", ErrSchema, l)
		}
		c.levels[i] = uint8(l)
	}
	return c, nil
}

// MustCuboid is NewCuboid for literals; it panics on error.
func MustCuboid(levels ...int) Cuboid {
	c, err := NewCuboid(levels...)
	if err != nil {
		panic(err)
	}
	return c
}

// NumDims returns the number of dimensions.
func (c Cuboid) NumDims() int { return int(c.n) }

// Level returns the level chosen for dimension d.
func (c Cuboid) Level(d int) int { return int(c.levels[d]) }

// WithLevel returns a copy with dimension d set to the given level.
func (c Cuboid) WithLevel(d, level int) Cuboid {
	out := c
	out.levels[d] = uint8(level)
	return out
}

// DominatedBy reports whether every level of c is coarser-or-equal to the
// corresponding level of finer — i.e. finer's cells can be rolled up to
// c's cells ("c is an ancestor cuboid of finer").
func (c Cuboid) DominatedBy(finer Cuboid) bool {
	if c.n != finer.n {
		return false
	}
	for i := 0; i < int(c.n); i++ {
		if c.levels[i] > finer.levels[i] {
			return false
		}
	}
	return true
}

// Equal reports cuboid identity.
func (c Cuboid) Equal(o Cuboid) bool { return c == o }

// Describe renders the cuboid against a schema, e.g. "(A1, *, C2)".
func (c Cuboid) Describe(s *Schema) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < int(c.n); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.levels[i] == 0 {
			b.WriteByte('*')
		} else {
			fmt.Fprintf(&b, "%s%d", s.Dims[i].Name, c.levels[i])
		}
	}
	b.WriteByte(')')
	return b.String()
}

// CellKey identifies one cell: its cuboid plus the member chosen per
// dimension at that cuboid's levels. Comparable, usable as a map key.
type CellKey struct {
	Cuboid  Cuboid
	Members [MaxDims]int32
}

// NewCellKey assembles a cell key; members beyond the cuboid's dimension
// count are zeroed so equal cells compare equal.
func NewCellKey(c Cuboid, members ...int32) CellKey {
	var k CellKey
	k.Cuboid = c
	for i := 0; i < int(c.n) && i < len(members); i++ {
		k.Members[i] = members[i]
	}
	return k
}

// Member returns the member for dimension d.
func (k CellKey) Member(d int) int32 { return k.Members[d] }

// Describe renders the cell against a schema, e.g. "(west, *, core-1)".
func (k CellKey) Describe(s *Schema) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < k.Cuboid.NumDims(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Dims[i].Hierarchy.MemberName(k.Cuboid.Level(i), k.Members[i]))
	}
	b.WriteByte(')')
	return b.String()
}

// CompareKeys orders cell keys totally: by dimension count, then cuboid
// levels, then members, all lexicographically. It anchors every
// deterministic ordering in the system — sorted alert output, canonical
// float-aggregation order — so results are reproducible across runs and
// engine shardings.
func CompareKeys(a, b CellKey) int {
	if a.Cuboid.n != b.Cuboid.n {
		if a.Cuboid.n < b.Cuboid.n {
			return -1
		}
		return 1
	}
	for d := 0; d < int(a.Cuboid.n); d++ {
		if a.Cuboid.levels[d] != b.Cuboid.levels[d] {
			if a.Cuboid.levels[d] < b.Cuboid.levels[d] {
				return -1
			}
			return 1
		}
	}
	for d := 0; d < int(a.Cuboid.n); d++ {
		if a.Members[d] != b.Members[d] {
			if a.Members[d] < b.Members[d] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// RollUpKey lifts a cell key from its cuboid to the coarser cuboid `to`
// (which must be dominated by the key's cuboid) by walking each
// dimension's hierarchy upward.
func RollUpKey(s *Schema, k CellKey, to Cuboid) (CellKey, error) {
	if !to.DominatedBy(k.Cuboid) {
		return CellKey{}, fmt.Errorf("%w: cuboid %v does not dominate %v", ErrSchema, k.Cuboid, to)
	}
	out := CellKey{Cuboid: to}
	for d := 0; d < k.Cuboid.NumDims(); d++ {
		out.Members[d] = Ancestor(s.Dims[d].Hierarchy, k.Cuboid.Level(d), to.Level(d), k.Members[d])
	}
	return out, nil
}

// IsDescendantCell reports whether cell k rolls up to ancestor cell a
// (k's cuboid must dominate a's; otherwise false).
func IsDescendantCell(s *Schema, k CellKey, a CellKey) bool {
	if !a.Cuboid.DominatedBy(k.Cuboid) {
		return false
	}
	up, err := RollUpKey(s, k, a.Cuboid)
	if err != nil {
		return false
	}
	return up == a
}
