// Package cube models the multi-dimensional space of the regression cube
// (paper §2.1): dimensions with concept hierarchies, the m-layer and
// o-layer critical cuboids (§4.2), cells and their ancestor/descendant
// relations, and the cuboid lattice between the two critical layers
// (Figure 6), including popular drilling paths.
//
// Level numbering follows the paper's Example 5: level 0 is "*" (ALL, the
// highest abstraction), level 1 is the coarsest named level (A1), and
// larger indices are finer (A2, A3, …). A cuboid picks one level per
// dimension; the o-layer is coarser-or-equal and the m-layer finer-or-equal
// on every dimension.
package cube

import (
	"errors"
	"fmt"
	"strings"
)

// MaxDims bounds the number of dimensions so cell keys stay comparable
// fixed-size values. The paper's workloads use ≤ 3 standard dimensions.
const MaxDims = 8

// ErrSchema is returned for invalid schema definitions.
var ErrSchema = errors.New("cube: invalid schema")

// ErrMember is returned for out-of-range member references.
var ErrMember = errors.New("cube: invalid member")

// Hierarchy is a concept hierarchy over one dimension: a balanced tree of
// members with Levels() named levels below "*". Members at each level are
// dense integers [0, Cardinality(level)).
type Hierarchy interface {
	// Levels returns the number of levels below the ALL level.
	Levels() int
	// Cardinality returns the number of members at the given level (≥ 1).
	Cardinality(level int) int
	// Parent maps a member at `level` to its parent member at level−1.
	// Parent of any level-1 member is 0 (the single ALL member).
	Parent(level int, member int32) int32
	// MemberName renders a member for display.
	MemberName(level int, member int32) string
}

// Ancestor lifts a member from `from` up to the coarser level `to` by
// iterating Parent. It panics if to > from (cannot descend).
func Ancestor(h Hierarchy, from, to int, member int32) int32 {
	if to > from {
		panic(fmt.Sprintf("cube: Ancestor cannot descend from level %d to %d", from, to))
	}
	for l := from; l > to; l-- {
		member = h.Parent(l, member)
	}
	return member
}

// FanoutHierarchy is the synthetic-benchmark hierarchy: every member at
// every level has exactly Fanout children, so level l has Fanout^l members
// and Parent is integer division — the generator convention of §5
// ("the node fan-out factor (cardinality) is 10").
type FanoutHierarchy struct {
	Name      string
	Fanout    int
	NumLevels int
}

// NewFanoutHierarchy validates fanout ≥ 1 and levels ≥ 1.
func NewFanoutHierarchy(name string, fanout, levels int) (*FanoutHierarchy, error) {
	if fanout < 1 || levels < 1 {
		return nil, fmt.Errorf("%w: fanout %d, levels %d", ErrSchema, fanout, levels)
	}
	return &FanoutHierarchy{Name: name, Fanout: fanout, NumLevels: levels}, nil
}

// Levels implements Hierarchy.
func (h *FanoutHierarchy) Levels() int { return h.NumLevels }

// Cardinality implements Hierarchy: Fanout^level.
func (h *FanoutHierarchy) Cardinality(level int) int {
	if level <= 0 {
		return 1
	}
	c := 1
	for i := 0; i < level; i++ {
		c *= h.Fanout
	}
	return c
}

// Parent implements Hierarchy by integer division.
func (h *FanoutHierarchy) Parent(level int, member int32) int32 {
	if level <= 1 {
		return 0
	}
	return member / int32(h.Fanout)
}

// MemberName implements Hierarchy.
func (h *FanoutHierarchy) MemberName(level int, member int32) string {
	if level == 0 {
		return "*"
	}
	return fmt.Sprintf("%s.L%d.%d", h.Name, level, member)
}

// NamedHierarchy is an explicitly enumerated hierarchy for real-world
// schemas (examples use it for cities, user groups, interfaces, …).
// Build it level by level with AddLevel.
type NamedHierarchy struct {
	name    string
	levels  [][]string // names per level (level 1 at index 0)
	parents [][]int32  // parent member per member, per level (level 2 at index 0)
	index   []map[string]int32
}

// NewNamedHierarchy returns an empty named hierarchy.
func NewNamedHierarchy(name string) *NamedHierarchy {
	return &NamedHierarchy{name: name}
}

// AddLevel appends the next finer level. names lists the new members;
// parents[i] is the member index at the previous level that names[i] rolls
// up to (must be empty for the first level — all its members' parent is *).
func (h *NamedHierarchy) AddLevel(names []string, parents []int32) error {
	if len(names) == 0 {
		return fmt.Errorf("%w: empty level", ErrSchema)
	}
	if len(h.levels) == 0 {
		if parents != nil {
			return fmt.Errorf("%w: first level must not declare parents", ErrSchema)
		}
	} else {
		if len(parents) != len(names) {
			return fmt.Errorf("%w: %d names but %d parents", ErrSchema, len(names), len(parents))
		}
		prev := len(h.levels[len(h.levels)-1])
		for i, p := range parents {
			if p < 0 || int(p) >= prev {
				return fmt.Errorf("%w: member %q parent %d out of range [0,%d)", ErrSchema, names[i], p, prev)
			}
		}
		cp := make([]int32, len(parents))
		copy(cp, parents)
		h.parents = append(h.parents, cp)
	}
	level := make([]string, len(names))
	copy(level, names)
	h.levels = append(h.levels, level)
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		if _, dup := idx[n]; dup {
			return fmt.Errorf("%w: duplicate member %q", ErrSchema, n)
		}
		idx[n] = int32(i)
	}
	h.index = append(h.index, idx)
	return nil
}

// Levels implements Hierarchy.
func (h *NamedHierarchy) Levels() int { return len(h.levels) }

// Cardinality implements Hierarchy.
func (h *NamedHierarchy) Cardinality(level int) int {
	if level <= 0 {
		return 1
	}
	return len(h.levels[level-1])
}

// Parent implements Hierarchy.
func (h *NamedHierarchy) Parent(level int, member int32) int32 {
	if level <= 1 {
		return 0
	}
	return h.parents[level-2][member]
}

// MemberName implements Hierarchy.
func (h *NamedHierarchy) MemberName(level int, member int32) string {
	if level == 0 {
		return "*"
	}
	return h.levels[level-1][member]
}

// Lookup returns the member index of name at the given level.
func (h *NamedHierarchy) Lookup(level int, name string) (int32, error) {
	if level < 1 || level > len(h.levels) {
		return 0, fmt.Errorf("%w: level %d", ErrMember, level)
	}
	m, ok := h.index[level-1][name]
	if !ok {
		return 0, fmt.Errorf("%w: %q at level %d", ErrMember, name, level)
	}
	return m, nil
}

// Dimension binds a hierarchy to the critical-layer levels chosen for it:
// MLevel (the m-layer, finest analyzed) and OLevel (the o-layer, coarsest
// observed; may be 0 = "*", as dimension B in Example 5).
type Dimension struct {
	Name      string
	Hierarchy Hierarchy
	MLevel    int
	OLevel    int
}

// Schema is the full multi-dimensional shape of a regression cube.
type Schema struct {
	Dims []Dimension
}

// NewSchema validates dimensions and critical-layer levels.
func NewSchema(dims ...Dimension) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: no dimensions", ErrSchema)
	}
	if len(dims) > MaxDims {
		return nil, fmt.Errorf("%w: %d dimensions exceed max %d", ErrSchema, len(dims), MaxDims)
	}
	for i, d := range dims {
		if d.Hierarchy == nil {
			return nil, fmt.Errorf("%w: dimension %d (%s) has no hierarchy", ErrSchema, i, d.Name)
		}
		if d.MLevel < 1 || d.MLevel > d.Hierarchy.Levels() {
			return nil, fmt.Errorf("%w: dimension %s m-level %d outside [1,%d]",
				ErrSchema, d.Name, d.MLevel, d.Hierarchy.Levels())
		}
		if d.OLevel < 0 || d.OLevel > d.MLevel {
			return nil, fmt.Errorf("%w: dimension %s o-level %d outside [0,%d]",
				ErrSchema, d.Name, d.OLevel, d.MLevel)
		}
	}
	return &Schema{Dims: dims}, nil
}

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.Dims) }

// MLayer returns the m-layer cuboid (the base of computation, §4.2).
func (s *Schema) MLayer() Cuboid {
	var c Cuboid
	c.n = uint8(len(s.Dims))
	for i, d := range s.Dims {
		c.levels[i] = uint8(d.MLevel)
	}
	return c
}

// OLayer returns the o-layer cuboid (the observation deck, §4.2).
func (s *Schema) OLayer() Cuboid {
	var c Cuboid
	c.n = uint8(len(s.Dims))
	for i, d := range s.Dims {
		c.levels[i] = uint8(d.OLevel)
	}
	return c
}

// CuboidCount returns the number of cuboids between the m- and o-layers
// inclusive: Π (MLevel−OLevel+1) — "2·3·2 = 12 cuboids" in Example 5.
func (s *Schema) CuboidCount() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.MLevel - d.OLevel + 1
	}
	return n
}

// Describe renders the schema for diagnostics.
func (s *Schema) Describe() string {
	var b strings.Builder
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[o=L%d,m=L%d]", d.Name, d.OLevel, d.MLevel)
	}
	return b.String()
}
