// Package exception implements the paper's exception framework (§4.3): "a
// regression line is exceptional if its slope ≥ the exception threshold,
// where an exception threshold can be defined by a user or an expert for
// each cuboid c, for each dimension level d, or for the whole cube".
//
// Thresholds act on slope magnitude. The package also offers a delta
// detector comparing the current cell's regression against the previous
// time window ("the current quarter vs. the previous one").
package exception

import (
	"math"

	"repro/internal/cube"
	"repro/internal/regression"
)

// Thresholder supplies the slope-magnitude exception threshold for a
// cuboid. The three granularities the paper names — whole cube, per
// dimension level, per cuboid — are the three implementations below.
type Thresholder interface {
	Threshold(c cube.Cuboid) float64
}

// Global applies one threshold to the whole cube.
type Global float64

// Threshold implements Thresholder.
func (g Global) Threshold(cube.Cuboid) float64 { return float64(g) }

// PerCuboid applies cuboid-specific thresholds with a default fallback.
type PerCuboid struct {
	Default   float64
	Overrides map[cube.Cuboid]float64
}

// Threshold implements Thresholder.
func (p PerCuboid) Threshold(c cube.Cuboid) float64 {
	if t, ok := p.Overrides[c]; ok {
		return t
	}
	return p.Default
}

// PerDepth scales the threshold by the cuboid's aggregation depth (total
// level sum): coarser cuboids aggregate more descendants, so their slopes
// are naturally larger; Scale > 0 discounts per level of depth.
type PerDepth struct {
	Base  float64
	Scale float64 // multiplicative factor applied per level of total depth
}

// Threshold implements Thresholder.
func (p PerDepth) Threshold(c cube.Cuboid) float64 {
	depth := 0
	for d := 0; d < c.NumDims(); d++ {
		depth += c.Level(d)
	}
	return p.Base * math.Pow(p.Scale, float64(depth))
}

// IsException reports whether a cell's regression is exceptional under the
// threshold: |slope| ≥ threshold.
func IsException(isb regression.ISB, threshold float64) bool {
	return math.Abs(isb.Slope) >= threshold
}

// Delta detects exceptions by comparing the regression of the current
// window against the previous one — the paper's "current quarter vs. the
// last quarter" reading of exceptional change.
type Delta struct {
	// MinSlopeChange flags cells whose slope moved at least this much
	// between the previous and current window.
	MinSlopeChange float64
}

// Exceptional reports whether the change from prev to cur is exceptional.
// With no previous window (ok=false), nothing is exceptional yet.
func (d Delta) Exceptional(cur regression.ISB, prev regression.ISB, havePrev bool) bool {
	if !havePrev {
		return false
	}
	return math.Abs(cur.Slope-prev.Slope) >= d.MinSlopeChange
}
