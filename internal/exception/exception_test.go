package exception

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/regression"
)

func TestGlobal(t *testing.T) {
	g := Global(0.5)
	if g.Threshold(cube.MustCuboid(1, 2)) != 0.5 {
		t.Fatal("global threshold must ignore cuboid")
	}
}

func TestIsException(t *testing.T) {
	up := regression.ISB{Slope: 0.6}
	down := regression.ISB{Slope: -0.6}
	flat := regression.ISB{Slope: 0.1}
	if !IsException(up, 0.5) || !IsException(down, 0.5) {
		t.Fatal("magnitude must count both directions")
	}
	if IsException(flat, 0.5) {
		t.Fatal("0.1 is below threshold")
	}
	// Boundary: ≥ is inclusive.
	if !IsException(regression.ISB{Slope: 0.5}, 0.5) {
		t.Fatal("threshold is inclusive")
	}
}

func TestPerCuboid(t *testing.T) {
	c1 := cube.MustCuboid(1, 1)
	c2 := cube.MustCuboid(2, 2)
	p := PerCuboid{Default: 1, Overrides: map[cube.Cuboid]float64{c1: 0.25}}
	if p.Threshold(c1) != 0.25 {
		t.Fatal("override missed")
	}
	if p.Threshold(c2) != 1 {
		t.Fatal("default missed")
	}
}

func TestPerDepth(t *testing.T) {
	p := PerDepth{Base: 1, Scale: 0.5}
	// depth 0 → 1; depth 2 → 0.25; depth 4 → 0.0625.
	if p.Threshold(cube.MustCuboid(0, 0)) != 1 {
		t.Fatal("depth-0 threshold")
	}
	if p.Threshold(cube.MustCuboid(1, 1)) != 0.25 {
		t.Fatal("depth-2 threshold")
	}
	if p.Threshold(cube.MustCuboid(2, 2)) != 0.0625 {
		t.Fatal("depth-4 threshold")
	}
}

func TestDelta(t *testing.T) {
	d := Delta{MinSlopeChange: 0.3}
	prev := regression.ISB{Slope: 0.1}
	curBig := regression.ISB{Slope: 0.5}
	curSmall := regression.ISB{Slope: 0.2}
	if !d.Exceptional(curBig, prev, true) {
		t.Fatal("0.4 change should trip")
	}
	if d.Exceptional(curSmall, prev, true) {
		t.Fatal("0.1 change should not trip")
	}
	if d.Exceptional(curBig, regression.ISB{}, false) {
		t.Fatal("no previous window → no exception")
	}
	// Negative direction counts too.
	if !d.Exceptional(regression.ISB{Slope: -0.25}, prev, true) {
		t.Fatal("negative change should trip")
	}
}
