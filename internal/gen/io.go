package gen

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
)

// WriteCSV emits a dataset in the cmd/datagen format: a header line, then
// one row per m-layer tuple — dim0..dimN, tb, te, base, slope.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	dims := ds.Schema.NumDims()
	header := make([]string, 0, dims+4)
	for d := 0; d < dims; d++ {
		header = append(header, fmt.Sprintf("dim%d", d))
	}
	header = append(header, "tb", "te", "base", "slope")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, in := range ds.Inputs {
		for d, m := range in.Members {
			row[d] = strconv.FormatInt(int64(m), 10)
		}
		row[dims] = strconv.FormatInt(in.Measure.Tb, 10)
		row[dims+1] = strconv.FormatInt(in.Measure.Te, 10)
		row[dims+2] = strconv.FormatFloat(in.Measure.Base, 'g', -1, 64)
		row[dims+3] = strconv.FormatFloat(in.Measure.Slope, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV against the given schema.
// Every member is range-checked against the schema's m-layer
// cardinalities.
func ReadCSV(r io.Reader, schema *cube.Schema) ([]core.Input, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumDims() + 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gen: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: empty csv", ErrSpec)
	}
	dims := schema.NumDims()
	inputs := make([]core.Input, 0, len(rows)-1)
	for i, row := range rows[1:] { // skip header
		members := make([]int32, dims)
		for d := 0; d < dims; d++ {
			v, err := strconv.ParseInt(row[d], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("gen: row %d dim %d: %w", i+1, d, err)
			}
			card := schema.Dims[d].Hierarchy.Cardinality(schema.Dims[d].MLevel)
			if v < 0 || int(v) >= card {
				return nil, fmt.Errorf("%w: row %d member %d outside [0,%d)", ErrSpec, i+1, v, card)
			}
			members[d] = int32(v)
		}
		tb, err := strconv.ParseInt(row[dims], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d tb: %w", i+1, err)
		}
		te, err := strconv.ParseInt(row[dims+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d te: %w", i+1, err)
		}
		if te < tb {
			return nil, fmt.Errorf("%w: row %d interval [%d,%d]", ErrSpec, i+1, tb, te)
		}
		base, err := strconv.ParseFloat(row[dims+2], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d base: %w", i+1, err)
		}
		slope, err := strconv.ParseFloat(row[dims+3], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d slope: %w", i+1, err)
		}
		isb := regression.ISB{Tb: tb, Te: te, Base: base, Slope: slope}
		if !isb.IsFinite() {
			return nil, fmt.Errorf("%w: row %d has non-finite measure", ErrSpec, i+1)
		}
		inputs = append(inputs, core.Input{Members: members, Measure: isb})
	}
	return inputs, nil
}

// AppendStreamRecord appends one text stream record —
// tick,dim0,...,dimN,value plus a newline — to dst and returns the
// extended slice. This is the single encoder for streamd's text input
// format; RecordReader is its inverse.
func AppendStreamRecord(dst []byte, tick int64, members []int32, value float64) []byte {
	dst = strconv.AppendInt(dst, tick, 10)
	for _, m := range members {
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(m), 10)
	}
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, value, 'g', -1, 64)
	return append(dst, '\n')
}

// RecordReader parses the text stream record format
// (tick,dim0,...,dimN,value, one record per line, blank lines skipped) for
// a fixed dimension count. It is the one decoder for the format — streamd
// and every test consume it — and it parses off the caller's bufio.Reader
// without pulling more input than the records it returns, so a consumer
// can batch by "what has already arrived" (Buffered) without adding
// latency to a paced stream. Not safe for concurrent use.
type RecordReader struct {
	br      *bufio.Reader
	dims    int
	members []int32
	line    []byte
}

// NewRecordReader returns a reader for records with dims dimension
// members.
func NewRecordReader(br *bufio.Reader, dims int) *RecordReader {
	return &RecordReader{br: br, dims: dims, members: make([]int32, dims)}
}

// Buffered reports how many input bytes are already in memory — when it
// is 0 the next Next will block on the underlying reader.
func (r *RecordReader) Buffered() int { return r.br.Buffered() }

// Next parses one record. The members slice aliases storage reused by the
// following Next — copy it to retain it. A clean end of input is io.EOF.
func (r *RecordReader) Next() (tick int64, members []int32, value float64, err error) {
	line, err := r.readLine()
	if err != nil {
		return 0, nil, 0, err
	}
	rest := line
	i := indexComma(rest)
	if i < 0 {
		return 0, nil, 0, fmt.Errorf("gen: record has too few fields, want %d", r.dims+2)
	}
	tick, err = parseIntField(rest[:i], "tick")
	if err != nil {
		return 0, nil, 0, err
	}
	rest = rest[i+1:]
	for d := 0; d < r.dims; d++ {
		i = indexComma(rest)
		if i < 0 {
			return 0, nil, 0, fmt.Errorf("gen: record has too few fields, want %d", r.dims+2)
		}
		v, err := parseIntField(rest[:i], "member")
		if err != nil {
			return 0, nil, 0, fmt.Errorf("gen: dim %d: %w", d, err)
		}
		if v < -1<<31 || v > 1<<31-1 {
			return 0, nil, 0, fmt.Errorf("gen: dim %d: member %d outside int32", d, v)
		}
		r.members[d] = int32(v)
		rest = rest[i+1:]
	}
	if indexComma(rest) >= 0 {
		return 0, nil, 0, fmt.Errorf("gen: record has more than %d fields", r.dims+2)
	}
	value, err = strconv.ParseFloat(string(rest), 64)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("gen: value: %w", err)
	}
	return tick, r.members, value, nil
}

// readLine returns the next non-blank line with its terminator stripped,
// reusing internal storage. A final line without a newline still counts.
func (r *RecordReader) readLine() ([]byte, error) {
	for {
		r.line = r.line[:0]
		for {
			frag, err := r.br.ReadSlice('\n')
			r.line = append(r.line, frag...)
			if err == bufio.ErrBufferFull {
				continue
			}
			if err != nil && (err != io.EOF || len(r.line) == 0) {
				return nil, err
			}
			break
		}
		line := r.line
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > 0 {
			return line, nil
		}
	}
}

func indexComma(b []byte) int {
	for i, c := range b {
		if c == ',' {
			return i
		}
	}
	return -1
}

// parseIntField is strconv.ParseInt(s, 10, 64) over bytes, avoiding the
// per-field string allocation on the ingest hot path.
func parseIntField(b []byte, what string) (int64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		neg = s[0] == '-'
		s = s[1:]
	}
	// 19 digits bound any int64; longer inputs could wrap uint64 silently.
	if len(s) == 0 || len(s) > 19 {
		return 0, fmt.Errorf("gen: %s: bad number %q", what, b)
	}
	var n uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("gen: %s: bad number %q", what, b)
		}
		n = n*10 + uint64(c-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, fmt.Errorf("gen: %s: number %q overflows", what, b)
		}
		return -int64(n), nil
	}
	if n >= 1<<63 {
		return 0, fmt.Errorf("gen: %s: number %q overflows", what, b)
	}
	return int64(n), nil
}
