package gen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
)

// WriteCSV emits a dataset in the cmd/datagen format: a header line, then
// one row per m-layer tuple — dim0..dimN, tb, te, base, slope.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	dims := ds.Schema.NumDims()
	header := make([]string, 0, dims+4)
	for d := 0; d < dims; d++ {
		header = append(header, fmt.Sprintf("dim%d", d))
	}
	header = append(header, "tb", "te", "base", "slope")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, in := range ds.Inputs {
		for d, m := range in.Members {
			row[d] = strconv.FormatInt(int64(m), 10)
		}
		row[dims] = strconv.FormatInt(in.Measure.Tb, 10)
		row[dims+1] = strconv.FormatInt(in.Measure.Te, 10)
		row[dims+2] = strconv.FormatFloat(in.Measure.Base, 'g', -1, 64)
		row[dims+3] = strconv.FormatFloat(in.Measure.Slope, 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV against the given schema.
// Every member is range-checked against the schema's m-layer
// cardinalities.
func ReadCSV(r io.Reader, schema *cube.Schema) ([]core.Input, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumDims() + 4
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gen: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: empty csv", ErrSpec)
	}
	dims := schema.NumDims()
	inputs := make([]core.Input, 0, len(rows)-1)
	for i, row := range rows[1:] { // skip header
		members := make([]int32, dims)
		for d := 0; d < dims; d++ {
			v, err := strconv.ParseInt(row[d], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("gen: row %d dim %d: %w", i+1, d, err)
			}
			card := schema.Dims[d].Hierarchy.Cardinality(schema.Dims[d].MLevel)
			if v < 0 || int(v) >= card {
				return nil, fmt.Errorf("%w: row %d member %d outside [0,%d)", ErrSpec, i+1, v, card)
			}
			members[d] = int32(v)
		}
		tb, err := strconv.ParseInt(row[dims], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d tb: %w", i+1, err)
		}
		te, err := strconv.ParseInt(row[dims+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d te: %w", i+1, err)
		}
		if te < tb {
			return nil, fmt.Errorf("%w: row %d interval [%d,%d]", ErrSpec, i+1, tb, te)
		}
		base, err := strconv.ParseFloat(row[dims+2], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d base: %w", i+1, err)
		}
		slope, err := strconv.ParseFloat(row[dims+3], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: row %d slope: %w", i+1, err)
		}
		isb := regression.ISB{Tb: tb, Te: te, Base: base, Slope: slope}
		if !isb.IsFinite() {
			return nil, fmt.Errorf("%w: row %d has non-finite measure", ErrSpec, i+1)
		}
		inputs = append(inputs, core.Input{Members: members, Measure: isb})
	}
	return inputs, nil
}
