package gen

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exception"
)

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("D3L3C10T100K")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dims != 3 || sp.Levels != 3 || sp.Fanout != 10 || sp.Tuples != 100000 {
		t.Fatalf("spec = %+v", sp)
	}
	if sp.String() != "D3L3C10T100K" {
		t.Fatalf("String = %q", sp.String())
	}
	sp2, err := ParseSpec("d2l4c5t1m")
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Tuples != 1000000 || sp2.String() != "D2L4C5T1M" {
		t.Fatalf("spec2 = %+v (%s)", sp2, sp2.String())
	}
	sp3, err := ParseSpec("D1L1C1T7")
	if err != nil {
		t.Fatal(err)
	}
	if sp3.Tuples != 7 || sp3.String() != "D1L1C1T7" {
		t.Fatalf("spec3 = %+v", sp3)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "D3", "D3L3", "D3L3C10", "L3D3C10T1K", "D3L3C10T", "DXL3C10T1K",
		"D3L3C10T1K!", "D3L3C10T1G", "D0L3C10T1K", "D3L0C10T1K", "D3L3C0T1K",
		"D3L3C10T0", "D99L3C10T1K",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Config{Spec: Spec{Dims: 3, Levels: 2, Fanout: 4, Tuples: 500}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Inputs) != 500 {
		t.Fatalf("inputs = %d", len(ds.Inputs))
	}
	if ds.Schema.NumDims() != 3 {
		t.Fatalf("dims = %d", ds.Schema.NumDims())
	}
	if ds.Schema.CuboidCount() != 8 { // (2-1+1)^3
		t.Fatalf("cuboids = %d", ds.Schema.CuboidCount())
	}
	card := int32(16) // fanout^levels
	for _, in := range ds.Inputs {
		if len(in.Members) != 3 {
			t.Fatal("member count")
		}
		for _, m := range in.Members {
			if m < 0 || m >= card {
				t.Fatalf("member %d out of range", m)
			}
		}
		if !in.Measure.IsFinite() {
			t.Fatal("non-finite measure")
		}
		if in.Measure.Tb != 0 || in.Measure.Te != 9 {
			t.Fatalf("default interval = [%d,%d]", in.Measure.Tb, in.Measure.Te)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 100}, Seed: 42}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.Inputs {
		if a.Inputs[i].Measure != b.Inputs[i].Measure {
			t.Fatal("same seed must give identical measures")
		}
		for d := range a.Inputs[i].Members {
			if a.Inputs[i].Members[d] != b.Inputs[i].Members[d] {
				t.Fatal("same seed must give identical members")
			}
		}
	}
	c, _ := Generate(Config{Spec: cfg.Spec, Seed: 43})
	same := true
	for i := range a.Inputs {
		if a.Inputs[i].Measure != c.Inputs[i].Measure {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	if _, err := Generate(Config{Spec: Spec{Dims: 0, Levels: 1, Fanout: 1, Tuples: 1}}); err == nil {
		t.Fatal("expected invalid spec error")
	}
}

func TestGenerateSkewConcentratesMembers(t *testing.T) {
	spec := Spec{Dims: 1, Levels: 2, Fanout: 10, Tuples: 3000}
	uniform, err := Generate(Config{Spec: spec, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Generate(Config{Spec: spec, Seed: 4, Skew: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(ds *Dataset) int {
		seen := map[int32]bool{}
		for _, in := range ds.Inputs {
			seen[in.Members[0]] = true
		}
		return len(seen)
	}
	du, dk := distinct(uniform), distinct(skewed)
	if dk >= du {
		t.Fatalf("skewed distinct members %d should be below uniform %d", dk, du)
	}
	// Skewed members still land in range.
	card := int32(100)
	for _, in := range skewed.Inputs {
		if in.Members[0] < 0 || in.Members[0] >= card {
			t.Fatalf("member %d out of range", in.Members[0])
		}
	}
}

func TestGenerateRawFitsSeries(t *testing.T) {
	ds, err := GenerateRaw(Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 50}, Seed: 7, Ticks: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ds.Inputs {
		if in.Measure.Tb != 0 || in.Measure.Te != 19 {
			t.Fatalf("raw interval = [%d,%d]", in.Measure.Tb, in.Measure.Te)
		}
		if !in.Measure.IsFinite() {
			t.Fatal("non-finite fitted measure")
		}
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Generate(Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 100}, Seed: 3})
	sub, err := ds.Subset(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Inputs) != 40 || sub.Spec.Tuples != 40 {
		t.Fatalf("subset = %d tuples", len(sub.Inputs))
	}
	if sub.Schema != ds.Schema {
		t.Fatal("subset must share the schema")
	}
	if _, err := ds.Subset(0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := ds.Subset(101); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCalibrateThresholdHitsRate(t *testing.T) {
	ds, _ := Generate(Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 4, Tuples: 800}, Seed: 11})
	for _, rate := range []float64{0.001, 0.01, 0.1, 0.5} {
		thr := ds.CalibrateThreshold(rate)
		got := ds.ExceptionRateAt(thr)
		// Must be within a factor of 2 or an absolute 0.5% of target
		// (ties and discreteness allow slack at tiny rates).
		if math.Abs(got-rate) > 0.005 && (got < rate/2 || got > rate*2) {
			t.Fatalf("rate %g: calibrated threshold %g gives rate %g", rate, thr, got)
		}
	}
}

func TestCalibrateThresholdEdges(t *testing.T) {
	ds, _ := Generate(Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 100}, Seed: 13})
	if thr := ds.CalibrateThreshold(0); ds.ExceptionRateAt(thr) != 0 {
		t.Fatal("rate 0 must yield no exceptions")
	}
	if thr := ds.CalibrateThreshold(1); thr != 0 {
		t.Fatalf("rate 1 threshold = %g, want 0", thr)
	}
	if got := ds.ExceptionRateAt(0); got != 1 {
		t.Fatalf("rate at threshold 0 = %g, want 1", got)
	}
}

// The calibrated exception rate must drive the engine's retained exception
// count to approximately rate × total cells.
func TestCalibrationDrivesEngine(t *testing.T) {
	ds, _ := Generate(Config{Spec: Spec{Dims: 2, Levels: 2, Fanout: 4, Tuples: 500}, Seed: 17})
	rate := 0.05
	thr := ds.CalibrateThreshold(rate)
	res, err := core.MOCubing(ds.Schema, ds.Inputs, exception.Global(thr))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(res.Exceptions)) / float64(res.Stats.CellsComputed)
	if got < rate/2 || got > rate*2 {
		t.Fatalf("engine exception rate %g, want ≈%g", got, rate)
	}
}
