// Package gen is the synthetic workload generator for the performance
// study (paper §5): datasets named like D3L3C10T100K, meaning 3 dimensions,
// 3 levels per dimension from the m-layer to the o-layer inclusive, node
// fan-out (cardinality) 10, and 100K merged m-layer tuples.
//
// The paper used a generator "similar in spirit to the IBM data generator";
// that tool is not available, so this package substitutes a deterministic
// equivalent: uniform member draws over fan-out hierarchies and Gaussian
// regression slopes, with optional injected trend events. The evaluation
// only depends on hierarchy shape, tuple counts, and the slope
// distribution's quantiles (which the threshold calibration consumes), all
// of which are preserved. See DESIGN.md §2 for the substitution note.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/timeseries"
)

// ErrSpec is returned for malformed dataset specifications.
var ErrSpec = errors.New("gen: invalid dataset spec")

// Spec is the D/L/C/T dataset shape.
type Spec struct {
	Dims   int // number of standard dimensions (D)
	Levels int // levels per dimension from m-layer to o-layer inclusive (L)
	Fanout int // children per hierarchy node (C)
	Tuples int // m-layer tuples (T)
}

// ParseSpec parses the paper's convention, e.g. "D3L3C10T100K". The T
// component accepts a K (thousand) or M (million) suffix.
func ParseSpec(s string) (Spec, error) {
	orig := s
	var sp Spec
	up := strings.ToUpper(strings.TrimSpace(s))
	rest := up
	grab := func(prefix byte) (int, string, error) {
		if len(rest) == 0 || rest[0] != prefix {
			return 0, rest, fmt.Errorf("%w: %q (expected %c component)", ErrSpec, orig, prefix)
		}
		i := 1
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i == 1 {
			return 0, rest, fmt.Errorf("%w: %q (no digits after %c)", ErrSpec, orig, prefix)
		}
		v, err := strconv.Atoi(rest[1:i])
		if err != nil {
			return 0, rest, fmt.Errorf("%w: %q: %v", ErrSpec, orig, err)
		}
		return v, rest[i:], nil
	}
	var err error
	if sp.Dims, rest, err = grab('D'); err != nil {
		return Spec{}, err
	}
	if sp.Levels, rest, err = grab('L'); err != nil {
		return Spec{}, err
	}
	if sp.Fanout, rest, err = grab('C'); err != nil {
		return Spec{}, err
	}
	if sp.Tuples, rest, err = grab('T'); err != nil {
		return Spec{}, err
	}
	switch rest {
	case "":
	case "K":
		sp.Tuples *= 1000
	case "M":
		sp.Tuples *= 1000000
	default:
		return Spec{}, fmt.Errorf("%w: %q (trailing %q)", ErrSpec, orig, rest)
	}
	return sp, sp.Validate()
}

// Validate checks the spec's ranges.
func (sp Spec) Validate() error {
	if sp.Dims < 1 || sp.Dims > cube.MaxDims {
		return fmt.Errorf("%w: D=%d outside [1,%d]", ErrSpec, sp.Dims, cube.MaxDims)
	}
	if sp.Levels < 1 {
		return fmt.Errorf("%w: L=%d", ErrSpec, sp.Levels)
	}
	if sp.Fanout < 1 {
		return fmt.Errorf("%w: C=%d", ErrSpec, sp.Fanout)
	}
	if sp.Tuples < 1 {
		return fmt.Errorf("%w: T=%d", ErrSpec, sp.Tuples)
	}
	return nil
}

// String renders the spec in the paper's convention.
func (sp Spec) String() string {
	t := fmt.Sprintf("T%d", sp.Tuples)
	if sp.Tuples%1000000 == 0 {
		t = fmt.Sprintf("T%dM", sp.Tuples/1000000)
	} else if sp.Tuples%1000 == 0 {
		t = fmt.Sprintf("T%dK", sp.Tuples/1000)
	}
	return fmt.Sprintf("D%dL%dC%d%s", sp.Dims, sp.Levels, sp.Fanout, t)
}

// StreamSchema builds the streaming schema the spec's D/L/C shape implies:
// one fanout hierarchy per dimension, the m-layer at the leaf level and
// the o-layer at level 1. streamd and regcube replay share it, so a WAL
// recorded under one command replays under the other.
func (sp Spec) StreamSchema() (*cube.Schema, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	dims := make([]cube.Dimension, sp.Dims)
	for d := 0; d < sp.Dims; d++ {
		name := fmt.Sprintf("D%d", d)
		h, err := cube.NewFanoutHierarchy(name, sp.Fanout, sp.Levels)
		if err != nil {
			return nil, err
		}
		dims[d] = cube.Dimension{Name: name, Hierarchy: h, MLevel: sp.Levels, OLevel: 1}
	}
	return cube.NewSchema(dims...)
}

// Config controls generation.
type Config struct {
	Spec Spec
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Ticks is the regression interval length per tuple measure
	// (default 10, i.e. ISBs over [0,9]).
	Ticks int
	// SlopeSigma is the Gaussian sigma of ordinary tuple slopes
	// (default 1.0).
	SlopeSigma float64
	// EventRate is the fraction of tuples carrying an injected trend
	// event with magnified slope (default 0.02).
	EventRate float64
	// EventMagnitude multiplies SlopeSigma for event tuples (default 20).
	EventMagnitude float64
	// Skew, when positive, draws dimension members from a Zipf
	// distribution with exponent 1+Skew instead of uniformly — hot cells
	// like real measurement workloads, increasing H-tree prefix sharing.
	Skew float64
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 10
	}
	if c.SlopeSigma <= 0 {
		c.SlopeSigma = 1
	}
	if c.EventRate < 0 {
		c.EventRate = 0
	} else if c.EventRate == 0 {
		c.EventRate = 0.02
	}
	if c.EventMagnitude <= 0 {
		c.EventMagnitude = 20
	}
	return c
}

// Dataset is a generated workload: the schema (o-layer at level 1 per the
// benchmark convention) and the m-layer inputs.
type Dataset struct {
	Spec   Spec
	Schema *cube.Schema
	Inputs []core.Input
}

// Generate builds a dataset from the config.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	sp := cfg.Spec

	dims := make([]cube.Dimension, sp.Dims)
	for d := 0; d < sp.Dims; d++ {
		name := fmt.Sprintf("D%d", d)
		h, err := cube.NewFanoutHierarchy(name, sp.Fanout, sp.Levels)
		if err != nil {
			return nil, err
		}
		dims[d] = cube.Dimension{Name: name, Hierarchy: h, MLevel: sp.Levels, OLevel: 1}
	}
	schema, err := cube.NewSchema(dims...)
	if err != nil {
		return nil, err
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	card := dims[0].Hierarchy.Cardinality(sp.Levels)
	var zipf *rand.Zipf
	if cfg.Skew > 0 && card > 1 {
		zipf = rand.NewZipf(r, 1+cfg.Skew, 1, uint64(card-1))
	}
	draw := func() int32 {
		if zipf != nil {
			return int32(zipf.Uint64())
		}
		return int32(r.Intn(card))
	}
	inputs := make([]core.Input, sp.Tuples)
	te := int64(cfg.Ticks - 1)
	for i := range inputs {
		members := make([]int32, sp.Dims)
		for d := range members {
			members[d] = draw()
		}
		slope := r.NormFloat64() * cfg.SlopeSigma
		if r.Float64() < cfg.EventRate {
			slope *= cfg.EventMagnitude
		}
		inputs[i] = core.Input{
			Members: members,
			Measure: regression.ISB{Tb: 0, Te: te, Base: math.Abs(r.NormFloat64()) * 5, Slope: slope},
		}
	}
	return &Dataset{Spec: sp, Schema: schema, Inputs: inputs}, nil
}

// GenerateRaw builds a dataset whose measures are fit from synthetic raw
// series rather than drawn directly — exercising the full Lemma 3.1 path.
// Slower; used by integration tests and examples.
func GenerateRaw(cfg Config) (*Dataset, error) {
	ds, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := timeseries.NewSynth(cfg.Seed + 1)
	for i := range ds.Inputs {
		target := ds.Inputs[i].Measure
		s := g.Linear(0, cfg.Ticks, target.Base, target.Slope, cfg.SlopeSigma/4)
		isb, err := regression.Fit(s)
		if err != nil {
			return nil, err
		}
		ds.Inputs[i].Measure = isb
	}
	return ds, nil
}

// Subset returns a dataset over the first n tuples — the Figure 9
// convention ("data sets with varied sizes are appropriate subsets of the
// same 100K data set").
func (d *Dataset) Subset(n int) (*Dataset, error) {
	if n < 1 || n > len(d.Inputs) {
		return nil, fmt.Errorf("%w: subset %d of %d", ErrSpec, n, len(d.Inputs))
	}
	sp := d.Spec
	sp.Tuples = n
	return &Dataset{Spec: sp, Schema: d.Schema, Inputs: d.Inputs[:n]}, nil
}

// CalibrateThreshold computes the slope-magnitude threshold at which the
// given fraction of all aggregated cells (across every cuboid between the
// critical layers) is exceptional — how the Figure 8 sweep's x-axis
// ("Exception (in %)") is realized.
func (d *Dataset) CalibrateThreshold(rate float64) float64 {
	return thresholdFromSlopes(d.allCellSlopes(), rate)
}

// CalibrateThresholds computes thresholds for several target rates from a
// single pass over the cell-slope distribution (the Figure 8 sweep).
func (d *Dataset) CalibrateThresholds(rates []float64) []float64 {
	slopes := d.allCellSlopes()
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = thresholdFromSlopes(slopes, r)
	}
	return out
}

func thresholdFromSlopes(slopes []float64, rate float64) float64 {
	if len(slopes) == 0 {
		return math.Inf(1)
	}
	if rate <= 0 {
		return slopes[0] + 1 // above the max: nothing exceptional
	}
	if rate >= 1 {
		return 0 // everything exceptional
	}
	k := int(math.Round(rate * float64(len(slopes))))
	if k < 1 {
		k = 1
	}
	if k > len(slopes) {
		k = len(slopes)
	}
	return slopes[k-1]
}

// ExceptionRateAt reports the fraction of aggregated cells exceptional at
// a given threshold (the inverse of CalibrateThreshold, for verification).
func (d *Dataset) ExceptionRateAt(threshold float64) float64 {
	slopes := d.allCellSlopes()
	if len(slopes) == 0 {
		return 0
	}
	n := sort.Search(len(slopes), func(i int) bool { return slopes[i] < threshold })
	return float64(n) / float64(len(slopes))
}

// allCellSlopes returns |slope| of every cell of every cuboid between the
// layers, sorted descending.
func (d *Dataset) allCellSlopes() []float64 {
	lattice := cube.NewLattice(d.Schema)
	m := d.Schema.MLayer()
	var out []float64
	for _, c := range lattice.Cuboids() {
		agg := make(map[cube.CellKey]float64)
		for _, in := range d.Inputs {
			var members [cube.MaxDims]int32
			copy(members[:], in.Members)
			key, err := cube.RollUpKey(d.Schema, cube.CellKey{Cuboid: m, Members: members}, c)
			if err != nil {
				continue
			}
			agg[key] += in.Measure.Slope
		}
		for _, s := range agg {
			out = append(out, math.Abs(s))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
