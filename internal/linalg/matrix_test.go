package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatalf("unexpected contents: %v", m)
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %g, want 7.5", got)
	}
}

func TestBoundsCheckPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m.At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	id := Identity(3)
	prod, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if prod.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 4)
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 2 || c.Cols() != 4 {
		t.Fatalf("product shape = %dx%d, want 2x4", c.Rows(), c.Cols())
	}
	if _, err := b.Mul(a); err == nil {
		t.Fatal("expected dimension error for 3x4 · 2x3")
	}
}

func TestMulKnownProduct(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddMatrixAndAccumulate(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := a.AddMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Fatalf("sum(1,1) = %g, want 44", sum.At(1, 1))
	}
	if a.At(1, 1) != 4 {
		t.Fatal("AddMatrix must not mutate the receiver")
	}
	if err := a.AccumulateInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 11 {
		t.Fatalf("accumulate failed: %g", a.At(0, 0))
	}
	c := NewMatrix(1, 2)
	if _, err := a.AddMatrix(c); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := a.AccumulateInPlace(c); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestScaleClone(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, -2}})
	s := a.Scale(-3)
	if s.At(0, 0) != -3 || s.At(0, 1) != 6 {
		t.Fatalf("scale = %v", s)
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must be deep")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	if !sym.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	asym, _ := NewMatrixFromRows([][]float64{{2, 1}, {0, 2}})
	if asym.IsSymmetric(1e-12) {
		t.Fatal("expected asymmetric")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(1) {
		t.Fatal("rectangular matrices are never symmetric")
	}
}

func TestRowCopy(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 3 {
		t.Fatal("Row must return a copy")
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = L·Lᵀ with L = [[2,0],[1,3]] → A = [[4,2],[2,10]].
	a, _ := NewMatrixFromRows([][]float64{{4, 2}, {2, 10}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) || !almostEq(l.At(1, 1), 3, 1e-12) {
		t.Fatalf("L = %v", l)
	}
	if l.At(0, 1) != 0 {
		t.Fatal("upper part of L must be zero")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
	rect := NewMatrix(2, 3)
	if _, err := Cholesky(rect); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveCholeskyAndGaussAgree(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}})
	b := []float64{1, 2, 3}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := SolveCholesky(l, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-10) {
			t.Fatalf("solutions disagree: %v vs %v", x1, x2)
		}
	}
	// Verify residual.
	ax, _ := a.MulVec(x1)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-10) {
			t.Fatalf("A·x = %v, want %v", ax, b)
		}
	}
}

func TestSolveGaussNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveGauss(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
	zero := NewMatrix(2, 2)
	if _, err := SolveGauss(zero, []float64{0, 0}); err == nil {
		t.Fatal("expected ErrSingular for zero matrix")
	}
}

func TestSolveGaussShapeErrors(t *testing.T) {
	rect := NewMatrix(2, 3)
	if _, err := SolveGauss(rect, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension error for non-square matrix")
	}
	sq := Identity(2)
	if _, err := SolveGauss(sq, []float64{1}); err == nil {
		t.Fatal("expected dimension error for rhs length")
	}
	if _, err := SolveCholesky(Identity(2), []float64{1}); err == nil {
		t.Fatal("expected dimension error for Cholesky rhs length")
	}
}

func TestSolveSPDFallsBack(t *testing.T) {
	// Indefinite but nonsingular: Cholesky fails, Gauss succeeds.
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveSPD(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 6, 1e-12) || !almostEq(x[1], 5, 1e-12) {
		t.Fatalf("x = %v, want [6 5]", x)
	}
}

func TestInvert(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-10) {
				t.Fatalf("A·A⁻¹(%d,%d) = %g", i, j, prod.At(i, j))
			}
		}
	}
	sing, _ := NewMatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Invert(sing); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
	if _, err := Invert(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestDotNorm(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Fatalf("Dot = %g, err = %v", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2(3,4) != 5")
	}
}

func TestMaxAbs(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{-9, 2}, {3, 4}})
	if a.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %g, want 9", a.MaxAbs())
	}
}

func TestStringRendering(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}})
	if s := a.String(); s != "[1 2]\n" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: for random SPD matrices A = BᵀB + n·I, SolveSPD returns x with
// small residual ‖Ax-b‖.
func TestSolveSPDPropertyResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		bm := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				bm.Set(i, j, r.NormFloat64())
			}
		}
		a, _ := bm.Transpose().Mul(bm)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // enforce positive definiteness
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64() * 10
		}
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		for i := range rhs {
			if !almostEq(ax[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky reconstructs A = L·Lᵀ for random SPD matrices.
func TestCholeskyPropertyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		bm := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				bm.Set(i, j, r.NormFloat64())
			}
		}
		a, _ := bm.Transpose().Mul(bm)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		back, _ := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(back.At(i, j), a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
