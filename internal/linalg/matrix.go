// Package linalg provides the small dense linear-algebra kernel used by the
// multiple linear regression extension of the regression cube (paper §6.2).
//
// The paper's general theory represents a multiple linear regression by its
// normal-equation sufficient statistics (XᵀX, Xᵀy). Solving those normal
// equations needs a symmetric positive (semi-)definite solver; this package
// supplies Cholesky factorization with a pivoted Gauss-Jordan fallback,
// built only on the standard library.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// ErrSingular is returned when a system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized rows×cols matrix.
// It panics if either dimension is non-positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length. The data is copied.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrDimension)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimension, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// AddMatrix returns m + other as a new matrix.
func (m *Matrix) AddMatrix(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrDimension, m.rows, m.cols, other.rows, other.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += other.data[i]
	}
	return out, nil
}

// AccumulateInPlace adds other into m element-wise.
func (m *Matrix) AccumulateInPlace(other *Matrix) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("%w: %dx%d += %dx%d", ErrDimension, m.rows, m.cols, other.rows, other.cols)
	}
	for i := range m.data {
		m.data[i] += other.data[i]
	}
	return nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDimension, m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			rowOther := other.data[k*other.cols : (k+1)*other.cols]
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			for j, b := range rowOther {
				rowOut[j] += a * b
			}
		}
	}
	return out, nil
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (∞-norm of the data).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for diagnostics.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
