package linalg

import (
	"fmt"
	"math"
)

// QRSolve solves the least-squares problem min‖Ax − b‖₂ for an m×n matrix
// A with m ≥ n and full column rank, via Householder QR. Unlike the
// normal-equation route (condition number squared), QR works directly on
// A — the robust path for ill-conditioned design matrices such as
// high-degree polynomial bases.
func QRSolve(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("%w: %d equations for %d unknowns", ErrDimension, m, n)
	}
	if len(b) != m {
		return nil, fmt.Errorf("%w: matrix is %dx%d but rhs has %d entries", ErrDimension, m, n, len(b))
	}
	r := a.Clone()
	qtb := make([]float64, m)
	copy(qtb, b)

	scale := r.MaxAbs()
	if scale == 0 {
		return nil, fmt.Errorf("%w: zero matrix", ErrSingular)
	}
	const tiny = 1e-13
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm <= tiny*scale {
			return nil, fmt.Errorf("%w: column %d is numerically rank deficient", ErrSingular, k)
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		var vnorm2 float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 <= 0 {
			continue // column already triangular
		}
		// Apply H = I − 2vvᵀ/‖v‖² to R's remaining columns and to qtb.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Add(i, j, -f*v[i])
			}
		}
		var dot float64
		for i := k; i < m; i++ {
			dot += v[i] * qtb[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			qtb[i] -= f * v[i]
		}
	}
	// Back substitution on the upper-triangular R (top n rows).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) <= tiny*scale {
			return nil, fmt.Errorf("%w: zero diagonal at %d after factorization", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}
