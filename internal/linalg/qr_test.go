package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolveSquareMatchesGauss(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{3, 1, 2}, {1, 5, 1}, {2, 1, 4}})
	b := []float64{1, -2, 3}
	xq, err := QRSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xg, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xq {
		if !almostEq(xq[i], xg[i], 1e-9) {
			t.Fatalf("QR %v vs Gauss %v", xq, xg)
		}
	}
}

func TestQRSolveOverdetermined(t *testing.T) {
	// Fit y = 2 + 3t from 5 exact points: LS solution is exact.
	rows := [][]float64{}
	b := []float64{}
	for i := 0; i < 5; i++ {
		tk := float64(i)
		rows = append(rows, []float64{1, tk})
		b = append(b, 2+3*tk)
	}
	a, _ := NewMatrixFromRows(rows)
	x, err := QRSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestQRSolveLeastSquaresResidualOrthogonal(t *testing.T) {
	// For noisy overdetermined systems, the residual must be orthogonal
	// to the column space: Aᵀ(Ax − b) ≈ 0.
	r := rand.New(rand.NewSource(3))
	rows := [][]float64{}
	b := []float64{}
	for i := 0; i < 30; i++ {
		tk := float64(i)
		rows = append(rows, []float64{1, tk, tk * tk})
		b = append(b, 1+0.5*tk-0.1*tk*tk+r.NormFloat64())
	}
	a, _ := NewMatrixFromRows(rows)
	x, err := QRSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = ax[i] - b[i]
	}
	at := a.Transpose()
	ortho, _ := at.MulVec(resid)
	for i, v := range ortho {
		if math.Abs(v) > 1e-7 {
			t.Fatalf("normal equations violated at %d: %g", i, v)
		}
	}
}

func TestQRSolveErrors(t *testing.T) {
	under := NewMatrix(2, 3)
	if _, err := QRSolve(under, []float64{1, 2}); err == nil {
		t.Fatal("expected underdetermined rejection")
	}
	a := NewMatrix(3, 2)
	if _, err := QRSolve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected rhs length error")
	}
	if _, err := QRSolve(NewMatrix(3, 2), []float64{0, 0, 0}); err == nil {
		t.Fatal("expected zero-matrix rejection")
	}
	// Rank-deficient: duplicate columns.
	dup, _ := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := QRSolve(dup, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficiency rejection")
	}
}

// QR beats normal equations on an ill-conditioned Vandermonde system: the
// reconstruction error through QR stays small where Cholesky on AᵀA fails
// or degrades.
func TestQRBetterConditionedThanNormalEquations(t *testing.T) {
	const n, deg = 40, 9
	rows := [][]float64{}
	b := []float64{}
	truth := []float64{1, -2, 0.5, 0.1, -0.05, 0.01, -0.002, 0.0003, -0.00004, 0.000005}
	for i := 0; i < n; i++ {
		tk := float64(i) / 4 // wide range makes t^9 huge vs t^0
		row := make([]float64, deg+1)
		p := 1.0
		var y float64
		for d := 0; d <= deg; d++ {
			row[d] = p
			y += truth[d] * p
			p *= tk
		}
		rows = append(rows, row)
		b = append(b, y)
	}
	a, _ := NewMatrixFromRows(rows)
	x, err := QRSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Fitted values must reproduce b tightly even if coefficients drift.
	ax, _ := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-6) {
			t.Fatalf("QR fit diverges at %d: %g vs %g", i, ax[i], b[i])
		}
	}
}

// Property: QR and Gauss agree on random well-conditioned square systems.
func TestQRGaussAgreementProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(77))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		xq, err1 := QRSolve(a, b)
		xg, err2 := SolveGauss(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range xq {
			if !almostEq(xq[i], xg[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
