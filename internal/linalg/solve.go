package linalg

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive definite matrix A. It returns ErrNotSPD if A is not
// (numerically) positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky needs a square matrix, got %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += l.At(j, k) * l.At(j, k)
		}
		d := a.At(j, j) - diag
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: leading minor %d is %g", ErrNotSPD, j+1, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b using a precomputed Cholesky factor L
// (A = L·Lᵀ) via forward then backward substitution.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: factor is %dx%d but rhs has %d entries", ErrDimension, n, n, len(b))
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A·x = b for a symmetric positive definite A, falling back
// to pivoted Gaussian elimination when A is only semi-definite or mildly
// indefinite from rounding (common for near-collinear regression bases).
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if l, err := Cholesky(a); err == nil {
		return SolveCholesky(l, b)
	}
	return SolveGauss(a, b)
}

// SolveGauss solves A·x = b by Gaussian elimination with partial pivoting.
// It returns ErrSingular when no pivot above tolerance exists.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: SolveGauss needs a square matrix, got %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: matrix is %dx%d but rhs has %d entries", ErrDimension, n, n, len(b))
	}
	// Work on copies: augmented system.
	m := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	const tiny = 1e-13
	scale := m.MaxAbs()
	if scale == 0 {
		return nil, fmt.Errorf("%w: zero matrix", ErrSingular)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotAbs := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(m.At(r, col)); ab > pivotAbs {
				pivot, pivotAbs = r, ab
			}
		}
		if pivotAbs <= tiny*scale {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, pivotAbs, col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vp := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, vp)
				m.Set(pivot, j, vi)
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Invert returns A⁻¹ computed column-by-column with SolveGauss.
func Invert(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Invert needs a square matrix, got %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveGauss(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: vec(%d)·vec(%d)", ErrDimension, len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
