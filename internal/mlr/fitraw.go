package mlr

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// FitRaw fits a multiple linear regression directly from raw observations
// via Householder QR on the design matrix. Unlike NCR (which compresses to
// the normal equations and is the right tool inside cubes), FitRaw keeps
// the full design matrix and therefore tolerates much worse conditioning —
// use it for one-off fits with aggressive bases (high-degree polynomials,
// mixed exponentials) where squaring the condition number would lose
// precision.
func FitRaw(b Basis, vars [][]float64, ys []float64) (*Model, error) {
	if b.Dim <= 0 || b.Map == nil {
		return nil, fmt.Errorf("%w: basis must have positive Dim and a Map function", ErrMismatch)
	}
	if len(vars) != len(ys) {
		return nil, fmt.Errorf("%w: %d observations but %d responses", ErrMismatch, len(vars), len(ys))
	}
	if len(ys) < b.Dim {
		return nil, fmt.Errorf("%w: %d observations for %d features", ErrEmpty, len(ys), b.Dim)
	}
	design := linalg.NewMatrix(len(ys), b.Dim)
	row := make([]float64, b.Dim)
	for i, v := range vars {
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return nil, fmt.Errorf("%w: response %d", ErrNonFinite, i)
		}
		b.Map(v, row)
		for j, f := range row {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("%w: feature %d of observation %d", ErrNonFinite, j, i)
			}
			design.Set(i, j, f)
		}
	}
	coef, err := linalg.QRSolve(design, append([]float64(nil), ys...))
	if err != nil {
		return nil, fmt.Errorf("mlr: QR fit: %w", err)
	}
	model := &Model{Basis: b, Coef: coef, N: int64(len(ys))}
	// Goodness of fit from the residuals directly.
	fitted, err := design.MulVec(coef)
	if err != nil {
		return nil, err
	}
	var rss, sum float64
	for i := range ys {
		d := ys[i] - fitted[i]
		rss += d * d
		sum += ys[i]
	}
	model.RSS = rss
	ybar := sum / float64(len(ys))
	var tss float64
	for _, y := range ys {
		d := y - ybar
		tss += d * d
	}
	switch {
	case tss > 0:
		model.R2 = 1 - rss/tss
	case rss <= 1e-12:
		model.R2 = 1
	default:
		model.R2 = 0
	}
	return model, nil
}
