package mlr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regression"
	"repro/internal/timeseries"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestTimeBasisMatchesISB(t *testing.T) {
	// MLR with the (1,t) basis must reproduce the paper's simple linear
	// regression exactly.
	g := timeseries.NewSynth(71)
	s := g.Linear(10, 50, 2, 0.4, 1)
	isb := regression.MustFit(s)

	m := New(TimeBasis())
	for i, z := range s.Values {
		if err := m.Observe([]float64{float64(s.Interval.Tb + int64(i))}, z); err != nil {
			t.Fatal(err)
		}
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(md.Coef[0], isb.Base, 1e-8) || !almostEq(md.Coef[1], isb.Slope, 1e-8) {
		t.Fatalf("MLR coef %v vs ISB %v", md.Coef, isb)
	}
}

func TestNewPanicsOnBadBasis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Basis{Dim: 0})
}

func TestObserveRejectsNonFinite(t *testing.T) {
	m := New(TimeBasis())
	if err := m.Observe([]float64{0}, math.NaN()); err == nil {
		t.Fatal("expected NaN response rejection")
	}
	if err := m.Observe([]float64{math.Inf(1)}, 1); err == nil {
		t.Fatal("expected Inf regressor rejection")
	}
	if m.N() != 0 {
		t.Fatal("failed observes must not count")
	}
	// A basis producing non-finite features (log of a negative) is rejected.
	lg := New(LogBasis())
	if err := lg.Observe([]float64{-1}, 1); err == nil {
		t.Fatal("expected non-finite feature rejection")
	}
}

func TestFitRequiresEnoughObservations(t *testing.T) {
	m := New(LinearBasis(2)) // 3 features
	if _, err := m.Fit(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	_ = m.Observe([]float64{1, 2}, 3)
	_ = m.Observe([]float64{2, 1}, 4)
	if _, err := m.Fit(); err == nil {
		t.Fatal("expected too-few-observations error")
	}
}

func TestFitSingularDesign(t *testing.T) {
	// Two perfectly collinear regressors make XᵀX singular.
	m := New(LinearBasis(2))
	for i := 0; i < 10; i++ {
		v := float64(i)
		_ = m.Observe([]float64{v, 2 * v}, v)
	}
	if _, err := m.Fit(); err == nil {
		t.Fatal("expected singular normal equations")
	}
}

func TestExactPlaneRecovery(t *testing.T) {
	// y = 3 + 2x − 0.5w fit exactly from noiseless data.
	m := New(LinearBasis(2))
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		x, w := r.NormFloat64(), r.NormFloat64()
		y := 3 + 2*x - 0.5*w
		if err := m.Observe([]float64{x, w}, y); err != nil {
			t.Fatal(err)
		}
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i, c := range want {
		if !almostEq(md.Coef[i], c, 1e-8) {
			t.Fatalf("coef[%d] = %g, want %g", i, md.Coef[i], c)
		}
	}
	if !almostEq(md.R2, 1, 1e-9) {
		t.Fatalf("R2 = %g, want 1", md.R2)
	}
	if md.RSS > 1e-9 {
		t.Fatalf("RSS = %g, want ~0", md.RSS)
	}
	if got := md.Predict([]float64{1, 2}); !almostEq(got, 3+2-1, 1e-8) {
		t.Fatalf("Predict = %g", got)
	}
}

func TestPolynomialBasisExact(t *testing.T) {
	m := New(PolynomialBasis(2))
	for i := -10; i <= 10; i++ {
		x := float64(i)
		_ = m.Observe([]float64{x}, 1+2*x+3*x*x)
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if !almostEq(md.Coef[i], want, 1e-7) {
			t.Fatalf("coef[%d] = %g, want %g", i, md.Coef[i], want)
		}
	}
}

func TestLogBasisExact(t *testing.T) {
	m := New(LogBasis())
	for i := 1; i <= 30; i++ {
		x := float64(i)
		_ = m.Observe([]float64{x}, 5+2*math.Log(x))
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(md.Coef[0], 5, 1e-8) || !almostEq(md.Coef[1], 2, 1e-8) {
		t.Fatalf("coef = %v", md.Coef)
	}
}

func TestExpBasisExact(t *testing.T) {
	m := New(ExpBasis(0.1))
	for i := 0; i < 25; i++ {
		x := float64(i)
		_ = m.Observe([]float64{x}, -1+0.5*math.Exp(0.1*x))
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(md.Coef[0], -1, 1e-7) || !almostEq(md.Coef[1], 0.5, 1e-7) {
		t.Fatalf("coef = %v", md.Coef)
	}
}

func TestIrregularTicks(t *testing.T) {
	// Irregular time points — the motivation for NCR over ISB.
	ticks := []float64{0, 1, 5, 6, 42, 100, 101}
	m := New(TimeBasis())
	for _, tk := range ticks {
		_ = m.Observe([]float64{tk}, 7-0.25*tk)
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(md.Coef[0], 7, 1e-8) || !almostEq(md.Coef[1], -0.25, 1e-8) {
		t.Fatalf("coef = %v", md.Coef)
	}
}

func TestMergeTimeMatchesPooledFit(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pooled := New(LinearBasis(2))
	a, b := New(LinearBasis(2)), New(LinearBasis(2))
	for i := 0; i < 60; i++ {
		x, w := r.NormFloat64(), r.NormFloat64()
		y := 1 + x - w + r.NormFloat64()*0.1
		_ = pooled.Observe([]float64{x, w}, y)
		if i < 25 {
			_ = a.Observe([]float64{x, w}, y)
		} else {
			_ = b.Observe([]float64{x, w}, y)
		}
	}
	merged, err := MergeTime(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pooled.Fit()
	if err != nil {
		t.Fatal(err)
	}
	mm, err := merged.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range mp.Coef {
		if !almostEq(mp.Coef[i], mm.Coef[i], 1e-9) {
			t.Fatalf("coef[%d]: pooled %g vs merged %g", i, mp.Coef[i], mm.Coef[i])
		}
	}
	if !almostEq(mp.RSS, mm.RSS, 1e-8) {
		t.Fatalf("RSS: pooled %g vs merged %g", mp.RSS, mm.RSS)
	}
	if !almostEq(mp.R2, mm.R2, 1e-8) {
		t.Fatalf("R2: pooled %g vs merged %g", mp.R2, mm.R2)
	}
}

func TestMergeTimeErrors(t *testing.T) {
	if _, err := MergeTime(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	a := New(TimeBasis())
	b := New(LinearBasis(2))
	if _, err := MergeTime(a, b); err == nil {
		t.Fatal("expected basis mismatch")
	}
}

func TestMergeStandardMatchesSummedResponses(t *testing.T) {
	// Two "descendant cells" observed at the same design points; the
	// aggregated cell's response is their pointwise sum.
	r := rand.New(rand.NewSource(13))
	a, b, sum := New(TimeBasis()), New(TimeBasis()), New(TimeBasis())
	for i := 0; i < 30; i++ {
		tk := float64(i)
		ya := 2 + 0.1*tk + r.NormFloat64()*0.05
		yb := 1 - 0.2*tk + r.NormFloat64()*0.05
		_ = a.Observe([]float64{tk}, ya)
		_ = b.Observe([]float64{tk}, yb)
		_ = sum.Observe([]float64{tk}, ya+yb)
	}
	merged, err := MergeStandard(1e-9, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sum.Fit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Coef {
		if !almostEq(want.Coef[i], got.Coef[i], 1e-8) {
			t.Fatalf("coef[%d]: %g vs %g", i, want.Coef[i], got.Coef[i])
		}
	}
	// Goodness-of-fit is intentionally not derivable for standard merges.
	if !math.IsNaN(got.RSS) || !math.IsNaN(got.R2) {
		t.Fatalf("RSS/R2 should be NaN after standard merge, got %g/%g", got.RSS, got.R2)
	}
}

func TestMergeStandardErrors(t *testing.T) {
	if _, err := MergeStandard(1e-9); err == nil {
		t.Fatal("expected ErrEmpty")
	}
	a, b := New(TimeBasis()), New(TimeBasis())
	_ = a.Observe([]float64{0}, 1)
	_ = a.Observe([]float64{1}, 2)
	_ = b.Observe([]float64{0}, 1)
	if _, err := MergeStandard(1e-9, a, b); err == nil {
		t.Fatal("expected count mismatch")
	}
	c := New(TimeBasis())
	_ = c.Observe([]float64{5}, 1) // different design point
	_ = c.Observe([]float64{9}, 2)
	if _, err := MergeStandard(1e-9, a, c); err == nil {
		t.Fatal("expected XᵀX mismatch")
	}
	d := New(LinearBasis(2))
	if _, err := MergeStandard(1e-9, a, d); err == nil {
		t.Fatal("expected basis mismatch")
	}
}

func TestMergeStandardSinglePartKeepsStats(t *testing.T) {
	a := New(TimeBasis())
	for i := 0; i < 5; i++ {
		_ = a.Observe([]float64{float64(i)}, float64(i))
	}
	merged, err := MergeStandard(1e-9, a)
	if err != nil {
		t.Fatal(err)
	}
	md, err := merged.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(md.RSS) {
		t.Fatal("single-part standard merge must keep goodness-of-fit stats")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(TimeBasis())
	_ = a.Observe([]float64{0}, 1)
	c := a.Clone()
	_ = c.Observe([]float64{1}, 2)
	if a.N() != 1 || c.N() != 2 {
		t.Fatalf("clone shares state: a.N=%d c.N=%d", a.N(), c.N())
	}
}

func TestModelString(t *testing.T) {
	m := New(TimeBasis())
	_ = m.Observe([]float64{0}, 0)
	_ = m.Observe([]float64{1}, 1)
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if md.String() == "" {
		t.Fatal("empty String()")
	}
	if m.Basis().Name != "time" {
		t.Fatalf("basis name = %q", m.Basis().Name)
	}
}

// Property: MergeTime over a random partition of observations equals the
// pooled fit, for random spatio-temporal data (the §6.2 sensor-network
// scenario: regressors t, x, y, z).
func TestMergeTimePartitionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(81))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nObs := 20 + r.Intn(80)
		parts := 1 + r.Intn(5)
		pooled := New(LinearBasis(4))
		shards := make([]*NCR, parts)
		for i := range shards {
			shards[i] = New(LinearBasis(4))
		}
		for i := 0; i < nObs; i++ {
			vars := []float64{float64(i), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			y := 2 + 0.1*vars[0] - vars[1] + 0.5*vars[2] + 3*vars[3] + r.NormFloat64()*0.2
			if pooled.Observe(vars, y) != nil {
				return false
			}
			if shards[r.Intn(parts)].Observe(vars, y) != nil {
				return false
			}
		}
		merged, err := MergeTime(shards...)
		if err != nil {
			return false
		}
		mp, err1 := pooled.Fit()
		mm, err2 := merged.Fit()
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range mp.Coef {
			if !almostEq(mp.Coef[i], mm.Coef[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with the (1,t) basis, NCR fitting agrees with the ISB algebra on
// random consecutive-tick series.
func TestNCRAgreesWithISBProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(82))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		tb := int64(r.Intn(100) - 50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 3
		}
		s := timeseries.MustNew(tb, vals)
		isb := regression.MustFit(s)
		m := New(TimeBasis())
		for i, z := range vals {
			if m.Observe([]float64{float64(tb + int64(i))}, z) != nil {
				return false
			}
		}
		md, err := m.Fit()
		if err != nil {
			return false
		}
		return almostEq(md.Coef[0], isb.Base, 1e-6) && almostEq(md.Coef[1], isb.Slope, 1e-6)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
