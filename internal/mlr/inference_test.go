package mlr

import (
	"math"
	"math/rand"
	"testing"
)

// Simple-regression standard errors have the closed form
// se(β) = σ̂/√Σ(t−t̄)², se(α) = σ̂·√(1/n + t̄²/Σ(t−t̄)²); Infer must match.
func TestInferMatchesClosedFormSimpleRegression(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := New(TimeBasis())
	n := 50
	var ts, ys []float64
	for i := 0; i < n; i++ {
		tk := float64(i)
		y := 3 + 0.5*tk + r.NormFloat64()
		_ = m.Observe([]float64{tk}, y)
		ts = append(ts, tk)
		ys = append(ys, y)
	}
	model, inf, err := m.Infer()
	if err != nil {
		t.Fatal(err)
	}
	// Closed forms.
	tbar := float64(n-1) / 2
	var svs float64
	for _, tk := range ts {
		svs += (tk - tbar) * (tk - tbar)
	}
	var rss float64
	for i, tk := range ts {
		pred := model.Coef[0] + model.Coef[1]*tk
		d := ys[i] - pred
		rss += d * d
	}
	sigma2 := rss / float64(n-2)
	seBeta := math.Sqrt(sigma2 / svs)
	seAlpha := math.Sqrt(sigma2 * (1/float64(n) + tbar*tbar/svs))
	if math.Abs(inf.Sigma2-sigma2) > 1e-8*(1+sigma2) {
		t.Fatalf("sigma2 = %g, want %g", inf.Sigma2, sigma2)
	}
	if math.Abs(inf.StdErr[1]-seBeta) > 1e-8*(1+seBeta) {
		t.Fatalf("se(beta) = %g, want %g", inf.StdErr[1], seBeta)
	}
	if math.Abs(inf.StdErr[0]-seAlpha) > 1e-8*(1+seAlpha) {
		t.Fatalf("se(alpha) = %g, want %g", inf.StdErr[0], seAlpha)
	}
	// t-values consistent.
	if math.Abs(inf.TValue[1]-model.Coef[1]/seBeta) > 1e-6 {
		t.Fatal("t-value inconsistent")
	}
}

func TestInferPerfectFitHasZeroStdErr(t *testing.T) {
	m := New(TimeBasis())
	for i := 0; i < 10; i++ {
		_ = m.Observe([]float64{float64(i)}, 2+3*float64(i))
	}
	model, inf, err := m.Infer()
	if err != nil {
		t.Fatal(err)
	}
	if inf.StdErr[1] > 1e-6 {
		t.Fatalf("se = %g, want ~0", inf.StdErr[1])
	}
	if !math.IsInf(inf.TValue[1], 1) && math.Abs(inf.TValue[1]) < 1e6 {
		t.Fatalf("t-value should diverge for a perfect fit, got %g", inf.TValue[1])
	}
	lo, hi := inf.ConfidenceInterval(model, 1, 1.96)
	if math.Abs(lo-3) > 1e-5 || math.Abs(hi-3) > 1e-5 {
		t.Fatalf("CI = [%g,%g], want tight around 3", lo, hi)
	}
}

func TestInferRequiresDegreesOfFreedom(t *testing.T) {
	m := New(TimeBasis())
	_ = m.Observe([]float64{0}, 1)
	_ = m.Observe([]float64{1}, 2)
	if _, _, err := m.Infer(); err == nil {
		t.Fatal("n == p must be rejected")
	}
}

func TestInferRejectsStandardMerge(t *testing.T) {
	a, b := New(TimeBasis()), New(TimeBasis())
	for i := 0; i < 6; i++ {
		_ = a.Observe([]float64{float64(i)}, 1)
		_ = b.Observe([]float64{float64(i)}, 2)
	}
	merged, err := MergeStandard(1e-9, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := merged.Infer(); err == nil {
		t.Fatal("standard-merged NCR cannot support inference")
	}
}

func TestConfidenceIntervalCoversTruth(t *testing.T) {
	// Repeated simulations: the 95% CI for the slope should cover the true
	// slope in a clear majority of runs (loose bound to stay
	// deterministic-friendly).
	covered := 0
	const runs = 60
	for seed := int64(0); seed < runs; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := New(TimeBasis())
		for i := 0; i < 40; i++ {
			tk := float64(i)
			_ = m.Observe([]float64{tk}, 1+0.3*tk+r.NormFloat64()*2)
		}
		model, inf, err := m.Infer()
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := inf.ConfidenceInterval(model, 1, 1.96)
		if lo <= 0.3 && 0.3 <= hi {
			covered++
		}
	}
	if covered < runs*8/10 {
		t.Fatalf("slope CI covered truth in only %d/%d runs", covered, runs)
	}
}

func TestPredictionStdErr(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m := New(TimeBasis())
	for i := 0; i < 30; i++ {
		tk := float64(i)
		_ = m.Observe([]float64{tk}, 2+tk+r.NormFloat64()*0.5)
	}
	seMid, err := m.PredictionStdErr([]float64{14.5})
	if err != nil {
		t.Fatal(err)
	}
	seFar, err := m.PredictionStdErr([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if seMid <= 0 {
		t.Fatal("mid-sample prediction must have positive uncertainty")
	}
	if seFar <= seMid {
		t.Fatalf("extrapolation se %g must exceed interpolation se %g", seFar, seMid)
	}
	// Insufficient data propagates the error.
	empty := New(TimeBasis())
	if _, err := empty.PredictionStdErr([]float64{0}); err == nil {
		t.Fatal("expected error for empty model")
	}
}
