// Package mlr implements the paper's §6.2 generalization: multiple linear
// regression over stream data with more than one regression variable (e.g.
// spatial coordinates of sensors in addition to time), with irregular time
// ticks, and with nonlinear basis functions (log, polynomial, exponential).
//
// The compressed representation generalizing ISB is the normal-equation
// sufficient statistic set
//
//	NCR = (n, XᵀX, Xᵀy, yᵀy)
//
// where X is the design matrix of basis-function values and y the observed
// responses. NCR supports both of the paper's aggregation modes:
//
//   - standard-dimension roll-up (responses of descendant cells are summed
//     over identical observation points): Xᵀy adds, XᵀX is shared;
//   - time-dimension roll-up (observation sets are concatenated): both XᵀX
//     and Xᵀy add.
//
// Either way, the fitted coefficients of any aggregated cell are recovered
// by solving the merged normal equations — no raw data needed.
package mlr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrMismatch is returned when representations are not compatible.
var ErrMismatch = errors.New("mlr: incompatible representations")

// ErrEmpty is returned for operations on empty models.
var ErrEmpty = errors.New("mlr: no observations")

// ErrNonFinite is returned when inputs contain NaN or ±Inf.
var ErrNonFinite = errors.New("mlr: non-finite input")

// Basis maps a raw regressor vector (e.g. (t) or (t, x, y, z)) to the
// feature vector used as one design-matrix row. Dim is the feature count.
type Basis struct {
	// Name describes the basis for diagnostics.
	Name string
	// Dim is the number of features the basis emits.
	Dim int
	// Map fills dst (length Dim) with the features of raw input vars.
	Map func(vars []float64, dst []float64)
}

// LinearBasis returns the basis (1, v₁, …, v_d): an intercept plus each raw
// variable — ordinary multiple linear regression over d regressors.
func LinearBasis(d int) Basis {
	return Basis{
		Name: fmt.Sprintf("linear(%d)", d),
		Dim:  d + 1,
		Map: func(vars, dst []float64) {
			dst[0] = 1
			copy(dst[1:], vars)
		},
	}
}

// TimeBasis is LinearBasis(1): the (1, t) basis whose two coefficients are
// exactly the paper's (α̂, β̂).
func TimeBasis() Basis {
	b := LinearBasis(1)
	b.Name = "time"
	return b
}

// PolynomialBasis returns (1, t, t², …, t^degree) over a single variable —
// the paper's polynomial extension.
func PolynomialBasis(degree int) Basis {
	return Basis{
		Name: fmt.Sprintf("poly(%d)", degree),
		Dim:  degree + 1,
		Map: func(vars, dst []float64) {
			t := vars[0]
			p := 1.0
			for i := 0; i <= degree; i++ {
				dst[i] = p
				p *= t
			}
		},
	}
}

// LogBasis returns (1, log v) over a single positive variable — the paper's
// log-function extension.
func LogBasis() Basis {
	return Basis{
		Name: "log",
		Dim:  2,
		Map: func(vars, dst []float64) {
			dst[0] = 1
			dst[1] = math.Log(vars[0])
		},
	}
}

// ExpBasis returns (1, e^(rate·v)) over a single variable — the paper's
// exponential-function extension with a fixed rate.
func ExpBasis(rate float64) Basis {
	return Basis{
		Name: fmt.Sprintf("exp(%g)", rate),
		Dim:  2,
		Map: func(vars, dst []float64) {
			dst[0] = 1
			dst[1] = math.Exp(rate * vars[0])
		},
	}
}

// NCR is the compressed sufficient-statistic representation of a multiple
// linear regression model (the §6.2 analogue of ISB).
type NCR struct {
	basis Basis
	n     int64          // observation count
	xtx   *linalg.Matrix // XᵀX, Dim×Dim
	xty   []float64      // Xᵀy, length Dim
	yty   float64        // yᵀy, for RSS/R² recovery
	sumY  float64        // Σy, for TSS recovery
}

// New returns an empty NCR for the given basis.
func New(b Basis) *NCR {
	if b.Dim <= 0 || b.Map == nil {
		panic("mlr: basis must have positive Dim and a Map function")
	}
	return &NCR{
		basis: b,
		xtx:   linalg.NewMatrix(b.Dim, b.Dim),
		xty:   make([]float64, b.Dim),
	}
}

// Basis returns the basis the representation was built with.
func (m *NCR) Basis() Basis { return m.basis }

// N returns the number of observations absorbed.
func (m *NCR) N() int64 { return m.n }

// Observe absorbs one observation: raw regressor values vars and response y.
// Irregular ticks are supported naturally — vars carries whatever time value
// the observation has.
func (m *NCR) Observe(vars []float64, y float64) error {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("%w: y=%g", ErrNonFinite, y)
	}
	for _, v := range vars {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: regressor %g", ErrNonFinite, v)
		}
	}
	row := make([]float64, m.basis.Dim)
	m.basis.Map(vars, row)
	for i := 0; i < m.basis.Dim; i++ {
		if math.IsNaN(row[i]) || math.IsInf(row[i], 0) {
			return fmt.Errorf("%w: basis feature %d is %g", ErrNonFinite, i, row[i])
		}
	}
	for i := 0; i < m.basis.Dim; i++ {
		for j := 0; j < m.basis.Dim; j++ {
			m.xtx.Add(i, j, row[i]*row[j])
		}
		m.xty[i] += row[i] * y
	}
	m.yty += y * y
	m.sumY += y
	m.n++
	return nil
}

// Clone returns a deep copy.
func (m *NCR) Clone() *NCR {
	c := New(m.basis)
	c.n = m.n
	c.xtx = m.xtx.Clone()
	copy(c.xty, m.xty)
	c.yty = m.yty
	c.sumY = m.sumY
	return c
}

func (m *NCR) compatible(o *NCR) error {
	if m.basis.Dim != o.basis.Dim || m.basis.Name != o.basis.Name {
		return fmt.Errorf("%w: basis %q(%d) vs %q(%d)",
			ErrMismatch, m.basis.Name, m.basis.Dim, o.basis.Name, o.basis.Dim)
	}
	return nil
}

// MergeTime aggregates on the time dimension (or any concatenation of
// disjoint observation sets): all sufficient statistics add.
func MergeTime(parts ...*NCR) (*NCR, error) {
	if len(parts) == 0 {
		return nil, ErrEmpty
	}
	out := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := out.compatible(p); err != nil {
			return nil, err
		}
		if err := out.xtx.AccumulateInPlace(p.xtx); err != nil {
			return nil, err
		}
		for i := range out.xty {
			out.xty[i] += p.xty[i]
		}
		out.yty += p.yty
		out.sumY += p.sumY
		out.n += p.n
	}
	return out, nil
}

// MergeStandard aggregates on a standard dimension: descendant cells share
// the same observation points (same X), and their responses are summed
// pointwise, so Xᵀy adds while XᵀX and n stay those of a single descendant.
// All parts must have identical n and XᵀX (within tol of relative error).
//
// yᵀy of a pointwise sum is not derivable from the parts' statistics alone
// (it needs the cross terms Σyᵢyⱼ), so the merged yᵀy and sumY are set to
// NaN-free conservative values: sumY adds exactly; yᵀy is invalidated (set
// to NaN) and goodness-of-fit queries on the merged model return an error.
// Fitted coefficients — the paper's concern — remain exact.
func MergeStandard(tol float64, parts ...*NCR) (*NCR, error) {
	if len(parts) == 0 {
		return nil, ErrEmpty
	}
	out := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := out.compatible(p); err != nil {
			return nil, err
		}
		if p.n != out.n {
			return nil, fmt.Errorf("%w: observation counts %d vs %d", ErrMismatch, out.n, p.n)
		}
		for i := 0; i < out.basis.Dim; i++ {
			for j := 0; j < out.basis.Dim; j++ {
				a, b := out.xtx.At(i, j), p.xtx.At(i, j)
				if math.Abs(a-b) > tol*(1+math.Max(math.Abs(a), math.Abs(b))) {
					return nil, fmt.Errorf("%w: XᵀX(%d,%d) %g vs %g", ErrMismatch, i, j, a, b)
				}
			}
		}
		for i := range out.xty {
			out.xty[i] += p.xty[i]
		}
		out.sumY += p.sumY
	}
	if len(parts) > 1 {
		out.yty = math.NaN() // cross terms unavailable; see doc comment
	}
	return out, nil
}

// Model is a fitted multiple linear regression.
type Model struct {
	Basis Basis
	Coef  []float64 // coefficients in basis-feature order
	N     int64
	RSS   float64 // residual sum of squares (NaN when not derivable)
	R2    float64 // coefficient of determination (NaN when not derivable)
}

// Fit solves the normal equations (XᵀX)θ = Xᵀy. It needs at least Dim
// observations and a non-singular XᵀX.
func (m *NCR) Fit() (*Model, error) {
	if m.n == 0 {
		return nil, ErrEmpty
	}
	if m.n < int64(m.basis.Dim) {
		return nil, fmt.Errorf("%w: %d observations for %d features", ErrEmpty, m.n, m.basis.Dim)
	}
	coef, err := linalg.SolveSPD(m.xtx.Clone(), append([]float64(nil), m.xty...))
	if err != nil {
		return nil, fmt.Errorf("mlr: normal equations: %w", err)
	}
	model := &Model{Basis: m.basis, Coef: coef, N: m.n}

	if math.IsNaN(m.yty) {
		model.RSS, model.R2 = math.NaN(), math.NaN()
		return model, nil
	}
	// RSS = yᵀy − θᵀXᵀy; TSS = yᵀy − n·ȳ².
	dot, err := linalg.Dot(coef, m.xty)
	if err != nil {
		return nil, err
	}
	model.RSS = m.yty - dot
	if model.RSS < 0 && model.RSS > -1e-9*(1+math.Abs(m.yty)) {
		model.RSS = 0 // clamp tiny negative rounding
	}
	ybar := m.sumY / float64(m.n)
	tss := m.yty - float64(m.n)*ybar*ybar
	switch {
	case tss > 0:
		model.R2 = 1 - model.RSS/tss
	case model.RSS <= 1e-12:
		model.R2 = 1
	default:
		model.R2 = 0
	}
	return model, nil
}

// Predict evaluates the fitted model at raw regressor values vars.
func (md *Model) Predict(vars []float64) float64 {
	row := make([]float64, md.Basis.Dim)
	md.Basis.Map(vars, row)
	var s float64
	for i, c := range md.Coef {
		s += c * row[i]
	}
	return s
}

// String renders the model compactly.
func (md *Model) String() string {
	return fmt.Sprintf("Model{basis=%s n=%d coef=%v}", md.Basis.Name, md.N, md.Coef)
}
