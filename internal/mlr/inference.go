package mlr

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Inference carries the classical OLS uncertainty estimates for a fitted
// model — the "additional, sophisticated statistical analysis operations"
// §7 points toward. All quantities derive from the same sufficient
// statistics the NCR already stores, so inference also needs no raw data.
type Inference struct {
	// Sigma2 is the residual variance estimate RSS/(n−p).
	Sigma2 float64
	// StdErr[i] is the standard error of coefficient i.
	StdErr []float64
	// TValue[i] is Coef[i]/StdErr[i].
	TValue []float64
}

// Infer computes coefficient standard errors and t-values from the
// representation's normal equations: Var(θ) = σ²·(XᵀX)⁻¹ with
// σ² = RSS/(n−p). It requires more observations than features and a
// goodness-of-fit-capable representation (yᵀy intact — not available
// after a standard-dimension merge).
func (m *NCR) Infer() (*Model, *Inference, error) {
	model, err := m.Fit()
	if err != nil {
		return nil, nil, err
	}
	p := int64(m.basis.Dim)
	if m.n <= p {
		return nil, nil, fmt.Errorf("%w: %d observations for %d features leaves no residual degrees of freedom",
			ErrEmpty, m.n, p)
	}
	if math.IsNaN(model.RSS) {
		return nil, nil, fmt.Errorf("%w: goodness-of-fit unavailable (standard-dimension merge)", ErrMismatch)
	}
	inv, err := linalg.Invert(m.xtx)
	if err != nil {
		return nil, nil, fmt.Errorf("mlr: inverting XᵀX: %w", err)
	}
	inf := &Inference{
		Sigma2: model.RSS / float64(m.n-p),
		StdErr: make([]float64, m.basis.Dim),
		TValue: make([]float64, m.basis.Dim),
	}
	for i := 0; i < m.basis.Dim; i++ {
		v := inf.Sigma2 * inv.At(i, i)
		if v < 0 {
			v = 0 // rounding guard for a perfect fit
		}
		inf.StdErr[i] = math.Sqrt(v)
		if inf.StdErr[i] > 0 {
			inf.TValue[i] = model.Coef[i] / inf.StdErr[i]
		} else {
			inf.TValue[i] = math.Inf(sign(model.Coef[i]))
		}
	}
	return model, inf, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// ConfidenceInterval returns the ±z·StdErr interval around coefficient i
// (z = 1.96 for ≈95% under the normal approximation).
func (inf *Inference) ConfidenceInterval(model *Model, i int, z float64) (lo, hi float64) {
	delta := z * inf.StdErr[i]
	return model.Coef[i] - delta, model.Coef[i] + delta
}

// PredictionStdErr returns the standard error of the mean prediction at
// raw regressor values vars: sqrt(σ²·xᵀ(XᵀX)⁻¹x). It recomputes the
// inverse; callers doing many predictions should cache Infer's results
// and use the covariance directly.
func (m *NCR) PredictionStdErr(vars []float64) (float64, error) {
	model, inf, err := m.Infer()
	if err != nil {
		return 0, err
	}
	_ = model
	inv, err := linalg.Invert(m.xtx)
	if err != nil {
		return 0, err
	}
	x := make([]float64, m.basis.Dim)
	m.basis.Map(vars, x)
	tmp, err := inv.MulVec(x)
	if err != nil {
		return 0, err
	}
	quad, err := linalg.Dot(x, tmp)
	if err != nil {
		return 0, err
	}
	if quad < 0 {
		quad = 0
	}
	return math.Sqrt(inf.Sigma2 * quad), nil
}
