package mlr

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitRawMatchesNCROnEasyProblems(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var vars [][]float64
	var ys []float64
	ncr := New(LinearBasis(2))
	for i := 0; i < 50; i++ {
		v := []float64{r.NormFloat64(), r.NormFloat64()}
		y := 1 + 2*v[0] - v[1] + r.NormFloat64()*0.1
		vars = append(vars, v)
		ys = append(ys, y)
		if err := ncr.Observe(v, y); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := FitRaw(LinearBasis(2), vars, ys)
	if err != nil {
		t.Fatal(err)
	}
	viaNCR, err := ncr.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw.Coef {
		if !almostEq(raw.Coef[i], viaNCR.Coef[i], 1e-8) {
			t.Fatalf("coef[%d]: raw %g vs NCR %g", i, raw.Coef[i], viaNCR.Coef[i])
		}
	}
	if !almostEq(raw.RSS, viaNCR.RSS, 1e-6) || !almostEq(raw.R2, viaNCR.R2, 1e-8) {
		t.Fatalf("fit stats: raw RSS %g R2 %g vs NCR RSS %g R2 %g",
			raw.RSS, raw.R2, viaNCR.RSS, viaNCR.R2)
	}
}

func TestFitRawSurvivesIllConditionedBasis(t *testing.T) {
	// Degree-8 polynomial over a wide range: the normal-equation route
	// degrades badly (condition number squared); QR must still reproduce
	// the responses.
	deg := 8
	var vars [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		tk := float64(i) / 3
		vars = append(vars, []float64{tk})
		y := 0.0
		p := 1.0
		for d := 0; d <= deg; d++ {
			y += p * math.Pow(-0.5, float64(d))
			p *= tk
		}
		ys = append(ys, y)
	}
	model, err := FitRaw(PolynomialBasis(deg), vars, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if !almostEq(model.Predict(v), ys[i], 1e-5) {
			t.Fatalf("prediction at %v: %g vs %g", v, model.Predict(v), ys[i])
		}
	}
	if model.R2 < 0.999999 {
		t.Fatalf("R2 = %g", model.R2)
	}
}

func TestFitRawValidation(t *testing.T) {
	if _, err := FitRaw(Basis{}, nil, nil); err == nil {
		t.Fatal("expected bad-basis error")
	}
	b := TimeBasis()
	if _, err := FitRaw(b, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FitRaw(b, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("expected too-few-observations error")
	}
	if _, err := FitRaw(b, [][]float64{{1}, {2}}, []float64{1, math.NaN()}); err == nil {
		t.Fatal("expected NaN response rejection")
	}
	lg := LogBasis()
	if _, err := FitRaw(lg, [][]float64{{-1}, {2}, {3}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected non-finite feature rejection")
	}
	// Collinear design → rank deficiency.
	if _, err := FitRaw(LinearBasis(2), [][]float64{{1, 2}, {2, 4}, {3, 6}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
	// Perfect constant fit: R2 defined as 1.
	model, err := FitRaw(TimeBasis(), [][]float64{{0}, {1}, {2}}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if model.R2 != 1 {
		t.Fatalf("R2 of perfect constant fit = %g", model.R2)
	}
}
