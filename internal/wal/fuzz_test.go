package wal

import (
	"errors"
	"io"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeFrame drives the recovery decoder with arbitrary bytes: every
// input must yield a clean decode, io.EOF, or a typed ErrTorn/ErrCorrupt —
// never a panic, and never an undeclared error. This is exactly the
// surface a crashed or bit-rotted segment tail exercises.
func FuzzDecodeFrame(f *testing.F) {
	// Seeds: a healthy frame, a torn tail at several offsets, a zero fill,
	// a bit flip, and an oversized length prefix.
	valid := EncodeFrame(nil, EncodeBatch(nil, []Record{
		{Tick: 7, Value: 3.5, Members: []int32{1, 2}},
		{Tick: 8, Value: -1, Members: []int32{0, 5}},
	}))
	f.Add(valid)
	f.Add(valid[:3])
	f.Add(valid[:wire.FrameHeaderLen])
	f.Add(valid[:len(valid)-2])
	f.Add(make([]byte, 64))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1})
	f.Add(append(append([]byte(nil), valid...), valid...)) // two frames

	f.Fuzz(func(t *testing.T, b []byte) {
		// Walk frames exactly as scanSegment does, bounding the walk by
		// the input length (each frame consumes ≥ wire.FrameHeaderLen bytes).
		rest := b
		for {
			payload, n, err := DecodeFrame(rest)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("DecodeFrame: undeclared error %v", err)
				}
				return
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(rest))
			}
			// A CRC-valid frame still gets full batch validation; the only
			// legal failure is ErrCorrupt.
			count, err := DecodeBatch(payload, nil)
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeBatch: undeclared error %v", err)
			}
			if err == nil {
				// A valid batch must re-deliver the same count through the
				// callback path, and member slices must respect the bound.
				delivered := 0
				if _, err := DecodeBatch(payload, func(r Record) error {
					if len(r.Members) > maxRecordMembers {
						t.Fatalf("record with %d members escaped validation", len(r.Members))
					}
					delivered++
					return nil
				}); err != nil {
					t.Fatalf("DecodeBatch callback pass failed after nil-fn pass: %v", err)
				}
				if delivered != count {
					t.Fatalf("DecodeBatch delivered %d records, counted %d", delivered, count)
				}
			}
			rest = rest[n:]
		}
	})
}

// FuzzEncodeDecodeBatch round-trips generated records through the batch
// codec: whatever encodes must decode back exactly.
func FuzzEncodeDecodeBatch(f *testing.F) {
	f.Add(int64(0), 0.0, int64(3), 5)
	f.Add(int64(-9), 1e300, int64(1<<40), 1)
	f.Add(int64(1<<62), -0.5, int64(-7), 8)
	f.Fuzz(func(t *testing.T, tick int64, value float64, memberSeed int64, n int) {
		if n < 0 || n > 32 {
			return
		}
		var recs []Record
		for i := 0; i < n; i++ {
			members := make([]int32, (i+int(memberSeed&3))%8)
			for j := range members {
				members[j] = int32((memberSeed >> (j * 4)) & 0xffff)
			}
			recs = append(recs, Record{Tick: tick + int64(i), Value: value * float64(i+1), Members: members})
		}
		payload := EncodeBatch(nil, recs)
		var got []Record
		count, err := DecodeBatch(payload, func(r Record) error {
			cp := r
			cp.Members = append([]int32(nil), r.Members...)
			got = append(got, cp)
			return nil
		})
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if count != len(recs) || len(got) != len(recs) {
			t.Fatalf("decoded %d/%d records, want %d", count, len(got), len(recs))
		}
		for i := range recs {
			if got[i].Tick != recs[i].Tick || got[i].Value != recs[i].Value {
				// NaN encodes to the same bit pattern it decodes from, but
				// != fails on NaN; compare only when comparable.
				if !(recs[i].Value != recs[i].Value && got[i].Value != got[i].Value) {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
				}
			}
			if len(got[i].Members) != len(recs[i].Members) {
				t.Fatalf("record %d members %v, want %v", i, got[i].Members, recs[i].Members)
			}
			for j := range recs[i].Members {
				if got[i].Members[j] != recs[i].Members[j] {
					t.Fatalf("record %d members %v, want %v", i, got[i].Members, recs[i].Members)
				}
			}
		}
	})
}
