package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// rec builds a test record with a recognizable shape: tick t, value v,
// members derived from the tick so every record is distinct.
func rec(t int64, v float64) Record {
	return Record{Tick: t, Value: v, Members: []int32{int32(t % 7), int32(t % 3)}}
}

// appendN appends n single-record frames starting at tick base.
func appendN(t *testing.T, l *Log, base int64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := l.Append([]Record{rec(base+int64(i), float64(i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

// collect replays dir from the watermark and returns the records.
func collect(t *testing.T, dir string, from int64) ([]Record, int64) {
	t.Helper()
	var out []Record
	end, err := Replay(dir, from, func(seq int64, r Record) error {
		if want := from + int64(len(out)); seq != want {
			t.Fatalf("replay seq %d, want %d", seq, want)
		}
		cp := r
		cp.Members = append([]int32(nil), r.Members...)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, end
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		batch := []Record{rec(int64(i*2), float64(i)), rec(int64(i*2+1), -float64(i))}
		want = append(want, batch...)
		if err := l.Append(batch); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.Seq(); got != 20 {
		t.Fatalf("Seq = %d, want 20", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, end := collect(t, dir, 0)
	if end != 20 || len(got) != 20 {
		t.Fatalf("replay got %d records, end %d; want 20, 20", len(got), end)
	}
	for i, r := range got {
		w := want[i]
		if r.Tick != w.Tick || r.Value != w.Value || len(r.Members) != len(w.Members) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
		for j := range r.Members {
			if r.Members[j] != w.Members[j] {
				t.Fatalf("record %d members = %v, want %v", i, r.Members, w.Members)
			}
		}
	}
	// Watermark skipping: replay from 15 delivers exactly the tail.
	tail, end := collect(t, dir, 15)
	if end != 20 || len(tail) != 5 {
		t.Fatalf("tail replay got %d records, end %d; want 5, 20", len(tail), end)
	}
	if tail[0].Tick != want[15].Tick {
		t.Fatalf("tail starts at tick %d, want %d", tail[0].Tick, want[15].Tick)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Seq() != 5 {
		t.Fatalf("reopened Seq = %d, want 5", l2.Seq())
	}
	appendN(t, l2, 5, 5)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, end := collect(t, dir, 0)
	if end != 10 || len(got) != 10 {
		t.Fatalf("replay got %d, end %d; want 10, 10", len(got), end)
	}
}

// smallSegmentLog opens a log whose segments rotate after roughly one
// single-record frame (header 16 + frame ≈ 25 bytes).
func smallSegmentLog(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestRotationAndMultiSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	l := smallSegmentLog(t, dir, 40) // rotate after every frame or two
	appendN(t, l, 0, 9)
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected 3+ segments, got %d: %v", len(segs), segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, end := collect(t, dir, 0)
	if end != 9 || len(got) != 9 {
		t.Fatalf("replay got %d, end %d; want 9, 9", len(got), end)
	}
	// Reopen appends into the rotation chain and replays whole.
	l2 := smallSegmentLog(t, dir, 40)
	if l2.Seq() != 9 {
		t.Fatalf("reopened Seq = %d, want 9", l2.Seq())
	}
	appendN(t, l2, 9, 3)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, end := collect(t, dir, 0); end != 12 || len(got) != 12 {
		t.Fatalf("post-reopen replay got %d, end %d; want 12, 12", len(got), end)
	}
	// Watermark past several sealed segments still lands correctly.
	if got, end := collect(t, dir, 7); end != 12 || len(got) != 5 {
		t.Fatalf("watermark replay got %d, end %d; want 5, 12", len(got), end)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	for _, cut := range []int{1, 3, 7} { // bytes to keep of the last frame
		t.Run(fmt.Sprintf("keep%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			appendN(t, l, 0, 4)
			seg := l.Segments()[0].Name
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			path := filepath.Join(dir, seg)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the last frame: keep only `cut` bytes of it. All frames
			// are the same size, so locate the last frame's start by
			// scanning.
			frameLen := (len(b) - segmentHdrLen) / 4
			tearAt := len(b) - frameLen + cut
			if err := os.WriteFile(path, b[:tearAt], 0o666); err != nil {
				t.Fatal(err)
			}
			// Read-only replay stops cleanly at the valid prefix.
			if got, end := collect(t, dir, 0); end != 3 || len(got) != 3 {
				t.Fatalf("replay got %d, end %d; want 3, 3", len(got), end)
			}
			// Open truncates the torn tail and appends after record 3.
			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if l2.Seq() != 3 {
				t.Fatalf("recovered Seq = %d, want 3", l2.Seq())
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(segmentHdrLen + 3*frameLen); fi.Size() != want {
				t.Fatalf("truncated size %d, want %d", fi.Size(), want)
			}
			appendN(t, l2, 3, 2)
			if err := l2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got, end := collect(t, dir, 0); end != 5 || len(got) != 5 {
				t.Fatalf("post-recovery replay got %d, end %d; want 5, 5", len(got), end)
			}
		})
	}
}

func TestRecoveryTruncatesCorruptAndZeroFilledTail(t *testing.T) {
	corrupt := func(b []byte, frameLen int) []byte {
		b[len(b)-1] ^= 0xff // flip a payload byte of the last frame
		return b
	}
	zeroFill := func(b []byte, frameLen int) []byte {
		// Replace the last frame with zeros and extend with a zero block —
		// the classic post-crash state on extent-allocating filesystems.
		for i := len(b) - frameLen; i < len(b); i++ {
			b[i] = 0
		}
		return append(b, make([]byte, 256)...)
	}
	for name, mutate := range map[string]func([]byte, int) []byte{"bitflip": corrupt, "zerofill": zeroFill} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			appendN(t, l, 0, 4)
			seg := l.Segments()[0].Name
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			path := filepath.Join(dir, seg)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			frameLen := (len(b) - segmentHdrLen) / 4
			if err := os.WriteFile(path, mutate(b, frameLen), 0o666); err != nil {
				t.Fatal(err)
			}
			if got, end := collect(t, dir, 0); end != 3 || len(got) != 3 {
				t.Fatalf("replay got %d, end %d; want 3, 3", len(got), end)
			}
			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if l2.Seq() != 3 {
				t.Fatalf("recovered Seq = %d, want 3", l2.Seq())
			}
			l2.Close()
		})
	}
}

func TestCorruptSealedSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l := smallSegmentLog(t, dir, 40)
	appendN(t, l, 0, 6)
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("need 2+ segments, got %d", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Damage a frame in the FIRST (sealed) segment: its records were
	// durably acknowledged, so replay must fail loudly, not truncate.
	path := filepath.Join(dir, segs[0].Name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(int64, Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay error = %v, want ErrCorrupt", err)
	}
}

func TestRotationEdges(t *testing.T) {
	type setup func(t *testing.T, dir string) // mutate a healthy multi-segment log
	cases := []struct {
		name      string
		setup     setup
		wantOpen  bool  // Open succeeds
		wantSeq   int64 // Seq after Open (when wantOpen)
		wantCount int64 // records replayable after recovery
	}{
		{
			// Crash between segment creation and the first append: the
			// trailing segment holds a header and nothing else.
			name: "empty trailing segment",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 3)
				if err := l.rotate(); err != nil {
					t.Fatalf("rotate: %v", err)
				}
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			},
			wantOpen: true, wantSeq: 3, wantCount: 3,
		},
		{
			// Crash between creating the segment file and writing its
			// header: an untracked, headerless file recovery must delete.
			name: "torn header on untracked trailing segment",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 3)
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				// Simulate the torn creation by hand: file exists, header
				// only partially written, manifest never rewritten.
				name := segmentName(3)
				if err := os.WriteFile(filepath.Join(dir, name), []byte("RGC"), 0o666); err != nil {
					t.Fatal(err)
				}
			},
			wantOpen: true, wantSeq: 3, wantCount: 3,
		},
		{
			// Crash after the new segment's header landed but before the
			// manifest rewrite: the untracked segment is adopted.
			name: "untracked trailing segment adopted",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 3)
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				name := segmentName(3)
				var hdr [segmentHdrLen]byte
				copy(hdr[:], segmentMagic)
				binary.LittleEndian.PutUint64(hdr[8:], 3)
				frame := EncodeFrame(nil, EncodeBatch(nil, []Record{rec(100, 1)}))
				if err := os.WriteFile(filepath.Join(dir, name), append(hdr[:], frame...), 0o666); err != nil {
					t.Fatal(err)
				}
			},
			wantOpen: true, wantSeq: 4, wantCount: 4,
		},
		{
			// A manifest-listed segment file is gone: unrecoverable
			// disagreement, never silently repaired.
			name: "manifest names missing segment",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 6)
				segs := l.Segments()
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				if err := os.Remove(filepath.Join(dir, segs[0].Name)); err != nil {
					t.Fatal(err)
				}
			},
			wantOpen: false,
		},
		{
			// An untracked segment BEFORE the manifest tail means some
			// other writer owned the directory: refuse it.
			name: "untracked mid segment rejected",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 6)
				if len(l.Segments()) < 2 {
					t.Fatalf("need 2+ segments")
				}
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				// Drop a rogue, plausibly-named segment between the real
				// ones (sequence 1 is inside segment 0's span).
				var hdr [segmentHdrLen]byte
				copy(hdr[:], segmentMagic)
				binary.LittleEndian.PutUint64(hdr[8:], 1)
				if err := os.WriteFile(filepath.Join(dir, segmentName(1)), hdr[:], 0o666); err != nil {
					t.Fatal(err)
				}
			},
			wantOpen: false,
		},
		{
			// A segment header disagreeing with its manifest entry is
			// corruption, not a crash artifact.
			name: "segment header disagrees with manifest",
			setup: func(t *testing.T, dir string) {
				l := smallSegmentLog(t, dir, 40)
				appendN(t, l, 0, 6)
				segs := l.Segments()
				if err := l.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				path := filepath.Join(dir, segs[1].Name)
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				binary.LittleEndian.PutUint64(b[8:], 9999)
				if err := os.WriteFile(path, b, 0o666); err != nil {
					t.Fatal(err)
				}
			},
			wantOpen: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.setup(t, dir)
			l, err := Open(Options{Dir: dir, SegmentBytes: 40})
			if !tc.wantOpen {
				if err == nil {
					l.Close()
					t.Fatalf("Open succeeded, want error")
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open error = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if l.Seq() != tc.wantSeq {
				t.Fatalf("Seq = %d, want %d", l.Seq(), tc.wantSeq)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got, end := collect(t, dir, 0); end != tc.wantCount || int64(len(got)) != tc.wantCount {
				t.Fatalf("replay got %d, end %d; want %d", len(got), end, tc.wantCount)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		every  time.Duration
		ok     bool
	}{
		{"", SyncBatch, 0, true},
		{"batch", SyncBatch, 0, true},
		{"off", SyncOff, 0, true},
		{"interval", SyncInterval, 0, true},
		{"interval=250ms", SyncInterval, 250 * time.Millisecond, true},
		{"interval=0s", 0, 0, false},
		{"interval=-1s", 0, 0, false},
		{"interval=junk", 0, 0, false},
		{"fsync", 0, 0, false},
	}
	for _, tc := range cases {
		p, every, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && (p != tc.policy || every != tc.every) {
			t.Fatalf("ParseSyncPolicy(%q) = %v/%v, want %v/%v", tc.in, p, every, tc.policy, tc.every)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	// Each policy must leave a replayable log after Close; the policies
	// differ only in fsync timing, which a unit test can't observe, so
	// this is a behavioral smoke over the three code paths.
	for _, p := range []SyncPolicy{SyncBatch, SyncInterval, SyncOff} {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: p, SyncEvery: time.Millisecond})
		if err != nil {
			t.Fatalf("Open(%v): %v", p, err)
		}
		appendN(t, l, 0, 5)
		if p == SyncInterval {
			time.Sleep(2 * time.Millisecond)
			appendN(t, l, 5, 1) // crosses the interval → sync path runs
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close(%v): %v", p, err)
		}
		want := int64(5)
		if p == SyncInterval {
			want = 6
		}
		if got, end := collect(t, dir, 0); end != want || int64(len(got)) != want {
			t.Fatalf("policy %v: replay got %d, end %d; want %d", p, len(got), end, want)
		}
	}
}

func TestReplayNegativeWatermark(t *testing.T) {
	if _, err := Replay(t.TempDir(), -1, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay(-1) error = %v, want ErrCorrupt", err)
	}
}

func TestFrameCodecErrors(t *testing.T) {
	valid := EncodeFrame(nil, EncodeBatch(nil, []Record{rec(1, 2)}))
	if _, _, err := DecodeFrame(valid); err != nil {
		t.Fatalf("DecodeFrame(valid): %v", err)
	}
	if _, _, err := DecodeFrame(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("DecodeFrame(empty) = %v, want io.EOF", err)
	}
	if _, _, err := DecodeFrame(valid[:5]); !errors.Is(err, ErrTorn) {
		t.Fatalf("short header error = %v, want ErrTorn", err)
	}
	if _, _, err := DecodeFrame(valid[:len(valid)-1]); !errors.Is(err, ErrTorn) {
		t.Fatalf("short payload error = %v, want ErrTorn", err)
	}
	zero := make([]byte, 16)
	if _, _, err := DecodeFrame(zero); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length frame error = %v, want ErrCorrupt", err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 1
	if _, _, err := DecodeFrame(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("checksum error = %v, want ErrCorrupt", err)
	}
	huge := binary.LittleEndian.AppendUint32(nil, MaxFramePayload+1)
	huge = append(huge, 0, 0, 0, 0)
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length error = %v, want ErrCorrupt", err)
	}
}
