// Package wal is the durable-ingest half of the stream engine: a
// segmented, length-prefixed, CRC32C-framed record log that streamd
// appends every stream record to *before* ingesting it. Replaying the log
// after a crash rebuilds the open unit exactly (ingest is deterministic,
// so replayed state is bitwise-identical to uninterrupted state), and
// replaying it through a *different* engine configuration — shard count,
// tilt levels, exception threshold — answers what-if questions about
// history the checkpoint alone cannot.
//
// On disk a log directory holds numbered segment files plus a manifest:
//
//	wal-0000000000000000.seg   records [0, s1)
//	wal-00000000000186a0.seg   records [s1, s2)
//	...
//	MANIFEST.json              {"version":1,"segments":[...]}
//
// Each segment starts with a 16-byte header (magic "RGCWAL01" plus the
// little-endian first record sequence, which also names the file) and then
// carries frames (see frame.go). Rotation seals the current segment,
// creates the next one, and rewrites the manifest atomically; a crash
// between the two leaves an untracked trailing segment that recovery
// adopts. Recovery scans only the newest segment and truncates it at the
// first torn or corrupt frame — everything before that point is the
// durable record prefix, everything after never happened.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/wire"
)

// Typed failure classes. ErrTorn marks an incomplete tail write (the
// expected post-crash state; recovery truncates it silently); ErrCorrupt
// marks data that was durably written and then damaged, or a log directory
// whose segments and manifest disagree — never repaired silently. ErrTorn
// is the wire package's sentinel: a torn log tail and a torn ingest stream
// are the same failure, cut at the same frame boundary. ErrCorrupt stays
// the log's own (it also covers manifest and segment-header damage), but
// frame-level corruption wraps wire.ErrCorrupt too.
var (
	ErrTorn    = wire.ErrTorn
	ErrCorrupt = errors.New("wal: corrupt log")
)

// Record is one raw stream record as ingested: the engine's
// (members, tick, value) triple. Sequence numbers are implicit — a
// record's sequence is its zero-based position in the log.
type Record struct {
	Tick    int64
	Value   float64
	Members []int32
}

// SyncPolicy selects when appended frames are fsynced.
type SyncPolicy int

const (
	// SyncBatch fsyncs after every appended frame — every acknowledged
	// batch survives an OS crash (the default).
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery; a crash can
	// lose the last interval's records (they are also absent from any
	// checkpoint, so recovery stays consistent).
	SyncInterval
	// SyncOff never fsyncs on append; only explicit Sync calls (streamd
	// issues one before every checkpoint save) reach the platter.
	SyncOff
)

// ParseSyncPolicy decodes the streamd -wal-sync flag forms: "batch",
// "off", "interval" (default period), or "interval=250ms".
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch {
	case s == "" || s == "batch":
		return SyncBatch, 0, nil
	case s == "off":
		return SyncOff, 0, nil
	case s == "interval":
		return SyncInterval, 0, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: sync policy %q: want a positive duration", s)
		}
		return SyncInterval, d, nil
	default:
		return 0, 0, fmt.Errorf("wal: sync policy %q: want batch, interval[=dur], or off", s)
	}
}

const (
	segmentMagic  = "RGCWAL01"
	segmentHdrLen = 16
	manifestName  = "MANIFEST.json"
	segPrefix     = "wal-"
	segSuffix     = ".seg"

	defaultSegmentBytes = 64 << 20
	defaultSyncEvery    = 100 * time.Millisecond
)

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if absent.
	Dir string
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 64 MiB).
	SegmentBytes int64
	// Sync selects the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
}

// SegmentInfo describes one segment of the log.
type SegmentInfo struct {
	// Name is the segment file name within the log directory.
	Name string `json:"name"`
	// FirstSeq is the sequence of the segment's first record.
	FirstSeq int64 `json:"firstSeq"`
}

type manifest struct {
	Version  int           `json:"version"`
	Segments []SegmentInfo `json:"segments"`
}

// Log is an append-only record log. Like the stream engines it is
// confined to one goroutine.
type Log struct {
	opts     Options
	segs     []SegmentInfo
	f        *os.File // open (newest) segment
	size     int64    // bytes written to the open segment, header included
	seq      int64    // sequence of the next appended record
	dirty    bool     // bytes written since the last fsync
	lastSync time.Time
	frameBuf []byte
	payload  []byte
}

func segmentName(firstSeq int64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegmentName(name string) (int64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	var seq int64
	if _, err := fmt.Sscanf(hex, "%016x", &seq); err != nil || segmentName(seq) != name {
		return 0, false
	}
	return seq, true
}

// Open opens (or initializes) the log in opts.Dir for appending,
// recovering from any crash state first: the newest segment is scanned and
// truncated at the first torn or corrupt frame, a trailing segment the
// manifest missed is adopted, and a half-created trailing segment (torn
// header, untracked) is removed. The returned log appends at Seq().
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("%w: empty directory", ErrCorrupt)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, err
	}
	segs, err := loadSegments(opts.Dir, true)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, lastSync: time.Now()}
	if len(segs) == 0 {
		if err := l.createSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.segs = segs
	last := segs[len(segs)-1]
	path := filepath.Join(opts.Dir, last.Name)
	records, validSize, err := scanSegment(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() != validSize {
		// The torn or corrupt tail is physically removed so the rebuilt
		// append position and every future reader agree on the log's end.
		if err := f.Truncate(validSize); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.size = validSize
	l.seq = last.FirstSeq + records
	return l, nil
}

// loadSegments discovers and cross-validates the manifest and the segment
// files on disk, returning the ordered segment list. With repair set
// (Open), a trailing untracked segment is adopted into the manifest and a
// trailing torn-header segment is deleted; read-only callers (Replay) get
// the same view without mutating anything.
func loadSegments(dir string, repair bool) ([]SegmentInfo, error) {
	var m manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("%w: manifest version %d, want 1", ErrCorrupt, m.Version)
		}
	case os.IsNotExist(err):
		// Fresh directory (or pre-manifest crash with no segments yet).
	default:
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	onDisk := make(map[string]int64)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			onDisk[e.Name()] = seq
		}
	}
	tracked := make(map[string]bool, len(m.Segments))
	lastTracked := int64(-1)
	for i, s := range m.Segments {
		if seq, ok := parseSegmentName(s.Name); !ok || seq != s.FirstSeq {
			return nil, fmt.Errorf("%w: manifest entry %q/%d is not a segment name", ErrCorrupt, s.Name, s.FirstSeq)
		}
		if i > 0 && s.FirstSeq <= m.Segments[i-1].FirstSeq {
			return nil, fmt.Errorf("%w: manifest sequences not increasing at %q", ErrCorrupt, s.Name)
		}
		if _, ok := onDisk[s.Name]; !ok {
			return nil, fmt.Errorf("%w: manifest names missing segment %q", ErrCorrupt, s.Name)
		}
		tracked[s.Name] = true
		lastTracked = s.FirstSeq
	}
	segs := slices.Clone(m.Segments)
	// Untracked segments are legal only past the manifest's tail: rotation
	// creates the file first and rewrites the manifest second, so a crash
	// between the two leaves exactly this state. An untracked segment
	// before the tail means someone else wrote the directory.
	var untracked []SegmentInfo
	for name, seq := range onDisk {
		if tracked[name] {
			continue
		}
		if seq <= lastTracked {
			return nil, fmt.Errorf("%w: segment %q on disk but absent from the manifest", ErrCorrupt, name)
		}
		untracked = append(untracked, SegmentInfo{Name: name, FirstSeq: seq})
	}
	sort.Slice(untracked, func(i, j int) bool { return untracked[i].FirstSeq < untracked[j].FirstSeq })
	adopted := false
	for _, s := range untracked {
		path := filepath.Join(dir, s.Name)
		if err := checkHeader(path, s.FirstSeq); err != nil {
			if errors.Is(err, ErrTorn) && s == untracked[len(untracked)-1] {
				// Crash mid-creation: the file exists but its header never
				// landed. It holds no records; drop it.
				if repair {
					if err := os.Remove(path); err != nil {
						return nil, err
					}
				}
				continue
			}
			return nil, err
		}
		segs = append(segs, s)
		adopted = true
	}
	for _, s := range segs {
		if err := checkHeader(filepath.Join(dir, s.Name), s.FirstSeq); err != nil {
			return nil, err
		}
	}
	if repair && adopted {
		if err := writeManifest(dir, segs); err != nil {
			return nil, err
		}
	}
	return segs, nil
}

// checkHeader validates one segment's 16-byte header against its name.
func checkHeader(path string, wantSeq int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [segmentHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: segment %s header", ErrTorn, filepath.Base(path))
		}
		return err
	}
	if string(hdr[:8]) != segmentMagic {
		return fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, filepath.Base(path))
	}
	if got := int64(binary.LittleEndian.Uint64(hdr[8:])); got != wantSeq {
		return fmt.Errorf("%w: segment %s header sequence %d, want %d", ErrCorrupt, filepath.Base(path), got, wantSeq)
	}
	return nil
}

// scanSegment walks one segment's frames, returning the record count of
// the valid prefix and its byte length. The scan stops cleanly at the
// first torn or corrupt frame — that is the recovery truncation point —
// and only real I/O errors fail it.
func scanSegment(path string) (records, validSize int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(b) < segmentHdrLen {
		return 0, int64(len(b)), nil
	}
	off := int64(segmentHdrLen)
	rest := b[segmentHdrLen:]
	for {
		payload, n, err := DecodeFrame(rest)
		if err != nil {
			// io.EOF is the clean end; ErrTorn/ErrCorrupt mark the
			// truncation point. All three end the scan without failing it.
			return records, off, nil
		}
		count, err := DecodeBatch(payload, nil)
		if err != nil {
			return records, off, nil
		}
		records += int64(count)
		off += int64(n)
		rest = rest[n:]
	}
}

func writeManifest(dir string, segs []SegmentInfo) error {
	raw, err := json.MarshalIndent(manifest{Version: 1, Segments: segs}, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o666); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creations within it are
// durable; filesystems that reject directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// createSegment seals nothing (the caller does) and starts the segment
// whose first record is seq, registering it in the manifest.
func (l *Log) createSegment(seq int64) error {
	name := segmentName(seq)
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return err
	}
	var hdr [segmentHdrLen]byte
	copy(hdr[:], segmentMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(seq))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.size = segmentHdrLen
	l.seq = seq
	l.segs = append(l.segs, SegmentInfo{Name: name, FirstSeq: seq})
	return writeManifest(l.opts.Dir, l.segs)
}

// rotate seals the open segment and starts the next one.
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	return l.createSegment(l.seq)
}

// Seq returns the sequence the next appended record will take — equally,
// how many records the log has ever admitted.
func (l *Log) Seq() int64 { return l.seq }

// Segments returns the ordered segment list (a copy).
func (l *Log) Segments() []SegmentInfo { return slices.Clone(l.segs) }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Append writes one frame carrying recs and advances Seq by len(recs).
// Whether the frame is durable when Append returns is the sync policy's
// call; Sync forces the question. An empty batch is a no-op.
func (l *Log) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.payload = EncodeBatch(l.payload[:0], recs)
	return l.appendPayload(int64(len(recs)))
}

// AppendColumnar writes one frame carrying the records of a wire batch and
// advances Seq by b.Len(). The on-disk encoding is identical to Append on
// the equivalent []Record — the log format does not fork — so replay and
// recovery are oblivious to which ingest path fed the log.
func (l *Log) AppendColumnar(b *wire.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	l.payload = appendColumnarBatch(l.payload[:0], b)
	return l.appendPayload(int64(b.Len()))
}

// appendPayload frames l.payload, writes it, and applies rotation and the
// sync policy. recs is how far Seq advances on success.
func (l *Log) appendPayload(recs int64) error {
	if l.f == nil {
		return fmt.Errorf("%w: log closed", ErrCorrupt)
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	if len(l.payload) > MaxFramePayload {
		return fmt.Errorf("%w: batch encodes to %d bytes, frame cap %d", ErrCorrupt, len(l.payload), MaxFramePayload)
	}
	l.frameBuf = EncodeFrame(l.frameBuf[:0], l.payload)
	if _, err := l.f.Write(l.frameBuf); err != nil {
		return err
	}
	l.size += int64(len(l.frameBuf))
	l.seq += recs
	l.dirty = true
	switch l.opts.Sync {
	case SyncBatch:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.Sync()
		}
	}
	return nil
}

// Sync fsyncs the open segment. Checkpoint writers call it first, so a
// checkpoint's watermark never points past the durable log.
func (l *Log) Sync() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Close syncs and closes the log. The log is unusable afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
