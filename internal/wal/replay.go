package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Replay reads the log in dir and invokes fn for every record whose
// sequence is >= from, in order, returning the sequence one past the last
// record delivered (equally: the count of records the durable log holds).
// Segments wholly below the watermark are skipped by their manifest
// bounds without being read.
//
// Replay never mutates the directory, so it also serves crashed logs that
// Open has not repaired yet: a torn or corrupt tail in the *last* segment
// ends the replay cleanly at the valid prefix — exactly where Open would
// truncate — while damage in a sealed segment, whose frames were all
// durably acknowledged, is a hard ErrCorrupt.
//
// The Record passed to fn aliases scratch storage reused across calls;
// copy Members to retain it. A non-nil error from fn aborts the replay
// and is returned verbatim.
func Replay(dir string, from int64, fn func(seq int64, rec Record) error) (int64, error) {
	if from < 0 {
		return 0, fmt.Errorf("%w: negative replay watermark %d", ErrCorrupt, from)
	}
	segs, err := loadSegments(dir, false)
	if err != nil {
		return 0, err
	}
	seq := int64(0)
	for i, s := range segs {
		last := i == len(segs)-1
		// A sealed segment's record span is bounded by its successor's
		// first sequence; skip it unread when the watermark clears it.
		if !last && segs[i+1].FirstSeq <= from {
			seq = segs[i+1].FirstSeq
			continue
		}
		if s.FirstSeq != seq {
			return 0, fmt.Errorf("%w: segment %s starts at %d, expected %d", ErrCorrupt, s.Name, s.FirstSeq, seq)
		}
		b, err := os.ReadFile(filepath.Join(dir, s.Name))
		if err != nil {
			return 0, err
		}
		if len(b) < segmentHdrLen {
			if last {
				break
			}
			return 0, fmt.Errorf("%w: sealed segment %s truncated", ErrCorrupt, s.Name)
		}
		rest := b[segmentHdrLen:]
		for {
			payload, n, err := DecodeFrame(rest)
			if err != nil {
				if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
					if last {
						// The unrepaired tail of a crashed log: stop at
						// the valid prefix, where Open would truncate.
						return seq, nil
					}
					return 0, fmt.Errorf("%w: sealed segment %s: %v", ErrCorrupt, s.Name, err)
				}
				break // io.EOF: clean end of this segment
			}
			// Validate the whole batch before delivering any of it, so a
			// CRC-colliding-but-malformed payload can't hand fn a partial
			// batch: frames are all-or-nothing.
			if _, err := DecodeBatch(payload, nil); err != nil {
				if last {
					return seq, nil
				}
				return 0, fmt.Errorf("%w: sealed segment %s: %v", ErrCorrupt, s.Name, err)
			}
			if _, err := DecodeBatch(payload, func(rec Record) error {
				if seq >= from {
					if err := fn(seq, rec); err != nil {
						return err
					}
				}
				seq++
				return nil
			}); err != nil {
				return seq, err
			}
			rest = rest[n:]
		}
	}
	return seq, nil
}
