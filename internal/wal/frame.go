package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/wire"
)

// Frame layout, little-endian:
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//
// The framing itself lives in internal/wire — the log and the binary
// ingest wire ship identically framed payloads — and this file keeps the
// log's batch payload codec plus thin wrappers that translate wire's
// corruption sentinel into the log's. A zero length is never written — a
// tail of zero-filled blocks (the classic post-crash state on
// extent-allocating filesystems) must read as corruption, not as an
// endless run of valid empty frames.
//
// Batch payload layout (row-oriented, unlike the wire's columnar batches —
// replay walks records in order and never needs columns):
//
//	uvarint record count
//	per record: uvarint member count, varint members..., varint tick,
//	            8-byte IEEE-754 value bits
const (
	// MaxFramePayload bounds a single frame's payload. Lengths beyond it
	// are corruption by definition, so a flipped length byte cannot make a
	// reader attempt a multi-gigabyte allocation.
	MaxFramePayload = wire.MaxFramePayload
	// maxRecordMembers bounds the per-record member count the codec
	// accepts; streams have at most a handful of dimensions.
	maxRecordMembers = wire.MaxDims
)

// EncodeFrame appends the framed payload to dst and returns the extended
// slice.
func EncodeFrame(dst []byte, payload []byte) []byte {
	return wire.EncodeFrame(dst, payload)
}

// DecodeFrame decodes the first frame in b. It returns the payload (a
// sub-slice of b), the total number of bytes the frame occupies, and one
// of:
//
//   - nil — a complete, checksummed frame;
//   - io.EOF — b is empty (clean end of the log);
//   - ErrTorn — b ends mid-frame (a torn tail; recovery truncates here);
//   - ErrCorrupt — the length or checksum is invalid (bit rot, zero fill).
//
// It never panics on arbitrary input.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	payload, n, err = wire.DecodeFrame(b)
	if err != nil && errors.Is(err, wire.ErrCorrupt) {
		// ErrTorn is shared outright; corruption keeps the log's own
		// sentinel (it also covers manifest and header damage) while
		// remaining matchable as the wire's.
		return nil, 0, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return payload, n, err
}

// EncodeBatch appends the batch encoding of recs to dst and returns the
// extended slice.
func EncodeBatch(dst []byte, recs []Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(r.Members)))
		for _, m := range r.Members {
			dst = binary.AppendVarint(dst, int64(m))
		}
		dst = binary.AppendVarint(dst, r.Tick)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Value))
	}
	return dst
}

// appendColumnarBatch appends the same batch encoding, reading records
// column-wise from a wire batch instead of a []Record — the binary ingest
// path logs straight from decoded columns without materializing rows.
func appendColumnarBatch(dst []byte, b *wire.Batch) []byte {
	dims := len(b.Cols)
	dst = binary.AppendUvarint(dst, uint64(b.Len()))
	for i, tick := range b.Ticks {
		dst = binary.AppendUvarint(dst, uint64(dims))
		for d := 0; d < dims; d++ {
			dst = binary.AppendVarint(dst, int64(b.Cols[d][i]))
		}
		dst = binary.AppendVarint(dst, tick)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Values[i]))
	}
	return dst
}

// DecodeBatch decodes one frame payload, invoking fn for each record in
// order, and returns the record count. The Record passed to fn aliases
// scratch storage reused across calls — copy Members to retain it. A nil
// fn just validates and counts. Malformed payloads (bad varints, oversized
// member counts, trailing garbage) return ErrCorrupt; DecodeBatch never
// panics on arbitrary input.
func DecodeBatch(payload []byte, fn func(Record) error) (int, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, fmt.Errorf("%w: batch count varint", ErrCorrupt)
	}
	// Every record takes at least 1 (member count) + 1 (tick) + 8 (value)
	// bytes, so a huge count in a small payload fails up front.
	if count > uint64(len(payload)) {
		return 0, fmt.Errorf("%w: batch claims %d records in %d bytes", ErrCorrupt, count, len(payload))
	}
	b := payload[n:]
	var members []int32
	for i := uint64(0); i < count; i++ {
		nm, n := binary.Uvarint(b)
		if n <= 0 || nm > maxRecordMembers {
			return 0, fmt.Errorf("%w: record %d member count", ErrCorrupt, i)
		}
		b = b[n:]
		members = members[:0]
		for j := uint64(0); j < nm; j++ {
			v, n := binary.Varint(b)
			if n <= 0 || v < math.MinInt32 || v > math.MaxInt32 {
				return 0, fmt.Errorf("%w: record %d member %d", ErrCorrupt, i, j)
			}
			members = append(members, int32(v))
			b = b[n:]
		}
		tick, n := binary.Varint(b)
		if n <= 0 {
			return 0, fmt.Errorf("%w: record %d tick", ErrCorrupt, i)
		}
		b = b[n:]
		if len(b) < 8 {
			return 0, fmt.Errorf("%w: record %d value", ErrCorrupt, i)
		}
		value := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if fn != nil {
			if err := fn(Record{Tick: tick, Value: value, Members: members}); err != nil {
				return 0, err
			}
		}
	}
	if len(b) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after %d records", ErrCorrupt, len(b), count)
	}
	return int(count), nil
}
