// Package bench regenerates the paper's performance study (§5, Figures
// 8–10): parameter sweeps running both cubing algorithms over synthetic
// D/L/C/T workloads and reporting processing time and memory usage, plus
// the Example 3 tilt-frame compression table.
//
// The absolute numbers differ from the paper's 750MHz/Windows-2000 testbed;
// the reproduction target is the curve shapes — which algorithm wins where,
// and how costs scale (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/tilt"
)

// AlgoStats summarizes one algorithm run for a sweep row.
type AlgoStats struct {
	Time      time.Duration
	PeakBytes int64
	Cells     int64 // cells computed
	Retained  int64 // cells retained
	Exc       int   // exception cells found
}

func toAlgoStats(res *core.Result) AlgoStats {
	return AlgoStats{
		Time:      res.Stats.BuildTime + res.Stats.CubeTime,
		PeakBytes: res.Stats.PeakBytes,
		Cells:     res.Stats.CellsComputed,
		Retained:  res.Stats.CellsRetained,
		Exc:       len(res.Exceptions),
	}
}

// runBoth executes both algorithms on a dataset at a threshold.
func runBoth(ds *gen.Dataset, threshold float64) (mo, pp AlgoStats, err error) {
	resMO, err := core.MOCubing(ds.Schema, ds.Inputs, exception.Global(threshold))
	if err != nil {
		return mo, pp, fmt.Errorf("bench: m/o-cubing: %w", err)
	}
	lattice := cube.NewLattice(ds.Schema)
	resPP, err := core.PopularPath(ds.Schema, ds.Inputs, exception.Global(threshold), lattice.DefaultPath())
	if err != nil {
		return mo, pp, fmt.Errorf("bench: popular-path: %w", err)
	}
	return toAlgoStats(resMO), toAlgoStats(resPP), nil
}

// Fig8Row is one point of Figure 8: time and space vs exception rate on a
// fixed dataset.
type Fig8Row struct {
	RatePct   float64 // requested exception percentage (x-axis)
	Threshold float64 // calibrated slope threshold realizing it
	MO, PP    AlgoStats
}

// Fig8 sweeps the exception percentage on one dataset
// (paper: D3L3C10T100K, 0.1%–100%).
func Fig8(spec gen.Spec, seed int64, ratesPct []float64) ([]Fig8Row, error) {
	ds, err := gen.Generate(gen.Config{Spec: spec, Seed: seed})
	if err != nil {
		return nil, err
	}
	rates := make([]float64, len(ratesPct))
	for i, p := range ratesPct {
		rates[i] = p / 100
	}
	thresholds := ds.CalibrateThresholds(rates)
	rows := make([]Fig8Row, len(ratesPct))
	for i, pct := range ratesPct {
		mo, pp, err := runBoth(ds, thresholds[i])
		if err != nil {
			return nil, err
		}
		rows[i] = Fig8Row{RatePct: pct, Threshold: thresholds[i], MO: mo, PP: pp}
	}
	return rows, nil
}

// Fig9Row is one point of Figure 9: time and space vs m-layer size at a
// fixed exception rate.
type Fig9Row struct {
	Tuples    int
	Threshold float64
	MO, PP    AlgoStats
}

// Fig9 sweeps the m-layer size using subsets of one dataset (paper:
// D3L3C10, 1% exceptions, sizes as subsets of the same dataset).
func Fig9(spec gen.Spec, seed int64, sizes []int, ratePct float64) ([]Fig9Row, error) {
	ds, err := gen.Generate(gen.Config{Spec: spec, Seed: seed})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig9Row, len(sizes))
	for i, n := range sizes {
		sub, err := ds.Subset(n)
		if err != nil {
			return nil, err
		}
		thr := sub.CalibrateThreshold(ratePct / 100)
		mo, pp, err := runBoth(sub, thr)
		if err != nil {
			return nil, err
		}
		rows[i] = Fig9Row{Tuples: n, Threshold: thr, MO: mo, PP: pp}
	}
	return rows, nil
}

// Fig10Row is one point of Figure 10: time and space vs the number of
// levels between the critical layers.
type Fig10Row struct {
	Levels    int
	Cuboids   int
	Threshold float64
	MO, PP    AlgoStats
}

// Fig10 sweeps the per-dimension level count (paper: D2C10T10K, levels
// 3–7, 1% exceptions).
func Fig10(dims, fanout, tuples int, levels []int, seed int64, ratePct float64) ([]Fig10Row, error) {
	rows := make([]Fig10Row, len(levels))
	for i, l := range levels {
		spec := gen.Spec{Dims: dims, Levels: l, Fanout: fanout, Tuples: tuples}
		ds, err := gen.Generate(gen.Config{Spec: spec, Seed: seed})
		if err != nil {
			return nil, err
		}
		thr := ds.CalibrateThreshold(ratePct / 100)
		mo, pp, err := runBoth(ds, thr)
		if err != nil {
			return nil, err
		}
		rows[i] = Fig10Row{Levels: l, Cuboids: ds.Schema.CuboidCount(), Threshold: thr, MO: mo, PP: pp}
	}
	return rows, nil
}

// TiltRow summarizes the Example 3 compression table.
type TiltRow struct {
	Description string
	Slots       int
	RawUnits    int64
	Ratio       float64
}

// TiltTable reproduces Example 3: the calendar tilt frame registers
// 4+24+31+12 = 71 units against 366·24·4 = 35,136 quarters in a year,
// "a saving of about 495 times".
func TiltTable() []TiltRow {
	cal := tilt.MustNew(tilt.CalendarLevels(), 0)
	rawYear := int64(366 * 24 * 4)
	rows := []TiltRow{{
		Description: "calendar frame (4 qtr + 24 hr + 31 day + 12 mo)",
		Slots:       cal.SlotCapacity(),
		RawUnits:    rawYear,
		Ratio:       cal.CompressionVsRaw(rawYear),
	}}
	log8 := tilt.MustNew(tilt.LogarithmicLevels(8, 4, 4), 0)
	var logCover int64 = 4
	for i := 1; i < 8; i++ {
		logCover *= 2
	}
	logCover *= 4 // slots at the top level
	rows = append(rows, TiltRow{
		Description: "logarithmic frame (8 levels × 4 slots, doubling)",
		Slots:       log8.SlotCapacity(),
		RawUnits:    logCover,
		Ratio:       log8.CompressionVsRaw(logCover),
	})
	return rows
}
