package bench

import (
	"testing"

	"repro/internal/gen"
)

// The sweep tests use scaled-down datasets; the full-scale paper sweeps
// run via cmd/benchfig. These tests assert the *shapes* the paper reports.

func TestFig8Shapes(t *testing.T) {
	spec := gen.Spec{Dims: 3, Levels: 2, Fanout: 6, Tuples: 4000}
	rows, err := Fig8(spec, 1, []float64{0.1, 1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]

	// m/o-cubing computes all cells regardless of rate: its computed-cell
	// count must be flat across the sweep.
	if first.MO.Cells != last.MO.Cells {
		t.Fatalf("m/o cells must be rate-independent: %d vs %d", first.MO.Cells, last.MO.Cells)
	}
	// popular-path computes more cells as the rate grows.
	if last.PP.Cells <= first.PP.Cells {
		t.Fatalf("popular-path cells should grow with rate: %d vs %d", first.PP.Cells, last.PP.Cells)
	}
	// m/o memory grows with the rate (exceptions retained).
	if last.MO.PeakBytes <= first.MO.PeakBytes {
		t.Fatalf("m/o memory should grow with rate: %d vs %d", first.MO.PeakBytes, last.MO.PeakBytes)
	}
	// At the lowest rate popular-path retains more (path cells dominate).
	if first.PP.Retained <= first.MO.Retained {
		t.Fatalf("at low rate popular-path should retain more: %d vs %d", first.PP.Retained, first.MO.Retained)
	}
	// Exception counts shrink as the threshold rises... i.e. grow along
	// the sweep, and both algorithms find comparable magnitudes.
	if last.MO.Exc <= first.MO.Exc {
		t.Fatal("m/o exceptions should grow with the rate")
	}
	if last.PP.Exc > last.MO.Exc {
		t.Fatal("popular-path exceptions are a subset of m/o's")
	}
	// Thresholds decrease along the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].Threshold > rows[i-1].Threshold {
			t.Fatalf("thresholds must fall as the rate rises: %v", rows)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	spec := gen.Spec{Dims: 3, Levels: 2, Fanout: 6, Tuples: 8000}
	rows, err := Fig9(spec, 2, []int{1000, 2000, 4000, 8000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Computed cells grow with size for both algorithms.
	for i := 1; i < len(rows); i++ {
		if rows[i].MO.Cells <= rows[i-1].MO.Cells {
			t.Fatalf("m/o cells should grow with size: %+v", rows)
		}
	}
	// Popular-path memory exceeds m/o at 1% exceptions for every size
	// (Figure 9(b): "popular-path takes more memory space").
	for _, r := range rows {
		if r.PP.PeakBytes <= r.MO.PeakBytes {
			t.Fatalf("size %d: popular-path bytes %d should exceed m/o %d", r.Tuples, r.PP.PeakBytes, r.MO.PeakBytes)
		}
	}
	// Popular-path computes fewer cells than m/o at 1% (the scalability
	// mechanism of Figure 9(a)).
	for _, r := range rows {
		if r.PP.Cells >= r.MO.Cells {
			t.Fatalf("size %d: popular-path cells %d should be below m/o %d", r.Tuples, r.PP.Cells, r.MO.Cells)
		}
	}
}

func TestFig9SubsetErrors(t *testing.T) {
	spec := gen.Spec{Dims: 2, Levels: 2, Fanout: 4, Tuples: 100}
	if _, err := Fig9(spec, 1, []int{1000}, 1); err == nil {
		t.Fatal("expected subset-too-large error")
	}
}

func TestFig10Shapes(t *testing.T) {
	rows, err := Fig10(2, 4, 2000, []int{2, 3, 4}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cuboid counts are (L)² for o-level 1.
	for i, want := range []int{4, 9, 16} {
		if rows[i].Cuboids != want {
			t.Fatalf("levels %d: cuboids = %d, want %d", rows[i].Levels, rows[i].Cuboids, want)
		}
	}
	// Work grows with level count for both algorithms (the "curse of
	// dimensionality" panel).
	for i := 1; i < len(rows); i++ {
		if rows[i].MO.Cells <= rows[i-1].MO.Cells {
			t.Fatalf("m/o cells should grow with levels: %+v", rows)
		}
		if rows[i].PP.Retained <= rows[i-1].PP.Retained {
			t.Fatalf("popular-path retention should grow with levels: %+v", rows)
		}
	}
}

func TestTiltTable(t *testing.T) {
	rows := TiltTable()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	cal := rows[0]
	if cal.Slots != 71 {
		t.Fatalf("calendar slots = %d, want 71", cal.Slots)
	}
	if cal.RawUnits != 35136 {
		t.Fatalf("raw units = %d, want 35136", cal.RawUnits)
	}
	if cal.Ratio < 490 || cal.Ratio > 500 {
		t.Fatalf("ratio = %g, want ≈495 (paper Example 3)", cal.Ratio)
	}
	if rows[1].Slots != 32 {
		t.Fatalf("log frame slots = %d, want 32", rows[1].Slots)
	}
}

func TestFigErrorsPropagate(t *testing.T) {
	bad := gen.Spec{Dims: 0, Levels: 1, Fanout: 1, Tuples: 1}
	if _, err := Fig8(bad, 1, []float64{1}); err == nil {
		t.Fatal("expected spec error")
	}
	if _, err := Fig9(bad, 1, []int{1}, 1); err == nil {
		t.Fatal("expected spec error")
	}
	if _, err := Fig10(0, 1, 1, []int{1}, 1, 1); err == nil {
		t.Fatal("expected spec error")
	}
}
