package serve

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden endpoint fixtures")

// goldenNanos matches the only nondeterministic bytes in any pinned body:
// the cube-build wall-clock timings inside /v1/summary's stats block.
var goldenNanos = regexp.MustCompile(`"(buildNanos|cubeNanos)":\d+`)

func normalizeGolden(b []byte) []byte {
	return goldenNanos.ReplaceAll(b, []byte(`"$1":0`))
}

// goldenCases enumerate every GET endpoint (and its parameter shapes)
// whose response bytes are pinned across API refactors. The fixture
// engines are fully deterministic — synthetic ingest, canonical sort
// orders, stable JSON field order — so the recorded bodies are exact.
// /healthz and /metrics are excluded (wall-clock fields).
var goldenCases = []struct {
	file string
	tilt bool // tiltServer(3, 13) instead of testServer(2, 3)
	path string
}{
	{"flat_summary", false, "/v1/summary"},
	{"flat_exceptions_default", false, "/v1/exceptions"},
	{"flat_exceptions_k5", false, "/v1/exceptions?k=5"},
	{"flat_exceptions_k4_key", false, "/v1/exceptions?k=4&order=key"},
	{"flat_alerts", false, "/v1/alerts"},
	{"flat_supporters", false, "/v1/supporters?members=1,1"},
	{"flat_supporters_k2", false, "/v1/supporters?members=1,1&k=2"},
	{"flat_supporters_mid", false, "/v1/supporters?levels=1,2&members=0,1"},
	{"flat_slice", false, "/v1/slice?dim=0&level=1&member=1"},
	{"flat_slice_k2", false, "/v1/slice?dim=1&level=2&member=3&k=2"},
	{"flat_trend_k3", false, "/v1/trend?members=0,0&k=3"},
	{"flat_frame", false, "/v1/frame?members=0,0"},
	{"flat_forecast", false, "/v1/forecast?members=0,0&horizon=8&threshold=500"},
	{"flat_changes", false, "/v1/changes"},
	{"tilt_summary", true, "/v1/summary"},
	{"tilt_trend_hour", true, "/v1/trend?members=1,1&k=2&level=1"},
	{"tilt_trend_day", true, "/v1/trend?members=1,1&k=1&level=2"},
	{"tilt_frame", true, "/v1/frame?members=1,0"},
	{"tilt_forecast", true, "/v1/forecast?members=1,1&k=3&horizon=12&threshold=2000"},
	{"tilt_changes", true, "/v1/changes?k=2"},
}

// TestGoldenEndpoints locks the serving surface: every existing GET
// endpoint must return byte-identical JSON to the recorded pre-redesign
// fixtures for the same parameters. Regenerate deliberately with
// `go test ./internal/serve -run Golden -update` when a wire change is
// intended.
func TestGoldenEndpoints(t *testing.T) {
	flat, _, _ := testServer(t, 2, 3)
	tilted, _, _ := tiltServer(t, 3, 13)
	for _, tc := range goldenCases {
		t.Run(tc.file, func(t *testing.T) {
			srv := flat
			if tc.tilt {
				srv = tilted
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", tc.path, rec.Code, rec.Body.String())
			}
			got := normalizeGolden(rec.Body.Bytes())
			file := filepath.Join("testdata", "golden", tc.file+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(file, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(file)
			if err != nil {
				t.Fatalf("missing fixture (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("GET %s drifted from golden %s\n got: %s\nwant: %s",
					tc.path, file, got, want)
			}
		})
	}
}

// TestGoldenContentType pins the header contract alongside the bodies.
func TestGoldenContentType(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/summary", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
}
