package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/stream"
	"repro/internal/tilt"
)

// benchSchema matches the root ShardedIngest benchmark shape: 8×8 o-layer
// (64 partitions), 64×64 m-layer.
func benchSchema(b *testing.B) *cube.Schema {
	b.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		b.Fatal(err)
	}
	return schema
}

func benchCells() [][]int32 {
	cells := make([][]int32, 256)
	for i := range cells {
		cells[i] = []int32{int32(i % 64), int32((i*7 + i/64) % 64)}
	}
	return cells
}

func benchEngine(b *testing.B, shards, ticksPerUnit int) *stream.ShardedEngine {
	b.Helper()
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           benchSchema(b),
		TicksPerUnit:     ticksPerUnit,
		Threshold:        exception.Global(0.05),
		PublishSnapshots: true,
	}, shards)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return eng
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// BenchmarkServeQuery measures pure query cost per endpoint against a
// quiescent engine holding one published unit.
func BenchmarkServeQuery(b *testing.B) {
	eng := benchEngine(b, 4, 64)
	cells := benchCells()
	for tick := int64(0); tick <= 64; tick++ {
		for i, m := range cells {
			if _, err := eng.Ingest(m, tick, float64(tick)*float64(i%7+1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	srv := New(eng, eng.Snapshot().Result.Schema)
	for _, path := range []string{
		"/v1/exceptions?k=16",
		"/v1/alerts",
		"/v1/summary",
		"/v1/trend?members=0,0&k=1",
	} {
		b.Run(path, func(b *testing.B) {
			b.ReportAllocs()
			req := httptest.NewRequest("GET", path, nil)
			for n := 0; n < b.N; n++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkServeQueryUnderIngest is the acceptance benchmark: 4 shards
// ingest at full rate (units closing continuously) while the timed loop
// serves /v1/exceptions from snapshots. It reports p50/p99 query latency
// alongside the concurrent ingest rate.
func BenchmarkServeQueryUnderIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			eng := benchEngine(b, shards, 64)
			cells := benchCells()
			srv := New(eng, benchSchema(b))

			stop := make(chan struct{})
			ingested := new(atomic.Int64)
			ingestDone := make(chan struct{})
			go func() {
				defer close(ingestDone)
				n := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					tick := int64(n / len(cells))
					if _, err := eng.Ingest(cells[n%len(cells)], tick, float64(n%13)); err != nil {
						b.Error(err)
						return
					}
					n++
					ingested.Add(1)
				}
			}()
			// Wait for the first published unit (64 ticks × 256 cells).
			for eng.Snapshot() == nil {
				time.Sleep(time.Millisecond)
			}

			req := httptest.NewRequest("GET", "/v1/exceptions?k=16", nil)
			lat := make([]time.Duration, 0, b.N)
			start := time.Now()
			startRecords := ingested.Load()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				t0 := time.Now()
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				lat = append(lat, time.Since(t0))
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.StopTimer()
			elapsed := time.Since(start)
			records := ingested.Load() - startRecords
			close(stop)
			<-ingestDone

			b.ReportMetric(float64(percentile(lat, 0.50).Nanoseconds()), "p50-ns/query")
			b.ReportMetric(float64(percentile(lat, 0.99).Nanoseconds()), "p99-ns/query")
			if records > 0 {
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(records), "concurrent-ingest-ns/record")
			}
		})
	}
}

// BenchmarkForecastQuery measures the predictive read path per GET
// /v1/forecast: the Theorem 3.3 fold over the cell's trailing history
// plus the forward evaluation and JSON encoding. Forecasting is
// query-time only by construction — no per-record state is maintained
// for it, so its ingest cost is zero; BenchmarkSnapshotPublish (run
// alongside in BENCH_PR10.json) is the unchanged ingest-side price.
func BenchmarkForecastQuery(b *testing.B) {
	eng := benchEngine(b, 4, 8)
	cells := benchCells()
	// 16 closed units of linear ramp: a 16-point history to fold per query.
	for tick := int64(0); tick <= 16*8; tick++ {
		for i, m := range cells {
			if _, err := eng.Ingest(m, tick, float64(tick)*float64(i%7+1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	srv := New(eng, eng.Snapshot().Result.Schema)
	for _, path := range []string{
		"/v1/forecast?members=0,0&horizon=64",
		"/v1/forecast?members=0,0&horizon=64&threshold=1e9",
		"/v1/forecast?members=0,0&k=4&horizon=64&threshold=1e9",
	} {
		b.Run(path, func(b *testing.B) {
			b.ReportAllocs()
			req := httptest.NewRequest("GET", path, nil)
			for n := 0; n < b.N; n++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkChangeScan measures GET /v1/changes against a tilted engine:
// one adjacent-level slope comparison per retained cell per level pair,
// ranked and truncated. Like the forecast, the scan reads the published
// snapshot — ingest never pays for it.
func BenchmarkChangeScan(b *testing.B) {
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           benchSchema(b),
		TicksPerUnit:     8,
		Threshold:        exception.Global(0.05),
		PublishSnapshots: true,
		TiltLevels: []tilt.Level{
			{Name: "quarter", Multiple: 1, Slots: 4},
			{Name: "hour", Multiple: 4, Slots: 6},
			{Name: "day", Multiple: 2, Slots: 3},
		},
	}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	cells := benchCells()
	// 32 closed units fill every tilt level; the alternating value keeps
	// recent and long slopes apart so the scan scores real divergences.
	for tick := int64(0); tick <= 32*8; tick++ {
		for i, m := range cells {
			v := float64(tick) * float64(i%7+1)
			if (tick/64)%2 == 1 {
				v = -v
			}
			if _, err := eng.Ingest(m, tick, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	srv := New(eng, eng.Snapshot().Result.Schema)
	for _, path := range []string{
		"/v1/changes?k=16",
		"/v1/changes",
	} {
		b.Run(path, func(b *testing.B) {
			b.ReportAllocs()
			req := httptest.NewRequest("GET", path, nil)
			for n := 0; n < b.N; n++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkSnapshotPublish isolates the cost snapshot publication adds to
// a unit boundary (history copy + alert sort), the price of the lock-free
// read path.
func BenchmarkSnapshotPublish(b *testing.B) {
	cells := benchCells()
	for _, publish := range []bool{false, true} {
		b.Run(fmt.Sprintf("publish=%v", publish), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := stream.NewEngine(stream.Config{
				Schema:           benchSchema(b),
				TicksPerUnit:     8,
				Threshold:        exception.Global(0.05),
				PublishSnapshots: publish,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				tick := int64(n / len(cells))
				if _, err := eng.Ingest(cells[n%len(cells)], tick, float64(n%13)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
