package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/stream"
	"repro/internal/tilt"
)

// tiltServer is testServer with a tilt level chain: 3 engine units per
// "hour", 2 hours per "day".
func tiltServer(t testing.TB, shards, units int) (*Server, *stream.ShardedEngine, *cube.Schema) {
	t.Helper()
	schema := testSchema(t)
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
		TiltLevels: []tilt.Level{
			{Name: "quarter", Multiple: 1, Slots: 3},
			{Name: "hour", Multiple: 3, Slots: 4},
			{Name: "day", Multiple: 2, Slots: 2},
		},
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for tick := int64(0); tick < int64(4*units); tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				v := float64(tick) * float64(a+2*b+1)
				if _, err := eng.Ingest([]int32{a, b}, tick, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Ingest([]int32{0, 0}, int64(4*units), 0); err != nil {
		t.Fatal(err)
	}
	return New(eng, schema), eng, schema
}

// TestParamLowerBounds is the table-driven sweep of the centralized
// intParam minimum: every endpoint's integer parameters reject explicit
// below-minimum values with a 400 JSON error, uniformly.
func TestParamLowerBounds(t *testing.T) {
	srv, _, _ := testServer(t, 2, 3)
	cases := []struct {
		endpoint string
		path     string
	}{
		// ?k= limits: minimum 1 everywhere.
		{"exceptions", "/v1/exceptions?k=0"},
		{"exceptions", "/v1/exceptions?k=-1"},
		{"exceptions", "/v1/exceptions?k=-7&order=key"},
		{"supporters", "/v1/supporters?members=0,0&k=0"},
		{"supporters", "/v1/supporters?members=0,0&k=-2"},
		{"slice", "/v1/slice?dim=0&level=1&member=0&k=0"},
		{"slice", "/v1/slice?dim=0&level=1&member=0&k=-1"},
		{"trend", "/v1/trend?members=0,0&k=0"},
		{"trend", "/v1/trend?members=0,0&k=-3"},
		// Coordinates: minimum 0.
		{"slice", "/v1/slice?dim=-1&member=0"},
		{"slice", "/v1/slice?dim=0&level=-2&member=0"},
		{"slice", "/v1/slice?dim=0&level=1&member=-1"},
		{"trend", "/v1/trend?members=0,0&k=1&level=-1"},
		// Non-integers keep failing too.
		{"exceptions", "/v1/exceptions?k=ten"},
		{"slice", "/v1/slice?dim=x&member=0"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (%s)", tc.path, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("GET %s: non-JSON error body %s", tc.path, rec.Body.String())
		}
	}
}

// TestLimitsTruncateUniformly pins the happy-path semantics of the new
// ?k= limits on supporters and slice: count reports the full set, cells
// truncate.
func TestLimitsTruncateUniformly(t *testing.T) {
	srv, _, _ := testServer(t, 2, 3)
	var full, limited supportersResponse
	get(t, srv, "/v1/supporters?members=1,1", &full)
	get(t, srv, "/v1/supporters?members=1,1&k=1", &limited)
	if full.Count == 0 || full.Count != len(full.Supporters) {
		t.Fatalf("unlimited supporters = %+v", full)
	}
	if limited.Count != full.Count || len(limited.Supporters) != 1 {
		t.Fatalf("limited supporters kept %d of %d (count %d)",
			len(limited.Supporters), full.Count, limited.Count)
	}
	var fullSlice, limSlice cellsResponse
	get(t, srv, "/v1/slice?dim=0&level=1&member=1", &fullSlice)
	get(t, srv, "/v1/slice?dim=0&level=1&member=1&k=2", &limSlice)
	if fullSlice.Count < 2 || len(fullSlice.Cells) != fullSlice.Count {
		t.Fatalf("unlimited slice = %+v", fullSlice)
	}
	if limSlice.Count != fullSlice.Count || len(limSlice.Cells) != 2 {
		t.Fatalf("limited slice kept %d of %d", len(limSlice.Cells), limSlice.Count)
	}
}

// TestTrendLevels exercises /v1/trend?level= against a tilted engine:
// level 0 equals the default, coarser levels answer from promoted slots,
// and out-of-range levels are 400s.
func TestTrendLevels(t *testing.T) {
	// 13 units: hours complete at units 3,6,9,12 → 4 hours; days at 6,12.
	srv, _, _ := tiltServer(t, 3, 13)
	var def, l0, l1, l2 trendResponse
	get(t, srv, "/v1/trend?members=1,1&k=2", &def)
	get(t, srv, "/v1/trend?members=1,1&k=2&level=0", &l0)
	if def.Cell.ISB != l0.Cell.ISB || len(def.Points) != 2 || len(l0.Points) != 2 {
		t.Fatalf("level=0 differs from default: %+v vs %+v", def, l0)
	}
	get(t, srv, "/v1/trend?members=1,1&k=2&level=1", &l1)
	if l1.Level != "hour" || len(l1.Points) != 2 {
		t.Fatalf("hour trend = %+v", l1)
	}
	if n := l1.Cell.ISB.Te - l1.Cell.ISB.Tb + 1; n != 2*3*4 {
		t.Fatalf("2-hour trend spans %d ticks, want 24", n)
	}
	get(t, srv, "/v1/trend?members=1,1&k=1&level=2", &l2)
	if l2.Level != "day" {
		t.Fatalf("day trend = %+v", l2)
	}
	if n := l2.Cell.ISB.Te - l2.Cell.ISB.Tb + 1; n != 6*4 {
		t.Fatalf("day trend spans %d ticks, want 24", n)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trend?members=1,1&k=1&level=9", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range level: status %d", rec.Code)
	}
	// Asking for more units than a level retains is 404, like level 0.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trend?members=1,1&k=99&level=1", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("over-long hour trend: status %d", rec.Code)
	}
}

// TestTrendLevelOnFlatEngine asserts coarse levels 400 when the engine
// keeps flat history.
func TestTrendLevelOnFlatEngine(t *testing.T) {
	srv, _, _ := testServer(t, 2, 3)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trend?members=0,0&k=1&level=1", nil))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "flat history") {
		t.Fatalf("flat-engine level trend: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestFrameEndpointTilted walks the full per-level listing.
func TestFrameEndpointTilted(t *testing.T) {
	srv, eng, _ := tiltServer(t, 3, 13)
	var fr frameResponse
	get(t, srv, "/v1/frame?members=1,0", &fr)
	if !fr.Tilted {
		t.Fatalf("frame = %+v, want tilted", fr)
	}
	if len(fr.Levels) != 3 || fr.Levels[0].Name != "quarter" || fr.Levels[2].Name != "day" {
		t.Fatalf("levels = %+v", fr.Levels)
	}
	wantTicks := []int64{4, 12, 24}
	wantSlots := []int{3, 4, 2}
	total := 0
	for i, lv := range fr.Levels {
		if lv.UnitTicks != wantTicks[i] {
			t.Fatalf("level %d unitTicks %d, want %d", i, lv.UnitTicks, wantTicks[i])
		}
		if lv.Capacity != wantSlots[i] || len(lv.Slots) > lv.Capacity {
			t.Fatalf("level %d holds %d slots, cap %d (want cap %d)", i, len(lv.Slots), lv.Capacity, wantSlots[i])
		}
		total += len(lv.Slots)
	}
	if fr.SlotsInUse != total || total == 0 {
		t.Fatalf("slotsInUse %d, summed %d", fr.SlotsInUse, total)
	}
	// The response mirrors the engine's published snapshot exactly.
	snap := eng.Snapshot()
	if snap == nil || snap.Frames == nil {
		t.Fatal("engine published no frames")
	}
	// Unknown cells 404; bad coordinates 400.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/frame?members=9,9", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range members: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/frame?levels=2,2&members=3,3", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("non-o-cell frame: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestFrameEndpointFlat asserts the endpoint answers on flat engines as a
// single pseudo-level over the o-cell history.
func TestFrameEndpointFlat(t *testing.T) {
	srv, _, _ := testServer(t, 2, 5)
	var fr frameResponse
	get(t, srv, "/v1/frame?members=0,0", &fr)
	if fr.Tilted {
		t.Fatalf("flat frame = %+v, want tilted=false", fr)
	}
	if len(fr.Levels) != 1 || fr.Levels[0].Name != "unit" {
		t.Fatalf("flat levels = %+v", fr.Levels)
	}
	if got := len(fr.Levels[0].Slots); got != 5 || fr.SlotsInUse != 5 {
		t.Fatalf("flat frame retains %d slots (inUse %d), want 5", got, fr.SlotsInUse)
	}
	if fr.Levels[0].UnitTicks != 4 {
		t.Fatalf("flat unitTicks = %d, want 4", fr.Levels[0].UnitTicks)
	}
}

// TestFrameMetricsCounter asserts the new endpoint is instrumented.
func TestFrameMetricsCounter(t *testing.T) {
	srv, _, _ := tiltServer(t, 2, 7)
	get(t, srv, "/v1/frame?members=0,0", &frameResponse{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	want := fmt.Sprintf("regcube_http_requests_total{endpoint=%q} 1", "frame")
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("metrics missing %q:\n%s", want, rec.Body.String())
	}
}
