package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exception"
	"repro/internal/query"
	"repro/internal/stream"
)

// postBatch issues POST /v1/query with the given body and returns the
// recorder.
func postBatch(srv *Server, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rec, req)
	return rec
}

// TestBatchQuery runs a mixed batch — several valid kinds plus invalid
// and not-found sub-requests — and asserts per-result statuses, order,
// and unit consistency with the GET surface.
func TestBatchQuery(t *testing.T) {
	srv, _, _ := testServer(t, 4, 3)
	body, err := json.Marshal(query.BatchRequest{Queries: query.Wrap(
		query.SummaryRequest{},
		query.ExceptionsRequest{K: 3},
		query.AlertsRequest{},
		query.SupportersRequest{CellRef: query.OCell(1, 1)},
		query.SliceRequest{Dim: 0, Level: 1, Member: 0},
		query.TrendRequest{CellRef: query.OCell(0, 0), K: 3},
		query.FrameRequest{CellRef: query.OCell(0, 0)},
		query.SupportersRequest{CellRef: query.OCell(9, 9)},   // 400
		query.TrendRequest{CellRef: query.OCell(0, 0), K: 99}, // 404
	)})
	if err != nil {
		t.Fatal(err)
	}
	rec := postBatch(srv, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/query: status %d: %s", rec.Code, rec.Body.String())
	}
	var batch query.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatalf("bad batch JSON: %v", err)
	}
	if len(batch.Results) != 9 {
		t.Fatalf("batch returned %d results, want 9", len(batch.Results))
	}
	for i := 0; i < 7; i++ {
		if !batch.Results[i].OK {
			t.Fatalf("result %d failed: %s", i, batch.Results[i].Error)
		}
	}
	if st := batch.Results[7].Status; st != http.StatusBadRequest {
		t.Fatalf("invalid sub-request status %d, want 400", st)
	}
	if st := batch.Results[8].Status; st != http.StatusNotFound {
		t.Fatalf("not-found sub-request status %d, want 404", st)
	}

	// Batch results must equal the GET endpoints' bodies for the same
	// queries: both run the same dispatcher against the same snapshot.
	var viaGET cellsResponse
	get(t, srv, "/v1/exceptions?k=3", &viaGET)
	exc, err := batch.Results[1].Decode(query.KindExceptions)
	if err != nil {
		t.Fatal(err)
	}
	viaBatch := exc.(*query.CellsResponse)
	if batch.Unit != viaGET.Unit || len(viaBatch.Cells) != len(viaGET.Cells) {
		t.Fatalf("batch unit %d/%d cells vs GET unit %d/%d cells",
			batch.Unit, len(viaBatch.Cells), viaGET.Unit, len(viaGET.Cells))
	}
	for i := range viaBatch.Cells {
		if !reflect.DeepEqual(viaBatch.Cells[i], viaGET.Cells[i]) {
			t.Fatalf("cell %d differs: %+v vs %+v", i, viaBatch.Cells[i], viaGET.Cells[i])
		}
	}
}

// TestBatchQueryErrors pins the whole-batch failure modes: bad bodies,
// unknown kinds, empty and oversized batches, wrong method, no snapshot.
func TestBatchQueryErrors(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)

	for body, want := range map[string]int{
		`not json`:                         http.StatusBadRequest,
		`{"queries":[]}`:                   http.StatusBadRequest,
		`{}`:                               http.StatusBadRequest,
		`{"queries":[{"kind":"nope"}]}`:    http.StatusBadRequest,
		`{"queries":[{"k":1}]}`:            http.StatusBadRequest, // missing kind
		`{"queries":[{"kind":"summary"}]}`: http.StatusOK,
	} {
		rec := postBatch(srv, body)
		if rec.Code != want {
			t.Errorf("POST %s: status %d, want %d (%s)", body, rec.Code, want, rec.Body.String())
		}
		if want != http.StatusOK && !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("POST %s: non-JSON error body %s", body, rec.Body.String())
		}
	}

	// A batch above the sub-request limit is rejected as a whole.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"kind":"summary"}`)
	}
	sb.WriteString(`]}`)
	if rec := postBatch(srv, sb.String()); rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "exceeds limit") {
		t.Errorf("oversized batch: status %d body %s", rec.Code, rec.Body.String())
	}

	// A body above the byte limit is 413.
	huge := `{"queries":[{"kind":"summary","pad":"` + strings.Repeat("x", maxQueryBodyBytes) + `"}]}`
	if rec := postBatch(srv, huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}

	// Before the first snapshot the whole batch is 503, like the GETs.
	schema := testSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5), PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := New(eng, schema)
	if rec := postBatch(cold, `{"queries":[{"kind":"summary"}]}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("cold batch: status %d, want 503", rec.Code)
	}
}

// TestMethodNotAllowed sweeps every route with mismatched methods: each
// answers 405 and names the allowed method in the Allow header, so
// clients can self-correct.
func TestMethodNotAllowed(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	getOnly := []string{
		"/healthz", "/metrics", "/v1/summary", "/v1/exceptions", "/v1/alerts",
		"/v1/supporters", "/v1/slice", "/v1/trend", "/v1/frame",
	}
	for _, path := range getOnly {
		for _, method := range []string{"POST", "PUT", "DELETE", "PATCH"} {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, rec.Code)
				continue
			}
			if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
				t.Errorf("%s %s: Allow=%q, want GET listed", method, path, allow)
			}
		}
	}
	for _, method := range []string{"GET", "PUT", "DELETE"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(method, "/v1/query", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /v1/query: status %d, want 405", method, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "POST") {
			t.Errorf("%s /v1/query: Allow=%q, want POST listed", method, allow)
		}
	}
}

// brokenWriter fails every body write, simulating a client that vanished
// mid-response.
type brokenWriter struct {
	header http.Header
	status int
}

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *brokenWriter) WriteHeader(status int)    { w.status = status }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("connection reset") }

// TestEncodeErrorsCounted asserts a response body that fails mid-write
// lands in both the endpoint error counter and the dedicated encode
// gauge — previously writeJSON dropped these errors silently.
func TestEncodeErrorsCounted(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	srv.ServeHTTP(&brokenWriter{}, httptest.NewRequest("GET", "/v1/summary", nil))
	rec := get(t, srv, "/metrics", nil)
	body := rec.Body.String()
	if !strings.Contains(body, "regcube_http_encode_errors_total 1") {
		t.Fatalf("metrics missing encode error gauge:\n%s", body)
	}
	want := fmt.Sprintf("regcube_http_errors_total{endpoint=%q} 1", "summary")
	if !strings.Contains(body, want) {
		t.Fatalf("metrics missing %s:\n%s", want, body)
	}
}

// TestBatchMetricsCounter asserts the batch endpoint is instrumented
// alongside the GET shims.
func TestBatchMetricsCounter(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	if rec := postBatch(srv, `{"queries":[{"kind":"summary"},{"kind":"alerts"}]}`); rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d", rec.Code)
	}
	rec := get(t, srv, "/metrics", nil)
	want := fmt.Sprintf("regcube_http_requests_total{endpoint=%q} 1", "query")
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("metrics missing %s:\n%s", want, rec.Body.String())
	}
}
