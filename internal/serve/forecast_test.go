package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestForecastEndpoint walks the happy path of GET /v1/forecast against
// the rising flat fixture: the fit is near-perfect and a reachable
// threshold yields a positive time-to-threshold.
func TestForecastEndpoint(t *testing.T) {
	srv, _, _ := testServer(t, 2, 5)
	var f forecastResponse
	get(t, srv, "/v1/forecast?members=0,0&horizon=8&threshold=200", &f)
	if f.K != 5 || f.History != 5 {
		t.Fatalf("forecast window = %d/%d, want 5/5", f.K, f.History)
	}
	if f.R2 < 0.999 {
		t.Fatalf("linear fixture R2 = %g, want ~1", f.R2)
	}
	if f.Threshold == nil || *f.Threshold != 200 {
		t.Fatalf("threshold echoed as %v", f.Threshold)
	}
	if f.TicksToThreshold == nil || *f.TicksToThreshold <= 0 {
		t.Fatalf("ticksToThreshold = %v, want positive", f.TicksToThreshold)
	}

	// Without a threshold the forecast still answers; the breach fields
	// stay empty.
	var open forecastResponse
	get(t, srv, "/v1/forecast?members=0,0&horizon=8", &open)
	if open.Threshold != nil || open.TicksToThreshold != nil || open.WillBreach {
		t.Fatalf("open forecast carries breach fields: %+v", open)
	}
	if open.Predicted != f.Predicted {
		t.Fatalf("threshold changed the prediction: %g vs %g", open.Predicted, f.Predicted)
	}
}

// TestForecastDefaults: SetForecastDefaults supplies the GET fallbacks,
// and without them ?horizon= is mandatory.
func TestForecastDefaults(t *testing.T) {
	srv, _, _ := testServer(t, 2, 5)
	// No defaults configured: an absent horizon falls back to 0, which
	// request validation rejects.
	rec := get(t, srv, "/v1/forecast?members=0,0", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("forecast without horizon: status %d, want 400", rec.Code)
	}

	th := 200.0
	srv.SetForecastDefaults(ForecastDefaults{Horizon: 8, Threshold: &th, ChangeScore: 0.25})
	var f, explicit forecastResponse
	get(t, srv, "/v1/forecast?members=0,0", &f)
	if f.Horizon != 8 || f.Threshold == nil || *f.Threshold != 200 {
		t.Fatalf("defaulted forecast = %+v, want horizon 8 threshold 200", f)
	}
	// Explicit parameters override the defaults.
	get(t, srv, "/v1/forecast?members=0,0&horizon=3&threshold=999", &explicit)
	if explicit.Horizon != 3 || explicit.Threshold == nil || *explicit.Threshold != 999 {
		t.Fatalf("explicit forecast = %+v", explicit)
	}

	var c changesResponse
	get(t, srv, "/v1/changes", &c)
	if c.MinScore != 0.25 {
		t.Fatalf("defaulted changes minScore = %g, want 0.25", c.MinScore)
	}
}

// TestChangesEndpoint: tilted engines rank diverging cells, flat engines
// answer a structurally empty scan.
func TestChangesEndpoint(t *testing.T) {
	srv, _, _ := tiltServer(t, 3, 13)
	var all, top changesResponse
	get(t, srv, "/v1/changes", &all)
	if !all.Tilted || all.Count != 4 || len(all.Cells) != 4 {
		t.Fatalf("tilted changes = %+v, want 4 scored cells", all)
	}
	for i := 1; i < len(all.Cells); i++ {
		if all.Cells[i].Score > all.Cells[i-1].Score {
			t.Fatalf("cells not score-descending at %d", i)
		}
	}
	get(t, srv, "/v1/changes?k=2", &top)
	if top.Count != 4 || len(top.Cells) != 2 {
		t.Fatalf("k=2 changes kept %d of count %d", len(top.Cells), top.Count)
	}

	flat, _, _ := testServer(t, 2, 3)
	var none changesResponse
	get(t, flat, "/v1/changes", &none)
	if none.Tilted || none.Count != 0 || len(none.Cells) != 0 {
		t.Fatalf("flat changes = %+v, want empty scan", none)
	}
}

// TestForecastValidationHTTP is the table of 400s the new endpoints must
// produce before any snapshot work: limit and horizon minimums, malformed
// floats, out-of-range scores, and unknown cells.
func TestForecastValidationHTTP(t *testing.T) {
	srv, _, _ := testServer(t, 2, 3)
	for _, path := range []string{
		"/v1/forecast?members=0,0",            // horizon mandatory without defaults
		"/v1/forecast?members=0,0&horizon=0",  // explicit below minimum 1
		"/v1/forecast?members=0,0&horizon=-5", // negative
		"/v1/forecast?members=0,0&horizon=x",  // non-integer
		"/v1/forecast?members=0,0&horizon=5&k=0",
		"/v1/forecast?members=0,0&horizon=5&k=-1",
		"/v1/forecast?members=0,0&horizon=5&threshold=abc",
		"/v1/forecast?horizon=5",             // members missing
		"/v1/forecast?members=9,9&horizon=5", // unknown cell (ErrCell)
		"/v1/forecast?members=0&horizon=5",   // wrong arity
		"/v1/changes?k=0",
		"/v1/changes?k=-2",
		"/v1/changes?score=1.5",
		"/v1/changes?score=-0.1",
		"/v1/changes?score=lots",
	} {
		rec := get(t, srv, path, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (%s)", path, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("GET %s: non-JSON error body %s", path, rec.Body.String())
		}
	}
	// A known cell with no recorded history yet: 404, not 400.
	rec := get(t, srv, "/v1/forecast?members=0,0&horizon=5&k=99", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("over-long window: status %d, want 404", rec.Code)
	}
}

// TestForecastMethodNotAllowed pins the 405+Allow contract of the new
// routes.
func TestForecastMethodNotAllowed(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	for _, path := range []string{"/v1/forecast", "/v1/changes"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

// TestForecastDeterministicAcrossShards is the serving-layer half of the
// determinism property: the exact response bytes of /v1/forecast and
// /v1/changes must not depend on the shard count, flat and tilted alike.
func TestForecastDeterministicAcrossShards(t *testing.T) {
	paths := []string{
		"/v1/forecast?members=0,0&horizon=8&threshold=300",
		"/v1/forecast?members=1,1&k=3&horizon=20",
		"/v1/changes",
		"/v1/changes?k=2&score=0.01",
	}
	for _, tilted := range []bool{false, true} {
		var want map[string]string
		for _, shards := range []int{1, 4, 7} {
			var srv *Server
			if tilted {
				srv, _, _ = tiltServer(t, shards, 13)
			} else {
				srv, _, _ = testServer(t, shards, 5)
			}
			got := map[string]string{}
			for _, p := range paths {
				rec := get(t, srv, p, nil)
				if rec.Code != http.StatusOK {
					t.Fatalf("tilted=%v shards=%d GET %s: status %d: %s", tilted, shards, p, rec.Code, rec.Body.String())
				}
				got[p] = rec.Body.String()
			}
			if want == nil {
				want = got
				continue
			}
			for _, p := range paths {
				if got[p] != want[p] {
					t.Errorf("tilted=%v GET %s differs at %d shards:\n got: %s\nwant: %s",
						tilted, p, shards, got[p], want[p])
				}
			}
		}
	}
}

// TestForecastMetricsCounters asserts the new endpoints are instrumented
// under their own names.
func TestForecastMetricsCounters(t *testing.T) {
	srv, _, _ := tiltServer(t, 2, 7)
	get(t, srv, "/v1/forecast?members=0,0&horizon=8", &forecastResponse{})
	get(t, srv, "/v1/changes", &changesResponse{})
	rec := get(t, srv, "/metrics", nil)
	body := rec.Body.String()
	for _, want := range []string{
		`regcube_http_requests_total{endpoint="forecast"} 1`,
		`regcube_http_requests_total{endpoint="changes"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
