package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/alert"
	"repro/internal/exception"
	"repro/internal/query"
	"repro/internal/stream"
)

// alertServer builds a sharded engine with the alert lifecycle subscribed
// to its snapshot bus, ingests `units` full units of rising values (every
// cell escalates), drains the subscription into the manager, and returns
// a Server with both alert surfaces attached.
func alertServer(t *testing.T, units int) (*Server, *alert.Manager) {
	t.Helper()
	schema := testSchema(t)
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	sub := eng.Subscribe(4 * units)
	t.Cleanup(sub.Close)
	mgr, err := alert.New(alert.Config{Schema: schema, Warn: 0.5, Crit: 4, HoldUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	for tick := int64(0); tick <= int64(4*units); tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				v := float64(tick) * float64(a+2*b+1)
				if _, err := eng.Ingest([]int32{a, b}, tick, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for {
		select {
		case s := <-sub.C():
			mgr.Observe(s)
			continue
		default:
		}
		break
	}
	srv := New(eng, schema)
	srv.SetAlerts(mgr)
	srv.SetBusDropped(eng.BusDropped)
	return srv, mgr
}

func TestAlertEventsEndpoint(t *testing.T) {
	srv, mgr := alertServer(t, 3)
	var resp query.AlertEventsResponse
	get(t, srv, "/v1/alerts/events", &resp)
	if resp.Count == 0 || resp.Count != len(resp.Events) {
		t.Fatalf("count = %d with %d events, want a consistent non-empty list", resp.Count, len(resp.Events))
	}
	if want := len(mgr.Events(0)); resp.Count != want {
		t.Fatalf("endpoint returned %d events, manager ring holds %d", resp.Count, want)
	}
	prev := int64(0)
	for _, e := range resp.Events {
		if e.Seq <= prev {
			t.Fatalf("event seqs not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
		if e.Topic != alert.TopicOLayer && e.Topic != alert.TopicDrill {
			t.Fatalf("event %d has unknown topic %q", e.Seq, e.Topic)
		}
		if e.To == e.From {
			t.Fatalf("event %d is not a transition: %s -> %s", e.Seq, e.From, e.To)
		}
		if e.Cell == "" || e.Cuboid == "" || len(e.Levels) == 0 || len(e.Members) == 0 {
			t.Fatalf("event %d missing cell identity: %+v", e.Seq, e)
		}
	}

	// ?k= caps the list at the newest k events.
	var capped query.AlertEventsResponse
	get(t, srv, "/v1/alerts/events?k=1", &capped)
	if capped.Count != 1 || capped.Events[0].Seq != prev {
		t.Fatalf("k=1 returned %d events ending at seq %d, want just seq %d",
			capped.Count, capped.Events[0].Seq, prev)
	}
}

func TestAlertEventsNotConfigured(t *testing.T) {
	srv, _, _ := testServer(t, 2, 2)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/alerts/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unconfigured node answered %d, want 404", rec.Code)
	}
}

func TestMetricsIncludeAlertFamilies(t *testing.T) {
	srv, _ := alertServer(t, 3)
	rec := get(t, srv, "/metrics", nil)
	body := rec.Body.String()
	for _, want := range []string{
		"regcube_snapshot_bus_dropped_total ",
		`regcube_alert_events_total{level="ok",topic="olayer"} `,
		`regcube_alert_events_total{level="warn",topic="drill"} `,
		`regcube_alert_events_total{level="crit",topic="olayer"} `,
		"regcube_alert_handler_retries_total 0",
		"regcube_alert_handler_drops_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// The escalations the rising feed produced must be counted somewhere
	// in the events family.
	if strings.Count(body, "regcube_alert_events_total") != len(alert.Levels)*len(alert.Topics) {
		t.Fatalf("events family must render every level x topic cell:\n%s", body)
	}
}

func TestMetricsOmitAlertFamiliesWhenUnconfigured(t *testing.T) {
	srv, _, _ := testServer(t, 2, 2)
	rec := get(t, srv, "/metrics", nil)
	if strings.Contains(rec.Body.String(), "regcube_alert_") {
		t.Fatalf("unconfigured node rendered alert metrics:\n%s", rec.Body.String())
	}
}
