// Package serve exposes the online analyzer (§4.5) as a concurrent
// HTTP/JSON query API, so analysts can navigate regression cubes — ranked
// exceptions, drill-down supporters, slices, multi-unit trends — while the
// engine keeps ingesting at full rate.
//
// The server never touches engine internals: every request is answered
// from the immutable stream.Snapshot the engine publishes at each unit
// boundary (see DESIGN.md §7). Reading a snapshot is one atomic load, so
// query traffic adds zero contention to the ingest hot path, and every
// response is unit-consistent — all fields of one reply describe the same
// closed unit, even while newer units are being merged concurrently.
//
// Since the v2 query API (DESIGN.md §9) the server is a thin transport
// binding: each GET endpoint decodes its URL parameters into a typed
// query.Request, and a single query.Executor — cached per snapshot —
// validates and runs it. POST /v1/query accepts a JSON batch of the same
// typed requests and answers them all from one snapshot in one round
// trip; repro/client is the Go binding over it.
//
// Endpoints:
//
//	GET  /healthz               liveness + serving state
//	GET  /metrics               Prometheus-style counters
//	GET  /v1/summary            unit header, cube stats, per-cuboid exception counts
//	GET  /v1/exceptions         ranked exception cells (?k=, ?order=slope|key)
//	GET  /v1/alerts             the unit's o-layer alerts with drill-down
//	GET  /v1/alerts/events      recent alert lifecycle events (?k=)
//	GET  /v1/supporters         exception descendants of one cell (?levels=&members=&k=)
//	GET  /v1/slice              exceptions under one member (?dim=&level=&member=&k=)
//	GET  /v1/trend              k-unit trend regression of an o-cell (?members=&k=&level=)
//	GET  /v1/frame              per-level slot listing of an o-cell's tilted history (?members=)
//	GET  /v1/forecast           time-to-threshold forecast of an o-cell (?members=&k=&horizon=&threshold=)
//	GET  /v1/changes            tilt-level trend-change scan (?k=&score=)
//	POST /v1/query              batch of typed requests, one unit-consistent reply
//
// The GET endpoints are a compatibility surface: their JSON bodies are
// byte-identical to the pre-v2 handlers' (pinned by golden tests) and any
// method other than the registered one is rejected with 405 plus an Allow
// header. Integer parameters share one validation rule: explicit values
// below an endpoint's minimum (1 for ?k= limits, 0 for coordinates) are
// rejected with 400 before any snapshot is consulted.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Source supplies published engine snapshots. *stream.Engine and
// *stream.ShardedEngine (with Config.PublishSnapshots set) both implement
// it; Snapshot must be safe for concurrent use.
type Source interface {
	Snapshot() *stream.Snapshot
}

// maxQueryBodyBytes bounds a POST /v1/query body; larger requests are
// rejected with 413 before any decoding work.
const maxQueryBodyBytes = 1 << 20

// maxBatchQueries bounds the sub-requests of one batch.
const maxBatchQueries = 128

// endpoint indexes the per-endpoint request counters.
type endpoint int

const (
	epHealthz endpoint = iota
	epMetrics
	epSummary
	epExceptions
	epAlerts
	epSupporters
	epSlice
	epTrend
	epFrame
	epQuery
	epInfo
	epSnapshot
	epAlertEvents
	epForecast
	epChanges
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"healthz", "metrics", "summary", "exceptions", "alerts", "supporters", "slice", "trend", "frame", "query",
	"info", "snapshot", "alertevents", "forecast", "changes",
}

// endpointStats are lock-free per-endpoint counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64
}

// Server answers analyst queries from published engine snapshots. It is an
// http.Handler; all state it keeps (executor cache, metrics) is lock-free,
// so any number of requests proceed concurrently with each other and with
// ingestion.
type Server struct {
	src    Source
	schema *cube.Schema
	mux    *http.ServeMux
	start  time.Time
	// exec caches the query.Executor built over the latest snapshot, so
	// repeated requests against one unit reuse the lattice and the
	// exception sorts. Publication of a new snapshot simply misses the
	// cache; rebuilding is idempotent, so two racing requests at a
	// boundary at worst both build it.
	exec  atomic.Pointer[query.Executor]
	stats [numEndpoints]endpointStats
	// encodeErrors counts response bodies that failed mid-write (client
	// gone, connection reset); they also land in the per-endpoint error
	// counters.
	encodeErrors atomic.Int64
	// ingest, when set, is the daemon's ingest-edge counters (records,
	// frames, decode errors per format and source), rendered on /metrics.
	ingest *wire.IngestStats
	// info, when set, builds the /v1/info document. It runs per request on
	// a query goroutine, so it must be safe for concurrent use and must
	// not call engine methods (read atomics and snapshots instead).
	info func() query.InfoResponse
	// alerts, when set, backs GET /v1/alerts/events and the alert counter
	// families on /metrics. The manager's readers are concurrency-safe.
	alerts *alert.Manager
	// busDropped, when set, reports the snapshot bus's shed counter on
	// /metrics (an atomic load on the engine — safe from query goroutines).
	busDropped func() int64
	// fdef holds the node-configured fallbacks for the forecast GET shims.
	fdef ForecastDefaults
}

// ForecastDefaults are the node-configured fallbacks for the predictive
// GET shims: an absent ?horizon= on /v1/forecast falls back to Horizon,
// an absent ?threshold= to Threshold (nil means no threshold), and an
// absent ?score= on /v1/changes to ChangeScore. POST /v1/query batches
// carry explicit fields and never consult them.
type ForecastDefaults struct {
	Horizon     int64
	Threshold   *float64
	ChangeScore float64
}

// SetIngestStats attaches the ingest-edge counters rendered on /metrics.
// Call before serving; the stats object itself is concurrency-safe.
func (s *Server) SetIngestStats(st *wire.IngestStats) { s.ingest = st }

// SetInfo attaches the /v1/info document builder. Call before serving;
// without it the endpoint answers a minimal document derived from the
// snapshot alone.
func (s *Server) SetInfo(fn func() query.InfoResponse) { s.info = fn }

// SetAlerts attaches the alert lifecycle manager behind
// GET /v1/alerts/events and the regcube_alert_* metric families. Call
// before serving; without it the endpoint answers 404 (alerting is not
// configured on this node).
func (s *Server) SetAlerts(m *alert.Manager) { s.alerts = m }

// SetForecastDefaults attaches the predictive GET-shim fallbacks. Call
// before serving; with the zero value ?horizon= stays mandatory on
// /v1/forecast (request validation rejects the 0 fallback) and
// /v1/changes defaults to scoring every cell.
func (s *Server) SetForecastDefaults(d ForecastDefaults) { s.fdef = d }

// SetBusDropped attaches the snapshot-bus shed counter reported as
// regcube_snapshot_bus_dropped_total. Call before serving; the function
// must be safe for concurrent use (both engines' BusDropped is).
func (s *Server) SetBusDropped(fn func() int64) { s.busDropped = fn }

// New builds a query server over a snapshot source. Method-mismatched
// requests get 405 with an Allow header from the route patterns.
func New(src Source, schema *cube.Schema) *Server {
	s := &Server{src: src, schema: schema, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/summary", s.instrument(epSummary, s.handleSummary))
	s.mux.HandleFunc("GET /v1/exceptions", s.instrument(epExceptions, s.handleExceptions))
	s.mux.HandleFunc("GET /v1/alerts", s.instrument(epAlerts, s.handleAlerts))
	s.mux.HandleFunc("GET /v1/supporters", s.instrument(epSupporters, s.handleSupporters))
	s.mux.HandleFunc("GET /v1/slice", s.instrument(epSlice, s.handleSlice))
	s.mux.HandleFunc("GET /v1/trend", s.instrument(epTrend, s.handleTrend))
	s.mux.HandleFunc("GET /v1/frame", s.instrument(epFrame, s.handleFrame))
	s.mux.HandleFunc("GET /v1/forecast", s.instrument(epForecast, s.handleForecast))
	s.mux.HandleFunc("GET /v1/changes", s.instrument(epChanges, s.handleChanges))
	s.mux.HandleFunc("POST /v1/query", s.instrument(epQuery, s.handleQuery))
	s.mux.HandleFunc("GET /v1/info", s.instrument(epInfo, s.handleInfo))
	s.mux.HandleFunc("GET /v1/snapshot", s.instrument(epSnapshot, s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/alerts/events", s.instrument(epAlertEvents, s.handleAlertEvents))
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError carries an HTTP status with a transport-level error (parse
// failures, body limits); semantic errors come out of query.Execute as
// its sentinels.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errNoSnapshot is returned until the first unit boundary publishes.
var errNoSnapshot = &apiError{status: http.StatusServiceUnavailable, msg: "no completed unit yet"}

// errEncode marks a response that failed while already being written —
// counted, but nothing more can be sent on the connection.
var errEncode = errors.New("serve: encoding response")

// errorStatus maps a handler error to its HTTP status and wire message.
func errorStatus(err error) (int, string) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status, ae.msg
	}
	return query.HTTPStatus(err), query.ErrorMessage(err)
}

// instrument wraps a handler with per-endpoint counters and JSON error
// rendering.
func (s *Server) instrument(ep endpoint, fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		err := fn(w, r)
		st := &s.stats[ep]
		st.requests.Add(1)
		st.nanos.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			st.errors.Add(1)
			if errors.Is(err, errEncode) {
				// The status line and part of the body are already on the
				// wire; there is nothing valid left to send.
				return
			}
			status, msg := errorStatus(err)
			_ = s.writeJSON(w, status, map[string]string{"error": msg})
		}
	}
}

// writeJSON writes a JSON response, counting encode failures (they feed
// the per-endpoint error counters through instrument and the dedicated
// regcube_http_encode_errors_total gauge).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErrors.Add(1)
		return fmt.Errorf("%w: %v", errEncode, err)
	}
	return nil
}

// executor returns the typed-query dispatcher over the latest snapshot,
// building and caching it on first use per unit.
func (s *Server) executor() (*query.Executor, error) {
	snap := s.src.Snapshot()
	if snap == nil {
		return nil, errNoSnapshot
	}
	old := s.exec.Load()
	if old != nil && old.Snapshot() == snap {
		return old, nil
	}
	ex, err := query.NewExecutor(s.schema, snap)
	if err != nil {
		return nil, err
	}
	// CompareAndSwap instead of Store: a laggard request that built an
	// executor for an older snapshot must not evict a newer entry another
	// request installed meanwhile. On failure this request just serves
	// from its locally built state.
	s.exec.CompareAndSwap(old, ex)
	return ex, nil
}

// run is the shared shim tail: validate the typed request (so bad
// requests 400 even before a snapshot exists), execute it against the
// cached dispatcher, and write the typed response.
func (s *Server) run(w http.ResponseWriter, req query.Request) error {
	if err := req.Validate(s.schema); err != nil {
		return err
	}
	ex, err := s.executor()
	if err != nil {
		return err
	}
	resp, err := ex.Execute(req)
	if err != nil {
		return err
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// intParam parses an integer query parameter with a default. Explicitly
// supplied values below min are rejected with a uniform 400, so every
// endpoint shares one lower-bound rule instead of ad-hoc per-handler
// checks; the default is exempt (sentinels like -1 stay expressible) and
// is range-checked by query.Request validation where it matters.
func intParam(r *http.Request, name string, def, min int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %s: %v", name, err)
	}
	if v < min {
		return 0, badRequest("parameter %s: %d below minimum %d", name, v, min)
	}
	return v, nil
}

// floatParam parses a float query parameter with a default. Range rules
// (including NaN rejection) live in query.Request validation, so the
// shims and POST /v1/query agree on them; only unparseable text is
// rejected here.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %v", name, err)
	}
	return v, nil
}

// cellRefParam decodes ?levels=&members= into a cell reference. Levels
// stay nil when absent — query.CellRef defaults them to the o-layer — so
// plain o-cell queries only pass members.
func cellRefParam(r *http.Request) (query.CellRef, error) {
	q := r.URL.Query()
	var ref query.CellRef
	if raw := q.Get("levels"); raw != "" {
		levels, err := parseIntList(raw)
		if err != nil {
			return ref, badRequest("parameter levels: %v", err)
		}
		ref.Levels = levels
	}
	members, err := parseInt32List(q.Get("members"))
	if err != nil {
		return ref, badRequest("parameter members: %v", err)
	}
	ref.Members = members
	return ref, nil
}

// --- /healthz -------------------------------------------------------------

type healthResponse struct {
	Status        string  `json:"status"`
	Serving       bool    `json:"serving"`
	Unit          int64   `json:"unit"`
	UnitsDone     int64   `json:"unitsDone"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// handleHealthz always answers 200: the process is alive even before the
// first unit closes; Serving reports whether queries would succeed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	resp := healthResponse{Status: "ok", Unit: -1, UptimeSeconds: time.Since(s.start).Seconds()}
	if snap := s.src.Snapshot(); snap != nil {
		resp.Serving = true
		resp.Unit = snap.Unit
		resp.UnitsDone = snap.UnitsDone
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// --- /metrics -------------------------------------------------------------

// handleMetrics renders Prometheus-style text so standard scrapers can
// watch the serving layer without a client library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "regcube_uptime_seconds %g\n", time.Since(s.start).Seconds())
	snap := s.src.Snapshot()
	serving := 0
	if snap != nil {
		serving = 1
	}
	fmt.Fprintf(w, "regcube_serving %d\n", serving)
	if snap != nil {
		fmt.Fprintf(w, "regcube_snapshot_unit %d\n", snap.Unit)
		fmt.Fprintf(w, "regcube_snapshot_units_done %d\n", snap.UnitsDone)
		fmt.Fprintf(w, "regcube_snapshot_alerts %d\n", len(snap.Alerts))
		if snap.Result != nil {
			fmt.Fprintf(w, "regcube_snapshot_ocells %d\n", len(snap.Result.OLayer))
			fmt.Fprintf(w, "regcube_snapshot_exceptions %d\n", len(snap.Result.Exceptions))
		}
	}
	if s.ingest != nil {
		for _, f := range wire.Formats {
			for _, src := range wire.Sources {
				fmt.Fprintf(w, "regcube_ingest_records_total{format=%q,source=%q} %d\n", f, src, s.ingest.Records(f, src))
				fmt.Fprintf(w, "regcube_ingest_frames_total{format=%q,source=%q} %d\n", f, src, s.ingest.Frames(f, src))
				fmt.Fprintf(w, "regcube_ingest_decode_errors_total{format=%q,source=%q} %d\n", f, src, s.ingest.DecodeErrors(f, src))
			}
		}
	}
	if s.busDropped != nil {
		fmt.Fprintf(w, "regcube_snapshot_bus_dropped_total %d\n", s.busDropped())
	}
	if s.alerts != nil {
		st := s.alerts.Stats()
		for li, level := range alert.Levels {
			for ti, topic := range alert.Topics {
				fmt.Fprintf(w, "regcube_alert_events_total{level=%q,topic=%q} %d\n",
					level, topic, st.Events[li][ti])
			}
		}
		fmt.Fprintf(w, "regcube_alert_handler_retries_total %d\n", st.HandlerRetries)
		fmt.Fprintf(w, "regcube_alert_handler_drops_total %d\n", st.HandlerDrops)
	}
	fmt.Fprintf(w, "regcube_http_encode_errors_total %d\n", s.encodeErrors.Load())
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		st := &s.stats[ep]
		name := endpointNames[ep]
		fmt.Fprintf(w, "regcube_http_requests_total{endpoint=%q} %d\n", name, st.requests.Load())
		fmt.Fprintf(w, "regcube_http_errors_total{endpoint=%q} %d\n", name, st.errors.Load())
		fmt.Fprintf(w, "regcube_http_request_nanos_total{endpoint=%q} %d\n", name, st.nanos.Load())
	}
	return nil
}

// --- GET shims over the typed request model -------------------------------

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) error {
	return s.run(w, query.SummaryRequest{})
}

func (s *Server) handleExceptions(w http.ResponseWriter, r *http.Request) error {
	k, err := intParam(r, "k", 20, 1)
	if err != nil {
		return err
	}
	return s.run(w, query.ExceptionsRequest{K: k, Order: r.URL.Query().Get("order")})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) error {
	return s.run(w, query.AlertsRequest{})
}

func (s *Server) handleSupporters(w http.ResponseWriter, r *http.Request) error {
	ref, err := cellRefParam(r)
	if err != nil {
		return err
	}
	// 0 is the "no limit" default; explicit limits must be ≥ 1.
	k, err := intParam(r, "k", 0, 1)
	if err != nil {
		return err
	}
	return s.run(w, query.SupportersRequest{CellRef: ref, K: k})
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) error {
	dim, err := intParam(r, "dim", -1, 0)
	if err != nil {
		return err
	}
	// The level default is the sliced dimension's o-level; when dim is
	// itself invalid, request validation rejects it before level matters.
	levelDef := 0
	if dim >= 0 && dim < len(s.schema.Dims) {
		levelDef = s.schema.Dims[dim].OLevel
	}
	level, err := intParam(r, "level", levelDef, 0)
	if err != nil {
		return err
	}
	member, err := intParam(r, "member", -1, 0)
	if err != nil {
		return err
	}
	if member > math.MaxInt32 {
		return badRequest("parameter member: %d overflows int32", member)
	}
	// 0 is the "no limit" default; explicit limits must be ≥ 1.
	k, err := intParam(r, "k", 0, 1)
	if err != nil {
		return err
	}
	return s.run(w, query.SliceRequest{Dim: dim, Level: level, Member: int32(member), K: k})
}

func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) error {
	ref, err := cellRefParam(r)
	if err != nil {
		return err
	}
	k, err := intParam(r, "k", 1, 1)
	if err != nil {
		return err
	}
	level, err := intParam(r, "level", 0, 0)
	if err != nil {
		return err
	}
	return s.run(w, query.TrendRequest{CellRef: ref, K: k, Level: level})
}

func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) error {
	ref, err := cellRefParam(r)
	if err != nil {
		return err
	}
	return s.run(w, query.FrameRequest{CellRef: ref})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) error {
	ref, err := cellRefParam(r)
	if err != nil {
		return err
	}
	// 0 is the "all recorded units" default; explicit windows must be ≥ 1.
	k, err := intParam(r, "k", 0, 1)
	if err != nil {
		return err
	}
	horizon, err := intParam(r, "horizon", int(s.fdef.Horizon), 1)
	if err != nil {
		return err
	}
	threshold := s.fdef.Threshold
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return badRequest("parameter threshold: %v", err)
		}
		threshold = &v
	}
	return s.run(w, query.ForecastRequest{CellRef: ref, K: k, Horizon: int64(horizon), Threshold: threshold})
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) error {
	// 0 is the "no limit" default; explicit limits must be ≥ 1.
	k, err := intParam(r, "k", 0, 1)
	if err != nil {
		return err
	}
	score, err := floatParam(r, "score", s.fdef.ChangeScore)
	if err != nil {
		return err
	}
	return s.run(w, query.ChangesRequest{K: k, MinScore: score})
}

// --- POST /v1/query -------------------------------------------------------

// handleQuery answers a JSON batch of typed requests from one snapshot:
// every sub-result is unit-consistent with every other, and per-request
// errors land in the matching result slot without failing the batch. The
// body is size-limited; an over-long or undecodable batch (including an
// unknown request kind) fails as a whole.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBodyBytes)
	var batch query.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest("decoding batch: %v", err)
	}
	if len(batch.Queries) == 0 {
		return badRequest("batch has no queries")
	}
	if len(batch.Queries) > maxBatchQueries {
		return badRequest("batch of %d queries exceeds limit %d", len(batch.Queries), maxBatchQueries)
	}
	ex, err := s.executor()
	if err != nil {
		return err
	}
	return s.writeJSON(w, http.StatusOK, ex.ExecuteBatch(batch.Queries))
}

// --- GET /v1/info ---------------------------------------------------------

// handleInfo answers the typed identity document: node id, role, shard
// count, wire/API versions, WAL watermark, snapshot unit — the fields
// operators previously had to scrape from /healthz and /metrics. Like
// /healthz it always answers 200; a process with no snapshot yet reports
// SnapshotUnit -1.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) error {
	var resp query.InfoResponse
	if s.info != nil {
		resp = s.info()
	} else {
		resp = query.InfoResponse{Role: "node", WireVersion: wire.Version, APIVersion: query.APIVersion}
	}
	resp.SnapshotUnit = -1
	if snap := s.src.Snapshot(); snap != nil {
		resp.SnapshotUnit = snap.Unit
		resp.UnitsDone = snap.UnitsDone
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// --- GET /v1/alerts/events ------------------------------------------------

// handleAlertEvents lists recent lifecycle events (?k= caps the count,
// default 50, oldest first) from the alert manager's ring buffer. It is
// push-side state, not snapshot state: events survive their unit's
// snapshot being superseded, and the endpoint answers even before the
// first unit closes. Nodes without alerting configured answer 404.
func (s *Server) handleAlertEvents(w http.ResponseWriter, r *http.Request) error {
	if s.alerts == nil {
		return &apiError{status: http.StatusNotFound, msg: "alerting not configured"}
	}
	k, err := intParam(r, "k", 50, 1)
	if err != nil {
		return err
	}
	evs := s.alerts.Events(k)
	resp := query.AlertEventsResponse{Count: len(evs), Events: make([]alert.EventJSON, len(evs))}
	for i, e := range evs {
		resp.Events[i] = e.JSON(s.schema)
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// --- GET /v1/snapshot -----------------------------------------------------

// handleSnapshot ships the latest published snapshot whole, in the
// canonical binary codec (stream.EncodeSnapshot) — the cluster gather
// tier's bulk-transfer edge. Analysts never need it; the coordinator
// fetches it from every node at a common unit and merges.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	snap := s.src.Snapshot()
	if snap == nil {
		return errNoSnapshot
	}
	data, err := stream.EncodeSnapshot(snap)
	if err != nil {
		return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		s.encodeErrors.Add(1)
		return fmt.Errorf("%w: %v", errEncode, err)
	}
	return nil
}
