// Package serve exposes the online analyzer (§4.5) as a concurrent
// HTTP/JSON query API, so analysts can navigate regression cubes — ranked
// exceptions, drill-down supporters, slices, multi-unit trends — while the
// engine keeps ingesting at full rate.
//
// The server never touches engine internals: every request is answered
// from the immutable stream.Snapshot the engine publishes at each unit
// boundary (see DESIGN.md §7). Reading a snapshot is one atomic load, so
// query traffic adds zero contention to the ingest hot path, and every
// response is unit-consistent — all fields of one reply describe the same
// closed unit, even while newer units are being merged concurrently.
//
// Endpoints (all GET):
//
//	/healthz               liveness + serving state
//	/metrics               Prometheus-style counters
//	/v1/summary            unit header, cube stats, per-cuboid exception counts
//	/v1/exceptions         ranked exception cells (?k=, ?order=slope|key)
//	/v1/alerts             the unit's o-layer alerts with drill-down
//	/v1/supporters         exception descendants of one cell (?levels=&members=&k=)
//	/v1/slice              exceptions under one member (?dim=&level=&member=&k=)
//	/v1/trend              k-unit trend regression of an o-cell (?members=&k=&level=)
//	/v1/frame              per-level slot listing of an o-cell's tilted history (?members=)
//
// Integer parameters share one validation rule: explicit values below an
// endpoint's minimum (1 for ?k= limits, 0 for coordinates) are rejected
// with 400 before any snapshot is consulted.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/stream"
)

// Source supplies published engine snapshots. *stream.Engine and
// *stream.ShardedEngine (with Config.PublishSnapshots set) both implement
// it; Snapshot must be safe for concurrent use.
type Source interface {
	Snapshot() *stream.Snapshot
}

// endpoint indexes the per-endpoint request counters.
type endpoint int

const (
	epHealthz endpoint = iota
	epMetrics
	epSummary
	epExceptions
	epAlerts
	epSupporters
	epSlice
	epTrend
	epFrame
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"healthz", "metrics", "summary", "exceptions", "alerts", "supporters", "slice", "trend", "frame",
}

// endpointStats are lock-free per-endpoint counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64
}

// viewCache pairs a snapshot with the query.View built over its result
// and the two exception orderings /v1/exceptions serves, so repeated
// requests against one unit reuse the lattice and the sorts instead of
// re-ranking the full exception set per request. Publication of a new
// snapshot simply misses the cache; rebuilding is idempotent, so two
// racing requests at a boundary at worst both build it. The cached
// slices are immutable — handlers only slice prefixes off them.
type viewCache struct {
	snap    *stream.Snapshot
	view    *query.View
	bySlope []core.Cell         // every exception, steepest first
	byKey   []core.Cell         // every exception, canonical key order
	cuboids []cuboidSummaryJSON // /v1/summary's per-cuboid rollup
}

// Server answers analyst queries from published engine snapshots. It is an
// http.Handler; all state it keeps (view cache, metrics) is lock-free, so
// any number of requests proceed concurrently with each other and with
// ingestion.
type Server struct {
	src    Source
	schema *cube.Schema
	mux    *http.ServeMux
	start  time.Time
	view   atomic.Pointer[viewCache]
	stats  [numEndpoints]endpointStats
}

// New builds a query server over a snapshot source.
func New(src Source, schema *cube.Schema) *Server {
	s := &Server{src: src, schema: schema, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/summary", s.instrument(epSummary, s.handleSummary))
	s.mux.HandleFunc("GET /v1/exceptions", s.instrument(epExceptions, s.handleExceptions))
	s.mux.HandleFunc("GET /v1/alerts", s.instrument(epAlerts, s.handleAlerts))
	s.mux.HandleFunc("GET /v1/supporters", s.instrument(epSupporters, s.handleSupporters))
	s.mux.HandleFunc("GET /v1/slice", s.instrument(epSlice, s.handleSlice))
	s.mux.HandleFunc("GET /v1/trend", s.instrument(epTrend, s.handleTrend))
	s.mux.HandleFunc("GET /v1/frame", s.instrument(epFrame, s.handleFrame))
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError carries an HTTP status with a handler error.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// errNoSnapshot is returned until the first unit boundary publishes.
var errNoSnapshot = &apiError{status: http.StatusServiceUnavailable, msg: "no completed unit yet"}

// instrument wraps a handler with per-endpoint counters and JSON error
// rendering.
func (s *Server) instrument(ep endpoint, fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		err := fn(w, r)
		st := &s.stats[ep]
		st.requests.Add(1)
		st.nanos.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			st.errors.Add(1)
			status := http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				status = ae.status
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// current returns the latest snapshot and its cached navigation state.
// The cache entry is nil when the unit closed empty.
func (s *Server) current() (*stream.Snapshot, *viewCache, error) {
	snap := s.src.Snapshot()
	if snap == nil {
		return nil, nil, errNoSnapshot
	}
	if snap.Result == nil {
		return snap, nil, nil
	}
	old := s.view.Load()
	if old != nil && old.snap == snap {
		return snap, old, nil
	}
	v := query.NewView(snap.Result)
	c := &viewCache{
		snap:    snap,
		view:    v,
		bySlope: v.TopExceptions(-1),
		byKey:   snap.Result.ExceptionCells(),
	}
	for _, cs := range v.Summary() {
		levels := make([]int, cs.Cuboid.NumDims())
		for d := range levels {
			levels[d] = cs.Cuboid.Level(d)
		}
		c.cuboids = append(c.cuboids, cuboidSummaryJSON{
			Levels:      levels,
			Name:        cs.Cuboid.Describe(s.schema),
			Exceptions:  cs.Exceptions,
			MaxAbsSlope: cs.MaxAbsSlope,
		})
	}
	// CompareAndSwap instead of Store: a laggard request that built a
	// cache for an older snapshot must not evict a newer entry another
	// request installed meanwhile. On failure this request just serves
	// from its locally built state.
	s.view.CompareAndSwap(old, c)
	return snap, c, nil
}

// intParam parses an integer query parameter with a default. Explicitly
// supplied values below min are rejected with a uniform 400, so every
// endpoint shares one lower-bound rule instead of ad-hoc per-handler
// checks; the default is exempt (sentinels like -1 stay expressible) and
// is range-checked by the handler where it matters.
func intParam(r *http.Request, name string, def, min int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("parameter %s: %v", name, err)
	}
	if v < min {
		return 0, badRequest("parameter %s: %d below minimum %d", name, v, min)
	}
	return v, nil
}

// cellParam decodes ?levels=&members= into a validated cell key. Levels
// default to the o-layer, so plain o-cell queries only pass members.
func (s *Server) cellParam(r *http.Request) (cube.CellKey, error) {
	q := r.URL.Query()
	var levels []int
	if raw := q.Get("levels"); raw != "" {
		var err error
		if levels, err = parseIntList(raw); err != nil {
			return cube.CellKey{}, badRequest("parameter levels: %v", err)
		}
	} else {
		levels = make([]int, len(s.schema.Dims))
		for d, dim := range s.schema.Dims {
			levels[d] = dim.OLevel
		}
	}
	members, err := parseInt32List(q.Get("members"))
	if err != nil {
		return cube.CellKey{}, badRequest("parameter members: %v", err)
	}
	key, err := query.MakeCellKey(s.schema, levels, members)
	if err != nil {
		return cube.CellKey{}, badRequest("%v", err)
	}
	return key, nil
}

// --- /healthz -------------------------------------------------------------

type healthResponse struct {
	Status        string  `json:"status"`
	Serving       bool    `json:"serving"`
	Unit          int64   `json:"unit"`
	UnitsDone     int64   `json:"unitsDone"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// handleHealthz always answers 200: the process is alive even before the
// first unit closes; Serving reports whether queries would succeed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	resp := healthResponse{Status: "ok", Unit: -1, UptimeSeconds: time.Since(s.start).Seconds()}
	if snap := s.src.Snapshot(); snap != nil {
		resp.Serving = true
		resp.Unit = snap.Unit
		resp.UnitsDone = snap.UnitsDone
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /metrics -------------------------------------------------------------

// handleMetrics renders Prometheus-style text so standard scrapers can
// watch the serving layer without a client library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "regcube_uptime_seconds %g\n", time.Since(s.start).Seconds())
	snap := s.src.Snapshot()
	serving := 0
	if snap != nil {
		serving = 1
	}
	fmt.Fprintf(w, "regcube_serving %d\n", serving)
	if snap != nil {
		fmt.Fprintf(w, "regcube_snapshot_unit %d\n", snap.Unit)
		fmt.Fprintf(w, "regcube_snapshot_units_done %d\n", snap.UnitsDone)
		fmt.Fprintf(w, "regcube_snapshot_alerts %d\n", len(snap.Alerts))
		if snap.Result != nil {
			fmt.Fprintf(w, "regcube_snapshot_ocells %d\n", len(snap.Result.OLayer))
			fmt.Fprintf(w, "regcube_snapshot_exceptions %d\n", len(snap.Result.Exceptions))
		}
	}
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		st := &s.stats[ep]
		name := endpointNames[ep]
		fmt.Fprintf(w, "regcube_http_requests_total{endpoint=%q} %d\n", name, st.requests.Load())
		fmt.Fprintf(w, "regcube_http_errors_total{endpoint=%q} %d\n", name, st.errors.Load())
		fmt.Fprintf(w, "regcube_http_request_nanos_total{endpoint=%q} %d\n", name, st.nanos.Load())
	}
	return nil
}

// --- /v1/summary ----------------------------------------------------------

type statsJSON struct {
	Algorithm       string `json:"algorithm"`
	Tuples          int    `json:"tuples"`
	TreeNodes       int    `json:"treeNodes"`
	CuboidsComputed int    `json:"cuboidsComputed"`
	CellsComputed   int64  `json:"cellsComputed"`
	CellsRetained   int64  `json:"cellsRetained"`
	BytesRetained   int64  `json:"bytesRetained"`
	BuildNanos      int64  `json:"buildNanos"`
	CubeNanos       int64  `json:"cubeNanos"`
}

type cuboidSummaryJSON struct {
	Levels      []int   `json:"levels"`
	Name        string  `json:"name"`
	Exceptions  int     `json:"exceptions"`
	MaxAbsSlope float64 `json:"maxAbsSlope"`
}

type summaryResponse struct {
	Unit       int64               `json:"unit"`
	UnitsDone  int64               `json:"unitsDone"`
	Interval   IntervalJSON        `json:"interval"`
	Empty      bool                `json:"empty"`
	OCells     int                 `json:"oCells"`
	Exceptions int                 `json:"exceptions"`
	Alerts     int                 `json:"alerts"`
	Stats      *statsJSON          `json:"stats,omitempty"`
	Cuboids    []cuboidSummaryJSON `json:"cuboids"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) error {
	snap, c, err := s.current()
	if err != nil {
		return err
	}
	resp := summaryResponse{
		Unit:      snap.Unit,
		UnitsDone: snap.UnitsDone,
		Interval:  encodeInterval(snap.Interval),
		Empty:     snap.Result == nil,
		Alerts:    len(snap.Alerts),
		Cuboids:   []cuboidSummaryJSON{},
	}
	if c != nil {
		res := snap.Result
		resp.OCells = len(res.OLayer)
		resp.Exceptions = len(res.Exceptions)
		resp.Stats = &statsJSON{
			Algorithm:       res.Stats.Algorithm,
			Tuples:          res.Stats.Tuples,
			TreeNodes:       res.Stats.TreeNodes,
			CuboidsComputed: res.Stats.CuboidsComputed,
			CellsComputed:   res.Stats.CellsComputed,
			CellsRetained:   res.Stats.CellsRetained,
			BytesRetained:   res.Stats.BytesRetained,
			BuildNanos:      res.Stats.BuildTime.Nanoseconds(),
			CubeNanos:       res.Stats.CubeTime.Nanoseconds(),
		}
		resp.Cuboids = c.cuboids
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/exceptions -------------------------------------------------------

type cellsResponse struct {
	Unit     int64        `json:"unit"`
	Interval IntervalJSON `json:"interval"`
	// Count is the total number of matching cells before ?k= truncation.
	Count int        `json:"count"`
	Cells []CellJSON `json:"cells"`
}

func (s *Server) handleExceptions(w http.ResponseWriter, r *http.Request) error {
	k, err := intParam(r, "k", 20, 1)
	if err != nil {
		return err
	}
	order := r.URL.Query().Get("order")
	if order == "" {
		order = "slope"
	}
	if order != "slope" && order != "key" {
		// Validated before the snapshot is consulted so a bad request is
		// 400 regardless of whether the current unit is empty.
		return badRequest("parameter order: %q is not slope or key", order)
	}
	snap, c, err := s.current()
	if err != nil {
		return err
	}
	resp := cellsResponse{Unit: snap.Unit, Interval: encodeInterval(snap.Interval), Cells: []CellJSON{}}
	if c != nil {
		resp.Count = len(snap.Result.Exceptions)
		cells := c.bySlope
		if order == "key" {
			cells = c.byKey
		}
		if k < len(cells) {
			cells = cells[:k]
		}
		resp.Cells = encodeCells(s.schema, cells)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/alerts -----------------------------------------------------------

type alertsResponse struct {
	Unit     int64        `json:"unit"`
	Interval IntervalJSON `json:"interval"`
	Alerts   []AlertJSON  `json:"alerts"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) error {
	snap, _, err := s.current()
	if err != nil {
		return err
	}
	resp := alertsResponse{Unit: snap.Unit, Interval: encodeInterval(snap.Interval), Alerts: []AlertJSON{}}
	for _, a := range snap.Alerts {
		resp.Alerts = append(resp.Alerts, encodeAlert(s.schema, a))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/supporters -------------------------------------------------------

type supportersResponse struct {
	Unit int64 `json:"unit"`
	Cell struct {
		Levels  []int    `json:"levels"`
		Members []int32  `json:"members"`
		Name    string   `json:"name"`
		ISB     *ISBJSON `json:"isb,omitempty"`
	} `json:"cell"`
	Retained bool `json:"retained"`
	// Count is the total number of supporters before ?k= truncation.
	Count      int        `json:"count"`
	Supporters []CellJSON `json:"supporters"`
}

func (s *Server) handleSupporters(w http.ResponseWriter, r *http.Request) error {
	key, err := s.cellParam(r)
	if err != nil {
		return err
	}
	// -1 is the "no limit" default; explicit limits must be ≥ 1.
	k, err := intParam(r, "k", -1, 1)
	if err != nil {
		return err
	}
	snap, c, err := s.current()
	if err != nil {
		return err
	}
	resp := supportersResponse{Unit: snap.Unit, Supporters: []CellJSON{}}
	resp.Cell.Levels, resp.Cell.Members = encodeKey(key)
	resp.Cell.Name = key.Describe(s.schema)
	if c != nil {
		if isb, ok := snap.Result.OLayer[key]; ok {
			resp.Retained = true
			j := encodeISB(isb)
			resp.Cell.ISB = &j
		} else if isb, ok := snap.Result.Exceptions[key]; ok {
			resp.Retained = true
			j := encodeISB(isb)
			resp.Cell.ISB = &j
		}
		sup := c.view.Supporters(key)
		resp.Count = len(sup)
		if k >= 0 && k < len(sup) {
			sup = sup[:k]
		}
		resp.Supporters = encodeCells(s.schema, sup)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/slice ------------------------------------------------------------

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) error {
	dim, err := intParam(r, "dim", -1, 0)
	if err != nil {
		return err
	}
	if dim < 0 || dim >= len(s.schema.Dims) {
		return badRequest("parameter dim: %d outside [0,%d)", dim, len(s.schema.Dims))
	}
	d := s.schema.Dims[dim]
	level, err := intParam(r, "level", d.OLevel, 0)
	if err != nil {
		return err
	}
	if level < 0 || level > d.MLevel {
		return badRequest("parameter level: %d outside [0,%d]", level, d.MLevel)
	}
	member, err := intParam(r, "member", -1, 0)
	if err != nil {
		return err
	}
	if card := d.Hierarchy.Cardinality(level); member < 0 || member >= card {
		return badRequest("parameter member: %d outside [0,%d) at level %d", member, card, level)
	}
	// -1 is the "no limit" default; explicit limits must be ≥ 1.
	k, err := intParam(r, "k", -1, 1)
	if err != nil {
		return err
	}
	snap, c, err := s.current()
	if err != nil {
		return err
	}
	resp := cellsResponse{Unit: snap.Unit, Interval: encodeInterval(snap.Interval), Cells: []CellJSON{}}
	if c != nil {
		cells := c.view.Slice(dim, level, int32(member))
		resp.Count = len(cells)
		if k >= 0 && k < len(cells) {
			cells = cells[:k]
		}
		resp.Cells = encodeCells(s.schema, cells)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/trend ------------------------------------------------------------

type trendResponse struct {
	Unit int64    `json:"unit"`
	Cell CellJSON `json:"cell"`
	K    int      `json:"k"`
	// Level is the tilt granularity the trend was answered at (0 =
	// finest; coarser levels need an engine with tilt levels configured).
	Level string `json:"level,omitempty"`
	// History counts the retained units at the queried level.
	History int                `json:"history"`
	Points  []HistoryPointJSON `json:"points"`
}

func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) error {
	key, err := s.cellParam(r)
	if err != nil {
		return err
	}
	k, err := intParam(r, "k", 1, 1)
	if err != nil {
		return err
	}
	level, err := intParam(r, "level", 0, 0)
	if err != nil {
		return err
	}
	snap, _, err := s.current()
	if err != nil {
		return err
	}
	resp := trendResponse{Unit: snap.Unit, K: k, Points: []HistoryPointJSON{}}
	if level == 0 {
		have := snap.HistoryLen(key)
		if k > have {
			return notFound("trend for %s: %d units requested, %d recorded", key.Describe(s.schema), k, have)
		}
		isb, terr := snap.TrendQuery(key, k)
		if terr != nil {
			// The remaining failure is a history gap; surface the real cause.
			return notFound("trend for %s: %v", key.Describe(s.schema), terr)
		}
		resp.Cell = encodeCell(s.schema, core.Cell{Key: key, ISB: isb})
		resp.History = have
		tail := snap.HistoryOf(key)
		tail = tail[len(tail)-k:]
		for _, pt := range tail {
			resp.Points = append(resp.Points, HistoryPointJSON{Unit: pt.Unit, ISB: encodeISB(pt.ISB)})
		}
		writeJSON(w, http.StatusOK, resp)
		return nil
	}
	// Coarser levels are answered from the published tilt frames.
	if snap.Frames == nil {
		return badRequest("parameter level: %d, but the engine keeps flat history (no tilt levels)", level)
	}
	v := snap.FrameOf(key)
	if v == nil {
		return notFound("trend for %s: no history", key.Describe(s.schema))
	}
	if level >= len(v.Levels) {
		return badRequest("parameter level: %d outside [0,%d)", level, len(v.Levels))
	}
	lv := v.Levels[level]
	if k > len(lv.Slots) {
		return notFound("trend for %s: %d %s units requested, %d retained",
			key.Describe(s.schema), k, lv.Name, len(lv.Slots))
	}
	isb, terr := v.Query(level, k)
	if terr != nil {
		return notFound("trend for %s: %v", key.Describe(s.schema), terr)
	}
	resp.Cell = encodeCell(s.schema, core.Cell{Key: key, ISB: isb})
	resp.Level = lv.Name
	resp.History = len(lv.Slots)
	for _, sl := range lv.Slots[len(lv.Slots)-k:] {
		resp.Points = append(resp.Points, HistoryPointJSON{Unit: sl.Unit, ISB: encodeISB(sl.ISB)})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// --- /v1/frame ------------------------------------------------------------

type frameLevelJSON struct {
	Level int    `json:"level"`
	Name  string `json:"name"`
	// UnitTicks is the raw-tick span of one slot at this level.
	UnitTicks int64 `json:"unitTicks"`
	// Capacity is the retention bound; 0 on flat engines (unbounded by
	// the frame — the engine's HistoryUnits applies instead).
	Capacity  int   `json:"capacity"`
	Completed int64 `json:"completed"`
	// Slots list the retained units oldest first. On tilted engines Unit
	// is the frame-local ordinal at this level (add base for engine units
	// at the finest level); on flat engines it is the engine unit.
	Slots []HistoryPointJSON `json:"slots"`
}

type frameResponse struct {
	Unit int64 `json:"unit"`
	Cell struct {
		Levels  []int   `json:"levels"`
		Members []int32 `json:"members"`
		Name    string  `json:"name"`
	} `json:"cell"`
	// Tilted reports whether the engine promotes history through a tilt
	// level chain; flat engines render their history as one pseudo-level.
	Tilted bool `json:"tilted"`
	// Base is the engine unit the frame started at (tilted only).
	Base       int64            `json:"base"`
	SlotsInUse int              `json:"slotsInUse"`
	Levels     []frameLevelJSON `json:"levels"`
}

// handleFrame lists an o-cell's per-level retained slots — the analyst's
// view of the tilt time frame of §4.1 (Figure 4). It answers on flat
// engines too, presenting the flat history as a single finest level, so
// dashboards need no mode switch.
func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) error {
	key, err := s.cellParam(r)
	if err != nil {
		return err
	}
	snap, _, err := s.current()
	if err != nil {
		return err
	}
	resp := frameResponse{Unit: snap.Unit, Levels: []frameLevelJSON{}}
	resp.Cell.Levels, resp.Cell.Members = encodeKey(key)
	resp.Cell.Name = key.Describe(s.schema)
	if snap.Frames == nil {
		hist := snap.HistoryOf(key)
		lv := frameLevelJSON{Name: "unit", UnitTicks: snap.Interval.Te - snap.Interval.Tb + 1, Slots: []HistoryPointJSON{}}
		for _, pt := range hist {
			lv.Slots = append(lv.Slots, HistoryPointJSON{Unit: pt.Unit, ISB: encodeISB(pt.ISB)})
		}
		if n := len(hist); n > 0 {
			lv.Completed = hist[n-1].Unit + 1
		}
		resp.SlotsInUse = len(hist)
		resp.Levels = append(resp.Levels, lv)
		writeJSON(w, http.StatusOK, resp)
		return nil
	}
	resp.Tilted = true
	v := snap.FrameOf(key)
	if v == nil {
		return notFound("frame for %s: no history", key.Describe(s.schema))
	}
	resp.Base = v.Base
	for i, lv := range v.Levels {
		lj := frameLevelJSON{
			Level:     i,
			Name:      lv.Name,
			UnitTicks: lv.UnitTicks,
			Capacity:  lv.Capacity,
			Completed: lv.Completed,
			Slots:     []HistoryPointJSON{},
		}
		for _, sl := range lv.Slots {
			lj.Slots = append(lj.Slots, HistoryPointJSON{Unit: sl.Unit, ISB: encodeISB(sl.ISB)})
		}
		resp.SlotsInUse += len(lv.Slots)
		resp.Levels = append(resp.Levels, lj)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
