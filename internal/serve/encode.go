package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/query"
)

// The wire types moved to internal/query with the v2 typed request model
// — the same structs now serialize over the GET endpoints, POST /v1/query
// batches, and the Go client. These aliases keep serve's historical names
// valid for existing consumers.
type (
	// ISBJSON is the wire form of a regression measure.
	ISBJSON = query.ISBJSON
	// IntervalJSON is the wire form of a closed tick interval.
	IntervalJSON = query.IntervalJSON
	// CellJSON is the wire form of a retained cell.
	CellJSON = query.CellJSON
	// AlertJSON is the wire form of one o-layer alert with drill-down.
	AlertJSON = query.AlertJSON
	// HistoryPointJSON is one completed unit of an o-cell's history.
	HistoryPointJSON = query.HistoryPointJSON
)

// Unexported aliases keep the package-internal names the tests (and the
// pre-v2 handlers) used for the response bodies.
type (
	summaryResponse    = query.SummaryResponse
	cellsResponse      = query.CellsResponse
	alertsResponse     = query.AlertsResponse
	supportersResponse = query.SupportersResponse
	trendResponse      = query.TrendResponse
	frameResponse      = query.FrameResponse
	forecastResponse   = query.ForecastResponse
	changesResponse    = query.ChangesResponse
)

// parseIntList parses "1,0,2" into ints.
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("element %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseInt32List parses "1,0,2" into int32 members.
func parseInt32List(s string) ([]int32, error) {
	vs, err := parseIntList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(vs))
	for i, v := range vs {
		if v < -1<<31 || v > 1<<31-1 {
			return nil, fmt.Errorf("element %d: %d overflows int32", i, v)
		}
		out[i] = int32(v)
	}
	return out, nil
}
