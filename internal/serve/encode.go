package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/stream"
	"repro/internal/timeseries"
)

// ISBJSON is the wire form of a regression measure.
type ISBJSON struct {
	Tb    int64   `json:"tb"`
	Te    int64   `json:"te"`
	Base  float64 `json:"base"`
	Slope float64 `json:"slope"`
}

func encodeISB(isb regression.ISB) ISBJSON {
	return ISBJSON{Tb: isb.Tb, Te: isb.Te, Base: isb.Base, Slope: isb.Slope}
}

// IntervalJSON is the wire form of a closed tick interval.
type IntervalJSON struct {
	Tb int64 `json:"tb"`
	Te int64 `json:"te"`
}

func encodeInterval(iv timeseries.Interval) IntervalJSON {
	return IntervalJSON{Tb: iv.Tb, Te: iv.Te}
}

// CellJSON is the wire form of a retained cell: machine-usable coordinates
// (levels+members, round-trippable through the levels/members query
// parameters) plus the human-readable rendering.
type CellJSON struct {
	Levels  []int   `json:"levels"`
	Members []int32 `json:"members"`
	Cuboid  string  `json:"cuboid"`
	Name    string  `json:"name"`
	ISB     ISBJSON `json:"isb"`
}

func encodeKey(key cube.CellKey) (levels []int, members []int32) {
	nd := key.Cuboid.NumDims()
	levels = make([]int, nd)
	members = make([]int32, nd)
	for d := 0; d < nd; d++ {
		levels[d] = key.Cuboid.Level(d)
		members[d] = key.Member(d)
	}
	return levels, members
}

func encodeCell(s *cube.Schema, c core.Cell) CellJSON {
	levels, members := encodeKey(c.Key)
	return CellJSON{
		Levels:  levels,
		Members: members,
		Cuboid:  c.Key.Cuboid.Describe(s),
		Name:    c.Key.Describe(s),
		ISB:     encodeISB(c.ISB),
	}
}

// encodeCells never returns nil, so empty result sets serialize as [] and
// not null.
func encodeCells(s *cube.Schema, cells []core.Cell) []CellJSON {
	out := make([]CellJSON, len(cells))
	for i, c := range cells {
		out[i] = encodeCell(s, c)
	}
	return out
}

// AlertJSON is the wire form of one o-layer alert with its drill-down.
type AlertJSON struct {
	Unit       int64      `json:"unit"`
	Kind       string     `json:"kind"`
	Cell       CellJSON   `json:"cell"`
	Supporters []CellJSON `json:"supporters"`
}

func encodeAlert(s *cube.Schema, a stream.Alert) AlertJSON {
	return AlertJSON{
		Unit:       a.Unit,
		Kind:       a.Kind.String(),
		Cell:       encodeCell(s, core.Cell{Key: a.Cell, ISB: a.ISB}),
		Supporters: encodeCells(s, a.Drill),
	}
}

// HistoryPointJSON is one completed unit of an o-cell's trend history.
type HistoryPointJSON struct {
	Unit int64   `json:"unit"`
	ISB  ISBJSON `json:"isb"`
}

// parseIntList parses "1,0,2" into ints.
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("element %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseInt32List parses "1,0,2" into int32 members.
func parseInt32List(s string) ([]int32, error) {
	vs, err := parseIntList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(vs))
	for i, v := range vs {
		if v < -1<<31 || v > 1<<31-1 {
			return nil, fmt.Errorf("element %d: %d overflows int32", i, v)
		}
		out[i] = int32(v)
	}
	return out, nil
}
