package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/stream"
	"repro/internal/wire"
)

// testSchema is D2, fanout 2, m-level 2 (4×4 m-cells), o-level 1 (2×2
// o-cells) — small enough to reason about, sharded-friendly.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// testServer ingests `units` full units into a sharded engine and returns
// a Server over it. Values rise with the tick, so slopes are positive and
// alerts fire at threshold 0.5.
func testServer(t testing.TB, shards, units int) (*Server, *stream.ShardedEngine, *cube.Schema) {
	t.Helper()
	schema := testSchema(t)
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	for tick := int64(0); tick < int64(4*units); tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				v := float64(tick) * float64(a+2*b+1)
				if _, err := eng.Ingest([]int32{a, b}, tick, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Cross into the next unit so `units` boundaries have published.
	if _, err := eng.Ingest([]int32{0, 0}, int64(4*units), 0); err != nil {
		t.Fatal(err)
	}
	return New(eng, schema), eng, schema
}

func get(t testing.TB, srv *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if out != nil {
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON %v: %s", path, err, rec.Body.String())
		}
	}
	return rec
}

func TestHealthzAndSummary(t *testing.T) {
	srv, _, _ := testServer(t, 4, 3)
	var h healthResponse
	get(t, srv, "/healthz", &h)
	if !h.Serving || h.Unit != 2 || h.UnitsDone != 3 {
		t.Fatalf("health = %+v, want serving unit 2 with 3 done", h)
	}
	var sum summaryResponse
	get(t, srv, "/v1/summary", &sum)
	if sum.Unit != 2 || sum.Empty || sum.OCells != 4 {
		t.Fatalf("summary = %+v, want unit 2, 4 o-cells", sum)
	}
	if sum.Stats == nil || sum.Stats.Algorithm == "" || sum.Stats.Tuples != 16 {
		t.Fatalf("summary stats = %+v, want 16 tuples", sum.Stats)
	}
	// 3×3 cuboids between the critical layers of D2L2.
	if len(sum.Cuboids) == 0 {
		t.Fatalf("summary lists no cuboids")
	}
}

func TestExceptionsRankedAndKeyed(t *testing.T) {
	srv, _, _ := testServer(t, 4, 2)
	var bySlope, byKey cellsResponse
	// A limit at or past the full set returns every cell (negative
	// sentinels are rejected with 400 since the lower-bound fix).
	get(t, srv, "/v1/exceptions?k=1000000&order=slope", &bySlope)
	get(t, srv, "/v1/exceptions?k=1000000&order=key", &byKey)
	if bySlope.Count == 0 || bySlope.Count != byKey.Count {
		t.Fatalf("counts differ: slope %d vs key %d", bySlope.Count, byKey.Count)
	}
	if len(bySlope.Cells) != bySlope.Count || len(byKey.Cells) != byKey.Count {
		t.Fatalf("large k must return all cells")
	}
	// Same set, different order.
	set := func(cs []CellJSON) map[string]bool {
		m := make(map[string]bool)
		for _, c := range cs {
			m[fmt.Sprint(c.Levels, c.Members)] = true
		}
		return m
	}
	a, b := set(bySlope.Cells), set(byKey.Cells)
	if len(a) != len(b) {
		t.Fatalf("cell sets differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("cell %s missing from key order", k)
		}
	}
	// Ranked order is by |slope| descending.
	for i := 1; i < len(bySlope.Cells); i++ {
		if abs(bySlope.Cells[i].ISB.Slope) > abs(bySlope.Cells[i-1].ISB.Slope)+1e-12 {
			t.Fatalf("slope order violated at %d", i)
		}
	}
	var top cellsResponse
	get(t, srv, "/v1/exceptions?k=3", &top)
	if len(top.Cells) != 3 || top.Count != bySlope.Count {
		t.Fatalf("k=3 returned %d cells, count %d", len(top.Cells), top.Count)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestAlertsSupportersSliceTrend(t *testing.T) {
	srv, eng, _ := testServer(t, 4, 3)
	var al alertsResponse
	get(t, srv, "/v1/alerts", &al)
	if len(al.Alerts) == 0 {
		t.Fatal("rising values at threshold 0.5 must alert")
	}
	for _, a := range al.Alerts {
		if a.Unit != al.Unit {
			t.Fatalf("alert unit %d outside snapshot unit %d", a.Unit, al.Unit)
		}
	}

	// Supporters of the steepest alerted o-cell: its supporters must be
	// descendants with the alert's cell as ancestor.
	first := al.Alerts[0]
	var sup supportersResponse
	get(t, srv, fmt.Sprintf("/v1/supporters?levels=%s&members=%s",
		joinInts(first.Cell.Levels), joinInt32s(first.Cell.Members)), &sup)
	if !sup.Retained || sup.Cell.ISB == nil {
		t.Fatalf("alerted o-cell must be retained: %+v", sup)
	}

	var sl cellsResponse
	get(t, srv, "/v1/slice?dim=0&level=1&member=0", &sl)
	for _, c := range sl.Cells {
		// Every sliced cell's dim-0 member must roll up to member 0.
		if c.Levels[0] == 1 && c.Members[0] != 0 {
			t.Fatalf("slice returned foreign cell %+v", c)
		}
	}

	var tr trendResponse
	get(t, srv, "/v1/trend?members=0,0&k=3", &tr)
	if tr.K != 3 || len(tr.Points) != 3 || tr.History != 3 {
		t.Fatalf("trend = %+v, want 3 points", tr)
	}
	// The trend regression must match the engine's own TrendQuery.
	oCell := cube.NewCellKey(cube.MustCuboid(1, 1), 0, 0)
	want, err := eng.TrendQuery(oCell, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cell.ISB.Slope != want.Slope || tr.Cell.ISB.Base != want.Base {
		t.Fatalf("trend ISB %+v differs from engine %+v", tr.Cell.ISB, want)
	}
}

func joinInts(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func joinInt32s(vs []int32) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

func TestErrorsAndUnavailable(t *testing.T) {
	schema := testSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, schema)

	// Before any unit closes every /v1 endpoint is 503 with a JSON error.
	rec := get(t, srv, "/v1/exceptions", nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("pre-snapshot status = %d body %q", rec.Code, rec.Body.String())
	}
	// Health stays 200 while not yet serving.
	var h healthResponse
	get(t, srv, "/healthz", &h)
	if h.Serving || h.Unit != -1 {
		t.Fatalf("health before first unit = %+v", h)
	}

	if _, err := eng.Ingest([]int32{0, 0}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	for path, want := range map[string]int{
		"/v1/exceptions?k=x":                    http.StatusBadRequest,
		"/v1/exceptions?order=bogus":            http.StatusBadRequest,
		"/v1/supporters?members=9,9":            http.StatusBadRequest, // outside o-level cardinality
		"/v1/supporters?members=0":              http.StatusBadRequest, // wrong arity
		"/v1/supporters":                        http.StatusBadRequest, // members missing
		"/v1/slice?dim=5&member=0":              http.StatusBadRequest,
		"/v1/slice?dim=0&level=9":               http.StatusBadRequest,
		"/v1/slice?dim=0&member=99":             http.StatusBadRequest,
		"/v1/trend?members=1,1&k=400":           http.StatusNotFound,
		"/v1/trend?members=0,0&k=0":             http.StatusBadRequest,
		"/v1/supporters?levels=0,0&members=0,0": http.StatusBadRequest, // above the o-layer
		"/nope":                                 http.StatusNotFound,
	} {
		rec := get(t, srv, path, nil)
		if rec.Code != want {
			t.Errorf("GET %s: status %d, want %d (%s)", path, rec.Code, want, rec.Body.String())
		}
	}

	// Mutating methods are rejected by the route patterns.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/exceptions", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestMetricsCounters(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	get(t, srv, "/v1/exceptions", &cellsResponse{})
	get(t, srv, "/v1/exceptions", &cellsResponse{})
	rec := get(t, srv, "/metrics", nil)
	body := rec.Body.String()
	if !strings.Contains(body, `regcube_http_requests_total{endpoint="exceptions"} 2`) {
		t.Fatalf("metrics missing exception counter:\n%s", body)
	}
	if !strings.Contains(body, "regcube_serving 1") || !strings.Contains(body, "regcube_snapshot_unit 0") {
		t.Fatalf("metrics missing snapshot gauges:\n%s", body)
	}
	// Without SetIngestStats the ingest counters stay off /metrics: a
	// query-only server has no ingest edge to report.
	if strings.Contains(body, "regcube_ingest_records_total") {
		t.Fatalf("ingest counters rendered without ingest stats:\n%s", body)
	}
}

// TestIngestMetrics asserts the per-format, per-source ingest counters
// render and move as the ingest edge reports decode progress and failures
// — and that piped and routed traffic land in distinct series.
func TestIngestMetrics(t *testing.T) {
	srv, _, _ := testServer(t, 2, 1)
	var stats wire.IngestStats
	srv.SetIngestStats(&stats)

	body := get(t, srv, "/metrics", nil).Body.String()
	for _, line := range []string{
		`regcube_ingest_records_total{format="text",source="stdin"} 0`,
		`regcube_ingest_records_total{format="text",source="tcp"} 0`,
		`regcube_ingest_records_total{format="binary",source="stdin"} 0`,
		`regcube_ingest_records_total{format="binary",source="tcp"} 0`,
		`regcube_ingest_frames_total{format="text",source="stdin"} 0`,
		`regcube_ingest_frames_total{format="binary",source="tcp"} 0`,
		`regcube_ingest_decode_errors_total{format="text",source="stdin"} 0`,
		`regcube_ingest_decode_errors_total{format="binary",source="tcp"} 0`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q:\n%s", line, body)
		}
	}

	stats.AddRecords(wire.FormatText, wire.SourceStdin, 7)
	stats.AddFrame(wire.FormatText, wire.SourceStdin)
	stats.AddRecords(wire.FormatBinary, wire.SourceTCP, 4096)
	stats.AddFrame(wire.FormatBinary, wire.SourceTCP)
	stats.AddFrame(wire.FormatBinary, wire.SourceTCP)
	stats.AddDecodeError(wire.FormatBinary, wire.SourceTCP)

	body = get(t, srv, "/metrics", nil).Body.String()
	for _, line := range []string{
		`regcube_ingest_records_total{format="text",source="stdin"} 7`,
		`regcube_ingest_frames_total{format="text",source="stdin"} 1`,
		`regcube_ingest_records_total{format="binary",source="tcp"} 4096`,
		`regcube_ingest_frames_total{format="binary",source="tcp"} 2`,
		`regcube_ingest_decode_errors_total{format="text",source="stdin"} 0`,
		`regcube_ingest_decode_errors_total{format="binary",source="tcp"} 1`,
		// Routed traffic never bleeds into the stdin series.
		`regcube_ingest_records_total{format="binary",source="stdin"} 0`,
		`regcube_ingest_frames_total{format="binary",source="stdin"} 0`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics did not move, missing %q:\n%s", line, body)
		}
	}
}

// Queries served over a real TCP listener stay unit-consistent while the
// coordinator keeps ingesting. (The deeper snapshot stress test lives in
// internal/stream; this exercises the full HTTP path.)
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	schema := testSchema(t)
	eng, err := stream.NewShardedEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(New(eng, schema))
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{"/healthz", "/v1/exceptions?k=4", "/v1/summary", "/v1/alerts"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				var body map[string]any
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil || len(body) == 0 {
					t.Errorf("bad body: %v %v", err, body)
					return
				}
			}
		}(w)
	}
	for tick := int64(0); tick < 200; tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick)*float64(a+b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
