package query

import (
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/stream"
	"repro/internal/timeseries"
)

// This file defines the wire form of the v2 query API: the JSON shapes a
// Response serializes to. They are transport-independent — the same
// structs travel over the GET endpoints, the POST /v1/query batch, and
// the Go client — and their field order and tags are frozen: existing GET
// consumers depend on these exact bytes (internal/serve's golden tests).

// ISBJSON is the wire form of a regression measure.
type ISBJSON struct {
	Tb    int64   `json:"tb"`
	Te    int64   `json:"te"`
	Base  float64 `json:"base"`
	Slope float64 `json:"slope"`
}

func encodeISB(isb regression.ISB) ISBJSON {
	return ISBJSON{Tb: isb.Tb, Te: isb.Te, Base: isb.Base, Slope: isb.Slope}
}

// IntervalJSON is the wire form of a closed tick interval.
type IntervalJSON struct {
	Tb int64 `json:"tb"`
	Te int64 `json:"te"`
}

func encodeInterval(iv timeseries.Interval) IntervalJSON {
	return IntervalJSON{Tb: iv.Tb, Te: iv.Te}
}

// CellJSON is the wire form of a retained cell: machine-usable coordinates
// (levels+members, round-trippable through CellRef) plus the
// human-readable rendering.
type CellJSON struct {
	Levels  []int   `json:"levels"`
	Members []int32 `json:"members"`
	Cuboid  string  `json:"cuboid"`
	Name    string  `json:"name"`
	ISB     ISBJSON `json:"isb"`
}

// CellRefJSON names the cell a request asked about, with its measure when
// the cell is retained (omitted otherwise).
type CellRefJSON struct {
	Levels  []int    `json:"levels"`
	Members []int32  `json:"members"`
	Name    string   `json:"name"`
	ISB     *ISBJSON `json:"isb,omitempty"`
}

func encodeKey(key cube.CellKey) (levels []int, members []int32) {
	nd := key.Cuboid.NumDims()
	levels = make([]int, nd)
	members = make([]int32, nd)
	for d := 0; d < nd; d++ {
		levels[d] = key.Cuboid.Level(d)
		members[d] = key.Member(d)
	}
	return levels, members
}

func encodeCell(s *cube.Schema, c core.Cell) CellJSON {
	levels, members := encodeKey(c.Key)
	return CellJSON{
		Levels:  levels,
		Members: members,
		Cuboid:  c.Key.Cuboid.Describe(s),
		Name:    c.Key.Describe(s),
		ISB:     encodeISB(c.ISB),
	}
}

// encodeCells never returns nil, so empty result sets serialize as [] and
// not null.
func encodeCells(s *cube.Schema, cells []core.Cell) []CellJSON {
	out := make([]CellJSON, len(cells))
	for i, c := range cells {
		out[i] = encodeCell(s, c)
	}
	return out
}

// AlertJSON is the wire form of one o-layer alert with its drill-down.
type AlertJSON struct {
	Unit       int64      `json:"unit"`
	Kind       string     `json:"kind"`
	Cell       CellJSON   `json:"cell"`
	Supporters []CellJSON `json:"supporters"`
}

func encodeAlert(s *cube.Schema, a stream.Alert) AlertJSON {
	return AlertJSON{
		Unit:       a.Unit,
		Kind:       a.Kind.String(),
		Cell:       encodeCell(s, core.Cell{Key: a.Cell, ISB: a.ISB}),
		Supporters: encodeCells(s, a.Drill),
	}
}

// HistoryPointJSON is one completed unit of an o-cell's trend history.
type HistoryPointJSON struct {
	Unit int64   `json:"unit"`
	ISB  ISBJSON `json:"isb"`
}

// StatsJSON is the wire form of a unit's cube-computation cost measures.
type StatsJSON struct {
	Algorithm       string `json:"algorithm"`
	Tuples          int    `json:"tuples"`
	TreeNodes       int    `json:"treeNodes"`
	CuboidsComputed int    `json:"cuboidsComputed"`
	CellsComputed   int64  `json:"cellsComputed"`
	CellsRetained   int64  `json:"cellsRetained"`
	BytesRetained   int64  `json:"bytesRetained"`
	BuildNanos      int64  `json:"buildNanos"`
	CubeNanos       int64  `json:"cubeNanos"`
}

// CuboidSummaryJSON is the wire form of one cuboid's exception rollup.
type CuboidSummaryJSON struct {
	Levels      []int   `json:"levels"`
	Name        string  `json:"name"`
	Exceptions  int     `json:"exceptions"`
	MaxAbsSlope float64 `json:"maxAbsSlope"`
}

// FrameLevelJSON is one granularity of a frame listing.
type FrameLevelJSON struct {
	Level int    `json:"level"`
	Name  string `json:"name"`
	// UnitTicks is the raw-tick span of one slot at this level.
	UnitTicks int64 `json:"unitTicks"`
	// Capacity is the retention bound; 0 on flat engines (unbounded by
	// the frame — the engine's HistoryUnits applies instead).
	Capacity  int   `json:"capacity"`
	Completed int64 `json:"completed"`
	// Slots list the retained units oldest first. On tilted engines Unit
	// is the frame-local ordinal at this level (add base for engine units
	// at the finest level); on flat engines it is the engine unit.
	Slots []HistoryPointJSON `json:"slots"`
}
