package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Response is the typed result of one executed Request — the closed union
// mirroring the Request kinds. Concrete types: *SummaryResponse,
// *CellsResponse (exceptions and slice), *AlertsResponse,
// *SupportersResponse, *TrendResponse, *FrameResponse,
// *ForecastResponse, *ChangesResponse.
type Response interface {
	isResponse()
}

// SummaryResponse answers a SummaryRequest: the unit header, the cube
// computation's stats, and per-cuboid exception counts (coarsest first).
type SummaryResponse struct {
	Unit      int64        `json:"unit"`
	UnitsDone int64        `json:"unitsDone"`
	Interval  IntervalJSON `json:"interval"`
	// Empty reports a unit that closed with no data; the per-cell fields
	// below are zero and Stats is omitted.
	Empty      bool                `json:"empty"`
	OCells     int                 `json:"oCells"`
	Exceptions int                 `json:"exceptions"`
	Alerts     int                 `json:"alerts"`
	Stats      *StatsJSON          `json:"stats,omitempty"`
	Cuboids    []CuboidSummaryJSON `json:"cuboids"`
}

func (*SummaryResponse) isResponse() {}

// CellsResponse answers an ExceptionsRequest or a SliceRequest: matching
// cells with the pre-truncation total.
type CellsResponse struct {
	Unit     int64        `json:"unit"`
	Interval IntervalJSON `json:"interval"`
	// Count is the total number of matching cells before K truncation.
	Count int        `json:"count"`
	Cells []CellJSON `json:"cells"`
}

func (*CellsResponse) isResponse() {}

// AlertsResponse answers an AlertsRequest: the unit's o-layer alerts in
// canonical order, each with its drill-down supporters.
type AlertsResponse struct {
	Unit     int64        `json:"unit"`
	Interval IntervalJSON `json:"interval"`
	Alerts   []AlertJSON  `json:"alerts"`
}

func (*AlertsResponse) isResponse() {}

// SupportersResponse answers a SupportersRequest: the queried cell (with
// its measure when retained) and its exception descendants, coarsest
// cuboids first.
type SupportersResponse struct {
	Unit     int64       `json:"unit"`
	Cell     CellRefJSON `json:"cell"`
	Retained bool        `json:"retained"`
	// Count is the total number of supporters before K truncation.
	Count      int        `json:"count"`
	Supporters []CellJSON `json:"supporters"`
}

func (*SupportersResponse) isResponse() {}

// TrendResponse answers a TrendRequest: the aggregated regression over
// the last K units plus the per-unit points it covers.
type TrendResponse struct {
	Unit int64    `json:"unit"`
	Cell CellJSON `json:"cell"`
	K    int      `json:"k"`
	// Level is the tilt granularity the trend was answered at; empty for
	// the finest level.
	Level string `json:"level,omitempty"`
	// History counts the retained units at the queried level.
	History int                `json:"history"`
	Points  []HistoryPointJSON `json:"points"`
}

func (*TrendResponse) isResponse() {}

// FrameResponse answers a FrameRequest: the per-level slot listing of one
// o-cell's tilted history (§4.1, Figure 4). Flat engines render their
// history as a single pseudo-level, so consumers need no mode switch.
type FrameResponse struct {
	Unit int64       `json:"unit"`
	Cell CellRefJSON `json:"cell"`
	// Tilted reports whether the engine promotes history through a tilt
	// level chain.
	Tilted bool `json:"tilted"`
	// Base is the engine unit the frame started at (tilted only).
	Base       int64            `json:"base"`
	SlotsInUse int              `json:"slotsInUse"`
	Levels     []FrameLevelJSON `json:"levels"`
}

func (*FrameResponse) isResponse() {}

// DecodeResponse unmarshals the wire form of a response by its request
// kind — the client's half of the batch protocol.
func DecodeResponse(k Kind, raw []byte) (Response, error) {
	var resp Response
	switch k {
	case KindSummary:
		resp = &SummaryResponse{}
	case KindExceptions, KindSlice:
		resp = &CellsResponse{}
	case KindAlerts:
		resp = &AlertsResponse{}
	case KindSupporters:
		resp = &SupportersResponse{}
	case KindTrend:
		resp = &TrendResponse{}
	case KindFrame:
		resp = &FrameResponse{}
	case KindForecast:
		resp = &ForecastResponse{}
	case KindChanges:
		resp = &ChangesResponse{}
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalid, k)
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return nil, fmt.Errorf("decoding %s response: %w", k, err)
	}
	return resp, nil
}

// BatchRequest is the body of POST /v1/query: a list of typed requests
// answered together from one snapshot, so every result in a batch is
// unit-consistent with every other.
type BatchRequest struct {
	Queries []Envelope `json:"queries"`
}

// BatchResult is one request's outcome inside a BatchResponse: either OK
// with the kind's response object, or an error with the status the same
// request would have received standalone.
type BatchResult struct {
	OK     bool            `json:"ok"`
	Status int             `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Decode returns the typed response of a successful result, or the
// result's error mapped back to the query sentinels.
func (r BatchResult) Decode(k Kind) (Response, error) {
	if !r.OK {
		return nil, StatusError(r.Status, r.Error)
	}
	return DecodeResponse(k, r.Result)
}

// BatchResponse is the body POST /v1/query returns: per-request results
// in request order, all answered from the snapshot of one unit.
type BatchResponse struct {
	Unit      int64         `json:"unit"`
	UnitsDone int64         `json:"unitsDone"`
	Results   []BatchResult `json:"results"`
}

// HTTPStatus maps an Execute or Validate error to the HTTP status the
// serving layer (and batch results) carry it as.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrInvalid), errors.Is(err, ErrCell):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// StatusError maps a transport status back to the matching sentinel, so
// client-side errors.Is checks work across the wire.
func StatusError(status int, msg string) error {
	switch status {
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrInvalid, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	default:
		return fmt.Errorf("query: status %d: %s", status, msg)
	}
}

// ErrorMessage renders an Execute error for the wire, stripping the
// ErrInvalid/ErrNotFound sentinel prefixes (the status already encodes
// them) — this keeps error bodies identical to the pre-v2 handlers'.
// ErrCell messages keep their historical "query: invalid cell" prefix.
func ErrorMessage(err error) string {
	msg := err.Error()
	for _, sentinel := range []error{ErrInvalid, ErrNotFound} {
		msg = strings.TrimPrefix(msg, sentinel.Error()+": ")
	}
	if msg == ErrUnavailable.Error() {
		return "no completed unit yet"
	}
	return msg
}
