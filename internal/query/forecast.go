package query

import (
	"math"

	"repro/internal/cube"
	"repro/internal/insight"
)

// The predictive query kinds (DESIGN.md §14): Forecast evaluates a cell's
// trend model forward, Changes ranks cells whose recent trend diverges
// from their long-horizon trend. Both are pure functions of the snapshot
// — internal/insight does the math — so they carry the same determinism
// guarantee as every other kind: identical responses at any shard count
// and from the cluster coordinator's merged snapshot.

// ForecastRequest asks for the forward evaluation of an o-cell's trend:
// the predicted value Horizon ticks past the last recorded one, the fit
// confidence, and (with a threshold) the time until the fitted line
// crosses it.
type ForecastRequest struct {
	CellRef
	// K is how many trailing finest-granularity units the model
	// aggregates; 0 means every recorded unit.
	K int `json:"k,omitempty"`
	// Horizon is the look-ahead in ticks past the model's last covered
	// tick. Required; must be ≥ 1.
	Horizon int64 `json:"horizon"`
	// Threshold, when set, additionally asks when the fitted line crosses
	// this value (never when the slope points away).
	Threshold *float64 `json:"threshold,omitempty"`
}

// Kind returns KindForecast.
func (ForecastRequest) Kind() Kind { return KindForecast }

// Validate rejects negative windows, non-positive horizons, non-finite
// thresholds, and invalid cell references.
func (r ForecastRequest) Validate(s *cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means all recorded units)", r.K)
	}
	if r.Horizon < 1 {
		return invalidf("parameter horizon: %d is not positive", r.Horizon)
	}
	if r.Threshold != nil && (math.IsNaN(*r.Threshold) || math.IsInf(*r.Threshold, 0)) {
		return invalidf("parameter threshold: %g is not finite", *r.Threshold)
	}
	_, err := r.Resolve(s)
	return err
}

// ChangesRequest asks for the cells whose recent trend diverges from
// their long-horizon trend — the slope comparison between adjacent tilt
// levels, ranked by normalized divergence.
type ChangesRequest struct {
	// K truncates the ranked cells; 0 returns every scored cell.
	K int `json:"k,omitempty"`
	// MinScore filters cells whose divergence score is below it. Scores
	// are normalized to [0,1]; 0 (the default) keeps every comparable
	// cell.
	MinScore float64 `json:"minScore,omitempty"`
}

// Kind returns KindChanges.
func (ChangesRequest) Kind() Kind { return KindChanges }

// Validate rejects negative limits and out-of-range scores.
func (r ChangesRequest) Validate(*cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means no limit)", r.K)
	}
	if !(r.MinScore >= 0 && r.MinScore <= 1) {
		return invalidf("parameter score: %g outside [0,1]", r.MinScore)
	}
	return nil
}

// ForecastResponse answers a ForecastRequest: the window model (as the
// cell's ISB), its confidence, and the forward evaluation.
type ForecastResponse struct {
	Unit int64 `json:"unit"`
	// Cell carries the aggregate window model as its isb.
	Cell CellJSON `json:"cell"`
	// K is the window actually used (the request's 0 resolves to History).
	K int `json:"k"`
	// History counts the recorded finest-granularity units.
	History int `json:"history"`
	// R2 scores the model against the window's per-unit means (0..1).
	R2 float64 `json:"r2"`
	// Now is the last tick the model covers; Predicted is the fitted
	// value at Now+Horizon.
	Now       int64   `json:"now"`
	Horizon   int64   `json:"horizon"`
	Predicted float64 `json:"predicted"`
	// Threshold and TicksToThreshold appear only when a threshold was
	// given; a missing TicksToThreshold with a present Threshold means
	// the line never crosses it (slope flat or pointing away).
	Threshold        *float64 `json:"threshold,omitempty"`
	TicksToThreshold *float64 `json:"ticksToThreshold,omitempty"`
	// WillBreach reports a crossing inside the horizon.
	WillBreach bool `json:"willBreach"`
}

func (*ForecastResponse) isResponse() {}

// ChangeJSON is one scored cell of a ChangesResponse.
type ChangeJSON struct {
	Levels  []int   `json:"levels"`
	Members []int32 `json:"members"`
	Name    string  `json:"name"`
	// Score is the normalized slope divergence of the winning adjacent
	// level pair (0..1).
	Score float64 `json:"score"`
	// RecentLevel/LongLevel name the winning pair's granularities.
	RecentLevel string `json:"recentLevel"`
	LongLevel   string `json:"longLevel"`
	// RecentSlope/LongSlope are the aggregate slopes over every retained
	// slot at each granularity.
	RecentSlope float64 `json:"recentSlope"`
	LongSlope   float64 `json:"longSlope"`
}

// ChangesResponse answers a ChangesRequest: scored cells ranked
// score-descending (canonical key order on ties).
type ChangesResponse struct {
	Unit     int64        `json:"unit"`
	Interval IntervalJSON `json:"interval"`
	// Tilted reports whether the engine keeps tilt frames; flat engines
	// have no second granularity and score no cells.
	Tilted bool `json:"tilted"`
	// Count is the total number of cells at or above MinScore before K
	// truncation.
	Count    int          `json:"count"`
	MinScore float64      `json:"minScore"`
	Cells    []ChangeJSON `json:"cells"`
}

func (*ChangesResponse) isResponse() {}

func (e *Executor) forecast(r ForecastRequest, key cube.CellKey) (Response, error) {
	snap := e.snap
	pts := snap.HistoryOf(key)
	have := len(pts)
	if have == 0 {
		return nil, notFoundf("forecast for %s: no history", key.Describe(e.schema))
	}
	k := r.K
	if k == 0 {
		k = have
	}
	if k > have {
		return nil, notFoundf("forecast for %s: %d units requested, %d recorded",
			key.Describe(e.schema), k, have)
	}
	f, err := insight.ForecastHistory(pts[have-k:], r.Horizon, r.Threshold)
	if err != nil {
		// Validation already rejected bad arguments; what remains is a
		// history gap in the window.
		return nil, notFoundf("forecast for %s: %v", key.Describe(e.schema), err)
	}
	resp := &ForecastResponse{
		Unit:             snap.Unit,
		K:                f.Window,
		History:          have,
		R2:               f.R2,
		Now:              f.Now,
		Horizon:          f.Horizon,
		Predicted:        f.Predicted,
		Threshold:        f.Threshold,
		TicksToThreshold: f.TicksToThreshold,
		WillBreach:       f.WillBreach(),
	}
	resp.Cell.Levels, resp.Cell.Members = encodeKey(key)
	resp.Cell.Cuboid = key.Cuboid.Describe(e.schema)
	resp.Cell.Name = key.Describe(e.schema)
	resp.Cell.ISB = encodeISB(f.Model)
	return resp, nil
}

func (e *Executor) changes(r ChangesRequest) *ChangesResponse {
	snap := e.snap
	resp := &ChangesResponse{
		Unit:     snap.Unit,
		Interval: encodeInterval(snap.Interval),
		Tilted:   snap.Frames != nil,
		MinScore: r.MinScore,
		Cells:    []ChangeJSON{},
	}
	scored := insight.ScanChanges(snap, r.MinScore, 0)
	resp.Count = len(scored)
	if r.K > 0 && r.K < len(scored) {
		scored = scored[:r.K]
	}
	for _, c := range scored {
		levels, members := encodeKey(c.Key)
		resp.Cells = append(resp.Cells, ChangeJSON{
			Levels:      levels,
			Members:     members,
			Name:        c.Key.Describe(e.schema),
			Score:       c.Score,
			RecentLevel: c.RecentName,
			LongLevel:   c.LongName,
			RecentSlope: c.RecentSlope,
			LongSlope:   c.LongSlope,
		})
	}
	return resp
}
