package query

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/regression"
)

func view(t *testing.T) (*View, *cube.Schema) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Spec: gen.Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 300}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MOCubing(ds.Schema, ds.Inputs, exception.Global(ds.CalibrateThreshold(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	return NewView(res), ds.Schema
}

func TestTopExceptionsOrderedAndBounded(t *testing.T) {
	v, _ := view(t)
	all := v.TopExceptions(-1)
	if len(all) != len(v.Result().Exceptions) {
		t.Fatalf("all = %d, want %d", len(all), len(v.Result().Exceptions))
	}
	for i := 1; i < len(all); i++ {
		if math.Abs(all[i].ISB.Slope) > math.Abs(all[i-1].ISB.Slope) {
			t.Fatal("not sorted by |slope| descending")
		}
	}
	top3 := v.TopExceptions(3)
	if len(top3) != 3 {
		t.Fatalf("top3 = %d", len(top3))
	}
	for i := range top3 {
		if top3[i].Key != all[i].Key {
			t.Fatal("top-k must be a prefix of the full ranking")
		}
	}
	if got := v.TopExceptions(0); len(got) != 0 {
		t.Fatal("k=0 must be empty")
	}
}

func TestTopObservations(t *testing.T) {
	v, s := view(t)
	obs := v.TopObservations(-1)
	if len(obs) != len(v.Result().OLayer) {
		t.Fatal("observation count")
	}
	for _, c := range obs {
		if !c.Key.Cuboid.Equal(s.OLayer()) {
			t.Fatal("observations must be o-layer cells")
		}
	}
}

func TestSupportersRollUpToCell(t *testing.T) {
	v, s := view(t)
	// Pick the steepest o-layer cell and drill.
	obs := v.TopObservations(1)
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	target := obs[0].Key
	sup := v.Supporters(target)
	for _, c := range sup {
		up, err := cube.RollUpKey(s, c.Key, target.Cuboid)
		if err != nil || up != target {
			t.Fatalf("supporter %v does not roll up to %v", c.Key, target)
		}
		if c.Key == target {
			t.Fatal("cell must not support itself")
		}
	}
	// Coarsest-first ordering.
	for i := 1; i < len(sup); i++ {
		if depth(sup[i].Key.Cuboid) < depth(sup[i-1].Key.Cuboid) {
			t.Fatal("supporters must be coarsest-first")
		}
	}
	// Count matches a direct scan.
	direct := 0
	for key := range v.Result().Exceptions {
		if key == target {
			continue
		}
		if up, err := cube.RollUpKey(s, key, target.Cuboid); err == nil && up == target {
			direct++
		}
	}
	if len(sup) != direct {
		t.Fatalf("supporters = %d, want %d", len(sup), direct)
	}
}

func TestExceptionChildrenAreOneStep(t *testing.T) {
	v, s := view(t)
	lattice := cube.NewLattice(s)
	obs := v.TopObservations(1)
	kids := v.ExceptionChildren(obs[0].Key)
	childCuboids := lattice.Children(obs[0].Key.Cuboid)
	for _, c := range kids {
		found := false
		for _, cc := range childCuboids {
			if c.Key.Cuboid.Equal(cc) {
				found = true
			}
		}
		if !found {
			t.Fatalf("child %v not in an immediate child cuboid", c.Key)
		}
		up, err := cube.RollUpKey(s, c.Key, obs[0].Key.Cuboid)
		if err != nil || up != obs[0].Key {
			t.Fatal("child does not descend from the cell")
		}
	}
}

func TestSliceFiltersByAncestor(t *testing.T) {
	v, s := view(t)
	h := s.Dims[0].Hierarchy
	member := int32(1)
	cells := v.Slice(0, 1, member)
	for _, c := range cells {
		lvl := c.Key.Cuboid.Level(0)
		if lvl < 1 {
			t.Fatal("cells coarser than the slice level must be excluded")
		}
		if cube.Ancestor(h, lvl, 1, c.Key.Members[0]) != member {
			t.Fatalf("cell %v outside the slice", c.Key)
		}
	}
	// Direct count.
	direct := 0
	for key := range v.Result().Exceptions {
		lvl := key.Cuboid.Level(0)
		if lvl >= 1 && cube.Ancestor(h, lvl, 1, key.Members[0]) == member {
			direct++
		}
	}
	if len(cells) != direct {
		t.Fatalf("slice = %d, want %d", len(cells), direct)
	}
}

func TestSummaryCoversLattice(t *testing.T) {
	v, s := view(t)
	sum := v.Summary()
	lattice := cube.NewLattice(s)
	if len(sum) != lattice.Size() {
		t.Fatalf("summary rows = %d, want %d", len(sum), lattice.Size())
	}
	total := 0
	for _, row := range sum {
		total += row.Exceptions
		if row.Exceptions > 0 && row.MaxAbsSlope <= 0 {
			t.Fatal("max slope missing")
		}
	}
	if total != len(v.Result().Exceptions) {
		t.Fatalf("summary total = %d, want %d", total, len(v.Result().Exceptions))
	}
	// Coarsest-first: depths non-decreasing.
	for i := 1; i < len(sum); i++ {
		if depth(sum[i].Cuboid) < depth(sum[i-1].Cuboid) {
			t.Fatal("summary must be coarsest-first")
		}
	}
}

func TestViewWorksForPopularPath(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Spec: gen.Spec{Dims: 2, Levels: 2, Fanout: 3, Tuples: 300}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lattice := cube.NewLattice(ds.Schema)
	res, err := core.PopularPath(ds.Schema, ds.Inputs, exception.Global(ds.CalibrateThreshold(0.05)), lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(res)
	if len(v.TopExceptions(-1)) != len(res.Exceptions) {
		t.Fatal("popular-path view exception count")
	}
	obs := v.TopObservations(1)
	if len(obs) == 1 {
		_ = v.Supporters(obs[0].Key) // must not panic on subset results
	}
}

func TestDeterministicTieBreaks(t *testing.T) {
	// Two cells with identical slopes must order deterministically.
	h, _ := cube.NewFanoutHierarchy("A", 2, 1)
	s, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 1, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []core.Input{
		{Members: []int32{0}, Measure: regression.ISB{Tb: 0, Te: 9, Slope: 2}},
		{Members: []int32{1}, Measure: regression.ISB{Tb: 0, Te: 9, Slope: 2}},
	}
	res, err := core.MOCubing(s, inputs, exception.Global(1))
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(res)
	for i := 0; i < 5; i++ {
		top := v.TopExceptions(-1)
		if len(top) != 2 || top[0].Key.Members[0] != 0 || top[1].Key.Members[0] != 1 {
			t.Fatalf("unstable ordering: %v", top)
		}
	}
}
