package query

import (
	"errors"
	"math"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/tilt"
)

var execTiltChain = []tilt.Level{
	{Name: "quarter", Multiple: 1, Slots: 3},
	{Name: "hour", Multiple: 3, Slots: 4},
	{Name: "day", Multiple: 2, Slots: 2},
}

// TestForecastValidation sweeps the new kinds' parameter rules: each bad
// request fails with the right sentinel before touching the snapshot.
func TestForecastValidation(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"forecast negative k", ForecastRequest{CellRef: OCell(0, 0), K: -1, Horizon: 5}, ErrInvalid},
		{"forecast zero horizon", ForecastRequest{CellRef: OCell(0, 0)}, ErrInvalid},
		{"forecast negative horizon", ForecastRequest{CellRef: OCell(0, 0), Horizon: -4}, ErrInvalid},
		{"forecast nan threshold", ForecastRequest{CellRef: OCell(0, 0), Horizon: 5, Threshold: &nan}, ErrInvalid},
		{"forecast inf threshold", ForecastRequest{CellRef: OCell(0, 0), Horizon: 5, Threshold: &inf}, ErrInvalid},
		{"forecast bad cell", ForecastRequest{CellRef: OCell(9, 9), Horizon: 5}, ErrCell},
		{"forecast missing members", ForecastRequest{Horizon: 5}, ErrCell},
		{"changes negative k", ChangesRequest{K: -1}, ErrInvalid},
		{"changes score below range", ChangesRequest{MinScore: -0.1}, ErrInvalid},
		{"changes score above range", ChangesRequest{MinScore: 1.5}, ErrInvalid},
		{"changes nan score", ChangesRequest{MinScore: nan}, ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ex.Execute(tc.req)
			if resp != nil {
				t.Fatalf("Execute returned a response alongside the expected error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Execute err = %v, want %v", err, tc.want)
			}
			if st := HTTPStatus(err); st != http.StatusBadRequest {
				t.Fatalf("HTTPStatus = %d, want 400", st)
			}
		})
	}
}

// TestForecastExecute: the fixture's values rise linearly per tick, so
// the model fits near-perfectly and a high threshold is forecast to
// breach.
func TestForecastExecute(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	threshold := 1000.0
	resp, err := ex.Execute(ForecastRequest{CellRef: OCell(0, 0), Horizon: 8, Threshold: &threshold})
	if err != nil {
		t.Fatal(err)
	}
	f := resp.(*ForecastResponse)
	if f.K != 3 || f.History != 3 {
		t.Fatalf("window/history = %d/%d, want 3/3", f.K, f.History)
	}
	if f.Now != 11 || f.Horizon != 8 {
		t.Fatalf("now/horizon = %d/%d, want 11/8", f.Now, f.Horizon)
	}
	if f.R2 < 0.999 {
		t.Fatalf("linear fixture R2 = %g, want ~1", f.R2)
	}
	if f.Predicted <= f.Cell.ISB.Base+f.Cell.ISB.Slope*float64(f.Now) {
		t.Fatalf("prediction %g did not extrapolate a rising slope", f.Predicted)
	}
	if f.TicksToThreshold == nil || *f.TicksToThreshold <= 0 {
		t.Fatalf("rising cell below threshold: ticksToThreshold = %v, want > 0", f.TicksToThreshold)
	}
	if f.WillBreach {
		t.Fatalf("threshold %g is far beyond an 8-tick horizon, willBreach should be false", threshold)
	}

	// Explicit window smaller than history.
	resp, err = ex.Execute(&ForecastRequest{CellRef: OCell(0, 0), K: 2, Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	if f := resp.(*ForecastResponse); f.K != 2 || f.History != 3 || f.Threshold != nil || f.TicksToThreshold != nil {
		t.Fatalf("k=2 forecast = %+v", f)
	}

	// Over-long windows are 404, mirroring trend.
	if _, err := ex.Execute(ForecastRequest{CellRef: OCell(0, 0), K: 99, Horizon: 8}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("over-long window err = %v, want ErrNotFound", err)
	}
}

// TestChangesExecute: tilted fixtures score cells, flat ones answer a
// structurally empty (not error) response — the load generator hits this
// endpoint against any engine.
func TestChangesExecute(t *testing.T) {
	flat := execTestExecutor(t, 3, nil)
	resp, err := flat.Execute(ChangesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	c := resp.(*ChangesResponse)
	if c.Tilted || c.Count != 0 || c.Cells == nil || len(c.Cells) != 0 {
		t.Fatalf("flat changes = %+v, want tilted=false, empty cells", c)
	}

	tex := execTestExecutor(t, 13, execTiltChain)
	resp, err = tex.Execute(&ChangesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	c = resp.(*ChangesResponse)
	if !c.Tilted {
		t.Fatal("tilted engine reported tilted=false")
	}
	if c.Count != 4 || len(c.Cells) != 4 {
		t.Fatalf("scored %d/%d cells, want all 4 o-cells", c.Count, len(c.Cells))
	}
	for i := 1; i < len(c.Cells); i++ {
		if c.Cells[i].Score > c.Cells[i-1].Score {
			t.Fatalf("cells not score-descending at %d", i)
		}
	}

	// K truncates, Count keeps the pre-truncation total.
	resp, err = tex.Execute(ChangesRequest{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	top := resp.(*ChangesResponse)
	if top.Count != 4 || len(top.Cells) != 2 || !reflect.DeepEqual(top.Cells, c.Cells[:2]) {
		t.Fatalf("k=2 changes = count %d, %d cells", top.Count, len(top.Cells))
	}

	// MinScore filters: 1.0 keeps only full divergence (none in the
	// steady fixture).
	resp, err = tex.Execute(ChangesRequest{MinScore: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hi := resp.(*ChangesResponse); hi.Count != 0 || len(hi.Cells) != 0 {
		t.Fatalf("minScore=1 changes = %+v, want none", hi)
	}
}

// TestForecastEnvelopeRoundTrip pins the wire form of the new kinds
// through the envelope union, threshold pointer included.
func TestForecastEnvelopeRoundTrip(t *testing.T) {
	threshold := 42.5
	reqs := []Request{
		ForecastRequest{CellRef: OCell(1, 0), Horizon: 30},
		ForecastRequest{CellRef: Cell([]int{1, 1}, []int32{0, 1}), K: 4, Horizon: 7, Threshold: &threshold},
		ChangesRequest{},
		ChangesRequest{K: 5, MinScore: 0.25},
	}
	for _, req := range reqs {
		env := Envelope{Request: req}
		data, err := env.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Envelope
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(back.Request, req) {
			t.Fatalf("round trip %s:\n got %+v\nwant %+v", data, back.Request, req)
		}
	}
}

// TestForecastBatch: the new kinds ride POST /v1/query batches next to
// the existing ones, and DecodeResponse restores their types.
func TestForecastBatch(t *testing.T) {
	ex := execTestExecutor(t, 13, execTiltChain)
	threshold := 1e6
	batch := ex.ExecuteBatch(Wrap(
		ForecastRequest{CellRef: OCell(0, 0), Horizon: 12, Threshold: &threshold},
		ChangesRequest{K: 3},
		ForecastRequest{CellRef: OCell(0, 0)}, // invalid: no horizon
	))
	if !batch.Results[0].OK || !batch.Results[1].OK {
		t.Fatalf("valid requests failed: %+v", batch.Results[:2])
	}
	if batch.Results[2].OK || batch.Results[2].Status != http.StatusBadRequest {
		t.Fatalf("missing horizon: %+v, want 400", batch.Results[2])
	}
	r0, err := batch.Results[0].Decode(KindForecast)
	if err != nil {
		t.Fatal(err)
	}
	if f := r0.(*ForecastResponse); f.Horizon != 12 || f.Threshold == nil || *f.Threshold != threshold {
		t.Fatalf("decoded forecast = %+v", f)
	}
	r1, err := batch.Results[1].Decode(KindChanges)
	if err != nil {
		t.Fatal(err)
	}
	if c := r1.(*ChangesResponse); !c.Tilted || len(c.Cells) > 3 {
		t.Fatalf("decoded changes = %+v", c)
	}
}
