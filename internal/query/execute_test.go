package query

import (
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/stream"
	"repro/internal/tilt"
)

// execSchema is D2, fanout 2, m-level 2 (4×4 m-cells), o-level 1 (2×2
// o-cells) — the same fixture shape internal/serve tests use.
func execSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// execSnapshot ingests `units` full units and returns the published
// snapshot (rising values, so exceptions and alerts exist).
func execSnapshot(t testing.TB, units int, tiltLevels []tilt.Level) (*stream.Snapshot, *cube.Schema) {
	t.Helper()
	schema := execSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
		TiltLevels:       tiltLevels,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := int64(0); tick < int64(4*units); tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick)*float64(a+2*b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Ingest([]int32{0, 0}, int64(4*units), 0); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	return snap, schema
}

func execTestExecutor(t testing.TB, units int, tiltLevels []tilt.Level) *Executor {
	t.Helper()
	snap, schema := execSnapshot(t, units, tiltLevels)
	ex, err := NewExecutor(schema, snap)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestExecuteValidation sweeps every request kind against invalid limits,
// cells, levels, and members: each must fail with the right sentinel and
// never reach the snapshot.
func TestExecuteValidation(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"exceptions negative k", ExceptionsRequest{K: -1}, ErrInvalid},
		{"exceptions bad order", ExceptionsRequest{Order: "bogus"}, ErrInvalid},
		{"supporters negative k", SupportersRequest{CellRef: OCell(0, 0), K: -2}, ErrInvalid},
		{"supporters bad member", SupportersRequest{CellRef: OCell(9, 9)}, ErrCell},
		{"supporters wrong arity", SupportersRequest{CellRef: OCell(0)}, ErrCell},
		{"supporters missing members", SupportersRequest{}, ErrCell},
		{"supporters above o-layer", SupportersRequest{CellRef: Cell([]int{0, 0}, []int32{0, 0})}, ErrCell},
		{"slice negative k", SliceRequest{Dim: 0, Level: 1, Member: 0, K: -1}, ErrInvalid},
		{"slice dim high", SliceRequest{Dim: 5, Member: 0}, ErrInvalid},
		{"slice dim negative", SliceRequest{Dim: -1, Member: 0}, ErrInvalid},
		{"slice level high", SliceRequest{Dim: 0, Level: 9, Member: 0}, ErrInvalid},
		{"slice level negative", SliceRequest{Dim: 0, Level: -1, Member: 0}, ErrInvalid},
		{"slice member high", SliceRequest{Dim: 0, Level: 1, Member: 99}, ErrInvalid},
		{"slice member negative", SliceRequest{Dim: 0, Level: 1, Member: -1}, ErrInvalid},
		{"trend negative k", TrendRequest{CellRef: OCell(0, 0), K: -3}, ErrInvalid},
		{"trend negative level", TrendRequest{CellRef: OCell(0, 0), Level: -1}, ErrInvalid},
		{"trend bad cell", TrendRequest{CellRef: OCell(4, 0)}, ErrCell},
		{"trend level on flat engine", TrendRequest{CellRef: OCell(0, 0), Level: 1}, ErrInvalid},
		{"frame bad cell", FrameRequest{CellRef: OCell(-1, 0)}, ErrCell},
		{"frame bad levels", FrameRequest{CellRef: Cell([]int{0, 9}, []int32{0, 0})}, ErrCell},
		{"nil request", nil, ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ex.Execute(tc.req)
			if resp != nil {
				t.Fatalf("Execute returned a response alongside the expected error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Execute err = %v, want %v", err, tc.want)
			}
			// Every sentinel must map to a 4xx transport status.
			if st := HTTPStatus(err); st != http.StatusBadRequest {
				t.Fatalf("HTTPStatus = %d, want 400", st)
			}
		})
	}
}

// TestExecuteNotFound covers the well-formed-but-absent cases: over-long
// trends and unknown frames map to ErrNotFound (404), distinct from
// validation failures.
func TestExecuteNotFound(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	if _, err := ex.Execute(TrendRequest{CellRef: OCell(0, 0), K: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("over-long trend err = %v, want ErrNotFound", err)
	}
	tex := execTestExecutor(t, 13, []tilt.Level{
		{Name: "quarter", Multiple: 1, Slots: 3},
		{Name: "hour", Multiple: 3, Slots: 4},
	})
	if _, err := tex.Execute(TrendRequest{CellRef: OCell(0, 0), K: 99, Level: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("over-long hour trend err = %v, want ErrNotFound", err)
	}
	if _, err := tex.Execute(TrendRequest{CellRef: OCell(0, 0), K: 1, Level: 9}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("out-of-range level err = %v, want ErrInvalid", err)
	}
	if st := HTTPStatus(errNotFoundProbe(tex)); st != http.StatusNotFound {
		t.Fatalf("HTTPStatus(not-found) = %d, want 404", st)
	}
}

func errNotFoundProbe(ex *Executor) error {
	_, err := ex.Execute(TrendRequest{CellRef: OCell(0, 0), K: 99})
	return err
}

// TestExecuteMatchesView asserts the dispatcher answers from the same
// navigation state a direct View walk produces.
func TestExecuteMatchesView(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	snap := ex.Snapshot()
	v := NewView(snap.Result)

	resp, err := ex.Execute(ExceptionsRequest{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cells := resp.(*CellsResponse)
	if cells.Count != len(snap.Result.Exceptions) || len(cells.Cells) != 5 {
		t.Fatalf("exceptions = count %d, %d cells", cells.Count, len(cells.Cells))
	}
	want := v.TopExceptions(5)
	for i, c := range cells.Cells {
		if c.ISB.Slope != want[i].ISB.Slope {
			t.Fatalf("cell %d slope %g, want %g", i, c.ISB.Slope, want[i].ISB.Slope)
		}
	}

	// K=0 returns the complete set on every truncating kind.
	resp, err = ex.Execute(ExceptionsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(*CellsResponse); len(got.Cells) != got.Count {
		t.Fatalf("K=0 truncated: %d of %d", len(got.Cells), got.Count)
	}

	sresp, err := ex.Execute(SupportersRequest{CellRef: OCell(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	sup := sresp.(*SupportersResponse)
	oCell := cube.NewCellKey(cube.MustCuboid(1, 1), 1, 1)
	if wantSup := v.Supporters(oCell); sup.Count != len(wantSup) || !sup.Retained {
		t.Fatalf("supporters = %+v, want %d retained", sup, len(wantSup))
	}

	slresp, err := ex.Execute(SliceRequest{Dim: 0, Level: 1, Member: 1})
	if err != nil {
		t.Fatal(err)
	}
	sl := slresp.(*CellsResponse)
	if wantSl := v.Slice(0, 1, 1); sl.Count != len(wantSl) {
		t.Fatalf("slice count %d, want %d", sl.Count, len(wantSl))
	}

	tresp, err := ex.Execute(TrendRequest{CellRef: OCell(0, 0), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := tresp.(*TrendResponse)
	wantISB, err := snap.TrendQuery(oCellKey(0, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cell.ISB.Slope != wantISB.Slope || len(tr.Points) != 3 {
		t.Fatalf("trend = %+v, want slope %g over 3 points", tr, wantISB.Slope)
	}

	// Pointer and value forms dispatch identically.
	presp, err := ex.Execute(&TrendRequest{CellRef: OCell(0, 0), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(presp, tresp) {
		t.Fatalf("pointer dispatch differs: %+v vs %+v", presp, tresp)
	}
}

func oCellKey(a, b int32) cube.CellKey {
	return cube.NewCellKey(cube.MustCuboid(1, 1), a, b)
}

// TestExecutorUnavailable pins the no-snapshot sentinel.
func TestExecutorUnavailable(t *testing.T) {
	if _, err := NewExecutor(execSchema(t), nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("NewExecutor(nil) err = %v, want ErrUnavailable", err)
	}
	if st := HTTPStatus(ErrUnavailable); st != http.StatusServiceUnavailable {
		t.Fatalf("HTTPStatus(ErrUnavailable) = %d, want 503", st)
	}
}

// TestRequestJSONRoundTrip marshals every request kind through its
// envelope and back: the decoded request must equal the original, so the
// batch wire format is lossless.
func TestRequestJSONRoundTrip(t *testing.T) {
	reqs := []Request{
		SummaryRequest{},
		ExceptionsRequest{K: 7, Order: OrderKey},
		ExceptionsRequest{},
		AlertsRequest{},
		SupportersRequest{CellRef: OCell(1, 0), K: 3},
		SupportersRequest{CellRef: Cell([]int{1, 2}, []int32{0, 3})},
		SliceRequest{Dim: 1, Level: 2, Member: 3, K: 2},
		TrendRequest{CellRef: OCell(0, 1), K: 4, Level: 1},
		FrameRequest{CellRef: OCell(0, 0)},
	}
	for _, req := range reqs {
		b, err := json.Marshal(Envelope{Request: req})
		if err != nil {
			t.Fatalf("marshal %T: %v", req, err)
		}
		var e Envelope
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !reflect.DeepEqual(e.Request, req) {
			t.Fatalf("round trip of %s: %#v != %#v", b, e.Request, req)
		}
		// The discriminator is flattened next to the request fields.
		var probe map[string]any
		if err := json.Unmarshal(b, &probe); err != nil {
			t.Fatal(err)
		}
		if probe["kind"] != string(req.Kind()) {
			t.Fatalf("wire form %s carries kind %v, want %s", b, probe["kind"], req.Kind())
		}
	}

	for _, bad := range []string{
		`{"k":3}`,                     // missing kind
		`{"kind":"nope"}`,             // unknown kind
		`{"kind":"trend","k":"five"}`, // mistyped field
	} {
		var e Envelope
		if err := json.Unmarshal([]byte(bad), &e); err == nil {
			t.Fatalf("unmarshal %s succeeded, want error", bad)
		}
	}
}

// TestExecuteBatch mixes valid and invalid sub-requests: results come
// back in order, each with its own status, and the batch itself reports
// the snapshot's unit.
func TestExecuteBatch(t *testing.T) {
	ex := execTestExecutor(t, 3, nil)
	batch := ex.ExecuteBatch(Wrap(
		SummaryRequest{},
		ExceptionsRequest{K: 2},
		SupportersRequest{CellRef: OCell(9, 9)},   // invalid member
		TrendRequest{CellRef: OCell(0, 0), K: 99}, // more units than recorded
		AlertsRequest{},
	))
	if batch.Unit != ex.Snapshot().Unit || batch.UnitsDone != ex.Snapshot().UnitsDone {
		t.Fatalf("batch header = %+v", batch)
	}
	if len(batch.Results) != 5 {
		t.Fatalf("batch has %d results, want 5", len(batch.Results))
	}
	wantOK := []bool{true, true, false, false, true}
	wantStatus := []int{0, 0, http.StatusBadRequest, http.StatusNotFound, 0}
	for i, res := range batch.Results {
		if res.OK != wantOK[i] || res.Status != wantStatus[i] {
			t.Fatalf("result %d = ok=%v status=%d, want ok=%v status=%d",
				i, res.OK, res.Status, wantOK[i], wantStatus[i])
		}
	}
	// Typed decode of a success and sentinel mapping of a failure.
	resp, err := batch.Results[1].Decode(KindExceptions)
	if err != nil {
		t.Fatal(err)
	}
	if cells := resp.(*CellsResponse); len(cells.Cells) != 2 {
		t.Fatalf("decoded exceptions = %+v", cells)
	}
	if _, err := batch.Results[2].Decode(KindSupporters); !errors.Is(err, ErrInvalid) {
		t.Fatalf("decoded invalid result err = %v, want ErrInvalid", err)
	}
	if _, err := batch.Results[3].Decode(KindTrend); !errors.Is(err, ErrNotFound) {
		t.Fatalf("decoded missing result err = %v, want ErrNotFound", err)
	}
}

// TestExecuteEmptyUnit runs every kind against a snapshot whose unit
// closed with no data: per-cell kinds answer empty rather than erroring,
// exactly like the pre-v2 handlers.
func TestExecuteEmptyUnit(t *testing.T) {
	schema := execSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0 has data; tick 8 closes units 0 and 1, so the latest
	// published snapshot is the empty unit 1.
	for tick := int64(0); tick < 4; tick++ {
		if _, err := eng.Ingest([]int32{0, 0}, tick, float64(tick)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Ingest([]int32{0, 0}, 8, 1); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if snap == nil || snap.Result != nil {
		t.Fatalf("want an empty-unit snapshot, got %+v", snap)
	}
	ex, err := NewExecutor(schema, snap)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ex.Execute(SummaryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if s := sum.(*SummaryResponse); !s.Empty || s.Stats != nil || len(s.Cuboids) != 0 {
		t.Fatalf("empty-unit summary = %+v", s)
	}
	for _, req := range []Request{
		ExceptionsRequest{K: 5},
		AlertsRequest{},
		SupportersRequest{CellRef: OCell(0, 0)},
		SliceRequest{Dim: 0, Level: 1, Member: 0},
	} {
		if _, err := ex.Execute(req); err != nil {
			t.Fatalf("%T on empty unit: %v", req, err)
		}
	}
}
