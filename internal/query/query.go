// Package query provides the analyst-side navigation over cubing results:
// ranked exception lists, drill-down from an o-layer cell to its
// "exception supporters" (§4.3), slicing by dimension members, and
// per-cuboid summaries. It operates purely on retained cells — the same
// information the paper's framework keeps in memory.
package query

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cube"
)

// ErrCell is returned for cell coordinates that do not name a valid cell
// between the schema's critical layers.
var ErrCell = errors.New("query: invalid cell")

// MakeCellKey validates externally supplied cell coordinates — one level
// and one member per dimension, as a serving layer receives them — against
// the schema and assembles the CellKey. Levels must lie between the
// dimension's o- and m-levels (the retained band) and members must be
// within the level's cardinality.
func MakeCellKey(s *cube.Schema, levels []int, members []int32) (cube.CellKey, error) {
	if len(levels) != len(s.Dims) || len(members) != len(s.Dims) {
		return cube.CellKey{}, fmt.Errorf("%w: got %d levels and %d members for %d dimensions",
			ErrCell, len(levels), len(members), len(s.Dims))
	}
	for d, dim := range s.Dims {
		if levels[d] < dim.OLevel || levels[d] > dim.MLevel {
			return cube.CellKey{}, fmt.Errorf("%w: dimension %s level %d outside retained band [%d,%d]",
				ErrCell, dim.Name, levels[d], dim.OLevel, dim.MLevel)
		}
		if card := dim.Hierarchy.Cardinality(levels[d]); members[d] < 0 || int(members[d]) >= card {
			return cube.CellKey{}, fmt.Errorf("%w: dimension %s member %d outside [0,%d) at level %d",
				ErrCell, dim.Name, members[d], card, levels[d])
		}
	}
	cb, err := cube.NewCuboid(levels...)
	if err != nil {
		return cube.CellKey{}, fmt.Errorf("%w: %v", ErrCell, err)
	}
	return cube.NewCellKey(cb, members...), nil
}

// View wraps a cubing result for navigation. Results from any engine
// (m/o-cubing, popular-path, BUC, array) work identically.
type View struct {
	res     *core.Result
	lattice *cube.Lattice
}

// NewView builds a navigation view over a result.
func NewView(res *core.Result) *View {
	return &View{res: res, lattice: cube.NewLattice(res.Schema)}
}

// Result returns the underlying result.
func (v *View) Result() *core.Result { return v.res }

// sortCells orders by |slope| descending, breaking ties by cell identity
// so output is deterministic.
func sortCells(cells []core.Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := math.Abs(cells[i].ISB.Slope), math.Abs(cells[j].ISB.Slope)
		if a != b {
			return a > b
		}
		return lessKey(cells[i].Key, cells[j].Key)
	})
}

func lessKey(a, b cube.CellKey) bool {
	for d := 0; d < a.Cuboid.NumDims(); d++ {
		if a.Cuboid.Level(d) != b.Cuboid.Level(d) {
			return a.Cuboid.Level(d) < b.Cuboid.Level(d)
		}
	}
	for d := 0; d < a.Cuboid.NumDims(); d++ {
		if a.Members[d] != b.Members[d] {
			return a.Members[d] < b.Members[d]
		}
	}
	return false
}

// TopExceptions returns the k steepest retained exception cells across all
// cuboids.
func (v *View) TopExceptions(k int) []core.Cell {
	cells := make([]core.Cell, 0, len(v.res.Exceptions))
	for key, isb := range v.res.Exceptions {
		cells = append(cells, core.Cell{Key: key, ISB: isb})
	}
	sortCells(cells)
	if k >= 0 && k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

// TopObservations returns the k steepest o-layer cells — the observation
// deck ranking an analyst watches.
func (v *View) TopObservations(k int) []core.Cell {
	cells := make([]core.Cell, 0, len(v.res.OLayer))
	for key, isb := range v.res.OLayer {
		cells = append(cells, core.Cell{Key: key, ISB: isb})
	}
	sortCells(cells)
	if k >= 0 && k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

// Supporters returns every retained exception cell that rolls up to the
// given cell — the descendants an analyst drills into, coarsest cuboids
// first, steepest first within a cuboid.
func (v *View) Supporters(cell cube.CellKey) []core.Cell {
	var out []core.Cell
	for key, isb := range v.res.Exceptions {
		if key == cell {
			continue
		}
		if !cell.Cuboid.DominatedBy(key.Cuboid) {
			continue
		}
		up, err := cube.RollUpKey(v.res.Schema, key, cell.Cuboid)
		if err != nil || up != cell {
			continue
		}
		out = append(out, core.Cell{Key: key, ISB: isb})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := depth(out[i].Key.Cuboid), depth(out[j].Key.Cuboid)
		if di != dj {
			return di < dj
		}
		a, b := math.Abs(out[i].ISB.Slope), math.Abs(out[j].ISB.Slope)
		if a != b {
			return a > b
		}
		return lessKey(out[i].Key, out[j].Key)
	})
	return out
}

func depth(c cube.Cuboid) int {
	d := 0
	for i := 0; i < c.NumDims(); i++ {
		d += c.Level(i)
	}
	return d
}

// ExceptionChildren returns the retained exception cells in the immediate
// child cuboids of the given cell's cuboid that descend from it — one
// drill step.
func (v *View) ExceptionChildren(cell cube.CellKey) []core.Cell {
	var out []core.Cell
	for _, childCuboid := range v.lattice.Children(cell.Cuboid) {
		for key, isb := range v.res.Exceptions {
			if key.Cuboid != childCuboid {
				continue
			}
			up, err := cube.RollUpKey(v.res.Schema, key, cell.Cuboid)
			if err != nil || up != cell {
				continue
			}
			out = append(out, core.Cell{Key: key, ISB: isb})
		}
	}
	sortCells(out)
	return out
}

// Slice returns retained exception cells whose ancestor on dimension d at
// the given level equals member — e.g. "all exceptions inside
// north-district". Cells whose cuboid is coarser than the slicing level on
// d are excluded (their member does not determine the slice).
func (v *View) Slice(d, level int, member int32) []core.Cell {
	var out []core.Cell
	h := v.res.Schema.Dims[d].Hierarchy
	for key, isb := range v.res.Exceptions {
		cellLevel := key.Cuboid.Level(d)
		if cellLevel < level {
			continue
		}
		if cube.Ancestor(h, cellLevel, level, key.Members[d]) != member {
			continue
		}
		out = append(out, core.Cell{Key: key, ISB: isb})
	}
	sortCells(out)
	return out
}

// CuboidSummary aggregates one cuboid's retained exceptions.
type CuboidSummary struct {
	Cuboid      cube.Cuboid
	Exceptions  int
	MaxAbsSlope float64
}

// Summary returns per-cuboid exception counts, coarsest cuboids first.
// Cuboids without retained exceptions are included with zero counts so the
// lattice shape stays visible.
func (v *View) Summary() []CuboidSummary {
	byCuboid := make(map[cube.Cuboid]*CuboidSummary)
	for _, c := range v.lattice.Cuboids() {
		byCuboid[c] = &CuboidSummary{Cuboid: c}
	}
	for key, isb := range v.res.Exceptions {
		s, ok := byCuboid[key.Cuboid]
		if !ok { // exception outside the lattice cannot happen; be safe
			s = &CuboidSummary{Cuboid: key.Cuboid}
			byCuboid[key.Cuboid] = s
		}
		s.Exceptions++
		if a := math.Abs(isb.Slope); a > s.MaxAbsSlope {
			s.MaxAbsSlope = a
		}
	}
	out := make([]CuboidSummary, 0, len(byCuboid))
	for _, c := range v.lattice.Cuboids() {
		out = append(out, *byCuboid[c])
	}
	return out
}
