package query

import (
	"encoding/json"
	"net/http"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/stream"
)

// Executor answers typed Requests from one published engine snapshot. It
// precomputes the navigation state every request kind shares — the
// drill-down View, both exception orderings, the per-cuboid summary — so
// repeated requests against one unit reuse the sorts instead of
// re-ranking the full exception set per request. An Executor is immutable
// after construction and safe for concurrent use; serving layers cache
// one per snapshot (see internal/serve).
type Executor struct {
	schema  *cube.Schema
	snap    *stream.Snapshot
	view    *View               // nil when the unit closed empty
	bySlope []core.Cell         // every exception, steepest first
	byKey   []core.Cell         // every exception, canonical key order
	cuboids []CuboidSummaryJSON // the per-cuboid rollup summaries serve
}

// NewExecutor builds the dispatcher over a snapshot. A nil snapshot
// (nothing published yet) is ErrUnavailable; a snapshot whose unit closed
// empty is fine — per-cell requests just answer empty.
func NewExecutor(schema *cube.Schema, snap *stream.Snapshot) (*Executor, error) {
	if snap == nil {
		return nil, ErrUnavailable
	}
	e := &Executor{schema: schema, snap: snap}
	if !snap.Empty() {
		e.view = NewView(snap.Result)
		e.bySlope = e.view.TopExceptions(-1)
		e.byKey = snap.Result.ExceptionCells()
		for _, cs := range e.view.Summary() {
			levels := make([]int, cs.Cuboid.NumDims())
			for d := range levels {
				levels[d] = cs.Cuboid.Level(d)
			}
			e.cuboids = append(e.cuboids, CuboidSummaryJSON{
				Levels:      levels,
				Name:        cs.Cuboid.Describe(schema),
				Exceptions:  cs.Exceptions,
				MaxAbsSlope: cs.MaxAbsSlope,
			})
		}
	}
	return e, nil
}

// Snapshot returns the snapshot this executor answers from — serving
// layers key their executor cache on it.
func (e *Executor) Snapshot() *stream.Snapshot { return e.snap }

// Schema returns the schema requests are validated against.
func (e *Executor) Schema() *cube.Schema { return e.schema }

// Execute validates and runs one request, dispatching on its concrete
// type. Both value and pointer forms of the request types are accepted.
// Errors wrap ErrInvalid/ErrCell (bad request) or ErrNotFound (the
// snapshot does not hold the target).
func (e *Executor) Execute(req Request) (Response, error) {
	if req == nil {
		return nil, invalidf("nil request")
	}
	if err := req.Validate(e.schema); err != nil {
		return nil, err
	}
	// Cell-addressed kinds resolve their key exactly once here; Validate
	// above already proved it resolves, so helpers just consume it.
	switch r := req.(type) {
	case SummaryRequest:
		return e.summary(), nil
	case *SummaryRequest:
		return e.summary(), nil
	case ExceptionsRequest:
		return e.exceptions(r), nil
	case *ExceptionsRequest:
		return e.exceptions(*r), nil
	case AlertsRequest:
		return e.alerts(), nil
	case *AlertsRequest:
		return e.alerts(), nil
	case SupportersRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.supporters(r, key) })
	case *SupportersRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.supporters(*r, key) })
	case SliceRequest:
		return e.slice(r), nil
	case *SliceRequest:
		return e.slice(*r), nil
	case TrendRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.trend(r, key) })
	case *TrendRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.trend(*r, key) })
	case FrameRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.frame(key) })
	case *FrameRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.frame(key) })
	case ForecastRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.forecast(r, key) })
	case *ForecastRequest:
		return e.dispatchCell(r.CellRef, func(key cube.CellKey) (Response, error) { return e.forecast(*r, key) })
	case ChangesRequest:
		return e.changes(r), nil
	case *ChangesRequest:
		return e.changes(*r), nil
	default:
		return nil, invalidf("unsupported request type %T", req)
	}
}

// dispatchCell resolves a cell reference once and runs the kind's
// handler with the key.
func (e *Executor) dispatchCell(ref CellRef, fn func(key cube.CellKey) (Response, error)) (Response, error) {
	key, err := ref.Resolve(e.schema)
	if err != nil {
		return nil, err
	}
	return fn(key)
}

// ExecuteBatch runs every enveloped request against this executor's one
// snapshot and collects per-request results — the body of POST /v1/query.
// Request errors never fail the batch; they land in the matching result
// with the status the request would have received standalone.
func (e *Executor) ExecuteBatch(queries []Envelope) *BatchResponse {
	resp := &BatchResponse{
		Unit:      e.snap.Unit,
		UnitsDone: e.snap.UnitsDone,
		Results:   make([]BatchResult, len(queries)),
	}
	for i, q := range queries {
		res, err := e.Execute(q.Request)
		if err != nil {
			resp.Results[i] = BatchResult{Status: HTTPStatus(err), Error: ErrorMessage(err)}
			continue
		}
		raw, err := json.Marshal(res)
		if err != nil {
			resp.Results[i] = BatchResult{Status: http.StatusInternalServerError, Error: err.Error()}
			continue
		}
		resp.Results[i] = BatchResult{OK: true, Result: raw}
	}
	return resp
}

func (e *Executor) summary() *SummaryResponse {
	snap := e.snap
	resp := &SummaryResponse{
		Unit:      snap.Unit,
		UnitsDone: snap.UnitsDone,
		Interval:  encodeInterval(snap.Interval),
		Empty:     snap.Empty(),
		Alerts:    len(snap.Alerts),
		Cuboids:   []CuboidSummaryJSON{},
	}
	if e.view != nil {
		res := snap.Result
		resp.OCells = len(res.OLayer)
		resp.Exceptions = len(res.Exceptions)
		resp.Stats = &StatsJSON{
			Algorithm:       res.Stats.Algorithm,
			Tuples:          res.Stats.Tuples,
			TreeNodes:       res.Stats.TreeNodes,
			CuboidsComputed: res.Stats.CuboidsComputed,
			CellsComputed:   res.Stats.CellsComputed,
			CellsRetained:   res.Stats.CellsRetained,
			BytesRetained:   res.Stats.BytesRetained,
			BuildNanos:      res.Stats.BuildTime.Nanoseconds(),
			CubeNanos:       res.Stats.CubeTime.Nanoseconds(),
		}
		resp.Cuboids = e.cuboids
	}
	return resp
}

func (e *Executor) exceptions(r ExceptionsRequest) *CellsResponse {
	resp := &CellsResponse{
		Unit:     e.snap.Unit,
		Interval: encodeInterval(e.snap.Interval),
		Cells:    []CellJSON{},
	}
	if e.view != nil {
		resp.Count = len(e.snap.Result.Exceptions)
		cells := e.bySlope
		if r.Order == OrderKey {
			cells = e.byKey
		}
		if r.K > 0 && r.K < len(cells) {
			cells = cells[:r.K]
		}
		resp.Cells = encodeCells(e.schema, cells)
	}
	return resp
}

func (e *Executor) alerts() *AlertsResponse {
	resp := &AlertsResponse{
		Unit:     e.snap.Unit,
		Interval: encodeInterval(e.snap.Interval),
		Alerts:   []AlertJSON{},
	}
	for _, a := range e.snap.Alerts {
		resp.Alerts = append(resp.Alerts, encodeAlert(e.schema, a))
	}
	return resp
}

func (e *Executor) supporters(r SupportersRequest, key cube.CellKey) (Response, error) {
	resp := &SupportersResponse{Unit: e.snap.Unit, Supporters: []CellJSON{}}
	resp.Cell.Levels, resp.Cell.Members = encodeKey(key)
	resp.Cell.Name = key.Describe(e.schema)
	if e.view != nil {
		res := e.snap.Result
		if isb, ok := res.OLayer[key]; ok {
			resp.Retained = true
			j := encodeISB(isb)
			resp.Cell.ISB = &j
		} else if isb, ok := res.Exceptions[key]; ok {
			resp.Retained = true
			j := encodeISB(isb)
			resp.Cell.ISB = &j
		}
		sup := e.view.Supporters(key)
		resp.Count = len(sup)
		if r.K > 0 && r.K < len(sup) {
			sup = sup[:r.K]
		}
		resp.Supporters = encodeCells(e.schema, sup)
	}
	return resp, nil
}

func (e *Executor) slice(r SliceRequest) *CellsResponse {
	resp := &CellsResponse{
		Unit:     e.snap.Unit,
		Interval: encodeInterval(e.snap.Interval),
		Cells:    []CellJSON{},
	}
	if e.view != nil {
		cells := e.view.Slice(r.Dim, r.Level, r.Member)
		resp.Count = len(cells)
		if r.K > 0 && r.K < len(cells) {
			cells = cells[:r.K]
		}
		resp.Cells = encodeCells(e.schema, cells)
	}
	return resp
}

func (e *Executor) trend(r TrendRequest, key cube.CellKey) (Response, error) {
	k := r.K
	if k == 0 {
		k = 1
	}
	snap := e.snap
	resp := &TrendResponse{Unit: snap.Unit, K: k, Points: []HistoryPointJSON{}}
	if r.Level == 0 {
		have := snap.HistoryLen(key)
		if k > have {
			return nil, notFoundf("trend for %s: %d units requested, %d recorded",
				key.Describe(e.schema), k, have)
		}
		isb, terr := snap.TrendQuery(key, k)
		if terr != nil {
			// The remaining failure is a history gap; surface the real cause.
			return nil, notFoundf("trend for %s: %v", key.Describe(e.schema), terr)
		}
		resp.Cell = encodeCell(e.schema, core.Cell{Key: key, ISB: isb})
		resp.History = have
		tail := snap.HistoryOf(key)
		tail = tail[len(tail)-k:]
		for _, pt := range tail {
			resp.Points = append(resp.Points, HistoryPointJSON{Unit: pt.Unit, ISB: encodeISB(pt.ISB)})
		}
		return resp, nil
	}
	// Coarser levels are answered from the published tilt frames.
	if snap.Frames == nil {
		return nil, invalidf("parameter level: %d, but the engine keeps flat history (no tilt levels)", r.Level)
	}
	v := snap.FrameOf(key)
	if v == nil {
		return nil, notFoundf("trend for %s: no history", key.Describe(e.schema))
	}
	if r.Level >= len(v.Levels) {
		return nil, invalidf("parameter level: %d outside [0,%d)", r.Level, len(v.Levels))
	}
	lv := v.Levels[r.Level]
	if k > len(lv.Slots) {
		return nil, notFoundf("trend for %s: %d %s units requested, %d retained",
			key.Describe(e.schema), k, lv.Name, len(lv.Slots))
	}
	isb, terr := v.Query(r.Level, k)
	if terr != nil {
		return nil, notFoundf("trend for %s: %v", key.Describe(e.schema), terr)
	}
	resp.Cell = encodeCell(e.schema, core.Cell{Key: key, ISB: isb})
	resp.Level = lv.Name
	resp.History = len(lv.Slots)
	for _, sl := range lv.Slots[len(lv.Slots)-k:] {
		resp.Points = append(resp.Points, HistoryPointJSON{Unit: sl.Unit, ISB: encodeISB(sl.ISB)})
	}
	return resp, nil
}

func (e *Executor) frame(key cube.CellKey) (Response, error) {
	snap := e.snap
	resp := &FrameResponse{Unit: snap.Unit, Levels: []FrameLevelJSON{}}
	resp.Cell.Levels, resp.Cell.Members = encodeKey(key)
	resp.Cell.Name = key.Describe(e.schema)
	if snap.Frames == nil {
		hist := snap.HistoryOf(key)
		lv := FrameLevelJSON{
			Name:      "unit",
			UnitTicks: snap.Interval.Te - snap.Interval.Tb + 1,
			Slots:     []HistoryPointJSON{},
		}
		for _, pt := range hist {
			lv.Slots = append(lv.Slots, HistoryPointJSON{Unit: pt.Unit, ISB: encodeISB(pt.ISB)})
		}
		if n := len(hist); n > 0 {
			lv.Completed = hist[n-1].Unit + 1
		}
		resp.SlotsInUse = len(hist)
		resp.Levels = append(resp.Levels, lv)
		return resp, nil
	}
	resp.Tilted = true
	v := snap.FrameOf(key)
	if v == nil {
		return nil, notFoundf("frame for %s: no history", key.Describe(e.schema))
	}
	resp.Base = v.Base
	for i, lv := range v.Levels {
		lj := FrameLevelJSON{
			Level:     i,
			Name:      lv.Name,
			UnitTicks: lv.UnitTicks,
			Capacity:  lv.Capacity,
			Completed: lv.Completed,
			Slots:     []HistoryPointJSON{},
		}
		for _, sl := range lv.Slots {
			lj.Slots = append(lj.Slots, HistoryPointJSON{Unit: sl.Unit, ISB: encodeISB(sl.ISB)})
		}
		resp.SlotsInUse += len(lj.Slots)
		resp.Levels = append(resp.Levels, lj)
	}
	return resp, nil
}
