package query

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
)

// FuzzEnvelopeJSON drives the wire-format union decoder with arbitrary
// JSON: every input must either fail decoding cleanly or produce an
// envelope that re-marshals and decodes to the same request — no panics,
// and no half-decoded envelopes with a nil Request escaping a nil error.
func FuzzEnvelopeJSON(f *testing.F) {
	// Seeds: every kind, flattened-field forms, and the classic failure
	// shapes (missing kind, unknown kind, wrong field types, non-objects).
	for _, s := range []string{
		`{"kind":"summary"}`,
		`{"kind":"exceptions","k":3,"order":"key"}`,
		`{"kind":"alerts"}`,
		`{"kind":"supporters","members":[0,1]}`,
		`{"kind":"slice","dim":1,"level":1,"member":2}`,
		`{"kind":"trend","members":[2,0],"k":4,"level":1}`,
		`{"kind":"frame","members":[0,0]}`,
		`{"kind":"frame","levels":[1,1],"members":[0,0]}`,
		`{}`,
		`{"kind":"bogus"}`,
		`{"kind":42}`,
		`{"kind":"trend","members":"zero"}`,
		`[]`,
		`null`,
		`"summary"`,
		`{"kind":"exceptions","k":99999999999999999999}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) { fuzzEnvelope(t, b) })
}

// FuzzForecastEnvelopeJSON narrows the union fuzz onto the predictive
// kinds and adds the execution seam: any forecast or changes envelope
// that decodes must validate with a typed error (ErrInvalid/ErrCell) or
// execute without panicking — non-finite thresholds, giant horizons, and
// truncated cell references included.
func FuzzForecastEnvelopeJSON(f *testing.F) {
	for _, s := range []string{
		`{"kind":"forecast","members":[0,0],"horizon":60}`,
		`{"kind":"forecast","members":[1,1],"k":2,"horizon":8,"threshold":120.5}`,
		`{"kind":"forecast","levels":[1,1],"members":[0,1],"horizon":1,"threshold":-3}`,
		`{"kind":"forecast","members":[0,0]}`,
		`{"kind":"forecast","members":[0,0],"horizon":-1}`,
		`{"kind":"forecast","members":[0],"horizon":5}`,
		`{"kind":"forecast","members":[9,9],"horizon":5}`,
		`{"kind":"forecast","members":[0,0],"horizon":9223372036854775807}`,
		`{"kind":"forecast","members":[0,0],"horizon":5,"threshold":1e400}`,
		`{"kind":"forecast","threshold":"high"}`,
		`{"kind":"changes"}`,
		`{"kind":"changes","k":5,"minScore":0.25}`,
		`{"kind":"changes","k":-1}`,
		`{"kind":"changes","minScore":2}`,
		`{"kind":"changes","minScore":-0.0001}`,
		`{"kind":"changes","minScore":null}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		env := fuzzEnvelope(t, b)
		if env == nil {
			return
		}
		switch env.Request.Kind() {
		case KindForecast, KindChanges:
		default:
			return
		}
		schema := execSchema(t)
		if err := env.Request.Validate(schema); err != nil {
			if !errors.Is(err, ErrInvalid) && !errors.Is(err, ErrCell) {
				t.Fatalf("Validate of %q returned untyped error %v", b, err)
			}
			return
		}
		// Valid requests must execute without panicking; any failure must
		// stay inside the sentinel taxonomy.
		ex := fuzzExecutor(t)
		if _, err := ex.Execute(env.Request); err != nil && HTTPStatus(err) == http.StatusInternalServerError {
			t.Fatalf("Execute of %q escaped the sentinels: %v", b, err)
		}
	})
}

// fuzzExec caches one executor for the fuzz workers — building the
// 13-unit tilted fixture per input would dominate the fuzz budget.
var (
	fuzzExecOnce sync.Once
	fuzzExec     *Executor
)

func fuzzExecutor(t *testing.T) *Executor {
	fuzzExecOnce.Do(func() {
		fuzzExec = execTestExecutor(t, 13, execTiltChain)
	})
	return fuzzExec
}

// fuzzEnvelope runs the shared union-decoder property: clean rejection,
// or a stable marshal/unmarshal round trip. Returns the decoded envelope
// (nil when the input was rejected).
func fuzzEnvelope(t *testing.T, b []byte) *Envelope {
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil // clean rejection is a correct outcome
	}
	if env.Request == nil {
		t.Fatalf("decode of %q succeeded with nil Request", b)
	}
	// A successfully decoded envelope must survive a marshal/unmarshal
	// round trip unchanged — the wire format is self-consistent.
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("re-marshal of %q failed: %v", b, err)
	}
	var env2 Envelope
	if err := json.Unmarshal(out, &env2); err != nil {
		t.Fatalf("re-decode of %s (from %q) failed: %v", out, b, err)
	}
	if env2.Request.Kind() != env.Request.Kind() {
		t.Fatalf("round trip changed kind %q -> %q", env.Request.Kind(), env2.Request.Kind())
	}
	out2, err := json.Marshal(env2)
	if err != nil {
		t.Fatalf("second marshal failed: %v", err)
	}
	if string(out) != string(out2) {
		t.Fatalf("marshal not stable: %s vs %s", out, out2)
	}
	return &env
}
