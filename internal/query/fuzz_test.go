package query

import (
	"encoding/json"
	"testing"
)

// FuzzEnvelopeJSON drives the wire-format union decoder with arbitrary
// JSON: every input must either fail decoding cleanly or produce an
// envelope that re-marshals and decodes to the same request — no panics,
// and no half-decoded envelopes with a nil Request escaping a nil error.
func FuzzEnvelopeJSON(f *testing.F) {
	// Seeds: every kind, flattened-field forms, and the classic failure
	// shapes (missing kind, unknown kind, wrong field types, non-objects).
	for _, s := range []string{
		`{"kind":"summary"}`,
		`{"kind":"exceptions","k":3,"order":"key"}`,
		`{"kind":"alerts"}`,
		`{"kind":"supporters","members":[0,1]}`,
		`{"kind":"slice","dim":1,"level":1,"member":2}`,
		`{"kind":"trend","members":[2,0],"k":4,"level":1}`,
		`{"kind":"frame","members":[0,0]}`,
		`{"kind":"frame","levels":[1,1],"members":[0,0]}`,
		`{}`,
		`{"kind":"bogus"}`,
		`{"kind":42}`,
		`{"kind":"trend","members":"zero"}`,
		`[]`,
		`null`,
		`"summary"`,
		`{"kind":"exceptions","k":99999999999999999999}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var env Envelope
		if err := json.Unmarshal(b, &env); err != nil {
			return // clean rejection is a correct outcome
		}
		if env.Request == nil {
			t.Fatalf("decode of %q succeeded with nil Request", b)
		}
		// A successfully decoded envelope must survive a marshal/unmarshal
		// round trip unchanged — the wire format is self-consistent.
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatalf("re-marshal of %q failed: %v", b, err)
		}
		var env2 Envelope
		if err := json.Unmarshal(out, &env2); err != nil {
			t.Fatalf("re-decode of %s (from %q) failed: %v", out, b, err)
		}
		if env2.Request.Kind() != env.Request.Kind() {
			t.Fatalf("round trip changed kind %q -> %q", env.Request.Kind(), env2.Request.Kind())
		}
		out2, err := json.Marshal(env2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("marshal not stable: %s vs %s", out, out2)
		}
	})
}
