package query

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/cube"
)

// The v2 query API models every analyst question as a typed, validated
// Request executed by Executor.Execute against one published snapshot.
// Transports are thin: the HTTP GET endpoints decode URL parameters into
// Requests, POST /v1/query carries a JSON batch of them, and the Go
// client (repro/client) builds them directly — all three run through the
// same dispatcher and validation.

// Sentinel errors Execute and Validate return; transports map them to
// status codes (and the client maps status codes back to them).
var (
	// ErrInvalid marks a request that can never succeed: bad limits,
	// out-of-range coordinates, unknown orders or kinds (HTTP 400).
	ErrInvalid = errors.New("query: invalid request")
	// ErrNotFound marks a well-formed request whose target the current
	// snapshot does not hold: unknown cells, over-long trends (HTTP 404).
	ErrNotFound = errors.New("query: not found")
	// ErrUnavailable is returned while no snapshot has been published yet
	// (HTTP 503).
	ErrUnavailable = errors.New("query: no completed unit yet")
)

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalid}, args...)...)
}

func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrNotFound}, args...)...)
}

// Kind discriminates the request union on the wire.
type Kind string

const (
	KindSummary    Kind = "summary"
	KindExceptions Kind = "exceptions"
	KindAlerts     Kind = "alerts"
	KindSupporters Kind = "supporters"
	KindSlice      Kind = "slice"
	KindTrend      Kind = "trend"
	KindFrame      Kind = "frame"
	KindForecast   Kind = "forecast"
	KindChanges    Kind = "changes"
)

// Exception orderings for ExceptionsRequest.Order.
const (
	OrderSlope = "slope" // |slope| descending (the default)
	OrderKey   = "key"   // canonical cell-key order
)

// Request is one typed query against a published snapshot. The concrete
// types — SummaryRequest, ExceptionsRequest, AlertsRequest,
// SupportersRequest, SliceRequest, TrendRequest, FrameRequest,
// ForecastRequest, ChangesRequest — form a closed union;
// Executor.Execute dispatches on them.
type Request interface {
	// Kind returns the union discriminator.
	Kind() Kind
	// Validate checks the request against a schema without touching any
	// snapshot, so transports can reject bad requests before (or without)
	// a snapshot existing. Errors wrap ErrInvalid or ErrCell.
	Validate(s *cube.Schema) error
}

// CellRef names one cell by coordinates: one level and one member per
// dimension. A nil Levels defaults to the o-layer, so plain o-cell
// references only carry members. It is embedded by the cell-addressed
// requests and flattens into their JSON form.
type CellRef struct {
	Levels  []int   `json:"levels,omitempty"`
	Members []int32 `json:"members,omitempty"`
}

// OCell references an o-layer cell by its members.
func OCell(members ...int32) CellRef { return CellRef{Members: members} }

// Cell references a cell at explicit levels.
func Cell(levels []int, members []int32) CellRef {
	return CellRef{Levels: levels, Members: members}
}

// Resolve validates the reference against the schema and assembles the
// cell key, defaulting nil Levels to the o-layer.
func (c CellRef) Resolve(s *cube.Schema) (cube.CellKey, error) {
	levels := c.Levels
	if levels == nil {
		levels = make([]int, len(s.Dims))
		for d, dim := range s.Dims {
			levels[d] = dim.OLevel
		}
	}
	return MakeCellKey(s, levels, c.Members)
}

// SummaryRequest asks for the unit header, cube stats, and per-cuboid
// exception counts.
type SummaryRequest struct{}

// Kind returns KindSummary.
func (SummaryRequest) Kind() Kind { return KindSummary }

// Validate always succeeds: a summary has no parameters.
func (SummaryRequest) Validate(*cube.Schema) error { return nil }

// ExceptionsRequest asks for the ranked exception cells.
type ExceptionsRequest struct {
	// K truncates the returned cells; 0 returns every exception.
	K int `json:"k,omitempty"`
	// Order is OrderSlope (default when empty) or OrderKey.
	Order string `json:"order,omitempty"`
}

// Kind returns KindExceptions.
func (ExceptionsRequest) Kind() Kind { return KindExceptions }

// Validate rejects negative limits and unknown orderings.
func (r ExceptionsRequest) Validate(*cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means no limit)", r.K)
	}
	switch r.Order {
	case "", OrderSlope, OrderKey:
		return nil
	default:
		return invalidf("parameter order: %q is not slope or key", r.Order)
	}
}

// AlertsRequest asks for the unit's o-layer alerts with drill-down.
type AlertsRequest struct{}

// Kind returns KindAlerts.
func (AlertsRequest) Kind() Kind { return KindAlerts }

// Validate always succeeds: alerts have no parameters.
func (AlertsRequest) Validate(*cube.Schema) error { return nil }

// SupportersRequest asks for the exception descendants of one cell.
type SupportersRequest struct {
	CellRef
	// K truncates the returned supporters; 0 returns all of them.
	K int `json:"k,omitempty"`
}

// Kind returns KindSupporters.
func (SupportersRequest) Kind() Kind { return KindSupporters }

// Validate rejects negative limits and invalid cell references.
func (r SupportersRequest) Validate(s *cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means no limit)", r.K)
	}
	_, err := r.Resolve(s)
	return err
}

// SliceRequest asks for the retained exceptions under one member of one
// dimension — "all exceptions inside north-district".
type SliceRequest struct {
	// Dim indexes the slicing dimension.
	Dim int `json:"dim"`
	// Level is the hierarchy level of Member; 0 is the top level. (The
	// GET shim defaults an absent ?level= to the dimension's o-level.)
	Level int `json:"level"`
	// Member is the slicing member at Level.
	Member int32 `json:"member"`
	// K truncates the returned cells; 0 returns all of them.
	K int `json:"k,omitempty"`
}

// Kind returns KindSlice.
func (SliceRequest) Kind() Kind { return KindSlice }

// Validate rejects out-of-range dimensions, levels, and members.
func (r SliceRequest) Validate(s *cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means no limit)", r.K)
	}
	if r.Dim < 0 || r.Dim >= len(s.Dims) {
		return invalidf("parameter dim: %d outside [0,%d)", r.Dim, len(s.Dims))
	}
	d := s.Dims[r.Dim]
	if r.Level < 0 || r.Level > d.MLevel {
		return invalidf("parameter level: %d outside [0,%d]", r.Level, d.MLevel)
	}
	if card := d.Hierarchy.Cardinality(r.Level); r.Member < 0 || int(r.Member) >= card {
		return invalidf("parameter member: %d outside [0,%d) at level %d", r.Member, card, r.Level)
	}
	return nil
}

// TrendRequest asks for the k-unit trend regression of an o-cell,
// optionally at a coarser tilt granularity.
type TrendRequest struct {
	CellRef
	// K is how many trailing units to aggregate; 0 means 1.
	K int `json:"k,omitempty"`
	// Level selects the tilt granularity: 0 (default) is the finest and
	// answers on flat and tilted engines alike; coarser levels need an
	// engine with tilt levels configured.
	Level int `json:"level,omitempty"`
}

// Kind returns KindTrend.
func (TrendRequest) Kind() Kind { return KindTrend }

// Validate rejects negative counts and levels and invalid cells. Whether
// Level exists on the serving engine is snapshot-dependent and checked by
// Execute.
func (r TrendRequest) Validate(s *cube.Schema) error {
	if r.K < 0 {
		return invalidf("parameter k: %d is negative (0 means 1)", r.K)
	}
	if r.Level < 0 {
		return invalidf("parameter level: %d is negative", r.Level)
	}
	_, err := r.Resolve(s)
	return err
}

// FrameRequest asks for the per-level slot listing of an o-cell's tilted
// history (rendered as a single pseudo-level on flat engines).
type FrameRequest struct {
	CellRef
}

// Kind returns KindFrame.
func (FrameRequest) Kind() Kind { return KindFrame }

// Validate rejects invalid cell references.
func (r FrameRequest) Validate(s *cube.Schema) error {
	_, err := r.Resolve(s)
	return err
}

// Envelope wraps a Request for JSON transport, adding the "kind"
// discriminator next to the request's own flattened fields:
//
//	{"kind":"trend","members":[2,0],"k":4,"level":1}
//
// BatchRequest carries a list of them.
type Envelope struct {
	Request Request
}

// MarshalJSON renders the wrapped request with its kind discriminator.
func (e Envelope) MarshalJSON() ([]byte, error) {
	if e.Request == nil {
		return nil, fmt.Errorf("%w: empty envelope", ErrInvalid)
	}
	body, err := json.Marshal(e.Request)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf(`{"kind":%q`, e.Request.Kind())
	if string(body) == "{}" {
		return []byte(head + "}"), nil
	}
	// Splice the discriminator into the request's own object form.
	return append(append([]byte(head), ','), body[1:]...), nil
}

// UnmarshalJSON decodes the kind discriminator and then the matching
// concrete request. Unknown kinds fail the whole envelope (and hence the
// batch) with ErrInvalid.
func (e *Envelope) UnmarshalJSON(b []byte) error {
	var probe struct {
		Kind Kind `json:"kind"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return err
	}
	switch probe.Kind {
	case KindSummary:
		e.Request = SummaryRequest{}
	case KindExceptions:
		var r ExceptionsRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindAlerts:
		e.Request = AlertsRequest{}
	case KindSupporters:
		var r SupportersRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindSlice:
		var r SliceRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindTrend:
		var r TrendRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindFrame:
		var r FrameRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindForecast:
		var r ForecastRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case KindChanges:
		var r ChangesRequest
		if err := json.Unmarshal(b, &r); err != nil {
			return err
		}
		e.Request = r
	case "":
		return fmt.Errorf("%w: missing kind", ErrInvalid)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalid, probe.Kind)
	}
	return nil
}

// Wrap packages requests into envelopes — the body of a BatchRequest.
func Wrap(reqs ...Request) []Envelope {
	out := make([]Envelope, len(reqs))
	for i, r := range reqs {
		out[i] = Envelope{Request: r}
	}
	return out
}
