package query

import "repro/internal/alert"

// AlertEventsResponse is the reply of GET /v1/alerts/events: the most
// recent lifecycle events (oldest first) from the node's alert manager
// ring buffer. Unlike every other v1 endpoint it is served from the alert
// manager, not the snapshot — the events are the push-side record of what
// the lifecycle emitted, so they remain available even for units whose
// snapshots have been superseded.
//
// The event wire shape lives in internal/alert (alert.EventJSON) because
// the webhook handler POSTs the identical document; this wrapper only
// frames the list.
type AlertEventsResponse struct {
	// Count is len(Events), for clients probing with ?k=.
	Count  int               `json:"count"`
	Events []alert.EventJSON `json:"events"`
}
