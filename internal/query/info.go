package query

// This file defines the typed /v1/info surface: one structured document
// describing a serving process — replacing the ad-hoc identity fields that
// were previously scraped out of /healthz and /metrics. A single node
// reports itself; a cluster coordinator reports itself plus a NodeStatus
// per ingest node, so one GET answers "what is this cluster and is it
// healthy".

// APIVersion is the query API generation this package implements: 2 since
// the typed request/response model (DESIGN.md §9).
const APIVersion = 2

// InfoResponse describes one serving process (an ingest node or a cluster
// coordinator). Field order and tags are frozen like every other wire
// shape in this package.
type InfoResponse struct {
	// NodeID is the operator-assigned identity (streamd -node-id); empty
	// when the process was not given one.
	NodeID string `json:"nodeId"`
	// Role is "node" for a streamd ingest process and "coordinator" for
	// the scatter-gather query tier.
	Role string `json:"role"`
	// Shards is the in-process partition count of the node's engine; for
	// a coordinator it is the cluster's node count.
	Shards int `json:"shards"`
	// WireVersion is the RGCWIRE1 frame/batch format version the ingest
	// edge speaks; APIVersion is the query API generation.
	WireVersion int `json:"wireVersion"`
	APIVersion  int `json:"apiVersion"`
	// WALSeq is the write-ahead-log watermark: the sequence number of the
	// last batch appended durably (0 when the WAL is off or empty).
	WALSeq int64 `json:"walSeq"`
	// SnapshotUnit is the open unit of the latest published snapshot and
	// UnitsDone its non-empty-unit count; SnapshotUnit is -1 before the
	// first unit boundary publishes.
	SnapshotUnit int64 `json:"snapshotUnit"`
	UnitsDone    int64 `json:"unitsDone"`
	// Nodes is the coordinator's per-node cluster status, in endpoint
	// order; nil for a plain node.
	Nodes []NodeStatus `json:"nodes,omitempty"`
}

// NodeStatus is a coordinator's view of one ingest node.
type NodeStatus struct {
	Endpoint  string `json:"endpoint"`
	Reachable bool   `json:"reachable"`
	// Error is the last probe failure, empty when Reachable.
	Error string `json:"error,omitempty"`
	// Info is the node's own /v1/info document, nil when unreachable.
	Info *InfoResponse `json:"info,omitempty"`
}
