package stream

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/regression"
)

// Checkpoint is the serializable state of an Engine: the open unit, every
// active cell's accumulator statistics, and the per-o-cell regression
// history. Together with the (static) Config it fully restores an engine
// after a crash or restart — the paper's "stored on disks" half of the
// critical-layer design.
type Checkpoint struct {
	Unit      int64            `json:"unit"`
	UnitsDone int64            `json:"unitsDone"`
	Cells     []CellState      `json:"cells"`
	History   []CellHistory    `json:"history"`
	Schema    []DimensionShape `json:"schema"` // shape fingerprint for validation
}

// CellState checkpoints one active m-layer cell.
type CellState struct {
	Members []int32                     `json:"members"`
	Acc     regression.AccumulatorState `json:"acc"`
}

// CellHistory checkpoints one o-cell's unit history.
type CellHistory struct {
	Levels  []int             `json:"levels"`
	Members []int32           `json:"members"`
	Entries []HistoryEntryRec `json:"entries"`
}

// HistoryEntryRec is one unit of o-cell history.
type HistoryEntryRec struct {
	Unit int64          `json:"unit"`
	ISB  regression.ISB `json:"isb"`
}

// DimensionShape fingerprints one schema dimension so a checkpoint cannot
// be restored against an incompatible schema.
type DimensionShape struct {
	Name   string `json:"name"`
	MLevel int    `json:"mLevel"`
	OLevel int    `json:"oLevel"`
	Card   int    `json:"card"` // cardinality at the m-level
}

func shapeOf(s *cube.Schema) []DimensionShape {
	out := make([]DimensionShape, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = DimensionShape{
			Name:   d.Name,
			MLevel: d.MLevel,
			OLevel: d.OLevel,
			Card:   d.Hierarchy.Cardinality(d.MLevel),
		}
	}
	return out
}

// Checkpoint exports the engine's full dynamic state.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Unit:      e.unit,
		UnitsDone: e.unitsDone,
		Schema:    shapeOf(e.cfg.Schema),
	}
	nd := len(e.cfg.Schema.Dims)
	for key, acc := range e.cells {
		cp.Cells = append(cp.Cells, CellState{
			Members: append([]int32(nil), key[:nd]...),
			Acc:     acc.State(),
		})
	}
	for key, entries := range e.history {
		ch := CellHistory{}
		for d := 0; d < key.Cuboid.NumDims(); d++ {
			ch.Levels = append(ch.Levels, key.Cuboid.Level(d))
			ch.Members = append(ch.Members, key.Member(d))
		}
		for _, h := range entries {
			ch.Entries = append(ch.Entries, HistoryEntryRec{Unit: h.unit, ISB: h.isb})
		}
		cp.History = append(cp.History, ch)
	}
	return cp
}

// Restore loads a checkpoint into a freshly configured engine. The
// engine's schema shape must match the checkpoint's.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("%w: nil checkpoint", ErrConfig)
	}
	shape := shapeOf(e.cfg.Schema)
	if len(shape) != len(cp.Schema) {
		return fmt.Errorf("%w: checkpoint has %d dimensions, schema %d", ErrConfig, len(cp.Schema), len(shape))
	}
	for i := range shape {
		if shape[i] != cp.Schema[i] {
			return fmt.Errorf("%w: dimension %d shape %+v differs from checkpoint %+v",
				ErrConfig, i, shape[i], cp.Schema[i])
		}
	}
	e.unit = cp.Unit
	e.openStart = e.unitStart(cp.Unit)
	e.openEnd = e.unitStart(cp.Unit + 1)
	e.unitsDone = cp.UnitsDone
	// The delta base is not checkpointed; restoring always starts a fresh
	// base (the first restored unit carries no delta cube).
	e.prevInputs = nil
	e.cells = make(map[[cube.MaxDims]int32]*regression.Accumulator, len(cp.Cells))
	for _, cs := range cp.Cells {
		if len(cs.Members) != len(e.cfg.Schema.Dims) {
			return fmt.Errorf("%w: checkpoint cell has %d members", ErrConfig, len(cs.Members))
		}
		acc, err := regression.RestoreAccumulator(cs.Acc)
		if err != nil {
			return fmt.Errorf("stream: restoring accumulator: %w", err)
		}
		var key [cube.MaxDims]int32
		copy(key[:], cs.Members)
		e.cells[key] = acc
	}
	e.history = make(map[cube.CellKey][]historyEntry, len(cp.History))
	for _, ch := range cp.History {
		if len(ch.Levels) != len(e.cfg.Schema.Dims) || len(ch.Members) != len(ch.Levels) {
			return fmt.Errorf("%w: malformed history key", ErrConfig)
		}
		cb, err := cube.NewCuboid(ch.Levels...)
		if err != nil {
			return fmt.Errorf("stream: restoring history: %w", err)
		}
		key := cube.NewCellKey(cb, ch.Members...)
		entries := make([]historyEntry, len(ch.Entries))
		for i, rec := range ch.Entries {
			entries[i] = historyEntry{unit: rec.Unit, isb: rec.ISB}
		}
		e.history[key] = entries
	}
	// Published snapshots describe units of the replaced state; readers
	// must wait for the first post-restore boundary.
	e.snap.Store(nil)
	return nil
}
