package stream

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/tilt"
)

// Checkpoint is the serializable state of an Engine: the open unit, every
// active cell's accumulator statistics, and the per-o-cell regression
// history. Together with the (static) Config it fully restores an engine
// after a crash or restart — the paper's "stored on disks" half of the
// critical-layer design.
type Checkpoint struct {
	Unit      int64         `json:"unit"`
	UnitsDone int64         `json:"unitsDone"`
	Cells     []CellState   `json:"cells"`
	History   []CellHistory `json:"history"`
	// WALSeq is the write-ahead-log watermark: how many log records the
	// checkpointed state reflects. Recovery replays log records
	// [WALSeq, end) on top of the restored state — sequence-based, not
	// unit-based, because the record that crosses a unit boundary has
	// already been folded into the new open unit's cells by the time a
	// checkpoint is cut, and a unit-granular watermark would replay it
	// twice. Zero (and omitted) when no WAL is in use.
	WALSeq int64 `json:"walSeq,omitempty"`
	// Tilt holds the per-o-cell tilt frames of a Config.TiltLevels engine
	// (the persist layer's version-3 envelope). In tilt mode History is
	// still written — derived from each frame's finest level — so the file
	// cross-loads into flat engines and pre-tilt readers.
	Tilt   []CellFrame      `json:"tilt,omitempty"`
	Schema []DimensionShape `json:"schema"` // shape fingerprint for validation
}

// CellFrame checkpoints one o-cell's tilted multi-granularity history.
type CellFrame struct {
	Levels  []int               `json:"levels"`
	Members []int32             `json:"members"`
	Base    int64               `json:"base"` // engine unit of the frame's first registered unit
	Frame   tilt.UnitFrameState `json:"frame"`
}

// CellState checkpoints one active m-layer cell.
type CellState struct {
	Members []int32                     `json:"members"`
	Acc     regression.AccumulatorState `json:"acc"`
}

// CellHistory checkpoints one o-cell's unit history.
type CellHistory struct {
	Levels  []int             `json:"levels"`
	Members []int32           `json:"members"`
	Entries []HistoryEntryRec `json:"entries"`
}

// HistoryEntryRec is one unit of o-cell history.
type HistoryEntryRec struct {
	Unit int64          `json:"unit"`
	ISB  regression.ISB `json:"isb"`
}

// DimensionShape fingerprints one schema dimension so a checkpoint cannot
// be restored against an incompatible schema.
type DimensionShape struct {
	Name   string `json:"name"`
	MLevel int    `json:"mLevel"`
	OLevel int    `json:"oLevel"`
	Card   int    `json:"card"` // cardinality at the m-level
}

func shapeOf(s *cube.Schema) []DimensionShape {
	out := make([]DimensionShape, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = DimensionShape{
			Name:   d.Name,
			MLevel: d.MLevel,
			OLevel: d.OLevel,
			Card:   d.Hierarchy.Cardinality(d.MLevel),
		}
	}
	return out
}

// Checkpoint exports the engine's full dynamic state in canonical form:
// cells, history, and tilt frames are sorted by coordinate, so two engines
// in identical states serialize to byte-identical checkpoints. The replay-
// equivalence tests lean on that — "recovered state equals uninterrupted
// state" is checked bit for bit on the encoded checkpoint.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Unit:      e.unit,
		UnitsDone: e.unitsDone,
		WALSeq:    e.walSeq,
		Schema:    shapeOf(e.cfg.Schema),
	}
	defer cp.normalize()
	nd := len(e.cfg.Schema.Dims)
	for _, idx := range e.denseActive {
		members := make([]int32, nd)
		e.denseMembers(idx, members)
		cp.Cells = append(cp.Cells, CellState{Members: members, Acc: e.dense[idx].State()})
	}
	for key, acc := range e.cells {
		cp.Cells = append(cp.Cells, CellState{
			Members: append([]int32(nil), key[:nd]...),
			Acc:     acc.State(),
		})
	}
	if e.tilted() {
		for key, pts := range e.tiltHistory() {
			ch := cellKeyRec(key)
			for _, p := range pts {
				ch.Entries = append(ch.Entries, HistoryEntryRec{Unit: p.Unit, ISB: p.ISB})
			}
			cp.History = append(cp.History, ch)
		}
		for key, cf := range e.frames {
			rec := cellKeyRec(key)
			cp.Tilt = append(cp.Tilt, CellFrame{
				Levels:  rec.Levels,
				Members: rec.Members,
				Base:    cf.base,
				Frame:   cf.frame.State(),
			})
		}
		return cp
	}
	for key, entries := range e.history {
		ch := cellKeyRec(key)
		for _, h := range entries {
			ch.Entries = append(ch.Entries, HistoryEntryRec{Unit: h.unit, ISB: h.isb})
		}
		cp.History = append(cp.History, ch)
	}
	return cp
}

// normalize sorts the checkpoint's collections into canonical coordinate
// order. Map iteration makes the raw append order nondeterministic;
// sorting makes the serialized form a pure function of engine state.
func (cp *Checkpoint) normalize() {
	sort.Slice(cp.Cells, func(i, j int) bool {
		return slices.Compare(cp.Cells[i].Members, cp.Cells[j].Members) < 0
	})
	sort.Slice(cp.History, func(i, j int) bool {
		if c := slices.Compare(cp.History[i].Levels, cp.History[j].Levels); c != 0 {
			return c < 0
		}
		return slices.Compare(cp.History[i].Members, cp.History[j].Members) < 0
	})
	sort.Slice(cp.Tilt, func(i, j int) bool {
		if c := slices.Compare(cp.Tilt[i].Levels, cp.Tilt[j].Levels); c != 0 {
			return c < 0
		}
		return slices.Compare(cp.Tilt[i].Members, cp.Tilt[j].Members) < 0
	})
}

// cellKeyRec flattens a cell key into the checkpoint coordinate form.
func cellKeyRec(key cube.CellKey) CellHistory {
	ch := CellHistory{}
	for d := 0; d < key.Cuboid.NumDims(); d++ {
		ch.Levels = append(ch.Levels, key.Cuboid.Level(d))
		ch.Members = append(ch.Members, key.Member(d))
	}
	return ch
}

// Restore loads a checkpoint into a freshly configured engine. The
// engine's schema shape must match the checkpoint's.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("%w: nil checkpoint", ErrConfig)
	}
	shape := shapeOf(e.cfg.Schema)
	if len(shape) != len(cp.Schema) {
		return fmt.Errorf("%w: checkpoint has %d dimensions, schema %d", ErrConfig, len(cp.Schema), len(shape))
	}
	for i := range shape {
		if shape[i] != cp.Schema[i] {
			return fmt.Errorf("%w: dimension %d shape %+v differs from checkpoint %+v",
				ErrConfig, i, shape[i], cp.Schema[i])
		}
	}
	if cp.WALSeq < 0 {
		return fmt.Errorf("%w: negative WAL watermark %d", ErrConfig, cp.WALSeq)
	}
	e.unit = cp.Unit
	e.openStart = e.unitStart(cp.Unit)
	e.openEnd = e.unitStart(cp.Unit + 1)
	e.unitsDone = cp.UnitsDone
	e.walSeq = cp.WALSeq
	// The delta base is not checkpointed; restoring always starts a fresh
	// base (the first restored unit carries no delta cube).
	e.prevInputs = nil
	e.cells = make(map[[cube.MaxDims]int32]*regression.Accumulator, len(cp.Cells))
	for _, idx := range e.denseActive {
		e.dense[idx] = nil
	}
	e.denseActive = e.denseActive[:0]
	for _, cs := range cp.Cells {
		if len(cs.Members) != len(e.cfg.Schema.Dims) {
			return fmt.Errorf("%w: checkpoint cell has %d members", ErrConfig, len(cs.Members))
		}
		acc, err := regression.RestoreAccumulator(cs.Acc)
		if err != nil {
			return fmt.Errorf("stream: restoring accumulator: %w", err)
		}
		if e.dense != nil {
			if idx, ok := e.denseIndex(cs.Members); ok {
				if e.dense[idx] == nil {
					e.denseActive = append(e.denseActive, idx)
				}
				e.dense[idx] = acc
				continue
			}
		}
		var key [cube.MaxDims]int32
		copy(key[:], cs.Members)
		e.cells[key] = acc
	}
	e.history = make(map[cube.CellKey][]historyEntry, len(cp.History))
	if e.tilted() {
		e.frames = make(map[cube.CellKey]*cellFrame, len(cp.Tilt))
	}
	for _, ch := range cp.History {
		key, err := historyKey(e.cfg.Schema, ch.Levels, ch.Members)
		if err != nil {
			return err
		}
		// A checkpoint's history must be strictly increasing in closed
		// units: duplicates or out-of-order entries would restore silently
		// and later poison TrendQuery's gap detection, so they are
		// rejected here rather than at query time.
		for i, rec := range ch.Entries {
			if rec.Unit < 0 || rec.Unit >= cp.Unit {
				return fmt.Errorf("%w: history for cell %v names unit %d outside closed range [0,%d)",
					ErrConfig, key, rec.Unit, cp.Unit)
			}
			if i > 0 && rec.Unit <= ch.Entries[i-1].Unit {
				return fmt.Errorf("%w: history for cell %v has unit %d after unit %d (want sorted unique units)",
					ErrConfig, key, rec.Unit, ch.Entries[i-1].Unit)
			}
		}
		if e.tilted() {
			// History is derived state in tilt mode; frames restore below
			// (or are reseeded from this history for pre-tilt files).
			continue
		}
		entries := make([]historyEntry, len(ch.Entries))
		for i, rec := range ch.Entries {
			entries[i] = historyEntry{unit: rec.Unit, isb: rec.ISB}
		}
		e.history[key] = entries
	}
	if e.tilted() {
		if len(cp.Tilt) > 0 {
			for _, rec := range cp.Tilt {
				key, err := historyKey(e.cfg.Schema, rec.Levels, rec.Members)
				if err != nil {
					return err
				}
				if rec.Base < 0 || rec.Base+rec.Frame.Pushed != cp.Unit {
					return fmt.Errorf("%w: tilt frame for cell %v covers units [%d,%d), checkpoint closed %d",
						ErrConfig, key, rec.Base, rec.Base+rec.Frame.Pushed, cp.Unit)
				}
				if rec.Frame.Pushed > 0 && rec.Frame.UnitTicks != int64(e.cfg.TicksPerUnit) {
					return fmt.Errorf("%w: tilt frame for cell %v has %d-tick units, engine %d",
						ErrConfig, key, rec.Frame.UnitTicks, e.cfg.TicksPerUnit)
				}
				f, err := tilt.RestoreUnitFrame(e.cfg.TiltLevels, rec.Frame)
				if err != nil {
					return fmt.Errorf("%w: tilt frame for cell %v: %v", ErrConfig, key, err)
				}
				e.frames[key] = &cellFrame{base: rec.Base, frame: f}
			}
		} else if err := e.seedFrames(cp); err != nil {
			// Pre-tilt (v1/v2) files carry only flat history; replay it
			// into fresh frames so old state keeps upgrading forward.
			return err
		}
	}
	// Published snapshots describe units of the replaced state; readers
	// must wait for the first post-restore boundary.
	e.snap.Store(nil)
	return nil
}

// historyKey validates and decodes one checkpoint cell coordinate.
func historyKey(schema *cube.Schema, levels []int, members []int32) (cube.CellKey, error) {
	if len(levels) != len(schema.Dims) || len(members) != len(levels) {
		return cube.CellKey{}, fmt.Errorf("%w: malformed history key", ErrConfig)
	}
	cb, err := cube.NewCuboid(levels...)
	if err != nil {
		return cube.CellKey{}, fmt.Errorf("stream: restoring history: %w", err)
	}
	return cube.NewCellKey(cb, members...), nil
}

// seedFrames rebuilds tilt frames from a flat-history checkpoint: each
// cell's entries replay in unit order with zero regressions filling the
// gaps (and the tail up to the open unit), exactly as recordTilt would
// have registered them live. This is how a v1/v2 checkpoint written by a
// flat engine restores into a tilt-configured one.
func (e *Engine) seedFrames(cp *Checkpoint) error {
	zeroAt := func(u int64) regression.ISB {
		return regression.ISB{Tb: e.unitStart(u), Te: e.unitStart(u+1) - 1}
	}
	for _, ch := range cp.History {
		if len(ch.Entries) == 0 {
			continue
		}
		key, err := historyKey(e.cfg.Schema, ch.Levels, ch.Members)
		if err != nil {
			return err
		}
		f, err := tilt.NewUnitFrame(e.cfg.TiltLevels)
		if err != nil {
			return fmt.Errorf("%w: tilt levels: %v", ErrConfig, err)
		}
		base := ch.Entries[0].Unit
		next := base
		push := func(isb regression.ISB) error {
			if err := f.Push(isb); err != nil {
				return fmt.Errorf("%w: seeding tilt frame for cell %v: %v", ErrConfig, key, err)
			}
			next++
			return nil
		}
		for _, rec := range ch.Entries {
			for next < rec.Unit {
				if err := push(zeroAt(next)); err != nil {
					return err
				}
			}
			if err := push(rec.ISB); err != nil {
				return err
			}
		}
		for next < cp.Unit {
			if err := push(zeroAt(next)); err != nil {
				return err
			}
		}
		e.frames[key] = &cellFrame{base: base, frame: f}
	}
	return nil
}
