package stream

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/wire"
)

// ingestBatchSize is how many records the coordinator buffers per shard
// before handing them to the shard goroutine in one channel send. Batching
// amortizes channel synchronization (and, on loaded machines, goroutine
// switches) over the per-record accumulator work; correctness never
// depends on it because every unit boundary, query, and checkpoint drains
// the buffers first. The buffers are columnar (wire.Batch) — ~20 bytes per
// record instead of a fixed max-width struct — so 512 records is ~10 KiB
// per sub-batch: big enough to amortize the handoff and the goroutine
// switch it implies, small enough that a full shard fan-out's pending
// buffers stay cache-resident.
const ingestBatchSize = 512

// shardReply carries a control operation's outcome back to the
// coordinator.
type shardReply struct {
	val any
	err error
}

// shardMsg is one message to a shard goroutine: either a columnar record
// sub-batch (batch, fire-and-forget) or a control operation (fn, answered
// on reply). reset clears the shard's sticky error first — only Restore
// sets it, because restoring replaces whatever state the error poisoned.
type shardMsg struct {
	batch *wire.Batch
	fn    func(*Engine) (any, error)
	reply chan shardReply
	reset bool
}

// shard is the coordinator's handle on one shard goroutine.
type shard struct {
	in   chan shardMsg
	done chan struct{}
}

// ShardedEngine partitions the online analyzer (§4.5) across N independent
// per-shard Engines, each confined to its own goroutine and fed over a
// channel — share memory by communicating; no locks on the hot path.
//
// The partition function is the m-layer cell's o-layer ancestor: every
// record hashes by the o-level member tuple its members roll up to. Because
// roll-up is per-dimension hierarchical, all m-cells below one o-cell — and
// therefore every cell of every cuboid between the critical layers that
// aggregates them — live in exactly one shard. Per-shard cube results are
// disjoint and union to precisely the single-engine result: the merged
// o-layer, exception sets, drill-downs, per-o-cell history, and delta cubes
// are identical (bitwise, thanks to the canonical aggregation order) to
// what one Engine would produce from the same stream. Alerts are returned
// deterministically sorted (see SortAlerts); a single Engine's alert order
// follows map iteration instead.
//
// Unit boundaries are the only synchronization points: a record crossing
// the open unit's end makes the coordinator drain all shard buffers, close
// the finished units on every shard in parallel, and merge the per-shard
// results in shard-stable order. Between boundaries, shards ingest
// concurrently without coordination.
//
// Like Engine, a ShardedEngine's methods must be called from one goroutine
// (the issue is the coordinator state, not the shards). Record errors that
// surface inside a shard (for example per-cell tick regressions) are
// reported at the next unit boundary, query, or Flush rather than on the
// Ingest call that enqueued the bad record; the first error sticks and
// fails all subsequent calls.
type ShardedEngine struct {
	cfg    Config
	nDims  int
	shards []*shard
	// part is the o-ancestor partition function, shared verbatim with the
	// multi-node router (internal/cluster) so in-process shards and
	// cross-process nodes route records bit-for-bit identically.
	part *Partitioner
	// openEnd caches unitStart(unit+1) so the per-record boundary test is
	// one comparison.
	openEnd int64
	pending []*wire.Batch
	// hashBuf is routeSegment's per-record hash scratch, reused across
	// batches so columnar routing allocates nothing at steady state.
	// scatterBase/scatterCur hold the per-shard write offsets for the
	// cursor scatter (one cell per shard, reused the same way).
	hashBuf     []uint64
	scatterBase []int
	scatterCur  []int
	// free recycles drained sub-batches back from the shard goroutines,
	// so steady-state ingest stops allocating batch storage.
	free chan *wire.Batch
	unit int64
	done int64
	// prevNonEmpty tracks whether the last closed unit had data in any
	// shard — the delta-base adjacency rule at global scope.
	prevNonEmpty bool
	err          error
	closed       bool
	// snap is the coordinator's published merged snapshot
	// (cfg.PublishSnapshots). The per-shard engines run with publication
	// off; the coordinator collects their history copies at each barrier
	// and publishes one merged snapshot instead. bus broadcasts the same
	// merged values push-side to subscribers (Subscribe).
	snap atomic.Pointer[Snapshot]
	bus  snapBus
}

// NewShardedEngine builds a sharded analyzer with `shards` partitions. Each
// shard runs the exact Config the single engine would; shards must be ≥ 1.
// Call Close when done to stop the shard goroutines (Flush first for the
// final partial unit).
//
// Parallelism is bounded by the number of distinct o-layer cells: a schema
// whose o-layer is the apex cuboid has a single partition and degrades to
// one active shard.
func NewShardedEngine(cfg Config, shards int) (*ShardedEngine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrConfig, shards)
	}
	s := &ShardedEngine{
		cfg:     cfg,
		shards:  make([]*shard, shards),
		pending: make([]*wire.Batch, shards),
	}
	// Shard engines never publish their own snapshots: a per-shard view
	// would expose partial units, and the coordinator merges histories at
	// each barrier anyway.
	shardCfg := cfg
	shardCfg.PublishSnapshots = false
	engines := make([]*Engine, shards)
	for i := range engines {
		eng, err := NewEngine(shardCfg)
		if err != nil {
			return nil, err
		}
		eng.shardDelta = true
		engines[i] = eng
	}
	s.cfg = engines[0].cfg // normalized (history bound, default path)
	s.cfg.PublishSnapshots = cfg.PublishSnapshots
	s.nDims = len(cfg.Schema.Dims)
	part, err := NewPartitioner(cfg.Schema, shards)
	if err != nil {
		return nil, err
	}
	s.part = part
	s.openEnd = s.unitStart(1)
	s.free = make(chan *wire.Batch, 4*shards)
	for i := range s.shards {
		sh := &shard{in: make(chan shardMsg, 4), done: make(chan struct{})}
		s.shards[i] = sh
		go sh.run(engines[i], s.free)
	}
	return s, nil
}

// run is the shard goroutine: drain columnar sub-batches into the engine,
// answer control operations, keep the first ingest error sticky. Drained
// batches go back to the coordinator through the free list (dropped when
// it is full), closing the zero-allocation ingest loop.
func (sh *shard) run(eng *Engine, free chan *wire.Batch) {
	defer close(sh.done)
	var sticky error
	for msg := range sh.in {
		if msg.fn == nil {
			if sticky == nil {
				// The coordinator barriers every boundary before dispatching
				// the crossing record, so every record here is inside the
				// open unit — ingestRun rejects anything else, keeping a
				// shard from ever closing units on its own.
				sticky = eng.ingestRun(msg.batch, 0, msg.batch.Len())
			}
			select {
			case free <- msg.batch:
			default:
			}
			continue
		}
		if msg.reset {
			sticky = nil
		}
		if sticky != nil {
			msg.reply <- shardReply{err: sticky}
			continue
		}
		val, err := msg.fn(eng)
		msg.reply <- shardReply{val: val, err: err}
	}
}

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.shards) }

// Unit returns the index of the currently open unit.
func (s *ShardedEngine) Unit() int64 { return s.unit }

// UnitsDone returns how many units have been closed.
func (s *ShardedEngine) UnitsDone() int64 { return s.done }

func (s *ShardedEngine) unitStart(u int64) int64 {
	return s.cfg.StartTick + u*int64(s.cfg.TicksPerUnit)
}

// hashMembers maps an o-level member tuple to its shard; the function
// itself lives in Partitioner, shared with the cluster router.
func (s *ShardedEngine) hashMembers(members *[cube.MaxDims]int32) int {
	return s.part.Hash(members)
}

// shardOf routes an m-layer member tuple by its o-layer ancestor.
func (s *ShardedEngine) shardOf(members []int32) (int, error) {
	return s.part.Route(members)
}

// getBatch draws a recycled sub-batch, or allocates while the free list
// warms up. Either way the batch comes back empty with this engine's
// dimension count.
func (s *ShardedEngine) getBatch() *wire.Batch {
	var b *wire.Batch
	select {
	case b = <-s.free:
	default:
		b = &wire.Batch{}
	}
	b.Reset(s.nDims)
	return b
}

// ready guards every public operation behind the closed/sticky-error state.
func (s *ShardedEngine) ready() error {
	if s.closed {
		return fmt.Errorf("%w: engine closed", ErrConfig)
	}
	return s.err
}

// flushPending hands every buffered sub-batch to its shard goroutine.
func (s *ShardedEngine) flushPending() {
	for i, batch := range s.pending {
		if batch != nil && batch.Len() > 0 {
			s.shards[i].in <- shardMsg{batch: batch}
			s.pending[i] = nil
		}
	}
}

// broadcast drains buffers, runs fn on every shard concurrently, and
// returns the replies in shard order. The first error becomes sticky.
func (s *ShardedEngine) broadcast(fn func(*Engine) (any, error)) ([]any, error) {
	s.flushPending()
	replies := make([]chan shardReply, len(s.shards))
	for i, sh := range s.shards {
		ch := make(chan shardReply, 1)
		replies[i] = ch
		sh.in <- shardMsg{fn: fn, reply: ch}
	}
	out := make([]any, len(s.shards))
	var firstErr error
	for i, ch := range replies {
		rep := <-ch
		if rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
		out[i] = rep.val
	}
	if firstErr != nil {
		s.err = firstErr
		return nil, firstErr
	}
	return out, nil
}

// Ingest consumes one record with Engine.Ingest semantics: crossing a unit
// boundary closes the finished units on every shard and returns the merged
// results in order. Per-cell validation happens inside the owning shard;
// its errors surface at the next boundary instead of here.
func (s *ShardedEngine) Ingest(members []int32, tick int64, value float64) ([]*UnitResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	if len(members) != s.nDims {
		return nil, fmt.Errorf("%w: %d members for %d dimensions", ErrRecord, len(members), s.nDims)
	}
	if tick < s.openEnd-int64(s.cfg.TicksPerUnit) {
		return nil, fmt.Errorf("%w: tick %d before open unit start %d", ErrRecord, tick, s.unitStart(s.unit))
	}
	var closed []*UnitResult
	if tick >= s.openEnd {
		target := (tick - s.cfg.StartTick) / int64(s.cfg.TicksPerUnit)
		var err error
		closed, err = s.advanceTo(target)
		if err != nil {
			return closed, err
		}
	}
	// The single engine only range-checks members when the unit's H-tree is
	// built; routing needs the check per record, so bad members fail here
	// (after boundary handling, like any other record error).
	sid, err := s.shardOf(members)
	if err != nil {
		return closed, err
	}
	p := s.pending[sid]
	if p == nil {
		p = s.getBatch()
		s.pending[sid] = p
	}
	p.Append(tick, members, value)
	if p.Len() >= ingestBatchSize {
		s.shards[sid].in <- shardMsg{batch: p}
		s.pending[sid] = nil
	}
	return closed, nil
}

// shardAdvance is one shard's reply to an advanceTo broadcast: its closed
// units plus, when snapshots are on, a copy of its history and tilted
// frame views after each closed unit (hists[u]/frames[u] reflect state
// just after urs[u] closed).
type shardAdvance struct {
	urs    []*UnitResult
	hists  []map[cube.CellKey][]HistoryPoint
	frames []map[cube.CellKey]*FrameView
}

// advanceTo closes units up to (excluding) target on every shard in
// parallel and merges the per-unit results. With snapshots on, the barrier
// collects each shard's per-unit history copies and publishes one merged
// Snapshot per closed unit — the same sequence a single Engine publishes,
// so bus subscribers observe an identical snapshot stream at any shard
// count (pull-side Snapshot() callers see the last one either way).
func (s *ShardedEngine) advanceTo(target int64) ([]*UnitResult, error) {
	n := int(target - s.unit)
	publish := s.cfg.PublishSnapshots
	vals, err := s.broadcast(func(e *Engine) (any, error) {
		var adv shardAdvance
		if !publish {
			urs, err := e.AdvanceTo(target)
			if err != nil {
				return nil, err
			}
			adv.urs = urs
			return adv, nil
		}
		// Copied inside the shard goroutine, so the copies never race with
		// the shard's own later units. Closing unit-by-unit keeps the
		// per-unit history views exact; the common case is a single unit,
		// where this is the one AdvanceTo call it always was.
		for e.unit < target {
			urs, err := e.AdvanceTo(e.unit + 1)
			if err != nil {
				return nil, err
			}
			adv.urs = append(adv.urs, urs...)
			adv.hists = append(adv.hists, e.snapshotHistory())
			adv.frames = append(adv.frames, e.snapshotFrames())
		}
		return adv, nil
	})
	if err != nil {
		return nil, err
	}
	perShard := make([]shardAdvance, len(vals))
	for i, v := range vals {
		adv, _ := v.(shardAdvance)
		if len(adv.urs) != n {
			s.err = fmt.Errorf("%w: shard %d closed %d units, want %d", ErrConfig, i, len(adv.urs), n)
			return nil, s.err
		}
		perShard[i] = adv
	}
	out := make([]*UnitResult, n)
	for u := 0; u < n; u++ {
		shardURs := make([]*UnitResult, len(perShard))
		for i := range perShard {
			shardURs[i] = perShard[i].urs[u]
		}
		out[u] = s.mergeUnit(shardURs)
	}
	s.unit = target
	s.openEnd = s.unitStart(target + 1)
	if publish {
		for u := 0; u < n; u++ {
			// Shards own disjoint o-cells, so the merged history (and the
			// merged frame set) is a union.
			hist := make(map[cube.CellKey][]HistoryPoint)
			var frames map[cube.CellKey]*FrameView
			for i := range perShard {
				for k, pts := range perShard[i].hists[u] {
					hist[k] = pts
				}
				if perShard[i].frames[u] != nil && frames == nil {
					frames = make(map[cube.CellKey]*FrameView)
				}
				for k, fv := range perShard[i].frames[u] {
					frames[k] = fv
				}
			}
			ur := out[u]
			snap := &Snapshot{
				Unit:      ur.Unit,
				Interval:  ur.Interval,
				UnitsDone: s.done + int64(u) + 1,
				// mergeUnit already sorted the alerts canonically; the clone
				// keeps readers isolated from whatever the Ingest caller does
				// with the returned UnitResult's slices.
				Alerts:  cloneAlerts(ur.Alerts),
				Result:  ur.Result,
				History: hist,
				Frames:  frames,
			}
			s.snap.Store(snap)
			s.bus.publish(snap)
		}
	}
	s.done += int64(n)
	return out, nil
}

// mergeUnit combines one unit's per-shard results. Cell maps are disjoint
// by the partition invariant, so merging is a union; alerts are sorted into
// the canonical order.
func (s *ShardedEngine) mergeUnit(urs []*UnitResult) *UnitResult {
	merged := &UnitResult{Unit: urs[0].Unit, Interval: urs[0].Interval}
	nonEmpty := false
	for _, ur := range urs {
		if ur.Result != nil {
			nonEmpty = true
			break
		}
	}
	prevNonEmpty := s.prevNonEmpty
	s.prevNonEmpty = nonEmpty
	if !nonEmpty {
		return merged
	}
	res := &core.Result{
		Schema:     s.cfg.Schema,
		OLayer:     make(map[cube.CellKey]regression.ISB),
		Exceptions: make(map[cube.CellKey]regression.ISB),
	}
	first := true
	for _, ur := range urs {
		if ur.Result == nil {
			continue
		}
		for k, v := range ur.Result.OLayer {
			res.OLayer[k] = v
		}
		for k, v := range ur.Result.Exceptions {
			res.Exceptions[k] = v
		}
		for cb, cells := range ur.Result.PathCells {
			if res.PathCells == nil {
				res.PathCells = make(map[cube.Cuboid]map[cube.CellKey]regression.ISB)
			}
			dst := res.PathCells[cb]
			if dst == nil {
				dst = make(map[cube.CellKey]regression.ISB, len(cells))
				res.PathCells[cb] = dst
			}
			for k, v := range cells {
				dst[k] = v
			}
		}
		mergeStats(&res.Stats, &ur.Result.Stats, first)
		first = false
		merged.Alerts = append(merged.Alerts, ur.Alerts...)
	}
	merged.Result = res
	SortAlerts(merged.Alerts)
	if s.cfg.DeltaDrill && s.cfg.Delta != nil && prevNonEmpty {
		merged.Delta = mergeDeltas(s.cfg.Schema, urs)
	}
	return merged
}

// mergeStats folds one shard's cube statistics into the merged result.
// Additive counters sum — including the peak estimates, since concurrent
// shards can peak simultaneously and the sum is the safe whole-process
// bound. Wall-clock phases take the maximum (shards run in parallel), and
// per-cuboid counts too, since every shard walks the same lattice.
func mergeStats(dst *core.Stats, src *core.Stats, first bool) {
	if first {
		*dst = *src
		return
	}
	dst.Tuples += src.Tuples
	dst.TreeNodes += src.TreeNodes
	dst.TreeLeaves += src.TreeLeaves
	dst.CellsComputed += src.CellsComputed
	dst.CellsRetained += src.CellsRetained
	dst.BytesRetained += src.BytesRetained
	dst.PeakScratchCells += src.PeakScratchCells
	dst.PeakBytes += src.PeakBytes
	if src.CuboidsComputed > dst.CuboidsComputed {
		dst.CuboidsComputed = src.CuboidsComputed
	}
	if src.BuildTime > dst.BuildTime {
		dst.BuildTime = src.BuildTime
	}
	if src.CubeTime > dst.CubeTime {
		dst.CubeTime = src.CubeTime
	}
}

// mergeDeltas unions the per-shard delta cubes of one unit. Shards whose
// current unit was empty contribute nothing, exactly as their cells
// contribute nothing to the single engine's delta pass.
func mergeDeltas(schema *cube.Schema, urs []*UnitResult) *core.DeltaResult {
	var out *core.DeltaResult
	first := true
	for _, ur := range urs {
		if ur.Delta == nil {
			continue
		}
		if out == nil {
			out = &core.DeltaResult{
				Schema:     schema,
				OLayer:     make(map[cube.CellKey]core.DeltaCell),
				Exceptions: make(map[cube.CellKey]core.DeltaCell),
			}
		}
		for k, v := range ur.Delta.OLayer {
			out.OLayer[k] = v
		}
		for k, v := range ur.Delta.Exceptions {
			out.Exceptions[k] = v
		}
		mergeStats(&out.Stats, &ur.Delta.Stats, first)
		first = false
	}
	return out
}

// SortAlerts orders alerts canonically — by unit, cell (cube.CompareKeys),
// then kind — and each alert's drill-down by cell. ShardedEngine results
// are always in this order; apply it to a single Engine's results before
// comparing the two.
func SortAlerts(alerts []Alert) {
	for i := range alerts {
		drill := alerts[i].Drill
		sort.Slice(drill, func(a, b int) bool { return cube.CompareKeys(drill[a].Key, drill[b].Key) < 0 })
	}
	sort.Slice(alerts, func(a, b int) bool {
		if alerts[a].Unit != alerts[b].Unit {
			return alerts[a].Unit < alerts[b].Unit
		}
		if c := cube.CompareKeys(alerts[a].Cell, alerts[b].Cell); c != 0 {
			return c < 0
		}
		return alerts[a].Kind < alerts[b].Kind
	})
}

// AdvanceTo closes units in order until `unit` is the open unit, exactly
// as if a record at unit's first tick had arrived, and returns the merged
// results. Targets at or before the open unit are a no-op. It is how a
// cluster ingest node applies the router's unit-boundary barrier frames:
// every node advances in lockstep even when it received no records for
// the closed units, so per-node checkpoints and snapshots always agree on
// the unit counters and merge losslessly.
func (s *ShardedEngine) AdvanceTo(unit int64) ([]*UnitResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	if unit <= s.unit {
		return nil, nil
	}
	return s.advanceTo(unit)
}

// Flush closes the currently open unit on every shard and returns the
// merged result (nil Result when no shard had data).
func (s *ShardedEngine) Flush() (*UnitResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	urs, err := s.advanceTo(s.unit + 1)
	if err != nil {
		return nil, err
	}
	return urs[0], nil
}

// ActiveCells returns the number of m-layer cells with data in the open
// unit, across all shards. It drains ingest buffers first.
func (s *ShardedEngine) ActiveCells() (int, error) {
	if err := s.ready(); err != nil {
		return 0, err
	}
	vals, err := s.broadcast(func(e *Engine) (any, error) { return e.ActiveCells(), nil })
	if err != nil {
		return 0, err
	}
	total := 0
	for _, v := range vals {
		total += v.(int)
	}
	return total, nil
}

// ask runs fn on one shard and returns its reply.
func (s *ShardedEngine) ask(sid int, fn func(*Engine) (any, error)) (any, error) {
	ch := make(chan shardReply, 1)
	s.shards[sid].in <- shardMsg{fn: fn, reply: ch}
	rep := <-ch
	return rep.val, rep.err
}

// TrendQuery aggregates the last k units of an o-cell's history
// (Theorem 3.3) from the shard that owns the cell.
func (s *ShardedEngine) TrendQuery(cell cube.CellKey, k int) (regression.ISB, error) {
	if err := s.ready(); err != nil {
		return regression.ISB{}, err
	}
	val, err := s.ask(s.hashMembers(&cell.Members), func(e *Engine) (any, error) {
		return e.TrendQuery(cell, k)
	})
	if err != nil {
		return regression.ISB{}, err
	}
	return val.(regression.ISB), nil
}

// TrendQueryAt aggregates the last k completed units of an o-cell at the
// given tilt level (0 = finest), from the shard that owns the cell.
func (s *ShardedEngine) TrendQueryAt(cell cube.CellKey, level, k int) (regression.ISB, error) {
	if err := s.ready(); err != nil {
		return regression.ISB{}, err
	}
	val, err := s.ask(s.hashMembers(&cell.Members), func(e *Engine) (any, error) {
		return e.TrendQueryAt(cell, level, k)
	})
	if err != nil {
		return regression.ISB{}, err
	}
	return val.(regression.ISB), nil
}

// HistoryLen returns how many units of history an o-cell currently has.
func (s *ShardedEngine) HistoryLen(cell cube.CellKey) (int, error) {
	if err := s.ready(); err != nil {
		return 0, err
	}
	val, err := s.ask(s.hashMembers(&cell.Members), func(e *Engine) (any, error) {
		return e.HistoryLen(cell), nil
	})
	if err != nil {
		return 0, err
	}
	return val.(int), nil
}

// ShardedCheckpoint is the serializable state of a ShardedEngine: one
// Checkpoint per shard. All shards agree on the open unit (boundaries are
// barriers), so the set restores into any shard count — including 1, via
// Merge — by repartitioning cells and history.
type ShardedCheckpoint struct {
	Shards []*Checkpoint `json:"shards"`
}

// validateSharded checks cross-shard consistency and returns the common
// unit counters.
func (scp *ShardedCheckpoint) validate() (unit, done int64, err error) {
	if scp == nil || len(scp.Shards) == 0 {
		return 0, 0, fmt.Errorf("%w: empty sharded checkpoint", ErrConfig)
	}
	for i, cp := range scp.Shards {
		if cp == nil {
			return 0, 0, fmt.Errorf("%w: nil shard checkpoint %d", ErrConfig, i)
		}
		if cp.Unit != scp.Shards[0].Unit || cp.UnitsDone != scp.Shards[0].UnitsDone {
			return 0, 0, fmt.Errorf("%w: shard %d at unit %d/%d, shard 0 at %d/%d",
				ErrConfig, i, cp.Unit, cp.UnitsDone, scp.Shards[0].Unit, scp.Shards[0].UnitsDone)
		}
		// The WAL watermark is a whole-log position, stamped identically on
		// every shard; disagreement means the shards were checkpointed at
		// different points in the stream.
		if cp.WALSeq != scp.Shards[0].WALSeq {
			return 0, 0, fmt.Errorf("%w: shard %d at WAL watermark %d, shard 0 at %d",
				ErrConfig, i, cp.WALSeq, scp.Shards[0].WALSeq)
		}
	}
	return scp.Shards[0].Unit, scp.Shards[0].UnitsDone, nil
}

// Merge flattens a sharded checkpoint into a single-engine Checkpoint.
// Shards hold disjoint cells and history, so concatenation is lossless;
// the result loads into a plain Engine (or re-shards into any count).
func (scp *ShardedCheckpoint) Merge() (*Checkpoint, error) {
	unit, done, err := scp.validate()
	if err != nil {
		return nil, err
	}
	out := &Checkpoint{Unit: unit, UnitsDone: done, WALSeq: scp.Shards[0].WALSeq, Schema: scp.Shards[0].Schema}
	for _, cp := range scp.Shards {
		out.Cells = append(out.Cells, cp.Cells...)
		out.History = append(out.History, cp.History...)
		out.Tilt = append(out.Tilt, cp.Tilt...)
	}
	// Concatenation order depends on the shard count; re-canonicalize so a
	// merged checkpoint is byte-comparable to a single engine's.
	out.normalize()
	return out, nil
}

// WALSeq returns the WAL watermark common to every shard (zero when no
// WAL is in use).
func (s *ShardedEngine) WALSeq() (int64, error) {
	if err := s.ready(); err != nil {
		return 0, err
	}
	v, err := s.ask(0, func(e *Engine) (any, error) { return e.WALSeq(), nil })
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// SetWALSeq stamps the WAL watermark on every shard. The watermark is a
// whole-log position — how many records the log owner has both appended
// and ingested — so all shards carry the same value and checkpoint
// validation can demand they agree.
func (s *ShardedEngine) SetWALSeq(seq int64) error {
	if err := s.ready(); err != nil {
		return err
	}
	_, err := s.broadcast(func(e *Engine) (any, error) {
		e.SetWALSeq(seq)
		return nil, nil
	})
	return err
}

// Checkpoint drains ingest buffers and exports every shard's state.
func (s *ShardedEngine) Checkpoint() (*ShardedCheckpoint, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	vals, err := s.broadcast(func(e *Engine) (any, error) { return e.Checkpoint(), nil })
	if err != nil {
		return nil, err
	}
	scp := &ShardedCheckpoint{Shards: make([]*Checkpoint, len(vals))}
	for i, v := range vals {
		scp.Shards[i] = v.(*Checkpoint)
	}
	return scp, nil
}

// Restore loads a checkpoint taken at any shard count — including a plain
// Engine's (wrap it in a one-shard ShardedCheckpoint) — by repartitioning
// cells by o-ancestor and history by o-cell across this engine's shards.
// Buffered records not yet past a boundary are discarded, mirroring
// Engine.Restore replacing un-checkpointed accumulator state.
func (s *ShardedEngine) Restore(scp *ShardedCheckpoint) error {
	if s.closed {
		return fmt.Errorf("%w: engine closed", ErrConfig)
	}
	unit, done, err := scp.validate()
	if err != nil {
		return err
	}
	parts := make([]*Checkpoint, len(s.shards))
	for i := range parts {
		parts[i] = &Checkpoint{Unit: unit, UnitsDone: done, WALSeq: scp.Shards[0].WALSeq, Schema: scp.Shards[0].Schema}
	}
	for _, cp := range scp.Shards {
		for _, cs := range cp.Cells {
			if len(cs.Members) != s.nDims {
				return fmt.Errorf("%w: checkpoint cell has %d members", ErrConfig, len(cs.Members))
			}
			sid, err := s.shardOf(cs.Members)
			if err != nil {
				return fmt.Errorf("%w: checkpoint %v", ErrConfig, err)
			}
			parts[sid].Cells = append(parts[sid].Cells, cs)
		}
		for _, ch := range cp.History {
			var members [cube.MaxDims]int32
			copy(members[:], ch.Members)
			sid := s.hashMembers(&members)
			parts[sid].History = append(parts[sid].History, ch)
		}
		for _, cf := range cp.Tilt {
			var members [cube.MaxDims]int32
			copy(members[:], cf.Members)
			sid := s.hashMembers(&members)
			parts[sid].Tilt = append(parts[sid].Tilt, cf)
		}
	}
	for i := range s.pending {
		s.pending[i] = nil
	}
	replies := make([]chan shardReply, len(s.shards))
	for i, sh := range s.shards {
		part := parts[i]
		ch := make(chan shardReply, 1)
		replies[i] = ch
		sh.in <- shardMsg{fn: func(e *Engine) (any, error) { return nil, e.Restore(part) }, reply: ch, reset: true}
	}
	var firstErr error
	for _, ch := range replies {
		if rep := <-ch; rep.err != nil && firstErr == nil {
			firstErr = rep.err
		}
	}
	if firstErr != nil {
		s.err = firstErr
		return firstErr
	}
	s.unit = unit
	s.openEnd = s.unitStart(unit + 1)
	s.done = done
	s.prevNonEmpty = false
	s.err = nil
	// Published snapshots describe units of the replaced state; readers
	// must wait for the first post-restore boundary.
	s.snap.Store(nil)
	return nil
}

// Close stops the shard goroutines and waits for them to exit. Buffered
// records that have not reached a unit boundary are dropped — Flush first
// for the final partial unit. Close is idempotent; every other method
// fails after it.
func (s *ShardedEngine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.in)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}
