package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/tilt"
)

// testTiltLevels is a small chain that promotes and evicts quickly: 4
// engine units per "hour", 3 hours per "day".
func testTiltLevels() []tilt.Level {
	return []tilt.Level{
		{Name: "quarter", Multiple: 1, Slots: 4},
		{Name: "hour", Multiple: 4, Slots: 6},
		{Name: "day", Multiple: 3, Slots: 2},
	}
}

func tiltConfig(t testing.TB) Config {
	return Config{
		Schema:           snapshotTestSchema(t),
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		TiltLevels:       testTiltLevels(),
		PublishSnapshots: true,
	}
}

func TestNewEngineValidatesTiltLevels(t *testing.T) {
	cfg := tiltConfig(t)
	cfg.TiltLevels = []tilt.Level{{Name: "bad", Multiple: 1, Slots: 0}}
	if _, err := NewEngine(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

// TestTiltedHistoryPromotesAndBounds drives enough units through a tilted
// engine to cross every promotion boundary and asserts (a) the finest
// level answers TrendQuery exactly like a flat engine over the same
// window, (b) coarser levels answer TrendQueryAt, and (c) total state
// stays bounded by the chain's slot capacity while a flat engine's
// history keeps growing.
func TestTiltedHistoryPromotesAndBounds(t *testing.T) {
	cfg := tiltConfig(t)
	flatCfg := cfg
	flatCfg.TiltLevels = nil
	flatCfg.HistoryUnits = 1024
	tilted, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewEngine(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	const units = 30
	ticks := int64(units * cfg.TicksPerUnit)
	ingestGrid(t, tilted.Ingest, 0, ticks)
	ingestGrid(t, flat.Ingest, 0, ticks)
	if _, err := tilted.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Flush(); err != nil {
		t.Fatal(err)
	}

	cell := oCell(t, 0, 0)
	// (a) Finest-level trends agree bitwise with the flat engine over the
	// retained window.
	k := tilted.HistoryLen(cell)
	if k != testTiltLevels()[0].Slots {
		t.Fatalf("finest retention %d, want %d", k, testTiltLevels()[0].Slots)
	}
	for q := 1; q <= k; q++ {
		a, err := tilted.TrendQuery(cell, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := flat.TrendQuery(cell, q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("k=%d: tilted %v vs flat %v", q, a, b)
		}
	}
	// (b) Coarser levels answer from promoted slots: one "hour" covers 4
	// engine units (with 30 closed units, the last complete hour is units
	// 24-27), one "day" 12.
	hour, err := tilted.TrendQueryAt(cell, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := hour.N(); n != int64(4*cfg.TicksPerUnit) {
		t.Fatalf("hour trend spans %d ticks, want %d", n, 4*cfg.TicksPerUnit)
	}
	if hour.Tb != int64(24*cfg.TicksPerUnit) {
		t.Fatalf("last hour starts at tick %d, want %d", hour.Tb, 24*cfg.TicksPerUnit)
	}
	day, err := tilted.TrendQueryAt(cell, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := day.N(); n != int64(12*cfg.TicksPerUnit) {
		t.Fatalf("day trend spans %d ticks, want %d", n, 12*cfg.TicksPerUnit)
	}
	if _, err := tilted.TrendQueryAt(cell, 3, 1); !errors.Is(err, ErrRecord) {
		t.Fatalf("out-of-range level: %v, want ErrRecord", err)
	}
	if _, err := flat.TrendQueryAt(cell, 1, 1); !errors.Is(err, ErrRecord) {
		t.Fatalf("flat engine must reject coarse levels: %v", err)
	}

	// (c) Bounded state: every frame is within capacity, while the flat
	// twin has accumulated every unit.
	inUse, capacity := tilted.TiltSlots()
	if inUse == 0 || inUse > capacity {
		t.Fatalf("tilt slots %d of %d", inUse, capacity)
	}
	perCell := tilted.Snapshot().FrameOf(cell)
	if perCell == nil {
		t.Fatal("snapshot has no frame for the o-cell")
	}
	var cellSlots int
	for _, lv := range perCell.Levels {
		if len(lv.Slots) > lv.Capacity {
			t.Fatalf("level %q holds %d slots, cap %d", lv.Name, len(lv.Slots), lv.Capacity)
		}
		cellSlots += len(lv.Slots)
	}
	if flatLen := flat.HistoryLen(cell); flatLen != units || cellSlots >= flatLen {
		t.Fatalf("tilted cell retains %d slots vs flat %d units — tilt must be smaller", cellSlots, flatLen)
	}
}

// oCell builds the o-layer cell key (a, b) for the snapshot test schema.
func oCell(t testing.TB, a, b int32) cube.CellKey {
	t.Helper()
	cb, err := cube.NewCuboid(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cube.NewCellKey(cb, a, b)
}

// TestTiltedZeroPadsAbsentUnits stops feeding one o-cell mid-stream and
// asserts its frame keeps advancing on zero regressions, so the finest
// trend keeps answering without gap errors (flat engines would reject).
func TestTiltedZeroPadsAbsentUnits(t *testing.T) {
	cfg := tiltConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Units 0-1: both halves of the grid. Units 2-3: only cells under
	// o-cell (1,1) — members (2..3, 2..3).
	for tick := int64(0); tick < 8; tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for tick := int64(8); tick < 16; tick++ {
		for a := int32(2); a < 4; a++ {
			for b := int32(2); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	quiet := oCell(t, 0, 0)
	if got := eng.HistoryLen(quiet); got != 4 {
		t.Fatalf("quiet cell retains %d units, want 4 (zero-padded)", got)
	}
	isb, err := eng.TrendQuery(quiet, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The last two units saw no data for this cell: a zero regression.
	if isb.Base != 0 || isb.Slope != 0 {
		t.Fatalf("padded trend = %v, want zero line", isb)
	}
	if isb.Tb != 8 || isb.Te != 15 {
		t.Fatalf("padded trend interval [%d,%d], want [8,15]", isb.Tb, isb.Te)
	}
}

// TestShardedTiltedMatchesSingle is the tilt extension of
// TestShardedSnapshotMatchesSingle: the merged frame set must be bitwise
// identical to the single engine's at several shard counts.
func TestShardedTiltedMatchesSingle(t *testing.T) {
	cfg := tiltConfig(t)
	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 83 // 20 full units + a partial one
	ingestGrid(t, single.Ingest, 0, ticks)
	want := single.Snapshot()
	if want == nil || want.Frames == nil || len(want.Frames) == 0 {
		t.Fatalf("single engine published no frames: %+v", want)
	}

	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seng, err := NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer seng.Close()
			ingestGrid(t, seng.Ingest, 0, ticks)
			got := seng.Snapshot()
			if got == nil || got.Unit != want.Unit {
				t.Fatalf("snapshot = %+v, want unit %d", got, want.Unit)
			}
			if !reflect.DeepEqual(got.Frames, want.Frames) {
				t.Fatal("merged frames differ from single engine")
			}
			if !reflect.DeepEqual(got.History, want.History) {
				t.Fatal("merged derived history differs from single engine")
			}
			// Routed trend queries agree too.
			cell := oCell(t, 1, 0)
			a, err := seng.TrendQueryAt(cell, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			b, err := single.TrendQueryAt(cell, 1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("sharded hour trend %v vs single %v", a, b)
			}
		})
	}
}

// TestTiltedCheckpointRoundTrip checkpoints a tilted engine mid-stream,
// restores into a fresh engine, and asserts the continuation is bitwise
// identical to the uninterrupted run.
func TestTiltedCheckpointRoundTrip(t *testing.T) {
	cfg := tiltConfig(t)
	golden, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, golden.Ingest, 0, 90)
	ingestGrid(t, interrupted.Ingest, 0, 50)

	cp := interrupted.Checkpoint()
	if len(cp.Tilt) == 0 {
		t.Fatal("tilted checkpoint carries no frames")
	}
	// The JSON round trip is what streamd does.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	var decoded Checkpoint
	if err := json.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	resumed, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, resumed.Ingest, 50, 90)
	if _, err := golden.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Flush(); err != nil {
		t.Fatal(err)
	}
	a, b := golden.Snapshot(), resumed.Snapshot()
	if !reflect.DeepEqual(a.Frames, b.Frames) {
		t.Fatal("resumed frames diverge from the uninterrupted run")
	}
	if !reflect.DeepEqual(a.History, b.History) {
		t.Fatal("resumed history diverges from the uninterrupted run")
	}
}

// TestFlatCheckpointSeedsTiltedEngine restores a pre-tilt (flat-history)
// checkpoint into a tilt-configured engine: frames must reseed from the
// replayed history and keep promoting from there.
func TestFlatCheckpointSeedsTiltedEngine(t *testing.T) {
	flatCfg := tiltConfig(t)
	flatCfg.TiltLevels = nil
	flat, err := NewEngine(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, flat.Ingest, 0, 50) // 12 closed units
	cp := flat.Checkpoint()
	if len(cp.Tilt) != 0 {
		t.Fatal("flat checkpoint must not carry frames")
	}

	cfg := tiltConfig(t)
	tilted, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tilted.Restore(cp); err != nil {
		t.Fatal(err)
	}
	cell := oCell(t, 0, 1)
	// The flat history retained all 12 units; the seeded frame promotes
	// them, so hours exist immediately after restore.
	if _, err := tilted.TrendQueryAt(cell, 1, 2); err != nil {
		t.Fatalf("no hour trend after seeding: %v", err)
	}
	// And the continuation matches an engine that was tilted all along.
	golden, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, golden.Ingest, 0, 90)
	ingestGrid(t, tilted.Ingest, 50, 90)
	if _, err := golden.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tilted.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(golden.Snapshot().Frames, tilted.Snapshot().Frames) {
		t.Fatal("seeded engine diverges from the always-tilted run")
	}
}

// TestTiltedCheckpointLoadsIntoFlatEngine goes the other way: the derived
// finest-level history in a v3 checkpoint restores into a flat engine.
func TestTiltedCheckpointLoadsIntoFlatEngine(t *testing.T) {
	cfg := tiltConfig(t)
	tilted, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, tilted.Ingest, 0, 50)
	cp := tilted.Checkpoint()

	flatCfg := cfg
	flatCfg.TiltLevels = nil
	flat, err := NewEngine(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Restore(cp); err != nil {
		t.Fatal(err)
	}
	cell := oCell(t, 0, 0)
	if got, want := flat.HistoryLen(cell), tilted.HistoryLen(cell); got != want {
		t.Fatalf("flat history %d units, tilted finest level %d", got, want)
	}
	a, err := flat.TrendQuery(cell, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tilted.TrendQuery(cell, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cross-loaded trend %v vs %v", a, b)
	}
}

// TestShardedTiltedCheckpointRepartitions round-trips a tilted sharded
// checkpoint across shard counts.
func TestShardedTiltedCheckpointRepartitions(t *testing.T) {
	cfg := tiltConfig(t)
	src, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ingestGrid(t, src.Ingest, 0, 50)
	scp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var frames int
	for _, cp := range scp.Shards {
		frames += len(cp.Tilt)
	}
	if frames == 0 {
		t.Fatal("sharded tilted checkpoint carries no frames")
	}

	for _, shards := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dst, err := NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Close()
			if err := dst.Restore(scp); err != nil {
				t.Fatal(err)
			}
			ingestGrid(t, dst.Ingest, 50, 90)
			if _, err := dst.Flush(); err != nil {
				t.Fatal(err)
			}
			golden, err := NewShardedEngine(cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			defer golden.Close()
			ingestGrid(t, golden.Ingest, 0, 90)
			if _, err := golden.Flush(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(golden.Snapshot().Frames, dst.Snapshot().Frames) {
				t.Fatal("repartitioned frames diverge")
			}
		})
	}
}

// TestRestoreRejectsCorruptHistory is the checkpoint-validation bugfix:
// duplicate or out-of-order history units must fail Restore with
// ErrConfig instead of silently poisoning later TrendQuery calls — in
// both history modes.
func TestRestoreRejectsCorruptHistory(t *testing.T) {
	for _, mode := range []string{"flat", "tilted"} {
		t.Run(mode, func(t *testing.T) {
			cfg := tiltConfig(t)
			if mode == "flat" {
				cfg.TiltLevels = nil
			}
			src, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingestGrid(t, src.Ingest, 0, 20)
			good := src.Checkpoint()
			if len(good.History) == 0 || len(good.History[0].Entries) < 3 {
				t.Fatalf("checkpoint too small to corrupt: %+v", good)
			}

			corrupt := []struct {
				name string
				mut  func(cp *Checkpoint)
			}{
				{"duplicate unit", func(cp *Checkpoint) {
					cp.History[0].Entries[1].Unit = cp.History[0].Entries[0].Unit
				}},
				{"out of order", func(cp *Checkpoint) {
					e := cp.History[0].Entries
					e[0].Unit, e[1].Unit = e[1].Unit, e[0].Unit
				}},
				{"unit beyond open", func(cp *Checkpoint) {
					e := cp.History[0].Entries
					e[len(e)-1].Unit = cp.Unit + 3
				}},
				{"negative unit", func(cp *Checkpoint) {
					cp.History[0].Entries[0].Unit = -1
				}},
			}
			for _, tc := range corrupt {
				cp := copyCheckpoint(t, good)
				tc.mut(cp)
				dst, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := dst.Restore(cp); !errors.Is(err, ErrConfig) {
					t.Fatalf("%s: Restore = %v, want ErrConfig", tc.name, err)
				}
			}
			// The untouched checkpoint still restores.
			dst, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Restore(copyCheckpoint(t, good)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRestoreRejectsCorruptFrames mutates the v3 frame records.
func TestRestoreRejectsCorruptFrames(t *testing.T) {
	cfg := tiltConfig(t)
	src, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, src.Ingest, 0, 20)
	good := src.Checkpoint()
	if len(good.Tilt) == 0 {
		t.Fatal("no frames to corrupt")
	}
	corrupt := []struct {
		name string
		mut  func(cp *Checkpoint)
	}{
		{"frame beyond open unit", func(cp *Checkpoint) { cp.Tilt[0].Base++ }},
		{"negative base", func(cp *Checkpoint) {
			cp.Tilt[0].Base = -1
			cp.Tilt[0].Frame.Pushed = cp.Unit + 1
		}},
		{"unit tick mismatch", func(cp *Checkpoint) { cp.Tilt[0].Frame.UnitTicks++ }},
		{"slot ordinal corruption", func(cp *Checkpoint) { cp.Tilt[0].Frame.Levels[0].Slots[0].Unit += 7 }},
	}
	for _, tc := range corrupt {
		cp := copyCheckpoint(t, good)
		tc.mut(cp)
		dst, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(cp); !errors.Is(err, ErrConfig) {
			t.Fatalf("%s: Restore = %v, want ErrConfig", tc.name, err)
		}
	}
}

// copyCheckpoint deep-copies through the JSON wire form, exactly like a
// checkpoint file would round-trip.
func copyCheckpoint(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	out := &Checkpoint{}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// BenchmarkTiltedIngest measures the tilted hot path and reports the
// bounded-memory invariant: slots per cell stays at the chain capacity no
// matter how many units stream through, where flat history scales with
// HistoryUnits (and unbounded retention would scale with units ingested).
func BenchmarkTiltedIngest(b *testing.B) {
	for _, mode := range []string{"flat", "tilted"} {
		b.Run(mode, func(b *testing.B) {
			cfg := tiltConfig(b)
			cfg.PublishSnapshots = false
			if mode == "flat" {
				cfg.TiltLevels = nil
			}
			eng, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			members := make([][]int32, 0, 16)
			for a := int32(0); a < 4; a++ {
				for bb := int32(0); bb < 4; bb++ {
					members = append(members, []int32{a, bb})
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			tick := int64(0)
			for i := 0; i < b.N; i++ {
				m := members[i%len(members)]
				if i%len(members) == 0 && i > 0 {
					tick++
				}
				if _, err := eng.Ingest(m, tick, float64(i%97)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			units := eng.UnitsDone()
			if mode == "tilted" {
				inUse, capacity := eng.TiltSlots()
				cells := len(eng.frames)
				if cells > 0 {
					b.ReportMetric(float64(inUse)/float64(cells), "slots/cell")
				}
				if inUse > capacity {
					b.Fatalf("slots in use %d exceed capacity %d after %d units", inUse, capacity, units)
				}
			} else {
				var entries int
				for _, h := range eng.history {
					entries += len(h)
				}
				if n := len(eng.history); n > 0 {
					b.ReportMetric(float64(entries)/float64(n), "slots/cell")
				}
			}
			b.ReportMetric(float64(units), "units")
		})
	}
}

// TestTiltedStateBoundedOverLongRun pins the acceptance criterion
// directly: after hundreds of units, per-cell state is the frame
// capacity, not the unit count.
func TestTiltedStateBoundedOverLongRun(t *testing.T) {
	cfg := tiltConfig(t)
	cfg.PublishSnapshots = false
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const units = 300
	for u := int64(0); u < units; u++ {
		tick := u * int64(cfg.TicksPerUnit)
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(u)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	probe, err := tilt.NewUnitFrame(cfg.TiltLevels)
	if err != nil {
		t.Fatal(err)
	}
	perCellCap := probe.SlotCapacity()
	inUse, capacity := eng.TiltSlots()
	cells := len(eng.frames)
	if cells == 0 {
		t.Fatal("no frames after long run")
	}
	if inUse > capacity || capacity != cells*perCellCap {
		t.Fatalf("slots %d of %d (cells %d × cap %d) after %d units", inUse, capacity, cells, perCellCap, units)
	}
	if perCellCap >= units {
		t.Fatalf("test is vacuous: capacity %d ≥ units %d", perCellCap, units)
	}
}
