// Package stream implements the paper's on-line operation (§4.5): raw
// stream records accumulate per m-layer cell in O(1) regression
// accumulators; each completed tilt-frame unit (e.g. a quarter of an hour)
// triggers a cube computation over the unit's m-layer ISBs with one of the
// two exception-based algorithms, produces o-layer observation alerts, and
// promotes per-o-cell regression history for multi-granularity trend
// queries. "Although the stream data flows in-and-out, regression always
// keeps up to the most recent granularity time unit at each layer."
package stream

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
	"repro/internal/tilt"
	"repro/internal/timeseries"
)

// ErrConfig is returned for invalid engine configurations.
var ErrConfig = errors.New("stream: invalid configuration")

// ErrRecord is returned for unusable records.
var ErrRecord = errors.New("stream: invalid record")

// Algorithm selects the cubing algorithm run at each unit boundary.
type Algorithm int

// The paper's two algorithms.
const (
	MOCubing Algorithm = iota
	PopularPath
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MOCubing:
		return "m/o-cubing"
	case PopularPath:
		return "popular-path"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config configures the online engine.
type Config struct {
	Schema *cube.Schema
	// TicksPerUnit is the number of raw stream ticks per finest tilt-frame
	// unit (15 for minute data with quarter units).
	TicksPerUnit int
	// StartTick is the tick of the first expected record (default 0).
	StartTick int64
	// Threshold drives exception detection at every layer.
	Threshold exception.Thresholder
	// Algorithm selects m/o-cubing (default) or popular-path.
	Algorithm Algorithm
	// Path is the popular drilling path; defaults to the lattice's
	// DefaultPath when the popular-path algorithm is selected.
	Path cube.Path
	// HistoryUnits bounds per-o-cell regression history (default 64). It
	// only applies to the flat history; with TiltLevels set, retention is
	// the level chain's slot capacity instead.
	HistoryUnits int
	// TiltLevels, when non-empty, replaces the flat per-o-cell history
	// with a tilt time frame (§4.1): each closed unit's o-layer ISBs are
	// promoted through the level chain (tilt.UnitFrame), so trend queries
	// reach far into the past at progressively coarser granularity while
	// per-cell state stays bounded by the chain's slot capacity — the
	// paper's "71 units instead of 35,136". tilt.CalendarLevels() is the
	// natural chain when a unit is a quarter-hour; the finest level's
	// Multiple is ignored (each engine unit is one finest frame unit).
	// Empty keeps the flat HistoryUnits-bounded history, bit-for-bit as
	// before.
	TiltLevels []tilt.Level
	// Delta, when set, also raises change alerts comparing each o-cell's
	// slope against its previous unit ("current quarter vs. the last").
	Delta *exception.Delta
	// DeltaDrill, together with Delta, computes the full change-based
	// exception cube between consecutive units (core.DeltaCubing) and
	// attaches it to each UnitResult. Costs one extra cube pass plus
	// retention of the previous unit's m-layer.
	DeltaDrill bool
	// PublishSnapshots makes the engine publish an immutable Snapshot at
	// every unit boundary for lock-free concurrent readers (the serving
	// layer). Costs one history copy per closed unit — nothing on the
	// per-record path — and is off by default so pure-ingest pipelines pay
	// zero.
	PublishSnapshots bool
}

// AlertKind distinguishes alert causes.
type AlertKind int

// Alert causes.
const (
	// SlopeException fires when an o-cell's slope magnitude passes the
	// threshold.
	SlopeException AlertKind = iota
	// SlopeChange fires when an o-cell's slope moved more than the Delta
	// detector allows between consecutive units.
	SlopeChange
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case SlopeException:
		return "slope-exception"
	case SlopeChange:
		return "slope-change"
	default:
		return fmt.Sprintf("AlertKind(%d)", int(k))
	}
}

// Alert is one o-layer observation the analyst would act on, with the
// exception descendants ("supporters") found below the cell by the
// exception-guided drill.
type Alert struct {
	Unit int64
	Kind AlertKind
	Cell cube.CellKey
	ISB  regression.ISB
	// Drill lists retained exception cells that roll up to this o-cell,
	// coarsest cuboids first.
	Drill []core.Cell
}

// UnitResult is the outcome of one completed unit.
type UnitResult struct {
	Unit     int64
	Interval timeseries.Interval
	// Result is the cube computation outcome; nil for units that closed
	// with no data at all.
	Result *core.Result
	Alerts []Alert
	// Delta is the change-based exception cube against the previous unit
	// (only with Config.DeltaDrill; nil for the first unit, empty units,
	// or after a unit gap).
	Delta *core.DeltaResult
}

type historyEntry struct {
	unit int64
	isb  regression.ISB
}

// Engine is the online analyzer. Not safe for concurrent use; wrap it in
// SafeEngine or confine it to one goroutine (share memory by
// communicating).
type Engine struct {
	cfg  Config
	nd   int   // cached len(cfg.Schema.Dims), for the per-record path
	unit int64 // index of the current (open) unit
	// openStart/openEnd cache the open unit's tick bounds
	// [openStart, openEnd), so the per-record boundary tests are single
	// comparisons.
	openStart int64
	openEnd   int64
	// cells holds the open unit's per-cell accumulators keyed by the full
	// member tuple. When the m-layer is small enough (denseCells), the hot
	// path uses the dense direct-index table below instead — hashing a
	// MaxDims-wide array key costs more than the whole regression update —
	// and this map only sees out-of-range members, which must keep their
	// own cells so their error still surfaces at unit close.
	cells map[[cube.MaxDims]int32]*regression.Accumulator
	// dense[i] is the accumulator of the cell whose mixed-radix member
	// index is i (strides/cards below); nil when the m-layer is too large.
	// denseActive lists the occupied indexes, so closes and checkpoints
	// never scan the whole table.
	dense       []*regression.Accumulator
	denseActive []int64
	strides     [cube.MaxDims]int64
	cards       [cube.MaxDims]int32
	history     map[cube.CellKey][]historyEntry
	// frames holds the per-o-cell tilt frames; non-nil exactly when
	// Config.TiltLevels is set, in which case history stays empty and
	// trend state lives here instead.
	frames    map[cube.CellKey]*cellFrame
	unitsDone int64
	// accPool recycles the per-cell accumulators of closed units, so a
	// steady-state unit allocates nothing per cell.
	accPool []*regression.Accumulator
	// inputBufs/memberBufs double-buffer each closed unit's m-layer batch:
	// the previous unit's buffer may still be aliased by prevInputs
	// (DeltaDrill compares adjacent units), so closes alternate between two
	// reusable buffers instead of reallocating every unit.
	inputBufs  [2][]core.Input
	memberBufs [2][]int32
	bufSel     int
	// prevInputs is the previous unit's m-layer (DeltaDrill only).
	prevInputs []core.Input
	prevUnit   int64
	// shardDelta is set on the per-shard engines of a ShardedEngine: the
	// delta base then tracks through locally-empty units (the global unit
	// may still have data in other shards), so per-shard delta cubes union
	// to the single-engine result. The coordinator suppresses the merged
	// delta when the previous unit was globally empty.
	shardDelta bool
	// snap is the published per-unit snapshot (PublishSnapshots); readers
	// load it without locks, so it must only ever hold fully built,
	// never-again-mutated values. bus broadcasts the same values push-side
	// to subscribers (Subscribe).
	snap atomic.Pointer[Snapshot]
	bus  snapBus
	// walSeq is the WAL watermark the owner stamps before checkpointing:
	// how many log records this engine's state reflects. The engine never
	// advances it itself — counting durable records is the log owner's job
	// (replayed records and live records both count, appended-but-not-yet-
	// ingested ones don't).
	walSeq int64
}

// NewEngine validates the config and returns an engine expecting its first
// record at StartTick.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrConfig)
	}
	if cfg.TicksPerUnit < 1 {
		return nil, fmt.Errorf("%w: ticks per unit %d", ErrConfig, cfg.TicksPerUnit)
	}
	if cfg.Threshold == nil {
		return nil, fmt.Errorf("%w: nil thresholder", ErrConfig)
	}
	if cfg.HistoryUnits == 0 {
		cfg.HistoryUnits = 64
	}
	if cfg.HistoryUnits < 1 {
		return nil, fmt.Errorf("%w: history units %d", ErrConfig, cfg.HistoryUnits)
	}
	if cfg.Algorithm == PopularPath && len(cfg.Path.Cuboids) == 0 {
		cfg.Path = cube.NewLattice(cfg.Schema).DefaultPath()
	}
	if len(cfg.TiltLevels) > 0 {
		// Validate the level chain once; per-cell frames are built lazily.
		if _, err := tilt.NewUnitFrame(cfg.TiltLevels); err != nil {
			return nil, fmt.Errorf("%w: tilt levels: %v", ErrConfig, err)
		}
	}
	e := &Engine{
		cfg:       cfg,
		nd:        len(cfg.Schema.Dims),
		openStart: cfg.StartTick,
		openEnd:   cfg.StartTick + int64(cfg.TicksPerUnit),
		cells:     make(map[[cube.MaxDims]int32]*regression.Accumulator),
		history:   make(map[cube.CellKey][]historyEntry),
	}
	if len(cfg.TiltLevels) > 0 {
		e.frames = make(map[cube.CellKey]*cellFrame)
	}
	// Direct-index cell storage when the m-layer is small enough: one
	// mixed-radix index per member tuple replaces the map hash of a
	// MaxDims-wide key on the per-record path.
	size := int64(1)
	for d, dim := range cfg.Schema.Dims {
		card := int64(dim.Hierarchy.Cardinality(dim.MLevel))
		e.cards[d] = int32(card)
		e.strides[d] = size
		size *= card
		if size > denseCells {
			size = 0
			break
		}
	}
	if size > 0 {
		e.dense = make([]*regression.Accumulator, size)
	}
	return e, nil
}

// denseCells bounds the direct-index cell table: an m-layer with at most
// this many potential cells gets O(1) indexed lookups (512 KiB of pointers
// at the cap); anything larger stays on the map.
const denseCells = 1 << 16

// denseIndex returns the mixed-radix index of a member tuple, or false when
// any member falls outside its dimension's m-layer (those cells live in the
// fallback map so their error still surfaces at unit close).
func (e *Engine) denseIndex(members []int32) (int64, bool) {
	idx := int64(0)
	for d, m := range members {
		if uint32(m) >= uint32(e.cards[d]) {
			return 0, false
		}
		idx += int64(m) * e.strides[d]
	}
	return idx, true
}

// denseMembers decodes a mixed-radix index back into the member tuple.
func (e *Engine) denseMembers(idx int64, members []int32) {
	for d := 0; d < e.nd; d++ {
		members[d] = int32(idx / e.strides[d] % int64(e.cards[d]))
	}
}

// Unit returns the index of the currently open unit.
func (e *Engine) Unit() int64 { return e.unit }

// UnitsDone returns how many units have been closed.
func (e *Engine) UnitsDone() int64 { return e.unitsDone }

// ActiveCells returns the number of m-layer cells with data in the open
// unit.
func (e *Engine) ActiveCells() int { return len(e.denseActive) + len(e.cells) }

// WALSeq returns the WAL watermark: the count of write-ahead-log records
// this engine's state reflects (zero when no WAL is in use).
func (e *Engine) WALSeq() int64 { return e.walSeq }

// SetWALSeq stamps the WAL watermark. The log owner calls it after
// ingesting records it has durably appended, so the next Checkpoint
// records exactly which log prefix the state covers; recovery then
// replays records [WALSeq, end) and nothing else.
func (e *Engine) SetWALSeq(seq int64) { e.walSeq = seq }

func (e *Engine) unitStart(u int64) int64 {
	return e.cfg.StartTick + u*int64(e.cfg.TicksPerUnit)
}

// Ingest consumes one record. Records may skip ticks (absent readings
// count as zero usage) and may open new cells mid-unit, but each cell's
// ticks must be non-decreasing and at most one reading per tick. Crossing
// a unit boundary closes earlier units; their results are returned in
// order (units that received no data yield a UnitResult with a nil
// Result).
func (e *Engine) Ingest(members []int32, tick int64, value float64) ([]*UnitResult, error) {
	if len(members) != e.nd {
		return nil, fmt.Errorf("%w: %d members for %d dimensions", ErrRecord, len(members), e.nd)
	}
	if tick < e.openStart {
		return nil, fmt.Errorf("%w: tick %d before open unit start %d", ErrRecord, tick, e.openStart)
	}
	var closed []*UnitResult
	for tick >= e.openEnd {
		ur, err := e.closeUnit()
		if err != nil {
			return closed, err
		}
		closed = append(closed, ur)
	}

	var acc *regression.Accumulator
	if e.dense != nil {
		if idx, ok := e.denseIndex(members); ok {
			acc = e.dense[idx]
			if acc == nil {
				acc = e.newAccumulator()
				e.dense[idx] = acc
				e.denseActive = append(e.denseActive, idx)
			}
		}
	}
	if acc == nil {
		var key [cube.MaxDims]int32
		copy(key[:], members)
		var ok bool
		acc, ok = e.cells[key]
		if !ok {
			acc = e.newAccumulator()
			e.cells[key] = acc
		}
	}
	if tick < acc.NextTick() {
		return closed, fmt.Errorf("%w: tick %d already consumed for cell (next %d)", ErrRecord, tick, acc.NextTick())
	}
	// Absent ticks count as zero usage; the bulk advance replaces the old
	// one-Add-per-gap-tick loop bit-for-bit.
	acc.AdvanceTo(tick)
	if err := acc.Add(tick, value); err != nil {
		return closed, err
	}
	return closed, nil
}

// newAccumulator draws a recycled per-cell accumulator for the open unit,
// falling back to allocation while the pool warms up.
func (e *Engine) newAccumulator() *regression.Accumulator {
	if n := len(e.accPool); n > 0 {
		acc := e.accPool[n-1]
		e.accPool = e.accPool[:n-1]
		acc.Reset(e.openStart)
		return acc
	}
	return regression.NewAccumulator(e.openStart)
}

// Flush closes the currently open unit even if it is mid-way: every active
// cell is zero-padded to the unit boundary first. Returns the unit's
// result (nil Result when no cell had data).
func (e *Engine) Flush() (*UnitResult, error) {
	return e.closeUnit()
}

// AdvanceTo closes units in order until `unit` is the open unit, as if a
// record at unit's first tick had arrived. It is how a coordinator (a
// ShardedEngine, or a wall-clock driver with sparse data) forces engines
// past boundaries without a record; already being at or past `unit` is a
// no-op.
func (e *Engine) AdvanceTo(unit int64) ([]*UnitResult, error) {
	var out []*UnitResult
	for e.unit < unit {
		ur, err := e.closeUnit()
		if err != nil {
			return out, err
		}
		out = append(out, ur)
	}
	return out, nil
}

func (e *Engine) closeUnit() (*UnitResult, error) {
	lo := e.unitStart(e.unit)
	hi := e.unitStart(e.unit+1) - 1
	ur := &UnitResult{Unit: e.unit, Interval: timeseries.Interval{Tb: lo, Te: hi}}

	// Reuse this close's buffers from two units ago (prevInputs may still
	// alias last unit's); member tuples are copied into the arena so the
	// accumulator map entries can be recycled immediately.
	nd := len(e.cfg.Schema.Dims)
	inputs := e.inputBufs[e.bufSel][:0]
	if inputs == nil {
		inputs = make([]core.Input, 0, e.ActiveCells())
	}
	arena := e.memberBufs[e.bufSel][:0]
	harvest := func(members []int32, acc *regression.Accumulator) error {
		acc.AdvanceTo(hi + 1) // zero-pad to the unit boundary, in O(1)
		isb, err := acc.Snapshot()
		if err != nil {
			return err
		}
		start := len(arena)
		arena = append(arena, members...)
		inputs = append(inputs, core.Input{Members: arena[start:len(arena):len(arena)], Measure: isb})
		e.accPool = append(e.accPool, acc)
		return nil
	}
	var denseKey [cube.MaxDims]int32
	for _, idx := range e.denseActive {
		e.denseMembers(idx, denseKey[:nd])
		if err := harvest(denseKey[:nd], e.dense[idx]); err != nil {
			return nil, err
		}
		e.dense[idx] = nil
	}
	e.denseActive = e.denseActive[:0]
	for key, acc := range e.cells {
		if err := harvest(key[:nd], acc); err != nil {
			return nil, err
		}
	}
	// Bound recycled state to a small multiple of this unit's size, so one
	// bursty unit cannot pin its peak footprint forever.
	if bound := 2*len(inputs) + 1024; len(e.accPool) > bound {
		for i := bound; i < len(e.accPool); i++ {
			e.accPool[i] = nil // release for GC; keep the slot array
		}
		e.accPool = e.accPool[:bound]
	}
	if bound := 4*len(inputs) + 1024; cap(inputs) > bound {
		inputs = append(make([]core.Input, 0, bound), inputs...)
		// The arena's contents are reached only through inputs' Members
		// (which keep the old backing alive for this unit); only the
		// stored capacity matters for the next reuse.
		arena = make([]int32, 0, bound*nd)
	}
	e.inputBufs[e.bufSel] = inputs
	e.memberBufs[e.bufSel] = arena
	e.bufSel ^= 1
	// Canonical member order: cubing accumulates floats in input order, so
	// sorting here makes every unit result bitwise reproducible across runs
	// and identical between sharded and single-engine computation.
	slices.SortFunc(inputs, func(a, b core.Input) int {
		return slices.Compare(a.Members, b.Members)
	})
	// Stream data flows in-and-out: the unit's accumulators return to the
	// pool and the map empties in place.
	clear(e.cells)
	e.unit++
	e.openStart = e.openEnd
	e.openEnd += int64(e.cfg.TicksPerUnit)

	if len(inputs) == 0 {
		if e.shardDelta && e.cfg.DeltaDrill && e.cfg.Delta != nil {
			e.prevInputs = inputs // empty but non-nil: the base is this unit
			e.prevUnit = ur.Unit
		}
		if e.tilted() {
			// Frames pad empty units with zero regressions so promotion
			// cascades stay contiguous.
			if err := e.recordTilt(ur, nil); err != nil {
				return nil, err
			}
		}
		e.unitsDone++
		if e.cfg.PublishSnapshots {
			e.publishSnapshot(ur)
		}
		return ur, nil
	}

	var res *core.Result
	var err error
	switch e.cfg.Algorithm {
	case PopularPath:
		res, err = core.PopularPath(e.cfg.Schema, inputs, e.cfg.Threshold, e.cfg.Path)
	default:
		res, err = core.MOCubing(e.cfg.Schema, inputs, e.cfg.Threshold)
	}
	if err != nil {
		return nil, err
	}
	ur.Result = res
	ur.Alerts = e.raiseAlerts(ur, res)
	if e.cfg.DeltaDrill && e.cfg.Delta != nil {
		// Only adjacent units can be compared; a gap resets the base.
		if e.prevInputs != nil && e.prevUnit == ur.Unit-1 {
			delta, err := core.DeltaCubing(e.cfg.Schema, inputs, e.prevInputs, *e.cfg.Delta)
			if err != nil {
				return nil, err
			}
			ur.Delta = delta
		}
		e.prevInputs = inputs
		e.prevUnit = ur.Unit
	}
	if e.tilted() {
		if err := e.recordTilt(ur, res); err != nil {
			return nil, err
		}
	} else {
		e.recordHistory(ur, res)
	}
	e.unitsDone++
	if e.cfg.PublishSnapshots {
		e.publishSnapshot(ur)
	}
	return ur, nil
}

func (e *Engine) raiseAlerts(ur *UnitResult, res *core.Result) []Alert {
	var alerts []Alert
	oThr := e.cfg.Threshold.Threshold(e.cfg.Schema.OLayer())
	for key, isb := range res.OLayer {
		if exception.IsException(isb, oThr) {
			alerts = append(alerts, Alert{
				Unit:  ur.Unit,
				Kind:  SlopeException,
				Cell:  key,
				ISB:   isb,
				Drill: e.drill(res, key),
			})
		}
		if e.cfg.Delta != nil {
			if lastUnit, lastISB, ok := e.lastUnit(key); ok &&
				lastUnit == ur.Unit-1 && e.cfg.Delta.Exceptional(isb, lastISB, true) {
				alerts = append(alerts, Alert{Unit: ur.Unit, Kind: SlopeChange, Cell: key, ISB: isb})
			}
		}
	}
	return alerts
}

// drill collects retained exception cells that roll up to the o-cell — the
// "exception supporters" an analyst drills into (§4.3).
func (e *Engine) drill(res *core.Result, oCell cube.CellKey) []core.Cell {
	var out []core.Cell
	for key, isb := range res.Exceptions {
		if key == oCell {
			continue
		}
		up, err := cube.RollUpKey(e.cfg.Schema, key, oCell.Cuboid)
		if err != nil {
			continue // cuboid not dominating the o-layer cannot support it
		}
		if up == oCell {
			out = append(out, core.Cell{Key: key, ISB: isb})
		}
	}
	return out
}

// lastUnit returns the most recent completed unit recorded for an o-cell —
// from the flat history, or from the finest frame level in tilt mode
// (where absent units were padded with zero regressions, so the previous
// unit always exists once a cell has a frame).
func (e *Engine) lastUnit(key cube.CellKey) (int64, regression.ISB, bool) {
	if e.tilted() {
		cf := e.frames[key]
		if cf == nil {
			return 0, regression.ISB{}, false
		}
		s, ok := cf.frame.LastSlot(0)
		if !ok {
			return 0, regression.ISB{}, false
		}
		return cf.base + s.Unit, s.ISB, true
	}
	h := e.history[key]
	if len(h) == 0 {
		return 0, regression.ISB{}, false
	}
	last := h[len(h)-1]
	return last.unit, last.isb, true
}

func (e *Engine) recordHistory(ur *UnitResult, res *core.Result) {
	for key, isb := range res.OLayer {
		h := append(e.history[key], historyEntry{unit: ur.Unit, isb: isb})
		if over := len(h) - e.cfg.HistoryUnits; over > 0 {
			h = append(h[:0], h[over:]...)
		}
		e.history[key] = h
	}
}

// TrendQuery aggregates the last k units of an o-cell's history into one
// regression over the combined interval (Theorem 3.3). It fails when the
// cell lacks k consecutive trailing units. In tilt mode it answers from
// the finest frame level (whose retention is TiltLevels[0].Slots).
func (e *Engine) TrendQuery(cell cube.CellKey, k int) (regression.ISB, error) {
	if e.tilted() {
		var slots []tilt.Slot
		var base int64
		if cf := e.frames[cell]; cf != nil {
			slots = cf.frame.SlotsAt(0)
			base = cf.base
		}
		return aggregateTrend(len(slots), k, func(i int) (int64, regression.ISB) {
			return base + slots[i].Unit, slots[i].ISB
		})
	}
	h := e.history[cell]
	return aggregateTrend(len(h), k, func(i int) (int64, regression.ISB) { return h[i].unit, h[i].isb })
}

// HistoryLen returns how many units of history an o-cell currently has at
// the finest granularity.
func (e *Engine) HistoryLen(cell cube.CellKey) int {
	if e.tilted() {
		if cf := e.frames[cell]; cf != nil {
			return cf.frame.SlotsLen(0)
		}
		return 0
	}
	return len(e.history[cell])
}
