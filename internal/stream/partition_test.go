package stream

import (
	"testing"

	"repro/internal/wire"
)

// TestPartitionerRouteFoldAgree pins the one property everything in the
// cluster rests on: record-at-a-time routing (Route), the column-wise
// batch fold (FoldColumns), and the raw o-tuple hash (Hash) must place
// every record in the same partition — across partition counts.
func TestPartitionerRouteFoldAgree(t *testing.T) {
	schema := snapshotTestSchema(t)
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		p, err := NewPartitioner(schema, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Partitions() != n {
			t.Fatalf("Partitions = %d, want %d", p.Partitions(), n)
		}
		var b wire.Batch
		b.Reset(len(schema.Dims))
		var want []int
		for a := int32(0); a < 4; a++ {
			for c := int32(0); c < 4; c++ {
				sid, err := p.Route([]int32{a, c})
				if err != nil {
					t.Fatal(err)
				}
				if sid < 0 || sid >= n {
					t.Fatalf("n=%d: Route(%d,%d) = %d out of range", n, a, c, sid)
				}
				want = append(want, sid)
				b.Append(int64(a), []int32{a, c}, 1)
			}
		}
		hb := make([]uint64, b.Len())
		if err := p.FoldColumns(&b, 0, b.Len(), hb); err != nil {
			t.Fatal(err)
		}
		for i, sid := range hb {
			if int(sid) != want[i] {
				t.Fatalf("n=%d: record %d folds to %d, Route says %d", n, i, sid, want[i])
			}
		}
	}
}

// TestPartitionerRejects covers the config and record failure modes.
func TestPartitionerRejects(t *testing.T) {
	schema := snapshotTestSchema(t)
	if _, err := NewPartitioner(schema, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	p, err := NewPartitioner(schema, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route([]int32{-1, 0}); err == nil {
		t.Fatal("negative member accepted")
	}
	if _, err := p.Route([]int32{0, 99}); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	var b wire.Batch
	b.Reset(2)
	b.Append(0, []int32{0, 99}, 1)
	if err := p.FoldColumns(&b, 0, 1, make([]uint64, 1)); err == nil {
		t.Fatal("out-of-range member accepted by FoldColumns")
	}
}

// TestPartitionerMatchesShardedEngine proves the extracted Partitioner is
// byte-for-byte the ShardedEngine's partition function: a sharded engine's
// per-record shardOf must agree with a standalone Partitioner built from
// the same schema and count.
func TestPartitionerMatchesShardedEngine(t *testing.T) {
	cfg := snapshotTestConfig(t)
	const shards = 4
	s, err := NewShardedEngine(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := NewPartitioner(cfg.Schema, shards)
	if err != nil {
		t.Fatal(err)
	}
	for a := int32(0); a < 4; a++ {
		for c := int32(0); c < 4; c++ {
			got, err := s.shardOf([]int32{a, c})
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Route([]int32{a, c})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("member (%d,%d): engine shard %d, partitioner %d", a, c, got, want)
			}
		}
	}
}
