package stream

import (
	"fmt"
	"math/bits"

	"repro/internal/cube"
	"repro/internal/wire"
)

// Partitioner is the cluster-wide partition function: it maps records to
// one of N partitions by hashing the o-layer ancestor tuple of their
// m-layer members. ShardedEngine routes records to shard goroutines with
// it, and the multi-node router (internal/cluster) routes whole columnar
// batches to ingest nodes with the very same instance type — one
// implementation, so in-process shards and cross-process nodes partition
// bit-for-bit identically and per-partition state is always mergeable
// back into the single-engine result.
//
// The hash is a 64-bit FNV-style fold of the o-member tuple plus a
// splitmix64 avalanche, reduced to a partition with a multiply-high
// instead of a modulo — fixed and stable (checkpoints repartition
// identically on every run), and far cheaper than byte-wise hashing on
// the per-record path.
type Partitioner struct {
	n     int
	nDims int
	// idx resolves each record's o-layer ancestor with precomputed
	// tables; mLevels/oLevels/cards cache the per-dimension bounds so
	// routing does no interface calls, and anc[d] flattens the m→o
	// mapping into one dense slice per dimension (nil for oversized
	// hierarchies, which route through idx instead).
	idx     *cube.AncestorIndex
	mLevels [cube.MaxDims]int
	oLevels [cube.MaxDims]int
	cards   [cube.MaxDims]int
	anc     [cube.MaxDims][]int32
	names   [cube.MaxDims]string
}

// NewPartitioner builds the o-ancestor partition function for a schema
// over n partitions (shards or cluster nodes); n must be ≥ 1.
//
// Parallelism is bounded by the number of distinct o-layer cells: a
// schema whose o-layer is the apex cuboid has a single partition.
func NewPartitioner(schema *cube.Schema, n int) (*Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d partitions", ErrConfig, n)
	}
	p := &Partitioner{n: n, nDims: len(schema.Dims), idx: cube.NewAncestorIndex(schema)}
	for d, dim := range schema.Dims {
		p.mLevels[d] = dim.MLevel
		p.oLevels[d] = dim.OLevel
		p.cards[d] = dim.Hierarchy.Cardinality(dim.MLevel)
		p.names[d] = dim.Name
		// Flatten routing to one table lookup per dimension: reuse the
		// index's own dense table when it has one, otherwise build one
		// (fanout/identity dimensions); skip it (and fall back to the
		// index per record) past 4M members.
		if tab := p.idx.TableFor(d, dim.MLevel, dim.OLevel); tab != nil {
			p.anc[d] = tab
		} else if p.cards[d] <= 1<<22 {
			tab := make([]int32, p.cards[d])
			for m := range tab {
				tab[m] = p.idx.Ancestor(d, dim.MLevel, dim.OLevel, int32(m))
			}
			p.anc[d] = tab
		}
	}
	return p, nil
}

// Partitions returns the partition count.
func (p *Partitioner) Partitions() int { return p.n }

// Hash maps an o-level member tuple to its partition: one 64-bit
// FNV-style fold per dimension, a splitmix64 avalanche, and a
// multiply-high range reduction.
func (p *Partitioner) Hash(members *[cube.MaxDims]int32) int {
	h := uint64(1469598103934665603)
	for d := 0; d < p.nDims; d++ {
		h = (h ^ uint64(uint32(members[d]))) * 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	sid, _ := bits.Mul64(h, uint64(p.n))
	return int(sid)
}

// Route maps an m-layer member tuple to its partition by resolving the
// o-layer ancestors first, range-checking every member.
func (p *Partitioner) Route(members []int32) (int, error) {
	var o [cube.MaxDims]int32
	for d := 0; d < p.nDims; d++ {
		if members[d] < 0 || int(members[d]) >= p.cards[d] {
			return 0, fmt.Errorf("%w: member %d of dimension %s outside [0,%d)",
				ErrRecord, members[d], p.names[d], p.cards[d])
		}
		if tab := p.anc[d]; tab != nil {
			o[d] = tab[members[d]]
		} else {
			o[d] = p.idx.Ancestor(d, p.mLevels[d], p.oLevels[d], members[d])
		}
	}
	return p.Hash(&o), nil
}

// FoldColumns assigns records [lo,hi) of a columnar batch to partitions,
// writing the partition ids into hb (whose length must be hi-lo). The
// ancestor fold runs column-wise — one dense-table pass per dimension —
// and the fold order and constants match Hash exactly, so batch and
// record routing agree bit for bit. A batch with an out-of-range member
// fails before any id is meaningful.
func (p *Partitioner) FoldColumns(b *wire.Batch, lo, hi int, hb []uint64) error {
	for i := range hb {
		hb[i] = 1469598103934665603
	}
	for d := 0; d < p.nDims; d++ {
		col := b.Cols[d][lo:hi]
		card := int32(p.cards[d])
		if tab := p.anc[d]; tab != nil {
			for i, m := range col {
				if m < 0 || m >= card {
					return fmt.Errorf("%w: member %d of dimension %s outside [0,%d)",
						ErrRecord, m, p.names[d], card)
				}
				hb[i] = (hb[i] ^ uint64(uint32(tab[m]))) * 1099511628211
			}
		} else {
			for i, m := range col {
				if m < 0 || m >= card {
					return fmt.Errorf("%w: member %d of dimension %s outside [0,%d)",
						ErrRecord, m, p.names[d], card)
				}
				o := p.idx.Ancestor(d, p.mLevels[d], p.oLevels[d], m)
				hb[i] = (hb[i] ^ uint64(uint32(o))) * 1099511628211
			}
		}
	}
	n := uint64(p.n)
	for i, h := range hb {
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		sid, _ := bits.Mul64(h, n)
		hb[i] = sid
	}
	return nil
}
