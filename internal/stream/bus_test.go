package stream

import (
	"sync"
	"testing"
	"time"
)

// drainUnits receives every buffered snapshot and returns their units in
// delivery order.
func drainUnits(sub *Subscription) []int64 {
	var units []int64
	for {
		select {
		case s := <-sub.C():
			units = append(units, s.Unit)
		default:
			return units
		}
	}
}

func TestBusDeliversEveryUnit(t *testing.T) {
	cfg := snapshotTestConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(256)
	defer sub.Close()

	ingestGrid(t, eng.Ingest, 0, 41) // closes units 0..9
	units := drainUnits(sub)
	if len(units) != 10 {
		t.Fatalf("delivered %d snapshots, want 10: %v", len(units), units)
	}
	for i, u := range units {
		if u != int64(i) {
			t.Fatalf("delivery %d is unit %d, want %d", i, u, i)
		}
	}
	if got := eng.BusDropped(); got != 0 {
		t.Fatalf("dropped %d snapshots with an ample buffer", got)
	}
}

func TestBusShardedMatchesSingleDeliverySequence(t *testing.T) {
	// The bus must deliver the identical snapshot-unit sequence at any
	// shard count — including multi-unit advances, where the coordinator
	// barrier closes several units at once (some empty).
	feed := func(ing func([]int32, int64, float64) ([]*UnitResult, error)) {
		ingestGrid(t, ing, 0, 9)
		// Jump over three units: units 3 and 4 close empty at the barrier.
		if _, err := ing([]int32{0, 0}, 21, 1); err != nil {
			t.Fatal(err)
		}
		ingestGrid(t, ing, 22, 29)
	}

	cfg := snapshotTestConfig(t)
	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ssub := single.Subscribe(256)
	feed(single.Ingest)
	want := drainUnits(ssub)

	for _, shards := range []int{1, 4, 7} {
		seng, err := NewShardedEngine(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		sub := seng.Subscribe(256)
		feed(seng.Ingest)
		got := drainUnits(sub)
		seng.Close()
		if len(got) != len(want) {
			t.Fatalf("%d shards delivered %v, single delivered %v", shards, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%d shards delivered %v, single delivered %v", shards, got, want)
			}
		}
	}
}

func TestBusLatestWinsOnSlowConsumer(t *testing.T) {
	cfg := snapshotTestConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One-slot subscription that never reads while 10 units close: the
	// publisher must shed oldest-first, never block, and leave exactly the
	// newest snapshot buffered.
	sub := eng.Subscribe(1)
	defer sub.Close()
	ingestGrid(t, eng.Ingest, 0, 41)

	units := drainUnits(sub)
	if len(units) != 1 || units[0] != 9 {
		t.Fatalf("blocked subscriber drained %v, want just the newest unit 9", units)
	}
	if got := eng.BusDropped(); got != 9 {
		t.Fatalf("dropped %d snapshots, want 9", got)
	}
}

func TestBusSubscribeOffWhenNotPublishing(t *testing.T) {
	cfg := snapshotTestConfig(t)
	cfg.PublishSnapshots = false
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(4)
	defer sub.Close()
	ingestGrid(t, eng.Ingest, 0, 41)
	if units := drainUnits(sub); len(units) != 0 {
		t.Fatalf("publication off, yet delivered %v", units)
	}
}

func TestBusUnsubscribeStopsDelivery(t *testing.T) {
	cfg := snapshotTestConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(256)
	ingestGrid(t, eng.Ingest, 0, 5) // tick 4 closes unit 0
	sub.Close()
	ingestGrid(t, eng.Ingest, 5, 41) // closes units 1..9
	units := drainUnits(sub)
	if len(units) != 1 || units[0] != 0 {
		t.Fatalf("closed subscription drained %v, want just unit 0", units)
	}
	sub.Close() // idempotent
}

// TestBusRaceStress runs full-rate 4-shard ingest under 8 concurrent
// subscribers — six keeping up, one deliberately slow, one fully blocked —
// and asserts every delivered snapshot is unit-consistent, per-subscriber
// delivery is strictly unit-ordered, and ingest finishes regardless of the
// blocked consumer (the never-blocks property is structural: a full
// channel sheds, the publisher cannot wait).
func TestBusRaceStress(t *testing.T) {
	cfg := snapshotTestConfig(t)
	seng, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()

	ticks := int64(400)
	if testing.Short() {
		ticks = 60
	}
	// Ingest alone closes units 0..ticks/4-2 (the final unit stays open
	// until Flush bumps the count below).
	totalUnits := ticks/4 - 1

	const slowIdx = 6
	subs := make([]*Subscription, 8)
	for i := range subs {
		buf := int(ticks/4) + 1
		if i >= slowIdx {
			buf = 2 // slow and blocked subscribers run shallow
		}
		subs[i] = seng.Subscribe(buf)
	}
	// subs[7] is the blocked one: nobody ever receives from it.

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i <= slowIdx; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			var prevUnit int64 = -1
			count := 0
			for {
				select {
				case s := <-subs[idx].C():
					if s.Unit <= prevUnit {
						t.Errorf("subscriber %d: unit %d delivered after %d", idx, s.Unit, prevUnit)
						return
					}
					prevUnit = s.Unit
					count++
					verifySnapshot(t, &cfg, s)
					if idx == slowIdx {
						time.Sleep(2 * time.Millisecond) // deliberately behind the unit rate
					}
				case <-stop:
					// Drain what is buffered, then report.
					for {
						select {
						case s := <-subs[idx].C():
							if s.Unit <= prevUnit {
								t.Errorf("subscriber %d: unit %d delivered after %d", idx, s.Unit, prevUnit)
								return
							}
							prevUnit = s.Unit
							count++
							verifySnapshot(t, &cfg, s)
						default:
							if idx < slowIdx && int64(count) != totalUnits {
								t.Errorf("fast subscriber %d saw %d units, want %d", idx, count, totalUnits)
							}
							return
						}
					}
				}
			}
		}(i)
	}

	ingestGrid(t, seng.Ingest, 0, ticks)
	if _, err := seng.Flush(); err == nil {
		// Flush closes the open unit too, so subscribers can observe it;
		// totalUnits above excludes it only for fast-count purposes.
		totalUnits++
	} else {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The blocked subscriber forced drops; the fast ones lost nothing, so
	// every drop came from the shallow consumers.
	if seng.BusDropped() == 0 {
		t.Fatal("blocked subscriber never forced a drop")
	}
	for _, sub := range subs {
		sub.Close()
	}
}
