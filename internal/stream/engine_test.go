package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/regression"
	"repro/internal/timeseries"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func smallSchema(t *testing.T) *cube.Schema {
	t.Helper()
	ha, _ := cube.NewFanoutHierarchy("A", 2, 2)
	hb, _ := cube.NewFanoutHierarchy("B", 2, 2)
	s, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t *testing.T, s *cube.Schema, thr float64, alg Algorithm) *Engine {
	t.Helper()
	e, err := NewEngine(Config{
		Schema:       s,
		TicksPerUnit: 5,
		Threshold:    exception.Global(thr),
		Algorithm:    alg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	s := smallSchema(t)
	cases := []Config{
		{TicksPerUnit: 5, Threshold: exception.Global(1)},
		{Schema: s, Threshold: exception.Global(1)},
		{Schema: s, TicksPerUnit: 5},
		{Schema: s, TicksPerUnit: 5, Threshold: exception.Global(1), HistoryUnits: -1},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Fatalf("case %d: expected config error", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if MOCubing.String() != "m/o-cubing" || PopularPath.String() != "popular-path" {
		t.Fatal("algorithm names")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm must render")
	}
	if SlopeException.String() != "slope-exception" || SlopeChange.String() != "slope-change" {
		t.Fatal("alert kind names")
	}
	if AlertKind(9).String() == "" {
		t.Fatal("unknown alert kind must render")
	}
}

func TestIngestValidation(t *testing.T) {
	e := newEngine(t, smallSchema(t), 1, MOCubing)
	if _, err := e.Ingest([]int32{0}, 0, 1); err == nil {
		t.Fatal("expected member-count error")
	}
	if _, err := e.Ingest([]int32{0, 0}, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Per-cell duplicate tick.
	if _, err := e.Ingest([]int32{0, 0}, 0, 1); err == nil {
		t.Fatal("expected duplicate-tick error")
	}
	// Tick before the open unit.
	_, _ = e.Ingest([]int32{0, 0}, 7, 1) // crosses into unit 1
	if _, err := e.Ingest([]int32{1, 1}, 2, 1); err == nil {
		t.Fatal("expected stale-tick error")
	}
}

func TestUnitBoundaryClosesAndCubes(t *testing.T) {
	e := newEngine(t, smallSchema(t), 0.1, MOCubing)
	// Fill unit 0 densely for two cells with clear slopes.
	for tk := int64(0); tk < 5; tk++ {
		if _, err := e.Ingest([]int32{0, 0}, tk, float64(tk)); err != nil { // slope 1
			t.Fatal(err)
		}
		if _, err := e.Ingest([]int32{3, 3}, tk, 10-2*float64(tk)); err != nil { // slope −2
			t.Fatal(err)
		}
	}
	// First record of unit 1 closes unit 0.
	results, err := e.Ingest([]int32{0, 0}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("closed units = %d, want 1", len(results))
	}
	ur := results[0]
	if ur.Unit != 0 || ur.Interval != (timeseries.Interval{Tb: 0, Te: 4}) {
		t.Fatalf("unit result meta = %+v", ur)
	}
	if ur.Result == nil {
		t.Fatal("expected a cube result")
	}
	// o-layer = 2×2 grid; two populated o-cells.
	if len(ur.Result.OLayer) != 2 {
		t.Fatalf("o-layer cells = %d, want 2", len(ur.Result.OLayer))
	}
	// Slopes at the o-layer match the raw fits exactly (zero noise).
	for key, isb := range ur.Result.OLayer {
		switch key.Member(0) {
		case 0:
			if !almostEq(isb.Slope, 1, 1e-9) {
				t.Fatalf("cell %v slope %g, want 1", key, isb.Slope)
			}
		case 1:
			if !almostEq(isb.Slope, -2, 1e-9) {
				t.Fatalf("cell %v slope %g, want -2", key, isb.Slope)
			}
		}
	}
	if len(ur.Alerts) == 0 {
		t.Fatal("slopes 1 and -2 should alert at threshold 0.1")
	}
	if e.UnitsDone() != 1 || e.Unit() != 1 {
		t.Fatalf("unit counters: done=%d open=%d", e.UnitsDone(), e.Unit())
	}
}

func TestMissingTicksCountAsZero(t *testing.T) {
	e := newEngine(t, smallSchema(t), 99, MOCubing)
	// Only ticks 0 and 4 observed; 1-3 are implicit zeros.
	if _, err := e.Ingest([]int32{0, 0}, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0, 0}, 4, 5); err != nil {
		t.Fatal(err)
	}
	ur, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want := regression.MustFit(timeseries.MustNew(0, []float64{5, 0, 0, 0, 5}))
	var got regression.ISB
	for _, isb := range ur.Result.OLayer {
		got = isb
	}
	if !almostEq(got.Slope, want.Slope, 1e-9) || !almostEq(got.Base, want.Base, 1e-9) {
		t.Fatalf("o-cell = %v, want %v", got, want)
	}
}

func TestFlushPadsToBoundary(t *testing.T) {
	e := newEngine(t, smallSchema(t), 99, MOCubing)
	if _, err := e.Ingest([]int32{0, 0}, 0, 10); err != nil {
		t.Fatal(err)
	}
	ur, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	want := regression.MustFit(timeseries.MustNew(0, []float64{10, 0, 0, 0, 0}))
	var got regression.ISB
	for _, isb := range ur.Result.OLayer {
		got = isb
	}
	if !almostEq(got.Slope, want.Slope, 1e-9) {
		t.Fatalf("flush slope = %g, want %g", got.Slope, want.Slope)
	}
	if e.ActiveCells() != 0 {
		t.Fatal("cells must reset after flush")
	}
}

func TestEmptyUnitsOnGap(t *testing.T) {
	e := newEngine(t, smallSchema(t), 1, MOCubing)
	if _, err := e.Ingest([]int32{0, 0}, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Jump to unit 3: closes units 0, 1, 2; units 1 and 2 are empty.
	results, err := e.Ingest([]int32{0, 0}, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("closed units = %d, want 3", len(results))
	}
	if results[0].Result == nil {
		t.Fatal("unit 0 had data")
	}
	if results[1].Result != nil || results[2].Result != nil {
		t.Fatal("units 1-2 were empty")
	}
}

// The key §4.5 guarantee: the online engine's per-unit output equals batch
// computation over the same data.
func TestOnlineEqualsBatch(t *testing.T) {
	s := smallSchema(t)
	for _, alg := range []Algorithm{MOCubing, PopularPath} {
		e := newEngine(t, s, 0.5, alg)
		r := rand.New(rand.NewSource(33))
		const units, ticksPer = 3, 5
		type cellSeries map[[2]int32][]float64
		perUnit := make([]cellSeries, units)
		for u := range perUnit {
			perUnit[u] = cellSeries{}
			for a := int32(0); a < 4; a++ {
				for b := int32(0); b < 4; b++ {
					vals := make([]float64, ticksPer)
					for i := range vals {
						vals[i] = r.NormFloat64() * 3
					}
					perUnit[u][[2]int32{a, b}] = vals
				}
			}
		}
		var unitResults []*UnitResult
		for u := 0; u < units; u++ {
			for i := 0; i < ticksPer; i++ {
				tick := int64(u*ticksPer + i)
				for cell, vals := range perUnit[u] {
					closed, err := e.Ingest([]int32{cell[0], cell[1]}, tick, vals[i])
					if err != nil {
						t.Fatal(err)
					}
					unitResults = append(unitResults, closed...)
				}
			}
		}
		final, err := e.Flush()
		if err != nil {
			t.Fatal(err)
		}
		unitResults = append(unitResults, final)
		if len(unitResults) != units {
			t.Fatalf("unit results = %d, want %d", len(unitResults), units)
		}
		// Batch comparison per unit.
		for u, ur := range unitResults {
			var inputs []core.Input
			for cell, vals := range perUnit[u] {
				isb := regression.MustFit(timeseries.MustNew(int64(u*ticksPer), vals))
				inputs = append(inputs, core.Input{Members: []int32{cell[0], cell[1]}, Measure: isb})
			}
			var want *core.Result
			if alg == PopularPath {
				want, err = core.PopularPath(s, inputs, exception.Global(0.5), cube.NewLattice(s).DefaultPath())
			} else {
				want, err = core.MOCubing(s, inputs, exception.Global(0.5))
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(want.OLayer) != len(ur.Result.OLayer) {
				t.Fatalf("alg %v unit %d: o-layer %d vs %d", alg, u, len(want.OLayer), len(ur.Result.OLayer))
			}
			for key, isb := range want.OLayer {
				got, ok := ur.Result.OLayer[key]
				if !ok || !almostEq(got.Slope, isb.Slope, 1e-9) || !almostEq(got.Base, isb.Base, 1e-9) {
					t.Fatalf("alg %v unit %d: o-cell %v online %v vs batch %v", alg, u, key, got, isb)
				}
			}
			if len(want.Exceptions) != len(ur.Result.Exceptions) {
				t.Fatalf("alg %v unit %d: exceptions %d vs %d", alg, u, len(want.Exceptions), len(ur.Result.Exceptions))
			}
		}
	}
}

func TestAlertsCarryDrill(t *testing.T) {
	s := smallSchema(t)
	e := newEngine(t, s, 0.5, MOCubing)
	// One m-cell with a steep series: its o-ancestor alerts and the drill
	// names the m-cell among supporters.
	for tk := int64(0); tk < 5; tk++ {
		if _, err := e.Ingest([]int32{0, 0}, tk, 3*float64(tk)); err != nil {
			t.Fatal(err)
		}
	}
	ur, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ur.Alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(ur.Alerts))
	}
	al := ur.Alerts[0]
	if al.Kind != SlopeException {
		t.Fatalf("kind = %v", al.Kind)
	}
	foundM := false
	for _, c := range al.Drill {
		if c.Key.Cuboid.Equal(s.MLayer()) && c.Key.Member(0) == 0 && c.Key.Member(1) == 0 {
			foundM = true
		}
	}
	if !foundM {
		t.Fatalf("drill missing the m-cell supporter: %+v", al.Drill)
	}
}

func TestDeltaAlerts(t *testing.T) {
	s := smallSchema(t)
	e, err := NewEngine(Config{
		Schema:       s,
		TicksPerUnit: 5,
		Threshold:    exception.Global(1e9), // suppress slope alerts
		Delta:        &exception.Delta{MinSlopeChange: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	feedUnit := func(slope float64) *UnitResult {
		t.Helper()
		start := e.unitStart(e.Unit())
		for i := int64(0); i < 5; i++ {
			if _, err := e.Ingest([]int32{0, 0}, start+i, slope*float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ur, err := e.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return ur
	}
	ur0 := feedUnit(0.1)
	if len(ur0.Alerts) != 0 {
		t.Fatal("first unit has no previous window")
	}
	ur1 := feedUnit(2.5) // slope change 2.4 ≥ 1.5
	found := false
	for _, al := range ur1.Alerts {
		if al.Kind == SlopeChange {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a slope-change alert, got %+v", ur1.Alerts)
	}
	ur2 := feedUnit(2.6) // change 0.1 < 1.5
	for _, al := range ur2.Alerts {
		if al.Kind == SlopeChange {
			t.Fatal("small change must not alert")
		}
	}
}

func TestTrendQuery(t *testing.T) {
	s := smallSchema(t)
	e := newEngine(t, s, 1e9, MOCubing)
	raw := timeseries.NewSynth(5).Linear(0, 15, 4, 0.3, 0.2) // 3 units
	for i, z := range raw.Values {
		if _, err := e.Ingest([]int32{0, 0}, int64(i), z); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	oCell := cube.NewCellKey(s.OLayer(), 0, 0)
	if e.HistoryLen(oCell) != 3 {
		t.Fatalf("history = %d, want 3", e.HistoryLen(oCell))
	}
	got, err := e.TrendQuery(oCell, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := regression.MustFit(raw)
	if !almostEq(got.Slope, want.Slope, 1e-9) || !almostEq(got.Base, want.Base, 1e-9) {
		t.Fatalf("trend = %v, want %v", got, want)
	}
	if _, err := e.TrendQuery(oCell, 4); err == nil {
		t.Fatal("expected too-few-units error")
	}
	if _, err := e.TrendQuery(oCell, 0); err == nil {
		t.Fatal("expected k≥1 error")
	}
}

func TestTrendQueryGapDetection(t *testing.T) {
	s := smallSchema(t)
	e := newEngine(t, s, 1e9, MOCubing)
	// Unit 0 with data, unit 1 empty (gap), unit 2 with data.
	for i := int64(0); i < 5; i++ {
		_, _ = e.Ingest([]int32{0, 0}, i, 1)
	}
	if _, err := e.Ingest([]int32{0, 0}, 10, 1); err != nil { // skips unit 1
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	oCell := cube.NewCellKey(s.OLayer(), 0, 0)
	if _, err := e.TrendQuery(oCell, 2); err == nil {
		t.Fatal("expected gap error across empty unit")
	}
	// Single trailing unit still works.
	if _, err := e.TrendQuery(oCell, 1); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryBounded(t *testing.T) {
	s := smallSchema(t)
	e, err := NewEngine(Config{
		Schema: s, TicksPerUnit: 2, Threshold: exception.Global(1e9), HistoryUnits: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < 6; u++ {
		for i := int64(0); i < 2; i++ {
			if _, err := e.Ingest([]int32{0, 0}, u*2+i, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, _ = e.Flush()
	oCell := cube.NewCellKey(s.OLayer(), 0, 0)
	if e.HistoryLen(oCell) != 3 {
		t.Fatalf("history = %d, want 3 (bounded)", e.HistoryLen(oCell))
	}
}

func TestNonZeroStartTick(t *testing.T) {
	s := smallSchema(t)
	e, err := NewEngine(Config{
		Schema: s, TicksPerUnit: 5, StartTick: 100, Threshold: exception.Global(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0, 0}, 99, 1); err == nil {
		t.Fatal("expected stale-tick error before start")
	}
	if _, err := e.Ingest([]int32{0, 0}, 100, 1); err != nil {
		t.Fatal(err)
	}
	ur, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ur.Interval.Tb != 100 || ur.Interval.Te != 104 {
		t.Fatalf("unit interval = %v", ur.Interval)
	}
}
