package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/exception"
	"repro/internal/wal"
)

// checkpointJSON renders a checkpoint in its canonical serialized form;
// the replay-equivalence tests compare these byte for byte.
func checkpointJSON(t *testing.T, cp *Checkpoint) []byte {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func walTestConfig(t *testing.T, ticksPer int) Config {
	t.Helper()
	return Config{
		Schema:       wideSchema(t),
		TicksPerUnit: ticksPer,
		Threshold:    exception.Global(0.5),
	}
}

// TestCheckpointThenReplayExactlyOnce is the watermark-agreement
// contract: cutting a checkpoint at ANY record position and then
// replaying the records past its WALSeq must land in exactly the state of
// an uninterrupted run — no batch double-applied (the boundary-crossing
// record is already inside the checkpoint's open unit) and none skipped.
func TestCheckpointThenReplayExactlyOnce(t *testing.T) {
	const ticksPer = 8
	recs := genStream(11, 3, ticksPer, -1)

	// Uninterrupted reference: every record, then a final flush.
	ref, err := NewEngine(walTestConfig(t, ticksPer))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if _, err := ref.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
		ref.SetWALSeq(int64(i + 1))
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	want := checkpointJSON(t, ref.Checkpoint())

	// Cut points: the edges, a mid-unit spot, and the records surrounding
	// the first unit-boundary crossing — the exact position where a
	// unit-granular watermark would double-apply.
	boundary := -1
	for i, r := range recs {
		if r.tick >= int64(ticksPer) {
			boundary = i
			break
		}
	}
	if boundary < 1 {
		t.Fatal("stream has no boundary crossing")
	}
	cuts := []int{0, 1, boundary - 1, boundary, boundary + 1, len(recs) / 2, len(recs) - 1, len(recs)}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			live, err := NewEngine(walTestConfig(t, ticksPer))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs[:cut] {
				if _, err := live.Ingest(r.members, r.tick, r.value); err != nil {
					t.Fatal(err)
				}
			}
			live.SetWALSeq(int64(cut))
			cp := live.Checkpoint()
			if cp.WALSeq != int64(cut) {
				t.Fatalf("checkpoint WALSeq = %d, want %d", cp.WALSeq, cut)
			}
			// Serialize/deserialize so the restored engine sees exactly
			// what a checkpoint file would carry.
			raw := checkpointJSON(t, cp)
			var loaded Checkpoint
			if err := json.Unmarshal(raw, &loaded); err != nil {
				t.Fatal(err)
			}
			restored, err := NewEngine(walTestConfig(t, ticksPer))
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(&loaded); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if restored.WALSeq() != int64(cut) {
				t.Fatalf("restored WALSeq = %d, want %d", restored.WALSeq(), cut)
			}
			// Replay exactly the records past the watermark.
			for i, r := range recs[restored.WALSeq():] {
				if _, err := restored.Ingest(r.members, r.tick, r.value); err != nil {
					t.Fatalf("replay record %d: %v", i, err)
				}
			}
			restored.SetWALSeq(int64(len(recs)))
			if _, err := restored.Flush(); err != nil {
				t.Fatal(err)
			}
			got := checkpointJSON(t, restored.Checkpoint())
			if !bytes.Equal(got, want) {
				t.Fatalf("checkpoint-then-replay at cut %d diverged from uninterrupted run\n got: %.200s\nwant: %.200s",
					cut, got, want)
			}
		})
	}
}

// TestCheckpointSerializationCanonical: two checkpoints of the same state
// must serialize identically — map iteration order must not leak.
func TestCheckpointSerializationCanonical(t *testing.T) {
	eng, err := NewEngine(walTestConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range genStream(3, 2, 8, -1) {
		if _, err := eng.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
	}
	a := checkpointJSON(t, eng.Checkpoint())
	b := checkpointJSON(t, eng.Checkpoint())
	if !bytes.Equal(a, b) {
		t.Fatalf("same state serialized two ways:\n%s\n%s", a, b)
	}
}

// TestWALReplayShardCountWhatIf is the what-if acceptance: the same
// on-disk WAL replayed through 1, 4, and 7 shards must produce merged
// checkpoints byte-identical to each other and to an engine fed the
// records directly (no WAL round trip).
func TestWALReplayShardCountWhatIf(t *testing.T) {
	const ticksPer = 8
	recs := genStream(29, 3, ticksPer, 1)

	dir := t.TempDir()
	log, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 10, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	// Small segments force multi-segment replay; batches of 5 exercise
	// multi-record frames.
	for i := 0; i < len(recs); i += 5 {
		end := min(i+5, len(recs))
		batch := make([]wal.Record, 0, 5)
		for _, r := range recs[i:end] {
			batch = append(batch, wal.Record{Tick: r.tick, Value: r.value, Members: r.members})
		}
		if err := log.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if len(log.Segments()) < 3 {
		t.Fatalf("want 3+ segments for the replay, got %d", len(log.Segments()))
	}

	// Direct reference: no WAL in the loop.
	direct, err := NewEngine(walTestConfig(t, ticksPer))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := direct.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := direct.Flush(); err != nil {
		t.Fatal(err)
	}
	direct.SetWALSeq(int64(len(recs)))
	want := checkpointJSON(t, direct.Checkpoint())

	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			var ing ingester
			var merged func() *Checkpoint
			if shards == 1 {
				eng, err := NewEngine(walTestConfig(t, ticksPer))
				if err != nil {
					t.Fatal(err)
				}
				eng.SetWALSeq(0)
				ing = eng
				merged = func() *Checkpoint {
					eng.SetWALSeq(int64(len(recs)))
					return eng.Checkpoint()
				}
			} else {
				seng, err := NewShardedEngine(walTestConfig(t, ticksPer), shards)
				if err != nil {
					t.Fatal(err)
				}
				defer seng.Close()
				ing = seng
				merged = func() *Checkpoint {
					if err := seng.SetWALSeq(int64(len(recs))); err != nil {
						t.Fatal(err)
					}
					scp, err := seng.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					cp, err := scp.Merge()
					if err != nil {
						t.Fatal(err)
					}
					return cp
				}
			}
			n, err := wal.Replay(dir, 0, func(seq int64, rec wal.Record) error {
				_, err := ing.Ingest(rec.Members, rec.Tick, rec.Value)
				return err
			})
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if n != int64(len(recs)) {
				t.Fatalf("replayed %d records, want %d", n, len(recs))
			}
			if _, err := ing.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := checkpointJSON(t, merged()); !bytes.Equal(got, want) {
				t.Fatalf("WAL replay at %d shards diverged from direct run\n got: %.200s\nwant: %.200s",
					shards, got, want)
			}
		})
	}
}

// TestShardedWALSeqValidation: shards must agree on the watermark, and
// merge/restore must carry it.
func TestShardedWALSeqValidation(t *testing.T) {
	cfg := walTestConfig(t, 8)
	seng, err := NewShardedEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()
	for _, r := range genStream(5, 2, 8, -1) {
		if _, err := seng.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
	}
	if err := seng.SetWALSeq(42); err != nil {
		t.Fatal(err)
	}
	if got, err := seng.WALSeq(); err != nil || got != 42 {
		t.Fatalf("WALSeq = %d, %v; want 42", got, err)
	}
	scp, err := seng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range scp.Shards {
		if cp.WALSeq != 42 {
			t.Fatalf("shard %d WALSeq = %d, want 42", i, cp.WALSeq)
		}
	}
	cp, err := scp.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if cp.WALSeq != 42 {
		t.Fatalf("merged WALSeq = %d, want 42", cp.WALSeq)
	}
	// Disagreeing shards are rejected.
	scp.Shards[1].WALSeq = 41
	if _, err := scp.Merge(); !errors.Is(err, ErrConfig) {
		t.Fatalf("Merge with disagreeing WALSeq: %v, want ErrConfig", err)
	}
	scp.Shards[1].WALSeq = 42
	// Restore round-trips the watermark across a shard-count change.
	seng2, err := NewShardedEngine(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer seng2.Close()
	if err := seng2.Restore(scp); err != nil {
		t.Fatal(err)
	}
	if got, err := seng2.WALSeq(); err != nil || got != 42 {
		t.Fatalf("restored WALSeq = %d, %v; want 42", got, err)
	}
	// A negative watermark never restores.
	neg, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Checkpoint{Unit: 0, WALSeq: -1, Schema: shapeOf(cfg.Schema)}
	if err := neg.Restore(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("Restore(WALSeq=-1): %v, want ErrConfig", err)
	}
}
