package stream

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/tilt"
)

// feedUnits drives an engine through `units` full units of deterministic
// records (every m-cell, rising values so exceptions and alerts fire).
func feedUnits(t testing.TB, ingest func(members []int32, tick int64, value float64), cfg Config, units int) {
	t.Helper()
	for u := 0; u < units; u++ {
		for k := 0; k < cfg.TicksPerUnit; k++ {
			tick := int64(u*cfg.TicksPerUnit + k)
			for a := int32(0); a < 4; a++ {
				for b := int32(0); b < 4; b++ {
					v := float64(tick)*float64(a+1)*0.5 + float64(b)
					ingest([]int32{a, b}, tick, v)
				}
			}
		}
	}
}

// snapshotsEquivalent asserts two snapshots carry identical analyst-visible
// state (summary stats excluded — wall-clock fields are never comparable).
func snapshotsEquivalent(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Unit != want.Unit || got.UnitsDone != want.UnitsDone || got.Interval != want.Interval {
		t.Fatalf("header (%d,%d,%+v) != (%d,%d,%+v)",
			got.Unit, got.UnitsDone, got.Interval, want.Unit, want.UnitsDone, want.Interval)
	}
	if (got.Result == nil) != (want.Result == nil) {
		t.Fatalf("Result nil-ness differs")
	}
	if got.Result != nil {
		if !reflect.DeepEqual(got.Result.OLayer, want.Result.OLayer) {
			t.Fatal("o-layers differ")
		}
		if !reflect.DeepEqual(got.Result.Exceptions, want.Result.Exceptions) {
			t.Fatal("exception sets differ")
		}
		if !reflect.DeepEqual(got.Result.PathCells, want.Result.PathCells) {
			t.Fatal("path cells differ")
		}
	}
	if !reflect.DeepEqual(got.Alerts, want.Alerts) {
		t.Fatalf("alerts differ:\n%+v\n%+v", got.Alerts, want.Alerts)
	}
	if !reflect.DeepEqual(got.History, want.History) {
		t.Fatal("histories differ")
	}
	if !reflect.DeepEqual(got.Frames, want.Frames) {
		t.Fatal("frames differ")
	}
}

// TestSnapshotCodecRoundTrip proves Encode→Decode reproduces the full
// snapshot and that encoding is deterministic (canonical cell order, so
// equal state means equal bytes).
func TestSnapshotCodecRoundTrip(t *testing.T) {
	cfg := snapshotTestConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUnits(t, func(m []int32, tick int64, v float64) {
		if _, err := eng.Ingest(m, tick, v); err != nil {
			t.Fatal(err)
		}
	}, cfg, 3)
	snap := eng.Snapshot()
	if snap == nil || snap.Result == nil {
		t.Fatal("no published snapshot")
	}
	data, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := DecodeSnapshot(cfg.Schema, data)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEquivalent(t, dec, snap)
	if dec.Result.Stats.Tuples != snap.Result.Stats.Tuples {
		t.Fatalf("stats tuples %d != %d", dec.Result.Stats.Tuples, snap.Result.Stats.Tuples)
	}
	// Re-encoding the decoded snapshot reproduces the bytes exactly.
	data2, err := EncodeSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("decode→encode is not the identity")
	}
}

// TestSnapshotCodecTilted covers the tilted-frame leg of the codec.
func TestSnapshotCodecTilted(t *testing.T) {
	cfg := snapshotTestConfig(t)
	cfg.TiltLevels = []tilt.Level{{Name: "fine", Multiple: 1, Slots: 4}, {Name: "coarse", Multiple: 2, Slots: 3}}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUnits(t, func(m []int32, tick int64, v float64) {
		if _, err := eng.Ingest(m, tick, v); err != nil {
			t.Fatal(err)
		}
	}, cfg, 5)
	snap := eng.Snapshot()
	if snap == nil || snap.Frames == nil {
		t.Fatal("no tilted snapshot")
	}
	data, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(cfg.Schema, data)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEquivalent(t, dec, snap)
}

// TestSnapshotCodecRejects pins the decode failure modes.
func TestSnapshotCodecRejects(t *testing.T) {
	schema := snapshotTestSchema(t)
	if _, err := DecodeSnapshot(schema, []byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := DecodeSnapshot(schema, []byte(`{"version":99}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := DecodeSnapshot(schema, []byte(`{"version":1,"empty":false,"oLayer":[{"levels":[1],"members":[0],"isb":{}}]}`)); err == nil {
		t.Fatal("dimension-count mismatch accepted")
	}
	if _, err := EncodeSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestMergeSnapshotsMatchesSharded is the gather tier's core guarantee:
// per-shard snapshots round-tripped through the wire codec and merged with
// MergeSnapshots must equal both the sharded coordinator's own merged
// snapshot and a single engine's snapshot of the same stream.
func TestMergeSnapshotsMatchesSharded(t *testing.T) {
	cfg := snapshotTestConfig(t)

	// Reference: one engine over the whole stream.
	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedUnits(t, func(m []int32, tick int64, v float64) {
		if _, err := single.Ingest(m, tick, v); err != nil {
			t.Fatal(err)
		}
	}, cfg, 3)
	if _, err := single.AdvanceTo(3); err != nil {
		t.Fatal(err)
	}
	want := single.Snapshot()

	// Cluster stand-in: partition the same stream across 4 per-node
	// engines with the shared Partitioner, advance them in lockstep at
	// each boundary (the router's barrier), then merge their snapshots.
	const nodes = 4
	part, err := NewPartitioner(cfg.Schema, nodes)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, nodes)
	for i := range engines {
		if engines[i], err = NewEngine(cfg); err != nil {
			t.Fatal(err)
		}
	}
	lastUnit := int64(0)
	feedUnits(t, func(m []int32, tick int64, v float64) {
		if u := tick / int64(cfg.TicksPerUnit); u > lastUnit {
			// The router's barrier: every node closes the boundary's
			// units before any node sees the next unit's records.
			for _, e := range engines {
				if _, err := e.AdvanceTo(u); err != nil {
					t.Fatal(err)
				}
			}
			lastUnit = u
		}
		sid, err := part.Route(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engines[sid].Ingest(m, tick, v); err != nil {
			t.Fatal(err)
		}
	}, cfg, 3)
	for _, e := range engines {
		if _, err := e.AdvanceTo(3); err != nil {
			t.Fatal(err)
		}
	}
	snaps := make([]*Snapshot, nodes)
	for i, e := range engines {
		data, err := EncodeSnapshot(e.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if snaps[i], err = DecodeSnapshot(cfg.Schema, data); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeSnapshots(cfg.Schema, snaps)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEquivalent(t, merged, want)

	// Unit-mismatched snapshots must be rejected: the gather tier fetches
	// only after aligning watermarks.
	if _, err := engines[0].AdvanceTo(4); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSnapshot(engines[0].Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0], err = DecodeSnapshot(cfg.Schema, data); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSnapshots(cfg.Schema, snaps); err == nil {
		t.Fatal("diverged units merged")
	}
}
