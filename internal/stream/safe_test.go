package stream

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
)

func TestSafeEngineConcurrentIngest(t *testing.T) {
	s := smallSchema(t)
	eng, err := NewSafeEngine(Config{
		Schema:       s,
		TicksPerUnit: 1, // every tick closes a unit — maximal contention
		Threshold:    exception.Global(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 cells each fed by its own goroutine. Ticks within a cell are
	// ordered by the feeding goroutine; the lock serializes unit closes.
	// With TicksPerUnit=1 cross-cell ordering constraints would reject
	// concurrent writers, so feed tick-synchronized via a barrier per
	// tick round instead.
	const ticks = 20
	for tk := int64(0); tk < ticks; tk++ {
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				wg.Add(1)
				go func(a, b int32) {
					defer wg.Done()
					if _, err := eng.Ingest([]int32{a, b}, tk, float64(a+b)); err != nil {
						errs <- err
					}
				}(a, b)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			// Ticks crossing unit boundaries race benignly: a goroutine
			// may close the unit before a sibling writes its reading,
			// making the sibling's tick stale. That is expected with
			// TicksPerUnit=1; only data corruption would be a bug.
			t.Logf("benign ordering rejection: %v", err)
		}
	}
	if eng.UnitsDone() < 1 {
		t.Fatal("no units closed")
	}
}

func TestSafeEngineSerializesState(t *testing.T) {
	s := smallSchema(t)
	eng, err := NewSafeEngine(Config{
		Schema:       s,
		TicksPerUnit: 100,
		Threshold:    exception.Global(1e9),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := []int32{int32(g % 4), int32(g / 4)}
			for tk := int64(0); tk < 50; tk++ {
				if _, err := eng.Ingest(cell, tk, 1); err != nil {
					// Two goroutines share no cells here, so no error is
					// acceptable.
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if eng.ActiveCells() != 8 {
		t.Fatalf("active cells = %d, want 8", eng.ActiveCells())
	}
	ur, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ur.Result == nil || len(ur.Result.OLayer) == 0 {
		t.Fatal("flush must cube all cells")
	}
	// Checkpoint under concurrency-safe API.
	cp := eng.Checkpoint()
	if cp == nil {
		t.Fatal("nil checkpoint")
	}
	if err := eng.Restore(cp); err != nil {
		t.Fatal(err)
	}
	_ = eng.Unit()
	_ = eng.HistoryLen(cube.NewCellKey(s.OLayer(), 0, 0))
	if _, err := eng.TrendQuery(cube.NewCellKey(s.OLayer(), 0, 0), 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaDrillAcrossUnits(t *testing.T) {
	s := smallSchema(t)
	eng, err := NewEngine(Config{
		Schema:       s,
		TicksPerUnit: 5,
		Threshold:    exception.Global(1e9),
		Delta:        &exception.Delta{MinSlopeChange: 2},
		DeltaDrill:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedUnit := func(slope float64) *UnitResult {
		t.Helper()
		start := eng.unitStart(eng.Unit())
		for i := int64(0); i < 5; i++ {
			if _, err := eng.Ingest([]int32{0, 0}, start+i, slope*float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ur, err := eng.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return ur
	}
	ur0 := feedUnit(1)
	if ur0.Delta != nil {
		t.Fatal("first unit has no delta base")
	}
	ur1 := feedUnit(6) // change 5 ≥ 2 at every level
	if ur1.Delta == nil {
		t.Fatal("second unit must carry a delta cube")
	}
	if len(ur1.Delta.Exceptions) == 0 {
		t.Fatal("slope jump must produce delta exceptions")
	}
	mKey := cube.NewCellKey(s.MLayer(), 0, 0)
	dc, ok := ur1.Delta.Exceptions[mKey]
	if !ok {
		t.Fatal("m-cell delta missing")
	}
	if dc.SlopeChange() < 4.9 || dc.SlopeChange() > 5.1 {
		t.Fatalf("slope change = %g, want ≈5", dc.SlopeChange())
	}
	ur2 := feedUnit(6.1) // change 0.1 < 2
	if ur2.Delta == nil {
		t.Fatal("delta cube should exist for adjacent units")
	}
	if len(ur2.Delta.Exceptions) != 0 {
		t.Fatal("small change must not be exceptional")
	}
	// A unit gap resets the delta base.
	var _ *core.DeltaResult = ur2.Delta
	start := eng.unitStart(eng.Unit() + 1) // skip a unit
	if _, err := eng.Ingest([]int32{0, 0}, start, 1); err != nil {
		t.Fatal(err)
	}
	ur4, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ur4.Delta != nil {
		t.Fatal("delta must reset across a gap")
	}
}
