package stream

import (
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/tilt"
	"repro/internal/timeseries"
)

// This file is the snapshot wire codec: the JSON document a node's
// GET /v1/snapshot ships and the cluster coordinator's gather tier
// decodes and merges. It lives in this package (not internal/serve or
// internal/cluster) because it is the third leg of the snapshot
// contract — publish (snapshot.go), merge (sharded.go), and now
// transfer — and both the server and the coordinator need it without
// importing each other.
//
// Cells travel in coordinate form — per-dimension levels and members,
// exactly like checkpoints — and every cell list is sorted canonically
// (cube.CompareKeys), so encoding is deterministic: two nodes holding
// equal state encode equal bytes.

// snapCell is one retained cell: coordinates plus measure.
type snapCell struct {
	Levels  []int          `json:"levels"`
	Members []int32        `json:"members"`
	ISB     regression.ISB `json:"isb"`
}

// snapAlert is one alert with its drill-down supporters.
type snapAlert struct {
	Unit  int64      `json:"unit"`
	Kind  int        `json:"kind"`
	Cell  snapCell   `json:"cell"`
	Drill []snapCell `json:"drill,omitempty"`
}

// snapHistory is one o-cell's trailing flat history, oldest first.
type snapHistory struct {
	Levels  []int          `json:"levels"`
	Members []int32        `json:"members"`
	Points  []HistoryPoint `json:"points"`
}

// snapFrameLevel is one granularity of a tilted frame.
type snapFrameLevel struct {
	Name      string      `json:"name"`
	UnitTicks int64       `json:"unitTicks"`
	Capacity  int         `json:"capacity"`
	Completed int64       `json:"completed"`
	Slots     []tilt.Slot `json:"slots"`
}

// snapFrame is one o-cell's tilted frame view.
type snapFrame struct {
	Levels  []int            `json:"levels"`
	Members []int32          `json:"members"`
	Base    int64            `json:"base"`
	Frame   []snapFrameLevel `json:"frame"`
}

// snapPath is one materialized popular-path cuboid with its cells.
type snapPath struct {
	Levels []int      `json:"levels"`
	Cells  []snapCell `json:"cells"`
}

// snapshotDoc is the complete wire document.
type snapshotDoc struct {
	Version    int                 `json:"version"`
	Unit       int64               `json:"unit"`
	Interval   timeseries.Interval `json:"interval"`
	UnitsDone  int64               `json:"unitsDone"`
	Empty      bool                `json:"empty"`
	OLayer     []snapCell          `json:"oLayer,omitempty"`
	Exceptions []snapCell          `json:"exceptions,omitempty"`
	PathCells  []snapPath          `json:"pathCells,omitempty"`
	Stats      *core.Stats         `json:"stats,omitempty"`
	Alerts     []snapAlert         `json:"alerts,omitempty"`
	History    []snapHistory       `json:"history,omitempty"`
	// Tilted distinguishes "no tilt configured" (false, Frames absent)
	// from "tilt on, no cells yet" (true, Frames empty).
	Tilted bool        `json:"tilted,omitempty"`
	Frames []snapFrame `json:"frames,omitempty"`
}

// snapshotWireVersion is the /v1/snapshot document version.
const snapshotWireVersion = 1

func cellCoords(k cube.CellKey) ([]int, []int32) {
	nd := k.Cuboid.NumDims()
	levels := make([]int, nd)
	members := make([]int32, nd)
	for d := 0; d < nd; d++ {
		levels[d] = k.Cuboid.Level(d)
		members[d] = k.Members[d]
	}
	return levels, members
}

func encodeCellList(m map[cube.CellKey]regression.ISB) []snapCell {
	keys := make([]cube.CellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cube.CompareKeys)
	out := make([]snapCell, len(keys))
	for i, k := range keys {
		levels, members := cellCoords(k)
		out[i] = snapCell{Levels: levels, Members: members, ISB: m[k]}
	}
	return out
}

// EncodeSnapshot serializes a published snapshot into the /v1/snapshot
// wire document. Encoding is deterministic: every cell list, alert, and
// history entry is emitted in canonical key order.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrRecord)
	}
	doc := snapshotDoc{
		Version:   snapshotWireVersion,
		Unit:      s.Unit,
		Interval:  s.Interval,
		UnitsDone: s.UnitsDone,
		Empty:     s.Result == nil,
	}
	if s.Result != nil {
		doc.OLayer = encodeCellList(s.Result.OLayer)
		doc.Exceptions = encodeCellList(s.Result.Exceptions)
		if s.Result.PathCells != nil {
			doc.PathCells = make([]snapPath, 0, len(s.Result.PathCells))
			for cb, cells := range s.Result.PathCells {
				levels := make([]int, cb.NumDims())
				for d := range levels {
					levels[d] = cb.Level(d)
				}
				doc.PathCells = append(doc.PathCells, snapPath{Levels: levels, Cells: encodeCellList(cells)})
			}
			slices.SortFunc(doc.PathCells, func(a, b snapPath) int { return slices.Compare(a.Levels, b.Levels) })
		}
		stats := s.Result.Stats
		doc.Stats = &stats
	}
	// Snapshot alerts are already canonical (SortAlerts at publication).
	doc.Alerts = make([]snapAlert, len(s.Alerts))
	for i, a := range s.Alerts {
		levels, members := cellCoords(a.Cell)
		sa := snapAlert{Unit: a.Unit, Kind: int(a.Kind), Cell: snapCell{Levels: levels, Members: members, ISB: a.ISB}}
		for _, d := range a.Drill {
			dl, dm := cellCoords(d.Key)
			sa.Drill = append(sa.Drill, snapCell{Levels: dl, Members: dm, ISB: d.ISB})
		}
		doc.Alerts[i] = sa
	}
	histKeys := make([]cube.CellKey, 0, len(s.History))
	for k := range s.History {
		histKeys = append(histKeys, k)
	}
	slices.SortFunc(histKeys, cube.CompareKeys)
	doc.History = make([]snapHistory, len(histKeys))
	for i, k := range histKeys {
		levels, members := cellCoords(k)
		doc.History[i] = snapHistory{Levels: levels, Members: members, Points: s.History[k]}
	}
	if s.Frames != nil {
		doc.Tilted = true
		frameKeys := make([]cube.CellKey, 0, len(s.Frames))
		for k := range s.Frames {
			frameKeys = append(frameKeys, k)
		}
		slices.SortFunc(frameKeys, cube.CompareKeys)
		doc.Frames = make([]snapFrame, len(frameKeys))
		for i, k := range frameKeys {
			v := s.Frames[k]
			levels, members := cellCoords(k)
			sf := snapFrame{Levels: levels, Members: members, Base: v.Base}
			for _, lv := range v.Levels {
				sf.Frame = append(sf.Frame, snapFrameLevel{
					Name: lv.Name, UnitTicks: lv.UnitTicks, Capacity: lv.Capacity,
					Completed: lv.Completed, Slots: lv.Slots,
				})
			}
			doc.Frames[i] = sf
		}
	}
	return json.Marshal(&doc)
}

// decodeKey validates coordinate-form cell coordinates against the schema
// dimension count and assembles the CellKey.
func decodeKey(schema *cube.Schema, levels []int, members []int32) (cube.CellKey, error) {
	if len(levels) != len(schema.Dims) || len(members) != len(schema.Dims) {
		return cube.CellKey{}, fmt.Errorf("%w: cell has %d levels and %d members for %d dimensions",
			ErrRecord, len(levels), len(members), len(schema.Dims))
	}
	cb, err := cube.NewCuboid(levels...)
	if err != nil {
		return cube.CellKey{}, fmt.Errorf("%w: %v", ErrRecord, err)
	}
	return cube.NewCellKey(cb, members...), nil
}

func decodeCellList(schema *cube.Schema, cells []snapCell) (map[cube.CellKey]regression.ISB, error) {
	out := make(map[cube.CellKey]regression.ISB, len(cells))
	for _, c := range cells {
		k, err := decodeKey(schema, c.Levels, c.Members)
		if err != nil {
			return nil, err
		}
		out[k] = c.ISB
	}
	return out, nil
}

// DecodeSnapshot parses a /v1/snapshot document back into a Snapshot. The
// schema supplies the dimension count the coordinates are validated
// against; the returned snapshot's Result carries that schema, exactly as
// a local engine's would.
func DecodeSnapshot(schema *cube.Schema, data []byte) (*Snapshot, error) {
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: snapshot document: %v", ErrRecord, err)
	}
	if doc.Version != snapshotWireVersion {
		return nil, fmt.Errorf("%w: snapshot document version %d, want %d", ErrRecord, doc.Version, snapshotWireVersion)
	}
	s := &Snapshot{Unit: doc.Unit, Interval: doc.Interval, UnitsDone: doc.UnitsDone}
	if !doc.Empty {
		res := &core.Result{Schema: schema}
		var err error
		if res.OLayer, err = decodeCellList(schema, doc.OLayer); err != nil {
			return nil, err
		}
		if res.Exceptions, err = decodeCellList(schema, doc.Exceptions); err != nil {
			return nil, err
		}
		for _, p := range doc.PathCells {
			cb, err := cube.NewCuboid(p.Levels...)
			if err != nil {
				return nil, fmt.Errorf("%w: path cuboid: %v", ErrRecord, err)
			}
			cells, err := decodeCellList(schema, p.Cells)
			if err != nil {
				return nil, err
			}
			if res.PathCells == nil {
				res.PathCells = make(map[cube.Cuboid]map[cube.CellKey]regression.ISB, len(doc.PathCells))
			}
			res.PathCells[cb] = cells
		}
		if doc.Stats != nil {
			res.Stats = *doc.Stats
		}
		s.Result = res
	}
	if len(doc.Alerts) > 0 {
		s.Alerts = make([]Alert, len(doc.Alerts))
		for i, sa := range doc.Alerts {
			k, err := decodeKey(schema, sa.Cell.Levels, sa.Cell.Members)
			if err != nil {
				return nil, err
			}
			a := Alert{Unit: sa.Unit, Kind: AlertKind(sa.Kind), Cell: k, ISB: sa.Cell.ISB}
			for _, d := range sa.Drill {
				dk, err := decodeKey(schema, d.Levels, d.Members)
				if err != nil {
					return nil, err
				}
				a.Drill = append(a.Drill, core.Cell{Key: dk, ISB: d.ISB})
			}
			s.Alerts[i] = a
		}
	}
	s.History = make(map[cube.CellKey][]HistoryPoint, len(doc.History))
	for _, h := range doc.History {
		k, err := decodeKey(schema, h.Levels, h.Members)
		if err != nil {
			return nil, err
		}
		s.History[k] = h.Points
	}
	if doc.Tilted {
		s.Frames = make(map[cube.CellKey]*FrameView, len(doc.Frames))
		for _, f := range doc.Frames {
			k, err := decodeKey(schema, f.Levels, f.Members)
			if err != nil {
				return nil, err
			}
			v := &FrameView{Base: f.Base}
			for _, lv := range f.Frame {
				v.Levels = append(v.Levels, FrameLevelView{
					Name: lv.Name, UnitTicks: lv.UnitTicks, Capacity: lv.Capacity,
					Completed: lv.Completed, Slots: lv.Slots,
				})
			}
			s.Frames[k] = v
		}
	}
	return s, nil
}

// MergeSnapshots combines per-node snapshots of the same closed unit into
// the cluster-wide view, with exactly the union-and-sort semantics the
// sharded coordinator applies at its barriers (advanceTo): cell maps are
// disjoint by the partition invariant so merging is a union, alerts
// concatenate into canonical order, and per-node stats fold through
// mergeStats. Every snapshot must describe the same unit; mismatched
// units mean the gather tier fetched without aligning watermarks first.
func MergeSnapshots(schema *cube.Schema, snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("%w: no snapshots to merge", ErrRecord)
	}
	first := snaps[0]
	for _, s := range snaps[1:] {
		if s.Unit != first.Unit || s.UnitsDone != first.UnitsDone {
			return nil, fmt.Errorf("%w: snapshot units diverge (%d/%d done vs %d/%d done)",
				ErrRecord, s.Unit, s.UnitsDone, first.Unit, first.UnitsDone)
		}
		if s.Interval != first.Interval {
			return nil, fmt.Errorf("%w: snapshot intervals diverge at unit %d", ErrRecord, s.Unit)
		}
	}
	out := &Snapshot{
		Unit:      first.Unit,
		Interval:  first.Interval,
		UnitsDone: first.UnitsDone,
		History:   make(map[cube.CellKey][]HistoryPoint),
	}
	var res *core.Result
	statsFirst := true
	for _, s := range snaps {
		if s.Result != nil {
			if res == nil {
				res = &core.Result{
					Schema:     schema,
					OLayer:     make(map[cube.CellKey]regression.ISB),
					Exceptions: make(map[cube.CellKey]regression.ISB),
				}
			}
			for k, v := range s.Result.OLayer {
				res.OLayer[k] = v
			}
			for k, v := range s.Result.Exceptions {
				res.Exceptions[k] = v
			}
			for cb, cells := range s.Result.PathCells {
				if res.PathCells == nil {
					res.PathCells = make(map[cube.Cuboid]map[cube.CellKey]regression.ISB)
				}
				dst := res.PathCells[cb]
				if dst == nil {
					dst = make(map[cube.CellKey]regression.ISB, len(cells))
					res.PathCells[cb] = dst
				}
				for k, v := range cells {
					dst[k] = v
				}
			}
			mergeStats(&res.Stats, &s.Result.Stats, statsFirst)
			statsFirst = false
		}
		out.Alerts = append(out.Alerts, s.Alerts...)
		for k, pts := range s.History {
			out.History[k] = pts
		}
		if s.Frames != nil {
			if out.Frames == nil {
				out.Frames = make(map[cube.CellKey]*FrameView)
			}
			for k, v := range s.Frames {
				out.Frames[k] = v
			}
		}
	}
	out.Result = res
	SortAlerts(out.Alerts)
	return out, nil
}
