package stream

import (
	"fmt"
	"slices"

	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/wire"
)

// checkBatchShape validates a wire batch against the engine schema once,
// up front — the batch paths never re-check per record.
func checkBatchShape(b *wire.Batch, nDims int) error {
	if len(b.Cols) != nDims {
		return fmt.Errorf("%w: batch has %d dimensions, engine has %d", ErrRecord, len(b.Cols), nDims)
	}
	n := b.Len()
	if len(b.Values) != n {
		return fmt.Errorf("%w: batch has %d values for %d ticks", ErrRecord, len(b.Values), n)
	}
	for d, col := range b.Cols {
		if len(col) != n {
			return fmt.Errorf("%w: batch dimension %d has %d members for %d ticks", ErrRecord, d, len(col), n)
		}
	}
	return nil
}

// IngestBatch consumes a columnar record batch with Ingest semantics:
// records are ingested in order, boundary crossings close units, and the
// closed units accumulate across the whole batch. On a record error the
// records before it are already ingested (exactly as if they had arrived
// one at a time) and the error is returned with the units closed so far.
//
// The batch is cut into maximal runs inside the open unit; each run goes
// through ingestRun, whose per-record work is the accumulator update alone
// — no per-record call or boundary re-check.
func (e *Engine) IngestBatch(b *wire.Batch) ([]*UnitResult, error) {
	if err := checkBatchShape(b, e.nd); err != nil {
		return nil, err
	}
	var closed []*UnitResult
	n := b.Len()
	for start := 0; start < n; {
		tick := b.Ticks[start]
		if tick < e.openStart {
			return closed, fmt.Errorf("%w: tick %d before open unit start %d", ErrRecord, tick, e.openStart)
		}
		for tick >= e.openEnd {
			ur, err := e.closeUnit()
			if err != nil {
				return closed, err
			}
			closed = append(closed, ur)
		}
		end := start + 1
		for end < n && b.Ticks[end] >= e.openStart && b.Ticks[end] < e.openEnd {
			end++
		}
		if err := e.ingestRun(b, start, end); err != nil {
			return closed, err
		}
		start = end
	}
	return closed, nil
}

// ingestRun is the tight loop behind the batch paths: it consumes records
// [lo,hi) of a shape-checked batch, every one of which must fall inside
// the open unit (IngestBatch cuts runs that way; a ShardedEngine's
// coordinator barriers boundaries before dispatching). A record outside
// the open unit means the caller broke that contract and fails the run.
// Per-record validation and accumulator updates are exactly Ingest's.
func (e *Engine) ingestRun(b *wire.Batch, lo, hi int) error {
	var key [cube.MaxDims]int32
	for i := lo; i < hi; i++ {
		tick := b.Ticks[i]
		if tick < e.openStart || tick >= e.openEnd {
			return fmt.Errorf("%w: tick %d outside open unit [%d,%d)", ErrRecord, tick, e.openStart, e.openEnd)
		}
		var acc *regression.Accumulator
		if e.dense != nil {
			idx := int64(0)
			inRange := true
			for d := 0; d < e.nd; d++ {
				m := b.Cols[d][i]
				if uint32(m) >= uint32(e.cards[d]) {
					inRange = false
					break
				}
				idx += int64(m) * e.strides[d]
			}
			if inRange {
				acc = e.dense[idx]
				if acc == nil {
					acc = e.newAccumulator()
					e.dense[idx] = acc
					e.denseActive = append(e.denseActive, idx)
				}
			}
		}
		if acc == nil {
			for d := 0; d < e.nd; d++ {
				key[d] = b.Cols[d][i]
			}
			var ok bool
			acc, ok = e.cells[key]
			if !ok {
				acc = e.newAccumulator()
				e.cells[key] = acc
			}
		}
		if tick < acc.NextTick() {
			return fmt.Errorf("%w: tick %d already consumed for cell (next %d)", ErrRecord, tick, acc.NextTick())
		}
		acc.AdvanceTo(tick)
		if err := acc.Add(tick, b.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// IngestBatch consumes a columnar record batch, partitioning it across the
// shards with one ancestor-table pass per dimension instead of resolving
// records one at a time. The batch is cut into maximal runs that stay
// inside the open unit; each boundary crossing barriers the shards exactly
// as record-at-a-time ingest would, so closed-unit results — and the final
// state — are bitwise-identical to feeding the same records through
// Ingest.
//
// Validation is batch-level: a segment with an out-of-range member or a
// tick before the open unit fails before any of the segment's records are
// routed (records of earlier segments, and units they closed, stand).
func (s *ShardedEngine) IngestBatch(b *wire.Batch) ([]*UnitResult, error) {
	if err := s.ready(); err != nil {
		return nil, err
	}
	if err := checkBatchShape(b, s.nDims); err != nil {
		return nil, err
	}
	var closed []*UnitResult
	n := b.Len()
	for start := 0; start < n; {
		tick := b.Ticks[start]
		if tick >= s.openEnd {
			target := (tick - s.cfg.StartTick) / int64(s.cfg.TicksPerUnit)
			urs, err := s.advanceTo(target)
			closed = append(closed, urs...)
			if err != nil {
				return closed, err
			}
		}
		openStart := s.openEnd - int64(s.cfg.TicksPerUnit)
		if tick < openStart {
			return closed, fmt.Errorf("%w: tick %d before open unit start %d", ErrRecord, tick, openStart)
		}
		// The segment is the maximal run staying inside the open unit.
		end := start + 1
		for end < n && b.Ticks[end] >= openStart && b.Ticks[end] < s.openEnd {
			end++
		}
		if err := s.routeSegment(b, start, end); err != nil {
			return closed, err
		}
		start = end
	}
	return closed, nil
}

// routeSegment partitions records [lo,hi) of a batch — all inside the open
// unit — into the per-shard pending buffers. The partition function is
// Partitioner.FoldColumns — the o-layer ancestor fold computed column-wise
// (one dense-table pass per dimension, then one finalize pass), shared
// verbatim with the multi-node router so batch, record, and cross-process
// routing all agree bit for bit.
func (s *ShardedEngine) routeSegment(b *wire.Batch, lo, hi int) error {
	nrec := hi - lo
	if cap(s.hashBuf) < nrec {
		s.hashBuf = make([]uint64, nrec)
	}
	hb := s.hashBuf[:nrec]
	if err := s.part.FoldColumns(b, lo, hi, hb); err != nil {
		return err
	}
	// Scatter the segment into the per-shard columnar sub-batches,
	// column-wise — one pass per column, like the ancestor fold — so each
	// source column streams through the cache once and no per-record
	// struct is materialized.
	// The scatter is cursor-based: a histogram pass counts each shard's
	// share, every destination column grows once, and the fill loops write
	// by index — no per-record append bookkeeping or capacity checks.
	if cap(s.scatterBase) < len(s.shards) {
		s.scatterBase = make([]int, len(s.shards))
		s.scatterCur = make([]int, len(s.shards))
	}
	base := s.scatterBase[:len(s.shards)]
	cur := s.scatterCur[:len(s.shards)]
	for i := range base {
		base[i] = 0
	}
	for _, sid := range hb {
		base[sid]++
	}
	for sid, c := range base {
		if c == 0 {
			continue
		}
		p := s.pending[sid]
		if p == nil {
			p = s.getBatch()
			s.pending[sid] = p
		}
		n0 := len(p.Ticks)
		p.Ticks = slices.Grow(p.Ticks, c)[:n0+c]
		p.Values = slices.Grow(p.Values, c)[:n0+c]
		for d := 0; d < s.nDims; d++ {
			p.Cols[d] = slices.Grow(p.Cols[d], c)[:n0+c]
		}
		base[sid] = n0
	}
	copy(cur, base)
	ticks, values := b.Ticks[lo:hi], b.Values[lo:hi]
	for i, sid := range hb {
		p := s.pending[sid]
		j := cur[sid]
		cur[sid] = j + 1
		p.Ticks[j] = ticks[i]
		p.Values[j] = values[i]
	}
	for d := 0; d < s.nDims; d++ {
		col := b.Cols[d][lo:hi]
		copy(cur, base)
		for i, sid := range hb {
			j := cur[sid]
			cur[sid] = j + 1
			s.pending[sid].Cols[d][j] = col[i]
		}
	}
	for sid, p := range s.pending {
		if p != nil && p.Len() >= ingestBatchSize {
			s.shards[sid].in <- shardMsg{batch: p}
			s.pending[sid] = nil
		}
	}
	return nil
}
