package stream

import (
	"sync"
	"sync/atomic"
)

// This file implements the snapshot broadcast bus: push-side delivery of
// the same immutable *Snapshot values that Snapshot() serves pull-side.
// Publication happens only at unit boundaries (never on the per-record
// path), and delivery to a subscriber is a non-blocking channel send with
// latest-wins semantics — a slow or wedged consumer loses old snapshots,
// never stalls ingest. Snapshot() remains the last-published accessor and
// is untouched by the bus: pull-side callers observe exactly the
// pre-bus behavior.

// defaultSubscribeBuffer is the per-subscriber channel capacity when the
// caller passes buf < 1 to Subscribe. One slot is the pure latest-wins
// subscription: the channel only ever holds the newest snapshot.
const defaultSubscribeBuffer = 1

// Subscription is one consumer's handle on an engine's snapshot bus. The
// channel returned by C is bounded: when the consumer falls behind, the
// publisher drops the oldest undelivered snapshot (counted on the bus) and
// enqueues the new one, so the consumer always converges on the latest
// unit and the publisher never blocks. Close unregisters the subscription;
// the channel is never closed, so a receive loop must select on its own
// context rather than waiting for channel close.
type Subscription struct {
	ch  chan *Snapshot
	bus *snapBus
}

// C returns the subscription's delivery channel. Snapshots arrive in unit
// order, but units may be skipped when the consumer is slower than the
// unit rate (latest-wins); each delivered value is a complete immutable
// Snapshot, unit-consistent like every published snapshot.
func (s *Subscription) C() <-chan *Snapshot { return s.ch }

// Close unregisters the subscription from the bus. Snapshots already
// buffered remain receivable; no further ones are delivered. Close is
// idempotent and safe to call concurrently with publication.
func (s *Subscription) Close() { s.bus.unsubscribe(s) }

// snapBus is the broadcast half of snapshot publication, embedded in both
// Engine and ShardedEngine. The subscriber list is mutex-guarded; publish
// runs only at unit boundaries so the lock is nowhere near the per-record
// path.
type snapBus struct {
	mu      sync.Mutex
	subs    []*Subscription
	dropped atomic.Int64
}

func (b *snapBus) subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = defaultSubscribeBuffer
	}
	sub := &Subscription{ch: make(chan *Snapshot, buf), bus: b}
	b.mu.Lock()
	b.subs = append(b.subs, sub)
	b.mu.Unlock()
	return sub
}

func (b *snapBus) unsubscribe(sub *Subscription) {
	b.mu.Lock()
	for i, s := range b.subs {
		if s == sub {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// publish delivers snap to every subscriber without ever blocking: a full
// channel sheds its oldest entry (counted) until the send lands. Only the
// publisher removes entries on the send path, so the loop terminates even
// while the consumer drains concurrently.
func (b *snapBus) publish(snap *Snapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sub := range b.subs {
		for {
			select {
			case sub.ch <- snap:
			default:
				// Channel full: drop the oldest undelivered snapshot and
				// retry. The non-blocking receive can miss (the consumer
				// just drained), in which case the retry's send succeeds.
				select {
				case <-sub.ch:
					b.dropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// droppedCount returns how many snapshots were shed to slow subscribers.
func (b *snapBus) droppedCount() int64 { return b.dropped.Load() }

// Subscribe registers a snapshot consumer with a bounded delivery channel
// of the given capacity (buf < 1 selects the 1-slot latest-wins default).
// Every snapshot the engine publishes (Config.PublishSnapshots) is offered
// to every subscriber; a subscriber that falls behind loses oldest-first
// and ingest never blocks on it. With PublishSnapshots off nothing is ever
// delivered. Subscribe is safe to call from any goroutine.
func (e *Engine) Subscribe(buf int) *Subscription { return e.bus.subscribe(buf) }

// BusDropped returns how many snapshots the bus shed to slow subscribers
// since the engine was built. Safe to call from any goroutine.
func (e *Engine) BusDropped() int64 { return e.bus.droppedCount() }

// Subscribe registers a snapshot consumer on the coordinator's merged
// snapshot bus; semantics are identical to Engine.Subscribe. Delivered
// snapshots are the same merged values Snapshot() serves.
func (s *ShardedEngine) Subscribe(buf int) *Subscription { return s.bus.subscribe(buf) }

// BusDropped returns how many merged snapshots the bus shed to slow
// subscribers since the engine was built.
func (s *ShardedEngine) BusDropped() int64 { return s.bus.droppedCount() }
