package stream

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
)

func snapshotTestSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func snapshotTestConfig(t testing.TB) Config {
	return Config{
		Schema:           snapshotTestSchema(t),
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}
}

// verifySnapshot asserts the internal consistency every served snapshot
// must have: all parts describe the same closed unit.
func verifySnapshot(t testing.TB, cfg *Config, s *Snapshot) {
	t.Helper()
	wantLo := cfg.StartTick + s.Unit*int64(cfg.TicksPerUnit)
	if s.Interval.Tb != wantLo || s.Interval.Te != wantLo+int64(cfg.TicksPerUnit)-1 {
		t.Fatalf("snapshot unit %d has interval [%d,%d]", s.Unit, s.Interval.Tb, s.Interval.Te)
	}
	if s.UnitsDone != s.Unit+1 {
		t.Fatalf("snapshot unit %d with %d units done", s.Unit, s.UnitsDone)
	}
	for i, a := range s.Alerts {
		if a.Unit != s.Unit {
			t.Fatalf("alert %d is for unit %d inside snapshot of unit %d", i, a.Unit, s.Unit)
		}
		if s.Result == nil {
			t.Fatalf("alert %d inside empty-unit snapshot", i)
		}
		isb, ok := s.Result.OLayer[a.Cell]
		if !ok {
			t.Fatalf("alert %d cell %v missing from the snapshot's o-layer", i, a.Cell)
		}
		if a.Kind == SlopeException && isb != a.ISB {
			t.Fatalf("alert %d ISB %+v differs from o-layer %+v", i, a.ISB, isb)
		}
		if i > 0 {
			prev, cur := s.Alerts[i-1], a
			if prev.Unit > cur.Unit ||
				(prev.Unit == cur.Unit && cube.CompareKeys(prev.Cell, cur.Cell) > 0) {
				t.Fatalf("alerts not in canonical order at %d", i)
			}
		}
	}
	if s.Result != nil {
		for key, isb := range s.Result.OLayer {
			h := s.History[key]
			if len(h) == 0 {
				t.Fatalf("o-cell %v has no history in its own unit's snapshot", key)
			}
			tip := h[len(h)-1]
			if tip.Unit != s.Unit || tip.ISB != isb {
				t.Fatalf("o-cell %v history tip (%d, %+v) disagrees with unit %d o-layer %+v",
					key, tip.Unit, tip.ISB, s.Unit, isb)
			}
		}
	}
	for key, h := range s.History {
		for i := 1; i < len(h); i++ {
			if h[i].Unit <= h[i-1].Unit {
				t.Fatalf("history of %v not strictly increasing at %d", key, i)
			}
		}
		if len(h) > 0 && h[len(h)-1].Unit > s.Unit {
			t.Fatalf("history of %v reaches unit %d beyond snapshot unit %d", key, h[len(h)-1].Unit, s.Unit)
		}
	}
}

// ingestGrid feeds every m-cell one reading per tick over [from, to),
// slopes varying per cell so alerts fire.
func ingestGrid(t testing.TB, ing func([]int32, int64, float64) ([]*UnitResult, error), from, to int64) {
	t.Helper()
	for tick := from; tick < to; tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := ing([]int32{a, b}, tick, float64(tick)*float64(a+2*b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestEngineSnapshotPublishedPerUnit(t *testing.T) {
	cfg := snapshotTestConfig(t)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Snapshot() != nil {
		t.Fatal("snapshot before any unit closed")
	}
	ingestGrid(t, eng.Ingest, 0, 9) // crosses units 0 and 1
	snap := eng.Snapshot()
	if snap == nil || snap.Unit != 1 {
		t.Fatalf("snapshot = %+v, want unit 1", snap)
	}
	verifySnapshot(t, &cfg, snap)
	if len(snap.Result.OLayer) != 4 || len(snap.Alerts) == 0 {
		t.Fatalf("snapshot result has %d o-cells, %d alerts", len(snap.Result.OLayer), len(snap.Alerts))
	}
	// History is a deep copy: later units must not mutate a held snapshot.
	before := len(snap.History[snap.Alerts[0].Cell])
	ingestGrid(t, eng.Ingest, 9, 13)
	if got := len(snap.History[snap.Alerts[0].Cell]); got != before {
		t.Fatalf("held snapshot's history grew from %d to %d", before, got)
	}
	// Flush publishes the final partial unit.
	if _, err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Snapshot().Unit; got != 3 {
		t.Fatalf("post-flush snapshot unit = %d, want 3", got)
	}
}

func TestSnapshotDisabledByDefault(t *testing.T) {
	cfg := snapshotTestConfig(t)
	cfg.PublishSnapshots = false
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, eng.Ingest, 0, 9)
	if eng.Snapshot() != nil {
		t.Fatal("snapshot published with PublishSnapshots off")
	}
	seng, err := NewShardedEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()
	ingestGrid(t, seng.Ingest, 0, 9)
	if seng.Snapshot() != nil {
		t.Fatal("sharded snapshot published with PublishSnapshots off")
	}
}

// The merged sharded snapshot is identical to the single engine's at every
// shard count: same result maps, same canonical alerts, same history.
func TestShardedSnapshotMatchesSingle(t *testing.T) {
	cfg := snapshotTestConfig(t)
	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, single.Ingest, 0, 17)
	want := single.Snapshot()
	verifySnapshot(t, &cfg, want)

	for _, shards := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seng, err := NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer seng.Close()
			ingestGrid(t, seng.Ingest, 0, 17)
			got := seng.Snapshot()
			verifySnapshot(t, &cfg, got)
			if got.Unit != want.Unit || got.UnitsDone != want.UnitsDone || got.Interval != want.Interval {
				t.Fatalf("header %d/%d/%v, want %d/%d/%v",
					got.Unit, got.UnitsDone, got.Interval, want.Unit, want.UnitsDone, want.Interval)
			}
			if !reflect.DeepEqual(got.Result.OLayer, want.Result.OLayer) {
				t.Fatal("merged o-layer differs from single engine")
			}
			if !reflect.DeepEqual(got.Result.Exceptions, want.Result.Exceptions) {
				t.Fatal("merged exceptions differ from single engine")
			}
			if !reflect.DeepEqual(got.History, want.History) {
				t.Fatal("merged history differs from single engine")
			}
			if len(got.Alerts) != len(want.Alerts) {
				t.Fatalf("%d alerts, want %d", len(got.Alerts), len(want.Alerts))
			}
			for i := range got.Alerts {
				if got.Alerts[i].Unit != want.Alerts[i].Unit ||
					got.Alerts[i].Kind != want.Alerts[i].Kind ||
					got.Alerts[i].Cell != want.Alerts[i].Cell ||
					got.Alerts[i].ISB != want.Alerts[i].ISB {
					t.Fatalf("alert %d differs: %+v vs %+v", i, got.Alerts[i], want.Alerts[i])
				}
			}
		})
	}
}

func TestSnapshotEmptyUnit(t *testing.T) {
	cfg := snapshotTestConfig(t)
	seng, err := NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()
	ingestGrid(t, seng.Ingest, 0, 4) // unit 0 complete, still open
	if _, err := seng.Flush(); err != nil {
		t.Fatal(err)
	}
	full := seng.Snapshot()
	if full == nil || full.Result == nil || full.Unit != 0 {
		t.Fatalf("unit 0 snapshot = %+v", full)
	}
	// Unit 1 closes with no data at all.
	if _, err := seng.Flush(); err != nil {
		t.Fatal(err)
	}
	empty := seng.Snapshot()
	if empty.Unit != 1 || empty.Result != nil || len(empty.Alerts) != 0 {
		t.Fatalf("empty-unit snapshot = unit %d result %v", empty.Unit, empty.Result)
	}
	// History still carries unit 0's cells.
	if !reflect.DeepEqual(empty.History, full.History) {
		t.Fatal("empty unit must preserve history")
	}
	if empty.UnitsDone != 2 {
		t.Fatalf("units done = %d, want 2", empty.UnitsDone)
	}
}

func TestSnapshotClearedOnRestore(t *testing.T) {
	cfg := snapshotTestConfig(t)
	seng, err := NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()
	ingestGrid(t, seng.Ingest, 0, 5)
	cp, err := seng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seng.Snapshot() == nil {
		t.Fatal("no snapshot before restore")
	}
	if err := seng.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if seng.Snapshot() != nil {
		t.Fatal("stale snapshot survived Restore")
	}

	single, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestGrid(t, single.Ingest, 0, 5)
	if err := single.Restore(single.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if single.Snapshot() != nil {
		t.Fatal("stale snapshot survived single-engine Restore")
	}
}

// TestSnapshotConcurrentReaders is the -race acceptance stress test: N
// goroutines hammer the snapshot read path while the 4-shard coordinator
// ingests at full rate, and every observed snapshot must be internally
// consistent — alerts, result, and history all of one unit.
func TestSnapshotConcurrentReaders(t *testing.T) {
	cfg := snapshotTestConfig(t)
	seng, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer seng.Close()

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last *Snapshot
			seen := 0
			var prevUnit int64 = -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := seng.Snapshot()
				if s == nil {
					continue
				}
				if s != last {
					last = s
					seen++
					// Units move forward only.
					if s.Unit <= prevUnit {
						t.Errorf("snapshot went backwards: %d after %d", s.Unit, prevUnit)
						return
					}
					prevUnit = s.Unit
					verifySnapshot(t, &cfg, s)
					// Exercise the trend path against the frozen history.
					for key := range s.Result.OLayer {
						if _, err := s.TrendQuery(key, 1); err != nil {
							t.Errorf("trend on snapshot unit %d: %v", s.Unit, err)
							return
						}
						break
					}
				}
			}
		}()
	}

	ticks := int64(400)
	if testing.Short() {
		ticks = 60
	}
	ingestGrid(t, seng.Ingest, 0, ticks)
	close(stop)
	wg.Wait()

	// The last tick leaves the final unit open; the newest closed unit is
	// the one before it.
	wantUnit := (ticks-1)/4 - 1
	final := seng.Snapshot()
	if final == nil || final.Unit != wantUnit {
		t.Fatalf("final snapshot unit = %d, want %d", final.Unit, wantUnit)
	}
}
