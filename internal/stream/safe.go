package stream

import (
	"sync"

	"repro/internal/cube"
	"repro/internal/regression"
)

// SafeEngine wraps Engine with a mutex so multiple collector goroutines
// can feed one analyzer. All methods have the same semantics as Engine's.
// For high-throughput pipelines prefer sharding records to per-goroutine
// engines and merging o-layers with AggregateStandard, but a single locked
// engine is the simple correct default.
type SafeEngine struct {
	mu  sync.Mutex
	eng *Engine
}

// NewSafeEngine builds a mutex-guarded engine.
func NewSafeEngine(cfg Config) (*SafeEngine, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &SafeEngine{eng: eng}, nil
}

// Ingest is Engine.Ingest under the lock.
func (s *SafeEngine) Ingest(members []int32, tick int64, value float64) ([]*UnitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Ingest(members, tick, value)
}

// Flush is Engine.Flush under the lock.
func (s *SafeEngine) Flush() (*UnitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Flush()
}

// Unit is Engine.Unit under the lock.
func (s *SafeEngine) Unit() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Unit()
}

// UnitsDone is Engine.UnitsDone under the lock.
func (s *SafeEngine) UnitsDone() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.UnitsDone()
}

// ActiveCells is Engine.ActiveCells under the lock.
func (s *SafeEngine) ActiveCells() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.ActiveCells()
}

// TrendQuery is Engine.TrendQuery under the lock.
func (s *SafeEngine) TrendQuery(cell cube.CellKey, k int) (regression.ISB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.TrendQuery(cell, k)
}

// HistoryLen is Engine.HistoryLen under the lock.
func (s *SafeEngine) HistoryLen(cell cube.CellKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.HistoryLen(cell)
}

// Checkpoint is Engine.Checkpoint under the lock.
func (s *SafeEngine) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Checkpoint()
}

// Restore is Engine.Restore under the lock.
func (s *SafeEngine) Restore(cp *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Restore(cp)
}
