package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cube"
	"repro/internal/exception"
)

// ingester is the surface shared by Engine, SafeEngine, and ShardedEngine
// that the equivalence tests drive.
type ingester interface {
	Ingest(members []int32, tick int64, value float64) ([]*UnitResult, error)
	Flush() (*UnitResult, error)
}

// testRecord is one record of a generated stream.
type testRecord struct {
	members []int32
	tick    int64
	value   float64
}

// genStream builds a deterministic random stream over the 9×9 m-layer of
// smallSchema: per unit a random subset of cells reports at a random subset
// of ticks. Unit `emptyUnit` gets no records at all (tests the delta-base
// reset and empty-unit merging).
func genStream(seed int64, units, ticksPer int, emptyUnit int) []testRecord {
	r := rand.New(rand.NewSource(seed))
	var out []testRecord
	for u := 0; u < units; u++ {
		if u == emptyUnit {
			continue
		}
		active := make(map[[2]int32][]bool)
		for a := int32(0); a < 9; a++ {
			for b := int32(0); b < 9; b++ {
				if r.Float64() < 0.4 {
					ticks := make([]bool, ticksPer)
					any := false
					for i := range ticks {
						if r.Float64() < 0.7 {
							ticks[i] = true
							any = true
						}
					}
					if !any {
						ticks[0] = true
					}
					active[[2]int32{a, b}] = ticks
				}
			}
		}
		for i := 0; i < ticksPer; i++ {
			for a := int32(0); a < 9; a++ {
				for b := int32(0); b < 9; b++ {
					ticks, ok := active[[2]int32{a, b}]
					if !ok || !ticks[i] {
						continue
					}
					out = append(out, testRecord{
						members: []int32{a, b},
						tick:    int64(u*ticksPer + i),
						value:   r.NormFloat64() * 5,
					})
				}
			}
		}
	}
	return out
}

// wideSchema is a 2-dim, 3-level fanout-3 schema: m-layer 9×9, o-layer 3×3
// (9 shard partitions).
func wideSchema(t *testing.T) *cube.Schema {
	t.Helper()
	ha, _ := cube.NewFanoutHierarchy("A", 3, 2)
	hb, _ := cube.NewFanoutHierarchy("B", 3, 2)
	s, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func feed(t *testing.T, e ingester, recs []testRecord) []*UnitResult {
	t.Helper()
	var out []*UnitResult
	for _, r := range recs {
		closed, err := e.Ingest(r.members, r.tick, r.value)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, closed...)
	}
	final, err := e.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, final)
}

// requireSameResults asserts two unit-result sequences are identical:
// bitwise-equal cell measures, byte-identical sorted alerts, matching
// delta cubes. Alerts of `got` may arrive unsorted (single engines emit
// map order); both sides are canonicalized with SortAlerts first.
func requireSameResults(t *testing.T, label string, want, got []*UnitResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d unit results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Unit != g.Unit || w.Interval != g.Interval {
			t.Fatalf("%s unit %d: meta %v/%v vs %v/%v", label, i, g.Unit, g.Interval, w.Unit, w.Interval)
		}
		if (w.Result == nil) != (g.Result == nil) {
			t.Fatalf("%s unit %d: result nil-ness differs", label, w.Unit)
		}
		if w.Result != nil {
			if !reflect.DeepEqual(w.Result.OLayer, g.Result.OLayer) {
				t.Fatalf("%s unit %d: o-layers differ", label, w.Unit)
			}
			if !reflect.DeepEqual(w.Result.Exceptions, g.Result.Exceptions) {
				t.Fatalf("%s unit %d: exception sets differ", label, w.Unit)
			}
			if !reflect.DeepEqual(w.Result.PathCells, g.Result.PathCells) {
				t.Fatalf("%s unit %d: path cells differ", label, w.Unit)
			}
		}
		wa := append([]Alert(nil), w.Alerts...)
		ga := append([]Alert(nil), g.Alerts...)
		SortAlerts(wa)
		SortAlerts(ga)
		if !reflect.DeepEqual(wa, ga) {
			t.Fatalf("%s unit %d: alerts differ:\n%+v\nvs\n%+v", label, w.Unit, ga, wa)
		}
		if (w.Delta == nil) != (g.Delta == nil) {
			t.Fatalf("%s unit %d: delta nil-ness differs (want nil=%v)", label, w.Unit, w.Delta == nil)
		}
		if w.Delta != nil {
			if !reflect.DeepEqual(w.Delta.OLayer, g.Delta.OLayer) {
				t.Fatalf("%s unit %d: delta o-layers differ", label, w.Unit)
			}
			if !reflect.DeepEqual(w.Delta.Exceptions, g.Delta.Exceptions) {
				t.Fatalf("%s unit %d: delta exceptions differ", label, w.Unit)
			}
		}
	}
}

// The tentpole property: identical record streams through Engine,
// SafeEngine, and ShardedEngine at 1, 4, and 7 shards produce identical
// sorted alerts, cell sets, and delta cubes — for both cubing algorithms.
func TestShardedMatchesSingleEngine(t *testing.T) {
	s := wideSchema(t)
	for _, alg := range []Algorithm{MOCubing, PopularPath} {
		cfg := Config{
			Schema:       s,
			TicksPerUnit: 4,
			Threshold:    exception.Global(1.0),
			Algorithm:    alg,
			Delta:        &exception.Delta{MinSlopeChange: 0.8},
			DeltaDrill:   true,
		}
		for seed := int64(1); seed <= 3; seed++ {
			recs := genStream(seed, 6, 4, 2)
			single, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := feed(t, single, recs)

			safe, err := NewSafeEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, alg.String()+"/safe", want, feed(t, safe, recs))

			for _, shards := range []int{1, 4, 7} {
				sh, err := NewShardedEngine(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				got := feed(t, sh, recs)
				requireSameResults(t, alg.String()+"/sharded", want, got)

				// History-backed queries agree for every o-cell too.
				for a := int32(0); a < 3; a++ {
					for b := int32(0); b < 3; b++ {
						cell := cube.NewCellKey(s.OLayer(), a, b)
						hw := single.HistoryLen(cell)
						hg, err := sh.HistoryLen(cell)
						if err != nil {
							t.Fatal(err)
						}
						if hw != hg {
							t.Fatalf("history len %d vs %d for %v", hg, hw, cell)
						}
						if hw == 0 {
							continue
						}
						tw, errW := single.TrendQuery(cell, 1)
						tg, errG := sh.TrendQuery(cell, 1)
						if (errW == nil) != (errG == nil) || tw != tg {
							t.Fatalf("trend query differs for %v: %v/%v vs %v/%v", cell, tg, errG, tw, errW)
						}
					}
				}
				sh.Close()
			}
		}
	}
}

// Checkpoints round-trip across shard counts: state taken at one count
// restores into any other (and into a plain Engine via Merge) and the
// engines stay bitwise-identical afterwards.
func TestShardedCheckpointRepartitions(t *testing.T) {
	s := wideSchema(t)
	cfg := Config{Schema: s, TicksPerUnit: 4, Threshold: exception.Global(1.0)}
	recs := genStream(7, 6, 4, -1)
	split := len(recs) / 2

	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for _, r := range recs[:split] {
		if _, err := ref.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
		if _, err := src.Ingest(r.members, r.tick, r.value); err != nil {
			t.Fatal(err)
		}
	}
	scp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(scp.Shards) != 4 {
		t.Fatalf("checkpoint shards = %d, want 4", len(scp.Shards))
	}

	finish := func(e ingester) []*UnitResult {
		var out []*UnitResult
		for _, r := range recs[split:] {
			closed, err := e.Ingest(r.members, r.tick, r.value)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, closed...)
		}
		final, err := e.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return append(out, final)
	}
	want := finish(ref)

	// Restore into 7 shards, 1 shard, and (merged) a plain Engine.
	for _, shards := range []int{7, 1} {
		dst, err := NewShardedEngine(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(scp); err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "restored-sharded", want, finish(dst))
		dst.Close()
	}
	merged, err := scp.Merge()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(merged); err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "restored-plain", want, finish(plain))

	// And the reverse direction: a plain Engine's checkpoint wrapped as a
	// one-shard set loads into a sharded engine.
	wrapped := &ShardedCheckpoint{Shards: []*Checkpoint{ref.Checkpoint()}}
	back, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if err := back.Restore(wrapped); err != nil {
		t.Fatal(err)
	}
	cells, err := back.ActiveCells()
	if err != nil {
		t.Fatal(err)
	}
	refCells := ref.ActiveCells()
	if cells != refCells {
		t.Fatalf("active cells after restore = %d, want %d", cells, refCells)
	}
}

func TestShardedValidation(t *testing.T) {
	s := wideSchema(t)
	cfg := Config{Schema: s, TicksPerUnit: 4, Threshold: exception.Global(1)}
	if _, err := NewShardedEngine(cfg, 0); err == nil {
		t.Fatal("expected shard-count error")
	}
	if _, err := NewShardedEngine(Config{TicksPerUnit: 4}, 2); err == nil {
		t.Fatal("expected config error")
	}
	e, err := NewShardedEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0}, 0, 1); err == nil {
		t.Fatal("expected member-count error")
	}
	if _, err := e.Ingest([]int32{0, 99}, 0, 1); err == nil {
		t.Fatal("expected member-range error")
	}
	if _, err := e.Ingest([]int32{0, 0}, 6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0, 0}, 2, 1); err == nil {
		t.Fatal("expected stale-tick error")
	}
	if e.Shards() != 3 || e.Unit() != 1 || e.UnitsDone() != 1 {
		t.Fatalf("counters: shards=%d unit=%d done=%d", e.Shards(), e.Unit(), e.UnitsDone())
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Ingest([]int32{0, 0}, 7, 1); err == nil {
		t.Fatal("expected closed-engine error")
	}
	if _, err := e.Flush(); err == nil {
		t.Fatal("expected closed-engine error")
	}
	if err := e.Restore(&ShardedCheckpoint{}); err == nil {
		t.Fatal("expected closed-engine error")
	}
}

// A record error inside a shard (per-cell duplicate tick) surfaces at the
// next barrier, sticks, and is cleared by Restore.
func TestShardedStickyErrorAndRecovery(t *testing.T) {
	s := wideSchema(t)
	cfg := Config{Schema: s, TicksPerUnit: 4, Threshold: exception.Global(1)}
	e, err := NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cp, err := e.Checkpoint() // clean state for later recovery
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0, 0}, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Same cell, same tick: the owning shard rejects it asynchronously.
	if _, err := e.Ingest([]int32{0, 0}, 0, 2); err != nil {
		t.Fatalf("duplicate-tick error must be deferred to the barrier, got %v", err)
	}
	if _, err := e.Flush(); err == nil {
		t.Fatal("expected deferred record error at flush")
	}
	if _, err := e.Flush(); err == nil {
		t.Fatal("error must stick")
	}
	if err := e.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest([]int32{0, 0}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(); err != nil {
		t.Fatalf("restore must clear the sticky error: %v", err)
	}
}

// ShardedCheckpoint.Merge validates cross-shard consistency.
func TestShardedCheckpointValidate(t *testing.T) {
	if _, err := (&ShardedCheckpoint{}).Merge(); err == nil {
		t.Fatal("expected empty-checkpoint error")
	}
	var nilCp *ShardedCheckpoint
	if _, err := nilCp.Merge(); err == nil {
		t.Fatal("expected nil-checkpoint error")
	}
	if _, err := (&ShardedCheckpoint{Shards: []*Checkpoint{nil}}).Merge(); err == nil {
		t.Fatal("expected nil-shard error")
	}
	bad := &ShardedCheckpoint{Shards: []*Checkpoint{{Unit: 1}, {Unit: 2}}}
	if _, err := bad.Merge(); err == nil {
		t.Fatal("expected unit-mismatch error")
	}
	s := wideSchema(t)
	e, err := NewShardedEngine(Config{Schema: s, TicksPerUnit: 4, Threshold: exception.Global(1)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Restore(bad); err == nil {
		t.Fatal("expected unit-mismatch error on restore")
	}
}

// Single-engine runs are themselves deterministic now (canonical
// aggregation order): two identical runs produce bitwise-identical
// results. This is the foundation the sharded equivalence rests on.
func TestEngineDeterministicAcrossRuns(t *testing.T) {
	s := wideSchema(t)
	for _, alg := range []Algorithm{MOCubing, PopularPath} {
		cfg := Config{Schema: s, TicksPerUnit: 4, Threshold: exception.Global(1.0), Algorithm: alg}
		recs := genStream(11, 4, 4, -1)
		a, _ := NewEngine(cfg)
		b, _ := NewEngine(cfg)
		requireSameResults(t, "rerun/"+alg.String(), feed(t, a, recs), feed(t, b, recs))
	}
}
