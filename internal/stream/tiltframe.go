package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/tilt"
)

// cellFrame binds one o-cell's tilt frame to the engine unit it started
// at: frame-local unit ordinal u is engine unit base+u at the finest
// level.
type cellFrame struct {
	base  int64
	frame *tilt.UnitFrame
}

// FrameLevelView is one granularity of a published frame view.
type FrameLevelView struct {
	// Name labels the granularity ("quarter", "hour", ...).
	Name string
	// UnitTicks is the number of raw stream ticks per slot at this level.
	UnitTicks int64
	// Capacity is the retention bound (Config.TiltLevels[i].Slots).
	Capacity int
	// Completed counts units ever completed at this level, including
	// evicted ones.
	Completed int64
	// Slots are the retained completed units, oldest first. Slot.Unit is
	// the frame-local ordinal at this level; each slot's ISB carries the
	// exact raw-tick interval it regresses over.
	Slots []tilt.Slot
}

// FrameView is an immutable multi-granularity view of one o-cell's tilted
// regression history, published through Snapshot.Frames when
// Config.TiltLevels is set. Like every other snapshot field it is built
// once at a unit boundary and never mutated, so readers share it freely.
type FrameView struct {
	// Base is the engine unit of the frame's first registered unit: the
	// finest-level slot with ordinal u covers engine unit Base+u.
	Base int64
	// Levels mirror Config.TiltLevels, finest first.
	Levels []FrameLevelView
}

// Query aggregates the last k retained slots at the given level into one
// regression over their combined interval (Theorem 3.3) — "the last day
// with the precision of an hour" without touching any per-tick state.
func (v *FrameView) Query(level, k int) (regression.ISB, error) {
	if level < 0 || level >= len(v.Levels) {
		return regression.ISB{}, fmt.Errorf("%w: level %d of %d", ErrRecord, level, len(v.Levels))
	}
	slots := v.Levels[level].Slots
	if k < 1 || k > len(slots) {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested at level %q, %d retained",
			ErrRecord, k, v.Levels[level].Name, len(slots))
	}
	isbs := make([]regression.ISB, k)
	for i, s := range slots[len(slots)-k:] {
		isbs[i] = s.ISB
	}
	return regression.AggregateTime(isbs...)
}

// tilted reports whether the engine keeps multi-granularity frames instead
// of the flat per-o-cell history.
func (e *Engine) tilted() bool { return e.frames != nil }

// recordTilt registers the closed unit with every o-cell frame. Cells with
// data this unit push their o-layer ISB; cells absent the whole unit push
// a zero regression over the unit's interval — the unit-level extension of
// "absent readings count as zero usage" — so frames stay contiguous and
// promotions never see gaps. Cells seen for the first time start a frame
// at this unit (no back-fill). res is nil for units that closed empty.
func (e *Engine) recordTilt(ur *UnitResult, res *core.Result) error {
	zero := regression.ISB{Tb: ur.Interval.Tb, Te: ur.Interval.Te}
	for key, cf := range e.frames {
		isb := zero
		if res != nil {
			if v, ok := res.OLayer[key]; ok {
				isb = v
			}
		}
		if err := cf.frame.Push(isb); err != nil {
			return fmt.Errorf("stream: tilt promotion for %v: %w", key, err)
		}
	}
	if res == nil {
		return nil
	}
	for key, isb := range res.OLayer {
		if _, ok := e.frames[key]; ok {
			continue
		}
		f, err := tilt.NewUnitFrame(e.cfg.TiltLevels)
		if err != nil {
			// The level chain was validated by NewEngine.
			return fmt.Errorf("%w: tilt levels: %v", ErrConfig, err)
		}
		if err := f.Push(isb); err != nil {
			return fmt.Errorf("stream: tilt push for %v: %w", key, err)
		}
		e.frames[key] = &cellFrame{base: ur.Unit, frame: f}
	}
	return nil
}

// frameView deep-copies one cell frame into its immutable published form.
func (e *Engine) frameView(cf *cellFrame) *FrameView {
	v := &FrameView{Base: cf.base, Levels: make([]FrameLevelView, cf.frame.Levels())}
	span := int64(e.cfg.TicksPerUnit)
	for i := range v.Levels {
		lv := e.cfg.TiltLevels[i]
		if i > 0 {
			span *= int64(lv.Multiple)
		}
		v.Levels[i] = FrameLevelView{
			Name:      lv.Name,
			UnitTicks: span,
			Capacity:  lv.Slots,
			Completed: cf.frame.Completed(i),
			Slots:     cf.frame.SlotsAt(i), // SlotsAt copies
		}
	}
	return v
}

// snapshotFrames copies every o-cell frame for publication. It returns a
// non-nil (possibly empty) map exactly when the engine is tilted, so
// readers can distinguish "no tilt configured" from "no cells yet".
func (e *Engine) snapshotFrames() map[cube.CellKey]*FrameView {
	if !e.tilted() {
		return nil
	}
	out := make(map[cube.CellKey]*FrameView, len(e.frames))
	for key, cf := range e.frames {
		out[key] = e.frameView(cf)
	}
	return out
}

// tiltHistory derives the flat-history representation from the frames'
// finest level, mapping frame-local ordinals back to engine units. It is
// what Snapshot.History and Checkpoint.History carry in tilt mode, so
// trend consumers and older (v1/v2) checkpoint readers keep working
// against the finest granularity.
func (e *Engine) tiltHistory() map[cube.CellKey][]HistoryPoint {
	out := make(map[cube.CellKey][]HistoryPoint, len(e.frames))
	for key, cf := range e.frames {
		slots := cf.frame.SlotsAt(0)
		pts := make([]HistoryPoint, len(slots))
		for i, s := range slots {
			pts[i] = HistoryPoint{Unit: cf.base + s.Unit, ISB: s.ISB}
		}
		out[key] = pts
	}
	return out
}

// TrendQueryAt aggregates the last k completed units of an o-cell at the
// given tilt level (0 = finest). Level 0 is answered on flat engines too
// (it is TrendQuery); coarser levels need Config.TiltLevels.
func (e *Engine) TrendQueryAt(cell cube.CellKey, level, k int) (regression.ISB, error) {
	if level == 0 {
		return e.TrendQuery(cell, k)
	}
	if !e.tilted() {
		return regression.ISB{}, fmt.Errorf("%w: level %d trend on a flat-history engine", ErrRecord, level)
	}
	cf := e.frames[cell]
	if cf == nil {
		return regression.ISB{}, fmt.Errorf("%w: no history for cell %v", ErrRecord, cell)
	}
	if level >= cf.frame.Levels() {
		return regression.ISB{}, fmt.Errorf("%w: level %d of %d", ErrRecord, level, cf.frame.Levels())
	}
	slots := cf.frame.SlotsAt(level)
	if k < 1 || k > len(slots) {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested at level %q, %d retained",
			ErrRecord, k, e.cfg.TiltLevels[level].Name, len(slots))
	}
	isbs := make([]regression.ISB, k)
	for i, s := range slots[len(slots)-k:] {
		isbs[i] = s.ISB
	}
	return regression.AggregateTime(isbs...)
}

// FrameLevels returns the engine's tilt level chain (nil on flat engines).
func (e *Engine) FrameLevels() []tilt.Level { return e.cfg.TiltLevels }

// TiltSlots returns the total retained and maximum frame slots across all
// o-cell frames — the bounded-state invariant of §4.1: inUse never exceeds
// cells × SlotCapacity no matter how many units have flowed through.
func (e *Engine) TiltSlots() (inUse, capacity int) {
	for _, cf := range e.frames {
		inUse += cf.frame.SlotsInUse()
		capacity += cf.frame.SlotCapacity()
	}
	return inUse, capacity
}
