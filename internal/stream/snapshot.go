package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/regression"
	"repro/internal/timeseries"
)

// HistoryPoint is one completed unit of an o-cell's regression history, as
// exposed through snapshots.
type HistoryPoint struct {
	Unit int64
	ISB  regression.ISB
}

// Snapshot is an immutable, internally consistent view of an engine as of
// one closed unit: the unit's cube result, its alerts in canonical order,
// and every o-cell's trailing regression history ending at that unit.
//
// Snapshots are published with an atomic pointer swap at each unit
// boundary (Config.PublishSnapshots) and are never mutated afterwards, so
// any number of reader goroutines can serve analyst queries from them —
// concurrently with ingestion — without locks and without ever observing a
// half-updated unit. A reader holding a Snapshot keeps a coherent unit
// even after the engine publishes newer ones.
type Snapshot struct {
	// Unit is the closed unit this snapshot reflects.
	Unit     int64
	Interval timeseries.Interval
	// UnitsDone counts closed units as of this snapshot.
	UnitsDone int64
	// Result is the unit's cube computation; nil when the unit closed with
	// no data (the History below still reflects earlier units). It is the
	// same *core.Result the engine returned in the unit's UnitResult:
	// snapshot readers and the engine's caller share it, so with
	// PublishSnapshots on, callers must treat UnitResult.Result as
	// immutable (mutating its maps races concurrent readers).
	Result *core.Result
	// Alerts are the unit's alerts in canonical order (SortAlerts).
	Alerts []Alert
	// History maps each o-cell to its trailing per-unit regressions,
	// oldest first; cells alerted in this unit end at Unit. In tilt mode
	// it is derived from each frame's finest level, so trend consumers
	// work identically against flat and tilted engines.
	History map[cube.CellKey][]HistoryPoint
	// Frames maps each o-cell to its multi-granularity tilted history.
	// Non-nil exactly when the engine runs with Config.TiltLevels, so
	// readers can distinguish "no tilt configured" (nil) from "no cells
	// yet" (empty).
	Frames map[cube.CellKey]*FrameView
}

// Empty reports whether this snapshot's unit closed with no data: Result
// is nil while History (and Frames) still reflect earlier units. Query
// consumers use it to answer structurally-empty responses instead of
// erroring.
func (s *Snapshot) Empty() bool { return s.Result == nil }

// FrameOf returns an o-cell's tilted frame view (shared, do not mutate),
// or nil when the cell is unknown or the engine keeps flat history.
func (s *Snapshot) FrameOf(cell cube.CellKey) *FrameView {
	return s.Frames[cell]
}

// TrendQueryAt aggregates the last k completed units of an o-cell at the
// given tilt level (0 = finest, answered from History in either mode).
func (s *Snapshot) TrendQueryAt(cell cube.CellKey, level, k int) (regression.ISB, error) {
	if level == 0 {
		return s.TrendQuery(cell, k)
	}
	v := s.Frames[cell]
	if v == nil {
		if s.Frames == nil {
			return regression.ISB{}, fmt.Errorf("%w: level %d trend on a flat-history engine", ErrRecord, level)
		}
		return regression.ISB{}, fmt.Errorf("%w: no history for cell %v", ErrRecord, cell)
	}
	return v.Query(level, k)
}

// HistoryOf returns an o-cell's trailing history (shared, do not mutate).
func (s *Snapshot) HistoryOf(cell cube.CellKey) []HistoryPoint {
	return s.History[cell]
}

// HistoryLen returns how many units of history an o-cell has in this
// snapshot.
func (s *Snapshot) HistoryLen(cell cube.CellKey) int { return len(s.History[cell]) }

// TrendQuery aggregates the last k units of an o-cell's history into one
// regression over the combined interval (Theorem 3.3), exactly like
// Engine.TrendQuery but against this immutable snapshot.
func (s *Snapshot) TrendQuery(cell cube.CellKey, k int) (regression.ISB, error) {
	h := s.History[cell]
	return aggregateTrend(len(h), k, func(i int) (int64, regression.ISB) { return h[i].Unit, h[i].ISB })
}

// aggregateTrend is the shared trend-query core: aggregate the last k of
// n history points (at(i) yields the i-th, oldest first) into one
// regression, rejecting short or gapped histories. Engine.TrendQuery and
// Snapshot.TrendQuery answer identically because both delegate here.
func aggregateTrend(n, k int, at func(i int) (int64, regression.ISB)) (regression.ISB, error) {
	if k < 1 || k > n {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested, %d recorded", ErrRecord, k, n)
	}
	isbs := make([]regression.ISB, k)
	var prevUnit int64
	for i := 0; i < k; i++ {
		unit, isb := at(n - k + i)
		if i > 0 && unit != prevUnit+1 {
			return regression.ISB{}, fmt.Errorf("%w: history gap between units %d and %d",
				ErrRecord, prevUnit, unit)
		}
		prevUnit = unit
		isbs[i] = isb
	}
	return regression.AggregateTime(isbs...)
}

// snapshotHistory deep-copies the engine's per-o-cell history into the
// snapshot representation. The engine mutates its history slices in place
// on later units, so sharing backing arrays with published snapshots would
// race; the copy runs at unit boundaries only, never on the per-record
// path.
func (e *Engine) snapshotHistory() map[cube.CellKey][]HistoryPoint {
	if e.tilted() {
		// Frames already copy on read; derive the finest-level view.
		return e.tiltHistory()
	}
	out := make(map[cube.CellKey][]HistoryPoint, len(e.history))
	for key, h := range e.history {
		pts := make([]HistoryPoint, len(h))
		for i, entry := range h {
			pts[i] = HistoryPoint{Unit: entry.unit, ISB: entry.isb}
		}
		out[key] = pts
	}
	return out
}

// cloneAlerts deep-copies an alert list (including each alert's Drill
// slice) so publication can sort — and the engine's caller can re-sort or
// truncate the returned UnitResult.Alerts — without either side observing
// the other. (The Result maps are still shared; see Snapshot.Result.)
func cloneAlerts(alerts []Alert) []Alert {
	out := make([]Alert, len(alerts))
	copy(out, alerts)
	for i := range out {
		if len(out[i].Drill) > 0 {
			drill := make([]core.Cell, len(out[i].Drill))
			copy(drill, out[i].Drill)
			out[i].Drill = drill
		}
	}
	return out
}

// publishSnapshot swaps in the immutable view of the unit that just
// closed. The atomic store orders all snapshot construction before any
// reader's load, so a reader never sees a partially built snapshot.
func (e *Engine) publishSnapshot(ur *UnitResult) {
	alerts := cloneAlerts(ur.Alerts)
	SortAlerts(alerts)
	snap := &Snapshot{
		Unit:      ur.Unit,
		Interval:  ur.Interval,
		UnitsDone: e.unitsDone,
		Result:    ur.Result,
		Alerts:    alerts,
		History:   e.snapshotHistory(),
		Frames:    e.snapshotFrames(),
	}
	e.snap.Store(snap)
	e.bus.publish(snap)
}

// Snapshot returns the most recently published unit view, or nil before
// the first unit closes (or when Config.PublishSnapshots is off). Unlike
// every other Engine method, Snapshot is safe to call from any goroutine
// concurrently with ingestion — it is a single atomic load.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Snapshot returns the most recently published merged unit view, or nil
// before the first boundary (or when Config.PublishSnapshots is off). It
// is safe to call from any goroutine concurrently with the coordinator's
// Ingest loop — it is a single atomic load.
func (s *ShardedEngine) Snapshot() *Snapshot { return s.snap.Load() }
