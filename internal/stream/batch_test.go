package stream

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/exception"
	"repro/internal/wire"
)

// shardedCheckpointJSON is checkpointJSON for the sharded envelope.
func shardedCheckpointJSON(t *testing.T, cp *ShardedCheckpoint) []byte {
	t.Helper()
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// toBatches packs a record stream into wire batches with cycling sizes so
// cuts land everywhere relative to unit boundaries: mid-unit, exactly on a
// boundary, spanning several units in one batch.
func toBatches(recs []testRecord, sizes ...int) []*wire.Batch {
	if len(sizes) == 0 {
		sizes = []int{1, 3, 17, 64, 5}
	}
	var out []*wire.Batch
	i, s := 0, 0
	for i < len(recs) {
		n := sizes[s%len(sizes)]
		s++
		if n > len(recs)-i {
			n = len(recs) - i
		}
		var b wire.Batch
		b.Reset(len(recs[i].members))
		for _, r := range recs[i : i+n] {
			b.Append(r.tick, r.members, r.value)
		}
		out = append(out, &b)
		i += n
	}
	return out
}

func feedBatches(t *testing.T, e interface {
	IngestBatch(b *wire.Batch) ([]*UnitResult, error)
}, flush func() (*UnitResult, error), batches []*wire.Batch) []*UnitResult {
	t.Helper()
	var out []*UnitResult
	for _, b := range batches {
		closed, err := e.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, closed...)
	}
	final, err := flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, final)
}

// The batch-path property: the same records through IngestBatch — at any
// batch cut — close the same units and leave the same engine state,
// bitwise, as record-at-a-time Ingest, for the single engine and for every
// shard count. Checkpoints are compared in canonical serialized form.
func TestIngestBatchMatchesIngest(t *testing.T) {
	cfg := Config{
		Schema:       wideSchema(t),
		TicksPerUnit: 4,
		Threshold:    exception.Global(1.0),
		Delta:        &exception.Delta{MinSlopeChange: 0.8},
	}
	for seed := int64(1); seed <= 3; seed++ {
		recs := genStream(seed, 6, 4, 2)
		batches := toBatches(recs)

		ref, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := feed(t, ref, recs)
		wantCP := checkpointJSON(t, ref.Checkpoint())

		single, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := feedBatches(t, single, single.Flush, batches)
		requireSameResults(t, "engine/batch", want, got)
		if gotCP := checkpointJSON(t, single.Checkpoint()); !bytes.Equal(wantCP, gotCP) {
			t.Fatalf("seed %d: single-engine batch checkpoint differs from record-at-a-time", seed)
		}

		for _, shards := range []int{1, 4, 7} {
			recSh, err := NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			feed(t, recSh, recs)
			recCP, err := recSh.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			wantShCP := shardedCheckpointJSON(t, recCP)

			sh, err := NewShardedEngine(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			got := feedBatches(t, sh, sh.Flush, batches)
			requireSameResults(t, "sharded/batch", want, got)
			cp, err := sh.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if gotCP := shardedCheckpointJSON(t, cp); !bytes.Equal(wantShCP, gotCP) {
				t.Fatalf("seed %d shards %d: batch checkpoint differs from record-at-a-time", seed, shards)
			}
			recSh.Close()
			sh.Close()
		}
	}
}

// Batch-level validation fails the whole segment before any of its records
// are routed, with a typed ErrRecord, and earlier complete segments stand.
func TestIngestBatchValidation(t *testing.T) {
	cfg := Config{Schema: wideSchema(t), TicksPerUnit: 4, Threshold: exception.Global(1.0)}

	newBatch := func(dims int, recs ...testRecord) *wire.Batch {
		var b wire.Batch
		b.Reset(dims)
		for _, r := range recs {
			b.Append(r.tick, r.members, r.value)
		}
		return &b
	}

	type batchIngester interface {
		IngestBatch(b *wire.Batch) ([]*UnitResult, error)
	}
	for _, mk := range []func(t *testing.T) batchIngester{
		func(t *testing.T) batchIngester {
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		func(t *testing.T) batchIngester {
			e, err := NewShardedEngine(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(e.Close)
			return e
		},
	} {
		e := mk(t)

		// Wrong dimension count.
		if _, err := e.IngestBatch(newBatch(3, testRecord{members: []int32{1, 2, 3}, tick: 0})); err == nil {
			t.Fatal("3-dim batch accepted by 2-dim engine")
		}

		// Ragged columns.
		ragged := newBatch(2, testRecord{members: []int32{1, 2}, tick: 0, value: 1})
		ragged.Values = ragged.Values[:0]
		if _, err := e.IngestBatch(ragged); err == nil {
			t.Fatal("ragged batch accepted")
		}

		// Member outside the m-layer: the router must reject it before
		// ancestor resolution. (The single engine defers member validation
		// to unit close, as Ingest does.)
		if sh, ok := e.(*ShardedEngine); ok {
			if _, err := sh.IngestBatch(newBatch(2, testRecord{members: []int32{1, 99}, tick: 0})); err == nil {
				t.Fatal("out-of-range member accepted")
			}
		}

		// A valid batch, then one that regresses behind the open unit: the
		// first stands, the second fails.
		if _, err := e.IngestBatch(newBatch(2, testRecord{members: []int32{1, 1}, tick: 9, value: 1})); err != nil {
			t.Fatal(err)
		}
		if _, err := e.IngestBatch(newBatch(2, testRecord{members: []int32{1, 1}, tick: 1, value: 1})); err == nil {
			t.Fatal("tick before the open unit accepted")
		}
	}
}
