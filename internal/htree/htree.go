// Package htree implements the hyper-linked H-tree structure of Han et al.
// (SIGMOD'01) as revised by the paper (§4.4, Figure 7) for regression
// cubing: a prefix tree over dimension-level attributes whose leaves hold
// the m-layer regression measures (ISBs) and whose header tables side-link
// all nodes sharing an attribute value.
//
// Two attribute orders are supported, matching the paper's two algorithms:
//
//   - cardinality-ascending order (Example 5: ⟨A1,B1,C1,C2,A2,B2⟩) for
//     m/o-cubing, maximizing prefix sharing;
//   - popular-path order (⟨(A1,C1)→B1→B2→A2→C2⟩) for popular-path cubing,
//     making every tree depth a cuboid of the path so roll-ups along the
//     path materialize for free in the non-leaf nodes.
package htree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cube"
	"repro/internal/regression"
)

// ErrInput is returned for malformed tuples or configurations.
var ErrInput = errors.New("htree: invalid input")

// Attribute names one dimension-level pair, a column of the expanded tuple
// ("each tuple, expanded to include ancestor values of each dimension").
type Attribute struct {
	Dim   int // dimension index in the schema
	Level int // hierarchy level (≥ 1; level 0/ALL never materializes)
}

// CardinalityOrder returns the attributes between each dimension's o-level
// and m-level ordered by ascending cardinality (ties broken by level then
// dimension), the paper's ordering for compactness: "this ordering makes
// the tree compact since there are likely more sharings at higher level
// nodes".
func CardinalityOrder(s *cube.Schema) []Attribute {
	var attrs []Attribute
	for d, dim := range s.Dims {
		lo := dim.OLevel
		if lo < 1 {
			lo = 1
		}
		for l := lo; l <= dim.MLevel; l++ {
			attrs = append(attrs, Attribute{Dim: d, Level: l})
		}
	}
	sort.SliceStable(attrs, func(i, j int) bool {
		ci := s.Dims[attrs[i].Dim].Hierarchy.Cardinality(attrs[i].Level)
		cj := s.Dims[attrs[j].Dim].Hierarchy.Cardinality(attrs[j].Level)
		if ci != cj {
			return ci < cj
		}
		if attrs[i].Level != attrs[j].Level {
			return attrs[i].Level < attrs[j].Level
		}
		return attrs[i].Dim < attrs[j].Dim
	})
	return attrs
}

// PathOrder returns the attributes in popular-path order: first the
// o-layer's non-ALL attributes (the paper's "(A1,C1)" step), then one
// attribute per drilling step. Tree depth oAttrs+i then corresponds
// exactly to path cuboid i.
func PathOrder(s *cube.Schema, p cube.Path) []Attribute {
	var attrs []Attribute
	o := s.OLayer()
	for d := range s.Dims {
		for l := 1; l <= o.Level(d); l++ {
			attrs = append(attrs, Attribute{Dim: d, Level: l})
		}
	}
	for i := 1; i < len(p.Cuboids); i++ {
		prev, cur := p.Cuboids[i-1], p.Cuboids[i]
		for d := 0; d < cur.NumDims(); d++ {
			for l := prev.Level(d) + 1; l <= cur.Level(d); l++ {
				attrs = append(attrs, Attribute{Dim: d, Level: l})
			}
		}
	}
	return attrs
}

// Node is one H-tree node. Depth 0 is the root (no attribute); a node at
// depth k carries a member of attribute k−1. Leaves hold the m-layer
// measures; after PropagateUp, interior nodes hold the standard-dimension
// aggregation of their subtree (the regression points Algorithm 2 stores
// "in the nonleaf nodes").
type Node struct {
	Member     int32
	Depth      int
	Parent     *Node
	Children   map[int32]*Node
	Measure    regression.ISB
	HasMeasure bool
	Tuples     int64 // number of m-layer tuples under this node
}

// HTree is the hyper-linked tree plus its per-attribute header tables.
type HTree struct {
	schema  *cube.Schema
	attrs   []Attribute
	root    *Node
	headers []map[int32][]*Node // headers[k]: member → side-linked nodes at depth k+1
	nodes   int
	leaves  []*Node
}

// New builds an empty H-tree over the given attribute order. Every
// dimension's m-level attribute must appear so that leaves identify
// m-layer cells.
func New(s *cube.Schema, attrs []Attribute) (*HTree, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrInput)
	}
	seen := make(map[Attribute]bool, len(attrs))
	finest := make([]int, len(s.Dims))
	for _, a := range attrs {
		if a.Dim < 0 || a.Dim >= len(s.Dims) {
			return nil, fmt.Errorf("%w: attribute dimension %d", ErrInput, a.Dim)
		}
		if a.Level < 1 || a.Level > s.Dims[a.Dim].MLevel {
			return nil, fmt.Errorf("%w: attribute level %d for dimension %s", ErrInput, a.Level, s.Dims[a.Dim].Name)
		}
		if seen[a] {
			return nil, fmt.Errorf("%w: duplicate attribute (%d,L%d)", ErrInput, a.Dim, a.Level)
		}
		seen[a] = true
		if a.Level > finest[a.Dim] {
			finest[a.Dim] = a.Level
		}
	}
	for d, dim := range s.Dims {
		if finest[d] != dim.MLevel {
			return nil, fmt.Errorf("%w: dimension %s m-level L%d missing from attributes", ErrInput, dim.Name, dim.MLevel)
		}
	}
	t := &HTree{
		schema:  s,
		attrs:   attrs,
		root:    &Node{Depth: 0, Children: make(map[int32]*Node)},
		headers: make([]map[int32][]*Node, len(attrs)),
		nodes:   1,
	}
	for i := range t.headers {
		t.headers[i] = make(map[int32][]*Node)
	}
	return t, nil
}

// Schema returns the schema the tree was built against.
func (t *HTree) Schema() *cube.Schema { return t.schema }

// Attrs returns the attribute order. The slice is shared; do not modify.
func (t *HTree) Attrs() []Attribute { return t.attrs }

// Root returns the root node.
func (t *HTree) Root() *Node { return t.root }

// NodeCount returns the number of nodes including the root.
func (t *HTree) NodeCount() int { return t.nodes }

// LeafCount returns the number of leaves (distinct m-layer cells).
func (t *HTree) LeafCount() int { return len(t.leaves) }

// Leaves returns the leaf nodes in insertion-discovery order. The slice is
// shared; do not modify.
func (t *HTree) Leaves() []*Node { return t.leaves }

// Insert adds one m-layer tuple: members[d] is the member of dimension d
// at its m-level, and isb the tuple's regression measure. Tuples mapping
// to the same m-layer cell are merged with standard-dimension aggregation
// ("performing aggregation in the corresponding leaf nodes").
func (t *HTree) Insert(members []int32, isb regression.ISB) error {
	if len(members) != len(t.schema.Dims) {
		return fmt.Errorf("%w: %d members for %d dimensions", ErrInput, len(members), len(t.schema.Dims))
	}
	for d, m := range members {
		card := t.schema.Dims[d].Hierarchy.Cardinality(t.schema.Dims[d].MLevel)
		if m < 0 || int(m) >= card {
			return fmt.Errorf("%w: member %d of dimension %s outside [0,%d)", ErrInput, m, t.schema.Dims[d].Name, card)
		}
	}
	cur := t.root
	for k, a := range t.attrs {
		dim := t.schema.Dims[a.Dim]
		val := cube.Ancestor(dim.Hierarchy, dim.MLevel, a.Level, members[a.Dim])
		child, ok := cur.Children[val]
		if !ok {
			// Children maps are allocated lazily: leaves never need one,
			// which matters when the tree has hundreds of thousands of
			// them.
			child = &Node{Member: val, Depth: k + 1, Parent: cur}
			if cur.Children == nil {
				cur.Children = make(map[int32]*Node)
			}
			cur.Children[val] = child
			t.headers[k][val] = append(t.headers[k][val], child)
			t.nodes++
			if k == len(t.attrs)-1 {
				t.leaves = append(t.leaves, child)
			}
		}
		child.Tuples++
		cur = child
	}
	if cur.HasMeasure {
		merged, err := regression.AggregateStandard(cur.Measure, isb)
		if err != nil {
			return fmt.Errorf("htree: merging tuple into leaf: %w", err)
		}
		cur.Measure = merged
	} else {
		cur.Measure = isb
		cur.HasMeasure = true
	}
	return nil
}

// PropagateUp computes the measure of every interior node as the
// standard-dimension aggregation of its children (post-order), giving the
// roll-ups along the tree's prefix cuboids — Algorithm 2 Step 2.
func (t *HTree) PropagateUp() error {
	return t.propagate(t.root)
}

// sortedChildren returns a node's children ordered by member. Float
// aggregation is order-sensitive in the last ulp, so every traversal that
// sums measures walks children in this canonical order — results are then
// bitwise reproducible across runs and identical between sharded and
// single-engine computation.
func sortedChildren(n *Node) []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

func (t *HTree) propagate(n *Node) error {
	if len(n.Children) == 0 {
		if !n.HasMeasure && n != t.root {
			return fmt.Errorf("%w: leaf at depth %d without measure", ErrInput, n.Depth)
		}
		return nil
	}
	// Inline Theorem 3.2 accumulation: bases and slopes add over children
	// sharing one interval (this runs once per node).
	var agg regression.ISB
	first := true
	for _, c := range sortedChildren(n) {
		if err := t.propagate(c); err != nil {
			return err
		}
		if first {
			agg = c.Measure
			first = false
			continue
		}
		if c.Measure.Tb != agg.Tb || c.Measure.Te != agg.Te {
			return fmt.Errorf("htree: propagating at depth %d: %w: child interval [%d,%d] vs [%d,%d]",
				n.Depth, regression.ErrMismatch, c.Measure.Tb, c.Measure.Te, agg.Tb, agg.Te)
		}
		agg.Base += c.Measure.Base
		agg.Slope += c.Measure.Slope
	}
	n.Measure = agg
	n.HasMeasure = true
	return nil
}

// WalkAtDepth visits every descendant of n at exactly the given tree depth
// (n itself when already there), children in member order. Popular-path
// drilling uses this to enumerate the covering-cuboid cells below one
// exception cell — "the cells to be computed are related only to the
// exception cells".
func (n *Node) WalkAtDepth(depth int, fn func(*Node)) {
	if n.Depth == depth {
		fn(n)
		return
	}
	if n.Depth > depth {
		return
	}
	for _, c := range sortedChildren(n) {
		c.WalkAtDepth(depth, fn)
	}
}

// HeaderNodes returns the side-linked nodes at the given attribute index
// carrying the given member — a header-table traversal (Figure 7).
func (t *HTree) HeaderNodes(attr int, member int32) []*Node {
	if attr < 0 || attr >= len(t.headers) {
		return nil
	}
	return t.headers[attr][member]
}

// HeaderMembers returns the distinct members present at the attribute.
func (t *HTree) HeaderMembers(attr int) []int32 {
	if attr < 0 || attr >= len(t.headers) {
		return nil
	}
	out := make([]int32, 0, len(t.headers[attr]))
	for m := range t.headers[attr] {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesAtDepth returns every node at depth k (1-based; k ≤ len(attrs)),
// ordered by member and, within a member, by creation order — a canonical
// order so downstream aggregation is reproducible.
func (t *HTree) NodesAtDepth(k int) []*Node {
	if k < 1 || k > len(t.attrs) {
		return nil
	}
	var out []*Node
	for _, m := range t.HeaderMembers(k - 1) {
		out = append(out, t.headers[k-1][m]...)
	}
	return out
}

// CuboidAtDepth returns the cuboid materialized by nodes at depth k: each
// dimension sits at the finest of its attribute levels among the first k
// attributes (0/ALL when none appeared yet). For a path-ordered tree,
// depth oAttrs+i yields exactly path cuboid i.
func (t *HTree) CuboidAtDepth(k int) cube.Cuboid {
	levels := make([]int, len(t.schema.Dims))
	for i := 0; i < k && i < len(t.attrs); i++ {
		a := t.attrs[i]
		if a.Level > levels[a.Dim] {
			levels[a.Dim] = a.Level
		}
	}
	c, err := cube.NewCuboid(levels...)
	if err != nil {
		panic(fmt.Sprintf("htree: CuboidAtDepth: %v", err)) // schema bounds validated in New
	}
	return c
}

// CellKeyOf returns the cell identified by a node: the cuboid of its depth
// with the members collected along its root path (the finest member seen
// per dimension).
func (t *HTree) CellKeyOf(n *Node) cube.CellKey {
	c := t.CuboidAtDepth(n.Depth)
	var members [cube.MaxDims]int32
	levels := make([]int, len(t.schema.Dims))
	for cur := n; cur != nil && cur.Depth > 0; cur = cur.Parent {
		a := t.attrs[cur.Depth-1]
		if a.Level > levels[a.Dim] {
			levels[a.Dim] = a.Level
			members[a.Dim] = cur.Member
		}
	}
	k := cube.CellKey{Cuboid: c}
	k.Members = members
	return k
}

// BytesEstimate returns a size estimate of the tree for the paper's
// memory-usage panels: nodes dominate, with map overhead amortized in the
// per-node constant.
func (t *HTree) BytesEstimate() int64 {
	const bytesPerNode = 96 // struct + child-map entry + header slot
	return int64(t.nodes) * bytesPerNode
}
