// Package htree implements the hyper-linked H-tree structure of Han et al.
// (SIGMOD'01) as revised by the paper (§4.4, Figure 7) for regression
// cubing: a prefix tree over dimension-level attributes whose leaves hold
// the m-layer regression measures (ISBs) and whose header tables side-link
// all nodes sharing an attribute value.
//
// Two attribute orders are supported, matching the paper's two algorithms:
//
//   - cardinality-ascending order (Example 5: ⟨A1,B1,C1,C2,A2,B2⟩) for
//     m/o-cubing, maximizing prefix sharing;
//   - popular-path order (⟨(A1,C1)→B1→B2→A2→C2⟩) for popular-path cubing,
//     making every tree depth a cuboid of the path so roll-ups along the
//     path materialize for free in the non-leaf nodes.
//
// The layout is built for the per-unit hot path: nodes come from slab
// arenas (one allocation per thousands of nodes), children live in
// member-sorted slices carved from a shared pointer arena (binary-search
// lookup, order-preserving traversal with no per-visit sort), header tables
// side-link nodes through an intrusive chain (O(1) zero-allocation append),
// and per-attribute member resolution goes through a cube.AncestorIndex
// instead of walking the Hierarchy interface level by level.
package htree

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"repro/internal/cube"
	"repro/internal/regression"
)

// ErrInput is returned for malformed tuples or configurations.
var ErrInput = errors.New("htree: invalid input")

// Attribute names one dimension-level pair, a column of the expanded tuple
// ("each tuple, expanded to include ancestor values of each dimension").
type Attribute struct {
	Dim   int // dimension index in the schema
	Level int // hierarchy level (≥ 1; level 0/ALL never materializes)
}

// CardinalityOrder returns the attributes between each dimension's o-level
// and m-level ordered by ascending cardinality (ties broken by level then
// dimension), the paper's ordering for compactness: "this ordering makes
// the tree compact since there are likely more sharings at higher level
// nodes".
func CardinalityOrder(s *cube.Schema) []Attribute {
	var attrs []Attribute
	for d, dim := range s.Dims {
		lo := dim.OLevel
		if lo < 1 {
			lo = 1
		}
		for l := lo; l <= dim.MLevel; l++ {
			attrs = append(attrs, Attribute{Dim: d, Level: l})
		}
	}
	sort.SliceStable(attrs, func(i, j int) bool {
		ci := s.Dims[attrs[i].Dim].Hierarchy.Cardinality(attrs[i].Level)
		cj := s.Dims[attrs[j].Dim].Hierarchy.Cardinality(attrs[j].Level)
		if ci != cj {
			return ci < cj
		}
		if attrs[i].Level != attrs[j].Level {
			return attrs[i].Level < attrs[j].Level
		}
		return attrs[i].Dim < attrs[j].Dim
	})
	return attrs
}

// PathOrder returns the attributes in popular-path order: first the
// o-layer's non-ALL attributes (the paper's "(A1,C1)" step), then one
// attribute per drilling step. Tree depth oAttrs+i then corresponds
// exactly to path cuboid i.
func PathOrder(s *cube.Schema, p cube.Path) []Attribute {
	var attrs []Attribute
	o := s.OLayer()
	for d := range s.Dims {
		for l := 1; l <= o.Level(d); l++ {
			attrs = append(attrs, Attribute{Dim: d, Level: l})
		}
	}
	for i := 1; i < len(p.Cuboids); i++ {
		prev, cur := p.Cuboids[i-1], p.Cuboids[i]
		for d := 0; d < cur.NumDims(); d++ {
			for l := prev.Level(d) + 1; l <= cur.Level(d); l++ {
				attrs = append(attrs, Attribute{Dim: d, Level: l})
			}
		}
	}
	return attrs
}

// Node is one H-tree node. Depth 0 is the root (no attribute); a node at
// depth k carries a member of attribute k−1. Leaves hold the m-layer
// measures; after PropagateUp, interior nodes hold the standard-dimension
// aggregation of their subtree (the regression points Algorithm 2 stores
// "in the nonleaf nodes").
type Node struct {
	Member     int32
	Depth      int
	Parent     *Node
	Children   []*Node // member-ascending; shared storage, do not modify
	Measure    regression.ISB
	HasMeasure bool
	Tuples     int64 // number of m-layer tuples under this node
	// hlink chains nodes of one (attribute, member) header slot in
	// creation order — the paper's side-links, without a slice per slot.
	hlink *Node
}

// headerTable is one attribute's header: the distinct members present
// (sorted) with each member's side-linked node chain.
type headerTable struct {
	members []int32 // sorted ascending
	heads   []*Node // first chain node per member, parallel to members
	tails   []*Node // last chain node per member (O(1) append)
	nodes   int     // total nodes at this attribute's depth
}

// HTree is the hyper-linked tree plus its per-attribute header tables.
type HTree struct {
	schema  *cube.Schema
	attrs   []Attribute
	idx     *cube.AncestorIndex
	mLevels []int // per dimension: the m-level (ancestor resolution source)
	cards   []int // per dimension: cardinality at the m-level
	root    *Node
	headers []headerTable
	nodes   int
	leaves  []*Node
	// nodeArena slab-allocates nodes: one allocation per chunk instead of
	// one per node. Retired chunks stay reachable through the tree itself.
	// Chunks start small and double so the many-small-trees workload (one
	// tree per shard per unit) doesn't turn every build into fixed-size
	// slab garbage.
	nodeArena     []Node
	nodeChunkSize int
	// ptrArena carves children slices: child-slice growth allocates from
	// here instead of the heap, so a build does a handful of chunk
	// allocations rather than one per growing node.
	ptrArena     []*Node
	ptrChunkSize int
}

const (
	minNodeChunk = 64
	maxNodeChunk = 1024
	minPtrChunk  = 256
	maxPtrChunk  = 4096
)

// New builds an empty H-tree over the given attribute order. Every
// dimension's m-level attribute must appear so that leaves identify
// m-layer cells.
func New(s *cube.Schema, attrs []Attribute) (*HTree, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrInput)
	}
	seen := make(map[Attribute]bool, len(attrs))
	finest := make([]int, len(s.Dims))
	for _, a := range attrs {
		if a.Dim < 0 || a.Dim >= len(s.Dims) {
			return nil, fmt.Errorf("%w: attribute dimension %d", ErrInput, a.Dim)
		}
		if a.Level < 1 || a.Level > s.Dims[a.Dim].MLevel {
			return nil, fmt.Errorf("%w: attribute level %d for dimension %s", ErrInput, a.Level, s.Dims[a.Dim].Name)
		}
		if seen[a] {
			return nil, fmt.Errorf("%w: duplicate attribute (%d,L%d)", ErrInput, a.Dim, a.Level)
		}
		seen[a] = true
		if a.Level > finest[a.Dim] {
			finest[a.Dim] = a.Level
		}
	}
	for d, dim := range s.Dims {
		if finest[d] != dim.MLevel {
			return nil, fmt.Errorf("%w: dimension %s m-level L%d missing from attributes", ErrInput, dim.Name, dim.MLevel)
		}
	}
	t := &HTree{
		schema:  s,
		attrs:   attrs,
		idx:     cube.NewAncestorIndex(s),
		mLevels: make([]int, len(s.Dims)),
		cards:   make([]int, len(s.Dims)),
		headers: make([]headerTable, len(attrs)),
		nodes:   1,
	}
	for d, dim := range s.Dims {
		t.mLevels[d] = dim.MLevel
		t.cards[d] = dim.Hierarchy.Cardinality(dim.MLevel)
	}
	// Pre-size header tables to the attribute's cardinality (capped: sparse
	// data never fills huge levels).
	for k, a := range attrs {
		card := s.Dims[a.Dim].Hierarchy.Cardinality(a.Level)
		if card > 1024 {
			card = 1024
		}
		t.headers[k].members = make([]int32, 0, card)
		t.headers[k].heads = make([]*Node, 0, card)
		t.headers[k].tails = make([]*Node, 0, card)
	}
	t.root = t.newNode()
	t.root.Depth = 0
	return t, nil
}

// newNode slab-allocates one node.
func (t *HTree) newNode() *Node {
	if len(t.nodeArena) == cap(t.nodeArena) {
		if t.nodeChunkSize < maxNodeChunk {
			if t.nodeChunkSize == 0 {
				t.nodeChunkSize = minNodeChunk
			} else {
				t.nodeChunkSize *= 2
			}
		}
		t.nodeArena = make([]Node, 0, t.nodeChunkSize)
	}
	t.nodeArena = t.nodeArena[:len(t.nodeArena)+1]
	return &t.nodeArena[len(t.nodeArena)-1]
}

// growChildren returns a copy of old with room for at least one more child,
// carved from the pointer arena.
func (t *HTree) growChildren(old []*Node) []*Node {
	newCap := 4
	if cap(old) > 0 {
		newCap = cap(old) * 2
	}
	if len(t.ptrArena)+newCap > cap(t.ptrArena) {
		if t.ptrChunkSize < maxPtrChunk {
			if t.ptrChunkSize == 0 {
				t.ptrChunkSize = minPtrChunk
			} else {
				t.ptrChunkSize *= 2
			}
		}
		size := t.ptrChunkSize
		if newCap > size {
			size = newCap
		}
		t.ptrArena = make([]*Node, 0, size)
	}
	base := len(t.ptrArena)
	t.ptrArena = t.ptrArena[:base+newCap]
	s := t.ptrArena[base : base+len(old) : base+newCap]
	copy(s, old)
	return s
}

// Schema returns the schema the tree was built against.
func (t *HTree) Schema() *cube.Schema { return t.schema }

// AncestorIndex returns the precomputed ancestor tables the tree resolves
// attributes with, so callers cubing over the tree reuse them instead of
// rebuilding the index per pass.
func (t *HTree) AncestorIndex() *cube.AncestorIndex { return t.idx }

// Attrs returns the attribute order. The slice is shared; do not modify.
func (t *HTree) Attrs() []Attribute { return t.attrs }

// Root returns the root node.
func (t *HTree) Root() *Node { return t.root }

// NodeCount returns the number of nodes including the root.
func (t *HTree) NodeCount() int { return t.nodes }

// LeafCount returns the number of leaves (distinct m-layer cells).
func (t *HTree) LeafCount() int { return len(t.leaves) }

// Leaves returns the leaf nodes in insertion-discovery order. The slice is
// shared; do not modify.
func (t *HTree) Leaves() []*Node { return t.leaves }

// findChild binary-searches a node's member-sorted children.
func findChild(kids []*Node, val int32) (int, bool) {
	lo, hi := 0, len(kids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if kids[mid].Member < val {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(kids) && kids[lo].Member == val
}

// Insert adds one m-layer tuple: members[d] is the member of dimension d
// at its m-level, and isb the tuple's regression measure. Tuples mapping
// to the same m-layer cell are merged with standard-dimension aggregation
// ("performing aggregation in the corresponding leaf nodes").
func (t *HTree) Insert(members []int32, isb regression.ISB) error {
	if len(members) != len(t.schema.Dims) {
		return fmt.Errorf("%w: %d members for %d dimensions", ErrInput, len(members), len(t.schema.Dims))
	}
	for d, m := range members {
		if m < 0 || int(m) >= t.cards[d] {
			return fmt.Errorf("%w: member %d of dimension %s outside [0,%d)", ErrInput, m, t.schema.Dims[d].Name, t.cards[d])
		}
	}
	cur := t.root
	for k := range t.attrs {
		a := &t.attrs[k]
		val := t.idx.Ancestor(a.Dim, t.mLevels[a.Dim], a.Level, members[a.Dim])
		pos, found := findChild(cur.Children, val)
		var child *Node
		if found {
			child = cur.Children[pos]
		} else {
			child = t.newNode()
			child.Member = val
			child.Depth = k + 1
			child.Parent = cur
			if len(cur.Children) == cap(cur.Children) {
				cur.Children = t.growChildren(cur.Children)
			}
			cur.Children = cur.Children[:len(cur.Children)+1]
			copy(cur.Children[pos+1:], cur.Children[pos:])
			cur.Children[pos] = child
			t.headers[k].add(val, child)
			t.nodes++
			if k == len(t.attrs)-1 {
				t.leaves = append(t.leaves, child)
			}
		}
		child.Tuples++
		cur = child
	}
	if cur.HasMeasure {
		merged, err := regression.AggregateStandard(cur.Measure, isb)
		if err != nil {
			return fmt.Errorf("htree: merging tuple into leaf: %w", err)
		}
		cur.Measure = merged
	} else {
		cur.Measure = isb
		cur.HasMeasure = true
	}
	return nil
}

// add links a freshly created node into the header's chain for val.
func (h *headerTable) add(val int32, n *Node) {
	h.nodes++
	lo, found := findMember(h.members, val)
	if found {
		h.tails[lo].hlink = n
		h.tails[lo] = n
		return
	}
	h.members = append(h.members, 0)
	copy(h.members[lo+1:], h.members[lo:])
	h.members[lo] = val
	h.heads = append(h.heads, nil)
	copy(h.heads[lo+1:], h.heads[lo:])
	h.heads[lo] = n
	h.tails = append(h.tails, nil)
	copy(h.tails[lo+1:], h.tails[lo:])
	h.tails[lo] = n
}

// PropagateUp computes the measure of every interior node as the
// standard-dimension aggregation of its children (post-order), giving the
// roll-ups along the tree's prefix cuboids — Algorithm 2 Step 2. Children
// are stored member-sorted, so the float accumulation order is canonical
// and results are bitwise reproducible (see DESIGN.md §6.3).
func (t *HTree) PropagateUp() error {
	return t.propagate(t.root)
}

func (t *HTree) propagate(n *Node) error {
	if len(n.Children) == 0 {
		if !n.HasMeasure && n != t.root {
			return fmt.Errorf("%w: leaf at depth %d without measure", ErrInput, n.Depth)
		}
		return nil
	}
	// Inline Theorem 3.2 accumulation: bases and slopes add over children
	// sharing one interval (this runs once per node).
	var agg regression.ISB
	first := true
	for _, c := range n.Children {
		if err := t.propagate(c); err != nil {
			return err
		}
		if first {
			agg = c.Measure
			first = false
			continue
		}
		if c.Measure.Tb != agg.Tb || c.Measure.Te != agg.Te {
			return fmt.Errorf("htree: propagating at depth %d: %w: child interval [%d,%d] vs [%d,%d]",
				n.Depth, regression.ErrMismatch, c.Measure.Tb, c.Measure.Te, agg.Tb, agg.Te)
		}
		agg.Base += c.Measure.Base
		agg.Slope += c.Measure.Slope
	}
	n.Measure = agg
	n.HasMeasure = true
	return nil
}

// WalkAtDepth visits every descendant of n at exactly the given tree depth
// (n itself when already there), children in member order. Popular-path
// drilling uses this to enumerate the covering-cuboid cells below one
// exception cell — "the cells to be computed are related only to the
// exception cells".
func (n *Node) WalkAtDepth(depth int, fn func(*Node)) {
	if n.Depth == depth {
		fn(n)
		return
	}
	if n.Depth > depth {
		return
	}
	for _, c := range n.Children {
		c.WalkAtDepth(depth, fn)
	}
}

// HeaderNodes returns the side-linked nodes at the given attribute index
// carrying the given member — a header-table traversal (Figure 7). The
// slice is materialized from the chain; nil when the slot is absent.
func (t *HTree) HeaderNodes(attr int, member int32) []*Node {
	if attr < 0 || attr >= len(t.headers) {
		return nil
	}
	h := &t.headers[attr]
	lo, found := findMember(h.members, member)
	if !found {
		return nil
	}
	var out []*Node
	for n := h.heads[lo]; n != nil; n = n.hlink {
		out = append(out, n)
	}
	return out
}

// findMember binary-searches a sorted member slice.
func findMember(members []int32, val int32) (int, bool) {
	return slices.BinarySearch(members, val)
}

// HeaderMembers returns the distinct members present at the attribute,
// ascending.
func (t *HTree) HeaderMembers(attr int) []int32 {
	if attr < 0 || attr >= len(t.headers) {
		return nil
	}
	if len(t.headers[attr].members) == 0 {
		return nil
	}
	out := make([]int32, len(t.headers[attr].members))
	copy(out, t.headers[attr].members)
	return out
}

// NodesAtDepth returns every node at depth k (1-based; k ≤ len(attrs)),
// ordered by member and, within a member, by creation order — a canonical
// order so downstream aggregation is reproducible. The header tables keep
// members sorted, so this is a single pre-sized chain walk.
func (t *HTree) NodesAtDepth(k int) []*Node {
	if k < 1 || k > len(t.attrs) {
		return nil
	}
	h := &t.headers[k-1]
	if h.nodes == 0 {
		return nil
	}
	out := make([]*Node, 0, h.nodes)
	for _, head := range h.heads {
		for n := head; n != nil; n = n.hlink {
			out = append(out, n)
		}
	}
	return out
}

// CuboidAtDepth returns the cuboid materialized by nodes at depth k: each
// dimension sits at the finest of its attribute levels among the first k
// attributes (0/ALL when none appeared yet). For a path-ordered tree,
// depth oAttrs+i yields exactly path cuboid i.
func (t *HTree) CuboidAtDepth(k int) cube.Cuboid {
	var levels [cube.MaxDims]int
	for i := 0; i < k && i < len(t.attrs); i++ {
		a := t.attrs[i]
		if a.Level > levels[a.Dim] {
			levels[a.Dim] = a.Level
		}
	}
	c, err := cube.NewCuboid(levels[:len(t.schema.Dims)]...)
	if err != nil {
		panic(fmt.Sprintf("htree: CuboidAtDepth: %v", err)) // schema bounds validated in New
	}
	return c
}

// CellKeyOf returns the cell identified by a node: the cuboid of its depth
// with the members collected along its root path (the finest member seen
// per dimension).
func (t *HTree) CellKeyOf(n *Node) cube.CellKey {
	c := t.CuboidAtDepth(n.Depth)
	var members [cube.MaxDims]int32
	var levels [cube.MaxDims]int
	for cur := n; cur != nil && cur.Depth > 0; cur = cur.Parent {
		a := t.attrs[cur.Depth-1]
		if a.Level > levels[a.Dim] {
			levels[a.Dim] = a.Level
			members[a.Dim] = cur.Member
		}
	}
	k := cube.CellKey{Cuboid: c}
	k.Members = members
	return k
}

// BytesEstimate returns a size estimate of the tree for the paper's
// memory-usage panels.
func (t *HTree) BytesEstimate() int64 {
	// Per node: the Node struct itself (member+padding 8, depth 8, parent 8,
	// children slice header 24, ISB 32, hasMeasure+padding 8, tuples 8,
	// hlink 8 ≈ 104 bytes), one *Node child slot in the parent's slice (8),
	// and the arena's power-of-two growth slack on child slices (amortized
	// ≤ 1 extra slot). Header chains ride inside the nodes; the per-member
	// header slots (member + head + tail) are amortized into the constant.
	const bytesPerNode = 120
	return int64(t.nodes) * bytesPerNode
}
