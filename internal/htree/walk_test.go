package htree

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/regression"
)

func apexSchema(t *testing.T) *cube.Schema {
	t.Helper()
	ha, _ := cube.NewFanoutHierarchy("A", 3, 2)
	hb, _ := cube.NewFanoutHierarchy("B", 2, 2)
	s, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 0},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// PathOrder with an all-ALL o-layer has no o-attributes: the first path
// step introduces the first attribute.
func TestPathOrderApexOLayer(t *testing.T) {
	s := apexSchema(t)
	l := cube.NewLattice(s)
	p := l.DefaultPath()
	attrs := PathOrder(s, p)
	// Path: (0,0)→(1,0)→(2,0)→(2,1)→(2,2): attrs A1,A2,B1,B2.
	want := []Attribute{{0, 1}, {0, 2}, {1, 1}, {1, 2}}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for i, a := range want {
		if attrs[i] != a {
			t.Fatalf("attrs[%d] = %v, want %v", i, attrs[i], a)
		}
	}
	tree, err := New(s, attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 0 materializes the apex cuboid.
	if got := tree.CuboidAtDepth(0); !got.Equal(cube.MustCuboid(0, 0)) {
		t.Fatalf("depth-0 cuboid = %v", got)
	}
	for i, pc := range p.Cuboids {
		if got := tree.CuboidAtDepth(i); !got.Equal(pc) {
			t.Fatalf("depth %d = %v, want %v", i, got, pc)
		}
	}
}

func TestWalkAtDepth(t *testing.T) {
	s := apexSchema(t)
	l := cube.NewLattice(s)
	tree, err := New(s, PathOrder(s, l.DefaultPath()))
	if err != nil {
		t.Fatal(err)
	}
	isb := regression.ISB{Tb: 0, Te: 9, Base: 1, Slope: 1}
	for a := int32(0); a < 9; a++ {
		for b := int32(0); b < 4; b++ {
			if err := tree.Insert([]int32{a, b}, isb); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tree.PropagateUp(); err != nil {
		t.Fatal(err)
	}
	// Walking the root at leaf depth visits every leaf exactly once.
	count := 0
	tree.Root().WalkAtDepth(len(tree.Attrs()), func(n *Node) { count++ })
	if count != tree.LeafCount() {
		t.Fatalf("walked %d leaves, want %d", count, tree.LeafCount())
	}
	// Walking a depth-1 node (one A1 member) at depth 2 visits its A2
	// children: fanout 3.
	n1 := tree.NodesAtDepth(1)[0]
	count = 0
	n1.WalkAtDepth(2, func(n *Node) {
		count++
		if n.Parent != n1 {
			t.Fatal("walked node outside the subtree")
		}
	})
	if count != 3 {
		t.Fatalf("depth-2 walk visited %d nodes, want 3", count)
	}
	// Walking at the node's own depth yields the node itself.
	self := 0
	n1.WalkAtDepth(1, func(n *Node) {
		self++
		if n != n1 {
			t.Fatal("self-walk visited a different node")
		}
	})
	if self != 1 {
		t.Fatalf("self-walk count = %d", self)
	}
	// Walking shallower than the node visits nothing.
	none := 0
	leaf := tree.Leaves()[0]
	leaf.WalkAtDepth(1, func(n *Node) { none++ })
	if none != 0 {
		t.Fatalf("shallow walk visited %d nodes", none)
	}
}

// The subtree measures visited by WalkAtDepth must sum to the subtree
// root's measure at any depth (partition property used by the drill).
func TestWalkAtDepthPartitionsMeasure(t *testing.T) {
	s := apexSchema(t)
	l := cube.NewLattice(s)
	tree, err := New(s, PathOrder(s, l.DefaultPath()))
	if err != nil {
		t.Fatal(err)
	}
	for a := int32(0); a < 9; a++ {
		for b := int32(0); b < 4; b++ {
			isb := regression.ISB{Tb: 0, Te: 9, Base: float64(a), Slope: float64(b)}
			if err := tree.Insert([]int32{a, b}, isb); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tree.PropagateUp(); err != nil {
		t.Fatal(err)
	}
	for _, n1 := range tree.NodesAtDepth(1) {
		for depth := 2; depth <= len(tree.Attrs()); depth++ {
			var base, slope float64
			n1.WalkAtDepth(depth, func(n *Node) {
				base += n.Measure.Base
				slope += n.Measure.Slope
			})
			if !almostEq(base, n1.Measure.Base, 1e-9) || !almostEq(slope, n1.Measure.Slope, 1e-9) {
				t.Fatalf("depth %d partition of node %d: (%g,%g) vs (%g,%g)",
					depth, n1.Member, base, slope, n1.Measure.Base, n1.Measure.Slope)
			}
		}
	}
}
