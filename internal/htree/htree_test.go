package htree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cube"
	"repro/internal/regression"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// paperSchema reproduces Example 5's shape: A, B, C with m=(A2,B2,C2) and
// o=(A1,*,C1). Cardinalities chosen so that the cardinality order is
// exactly the paper's ⟨A1,B1,C1,C2,A2,B2⟩:
// card(A1)<card(B1)<card(C1)<card(C2)<card(A2)<card(B2).
func paperSchema(t *testing.T) *cube.Schema {
	t.Helper()
	ha, _ := cube.NewFanoutHierarchy("A", 7, 2)  // A1=7,  A2=49
	hb, _ := cube.NewFanoutHierarchy("B", 10, 2) // B1=10, B2=100
	hc, _ := cube.NewFanoutHierarchy("C", 4, 2)  // C1=4,  C2=16... need C1>B1? No: want B1<C1.
	_ = hc
	// Recompute: need card(A1)=7 < card(B1)=10 < card(C1)=12 < card(C2) <
	// card(A2)=49 < card(B2)=100. C fanout must give C1=12, C2=24 via
	// uneven fanouts — FanoutHierarchy is uniform, so use fanout 12 with
	// 2 levels: C1=12, C2=144 — but 144 > 49 breaks the order. Use a
	// named hierarchy for C instead.
	hcNamed := cube.NewNamedHierarchy("C")
	c1 := make([]string, 12)
	for i := range c1 {
		c1[i] = string(rune('a' + i))
	}
	if err := hcNamed.AddLevel(c1, nil); err != nil {
		t.Fatal(err)
	}
	c2 := make([]string, 24)
	parents := make([]int32, 24)
	for i := range c2 {
		c2[i] = "c2-" + string(rune('a'+i))
		parents[i] = int32(i / 2)
	}
	if err := hcNamed.AddLevel(c2, parents); err != nil {
		t.Fatal(err)
	}
	s, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 0},
		cube.Dimension{Name: "C", Hierarchy: hcNamed, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCardinalityOrderMatchesPaper(t *testing.T) {
	s := paperSchema(t)
	attrs := CardinalityOrder(s)
	// Expected: A1(7), B1(10), C1(12), C2(24), A2(49), B2(100).
	want := []Attribute{{0, 1}, {1, 1}, {2, 1}, {2, 2}, {0, 2}, {1, 2}}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for i, a := range want {
		if attrs[i] != a {
			t.Fatalf("attrs[%d] = %v, want %v (full: %v)", i, attrs[i], a, attrs)
		}
	}
}

func TestPathOrder(t *testing.T) {
	s := paperSchema(t)
	l := cube.NewLattice(s)
	// Paper path: (A1,C1) → B1 → B2 → A2 → C2.
	p, err := l.PathFromSteps([]int{1, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	attrs := PathOrder(s, p)
	want := []Attribute{{0, 1}, {2, 1}, {1, 1}, {1, 2}, {0, 2}, {2, 2}}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for i, a := range want {
		if attrs[i] != a {
			t.Fatalf("attrs[%d] = %v, want %v (full: %v)", i, attrs[i], a, attrs)
		}
	}
	// Depth oAttrs+i must materialize path cuboid i.
	tree, err := New(s, attrs)
	if err != nil {
		t.Fatal(err)
	}
	oAttrs := 2 // A1, C1
	for i, pc := range p.Cuboids {
		if got := tree.CuboidAtDepth(oAttrs + i); !got.Equal(pc) {
			t.Fatalf("depth %d cuboid = %v, want %v", oAttrs+i, got, pc)
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := paperSchema(t)
	if _, err := New(s, nil); err == nil {
		t.Fatal("expected empty-attrs error")
	}
	if _, err := New(s, []Attribute{{0, 2}, {1, 2}}); err == nil {
		t.Fatal("expected missing m-level attribute error (dim C)")
	}
	if _, err := New(s, []Attribute{{0, 2}, {1, 2}, {2, 2}, {0, 2}}); err == nil {
		t.Fatal("expected duplicate attribute error")
	}
	if _, err := New(s, []Attribute{{9, 1}}); err == nil {
		t.Fatal("expected bad dimension error")
	}
	if _, err := New(s, []Attribute{{0, 7}}); err == nil {
		t.Fatal("expected bad level error")
	}
}

func isbAt(base, slope float64) regression.ISB {
	return regression.ISB{Tb: 0, Te: 9, Base: base, Slope: slope}
}

func TestInsertAndLeafMerge(t *testing.T) {
	s := paperSchema(t)
	tree, err := New(s, CardinalityOrder(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]int32{5, 17, 3}, isbAt(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]int32{5, 17, 3}, isbAt(2, 0.25)); err != nil {
		t.Fatal(err)
	}
	if tree.LeafCount() != 1 {
		t.Fatalf("LeafCount = %d, want 1 (same m-cell)", tree.LeafCount())
	}
	leaf := tree.Leaves()[0]
	if !almostEq(leaf.Measure.Base, 3, 1e-12) || !almostEq(leaf.Measure.Slope, 0.75, 1e-12) {
		t.Fatalf("merged leaf = %v", leaf.Measure)
	}
	if leaf.Tuples != 2 {
		t.Fatalf("leaf tuples = %d", leaf.Tuples)
	}
	// A different m-cell creates a second leaf.
	if err := tree.Insert([]int32{6, 17, 3}, isbAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if tree.LeafCount() != 2 {
		t.Fatalf("LeafCount = %d, want 2", tree.LeafCount())
	}
}

func TestInsertValidation(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	if err := tree.Insert([]int32{1, 2}, isbAt(0, 0)); err == nil {
		t.Fatal("expected member-count error")
	}
	if err := tree.Insert([]int32{-1, 0, 0}, isbAt(0, 0)); err == nil {
		t.Fatal("expected negative member error")
	}
	if err := tree.Insert([]int32{0, 0, 99}, isbAt(0, 0)); err == nil {
		t.Fatal("expected out-of-range member error")
	}
	// Mismatched intervals at the same leaf must fail aggregation.
	if err := tree.Insert([]int32{0, 0, 0}, isbAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	bad := regression.ISB{Tb: 5, Te: 9, Base: 1, Slope: 1}
	if err := tree.Insert([]int32{0, 0, 0}, bad); err == nil {
		t.Fatal("expected interval mismatch at leaf merge")
	}
}

func TestPrefixSharing(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	// Two m-cells sharing the A1 ancestor (members 5 and 6 of A2 share
	// parent 0 when fanout is 7... members 5,6 → parent 0; choose 5 and 6).
	_ = tree.Insert([]int32{5, 17, 3}, isbAt(1, 0))
	_ = tree.Insert([]int32{6, 17, 3}, isbAt(1, 0))
	// Shared prefix: A1 node (parent 0), B1 node (17/10=1), C1, C2 —
	// divergence only at A2 → 6 shared-prefix nodes? Count total:
	// root + A1 + B1 + C1 + C2 + 2×A2 + 2×B2 = 9 nodes.
	if tree.NodeCount() != 9 {
		t.Fatalf("NodeCount = %d, want 9", tree.NodeCount())
	}
}

func TestPropagateUpAndHeaders(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	inputs := []struct {
		members []int32
		isb     regression.ISB
	}{
		{[]int32{5, 17, 3}, isbAt(1, 0.5)},
		{[]int32{6, 17, 3}, isbAt(2, -0.25)},
		{[]int32{40, 90, 20}, isbAt(3, 1)},
	}
	for _, in := range inputs {
		if err := tree.Insert(in.members, in.isb); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.PropagateUp(); err != nil {
		t.Fatal(err)
	}
	// Root measure = sum of all.
	root := tree.Root()
	if !root.HasMeasure || !almostEq(root.Measure.Base, 6, 1e-12) || !almostEq(root.Measure.Slope, 1.25, 1e-12) {
		t.Fatalf("root measure = %v", root.Measure)
	}
	// Header tables: attribute 0 is A1; members present are 0 (5/7=0,
	// 6/7=0) and 5 (40/7=5).
	members := tree.HeaderMembers(0)
	if len(members) != 2 || members[0] != 0 || members[1] != 5 {
		t.Fatalf("A1 header members = %v", members)
	}
	if nodes := tree.HeaderNodes(0, 0); len(nodes) != 1 {
		t.Fatalf("A1=0 side links = %d", len(nodes))
	}
	if nodes := tree.HeaderNodes(99, 0); nodes != nil {
		t.Fatal("out-of-range header must be nil")
	}
	if tree.HeaderMembers(-1) != nil {
		t.Fatal("out-of-range header members must be nil")
	}
	// Depth queries.
	if got := len(tree.NodesAtDepth(1)); got != 2 {
		t.Fatalf("depth-1 nodes = %d, want 2", got)
	}
	if tree.NodesAtDepth(0) != nil || tree.NodesAtDepth(99) != nil {
		t.Fatal("out-of-range NodesAtDepth must be nil")
	}
}

func TestPropagateUpMissingLeafMeasure(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	if err := tree.PropagateUp(); err != nil {
		t.Fatal(err) // empty tree: root with no children is fine
	}
}

func TestCellKeyOf(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	_ = tree.Insert([]int32{5, 17, 3}, isbAt(1, 0.5))
	leaf := tree.Leaves()[0]
	key := tree.CellKeyOf(leaf)
	if !key.Cuboid.Equal(s.MLayer()) {
		t.Fatalf("leaf cuboid = %v", key.Cuboid)
	}
	if key.Member(0) != 5 || key.Member(1) != 17 || key.Member(2) != 3 {
		t.Fatalf("leaf members = %v", key.Members)
	}
	// An interior node at depth 3 (A1,B1,C1 prefix) has cuboid (1,1,1).
	n := leaf
	for n.Depth > 3 {
		n = n.Parent
	}
	k3 := tree.CellKeyOf(n)
	if !k3.Cuboid.Equal(cube.MustCuboid(1, 1, 1)) {
		t.Fatalf("depth-3 cuboid = %v", k3.Cuboid)
	}
	if k3.Member(0) != 0 || k3.Member(1) != 1 || k3.Member(2) != 1 {
		t.Fatalf("depth-3 members = %v", k3.Members)
	}
}

func TestCuboidAtDepthCardinalityOrder(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	// Order is A1,B1,C1,C2,A2,B2. Depth 4 → (A1,B1,C2).
	if got := tree.CuboidAtDepth(4); !got.Equal(cube.MustCuboid(1, 1, 2)) {
		t.Fatalf("depth-4 cuboid = %v", got)
	}
	// Depth 0 → all-ALL.
	if got := tree.CuboidAtDepth(0); !got.Equal(cube.MustCuboid(0, 0, 0)) {
		t.Fatalf("depth-0 cuboid = %v", got)
	}
}

func TestBytesEstimate(t *testing.T) {
	s := paperSchema(t)
	tree, _ := New(s, CardinalityOrder(s))
	if tree.BytesEstimate() <= 0 {
		t.Fatal("empty tree must still account the root")
	}
	before := tree.BytesEstimate()
	_ = tree.Insert([]int32{5, 17, 3}, isbAt(1, 0.5))
	if tree.BytesEstimate() <= before {
		t.Fatal("estimate must grow with nodes")
	}
}

// Property: for random tuple sets, (a) the root measure equals the sum of
// all tuple measures, (b) every interior node's measure equals the sum of
// its leaf descendants, and (c) leaf count equals the number of distinct
// m-cells.
func TestPropagationInvariantsProperty(t *testing.T) {
	s := paperSchema(t)
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree, err := New(s, CardinalityOrder(s))
		if err != nil {
			return false
		}
		n := 1 + r.Intn(120)
		type cellAgg struct{ base, slope float64 }
		direct := map[[3]int32]*cellAgg{}
		var totBase, totSlope float64
		for i := 0; i < n; i++ {
			m := [3]int32{int32(r.Intn(49)), int32(r.Intn(100)), int32(r.Intn(24))}
			isb := regression.ISB{Tb: 0, Te: 9, Base: r.NormFloat64(), Slope: r.NormFloat64()}
			if tree.Insert(m[:], isb) != nil {
				return false
			}
			if direct[m] == nil {
				direct[m] = &cellAgg{}
			}
			direct[m].base += isb.Base
			direct[m].slope += isb.Slope
			totBase += isb.Base
			totSlope += isb.Slope
		}
		if tree.LeafCount() != len(direct) {
			return false
		}
		if err := tree.PropagateUp(); err != nil {
			return false
		}
		root := tree.Root()
		if !almostEq(root.Measure.Base, totBase, 1e-7) || !almostEq(root.Measure.Slope, totSlope, 1e-7) {
			return false
		}
		// Each leaf matches its direct aggregation.
		for _, leaf := range tree.Leaves() {
			key := tree.CellKeyOf(leaf)
			m := [3]int32{key.Member(0), key.Member(1), key.Member(2)}
			want := direct[m]
			if want == nil {
				return false
			}
			if !almostEq(leaf.Measure.Base, want.base, 1e-7) || !almostEq(leaf.Measure.Slope, want.slope, 1e-7) {
				return false
			}
		}
		// Interior nodes: sum of children equals own measure (spot-check
		// via recursion already guaranteed by PropagateUp; verify depth 1).
		for _, n1 := range tree.NodesAtDepth(1) {
			var sb, ss float64
			for _, c := range n1.Children {
				sb += c.Measure.Base
				ss += c.Measure.Slope
			}
			if !almostEq(n1.Measure.Base, sb, 1e-7) || !almostEq(n1.Measure.Slope, ss, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
