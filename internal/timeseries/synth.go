package timeseries

import (
	"math"
	"math/rand"
)

// Synth generates synthetic series for tests, examples, and the benchmark
// workload generator. All generation is driven by an explicit *rand.Rand so
// every experiment is reproducible from a seed.
type Synth struct {
	rng *rand.Rand
}

// NewSynth returns a generator seeded deterministically.
func NewSynth(seed int64) *Synth {
	return &Synth{rng: rand.New(rand.NewSource(seed))}
}

// Linear produces base + slope·t + N(0, noise) over [tb, tb+n-1].
// t in the formula is the absolute tick, matching the paper's z(t) model.
func (g *Synth) Linear(tb int64, n int, base, slope, noise float64) *Series {
	vals := make([]float64, n)
	for i := range vals {
		t := float64(tb + int64(i))
		vals[i] = base + slope*t + g.rng.NormFloat64()*noise
	}
	return MustNew(tb, vals)
}

// Seasonal produces a linear trend plus a sinusoidal component with the
// given period and amplitude; used by domain examples (daily load curves).
func (g *Synth) Seasonal(tb int64, n int, base, slope, amplitude float64, period int, noise float64) *Series {
	if period <= 0 {
		period = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		t := float64(tb + int64(i))
		vals[i] = base + slope*t + amplitude*math.Sin(2*math.Pi*t/float64(period)) + g.rng.NormFloat64()*noise
	}
	return MustNew(tb, vals)
}

// RandomWalk produces a bounded random walk starting at base with the given
// step scale; useful for stress-testing regression robustness.
func (g *Synth) RandomWalk(tb int64, n int, base, step float64) *Series {
	vals := make([]float64, n)
	cur := base
	for i := range vals {
		cur += (g.rng.Float64()*2 - 1) * step
		vals[i] = cur
	}
	return MustNew(tb, vals)
}

// Spike produces a flat series with a level shift of the given magnitude at
// tick at (absolute); used to exercise exception detection.
func (g *Synth) Spike(tb int64, n int, base, magnitude float64, at int64, noise float64) *Series {
	vals := make([]float64, n)
	for i := range vals {
		t := tb + int64(i)
		v := base + g.rng.NormFloat64()*noise
		if t >= at {
			v += magnitude
		}
		vals[i] = v
	}
	return MustNew(tb, vals)
}

// Constant produces a series with every value equal to c.
func Constant(tb int64, n int, c float64) *Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = c
	}
	return MustNew(tb, vals)
}

// Ramp produces the deterministic series base + slope·t (no noise).
func Ramp(tb int64, n int, base, slope float64) *Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = base + slope*float64(tb+int64(i))
	}
	return MustNew(tb, vals)
}
