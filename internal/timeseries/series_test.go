package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewInterval(t *testing.T) {
	iv, err := NewInterval(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Len() != 7 {
		t.Fatalf("Len = %d, want 7", iv.Len())
	}
	if iv.Mid() != 6 {
		t.Fatalf("Mid = %g, want 6", iv.Mid())
	}
	if _, err := NewInterval(5, 4); err == nil {
		t.Fatal("expected error for te < tb")
	}
}

func TestIntervalPredicates(t *testing.T) {
	a := Interval{0, 9}
	b := Interval{10, 19}
	if !a.Adjacent(b) {
		t.Fatal("[0,9] should be adjacent to [10,19]")
	}
	if a.Adjacent(Interval{11, 20}) {
		t.Fatal("gap must not count as adjacent")
	}
	if !a.Contains(0) || !a.Contains(9) || a.Contains(10) || a.Contains(-1) {
		t.Fatal("Contains is wrong at boundaries")
	}
	if !a.Equal(Interval{0, 9}) || a.Equal(b) {
		t.Fatal("Equal is wrong")
	}
	if a.String() != "[0,9]" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestNewSeries(t *testing.T) {
	s, err := New(5, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Interval.Equal(Interval{5, 7}) {
		t.Fatalf("interval = %s", s.Interval)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := New(0, nil); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, nil)
}

func TestAt(t *testing.T) {
	s := MustNew(10, []float64{1, 2, 3})
	v, err := s.At(11)
	if err != nil || v != 2 {
		t.Fatalf("At(11) = %g, %v", v, err)
	}
	if _, err := s.At(13); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := s.At(9); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestStats(t *testing.T) {
	s := MustNew(0, []float64{2, 4, 6, 8})
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.Sum() != 20 {
		t.Fatalf("Sum = %g", s.Sum())
	}
	if s.Min() != 2 || s.Max() != 8 || s.Last() != 8 {
		t.Fatalf("Min/Max/Last = %g/%g/%g", s.Min(), s.Max(), s.Last())
	}
}

func TestStatsEmptyNaN(t *testing.T) {
	s := &Series{}
	for name, f := range map[string]func() float64{
		"Mean": s.Mean, "Min": s.Min, "Max": s.Max, "Last": s.Last,
	} {
		if !math.IsNaN(f()) {
			t.Fatalf("%s of empty series should be NaN", name)
		}
	}
	if s.Sum() != 0 {
		t.Fatal("Sum of empty series should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustNew(0, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone must copy values")
	}
}

func TestSlice(t *testing.T) {
	s := MustNew(0, []float64{0, 1, 2, 3, 4, 5})
	sub, err := s.Slice(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 2 || sub.Values[2] != 4 {
		t.Fatalf("Slice = %v", sub.Values)
	}
	for _, bad := range [][2]int64{{-1, 3}, {2, 6}, {4, 2}} {
		if _, err := s.Slice(bad[0], bad[1]); err == nil {
			t.Fatalf("expected error for slice [%d,%d]", bad[0], bad[1])
		}
	}
}

func TestAdd(t *testing.T) {
	a := MustNew(0, []float64{1, 2, 3})
	b := MustNew(0, []float64{10, 20, 30})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, v := range want {
		if sum.Values[i] != v {
			t.Fatalf("sum[%d] = %g, want %g", i, sum.Values[i], v)
		}
	}
	if a.Values[0] != 1 {
		t.Fatal("Add must not mutate inputs")
	}
	c := MustNew(1, []float64{1, 2, 3})
	if _, err := Add(a, c); err == nil {
		t.Fatal("expected interval mismatch error")
	}
	if _, err := Add(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestConcat(t *testing.T) {
	a := MustNew(0, []float64{1, 2})
	b := MustNew(2, []float64{3})
	c := MustNew(3, []float64{4, 5})
	cat, err := Concat(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Interval.Equal(Interval{0, 4}) {
		t.Fatalf("interval = %s", cat.Interval)
	}
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if cat.Values[i] != want {
			t.Fatalf("cat[%d] = %g", i, cat.Values[i])
		}
	}
	gap := MustNew(5, []float64{9})
	if _, err := Concat(a, gap); err == nil {
		t.Fatal("expected adjacency error")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestScale(t *testing.T) {
	s := MustNew(0, []float64{1, -2})
	sc := s.Scale(3)
	if sc.Values[0] != 3 || sc.Values[1] != -6 {
		t.Fatalf("Scale = %v", sc.Values)
	}
	if s.Values[0] != 1 {
		t.Fatal("Scale must not mutate")
	}
}

func TestIsFinite(t *testing.T) {
	if !MustNew(0, []float64{1, 2}).IsFinite() {
		t.Fatal("finite series misreported")
	}
	if MustNew(0, []float64{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not caught")
	}
	if MustNew(0, []float64{math.Inf(1)}).IsFinite() {
		t.Fatal("Inf not caught")
	}
}

func TestSynthLinearDeterministic(t *testing.T) {
	a := NewSynth(1).Linear(0, 50, 1, 0.5, 0.1)
	b := NewSynth(1).Linear(0, 50, 1, 0.5, 0.1)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed must give identical series")
		}
	}
	c := NewSynth(2).Linear(0, 50, 1, 0.5, 0.1)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different series")
	}
}

func TestSynthLinearNoNoiseIsExact(t *testing.T) {
	s := NewSynth(3).Linear(5, 10, 2, 0.25, 0)
	for i, v := range s.Values {
		t64 := float64(5 + i)
		if math.Abs(v-(2+0.25*t64)) > 1e-12 {
			t.Fatalf("value[%d] = %g", i, v)
		}
	}
}

func TestSynthSeasonalPeriodGuard(t *testing.T) {
	s := NewSynth(4).Seasonal(0, 8, 0, 0, 1, 0, 0) // period 0 must not panic
	if s.Len() != 8 {
		t.Fatal("bad length")
	}
}

func TestSynthSpike(t *testing.T) {
	s := NewSynth(5).Spike(0, 10, 1, 100, 5, 0)
	if s.Values[4] > 50 {
		t.Fatal("spike applied too early")
	}
	if s.Values[5] < 50 {
		t.Fatal("spike missing")
	}
}

func TestConstantRamp(t *testing.T) {
	c := Constant(2, 4, 7)
	for _, v := range c.Values {
		if v != 7 {
			t.Fatal("Constant is not constant")
		}
	}
	r := Ramp(10, 3, 1, 2)
	if r.Values[0] != 21 || r.Values[2] != 25 {
		t.Fatalf("Ramp = %v", r.Values)
	}
}

func TestSynthRandomWalkLength(t *testing.T) {
	s := NewSynth(6).RandomWalk(0, 100, 0, 1)
	if s.Len() != 100 {
		t.Fatal("bad length")
	}
}

// Property: Concat(Slice(s, tb, m), Slice(s, m+1, te)) == s for any split.
func TestSliceConcatRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		tb := int64(r.Intn(100) - 50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64()
		}
		s := MustNew(tb, vals)
		split := tb + int64(r.Intn(n-1)) // split point: last tick of first part
		left, err := s.Slice(tb, split)
		if err != nil {
			return false
		}
		right, err := s.Slice(split+1, s.Interval.Te)
		if err != nil {
			return false
		}
		cat, err := Concat(left, right)
		if err != nil {
			return false
		}
		if !cat.Interval.Equal(s.Interval) {
			return false
		}
		for i := range s.Values {
			if cat.Values[i] != s.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and the sum of means is the mean of sums.
func TestAddCommutativeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(12))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		sa, sb := MustNew(0, a), MustNew(0, b)
		ab, err1 := Add(sa, sb)
		ba, err2 := Add(sb, sa)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range ab.Values {
			if ab.Values[i] != ba.Values[i] {
				return false
			}
		}
		return math.Abs(ab.Mean()-(sa.Mean()+sb.Mean())) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
